// Differential tests for checkpoint/restore: a scenario that is
// snapshotted at convergence, restored, and run to the end must be
// bit-identical to the same scenario run straight through — final
// counters, gauges and the full control-plane event trace — at every
// worker count. This is the recovery analogue of the parallel-engine
// differential in diff_test.go and reuses its oracle machinery
// (stripEngineMetrics, sortTrace, diffSnapshots).
package discs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/parsim"
	"discs/internal/snapshot"
	"discs/internal/topology"
)

// snapConverged builds the prologue shared by the snapshot
// differentials: a mid-size internet converged under the parallel
// engine with jitter on every network link. The jitter keeps the
// fault RNG streams hot during convergence, so a checkpoint captures
// them at nonzero positions — restore must resume each stream
// mid-flight, not from its seed.
func snapConverged(t testing.TB, workers int) (*bgp.Network, *parsim.Engine) {
	t.Helper()
	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 100, NumPrefixes: 300, ZipfExponent: 1.0, Seed: 11, TierOneCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.AssignShards(parsim.DefaultShards)
	eng, err := parsim.New(net.Sim, parsim.Options{Shards: parsim.DefaultShards, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })

	net.Sim.Registry().SetTraceCapacity(1 << 15)
	net.Sim.SeedFaults(7)
	for _, l := range net.Sim.Links() {
		l.SetFaults(netsim.LinkFaults{JitterMax: 200 * time.Microsecond})
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return net, eng
}

// snapEpilogue runs the post-checkpoint half of the scenario on net —
// lossy controller links, 6 DAS deployments, heartbeats, an attack
// burst, invocation, a second burst — and returns the stripped final
// counters, gauges and canonical trace.
func snapEpilogue(t testing.TB, net *bgp.Network) (map[string]uint64, map[string]int64, []obs.Event) {
	t.Helper()
	net.Sim.SetDefaultLinkFaults(netsim.LinkFaults{
		Loss: 0.05, Dup: 0.05, JitterMax: 500 * time.Microsecond,
	})
	sys := core.NewSystem(net, core.DefaultConfig())
	deployers := net.Topo.BySizeDesc()[:6]
	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(net.Sim.Now() + 3*core.DefaultConfig().HeartbeatInterval)

	victim := deployers[len(deployers)-1]
	sampler := attack.NewSampler(net.Topo)
	rng := rand.New(rand.NewSource(5))
	flows := make([]attack.Flow, 30)
	for i := range flows {
		flows[i] = sampler.DrawFlowForVictim(attack.DDDoS, victim, rng)
	}
	if _, err := attack.RunPaced(sys, flows, 5, 5, 2, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vc := sys.Controllers[victim]
	if _, err := vc.Invoke(core.Invocation{
		Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RunPaced(sys, flows, 5, 6, 2, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	counters, gauges := stripEngineMetrics(sys.Stats())
	return counters, gauges, sortTrace(sys.Registry().Tracer().Events())
}

// restoreFrom snapshots world into memory, decodes and restores it.
func restoreFrom(t testing.TB, world *snapshot.World, workers int) *bgp.Network {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, world); err != nil {
		t.Fatal(err)
	}
	img, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snapshot.Restore(img, snapshot.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Eng != nil {
		t.Cleanup(func() { restored.Eng.Close() })
	}
	restored.Net.Sim.Registry().SetTraceCapacity(1 << 15)
	return restored.Net
}

// TestSnapshotDifferentialWorkers: checkpoint at convergence, restore,
// run to the end — bit-identical to the straight-through run, at 1 and
// 4 workers. The straight-through run continues on the very world that
// was checkpointed, so this also proves Write is non-mutating.
func TestSnapshotDifferentialWorkers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			net, eng := snapConverged(t, workers)
			var buf bytes.Buffer
			if err := snapshot.Write(&buf, &snapshot.World{Net: net, Eng: eng}); err != nil {
				t.Fatal(err)
			}
			c1, g1, e1 := snapEpilogue(t, net)

			img, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			restored, err := snapshot.Restore(img, snapshot.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if restored.Eng != nil {
				defer restored.Eng.Close()
			}
			restored.Net.Sim.Registry().SetTraceCapacity(1 << 15)
			c2, g2, e2 := snapEpilogue(t, restored.Net)

			if len(e1) == 0 {
				t.Fatal("no trace events recorded")
			}
			if c1["netsim.delivered"] == 0 {
				t.Fatal("scenario delivered nothing")
			}
			diffSnapshots(t, fmt.Sprintf("snapshot/w%d", workers), c1, c2, g1, g2, e1, e2)
		})
	}
}

// TestSnapshotCrashRestartRegression: on a restored system, the
// Crash → Restart journal-replay path must behave exactly as it does
// on a system that never went through an image — same counters, same
// gauges, same recovery event trace (resumed handshakes, campaign
// resync, second invocation).
func TestSnapshotCrashRestartRegression(t *testing.T) {
	const workers = 2
	run := func(t *testing.T, viaImage bool) (map[string]uint64, map[string]int64, []obs.Event) {
		net, eng := snapConverged(t, workers)
		if viaImage {
			net = restoreFrom(t, &snapshot.World{Net: net, Eng: eng}, workers)
		}
		sys := core.NewSystem(net, core.DefaultConfig())
		deployers := net.Topo.BySizeDesc()[:4]
		for i, asn := range deployers {
			if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Settle(); err != nil {
			t.Fatal(err)
		}
		victim := deployers[len(deployers)-1]
		vc := sys.Controllers[victim]
		if _, err := vc.Invoke(core.Invocation{
			Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
		if err := sys.Settle(); err != nil {
			t.Fatal(err)
		}

		// Crash the victim, let its peers miss heartbeats, restart:
		// the journal replay must resume sessions and re-sync the
		// campaign identically whether or not the system came from an
		// image.
		if err := sys.Crash(victim); err != nil {
			t.Fatal(err)
		}
		net.Sim.Run(net.Sim.Now() + 3*core.DefaultConfig().HeartbeatInterval)
		if err := sys.Restart(victim); err != nil {
			t.Fatal(err)
		}
		if err := sys.Settle(); err != nil {
			t.Fatal(err)
		}
		if _, err := vc.Invoke(core.Invocation{
			Prefixes: vc.OwnPrefixes(), Function: core.CDP, Duration: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
		if err := sys.Settle(); err != nil {
			t.Fatal(err)
		}
		counters, gauges := stripEngineMetrics(sys.Stats())
		return counters, gauges, sortTrace(sys.Registry().Tracer().Events())
	}

	c1, g1, e1 := run(t, false)
	c2, g2, e2 := run(t, true)
	if len(e1) == 0 {
		t.Fatal("no trace events recorded")
	}
	diffSnapshots(t, "crash-restart", c1, c2, g1, g2, e1, e2)
}
