package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Recorder accumulates interval snapshots into a time series. Drive it
// from the simulated clock (netsim's EveryBackground) so point spacing
// is simulated time, not wall time.
type Recorder struct {
	mu     sync.Mutex
	points []Snapshot
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one snapshot.
func (r *Recorder) Record(s Snapshot) {
	r.mu.Lock()
	r.points = append(r.points, s)
	r.mu.Unlock()
}

// Points returns the recorded series, oldest first.
func (r *Recorder) Points() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.points...)
}

// Export is the on-disk observability artifact: the final cumulative
// snapshot, the interval time series and the retained event log. It is
// what `discs-sim -metrics` writes and `discs-report -metrics`
// renders.
type Export struct {
	GeneratedBy   string     `json:"generated_by"`
	IntervalNanos int64      `json:"interval_ns,omitempty"`
	Final         Snapshot   `json:"final"`
	Points        []Snapshot `json:"points,omitempty"`
	Events        []Event    `json:"events,omitempty"`
	EventsDropped uint64     `json:"events_dropped,omitempty"`
}

// NewExport assembles an Export from a registry, an optional recorder
// and the registry's tracer (nil-safe on both).
func NewExport(generatedBy string, reg *Registry, rec *Recorder, intervalNanos int64) *Export {
	e := &Export{GeneratedBy: generatedBy, IntervalNanos: intervalNanos, Final: reg.Snapshot()}
	if rec != nil {
		e.Points = rec.Points()
	}
	tr := reg.Tracer()
	e.Events = tr.Events()
	e.EventsDropped = tr.Dropped()
	return e
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFile writes the export to path.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadExport parses an Export written by WriteJSON/WriteFile.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("obs: parsing export: %w", err)
	}
	return &e, nil
}

// ReadExportFile reads and parses the export at path.
func ReadExportFile(path string) (*Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadExport(f)
}
