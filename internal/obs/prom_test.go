package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition output: family
// grouping, HELP/TYPE headers, as-scope label lifting, name
// sanitization, and cumulative histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Scope("as7.").Counter("ctrl.msgs_sent").Add(3)
	r.Scope("as1001.").Counter("ctrl.msgs_sent").Add(5)
	r.Counter("netsim.delivered").Add(42)
	r.Counter("weird-name.1xx/total").Add(1) // sanitization
	r.Scope("as7.").Gauge("ctrl.peers_established").Set(2)
	r.Gauge("parsim.workers").Set(-1) // negative gauges are legal
	h := r.Histogram("epoch.stall_ns", []int64{100, 1000})
	h.Observe(50)
	h.Observe(150)
	h.Observe(5000)
	// Per-peer suffix convention: lifted into a peer label, dotted
	// peer names intact, composing with the as-scope label.
	r.Scope("as7.").Counter("transport.bytes_sent.peer.ctrl.as9").Add(640)
	r.Scope("as7.").Counter("transport.bytes_sent.peer.ctrl.as1002").Add(64)
	r.Counter("transport.frames_dropped.peer.ctrl.as9").Add(2)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "discs"); err != nil {
		t.Fatal(err)
	}
	want := `# HELP discs_ctrl_msgs_sent DISCS metric ctrl.msgs_sent.
# TYPE discs_ctrl_msgs_sent counter
discs_ctrl_msgs_sent{as="1001"} 5
discs_ctrl_msgs_sent{as="7"} 3
# HELP discs_ctrl_peers_established DISCS metric ctrl.peers_established.
# TYPE discs_ctrl_peers_established gauge
discs_ctrl_peers_established{as="7"} 2
# HELP discs_epoch_stall_ns DISCS metric epoch.stall_ns.
# TYPE discs_epoch_stall_ns histogram
discs_epoch_stall_ns_bucket{le="+Inf"} 3
discs_epoch_stall_ns_bucket{le="100"} 1
discs_epoch_stall_ns_bucket{le="1000"} 2
discs_epoch_stall_ns_count 3
discs_epoch_stall_ns_sum 5200
# HELP discs_netsim_delivered DISCS metric netsim.delivered.
# TYPE discs_netsim_delivered counter
discs_netsim_delivered 42
# HELP discs_parsim_workers DISCS metric parsim.workers.
# TYPE discs_parsim_workers gauge
discs_parsim_workers -1
# HELP discs_transport_bytes_sent DISCS metric transport.bytes_sent.
# TYPE discs_transport_bytes_sent counter
discs_transport_bytes_sent{as="7",peer="ctrl.as1002"} 64
discs_transport_bytes_sent{as="7",peer="ctrl.as9"} 640
# HELP discs_transport_frames_dropped DISCS metric transport.frames_dropped.
# TYPE discs_transport_frames_dropped counter
discs_transport_frames_dropped{peer="ctrl.as9"} 2
# HELP discs_weird_name_1xx_total DISCS metric weird-name.1xx/total.
# TYPE discs_weird_name_1xx_total counter
discs_weird_name_1xx_total 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusNameEdgeCases covers the sanitizer and scope-splitter
// corners that the golden test does not reach.
func TestPrometheusNameEdgeCases(t *testing.T) {
	cases := []struct {
		in, rest, as string
	}{
		{"as7.ctrl.x", "ctrl.x", "7"},
		{"as44036.router.in_verified", "router.in_verified", "44036"},
		{"as.ctrl.x", "as.ctrl.x", ""},  // no digits
		{"as7", "as7", ""},              // no dot
		{"as7.", "as7.", ""},            // empty rest
		{"assume.ctrl.x", "assume.ctrl.x", ""},
		{"netsim.sent", "netsim.sent", ""},
	}
	for _, c := range cases {
		rest, as := splitASScope(c.in)
		if rest != c.rest || as != c.as {
			t.Errorf("splitASScope(%q) = (%q, %q), want (%q, %q)", c.in, rest, as, c.rest, c.as)
		}
	}
	peerCases := []struct {
		in, base, peer string
	}{
		{"transport.bytes_sent.peer.ctrl.as9", "transport.bytes_sent", "ctrl.as9"},
		{"transport.queue_depth.peer.a.b.c", "transport.queue_depth", "a.b.c"},
		{"transport.bytes_sent", "transport.bytes_sent", ""},
		{"peer.x", "peer.x", ""},           // marker must not lead
		{"a.peer.", "a.peer.", ""},         // empty peer name
		{"ctrl.msgs_sent", "ctrl.msgs_sent", ""},
	}
	for _, c := range peerCases {
		base, peer := splitPeerSuffix(c.in)
		if base != c.base || peer != c.peer {
			t.Errorf("splitPeerSuffix(%q) = (%q, %q), want (%q, %q)", c.in, base, peer, c.base, c.peer)
		}
	}
	if got := promName("", "7starts.with.digit"); got != "_7starts_with_digit" {
		t.Errorf("promName digit prefix = %q", got)
	}
	if got := promName("discs", "a:b"); got != "discs_a:b" {
		t.Errorf("promName colon = %q", got)
	}
}
