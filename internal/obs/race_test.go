package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotWhileUpdateStress is the registry's concurrency gate:
// writer goroutines hammer counters, gauges, histograms and the
// tracer while readers continuously snapshot and drain events. Run
// under -race (make check), it proves snapshots never require
// stopping the world and updates never tear.
func TestSnapshotWhileUpdateStress(t *testing.T) {
	r := NewRegistry()
	var simNow atomic.Int64
	r.SetClock(simNow.Load)
	r.SetTraceCapacity(256)

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: every metric type plus trace events, plus late metric
	// registration racing the snapshot map walks.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("stress.hits")
			g := r.Gauge("stress.depth")
			h := r.Histogram("stress.lat", []int64{10, 100, 1000})
			tr := r.Tracer()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1500))
				if i%64 == 0 {
					tr.Emit(Event{Kind: EvPacketSample, Serial: uint64(i)})
				}
				if i%1000 == 0 {
					// Racing registration: a component coming up while
					// snapshots are in flight.
					r.Counter("stress.late").Inc()
				}
				simNow.Add(1)
			}
		}(w)
	}

	// Readers: snapshots, scoped snapshots and event drains.
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				if s.Get("stress.hits") > writers*perWriter {
					t.Error("counter overshot")
					return
				}
				_ = r.SnapshotPrefix("stress.", "stress.")
				_ = r.Tracer().Events()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("stress.hits").Value(); got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
	h := r.Snapshot().Histograms["stress.lat"]
	if h.Count != writers*perWriter {
		t.Fatalf("histogram count %d, want %d", h.Count, writers*perWriter)
	}
}
