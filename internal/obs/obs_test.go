package obs

import (
	"bytes"
	"net/netip"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.hits")
	if c != r.Counter("x.hits") {
		t.Fatal("Counter is not idempotent by name")
	}
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Fatalf("Value = %d, want 42", v)
	}
	if s := r.Snapshot(); s.Get("x.hits") != 42 {
		t.Fatalf("snapshot = %d, want 42", s.Get("x.hits"))
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := c.Value(); v != workers*per {
		t.Fatalf("Value = %d, want %d", v, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if v := g.Value(); v != 4 {
		t.Fatalf("gauge = %d, want 4", v)
	}
	if s := r.Snapshot(); s.GetGauge("depth") != 4 {
		t.Fatalf("snapshot gauge = %d", s.GetGauge("depth"))
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 99, 100, 101, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []uint64{2, 3, 2} // ≤10, ≤100, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
}

func TestScopeAndSnapshotPrefix(t *testing.T) {
	r := NewRegistry()
	s1 := r.Scope("as1.")
	s2 := r.Scope("as2.")
	s1.Counter("router.out").Add(3)
	s2.Counter("router.out").Add(4)
	s1.Counter("ctrl.msgs").Add(9)

	snap := s1.Snapshot()
	if snap.Get("router.out") != 3 || snap.Get("ctrl.msgs") != 9 {
		t.Fatalf("scoped snapshot wrong: %v", snap.Counters)
	}
	if _, ok := snap.Counters["as2.router.out"]; ok {
		t.Fatal("scope leaked foreign metrics")
	}
	full := r.Snapshot()
	if got := full.Sum("router.out"); got != 7 {
		t.Fatalf("Sum = %d, want 7", got)
	}
	ctrlOnly := r.SnapshotPrefix("as1.ctrl.", "as1.")
	if ctrlOnly.Get("ctrl.msgs") != 9 || len(ctrlOnly.Counters) != 1 {
		t.Fatalf("prefix snapshot wrong: %v", ctrlOnly.Counters)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(5)
	prev := r.Snapshot()
	c.Add(3)
	d := r.Snapshot().Delta(prev)
	if d.Get("n") != 3 {
		t.Fatalf("delta = %d, want 3", d.Get("n"))
	}
}

func TestClockStampsSnapshotsAndEvents(t *testing.T) {
	r := NewRegistry()
	var now int64 = 42e9
	r.SetClock(func() int64 { return now })
	if s := r.Snapshot(); s.AtNanos != 42e9 {
		t.Fatalf("snapshot at %d", s.AtNanos)
	}
	tr := r.Tracer()
	tr.Emit(Event{Kind: EvPeerEstablished, AS: 1, Peer: 2})
	now = 43e9
	tr.Emit(Event{Kind: EvPeerDead, AS: 1, Peer: 2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].At != 42e9 || evs[1].At != 43e9 {
		t.Fatalf("events %+v", evs)
	}
}

func TestTracerRingWrap(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(4)
	tr := r.Tracer()
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvPacketSample, Serial: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Serial != uint64(6+i) {
			t.Fatalf("retained wrong window: %+v", evs)
		}
	}
	if tr.Dropped() != 6 || tr.Total() != 10 {
		t.Fatalf("dropped %d total %d", tr.Dropped(), tr.Total())
	}
}

func TestExportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(3)
	r.Gauge("g").Set(-2)
	r.Tracer().Emit(Event{Kind: EvCampaignInvoke, AS: 7, Serial: 9,
		Src: netip.MustParseAddr("10.0.0.1")})
	rec := NewRecorder()
	rec.Record(r.Snapshot())
	r.Counter("a.b").Add(1)
	rec.Record(r.Snapshot())

	exp := NewExport("test", r, rec, 1e9)
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Final.Get("a.b") != 4 || len(got.Points) != 2 || len(got.Events) != 1 {
		t.Fatalf("round trip mangled export: %+v", got)
	}
	if got.Points[0].Get("a.b") != 3 || got.Points[1].Get("a.b") != 4 {
		t.Fatalf("points wrong: %+v", got.Points)
	}
	if e := got.Events[0]; e.Kind != EvCampaignInvoke || e.AS != 7 || e.Serial != 9 ||
		e.Src != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("event mangled: %+v", e)
	}
}

// TestEmitNoAlloc pins the zero-allocation contract of the sampled
// data-plane tracing path: recording a flat Event must not allocate.
func TestEmitNoAlloc(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	src := netip.MustParseAddr("10.1.0.10")
	dst := netip.MustParseAddr("10.3.0.1")
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvPacketSample, Verdict: "drop", Src: src, Dst: dst})
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f/op, want 0", allocs)
	}
}

// TestCounterAddNoAlloc pins the hot-path contract for counters.
func TestCounterAddNoAlloc(t *testing.T) {
	c := NewRegistry().Counter("c")
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Fatalf("Add allocates %.1f/op, want 0", allocs)
	}
}
