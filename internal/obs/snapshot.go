package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time view of a registry (or a scope of one),
// stamped with the registry clock — simulated time in this
// repository. It is the single stats currency every subsystem's
// Stats() method returns.
type Snapshot struct {
	AtNanos    int64                   `json:"t_ns"`
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Get returns the named counter's value (0 if absent).
func (s Snapshot) Get(name string) uint64 { return s.Counters[name] }

// GetGauge returns the named gauge's value (0 if absent).
func (s Snapshot) GetGauge(name string) int64 { return s.Gauges[name] }

// Sum adds up every counter whose name ends with suffix — the
// fleet-wide aggregation over per-scope metrics (e.g. summing
// "router.out_processed" across every "asN." scope).
func (s Snapshot) Sum(suffix string) uint64 {
	var t uint64
	for name, v := range s.Counters {
		if strings.HasSuffix(name, suffix) {
			t += v
		}
	}
	return t
}

// Delta returns s minus prev, counter-wise (gauges and histograms
// keep s's values; counters absent from prev pass through). Interval
// exporters use it to turn cumulative counters into per-interval
// rates.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{AtNanos: s.AtNanos, Counters: make(map[string]uint64, len(s.Counters)),
		Gauges: s.Gauges, Histograms: s.Histograms}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	return d
}

// Names returns the counter names in sorted order — deterministic
// iteration for reports and tests.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
