package obs

import "testing"

// BenchmarkCounterAdd measures the uncontended hot-path cost a
// registry-backed counter adds over a raw atomic — the number the
// data-plane budget (TestObsBudget at the repo root) leans on.
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterAddParallel measures contended cost: sharding should
// keep this near the serial number instead of collapsing on one cache
// line.
func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkTracerEmit measures the sampled-event recording cost.
func BenchmarkTracerEmit(b *testing.B) {
	tr := NewRegistry().Tracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvPacketSample, Verdict: "pass"})
	}
}

// BenchmarkSnapshot measures snapshot cost at a realistic metric count
// (10 DAS × ~30 metrics).
func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 300; i++ {
		r.Counter(string(rune('a'+i%26)) + "x.metric" + string(rune('0'+i%10))).Add(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
