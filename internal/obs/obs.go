// Package obs is the unified observability layer of the DISCS
// reproduction: a metrics registry (counters, gauges, histograms)
// cheap enough for the lock-free data-plane hot path, plus a
// simulated-clock-aware event tracer (trace.go) and JSON exporters
// (export.go).
//
// Design constraints, in order:
//
//  1. Hot-path updates must be wait-free and allocation-free. Counters
//     are sharded across cache-line-padded atomic cells so concurrent
//     forwarding goroutines do not bounce one cache line; handles are
//     resolved once at construction, never per update.
//  2. Snapshots may be taken while updates are in flight. A snapshot
//     is a point-in-time sum, not a consistent cut — exactly the
//     semantics of reading per-CPU counters on real hardware.
//  3. The package depends on nothing else in this repository, so every
//     layer (netsim, securechan, core, cmd) can use it without import
//     cycles. Time is injected as a clock function; in simulations it
//     is the netsim clock, so exported series are in simulated time.
package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards is the per-counter shard count: enough to spread
// GOMAXPROCS writers, capped so thousands of registered counters stay
// cheap. Power of two for mask indexing.
var numShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	return n
}()

// shard is one padded counter cell. The padding keeps two shards from
// sharing a cache line, which is the entire point of sharding.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIndex distributes concurrent writers across shards. Goroutine
// stacks live in different allocations, so the address of a local is
// a cheap, stable-per-goroutine discriminator — no runtime hooks, no
// thread IDs, no allocation.
func shardIndex() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32(p>>9) ^ uint32(p>>17)
}

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry (or Scope) so snapshots see
// them.
type Counter struct {
	name   string
	shards []shard
	mask   uint32
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n. Wait-free, allocation-free, safe
// from any number of goroutines.
func (c *Counter) Add(n uint64) {
	c.shards[shardIndex()&c.mask].v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Concurrent with updates; the result is a
// point-in-time lower bound, exact once writers quiesce.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a last-value-wins metric (queue depths, peer counts).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value loads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets with inclusive
// upper bounds; the last bucket is +Inf. Buckets are atomic, so
// Observe is safe from any goroutine.
type Histogram struct {
	name   string
	bounds []int64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts []shard
	sum    atomic.Int64
	n      atomic.Uint64
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].v.Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].v.Load()
	}
	return s
}

// Registry owns a namespace of metrics and the trace ring. Metric
// registration is idempotent by name: two components asking for the
// same name share the metric, which is how per-subsystem views stay
// cheap aggregations instead of copies.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	clock atomic.Value // func() int64, simulated nanoseconds

	traceOnce sync.Once
	traceCap  int
	tracer    *Tracer
}

// NewRegistry creates an empty registry with a zero clock (snapshots
// and events stamp t=0 until SetClock installs a real one).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetClock installs the time source for snapshots and trace events —
// in simulations, the netsim clock in nanoseconds. Safe to call while
// metrics are updated.
func (r *Registry) SetClock(fn func() int64) { r.clock.Store(fn) }

func (r *Registry) nowNanos() int64 {
	if fn, ok := r.clock.Load().(func() int64); ok && fn != nil {
		return fn()
	}
	return 0
}

// Counter returns the counter registered under name, creating it on
// first use. The returned handle is what hot paths must cache.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	c = &Counter{name: name, shards: make([]shard, numShards), mask: uint32(numShards - 1)}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given inclusive upper bounds on first use (later calls
// ignore bounds and share the first registration).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h != nil {
		return h
	}
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h = &Histogram{name: name, bounds: b, counts: make([]shard, len(b)+1)}
	r.hists[name] = h
	return h
}

// SetTraceCapacity sizes the trace ring before first use (default
// DefaultTraceCapacity). No effect once the tracer exists.
func (r *Registry) SetTraceCapacity(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		r.traceCap = n
	}
}

// Tracer returns the registry's event tracer, creating it on first
// use. All subsystems sharing the registry share the ring, so the
// exported event log interleaves control-plane and data-plane events
// in simulated-time order.
func (r *Registry) Tracer() *Tracer {
	r.traceOnce.Do(func() {
		r.mu.Lock()
		n := r.traceCap
		r.mu.Unlock()
		if n <= 0 {
			n = DefaultTraceCapacity
		}
		r.tracer = newTracer(n, r)
	})
	return r.tracer
}

// Snapshot captures every registered metric at the registry clock's
// current time. Counters sum their shards while writers may still be
// adding; see Counter.Value for the semantics.
func (r *Registry) Snapshot() Snapshot {
	return r.SnapshotPrefix("", "")
}

// Absorb merges a previously captured Snapshot into the registry:
// counters are added on top of current values (find-or-create), gauges
// are set. It is the restore half of the checkpoint seam — a restored
// world starts from a fresh registry and absorbs the image's metric
// state so counters continue exactly where the checkpointed run left
// off. Histograms are not restored: they are diagnostic distributions,
// excluded from the determinism differential, and restart empty.
func (r *Registry) Absorb(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
}

// SnapshotPrefix captures only metrics whose name starts with prefix,
// removing trim from the front of each kept name. It is how a scoped
// component (one controller, one router) exposes a Stats() view over
// the shared registry.
func (r *Registry) SnapshotPrefix(prefix, trim string) Snapshot {
	s := Snapshot{
		AtNanos:  r.nowNanos(),
		Counters: make(map[string]uint64),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		if keep, ok := cutPrefix(name, prefix, trim); ok {
			s.Counters[keep] = c.Value()
		}
	}
	for name, g := range r.gauges {
		if keep, ok := cutPrefix(name, prefix, trim); ok {
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[keep] = g.Value()
		}
	}
	for name, h := range r.hists {
		if keep, ok := cutPrefix(name, prefix, trim); ok {
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistSnapshot)
			}
			s.Histograms[keep] = h.snapshot()
		}
	}
	return s
}

func cutPrefix(name, prefix, trim string) (string, bool) {
	if len(name) < len(prefix) || name[:len(prefix)] != prefix {
		return "", false
	}
	if len(trim) > 0 && len(name) >= len(trim) && name[:len(trim)] == trim {
		return name[len(trim):], true
	}
	return name, true
}

// Scope prefixes metric names, giving each component (one AS's
// controller, one border router) its own namespace inside a shared
// registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a scoped view creating metrics named prefix+name.
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix} }

// Registry returns the underlying registry.
func (s Scope) Registry() *Registry { return s.r }

// Prefix returns the scope's name prefix.
func (s Scope) Prefix() string { return s.prefix }

// Counter returns the scoped counter prefix+name.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + name) }

// Gauge returns the scoped gauge prefix+name.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + name) }

// Histogram returns the scoped histogram prefix+name.
func (s Scope) Histogram(name string, bounds []int64) *Histogram {
	return s.r.Histogram(s.prefix+name, bounds)
}

// Snapshot captures the scope's metrics with the prefix trimmed.
func (s Scope) Snapshot() Snapshot { return s.r.SnapshotPrefix(s.prefix, s.prefix) }
