package obs

import (
	"net/netip"
	"sync"
)

// DefaultTraceCapacity is the trace ring size when the registry is not
// configured otherwise.
const DefaultTraceCapacity = 8192

// Event is one traced occurrence, stamped in simulated time. The
// struct is flat and pointer-free so recording it is a value copy —
// no allocation on the sampled data-plane path.
type Event struct {
	At   int64  `json:"t_ns"`
	Kind string `json:"kind"`
	// AS is the acting AS (the controller or router emitting the
	// event); Peer is the remote AS when the event concerns one.
	AS   uint32 `json:"as,omitempty"`
	Peer uint32 `json:"peer,omitempty"`
	// Serial carries campaign or key serials.
	Serial uint64 `json:"serial,omitempty"`
	// Verdict is the data-plane decision for sampled packet events.
	Verdict string `json:"verdict,omitempty"`
	// Src/Dst are packet addresses for sampled data-plane decisions
	// (zero Addrs marshal as "").
	Src netip.Addr `json:"src"`
	Dst netip.Addr `json:"dst"`
	// Detail is free-form context for control-plane events.
	Detail string `json:"detail,omitempty"`
}

// Control-plane and data-plane event kinds. Subsystems define no kinds
// of their own so the exported log has one vocabulary.
const (
	EvPeerDiscovered  = "peer.discovered"
	EvPeerRequested   = "peer.requested"
	EvPeerEstablished = "peer.established"
	EvPeerRejected    = "peer.rejected"
	EvPeerDead        = "peer.dead"
	EvHeartbeatMiss   = "peer.hb_miss"
	EvHandshakeFull   = "handshake.full"
	EvHandshakeResume = "handshake.resume"
	EvResumeFallback  = "handshake.fallback"
	EvKeyDeploy       = "key.deploy"
	EvKeyActive       = "key.active"
	EvCampaignInvoke  = "campaign.invoke"
	EvCampaignAccept  = "campaign.accept"
	EvCampaignAck     = "campaign.ack"
	EvCampaignResync  = "campaign.resync"
	EvCtrlCrash       = "ctrl.crash"
	EvCtrlRestart     = "ctrl.restart"
	EvAttackDetected  = "attack.detected"
	EvPacketSample    = "packet.sample"
)

// Tracer records events into a bounded ring: when full, the oldest
// event is overwritten and counted as dropped. Control-plane events
// are recorded unconditionally (they are rare); data-plane decisions
// must be sampled by the caller — see core.RouterOptions.
type Tracer struct {
	mu      sync.Mutex
	reg     *Registry
	buf     []Event
	next    int
	total   uint64 // events ever emitted
	wrapped bool
}

func newTracer(capacity int, reg *Registry) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity), reg: reg}
}

// Emit records e, stamping e.At from the registry clock when zero.
func (t *Tracer) Emit(e Event) {
	if e.At == 0 && t.reg != nil {
		e.At = t.reg.nowNanos()
	}
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many events were ever emitted (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}
