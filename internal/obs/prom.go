package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered straight
// from a Snapshot, using nothing outside the stdlib. This is the
// export seam the discs-node admin listener serves on /metrics.
//
// Mapping rules:
//
//   - Every metric family is prefixed with the given namespace
//     ("discs" in the node binary), and dots become underscores:
//     "netsim.delivered" → "discs_netsim_delivered".
//   - The per-AS scope convention ("as<N>.ctrl.msgs_sent") becomes a
//     label instead of a family per AS:
//     discs_ctrl_msgs_sent{as="7"}. Fleet-wide aggregation is then a
//     sum() over the label, the Prometheus-native spelling of
//     Snapshot.Sum.
//   - The per-peer suffix convention ("transport.bytes_sent.peer.
//     ctrl.as9", see transport.PeerMetric) becomes a peer label on the
//     base family: discs_transport_bytes_sent{peer="ctrl.as9"}. The
//     peer name is everything after the first ".peer.", so names
//     containing dots survive intact.
//   - Characters outside [a-zA-Z0-9_:] are replaced with '_', and a
//     leading digit gets a '_' prefix, per the metric-name grammar.
//   - Histograms render cumulative le-bucket counts (obs buckets are
//     per-bin), plus the _sum and _count series.
//
// Families are emitted in sorted order with one HELP/TYPE header each,
// and series within a family are sorted by label, so output is
// deterministic and diffable in golden tests.

// promFamily collects the series of one rendered metric family.
type promFamily struct {
	name   string
	typ    string // "counter" | "gauge" | "histogram"
	help   string
	series []promSeries
}

type promSeries struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered label set incl. braces, or ""
	value  string
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. namespace prefixes every family name ("discs" recommended);
// empty means no prefix.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	fams := make(map[string]*promFamily)
	add := func(raw, typ, suffix, labels, value string) {
		name, as := splitASScope(raw)
		name, peer := splitPeerSuffix(name)
		fam := promName(namespace, name)
		f := fams[fam]
		if f == nil {
			f = &promFamily{name: fam, typ: typ, help: fmt.Sprintf("DISCS metric %s.", name)}
			fams[fam] = f
		}
		var parts []string
		if as != "" {
			parts = append(parts, fmt.Sprintf("as=%q", as))
		}
		if peer != "" {
			parts = append(parts, fmt.Sprintf("peer=%q", peer))
		}
		if labels != "" {
			parts = append(parts, labels[1:len(labels)-1])
		}
		lbl := ""
		if len(parts) > 0 {
			lbl = "{" + strings.Join(parts, ",") + "}"
		}
		f.series = append(f.series, promSeries{suffix: suffix, labels: lbl, value: value})
	}

	for name, v := range s.Counters {
		add(name, "counter", "", "", fmt.Sprintf("%d", v))
	}
	for name, v := range s.Gauges {
		add(name, "gauge", "", "", fmt.Sprintf("%d", v))
	}
	for name, h := range s.Histograms {
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			add(name, "histogram", "_bucket", fmt.Sprintf(`{le=%q}`, le), fmt.Sprintf("%d", cum))
		}
		add(name, "histogram", "_sum", "", fmt.Sprintf("%d", h.Sum))
		add(name, "histogram", "_count", "", fmt.Sprintf("%d", h.Count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool {
			a, b := f.series[i], f.series[j]
			if a.suffix != b.suffix {
				return a.suffix < b.suffix
			}
			return a.labels < b.labels
		})
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, sr := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, sr.suffix, sr.labels, sr.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitASScope recognizes the repo-wide "as<N>." scope prefix and
// lifts it into a label value, returning the remaining metric name.
// Names without the prefix pass through with an empty AS.
func splitASScope(name string) (rest, as string) {
	if len(name) < 4 || name[0] != 'a' || name[1] != 's' {
		return name, ""
	}
	i := 2
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		i++
	}
	if i == 2 || i >= len(name) || name[i] != '.' || i+1 >= len(name) {
		return name, ""
	}
	return name[i+1:], name[2:i]
}

// splitPeerSuffix recognizes the ".peer.<name>" suffix convention
// (transport.PeerMetric) and lifts the peer name into a label value,
// returning the base family name. The split is at the first ".peer.",
// so peer names containing dots (controller names like "ctrl.as9")
// pass through whole. Names without the marker are returned unchanged.
func splitPeerSuffix(name string) (base, peer string) {
	i := strings.Index(name, ".peer.")
	if i < 0 || i == 0 || i+6 >= len(name) {
		return name, ""
	}
	return name[:i], name[i+6:]
}

// promName sanitizes a dotted metric name into the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
