package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered straight
// from a Snapshot, using nothing outside the stdlib. This is the
// export seam the discs-node admin listener serves on /metrics.
//
// Mapping rules:
//
//   - Every metric family is prefixed with the given namespace
//     ("discs" in the node binary), and dots become underscores:
//     "netsim.delivered" → "discs_netsim_delivered".
//   - The per-AS scope convention ("as<N>.ctrl.msgs_sent") becomes a
//     label instead of a family per AS:
//     discs_ctrl_msgs_sent{as="7"}. Fleet-wide aggregation is then a
//     sum() over the label, the Prometheus-native spelling of
//     Snapshot.Sum.
//   - Characters outside [a-zA-Z0-9_:] are replaced with '_', and a
//     leading digit gets a '_' prefix, per the metric-name grammar.
//   - Histograms render cumulative le-bucket counts (obs buckets are
//     per-bin), plus the _sum and _count series.
//
// Families are emitted in sorted order with one HELP/TYPE header each,
// and series within a family are sorted by label, so output is
// deterministic and diffable in golden tests.

// promFamily collects the series of one rendered metric family.
type promFamily struct {
	name   string
	typ    string // "counter" | "gauge" | "histogram"
	help   string
	series []promSeries
}

type promSeries struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered label set incl. braces, or ""
	value  string
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. namespace prefixes every family name ("discs" recommended);
// empty means no prefix.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	fams := make(map[string]*promFamily)
	add := func(raw, typ, suffix, labels, value string) {
		name, as := splitASScope(raw)
		fam := promName(namespace, name)
		f := fams[fam]
		if f == nil {
			f = &promFamily{name: fam, typ: typ, help: fmt.Sprintf("DISCS metric %s.", name)}
			fams[fam] = f
		}
		lbl := labels
		if as != "" {
			switch {
			case lbl == "":
				lbl = fmt.Sprintf(`{as=%q}`, as)
			default:
				lbl = fmt.Sprintf(`{as=%q,%s`, as, lbl[1:])
			}
		}
		f.series = append(f.series, promSeries{suffix: suffix, labels: lbl, value: value})
	}

	for name, v := range s.Counters {
		add(name, "counter", "", "", fmt.Sprintf("%d", v))
	}
	for name, v := range s.Gauges {
		add(name, "gauge", "", "", fmt.Sprintf("%d", v))
	}
	for name, h := range s.Histograms {
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			add(name, "histogram", "_bucket", fmt.Sprintf(`{le=%q}`, le), fmt.Sprintf("%d", cum))
		}
		add(name, "histogram", "_sum", "", fmt.Sprintf("%d", h.Sum))
		add(name, "histogram", "_count", "", fmt.Sprintf("%d", h.Count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool {
			a, b := f.series[i], f.series[j]
			if a.suffix != b.suffix {
				return a.suffix < b.suffix
			}
			return a.labels < b.labels
		})
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, sr := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, sr.suffix, sr.labels, sr.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitASScope recognizes the repo-wide "as<N>." scope prefix and
// lifts it into a label value, returning the remaining metric name.
// Names without the prefix pass through with an empty AS.
func splitASScope(name string) (rest, as string) {
	if len(name) < 4 || name[0] != 'a' || name[1] != 's' {
		return name, ""
	}
	i := 2
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		i++
	}
	if i == 2 || i >= len(name) || name[i] != '.' || i+1 >= len(name) {
		return name, ""
	}
	return name[i+1:], name[2:i]
}

// promName sanitizes a dotted metric name into the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
