package eval

import (
	"fmt"
	"io"

	"discs/internal/topology"
)

// Point is one sample of a deployment curve.
type Point struct {
	// N is the number of deployers (Figures 6, 7) at this sample.
	N int
	// Ratio is the deployment ratio N/total (Figure 5's x axis).
	Ratio float64
	// Y holds the curve values at this sample, keyed by series name.
	Y map[string]float64
}

// samplePoints returns ~count indices in [1, n], always including 1
// and n, spaced evenly.
func samplePoints(n, count int) []int {
	if n <= 1 {
		// A 1-AS topology has exactly one sample; without this the
		// clamp below forces count to 1 and the spacing divides by
		// zero.
		if n == 1 {
			return []int{1}
		}
		return nil
	}
	if count < 2 {
		count = 2
	}
	if count > n {
		count = n
	}
	out := make([]int, 0, count)
	prev := 0
	for k := 0; k < count; k++ {
		i := 1 + k*(n-1)/(count-1)
		if i != prev {
			out = append(out, i)
			prev = i
		}
	}
	return out
}

// IncentiveCurve walks the deployment order and samples the three
// §VI-A1 incentive series (Figure 5 for one run; Figures 6b/6c for a
// fixed strategy). Series: "DP" (=SP), "CDP" (=CSP), "DP+CDP" (=SP+CSP).
func IncentiveCurve(r *Ratios, order []topology.ASN, samples int) ([]Point, error) {
	acc := NewAccumulator(r)
	marks := samplePoints(len(order), samples)
	var out []Point
	mi := 0
	for k, asn := range order {
		if err := acc.Deploy(asn); err != nil {
			return nil, err
		}
		if mi < len(marks) && k+1 == marks[mi] {
			out = append(out, Point{
				N:     k + 1,
				Ratio: float64(k+1) / float64(len(order)),
				Y: map[string]float64{
					"DP":     acc.IncDP(),
					"CDP":    acc.IncCDP(),
					"DP+CDP": acc.IncBoth(),
				},
			})
			mi++
		}
	}
	return out, nil
}

// MeanIncentiveCurve averages IncentiveCurve over `runs` random
// deployment orders (the paper runs 50, §VI-A2) — this is Figure 5.
func MeanIncentiveCurve(r *Ratios, runs, samples int, seed int64) ([]Point, error) {
	var mean []Point
	for run := 0; run < runs; run++ {
		pts, err := IncentiveCurve(r, r.RandomOrder(seed+int64(run)), samples)
		if err != nil {
			return nil, err
		}
		if mean == nil {
			mean = make([]Point, len(pts))
			for i, p := range pts {
				mean[i] = Point{N: p.N, Ratio: p.Ratio, Y: map[string]float64{}}
			}
		}
		if len(pts) != len(mean) {
			return nil, fmt.Errorf("eval: sample grid changed between runs")
		}
		for i, p := range pts {
			for k, v := range p.Y {
				mean[i].Y[k] += v / float64(runs)
			}
		}
	}
	return mean, nil
}

// EffectivenessCurve samples the §VI-B global-spoofing reduction along
// a deployment order (Figure 7).
func EffectivenessCurve(r *Ratios, order []topology.ASN, samples int) ([]Point, error) {
	acc := NewAccumulator(r)
	marks := samplePoints(len(order), samples)
	var out []Point
	mi := 0
	for k, asn := range order {
		if err := acc.Deploy(asn); err != nil {
			return nil, err
		}
		if mi < len(marks) && k+1 == marks[mi] {
			out = append(out, Point{
				N:     k + 1,
				Ratio: float64(k+1) / float64(len(order)),
				Y:     map[string]float64{"effectiveness": acc.Effectiveness()},
			})
			mi++
		}
	}
	return out, nil
}

// CumulativeRatioCurve samples Figure 6a: the cumulated address-space
// ratio along a deployment order.
func CumulativeRatioCurve(r *Ratios, order []topology.ASN, samples int) []Point {
	cum := r.CumulativeRatio(order)
	marks := samplePoints(len(order), samples)
	out := make([]Point, 0, len(marks))
	for _, m := range marks {
		out = append(out, Point{
			N:     m,
			Ratio: float64(m) / float64(len(order)),
			Y:     map[string]float64{"cumulated": cum[m-1]},
		})
	}
	return out
}

// StrategyCurves evaluates fn under the three §VI-A3 strategies —
// optimal (largest first), random, and the uniform hypothetical — and
// returns the per-strategy series. fn is applied to (ratios, order).
func StrategyCurves(r *Ratios, samples int, seed int64,
	fn func(r *Ratios, order []topology.ASN, samples int) ([]Point, error)) (map[string][]Point, error) {
	out := make(map[string][]Point, 3)
	var err error
	if out["optimal"], err = fn(r, r.OptimalOrder(), samples); err != nil {
		return nil, err
	}
	if out["random"], err = fn(r, r.RandomOrder(seed), samples); err != nil {
		return nil, err
	}
	uni := Uniform(r.Len())
	if out["uniform"], err = fn(uni, uni.ASNs, samples); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteTSV dumps points as a tab-separated table with a header, the
// format cmd/discs-eval prints for every figure.
func WriteTSV(w io.Writer, series []string, pts []Point) error {
	if _, err := fmt.Fprint(w, "n\tratio"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\t%s", s); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d\t%.6f", p.N, p.Ratio); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, "\t%.6f", p.Y[s]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
