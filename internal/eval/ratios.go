// Package eval implements the evaluation engine of §VI of the paper:
// closed-form deployment incentives for the DISCS functions (§VI-A1),
// the random/optimal/uniform deployment strategies (§VI-A2, §VI-A3),
// global effectiveness (§VI-B), and Monte-Carlo cross-checks of the
// closed forms against flow-level simulation.
//
// Everything is computed over the per-AS routable-address ratios r_j:
// the paper's simulation assumption is that every routable address is
// equally likely to be the agent, innocent or victim of a spoofing
// flow, so p^A_j = p^I_j = p^V_j = r_j.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"discs/internal/topology"
)

// Ratios is the r_j vector over a fixed AS ordering.
type Ratios struct {
	ASNs []topology.ASN
	R    []float64 // parallel to ASNs; sums to ~1
	idx  map[topology.ASN]int
}

// FromTopology extracts the ratios of every AS in the topology.
func FromTopology(t *topology.Topology) *Ratios {
	asns := append([]topology.ASN(nil), t.ASNs()...)
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	r := &Ratios{ASNs: asns, R: make([]float64, len(asns)), idx: make(map[topology.ASN]int, len(asns))}
	for i, asn := range asns {
		r.R[i] = t.Ratio(asn)
		r.idx[asn] = i
	}
	return r
}

// Uniform builds a hypothetical Internet of n equally sized ASes
// (ASN 1..n) — the "uniform" reference curve of Figure 6.
func Uniform(n int) *Ratios {
	r := &Ratios{ASNs: make([]topology.ASN, n), R: make([]float64, n), idx: make(map[topology.ASN]int, n)}
	for i := 0; i < n; i++ {
		asn := topology.ASN(i + 1)
		r.ASNs[i] = asn
		r.R[i] = 1 / float64(n)
		r.idx[asn] = i
	}
	return r
}

// Of returns r_j for an AS.
func (r *Ratios) Of(asn topology.ASN) (float64, error) {
	i, ok := r.idx[asn]
	if !ok {
		return 0, fmt.Errorf("eval: unknown AS%d", asn)
	}
	return r.R[i], nil
}

// Len returns the number of ASes.
func (r *Ratios) Len() int { return len(r.ASNs) }

// RandomOrder returns a seeded random deployment order over all ASes
// (the §VI-A2 process: repeatedly pick a random LAS).
func (r *Ratios) RandomOrder(seed int64) []topology.ASN {
	rng := rand.New(rand.NewSource(seed))
	out := append([]topology.ASN(nil), r.ASNs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// OptimalOrder returns the largest-first order, which §VI-A3 proves
// optimal for follower incentives.
func (r *Ratios) OptimalOrder() []topology.ASN {
	out := append([]topology.ASN(nil), r.ASNs...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := r.R[r.idx[out[i]]], r.R[r.idx[out[j]]]
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// CumulativeRatio returns the cumulated address-space ratio after each
// deployment step of the order (Figure 6a).
func (r *Ratios) CumulativeRatio(order []topology.ASN) []float64 {
	out := make([]float64, len(order))
	var sum float64
	for k, asn := range order {
		sum += r.R[r.idx[asn]]
		out[k] = sum
	}
	return out
}
