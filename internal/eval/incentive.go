package eval

import (
	"fmt"

	"discs/internal/topology"
)

// Accumulator tracks a growing deployment set D and evaluates the
// §VI-A1 closed forms and the §VI-B effectiveness in O(1)/O(|D|) per
// query, using the running sums
//
//	S1 = Σ_{j∈D} r_j     S2 = Σ_{j∈D} r_j²
//	T  = Σ_{v∉D} r_v     U  = Σ_{v∉D} r_v²
//
// The deployment incentives of SP, CSP and SP+CSP have exactly the
// same forms as DP, CDP and DP+CDP (§VI-A1), so the DP family covers
// both.
type Accumulator struct {
	r        *Ratios
	deployed []bool
	n        int // |D|

	s1, s2 float64 // over D
	t, u   float64 // over the complement
	q2     float64 // Σ_all r² (constant)
	totalW float64 // total valid-flow weight (constant)
}

// NewAccumulator starts with an empty deployment set.
func NewAccumulator(r *Ratios) *Accumulator {
	acc := &Accumulator{r: r, deployed: make([]bool, r.Len())}
	for _, x := range r.R {
		acc.t += x
		acc.u += x * x
	}
	acc.q2 = acc.u
	for _, rv := range r.R {
		inner := (1 - rv) - (acc.q2 - rv*rv) - rv*(1-rv)
		acc.totalW += rv * inner
	}
	return acc
}

// Deploy moves an AS into D.
func (a *Accumulator) Deploy(asn topology.ASN) error {
	i, ok := a.r.idx[asn]
	if !ok {
		return fmt.Errorf("eval: unknown AS%d", asn)
	}
	if a.deployed[i] {
		return fmt.Errorf("eval: AS%d already deployed", asn)
	}
	a.deployed[i] = true
	a.n++
	x := a.r.R[i]
	a.s1 += x
	a.s2 += x * x
	a.t -= x
	a.u -= x * x
	return nil
}

// NumDeployed returns |D|.
func (a *Accumulator) NumDeployed() int { return a.n }

// DeployedRatio returns Σ_{j∈D} r_j (Figure 6a's cumulated ratio).
func (a *Accumulator) DeployedRatio() float64 { return a.s1 }

// IncDPFor returns the DP (and SP) incentive for a specific LAS v:
//
//	inc_DP(D, v) = Σ_{a∈D} p^A_a (1 − p^I_a) = S1 − S2.
//
// It is independent of v.
func (a *Accumulator) IncDPFor(topology.ASN) float64 { return a.s1 - a.s2 }

// IncCDPFor returns the CDP (and CSP) incentive for LAS v:
//
//	inc_CDP(D, v) = Σ_{i∈D} p^I_i (1 − p^A_v − p^A_i) = S1 − S2 − r_v·S1.
func (a *Accumulator) IncCDPFor(v topology.ASN) float64 {
	rv, _ := a.r.Of(v)
	return a.s1 - a.s2 - rv*a.s1
}

// IncBothFor returns the DP+CDP (and SP+CSP) incentive for LAS v:
//
//	inc(D, v) = Σ_{a∈D} p^A_a(1−p^I_a) + Σ_{i∈D} p^I_i(1 − p^A_v − p^A_D)
//	          = (S1 − S2) + S1(1 − r_v − S1).
func (a *Accumulator) IncBothFor(v topology.ASN) float64 {
	rv, _ := a.r.Of(v)
	return (a.s1 - a.s2) + a.s1*(1-rv-a.s1)
}

// Average incentives over the remaining LASes, weighted by p^V_v = r_v
// (§VI-A2):
//
//	inc(D) = Σ_{v∉D} r_v·inc(D,v) / Σ_{v∉D} r_v.

// meanRV returns U/T, the ratio-weighted mean r_v over the remaining
// LASes. When the deployment covers (numerically) everything, the
// marginal LAS limit r_v → 0 is used, which is how Figure 5's curves
// are defined at deployment ratio 1.
func (a *Accumulator) meanRV() float64 {
	if a.t <= 1e-12 {
		return 0
	}
	return a.u / a.t
}

// IncDP returns the weighted-average DP/SP incentive.
func (a *Accumulator) IncDP() float64 {
	return a.s1 - a.s2
}

// IncCDP returns the weighted-average CDP/CSP incentive:
// (S1 − S2) − (U/T)·S1.
func (a *Accumulator) IncCDP() float64 {
	return a.s1 - a.s2 - a.meanRV()*a.s1
}

// IncBoth returns the weighted-average DP+CDP / SP+CSP incentive:
// (S1 − S2) + S1(1 − S1) − (U/T)·S1.
func (a *Accumulator) IncBoth() float64 {
	return (a.s1 - a.s2) + a.s1*(1-a.s1) - a.meanRV()*a.s1
}

// Effectiveness returns the §VI-B measure: the fraction of global
// spoofing traffic filtered when every DAS invokes all functions all
// the time. A flow (a, i, v) with a, i, v pairwise distinct is
// filtered iff v ∈ D and (a ∈ D or i ∈ D); flows are weighted
// r_a·r_i·r_v and the result is normalized by the total weight of
// valid flows.
func (a *Accumulator) Effectiveness() float64 {
	total := a.totalW
	if total <= 0 {
		return 0
	}
	var filtered float64
	for i, dep := range a.deployed {
		if !dep {
			continue
		}
		rv := a.r.R[i]
		// a ∈ D, a ≠ v: Σ r_a(1−r_a−r_v)
		c1 := (a.s1 - rv) - (a.s2 - rv*rv) - rv*(a.s1-rv)
		// a ∉ D (hence a ≠ v): Σ_{i'∈D, i'≠v} r_i' = S1 − r_v
		c2 := (1 - a.s1) * (a.s1 - rv)
		filtered += rv * (c1 + c2)
	}
	return filtered / total
}
