package eval

import (
	"math/rand"

	"discs/internal/attack"
	"discs/internal/baseline"
	"discs/internal/topology"
)

// This file cross-checks the closed forms against flow-level
// Monte-Carlo simulation using the analytic DISCS filter
// (baseline.DISCS) — experiment X1 of DESIGN.md. The closed forms and
// the sampler use the same assumption (addresses uniformly likely to
// be agent/innocent/victim), so the estimates must agree up to
// sampling error and the O(r_j) cross terms the paper's forms drop.

// MonteCarloIncentive estimates inc(D, v): the fraction of spoofing
// flows attacking LAS v that become filtered when v deploys. kind
// selects d-DDoS (DP+CDP protection) or s-DDoS (SP+CSP); the two
// estimates coincide in distribution.
func MonteCarloIncentive(topo *topology.Topology, deployed []topology.ASN,
	v topology.ASN, kind attack.Kind, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	s := attack.NewSampler(topo)
	d := make(baseline.Deployment, len(deployed)+1)
	for _, asn := range deployed {
		d[asn] = true
	}
	filter := baseline.DISCS{}
	// Before deployment F(D, ·) = 0 for every flow attacking the LAS v,
	// so the delta equals the post-deployment filter rate.
	d[v] = true
	hits := 0
	for k := 0; k < n; k++ {
		f := s.DrawFlowForVictim(kind, v, rng)
		if f.Agent == 0 {
			continue
		}
		if filter.Filters(topo, d, f) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// MonteCarloEffectiveness estimates the §VI-B global reduction by
// sampling flows over the whole Internet.
func MonteCarloEffectiveness(topo *topology.Topology, deployed []topology.ASN,
	kind attack.Kind, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	s := attack.NewSampler(topo)
	d := make(baseline.Deployment, len(deployed))
	for _, asn := range deployed {
		d[asn] = true
	}
	filter := baseline.DISCS{}
	hits := 0
	for k := 0; k < n; k++ {
		f := s.DrawFlow(kind, rng)
		if f.Agent == 0 {
			continue
		}
		if filter.Filters(topo, d, f) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// BaselineEffectiveness estimates any defense's global filter rate in
// the same Monte-Carlo framework, for the comparison benches.
func BaselineEffectiveness(topo *topology.Topology, def baseline.Defense,
	deployed []topology.ASN, kind attack.Kind, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	s := attack.NewSampler(topo)
	d := make(baseline.Deployment, len(deployed))
	for _, asn := range deployed {
		d[asn] = true
	}
	hits := 0
	for k := 0; k < n; k++ {
		f := s.DrawFlow(kind, rng)
		if f.Agent == 0 {
			continue
		}
		if def.Filters(topo, d, f) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}
