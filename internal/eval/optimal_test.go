package eval

import (
	"math/rand"
	"testing"

	"discs/internal/topology"
)

// subsetInc computes the weighted-average DP+CDP incentive for an
// arbitrary deployment subset.
func subsetInc(r *Ratios, subset []topology.ASN) float64 {
	acc := NewAccumulator(r)
	for _, asn := range subset {
		if err := acc.Deploy(asn); err != nil {
			panic(err)
		}
	}
	return acc.IncBoth()
}

// forEachSubset enumerates all size-m subsets of items.
func forEachSubset(items []topology.ASN, m int, fn func([]topology.ASN)) {
	subset := make([]topology.ASN, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			fn(subset)
			return
		}
		for i := start; i <= len(items)-(m-k); i++ {
			subset[k] = items[i]
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
}

// TestOptimalStrategyExhaustive verifies the §VI-A3 theorem (proved in
// the paper's supplementary material) by brute force on small random
// Internets: among ALL subsets of m early deployers, choosing the m
// largest ASes maximizes the average follower incentive.
func TestOptimalStrategyExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(3) // 6..8 ASes
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()*20 + 0.1
		}
		r := smallRatios(t, weights)
		top := r.OptimalOrder()

		for m := 1; m < n-1; m++ {
			best := subsetInc(r, top[:m])
			forEachSubset(r.ASNs, m, func(subset []topology.ASN) {
				if got := subsetInc(r, subset); got > best+1e-9 {
					t.Fatalf("trial %d m=%d: subset %v incentive %v beats top-%d %v (weights %v)",
						trial, m, subset, got, m, best, weights)
				}
			})
		}
	}
}

// TestOptimalStrategyExhaustiveEffectiveness does the same for the
// §VI-B effectiveness measure (Figure 7's optimal curve).
func TestOptimalStrategyExhaustiveEffectiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	subsetEff := func(r *Ratios, subset []topology.ASN) float64 {
		acc := NewAccumulator(r)
		for _, asn := range subset {
			acc.Deploy(asn)
		}
		return acc.Effectiveness()
	}
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(2)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()*20 + 0.1
		}
		r := smallRatios(t, weights)
		top := r.OptimalOrder()
		for m := 1; m <= n; m++ {
			best := subsetEff(r, top[:m])
			forEachSubset(r.ASNs, m, func(subset []topology.ASN) {
				if got := subsetEff(r, subset); got > best+1e-9 {
					t.Fatalf("trial %d m=%d: subset %v effectiveness %v beats top-%d %v",
						trial, m, subset, got, m, best)
				}
			})
		}
	}
}
