package eval

import (
	"bytes"
	"math"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"discs/internal/topology"
)

// smallRatios builds a hand-made ratio vector over ASes 1..n.
func smallRatios(t *testing.T, weights []float64) *Ratios {
	t.Helper()
	var sum float64
	for _, w := range weights {
		sum += w
	}
	r := &Ratios{idx: make(map[topology.ASN]int)}
	for i, w := range weights {
		asn := topology.ASN(i + 1)
		r.ASNs = append(r.ASNs, asn)
		r.R = append(r.R, w/sum)
		r.idx[asn] = i
	}
	return r
}

// bruteIncentives computes the §VI-A1 incentive definitions for a
// victim v by direct enumeration over all (a, i) pairs.
func bruteIncentives(r *Ratios, deployed map[topology.ASN]bool, v topology.ASN) (dp, cdp, both float64) {
	for ai, a := range r.ASNs {
		for ii, i := range r.ASNs {
			w := r.R[ai] * r.R[ii]
			dpHit := deployed[a] && i != a
			cdpHit := deployed[i] && a != v && a != i
			if dpHit {
				dp += w
			}
			if cdpHit {
				cdp += w
			}
			if dpHit || cdpHit {
				both += w
			}
		}
	}
	return dp, cdp, both
}

func TestClosedFormsMatchBruteForce(t *testing.T) {
	r := smallRatios(t, []float64{8, 5, 3, 2, 1, 1, 0.5, 0.25})
	acc := NewAccumulator(r)
	deployed := map[topology.ASN]bool{}
	for _, asn := range []topology.ASN{2, 5, 7} {
		if err := acc.Deploy(asn); err != nil {
			t.Fatal(err)
		}
		deployed[asn] = true
	}
	for _, v := range []topology.ASN{1, 3, 8} { // LASes
		dp, cdp, both := bruteIncentives(r, deployed, v)
		if got := acc.IncDPFor(v); math.Abs(got-dp) > 1e-12 {
			t.Errorf("IncDPFor(%d) = %v, brute %v", v, got, dp)
		}
		if got := acc.IncCDPFor(v); math.Abs(got-cdp) > 1e-12 {
			t.Errorf("IncCDPFor(%d) = %v, brute %v", v, got, cdp)
		}
		if got := acc.IncBothFor(v); math.Abs(got-both) > 1e-12 {
			t.Errorf("IncBothFor(%d) = %v, brute %v", v, got, both)
		}
	}
}

func TestAverageIncentivesMatchBruteForce(t *testing.T) {
	r := smallRatios(t, []float64{8, 5, 3, 2, 1, 1})
	acc := NewAccumulator(r)
	deployed := map[topology.ASN]bool{}
	for _, asn := range []topology.ASN{1, 4} {
		acc.Deploy(asn)
		deployed[asn] = true
	}
	var wDP, wCDP, wBoth, wSum float64
	for vi, v := range r.ASNs {
		if deployed[v] {
			continue
		}
		dp, cdp, both := bruteIncentives(r, deployed, v)
		w := r.R[vi]
		wDP += w * dp
		wCDP += w * cdp
		wBoth += w * both
		wSum += w
	}
	if got := acc.IncDP(); math.Abs(got-wDP/wSum) > 1e-12 {
		t.Errorf("IncDP = %v, brute %v", got, wDP/wSum)
	}
	if got := acc.IncCDP(); math.Abs(got-wCDP/wSum) > 1e-12 {
		t.Errorf("IncCDP = %v, brute %v", got, wCDP/wSum)
	}
	if got := acc.IncBoth(); math.Abs(got-wBoth/wSum) > 1e-12 {
		t.Errorf("IncBoth = %v, brute %v", got, wBoth/wSum)
	}
}

// bruteEffectiveness enumerates all valid (a,i,v) triples.
func bruteEffectiveness(r *Ratios, deployed map[topology.ASN]bool) float64 {
	var filtered, total float64
	for ai, a := range r.ASNs {
		for ii, i := range r.ASNs {
			for vi, v := range r.ASNs {
				if a == v || i == v || a == i {
					continue
				}
				w := r.R[ai] * r.R[ii] * r.R[vi]
				total += w
				if deployed[v] && (deployed[a] || deployed[i]) {
					filtered += w
				}
			}
		}
	}
	return filtered / total
}

func TestEffectivenessMatchesBruteForce(t *testing.T) {
	r := smallRatios(t, []float64{8, 5, 3, 2, 1, 1, 0.5})
	acc := NewAccumulator(r)
	deployed := map[topology.ASN]bool{}
	for _, asn := range []topology.ASN{1, 3, 6} {
		acc.Deploy(asn)
		deployed[asn] = true
	}
	want := bruteEffectiveness(r, deployed)
	if got := acc.Effectiveness(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Effectiveness = %v, brute %v", got, want)
	}
}

func TestEffectivenessBounds(t *testing.T) {
	r := smallRatios(t, []float64{5, 4, 3, 2, 1})
	acc := NewAccumulator(r)
	if acc.Effectiveness() != 0 {
		t.Fatal("empty deployment should have zero effectiveness")
	}
	for _, asn := range r.ASNs {
		acc.Deploy(asn)
	}
	if e := acc.Effectiveness(); math.Abs(e-1) > 1e-9 {
		t.Fatalf("full deployment effectiveness = %v, want 1", e)
	}
}

// TestMonotonicIncentives is experiment X2: the §VI-A1 theorem that
// incentives increase monotonically with the deployment set, checked
// as a randomized property over growth sequences.
func TestMonotonicIncentives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(20)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()*10 + 0.01
		}
		r := smallRatios(t, weights)
		order := r.RandomOrder(int64(trial))
		v := order[len(order)-1] // stays an LAS throughout
		acc := NewAccumulator(r)
		prevDP, prevCDP, prevBoth := 0.0, 0.0, 0.0
		for _, asn := range order[:len(order)-1] {
			acc.Deploy(asn)
			dp, cdp, both := acc.IncDPFor(v), acc.IncCDPFor(v), acc.IncBothFor(v)
			const eps = 1e-12
			if dp < prevDP-eps || cdp < prevCDP-eps || both < prevBoth-eps {
				t.Fatalf("trial %d: incentive decreased: DP %v→%v CDP %v→%v Both %v→%v",
					trial, prevDP, dp, prevCDP, cdp, prevBoth, both)
			}
			prevDP, prevCDP, prevBoth = dp, cdp, both
		}
	}
}

// TestMonotonicEffectiveness: effectiveness also grows with deployment.
func TestMonotonicEffectiveness(t *testing.T) {
	r := smallRatios(t, []float64{9, 7, 5, 3, 2, 1, 1, 0.5})
	acc := NewAccumulator(r)
	prev := 0.0
	for _, asn := range r.OptimalOrder() {
		acc.Deploy(asn)
		e := acc.Effectiveness()
		if e < prev-1e-12 {
			t.Fatalf("effectiveness decreased %v → %v", prev, e)
		}
		prev = e
	}
}

// TestOptimalDominatesRandom verifies the §VI-A3 optimal-strategy
// theorem empirically: at every prefix length, largest-first yields
// incentive ≥ any random order.
func TestOptimalDominatesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := make([]float64, 50)
	for i := range weights {
		weights[i] = math.Pow(rng.Float64()+0.001, 3) * 100
	}
	r := smallRatios(t, weights)
	opt := r.OptimalOrder()
	for trial := 0; trial < 10; trial++ {
		rnd := r.RandomOrder(int64(trial))
		accO, accR := NewAccumulator(r), NewAccumulator(r)
		for k := 0; k < len(opt)-1; k++ {
			accO.Deploy(opt[k])
			accR.Deploy(rnd[k])
			// Compare incentive for a victim not deployed in either.
			if accO.IncDP() < accR.IncDP()-1e-9 {
				t.Fatalf("optimal DP incentive below random at k=%d", k+1)
			}
			if accO.IncBoth() < accR.IncBoth()-1e-6 {
				t.Fatalf("optimal Both incentive below random at k=%d: %v < %v",
					k+1, accO.IncBoth(), accR.IncBoth())
			}
		}
	}
}

func TestDPandCDPRelation(t *testing.T) {
	// §VI-A2: the DP and CDP curves nearly coincide (CDP is lower by
	// r_v·S1 per victim, a tiny amount), and DP+CDP is strictly higher.
	r := smallRatios(t, []float64{5, 4, 3, 2, 1, 1, 1, 1, 1, 1})
	acc := NewAccumulator(r)
	for _, asn := range []topology.ASN{1, 5, 9} {
		acc.Deploy(asn)
	}
	dp, cdp, both := acc.IncDP(), acc.IncCDP(), acc.IncBoth()
	if !(cdp <= dp) {
		t.Fatalf("CDP %v > DP %v", cdp, dp)
	}
	if !(both > dp) {
		t.Fatalf("Both %v ≤ DP %v", both, dp)
	}
	if dp-cdp > 0.2*dp {
		t.Fatalf("DP %v and CDP %v should nearly coincide", dp, cdp)
	}
}

func TestUniformRatios(t *testing.T) {
	u := Uniform(100)
	if u.Len() != 100 {
		t.Fatal("len")
	}
	var sum float64
	for _, x := range u.R {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("uniform ratios sum to %v", sum)
	}
	// Cumulative ratio grows linearly.
	cum := u.CumulativeRatio(u.ASNs)
	for k, c := range cum {
		if math.Abs(c-float64(k+1)/100) > 1e-9 {
			t.Fatalf("cumulative[%d] = %v", k, c)
		}
	}
}

func TestOrdersArePermutations(t *testing.T) {
	r := smallRatios(t, []float64{3, 1, 4, 1, 5, 9, 2, 6})
	for name, order := range map[string][]topology.ASN{
		"random":  r.RandomOrder(1),
		"optimal": r.OptimalOrder(),
	} {
		if len(order) != r.Len() {
			t.Fatalf("%s order length %d", name, len(order))
		}
		seen := map[topology.ASN]bool{}
		for _, asn := range order {
			if seen[asn] {
				t.Fatalf("%s order repeats AS%d", name, asn)
			}
			seen[asn] = true
		}
	}
	// Optimal is sorted by ratio descending.
	opt := r.OptimalOrder()
	for i := 1; i < len(opt); i++ {
		a, _ := r.Of(opt[i-1])
		b, _ := r.Of(opt[i])
		if a < b {
			t.Fatal("optimal order not descending")
		}
	}
}

func TestAccumulatorErrors(t *testing.T) {
	r := smallRatios(t, []float64{1, 2})
	acc := NewAccumulator(r)
	if err := acc.Deploy(99); err == nil {
		t.Fatal("unknown AS accepted")
	}
	acc.Deploy(1)
	if err := acc.Deploy(1); err == nil {
		t.Fatal("double deploy accepted")
	}
	if _, err := r.Of(99); err == nil {
		t.Fatal("Of(99) should fail")
	}
}

func TestIncentiveCurveShape(t *testing.T) {
	weights := make([]float64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.0)
	}
	rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	r := smallRatios(t, weights)
	pts, err := IncentiveCurve(r, r.RandomOrder(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("only %d points", len(pts))
	}
	// Monotone in N; last point near full deployment.
	for i := 1; i < len(pts); i++ {
		if pts[i].N <= pts[i-1].N {
			t.Fatal("sample grid not increasing")
		}
		// The per-victim incentive is monotone (the §VI-A1 theorem);
		// the *average* over the shrinking LAS set may wobble by the
		// change in U/T, so allow a small slack.
		if pts[i].Y["DP+CDP"] < pts[i-1].Y["DP+CDP"]-1e-2 {
			t.Fatalf("DP+CDP curve dropped: %v -> %v", pts[i-1].Y["DP+CDP"], pts[i].Y["DP+CDP"])
		}
	}
	last := pts[len(pts)-1]
	if last.N != 500 || last.Ratio != 1 {
		t.Fatalf("last point = %+v", last)
	}
}

func TestMeanIncentiveCurve(t *testing.T) {
	r := smallRatios(t, []float64{10, 8, 6, 4, 2, 1, 1, 1, 1, 1})
	mean, err := MeanIncentiveCurve(r, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The final point is deployment of everything: identical across
	// runs, so the mean equals a single run's final value.
	single, _ := IncentiveCurve(r, r.RandomOrder(42), 10)
	gotLast := mean[len(mean)-1].Y["DP"]
	wantLast := single[len(single)-1].Y["DP"]
	if math.Abs(gotLast-wantLast) > 1e-9 {
		t.Fatalf("mean final %v != single final %v", gotLast, wantLast)
	}
}

func TestStrategyCurves(t *testing.T) {
	weights := make([]float64, 200)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	r := smallRatios(t, weights)
	curves, err := StrategyCurves(r, 20, 7, EffectivenessCurve)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"optimal", "random", "uniform"} {
		if len(curves[name]) == 0 {
			t.Fatalf("missing %s curve", name)
		}
	}
	// Optimal must dominate random and uniform at the early stage.
	k := len(curves["optimal"]) / 4
	opt := curves["optimal"][k].Y["effectiveness"]
	rnd := curves["random"][k].Y["effectiveness"]
	uni := curves["uniform"][k].Y["effectiveness"]
	if !(opt > rnd && opt > uni) {
		t.Fatalf("optimal %v not above random %v / uniform %v early", opt, rnd, uni)
	}
}

func TestWriteTSV(t *testing.T) {
	pts := []Point{
		{N: 1, Ratio: 0.5, Y: map[string]float64{"a": 0.25}},
		{N: 2, Ratio: 1.0, Y: map[string]float64{"a": 0.5}},
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, []string{"a"}, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "n\tratio\ta" {
		t.Fatalf("tsv = %q", buf.String())
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(1000, 11)
	if pts[0] != 1 || pts[len(pts)-1] != 1000 {
		t.Fatalf("endpoints = %v", pts)
	}
	pts = samplePoints(3, 10)
	if len(pts) != 3 {
		t.Fatalf("small-n grid = %v", pts)
	}
}

func TestFromTopologyMatchesRatios(t *testing.T) {
	tp := topology.New()
	tp.AddAS(1)
	tp.AddAS(2)
	tp.AddPrefix(1, netip.MustParsePrefix("10.0.0.0/8"))
	tp.AddPrefix(2, netip.MustParsePrefix("11.0.0.0/8"))
	r := FromTopology(tp)
	if r.Len() != 2 {
		t.Fatal("len")
	}
	x, err := r.Of(1)
	if err != nil || math.Abs(x-0.5) > 1e-12 {
		t.Fatalf("Of(1) = %v %v", x, err)
	}
}
