package eval

import (
	"net/netip"
	"testing"

	"discs/internal/topology"
)

// TestSamplePointsSingleton: samplePoints(1, k) used to clamp count to
// 1 and then divide by count-1 — a panic on every 1-AS topology. It
// must return the single valid sample instead.
func TestSamplePointsSingleton(t *testing.T) {
	for _, count := range []int{0, 1, 2, 10, 60} {
		pts := samplePoints(1, count)
		if len(pts) != 1 || pts[0] != 1 {
			t.Fatalf("samplePoints(1, %d) = %v, want [1]", count, pts)
		}
	}
	if pts := samplePoints(0, 10); pts != nil {
		t.Fatalf("samplePoints(0, 10) = %v, want nil", pts)
	}
	if pts := samplePoints(-3, 5); pts != nil {
		t.Fatalf("samplePoints(-3, 5) = %v, want nil", pts)
	}
}

// TestCurvesOnSingleAS: every curve function survives a 1-AS topology
// end to end (they all funnel through samplePoints).
func TestCurvesOnSingleAS(t *testing.T) {
	tp := topology.New()
	if _, err := tp.AddAS(1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddPrefix(1, netip.MustParsePrefix("10.0.0.0/24")); err != nil {
		t.Fatal(err)
	}
	r := FromTopology(tp)
	order := []topology.ASN{1}

	if pts, err := IncentiveCurve(r, order, 60); err != nil || len(pts) != 1 {
		t.Fatalf("IncentiveCurve = %v, %v", pts, err)
	}
	if pts, err := EffectivenessCurve(r, order, 60); err != nil || len(pts) != 1 {
		t.Fatalf("EffectivenessCurve = %v, %v", pts, err)
	}
	if pts := CumulativeRatioCurve(r, order, 60); len(pts) != 1 {
		t.Fatalf("CumulativeRatioCurve = %v", pts)
	}
	if pts, err := MeanIncentiveCurve(r, 3, 60, 7); err != nil || len(pts) != 1 {
		t.Fatalf("MeanIncentiveCurve = %v, %v", pts, err)
	}
	curves, err := StrategyCurves(r, 60, 7, func(rr *Ratios, o []topology.ASN, s int) ([]Point, error) {
		return IncentiveCurve(rr, o, s)
	})
	if err != nil {
		t.Fatalf("StrategyCurves: %v", err)
	}
	for name, pts := range curves {
		if len(pts) != 1 {
			t.Fatalf("strategy %s: %v", name, pts)
		}
	}
}
