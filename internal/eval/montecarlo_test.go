package eval

import (
	"math"
	"math/rand"
	"testing"

	"discs/internal/attack"
	"discs/internal/baseline"
	"discs/internal/topology"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mcTopo builds a moderately sized synthetic Internet (links skipped:
// the analytic filter does not need paths).
func mcTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 300, NumPrefixes: 600, ZipfExponent: 1.0, Seed: 9, SkipLinks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestMonteCarloMatchesClosedFormIncentive is experiment X1: the
// flow-level estimate of inc(D, v) agrees with the closed form.
func TestMonteCarloMatchesClosedFormIncentive(t *testing.T) {
	tp := mcTopo(t)
	r := FromTopology(tp)
	order := r.OptimalOrder()
	deployed := order[:30]
	v := order[len(order)-1] // a small LAS

	acc := NewAccumulator(r)
	for _, asn := range deployed {
		acc.Deploy(asn)
	}
	want := acc.IncBothFor(v)
	got := MonteCarloIncentive(tp, deployed, v, attack.DDDoS, 40_000, 1)
	// The closed form drops O(r²) cross terms and the sampler enforces
	// distinctness, so agreement is approximate.
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("MC incentive %v vs closed form %v", got, want)
	}
	// SP+CSP has the identical form: the s-DDoS estimate agrees too.
	gotS := MonteCarloIncentive(tp, deployed, v, attack.SDDoS, 40_000, 2)
	if math.Abs(gotS-want) > 0.03 {
		t.Fatalf("MC s-DDoS incentive %v vs closed form %v", gotS, want)
	}
}

func TestMonteCarloMatchesClosedFormEffectiveness(t *testing.T) {
	tp := mcTopo(t)
	r := FromTopology(tp)
	order := r.OptimalOrder()
	deployed := order[:40]

	acc := NewAccumulator(r)
	for _, asn := range deployed {
		acc.Deploy(asn)
	}
	want := acc.Effectiveness()
	got := MonteCarloEffectiveness(tp, deployed, attack.DDDoS, 60_000, 3)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("MC effectiveness %v vs closed form %v", got, want)
	}
}

// TestDISCSOutperformsBaselinesUnderPartialDeployment reproduces the
// qualitative §II comparison at 10% optimal deployment: DISCS filters
// more of the global spoofing traffic than SPM (needs both endpoints)
// and IF (needs the agent), and at least matches MEF.
func TestDISCSOutperformsBaselinesUnderPartialDeployment(t *testing.T) {
	tp := mcTopo(t)
	r := FromTopology(tp)
	deployed := r.OptimalOrder()[:30]

	const n = 30_000
	discs := BaselineEffectiveness(tp, baseline.DISCS{}, deployed, attack.DDDoS, n, 4)
	spm := BaselineEffectiveness(tp, baseline.SPM{}, deployed, attack.DDDoS, n, 4)
	mef := BaselineEffectiveness(tp, baseline.MEF{}, deployed, attack.DDDoS, n, 4)

	if !(discs > spm) {
		t.Fatalf("DISCS %v not above SPM %v", discs, spm)
	}
	if discs < mef-1e-9 {
		t.Fatalf("DISCS %v below MEF %v", discs, mef)
	}
	// IF's global effectiveness is high (any deployed agent filters),
	// but its *incentive* is zero — an LAS deploying IF gains no
	// protection for traffic attacking it (§II). DISCS's defining
	// advantage is positive incentive, not raw effectiveness.
	victim := r.OptimalOrder()[r.Len()-1]
	var ifInc float64
	{
		d := baseline.Deployment{victim: true}
		s := attack.NewSampler(tp)
		rng := newRand(6)
		hits := 0
		for k := 0; k < n; k++ {
			f := s.DrawFlowForVictim(attack.DDDoS, victim, rng)
			if (baseline.IF{}).Filters(tp, d, f) {
				hits++
			}
		}
		ifInc = float64(hits) / n
	}
	discsInc := MonteCarloIncentive(tp, deployed, victim, attack.DDDoS, n, 6)
	if ifInc != 0 {
		t.Fatalf("IF self-incentive = %v, want 0", ifInc)
	}
	if discsInc <= 0.1 {
		t.Fatalf("DISCS incentive = %v, want substantial", discsInc)
	}
	// s-DDoS: SPM and Passport offer nothing, DISCS does.
	discsS := BaselineEffectiveness(tp, baseline.DISCS{}, deployed, attack.SDDoS, n, 5)
	spmS := BaselineEffectiveness(tp, baseline.SPM{}, deployed, attack.SDDoS, n, 5)
	if spmS != 0 {
		t.Fatalf("SPM s-DDoS effectiveness = %v, want 0", spmS)
	}
	if discsS <= 0 {
		t.Fatal("DISCS s-DDoS effectiveness is zero")
	}
}
