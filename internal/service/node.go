package service

import (
	"fmt"
	"sync"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
	"discs/internal/transport"
)

// FrameKindData is the transport frame kind carrying one marshaled
// IPv4 packet between node data planes. It sits above the control
// frame range (core.IsControlFrameKind) so both planes multiplex onto
// one connection, the way con-con records and forwarded traffic share
// the one Internet in the paper's deployment.
const FrameKindData uint8 = 0x80

// Node metric names, published under the node's "as<N>." scope next to
// the ctrl.* and router.* families.
const (
	MetricNodeRxDelivered = "node.rx_delivered"
	MetricNodeRxDropped   = "node.rx_dropped"
	MetricNodeRxMalformed = "node.rx_malformed"
)

// Node hosts one DAS as a live process: controller, border-router data
// plane, TCP(+TLS) transport and admin HTTP. All controller and router
// table access is serialized under mu — the event loop the simulator
// used to provide, rebuilt on a mutex.
type Node struct {
	mu     sync.Mutex
	cfg    Config
	ctrl   *core.Controller
	router *core.BorderRouter
	dir    *core.Directory
	tr     *transport.TCP
	reg    *obs.Registry
	start  time.Time
	closed bool

	rxDelivered *obs.Counter
	rxDropped   *obs.Counter
	rxMalformed *obs.Counter

	admin *adminServer
}

// wallRuntime binds a controller to the wall clock: Now is the offset
// since node start (the service analogue of simulated time), timers
// are time.AfterFunc callbacks re-serialized onto the node's event
// loop. After and AfterBackground coincide — a real process has no
// run-to-quiescence to preserve.
type wallRuntime struct{ n *Node }

func (r wallRuntime) Now() time.Duration { return time.Since(r.n.start) }
func (r wallRuntime) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { r.n.do(fn) })
}
func (r wallRuntime) AfterBackground(d time.Duration, fn func()) { r.After(d, fn) }

// do runs fn on the node's event loop unless the node is closed. Timer
// callbacks outliving Close become no-ops, mirroring how crashing a
// simulated node kills its pending timers.
func (n *Node) do(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		fn()
	}
}

// NewNode builds a node from config: binds the transport and admin
// listeners (so Addr/AdminAddr are concrete even with ":0" configs),
// constructs the controller in service mode and registers the pinned
// peer directory entries. Nothing runs until Start.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	id, err := NodeIdentity(cfg.Name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tr, err := transport.NewTCP(transport.TCPOptions{Addr: cfg.Listen, TLS: cfg.TLS})
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:   cfg,
		dir:   core.NewDirectory(),
		tr:    tr,
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	scope := fmt.Sprintf("as%d.", cfg.AS)
	sc := n.reg.Scope(scope)
	n.rxDelivered = sc.Counter(MetricNodeRxDelivered)
	n.rxDropped = sc.Counter(MetricNodeRxDropped)
	n.rxMalformed = sc.Counter(MetricNodeRxMalformed)

	ctrl, err := core.NewControllerWithOptions(core.ControllerOptions{
		AS: topology.ASN(cfg.AS), Name: cfg.Name,
		Conn: tr, Runtime: wallRuntime{n},
		Dir: n.dir, Topo: topo,
		Config: cfg.coreConfig(), Seed: cfg.Seed,
		Identity: id, Registry: n.reg, Scope: scope,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.ctrl = ctrl
	router, err := core.NewBorderRouterWithOptions(core.RouterOptions{
		Tables: core.NewTables(topology.ASN(cfg.AS), topo.Pfx2AS()),
		Seed:   cfg.Seed ^ 0x5eed, Registry: n.reg, Scope: scope,
		AS: topology.ASN(cfg.AS),
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.router = router
	ctrl.AttachRouter(router)

	if err := n.registerPeers(cfg.Peers); err != nil {
		tr.Close()
		return nil, err
	}
	if cfg.Admin != "" {
		admin, err := newAdminServer(cfg.Admin, n)
		if err != nil {
			tr.Close()
			return nil, err
		}
		n.admin = admin
	}
	return n, nil
}

// registerPeers pins peer directory entries and transport addresses.
// Entries are registered once (the directory rejects duplicates);
// addresses update freely.
func (n *Node) registerPeers(peers []PeerConfig) error {
	for _, p := range peers {
		if p.Addr != "" {
			n.tr.SetPeer(p.Name, p.Addr)
		}
		if n.dir.Lookup(p.Name) != nil {
			continue
		}
		pub, err := p.pub()
		if err != nil {
			return err
		}
		if err := n.dir.Register(&core.DirEntry{
			Name: p.Name, ASN: topology.ASN(p.AS), Pub: pub,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Start begins operation: the transport delivers frames to the event
// loop, the admin endpoint serves, and the pinned peers are announced
// to the controller as static DISCS-Ads (the service-mode stand-in for
// BGP discovery), which kicks off peering, key negotiation and
// heartbeats.
func (n *Node) Start() error {
	if err := n.tr.Start(n.handleFrame); err != nil {
		return err
	}
	if n.admin != nil {
		n.admin.serve()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.cfg.Peers {
		n.ctrl.HandleAd(bgp.DISCSAd{Origin: topology.ASN(p.AS), Controller: p.Name})
	}
	return nil
}

// handleFrame is the transport inbound path: control frames go to the
// controller state machine, data frames through the border router's
// inbound processing — both on the event loop.
func (n *Node) handleFrame(f transport.Frame) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	switch {
	case core.IsControlFrameKind(f.Kind):
		n.ctrl.HandleFrame(f)
	case f.Kind == FrameKindData:
		p, err := packet.ParseIPv4(f.Data)
		if err != nil {
			n.rxMalformed.Inc()
			return
		}
		if v := n.router.ProcessInbound(core.V4{P: p}, n.Now()); v.Dropped() {
			n.rxDropped.Inc()
		} else {
			n.rxDelivered.Inc()
		}
	}
}

// Now is the node's data-plane clock: the same epoch-offset mapping
// the controller uses, so invocation windows line up.
func (n *Node) Now() time.Time {
	return time.Unix(0, 0).UTC().Add(time.Since(n.start))
}

// SendPacket pushes one IPv4 packet out through this AS's border
// router toward the named peer node: outbound processing (DP filter,
// CDP stamp, ...) first, then the wire. It returns the outbound
// verdict and whether the frame went out.
func (n *Node) SendPacket(dst string, p *packet.IPv4) (core.Verdict, bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return core.VerdictDrop, false
	}
	v := n.router.ProcessOutbound(core.V4{P: p}, n.Now())
	n.mu.Unlock()
	if v.Dropped() {
		return v, false
	}
	b, err := p.Marshal()
	if err != nil {
		return v, false
	}
	return v, n.tr.Send(dst, transport.Frame{Kind: FrameKindData, From: n.cfg.Name, Data: b})
}

// InjectRaw ships a packet to the named peer without outbound
// processing — the loadgen's model of spoofed traffic entering from a
// legacy (non-DISCS) AS that runs no egress filtering.
func (n *Node) InjectRaw(dst string, p *packet.IPv4) bool {
	b, err := p.Marshal()
	if err != nil {
		return false
	}
	return n.tr.Send(dst, transport.Frame{Kind: FrameKindData, From: n.cfg.Name, Data: b})
}

// Invoke requests protection, serialized with the event loop (the
// service-mode spelling of Controller.Invoke).
func (n *Node) Invoke(invs ...core.Invocation) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, fmt.Errorf("service: node closed")
	}
	return n.ctrl.Invoke(invs...)
}

// Do runs fn serialized with the node's event loop; fn may touch the
// controller and router freely.
func (n *Node) Do(fn func(c *core.Controller, r *core.BorderRouter)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.ctrl, n.router)
}

// Reload applies a changed config. Only the peer set is live-reloadable
// — new peers are pinned and announced, existing peers' addresses are
// repointed. Identity-defining fields must not change.
func (n *Node) Reload(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Name != n.Name() || cfg.AS != n.AS() {
		return fmt.Errorf("service: reload cannot change node identity (%s/AS%d)", n.Name(), n.AS())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("service: node closed")
	}
	if err := n.registerPeers(cfg.Peers); err != nil {
		return err
	}
	n.cfg.Peers = cfg.Peers
	for _, p := range cfg.Peers {
		n.ctrl.HandleAd(bgp.DISCSAd{Origin: topology.ASN(p.AS), Controller: p.Name})
	}
	return nil
}

// Close shuts the node down: admin endpoint, transport, then the event
// loop is sealed so late timer callbacks and frames are dropped.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	if n.admin != nil {
		n.admin.close()
	}
	return n.tr.Close()
}

// Name returns the node's controller name.
func (n *Node) Name() string { return n.cfg.Name }

// AS returns the node's AS number.
func (n *Node) AS() uint32 { return n.cfg.AS }

// Addr returns the transport's bound address.
func (n *Node) Addr() string { return n.tr.Addr() }

// AdminAddr returns the admin HTTP address ("" when disabled).
func (n *Node) AdminAddr() string {
	if n.admin == nil {
		return ""
	}
	return n.admin.addr()
}

// Registry exposes the node's metrics registry.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Stats snapshots the node's metrics.
func (n *Node) Stats() obs.Snapshot { return n.reg.Snapshot() }

// PeersEstablished reports how many configured peers are established.
func (n *Node) PeersEstablished() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.ctrl.Peers())
}
