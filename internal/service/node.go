package service

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
	"discs/internal/transport"
)

// FrameKindData is the transport frame kind carrying one marshaled
// IPv4 packet between node data planes. It sits above the control
// frame range (core.IsControlFrameKind) so both planes multiplex onto
// one connection, the way con-con records and forwarded traffic share
// the one Internet in the paper's deployment.
const FrameKindData uint8 = 0x80

// FrameKindDataBurst carries a packet train: repeated 2-byte
// big-endian length prefixes, each followed by one marshaled IPv4
// packet. One train costs one transport frame end to end — one frame
// encode, one coalesced write, one read, one handler dispatch — and
// the receiver feeds the whole train to core.ProcessInboundBatch in
// one call, the service-mode analogue of netsim's link-train delivery.
const FrameKindDataBurst uint8 = 0x81

// Node metric names, published under the node's "as<N>." scope next to
// the ctrl.* and router.* families.
const (
	MetricNodeRxDelivered = "node.rx_delivered"
	MetricNodeRxDropped   = "node.rx_dropped"
	MetricNodeRxMalformed = "node.rx_malformed"
	// MetricNodeRxOverflow counts inbound data frames dropped because
	// the data-plane queue was full — backpressure made visible
	// instead of an unbounded backlog.
	MetricNodeRxOverflow = "node.rx_overflow"
)

// inboundItem is one queued unit of inbound data-plane work: a raw
// packet (FrameKindData) or a whole train (FrameKindDataBurst).
type inboundItem struct {
	b     []byte
	train bool
}

// inboundBatchItems caps how many queued items one worker iteration
// drains before processing; a train counts as one item however many
// packets it carries.
const inboundBatchItems = 64

// Node hosts one DAS as a live process: controller, border-router data
// plane, TCP(+TLS) transport and admin HTTP. Controller and router
// *table* access is serialized under mu — the event loop the simulator
// used to provide, rebuilt on a mutex. The data plane is deliberately
// outside that loop: inbound data frames are queued to a worker pool
// that parses and batch-verifies them against the router's lock-free
// table snapshots (DESIGN.md §8), so a burst of traffic never stalls
// peering, heartbeats or reloads, and vice versa.
type Node struct {
	mu      sync.Mutex
	cfg     Config
	ctrl    *core.Controller
	router  *core.BorderRouter
	dir     *core.Directory
	tr      *transport.TCP
	reg     *obs.Registry
	start   time.Time
	started bool
	closed  bool

	dataCh  chan inboundItem
	workers int
	wg      sync.WaitGroup

	rxDelivered *obs.Counter
	rxDropped   *obs.Counter
	rxMalformed *obs.Counter
	rxOverflow  *obs.Counter

	admin *adminServer
}

// wallRuntime binds a controller to the wall clock: Now is the offset
// since node start (the service analogue of simulated time), timers
// are time.AfterFunc callbacks re-serialized onto the node's event
// loop. After and AfterBackground coincide — a real process has no
// run-to-quiescence to preserve.
type wallRuntime struct{ n *Node }

func (r wallRuntime) Now() time.Duration { return time.Since(r.n.start) }
func (r wallRuntime) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { r.n.do(fn) })
}
func (r wallRuntime) AfterBackground(d time.Duration, fn func()) { r.After(d, fn) }

// do runs fn on the node's event loop unless the node is closed. Timer
// callbacks outliving Close become no-ops, mirroring how crashing a
// simulated node kills its pending timers.
func (n *Node) do(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		fn()
	}
}

// testDialHook, when non-nil, overrides the transport dialer of every
// node built afterwards — the in-package test seam for hanging dials
// and fault injection. Nil in production.
var testDialHook func(ctx context.Context, addr string) (net.Conn, error)

// NewNode builds a node from config: binds the transport and admin
// listeners (so Addr/AdminAddr are concrete even with ":0" configs),
// constructs the controller in service mode and registers the pinned
// peer directory entries. Nothing runs until Start.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	id, err := NodeIdentity(cfg.Name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:   cfg,
		dir:   core.NewDirectory(),
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	scope := fmt.Sprintf("as%d.", cfg.AS)
	sc := n.reg.Scope(scope)
	n.rxDelivered = sc.Counter(MetricNodeRxDelivered)
	n.rxDropped = sc.Counter(MetricNodeRxDropped)
	n.rxMalformed = sc.Counter(MetricNodeRxMalformed)
	n.rxOverflow = sc.Counter(MetricNodeRxOverflow)

	n.workers = cfg.InboundWorkers
	if n.workers <= 0 {
		n.workers = runtime.GOMAXPROCS(0)
		if n.workers > 4 {
			n.workers = 4
		}
	}
	queue := cfg.InboundQueue
	if queue <= 0 {
		queue = 1024
	}
	n.dataCh = make(chan inboundItem, queue)

	tr, err := transport.NewTCP(transport.TCPOptions{
		Addr: cfg.Listen, TLS: cfg.TLS,
		DialTimeout: time.Duration(cfg.DialTimeoutMS) * time.Millisecond,
		SendQueue:   cfg.SendQueue,
		Registry:    n.reg, Scope: scope,
		Dial: testDialHook,
	})
	if err != nil {
		return nil, err
	}
	n.tr = tr

	ctrl, err := core.NewControllerWithOptions(core.ControllerOptions{
		AS: topology.ASN(cfg.AS), Name: cfg.Name,
		Conn: tr, Runtime: wallRuntime{n},
		Dir: n.dir, Topo: topo,
		Config: cfg.coreConfig(), Seed: cfg.Seed,
		Identity: id, Registry: n.reg, Scope: scope,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.ctrl = ctrl
	router, err := core.NewBorderRouterWithOptions(core.RouterOptions{
		Tables: core.NewTables(topology.ASN(cfg.AS), topo.Pfx2AS()),
		Seed:   cfg.Seed ^ 0x5eed, Registry: n.reg, Scope: scope,
		AS: topology.ASN(cfg.AS),
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.router = router
	ctrl.AttachRouter(router)

	if err := n.registerPeers(cfg.Peers); err != nil {
		tr.Close()
		return nil, err
	}
	if cfg.Admin != "" {
		admin, err := newAdminServer(cfg.Admin, n)
		if err != nil {
			tr.Close()
			return nil, err
		}
		n.admin = admin
	}
	return n, nil
}

// registerPeers pins peer directory entries and transport addresses.
// Entries are registered once (the directory rejects duplicates);
// addresses update freely.
func (n *Node) registerPeers(peers []PeerConfig) error {
	for _, p := range peers {
		if p.Addr != "" {
			n.tr.SetPeer(p.Name, p.Addr)
		}
		if n.dir.Lookup(p.Name) != nil {
			continue
		}
		pub, err := p.pub()
		if err != nil {
			return err
		}
		if err := n.dir.Register(&core.DirEntry{
			Name: p.Name, ASN: topology.ASN(p.AS), Pub: pub,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Start begins operation: the data-plane worker pool spins up, the
// transport delivers frames, the admin endpoint serves, and the pinned
// peers are announced to the controller as static DISCS-Ads (the
// service-mode stand-in for BGP discovery), which kicks off peering,
// key negotiation and heartbeats. Announcing costs no dials: the
// transport's per-peer workers own connection establishment, so Start
// returns promptly however many peers are unreachable.
func (n *Node) Start() error {
	for i := 0; i < n.workers; i++ {
		n.wg.Add(1)
		go n.inboundWorker()
	}
	if err := n.tr.Start(n.handleFrame); err != nil {
		return err
	}
	if n.admin != nil {
		n.admin.serve()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.started = true
	for _, p := range n.cfg.Peers {
		n.ctrl.HandleAd(bgp.DISCSAd{Origin: topology.ASN(p.AS), Controller: p.Name})
	}
	return nil
}

// handleFrame is the transport inbound path: control frames go to the
// controller state machine on the event loop; data frames and trains
// bypass the mutex entirely and queue to the data-plane worker pool,
// dropping (counted) when the queue is full.
func (n *Node) handleFrame(f transport.Frame) {
	switch {
	case core.IsControlFrameKind(f.Kind):
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed {
			return
		}
		n.ctrl.HandleFrame(f)
	case f.Kind == FrameKindData, f.Kind == FrameKindDataBurst:
		select {
		case n.dataCh <- inboundItem{b: f.Data, train: f.Kind == FrameKindDataBurst}:
		default:
			n.rxOverflow.Inc()
		}
	}
}

// inboundWorker drains the data queue, coalescing queued frames and
// unpacking trains into one inbound batch per iteration, then runs
// the batch through the router's fused burst pipeline. Counters are
// sharded atomics and table snapshots are copy-on-write, so any
// number of workers runs concurrently with each other and with the
// control plane.
func (n *Node) inboundWorker() {
	defer n.wg.Done()
	items := make([]inboundItem, 0, inboundBatchItems)
	carriers := make([]core.MarkCarrier, 0, 256)
	var verdicts []core.Verdict
	for first := range n.dataCh {
		items = append(items[:0], first)
	drain:
		for len(items) < inboundBatchItems {
			select {
			case it, ok := <-n.dataCh:
				if !ok {
					break drain
				}
				items = append(items, it)
			default:
				break drain
			}
		}
		carriers = carriers[:0]
		var malformed uint64
		for _, it := range items {
			if !it.train {
				p, err := packet.ParseIPv4(it.b)
				if err != nil {
					malformed++
					continue
				}
				carriers = append(carriers, core.V4{P: p})
				continue
			}
			b := it.b
			for len(b) >= 2 {
				l := int(binary.BigEndian.Uint16(b))
				if l == 0 || 2+l > len(b) {
					malformed++
					break
				}
				p, err := packet.ParseIPv4(b[2 : 2+l])
				if err != nil {
					malformed++
				} else {
					carriers = append(carriers, core.V4{P: p})
				}
				b = b[2+l:]
			}
			if len(b) == 1 {
				malformed++
			}
		}
		if malformed > 0 {
			n.rxMalformed.Add(malformed)
		}
		if len(carriers) == 0 {
			continue
		}
		verdicts = n.router.ProcessInboundBatch(carriers, n.Now(), verdicts[:0])
		var delivered, dropped uint64
		for _, v := range verdicts {
			if v.Dropped() {
				dropped++
			} else {
				delivered++
			}
		}
		if delivered > 0 {
			n.rxDelivered.Add(delivered)
		}
		if dropped > 0 {
			n.rxDropped.Add(dropped)
		}
	}
}

// Now is the node's data-plane clock: the same epoch-offset mapping
// the controller uses, so invocation windows line up.
func (n *Node) Now() time.Time {
	return time.Unix(0, 0).UTC().Add(time.Since(n.start))
}

// SendPacket pushes one IPv4 packet out through this AS's border
// router toward the named peer node: outbound processing (DP filter,
// CDP stamp, ...) first, then the wire. It returns the outbound
// verdict and whether the frame was accepted by the transport.
func (n *Node) SendPacket(dst string, p *packet.IPv4) (core.Verdict, bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return core.VerdictDrop, false
	}
	v := n.router.ProcessOutbound(core.V4{P: p}, n.Now())
	n.mu.Unlock()
	if v.Dropped() {
		return v, false
	}
	b, err := p.Marshal()
	if err != nil {
		return v, false
	}
	return v, n.tr.Send(dst, transport.Frame{Kind: FrameKindData, From: n.cfg.Name, Data: b})
}

// maxTrainBytes caps one train frame's payload so it stays well under
// transport.MaxFrameSize and packs neatly into the transport's
// coalesced writes.
const maxTrainBytes = 48 << 10

// SendPacketBatch pushes a packet train toward the named peer: one
// ProcessOutboundBatch call over the router's fused burst pipeline,
// then the surviving packets packed into FrameKindDataBurst frames —
// one transport frame (and at the far end one inbound batch) per
// train instead of per packet. It returns how many packets were
// stamped and how many went out in accepted trains.
func (n *Node) SendPacketBatch(dst string, pkts []*packet.IPv4) (stamped, sent int) {
	if len(pkts) == 0 {
		return 0, 0
	}
	carriers := make([]core.MarkCarrier, len(pkts))
	for i, p := range pkts {
		carriers[i] = core.V4{P: p}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, 0
	}
	verdicts := n.router.ProcessOutboundBatch(carriers, n.Now(), nil)
	n.mu.Unlock()

	train := make([]byte, 0, maxTrainBytes)
	pending := 0
	flush := func() {
		if pending == 0 {
			return
		}
		if n.tr.Send(dst, transport.Frame{Kind: FrameKindDataBurst, From: n.cfg.Name, Data: train}) {
			sent += pending
		}
		train = train[:0]
		pending = 0
	}
	for i, v := range verdicts {
		if v.Dropped() {
			continue
		}
		if v == core.VerdictPassStamped {
			stamped++
		}
		b, err := pkts[i].Marshal()
		if err != nil || len(b) > 0xffff {
			continue
		}
		if len(train)+2+len(b) > maxTrainBytes {
			flush()
		}
		train = binary.BigEndian.AppendUint16(train, uint16(len(b)))
		train = append(train, b...)
		pending++
	}
	flush()
	return stamped, sent
}

// InjectRaw ships a packet to the named peer without outbound
// processing — the loadgen's model of spoofed traffic entering from a
// legacy (non-DISCS) AS that runs no egress filtering.
func (n *Node) InjectRaw(dst string, p *packet.IPv4) bool {
	b, err := p.Marshal()
	if err != nil {
		return false
	}
	return n.tr.Send(dst, transport.Frame{Kind: FrameKindData, From: n.cfg.Name, Data: b})
}

// Invoke requests protection, serialized with the event loop (the
// service-mode spelling of Controller.Invoke).
func (n *Node) Invoke(invs ...core.Invocation) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, fmt.Errorf("service: node closed")
	}
	return n.ctrl.Invoke(invs...)
}

// Do runs fn serialized with the node's event loop; fn may touch the
// controller and router freely.
func (n *Node) Do(fn func(c *core.Controller, r *core.BorderRouter)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.ctrl, n.router)
}

// Reload applies a changed config. Only the peer set is live-reloadable
// — new peers are pinned, existing peers' addresses are repointed, and
// only peers that are actually new (or whose identity changed) are
// announced to the controller; an unchanged config reloads as a no-op
// without re-kicking peering or key negotiation. Identity-defining
// fields must not change.
func (n *Node) Reload(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Name != n.Name() || cfg.AS != n.AS() {
		return fmt.Errorf("service: reload cannot change node identity (%s/AS%d)", n.Name(), n.AS())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("service: node closed")
	}
	if err := n.registerPeers(cfg.Peers); err != nil {
		return err
	}
	prev := make(map[string]PeerConfig, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		prev[p.Name] = p
	}
	n.cfg.Peers = cfg.Peers
	if !n.started {
		// Start announces the whole pinned set; announcing now would
		// arm peering timers on a node that isn't serving yet.
		return nil
	}
	for _, p := range cfg.Peers {
		if old, ok := prev[p.Name]; ok && old.AS == p.AS && old.Pub == p.Pub {
			continue // address-only change or no-op: SetPeer already handled it
		}
		n.ctrl.HandleAd(bgp.DISCSAd{Origin: topology.ASN(p.AS), Controller: p.Name})
	}
	return nil
}

// Close shuts the node down: admin endpoint, transport, then the
// data-plane pool drains and the event loop is sealed so late timer
// callbacks and frames are dropped.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	if n.admin != nil {
		n.admin.close()
	}
	err := n.tr.Close()
	// tr.Close waited out every inbound handler, so nothing can send on
	// the data queue anymore; closing it releases the worker pool.
	close(n.dataCh)
	n.wg.Wait()
	return err
}

// Name returns the node's controller name.
func (n *Node) Name() string { return n.cfg.Name }

// AS returns the node's AS number.
func (n *Node) AS() uint32 { return n.cfg.AS }

// Addr returns the transport's bound address.
func (n *Node) Addr() string { return n.tr.Addr() }

// AdminAddr returns the admin HTTP address ("" when disabled).
func (n *Node) AdminAddr() string {
	if n.admin == nil {
		return ""
	}
	return n.admin.addr()
}

// Registry exposes the node's metrics registry.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Stats snapshots the node's metrics.
func (n *Node) Stats() obs.Snapshot { return n.reg.Snapshot() }

// Transport exposes the node's TCP transport (per-peer stats, tests).
func (n *Node) Transport() *transport.TCP { return n.tr }

// PeersEstablished reports how many configured peers are established.
func (n *Node) PeersEstablished() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.ctrl.Peers())
}
