package service

import (
	"context"
	"net"
)

// SetTestDialHook installs a transport dial override for every node
// built afterwards and returns a restore func. Tests use it to model
// unreachable peers whose dials hang until canceled.
func SetTestDialHook(d func(ctx context.Context, addr string) (net.Conn, error)) func() {
	old := testDialHook
	testDialHook = d
	return func() { testDialHook = old }
}
