package service_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"discs/internal/core"
	"discs/internal/service"
	"discs/internal/topology"
)

// TestStartNotBlockedByUnreachablePeers pins the startup-latency
// bugfix: Start announces the pinned peers while holding the event
// loop, but announcing must not dial — a fleet of unreachable peers
// whose dials hang forever must not delay Start (or Close) at all.
func TestStartNotBlockedByUnreachablePeers(t *testing.T) {
	restore := service.SetTestDialHook(func(ctx context.Context, addr string) (net.Conn, error) {
		<-ctx.Done() // hang until the transport closes
		return nil, ctx.Err()
	})
	defer restore()

	peer := func(i int) service.PeerConfig {
		name := fmt.Sprintf("ctrl.as%d", 2+i)
		id, err := service.NodeIdentity(name, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		return service.PeerConfig{
			Name: name, AS: uint32(2 + i),
			Addr: fmt.Sprintf("203.0.113.%d:9", 1+i), // TEST-NET, never reachable
			Pub:  service.PubHex(id),
		}
	}
	cfg := service.Config{
		Name: "ctrl.as1", AS: 1, Listen: "127.0.0.1:0", Seed: 42,
		Prefixes: map[string][]string{
			"1": {"10.0.0.0/16"}, "2": {"10.1.0.0/16"}, "3": {"10.2.0.0/16"},
		},
		Peers: []service.PeerConfig{peer(0), peer(1)},
	}
	n, err := service.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > time.Second {
		t.Fatalf("Start took %v with hanging peer dials", d)
	}
	begin = time.Now()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > 2*time.Second {
		t.Fatalf("Close took %v with hanging peer dials", d)
	}
}

// twoNodes builds, cross-wires and starts a 2-node pair by hand (the
// fleet harness hides its configs, and the reload tests need them).
func twoNodes(t *testing.T) (n1, n2 *service.Node, cfg1 service.Config) {
	t.Helper()
	prefixes := map[string][]string{
		"1001": {"10.0.0.0/16"}, "1002": {"10.1.0.0/16"}, "1003": {"10.2.0.0/16"},
	}
	pub := func(name string, seed int64) string {
		id, err := service.NodeIdentity(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		return service.PubHex(id)
	}
	mk := func(name string, as uint32, seed int64, peers []service.PeerConfig) service.Config {
		return service.Config{
			Name: name, AS: as, Listen: "127.0.0.1:0", Seed: seed,
			Prefixes:          prefixes,
			PeeringDelayMaxMS: 20, RetryIntervalMS: 100, HeartbeatMS: 300, GraceMS: 50,
			Peers: peers,
		}
	}
	p1 := service.PeerConfig{Name: "ctrl.as1001", AS: 1001, Pub: pub("ctrl.as1001", 1)}
	p2 := service.PeerConfig{Name: "ctrl.as1002", AS: 1002, Pub: pub("ctrl.as1002", 2)}
	cfg1 = mk("ctrl.as1001", 1001, 1, []service.PeerConfig{p2})
	cfg2 := mk("ctrl.as1002", 1002, 2, []service.PeerConfig{p1})

	n1, err := service.NewNode(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err = service.NewNode(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close(); n2.Close() })
	cfg1.Peers[0].Addr = n2.Addr()
	cfg2.Peers[0].Addr = n1.Addr()
	if err := n1.Reload(cfg1); err != nil {
		t.Fatal(err)
	}
	if err := n2.Reload(cfg2); err != nil {
		t.Fatal(err)
	}
	if err := n1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n2.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		n1.Do(func(c *core.Controller, _ *core.BorderRouter) {
			ready = ready && c.KeysReadyWith(topology.ASN(1002))
		})
		n2.Do(func(c *core.Controller, _ *core.BorderRouter) {
			ready = ready && c.KeysReadyWith(topology.ASN(1001))
		})
		if ready {
			return n1, n2, cfg1
		}
		if time.Now().After(deadline) {
			t.Fatal("pair never negotiated keys")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReloadNoopAnnouncesNothing pins the reload bugfix: reloading an
// unchanged config (the common case — config management rewrites the
// file, nothing differs) must not re-announce established peers and
// re-kick peering; an address-only change repoints the transport
// silently; only a genuinely new peer is announced.
func TestReloadNoopAnnouncesNothing(t *testing.T) {
	n1, _, cfg1 := twoNodes(t)
	adsSeen := func() uint64 {
		return n1.Stats().Get(fmt.Sprintf("as%d.%s", n1.AS(), core.MetricCtrlAdsSeen))
	}
	base := adsSeen()
	if base == 0 {
		t.Fatal("no ads seen after startup — announce path broken")
	}

	// Unchanged config: zero new announcements, zero new handshakes.
	hs := n1.Stats().Get(fmt.Sprintf("as%d.%s", n1.AS(), core.MetricCtrlHandshakesInitiated))
	if err := n1.Reload(cfg1); err != nil {
		t.Fatal(err)
	}
	if got := adsSeen(); got != base {
		t.Fatalf("no-op reload: ads_seen %d → %d", base, got)
	}
	if got := n1.Stats().Get(fmt.Sprintf("as%d.%s", n1.AS(), core.MetricCtrlHandshakesInitiated)); got != hs {
		t.Fatalf("no-op reload: handshakes_initiated %d → %d", hs, got)
	}

	// Address-only change: the transport is repointed, nothing announced.
	moved := cfg1
	moved.Peers = append([]service.PeerConfig(nil), cfg1.Peers...)
	moved.Peers[0].Addr = "127.0.0.1:1"
	if err := n1.Reload(moved); err != nil {
		t.Fatal(err)
	}
	if got := adsSeen(); got != base {
		t.Fatalf("addr-only reload: ads_seen %d → %d", base, got)
	}

	// A genuinely new peer is announced, exactly once.
	id3, err := service.NodeIdentity("ctrl.as1003", 3)
	if err != nil {
		t.Fatal(err)
	}
	grown := moved
	grown.Peers = append(append([]service.PeerConfig(nil), moved.Peers...),
		service.PeerConfig{Name: "ctrl.as1003", AS: 1003, Pub: service.PubHex(id3)})
	if err := n1.Reload(grown); err != nil {
		t.Fatal(err)
	}
	if got := adsSeen(); got != base+1 {
		t.Fatalf("new-peer reload: ads_seen %d → %d, want %d", base, got, base+1)
	}
}

// TestFleetBurstLoadgen drives the end-to-end batch path: packet
// trains from the source's ProcessOutboundBatch through
// FrameKindDataBurst frames into the victim's inbound worker pool and
// ProcessInboundBatch, with per-peer transport metrics visible both
// programmatically and on the Prometheus scrape.
func TestFleetBurstLoadgen(t *testing.T) {
	f, err := service.NewFleet(service.FleetOptions{N: 2, Admin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Protect(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	const packets = 4096
	rep := f.LoadgenBurst(0, 1, packets, 256)
	if rep.Sent != packets || rep.Stamped != rep.Packets {
		t.Fatalf("burst report = %+v, want %d packets accepted and every attempt stamped", rep, packets)
	}
	waitCounter(t, f.Nodes[1], service.MetricNodeRxDelivered, packets)
	if got := f.Nodes[1].Stats().Get(fmt.Sprintf("as%d.%s", f.Nodes[1].AS(), service.MetricNodeRxMalformed)); got != 0 {
		t.Fatalf("rx_malformed = %d after burst run", got)
	}

	// Per-peer transport accounting on the source side.
	st, ok := f.Nodes[0].Transport().PeerStats(f.Nodes[1].Name())
	if !ok {
		t.Fatal("source has no stats for the victim peer")
	}
	if st.FramesSent == 0 || st.BytesSent == 0 {
		t.Fatalf("per-peer stats = %+v, want frames and bytes sent", st)
	}
	if int(st.FramesSent) >= packets {
		t.Fatalf("burst path sent %d frames for %d packets — trains are not coalescing", st.FramesSent, packets)
	}

	// The same counters surface as {peer=...} labels on /metrics.
	_, body := scrape(t, f.Nodes[0].AdminAddr(), "/metrics")
	series := fmt.Sprintf(`discs_transport_bytes_sent{as="%d",peer=%q}`, f.Nodes[0].AS(), f.Nodes[1].Name())
	if v := promValue(t, body, series); v <= 0 {
		t.Fatalf("%s = %v on scrape, want > 0", series, v)
	}
	if !strings.Contains(body, "discs_transport_queue_depth{") {
		t.Fatal("queue_depth gauge missing from scrape")
	}
}
