// Package service runs DISCS as a real long-lived process: one DAS
// controller plus its border-router data plane, bound to the wall
// clock and a TCP(+TLS) transport instead of the discrete-event
// simulator. It is the host behind cmd/discs-node: JSON config, an
// admin HTTP endpoint (Prometheus /metrics, /healthz liveness), config
// reload, and a loopback fleet harness for end-to-end runs over real
// sockets.
//
// The controller code is exactly the one the simulator runs — the
// service binds it to the core I/O seam (core.FrameSender +
// core.Runtime) and serializes every entry point (inbound frames,
// timers, API calls) under one mutex, which is the thread-safety
// contract of service-mode core.ControllerOptions.
package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"time"

	"discs/internal/core"
	"discs/internal/securechan"
	"discs/internal/topology"
)

// PeerConfig names one remote DAS controller: its directory identity
// (name, AS, securechan public key) and where to dial it.
type PeerConfig struct {
	Name string `json:"name"`
	AS   uint32 `json:"as"`
	Addr string `json:"addr"`
	// Pub is the peer's hex-encoded securechan (X25519) public key,
	// pinned out of band — the service has no BGP to discover it from.
	Pub string `json:"pub"`
}

// Config is the JSON configuration of one discs-node process.
type Config struct {
	// Name is this controller's directory name (e.g. "ctrl.as7").
	Name string `json:"name"`
	// AS is the autonomous system this node serves.
	AS uint32 `json:"as"`
	// Listen is the transport bind address; ":0" picks a free port.
	Listen string `json:"listen"`
	// Admin is the admin HTTP bind address (/metrics, /healthz).
	// Empty disables the admin endpoint.
	Admin string `json:"admin"`
	// TLS wraps the transport in TLS (see transport.TCPOptions.TLS).
	TLS bool `json:"tls"`
	// Seed derives the node's securechan identity and all randomized
	// protocol delays. Treat it as the node's secret key material.
	Seed int64 `json:"seed"`

	// Prefixes is the RPKI ownership oracle: ASN (decimal string, JSON
	// keys are strings) to owned prefixes. It must cover this node's
	// own AS and every AS whose traffic the data plane classifies.
	Prefixes map[string][]string `json:"prefixes"`
	// Peers are the remote DAS controllers to peer with.
	Peers []PeerConfig `json:"peers"`

	// Protocol pacing, in milliseconds; zero values take the service
	// defaults (DefaultConfig scaled for wall-clock operation).
	PeeringDelayMaxMS int `json:"peering_delay_max_ms"`
	RetryIntervalMS   int `json:"retry_interval_ms"`
	HeartbeatMS       int `json:"heartbeat_ms"`
	DeadAfterMisses   int `json:"dead_after_misses"`
	ReconnectMS       int `json:"reconnect_ms"`
	// GraceMS overrides the cryptographic-invocation grace interval
	// (core.DefaultGrace when zero; loopback harnesses shrink it so
	// strict verification starts promptly).
	GraceMS int `json:"grace_ms"`

	// DialTimeoutMS bounds transport dialing and per-batch writes
	// (transport.TCPOptions.DialTimeout; zero means the transport
	// default, 3s).
	DialTimeoutMS int `json:"dial_timeout_ms"`
	// SendQueue caps each peer's outbound transport queue in frames
	// (zero means the transport default, 256). A full queue drops
	// frames rather than blocking the sender.
	SendQueue int `json:"send_queue"`
	// InboundWorkers sizes the data-plane worker pool that parses and
	// batch-verifies inbound data frames off the control-plane mutex
	// (zero means min(4, GOMAXPROCS)).
	InboundWorkers int `json:"inbound_workers"`
	// InboundQueue caps the inbound data-frame queue feeding those
	// workers (zero means 1024); overflow drops are counted under
	// node.rx_overflow.
	InboundQueue int `json:"inbound_queue"`
}

// LoadConfig reads and validates a JSON config file.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, fmt.Errorf("service: parse %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("service: %s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks structural sanity without binding anything.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("config: name required")
	}
	if c.AS == 0 {
		return fmt.Errorf("config: as required")
	}
	if c.Listen == "" {
		return fmt.Errorf("config: listen required")
	}
	if _, err := c.topology(); err != nil {
		return err
	}
	for _, p := range c.Peers {
		if p.Name == "" || p.AS == 0 {
			return fmt.Errorf("config: peer %q needs name and as", p.Name)
		}
		if _, err := p.pub(); err != nil {
			return err
		}
	}
	return nil
}

// topology builds the ownership oracle from the Prefixes map.
func (c Config) topology() (*topology.Topology, error) {
	tp := topology.New()
	// Sorted ASN order keeps construction deterministic.
	asns := make([]int, 0, len(c.Prefixes))
	byASN := make(map[int][]string, len(c.Prefixes))
	for key, pfxs := range c.Prefixes {
		asn, err := strconv.Atoi(key)
		if err != nil || asn <= 0 {
			return nil, fmt.Errorf("config: bad ASN key %q in prefixes", key)
		}
		asns = append(asns, asn)
		byASN[asn] = pfxs
	}
	sort.Ints(asns)
	for _, asn := range asns {
		if _, err := tp.AddAS(topology.ASN(asn)); err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		for _, s := range byASN[asn] {
			pfx, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("config: AS%d prefix %q: %w", asn, s, err)
			}
			if err := tp.AddPrefix(topology.ASN(asn), pfx); err != nil {
				return nil, fmt.Errorf("config: %w", err)
			}
		}
	}
	return tp, nil
}

// pub decodes the pinned peer public key.
func (p PeerConfig) pub() ([]byte, error) {
	b, err := hex.DecodeString(p.Pub)
	if err != nil || len(b) != 32 {
		return nil, fmt.Errorf("config: peer %s: bad public key %q", p.Name, p.Pub)
	}
	return b, nil
}

// coreConfig maps the service pacing knobs onto the controller Config.
func (c Config) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	ms := func(v int, def time.Duration) time.Duration {
		if v > 0 {
			return time.Duration(v) * time.Millisecond
		}
		return def
	}
	cfg.PeeringDelayMax = ms(c.PeeringDelayMaxMS, cfg.PeeringDelayMax)
	cfg.RetryInterval = ms(c.RetryIntervalMS, cfg.RetryInterval)
	cfg.RetryJitter = cfg.RetryInterval / 2
	cfg.HeartbeatInterval = ms(c.HeartbeatMS, cfg.HeartbeatInterval)
	if c.DeadAfterMisses > 0 {
		cfg.DeadAfterMisses = c.DeadAfterMisses
	}
	cfg.ReconnectInterval = ms(c.ReconnectMS, cfg.ReconnectInterval)
	cfg.Grace = ms(c.GraceMS, cfg.Grace)
	return cfg
}

// NodeIdentity derives the securechan identity a node with this name
// and seed will assume. The fleet harness (and any out-of-band key
// distribution) uses it to compute the Pub field of PeerConfig.
func NodeIdentity(name string, seed int64) (*securechan.Identity, error) {
	return securechan.NewIdentity(name, rand.New(rand.NewSource(seed)))
}

// PubHex renders an identity's public key for PeerConfig.Pub.
func PubHex(id *securechan.Identity) string {
	return hex.EncodeToString(id.Public())
}
