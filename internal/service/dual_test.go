package service_test

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/service"
	"discs/internal/topology"
)

// dualScenario drives one fixed attack scenario — legitimate flows,
// source-spoofed flows, and unstamped injections from AS 1001 toward
// the protected AS 1003 — through a pair of border routers and records
// every verdict in order. The routers' tables were deployed by a live
// DISCS control plane; which transport carried that control plane is
// exactly what the two callers vary.
func dualScenario(srcOut, victimIn func(*packet.IPv4) core.Verdict) []core.Verdict {
	var got []core.Verdict
	wire := func(p *packet.IPv4) *packet.IPv4 {
		b, err := p.Marshal()
		if err != nil {
			panic(err)
		}
		q, err := packet.ParseIPv4(b)
		if err != nil {
			panic(err)
		}
		return q
	}
	for k := 0; k < 8; k++ {
		legit := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src: netip.AddrFrom4([4]byte{10, 0, 0, byte(20 + k)}),
			Dst: netip.AddrFrom4([4]byte{10, 2, 0, byte(10 + k)}),
		}
		got = append(got, srcOut(legit))
		got = append(got, victimIn(wire(legit)))

		spoofed := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src: netip.AddrFrom4([4]byte{10, 2, 0, byte(30 + k)}), // victim's space
			Dst: netip.AddrFrom4([4]byte{10, 2, 0, byte(10 + k)}),
		}
		got = append(got, srcOut(spoofed))

		raw := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src: netip.AddrFrom4([4]byte{10, 0, 0, byte(40 + k)}), // unstamped peer traffic
			Dst: netip.AddrFrom4([4]byte{10, 2, 0, byte(10 + k)}),
		}
		got = append(got, victimIn(wire(raw)))
	}
	return got
}

// simVerdicts runs the scenario on a simulator-transport deployment:
// three DASes on a netsim BGP internet, protection invoked and
// distributed over simulated con-con channels.
func simVerdicts(t *testing.T) []core.Verdict {
	t.Helper()
	tp := topology.New()
	for i, pfx := range []string{"10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16"} {
		asn := topology.ASN(1001 + i)
		if _, err := tp.AddAS(asn); err != nil {
			t.Fatal(err)
		}
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(pfx)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]topology.ASN{{1001, 1002}, {1002, 1003}, {1001, 1003}} {
		if err := tp.Link(l[0], l[1], topology.PeerToPeer); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystemWithOptions(core.SystemOptions{Net: net, Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for i, asn := range []topology.ASN{1001, 1002, 1003} {
		if _, err := s.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Controllers[1003].Invoke(core.Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")},
		Function: core.DP, Duration: time.Hour,
	}, core.Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")},
		Function: core.CDP, Duration: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Step the simulated clock past the grace interval so verification
	// enforces strictly, mirroring the fleet side's wall-clock wait.
	net.Sim.After(core.DefaultGrace+time.Second, func() {})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	now := s.Now()
	return dualScenario(
		func(p *packet.IPv4) core.Verdict { return s.Routers[1001].ProcessOutbound(core.V4{P: p}, now) },
		func(p *packet.IPv4) core.Verdict { return s.Routers[1003].ProcessInbound(core.V4{P: p}, now) },
	)
}

// fleetVerdicts runs the identical scenario on a TCP-transport
// deployment: the same protection invoked on a live loopback fleet,
// installs distributed over real sockets, then the resulting router
// tables process the same packets.
func fleetVerdicts(t *testing.T) []core.Verdict {
	t.Helper()
	f, err := service.NewFleet(service.FleetOptions{N: 3, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Protect(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // grace (50ms) must lapse
	var out []core.Verdict
	srcOut := func(p *packet.IPv4) core.Verdict {
		var v core.Verdict
		f.Nodes[0].Do(func(_ *core.Controller, r *core.BorderRouter) {
			v = r.ProcessOutbound(core.V4{P: p}, f.Nodes[0].Now())
		})
		return v
	}
	victimIn := func(p *packet.IPv4) core.Verdict {
		var v core.Verdict
		f.Nodes[2].Do(func(_ *core.Controller, r *core.BorderRouter) {
			v = r.ProcessInbound(core.V4{P: p}, f.Nodes[2].Now())
		})
		return v
	}
	out = dualScenario(srcOut, victimIn)
	return out
}

// TestDualTransportScenario is the seam's acceptance check: the same
// protect-and-attack scenario deployed once over the simulator
// transport and once over real TCP sockets must induce the identical
// per-packet verdict sequence — the Transport choice is invisible to
// the defense semantics.
func TestDualTransportScenario(t *testing.T) {
	sim := simVerdicts(t)
	fleet := fleetVerdicts(t)
	if len(sim) != len(fleet) {
		t.Fatalf("verdict counts differ: sim %d, fleet %d", len(sim), len(fleet))
	}
	for i := range sim {
		if sim[i] != fleet[i] {
			t.Fatalf("verdict %d: sim %v, fleet %v", i, sim[i], fleet[i])
		}
	}
	// And the sequence is the one the paper promises: stamped+verified
	// legit, spoofed dropped at the source, raw dropped at the victim.
	for i := 0; i < len(sim); i += 4 {
		if sim[i] != core.VerdictPassStamped || sim[i+1] != core.VerdictPassVerified ||
			sim[i+2] != core.VerdictDrop || sim[i+3] != core.VerdictDrop {
			t.Fatalf("flow %d verdicts = %v", i/4, sim[i:i+4])
		}
	}
}
