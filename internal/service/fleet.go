package service

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/topology"
)

// FleetOptions configures a loopback fleet.
type FleetOptions struct {
	// N is the fleet size; 0 means 3.
	N int
	// TLS wraps every inter-node connection in TLS.
	TLS bool
	// Admin binds an admin HTTP endpoint ("127.0.0.1:0") on every node.
	Admin bool
	// BaseSeed offsets each node's identity seed; reuse a value to get
	// the same fleet identities again.
	BaseSeed int64

	// Protocol pacing overrides (milliseconds); zeros take fast defaults
	// suited to a short-lived loopback run, not the service defaults.
	PeeringDelayMaxMS int
	RetryIntervalMS   int
	HeartbeatMS       int
	DeadAfterMisses   int
	ReconnectMS       int
	GraceMS           int
}

// Fleet is a set of discs-node instances wired full-mesh over loopback
// TCP — the off-simulator analogue of core.System's deployed internet.
// Node i serves AS 1001+i and owns 10.<i>.0.0/16.
type Fleet struct {
	Nodes []*Node
	opts  FleetOptions
}

// FleetBaseASN is node 0's AS number; node i serves FleetBaseASN+i.
const FleetBaseASN = 1001

func fleetName(i int) string { return fmt.Sprintf("ctrl.as%d", FleetBaseASN+i) }

// FleetPrefix returns the prefix owned by node i.
func FleetPrefix(i int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))
}

// FleetAddr returns a host address inside node i's prefix.
func FleetAddr(i int, host byte) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i), 0, host})
}

// NewFleet builds, wires and starts n nodes over loopback sockets.
// Construction is two-phase: every node binds first (so ":0" ports are
// concrete), then each is Reloaded with the actual peer addresses —
// the same config-reload path a production deployment would use to
// introduce peers. On return every node is running; peering and key
// negotiation proceed asynchronously (see WaitReady).
func NewFleet(o FleetOptions) (*Fleet, error) {
	if o.N == 0 {
		o.N = 3
	}
	if o.N < 2 {
		return nil, fmt.Errorf("service: fleet needs at least 2 nodes")
	}
	if o.PeeringDelayMaxMS == 0 {
		o.PeeringDelayMaxMS = 50
	}
	if o.RetryIntervalMS == 0 {
		o.RetryIntervalMS = 250
	}
	if o.HeartbeatMS == 0 {
		o.HeartbeatMS = 500
	}
	if o.GraceMS == 0 {
		// Strict CDP verification within 50ms of deployment, instead of
		// the production 30s tolerance window.
		o.GraceMS = 50
	}

	prefixes := make(map[string][]string, o.N)
	pubs := make([]string, o.N)
	seeds := make([]int64, o.N)
	for i := 0; i < o.N; i++ {
		prefixes[strconv.Itoa(FleetBaseASN+i)] = []string{FleetPrefix(i).String()}
		seeds[i] = o.BaseSeed*1000 + int64(i) + 1
		id, err := NodeIdentity(fleetName(i), seeds[i])
		if err != nil {
			return nil, err
		}
		pubs[i] = PubHex(id)
	}

	cfg := func(i int, withAddrs bool, addrOf func(int) string) Config {
		c := Config{
			Name: fleetName(i), AS: uint32(FleetBaseASN + i),
			Listen: "127.0.0.1:0", TLS: o.TLS, Seed: seeds[i],
			Prefixes:          prefixes,
			PeeringDelayMaxMS: o.PeeringDelayMaxMS,
			RetryIntervalMS:   o.RetryIntervalMS,
			HeartbeatMS:       o.HeartbeatMS,
			DeadAfterMisses:   o.DeadAfterMisses,
			ReconnectMS:       o.ReconnectMS,
			GraceMS:           o.GraceMS,
		}
		if o.Admin {
			c.Admin = "127.0.0.1:0"
		}
		for j := 0; j < o.N; j++ {
			if j == i {
				continue
			}
			p := PeerConfig{Name: fleetName(j), AS: uint32(FleetBaseASN + j), Pub: pubs[j]}
			if withAddrs {
				p.Addr = addrOf(j)
			}
			c.Peers = append(c.Peers, p)
		}
		return c
	}

	f := &Fleet{opts: o}
	for i := 0; i < o.N; i++ {
		n, err := NewNode(cfg(i, false, nil))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, n)
	}
	addrOf := func(j int) string { return f.Nodes[j].Addr() }
	for i, n := range f.Nodes {
		if err := n.Reload(cfg(i, true, addrOf)); err != nil {
			f.Close()
			return nil, err
		}
	}
	for _, n := range f.Nodes {
		if err := n.Start(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// WaitReady blocks until every node has established peering and
// negotiated stamping keys with every other node, or the timeout
// expires.
func (f *Fleet) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for i, n := range f.Nodes {
			n.Do(func(c *core.Controller, _ *core.BorderRouter) {
				for j := range f.Nodes {
					if j == i {
						continue
					}
					if !c.KeysReadyWith(topology.ASN(FleetBaseASN + j)) {
						ready = false
					}
				}
			})
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service: fleet not ready after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Protect invokes DP+CDP protection for node victim's prefix and
// blocks until the corresponding filter and stamp operations are
// active in every other node's outbound tables (i.e. the installs
// were acknowledged and deployed).
func (f *Fleet) Protect(victim int, timeout time.Duration) error {
	inv := []core.Invocation{
		{Prefixes: []netip.Prefix{FleetPrefix(victim)}, Function: core.DP, Duration: time.Hour},
		{Prefixes: []netip.Prefix{FleetPrefix(victim)}, Function: core.CDP, Duration: time.Hour},
	}
	if _, err := f.Nodes[victim].Invoke(inv...); err != nil {
		return err
	}
	probe := FleetAddr(victim, 10)
	deadline := time.Now().Add(timeout)
	for {
		deployed := true
		for i, n := range f.Nodes {
			if i == victim {
				continue
			}
			n.Do(func(_ *core.Controller, r *core.BorderRouter) {
				active, _ := r.Tables.In[core.TableOutDst].ActiveOps(probe, n.Now())
				if !active.Has(core.OpDPFilter) || !active.Has(core.OpCDPStamp) {
					deployed = false
				}
			})
		}
		if deployed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service: protection not deployed after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// LoadgenReport tallies one loadgen run. Delivery and drops on the
// victim side are observable in the victim node's metrics
// (node.rx_delivered / node.rx_dropped, router.in_verified).
type LoadgenReport struct {
	// LegitSent legitimate flows entered the attacker AS's border
	// router; LegitStamped of them were CDP-stamped and put on the wire.
	LegitSent, LegitStamped int
	// SpoofedSent flows claimed the victim's own addresses;
	// SpoofedBlocked were dropped at the source AS by the DP filter.
	SpoofedSent, SpoofedBlocked int
	// RawInjected unstamped packets claiming the source AS's own
	// addresses bypassed the source border router entirely (a host
	// sneaking past the border, or an on-path injector); the victim
	// holds that AS's verify key, so CDP verification drops them.
	RawInjected int
}

// Loadgen drives three traffic classes from node src toward node
// victim's protected prefix: legitimate flows (stamped at the source,
// verified and delivered at the victim), spoofed flows (dropped at the
// source by DP), and raw unstamped injections (dropped at the victim
// by CDP verification). Call after Protect.
func (f *Fleet) Loadgen(src, victim, flows int) LoadgenReport {
	var rep LoadgenReport
	dstName := f.Nodes[victim].Name()
	for k := 0; k < flows; k++ {
		legit := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src:     FleetAddr(src, byte(20+k%200)),
			Dst:     FleetAddr(victim, byte(10+k%200)),
			Payload: []byte("legit"),
		}
		rep.LegitSent++
		if v, sent := f.Nodes[src].SendPacket(dstName, legit); sent && v == core.VerdictPassStamped {
			rep.LegitStamped++
		}

		spoofed := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src:     FleetAddr(victim, byte(30+k%200)), // claims the victim's own space
			Dst:     FleetAddr(victim, byte(10+k%200)),
			Payload: []byte("spoof"),
		}
		rep.SpoofedSent++
		if v, sent := f.Nodes[src].SendPacket(dstName, spoofed); !sent && v.Dropped() {
			rep.SpoofedBlocked++
		}

		// Claims the source AS's own space but skipped its border router,
		// so it carries no mark; the victim's CDP verifier rejects it.
		// (Spoofing the victim's own prefix would pass here: the victim
		// has no verify key for itself — Table I makes CDP-verify
		// conditional on src ∈ peer, and the peers' DP filters own that
		// case, as SpoofedBlocked shows.)
		raw := &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src:     FleetAddr(src, byte(40+k%200)),
			Dst:     FleetAddr(victim, byte(10+k%200)),
			Payload: []byte("raw"),
		}
		if f.Nodes[src].InjectRaw(dstName, raw) {
			rep.RawInjected++
		}
	}
	return rep
}

// BurstReport tallies one high-rate burst loadgen run: Packets were
// pushed as packet trains through the source border router (including
// re-pushes after transport backpressure), Stamped of them survived
// outbound processing with a CDP stamp, and Sent went out in trains
// the transport accepted.
type BurstReport struct {
	Packets, Stamped, Sent int
	Elapsed                time.Duration
}

// Mpps is the achieved rate of transport-accepted packets in million
// packets per second.
func (r BurstReport) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Elapsed.Seconds() / 1e6
}

// LoadgenBurst drives high-rate legitimate traffic from node src
// toward node victim's prefix through the batch entry points: packets
// are processed in bursts of burst through ProcessOutboundBatch and
// shipped as FrameKindDataBurst trains, one transport frame per train.
// The burst's packet structs are reused across iterations — outbound
// stamping overwrites any prior mark, so reuse is safe and the hot
// loop allocates nothing per packet. The loop runs until `packets`
// packets have been accepted by the transport, yielding briefly when
// the peer's bounded queue pushes back (on one core the producer can
// outrun the send worker; the drop counter is the signal). Call after
// Protect; delivery is observable in the victim's node.rx_delivered
// counter.
func (f *Fleet) LoadgenBurst(src, victim, packets, burst int) BurstReport {
	if burst <= 0 {
		burst = 256
	}
	if burst > packets {
		burst = packets
	}
	dstName := f.Nodes[victim].Name()
	pkts := make([]*packet.IPv4, burst)
	for k := range pkts {
		pkts[k] = &packet.IPv4{
			TTL: 64, Protocol: 17,
			Src:     FleetAddr(src, byte(20+k%200)),
			Dst:     FleetAddr(victim, byte(10+k%200)),
			Payload: []byte("burst"),
		}
	}
	var rep BurstReport
	begin := time.Now()
	for rep.Sent < packets {
		n := burst
		if rem := packets - rep.Sent; n > rem {
			n = rem
		}
		stamped, sent := f.Nodes[src].SendPacketBatch(dstName, pkts[:n])
		rep.Packets += n
		rep.Stamped += stamped
		rep.Sent += sent
		if sent < n {
			time.Sleep(200 * time.Microsecond) // transport backpressure
		}
	}
	rep.Elapsed = time.Since(begin)
	return rep
}

// Close shuts every node down.
func (f *Fleet) Close() {
	for _, n := range f.Nodes {
		if n != nil {
			n.Close()
		}
	}
}
