package service

import (
	"encoding/json"
	"net"
	"net/http"
	"time"

	"discs/internal/topology"
)

// Health is the /healthz report: overall status plus the controller's
// view of every configured peer.
type Health struct {
	// Status is "ok" when every configured peer is established,
	// "degraded" otherwise (still peering, rejected, or declared dead).
	Status string `json:"status"`
	Name   string `json:"name"`
	AS     uint32 `json:"as"`
	// UptimeSeconds is wall time since the node was constructed.
	UptimeSeconds float64           `json:"uptime_seconds"`
	Peers         map[string]string `json:"peers"`
}

// OK reports whether the node considers itself fully healthy.
func (h Health) OK() bool { return h.Status == "ok" }

// Health computes the node's liveness report from the controller's
// heartbeat/dead-peer state, serialized with the event loop.
func (n *Node) Health() Health {
	h := Health{
		Status:        "ok",
		Name:          n.cfg.Name,
		AS:            n.cfg.AS,
		UptimeSeconds: time.Since(n.start).Seconds(),
		Peers:         make(map[string]string, len(n.cfg.Peers)),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.cfg.Peers {
		st, ok := n.ctrl.PeerStatusOf(topology.ASN(p.AS))
		if !ok {
			h.Peers[p.Name] = "unknown"
			h.Status = "degraded"
			continue
		}
		h.Peers[p.Name] = st.String()
		if !n.ctrl.KeysReadyWith(topology.ASN(p.AS)) {
			h.Status = "degraded"
		}
	}
	return h
}

// adminServer is the node's HTTP sidecar: Prometheus /metrics and
// JSON /healthz.
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

func newAdminServer(addr string, n *Node) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := n.Stats()
		snap.WritePrometheus(w, "discs")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := n.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.OK() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	return &adminServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}, nil
}

func (a *adminServer) serve() {
	go a.srv.Serve(a.ln)
}

func (a *adminServer) addr() string { return a.ln.Addr().String() }

func (a *adminServer) close() { a.srv.Close() }
