package service

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/scenario"
)

// ScenarioPhaseReport tallies one phase of a fleet scenario run. The
// fleet is the off-simulator deployment, so outcomes are verdicts at
// real border routers over real sockets, not simulated deliveries.
type ScenarioPhaseReport struct {
	Name string
	Kind scenario.PhaseKind
	// Sent packets entered a source node's border router; Stamped left
	// it with a CDP stamp (legit traffic), Blocked died there (spoofed
	// traffic after DP deploys).
	Sent, Stamped, Blocked int
	// Invoked counts peers that accepted an invoke phase's functions.
	Invoked int
}

// RunScenario drives the fleet through the service-compatible phases
// of a declarative scenario spec: pulse trains of spoofed traffic
// claiming the victim's space (the DP/CDP loadgen shape, paced in real
// time), legit phases of genuine stamped flows, invoke phases through
// the victim node's controller, and quiet phases as wall-clock gaps.
//
// Topology-dependent phases (carpet, adaptive, deploy) and reflective
// vectors need the simulated internet; they fail with an error telling
// the caller to use discs-sim -scenario.
func (f *Fleet) RunScenario(spec *scenario.Spec, victim int, timeout time.Duration) ([]ScenarioPhaseReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if victim < 0 || victim >= len(f.Nodes) {
		return nil, fmt.Errorf("service: victim node %d out of range [0, %d)", victim, len(f.Nodes))
	}
	deadline := time.Now().Add(timeout)
	var out []ScenarioPhaseReport
	for i := range spec.Phases {
		ph := &spec.Phases[i]
		rep := ScenarioPhaseReport{Name: ph.Name, Kind: ph.Kind}
		var err error
		switch ph.Kind {
		case scenario.PhasePulse:
			err = f.scenarioPulse(ph, victim, &rep)
		case scenario.PhaseLegit:
			f.scenarioLegit(ph, victim, &rep)
		case scenario.PhaseInvoke:
			rep.Invoked, err = f.scenarioInvoke(ph, victim, time.Until(deadline))
		case scenario.PhaseQuiet:
			time.Sleep(ph.Wait.D())
		default:
			err = fmt.Errorf("kind %q is topology-dependent; run it on the simulator (discs-sim -scenario)", ph.Kind)
		}
		if err != nil {
			return out, fmt.Errorf("service: scenario %q phase %d (%s): %w", spec.Name, i, ph.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// scenarioPulse sends a paced train of spoofed packets claiming the
// victim's own space from the non-victim nodes, round-robin. Pulses
// are separated by the spec gap in real time; sub-waves split each
// pulse across the pulse width.
func (f *Fleet) scenarioPulse(ph *scenario.Phase, victim int, rep *ScenarioPhaseReport) error {
	if ph.Vector != scenario.VectorDDoS {
		return fmt.Errorf("vector %q needs the simulator's reflector paths; the fleet drives %q only", ph.Vector, scenario.VectorDDoS)
	}
	srcs := f.otherNodes(victim)
	dstName := f.Nodes[victim].Name()
	intra := time.Duration(0)
	if ph.SubWaves > 1 {
		intra = ph.Width.D() / time.Duration(ph.SubWaves)
	}
	for p := 0; p < ph.Pulses; p++ {
		for w := 0; w < ph.SubWaves; w++ {
			for k := 0; k < ph.Flows; k++ {
				src := srcs[k%len(srcs)]
				lo, hi := w*ph.PerFlow/ph.SubWaves, (w+1)*ph.PerFlow/ph.SubWaves
				for q := lo; q < hi; q++ {
					pkt := &packet.IPv4{
						TTL: 64, Protocol: 17,
						Src:     FleetAddr(victim, byte(30+(k+q)%200)), // claims the victim's space
						Dst:     FleetAddr(victim, byte(10+k%200)),
						Payload: []byte("pulse"),
					}
					rep.Sent++
					if v, sent := f.Nodes[src].SendPacket(dstName, pkt); !sent && v.Dropped() {
						rep.Blocked++
					}
				}
			}
			if intra > 0 && w < ph.SubWaves-1 {
				time.Sleep(intra)
			}
		}
		if g := ph.Gap.D(); g > 0 && p < ph.Pulses-1 {
			time.Sleep(g)
		}
	}
	return nil
}

// scenarioLegit sends genuine flows from every non-victim node toward
// the victim; Flows > 0 caps how many nodes send.
func (f *Fleet) scenarioLegit(ph *scenario.Phase, victim int, rep *ScenarioPhaseReport) {
	srcs := f.otherNodes(victim)
	if ph.Flows > 0 && ph.Flows < len(srcs) {
		srcs = srcs[:ph.Flows]
	}
	dstName := f.Nodes[victim].Name()
	for _, src := range srcs {
		for q := 0; q < ph.PerFlow; q++ {
			pkt := &packet.IPv4{
				TTL: 64, Protocol: 17,
				Src:     FleetAddr(src, byte(20+q%200)),
				Dst:     FleetAddr(victim, byte(10+q%200)),
				Payload: []byte("legit"),
			}
			rep.Sent++
			if v, sent := f.Nodes[src].SendPacket(dstName, pkt); sent && v == core.VerdictPassStamped {
				rep.Stamped++
			}
		}
	}
}

// scenarioInvoke invokes the phase's functions for the victim node's
// prefix and, for the outbound-table functions the fleet can observe
// (DP filter, CDP stamp), blocks until every peer deployed them.
func (f *Fleet) scenarioInvoke(ph *scenario.Phase, victim int, timeout time.Duration) (int, error) {
	var invs []core.Invocation
	var wantOps core.OpSet
	for _, name := range ph.Functions {
		fn, err := core.ParseFunction(strings.ToUpper(name))
		if err != nil {
			return 0, err
		}
		invs = append(invs, core.Invocation{
			Prefixes: []netip.Prefix{FleetPrefix(victim)},
			Function: fn, Duration: ph.Duration.D(),
		})
		switch fn {
		case core.DP:
			wantOps = wantOps.Add(core.OpDPFilter)
		case core.CDP:
			wantOps = wantOps.Add(core.OpCDPStamp)
		}
	}
	n, err := f.Nodes[victim].Invoke(invs...)
	if err != nil {
		return n, err
	}
	if wantOps == 0 {
		return n, nil
	}
	probe := FleetAddr(victim, 10)
	deadline := time.Now().Add(timeout)
	for {
		deployed := true
		for i, node := range f.Nodes {
			if i == victim {
				continue
			}
			node.Do(func(_ *core.Controller, r *core.BorderRouter) {
				active, _ := r.Tables.In[core.TableOutDst].ActiveOps(probe, node.Now())
				if active&wantOps != wantOps {
					deployed = false
				}
			})
		}
		if deployed {
			return n, nil
		}
		if time.Now().After(deadline) {
			return n, fmt.Errorf("functions not deployed after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// otherNodes returns every node index except the victim's.
func (f *Fleet) otherNodes(victim int) []int {
	out := make([]int, 0, len(f.Nodes)-1)
	for i := range f.Nodes {
		if i != victim {
			out = append(out, i)
		}
	}
	return out
}
