package service_test

import (
	"strings"
	"testing"
	"time"

	"discs/internal/scenario"
	"discs/internal/service"
)

// TestFleetRunScenario drives a live loopback fleet through the
// service-compatible phases of a declarative campaign: spoofed pulse
// trains claiming the victim's space are clean before invocation and
// blocked at the source border routers after it, while legit traffic
// keeps flowing stamped.
func TestFleetRunScenario(t *testing.T) {
	f, err := service.NewFleet(service.FleetOptions{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	const victim = 2
	spec, err := scenario.New("fleet-campaign", 1).
		Legit("baseline", 4).
		Pulse("onset", 6, 4, 2, 20*time.Millisecond).
		Invoke("defend", "DP", "CDP").
		Pulse("sustain", 6, 4, 2, 20*time.Millisecond).
		Legit("sanity", 4).
		Quiet("cooldown", 10*time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	reps, err := f.RunScenario(spec, victim, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(spec.Phases) {
		t.Fatalf("%d phase reports for %d phases", len(reps), len(spec.Phases))
	}

	baseline, onset, defend, sustain, sanity := reps[0], reps[1], reps[2], reps[3], reps[4]
	if baseline.Sent == 0 || baseline.Blocked != 0 || baseline.Stamped != 0 {
		t.Fatalf("baseline legit: %+v, want delivery without stamps before invocation", baseline)
	}
	if want := 6 * 4 * 2; onset.Sent != want || onset.Blocked != 0 {
		t.Fatalf("onset pulse: %+v, want %d sent and none blocked pre-invocation", onset, want)
	}
	if defend.Invoked == 0 {
		t.Fatalf("invoke phase: %+v, want peers invoked", defend)
	}
	if sustain.Sent != onset.Sent || sustain.Blocked != sustain.Sent {
		t.Fatalf("sustain pulse: %+v, want all %d spoofed packets blocked at the source", sustain, sustain.Sent)
	}
	if sanity.Stamped != sanity.Sent {
		t.Fatalf("sanity legit: %+v, want stamping to survive invocation", sanity)
	}
}

// TestFleetRunScenarioRejects pins the error paths: topology-dependent
// phase kinds and reflective vectors point the caller at the
// simulator, and partial reports stop at the failing phase.
func TestFleetRunScenarioRejects(t *testing.T) {
	f, err := service.NewFleet(service.FleetOptions{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	carpet, err := scenario.New("carpet", 1).
		Legit("pre", 1).
		Carpet("walk", 2, 2, 1, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	reps, err := f.RunScenario(carpet, 1, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "discs-sim -scenario") {
		t.Fatalf("carpet on fleet: err = %v, want pointer to the simulator", err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d partial reports, want the phase before the failure", len(reps))
	}

	sddos := scenario.New("sddos", 1).Pulse("p", 2, 2, 1, 0)
	sddosSpec, err := sddos.Build()
	if err != nil {
		t.Fatal(err)
	}
	sddosSpec.Phases[0].Vector = scenario.VectorSDDoS
	if _, err := f.RunScenario(sddosSpec, 1, 5*time.Second); err == nil || !strings.Contains(err.Error(), "reflector") {
		t.Fatalf("sddos on fleet: err = %v, want reflector error", err)
	}

	ok, err := scenario.New("ok", 1).Legit("pre", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunScenario(ok, 7, 5*time.Second); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad victim: err = %v", err)
	}
}
