package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"discs/internal/core"
	"discs/internal/service"
)

// waitCounter polls a node's metric until it reaches want or the
// deadline passes.
func waitCounter(t *testing.T, n *service.Node, name string, want uint64) uint64 {
	t.Helper()
	full := fmt.Sprintf("as%d.%s", n.AS(), name)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := n.Stats().Get(full)
		if got >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", full, got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// scrape fetches one admin endpoint and returns status plus body.
func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return resp.StatusCode, sb.String()
}

// promValue extracts the value of one exact series line from a
// Prometheus text exposition body.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not in exposition:\n%s", series, body)
	return 0
}

// TestFleetEndToEnd is the off-simulator acceptance run: a 3-node
// loopback fleet over real TCP+TLS peers, negotiates keys, deploys
// DP+CDP protection, and the loadgen's three traffic classes land
// where the paper says they should — legitimate flows stamped and
// verified, spoofed flows dropped at the source AS, unstamped
// injections dropped at the victim. The victim's live /metrics and
// /healthz endpoints observe it all.
func TestFleetEndToEnd(t *testing.T) {
	f, err := service.NewFleet(service.FleetOptions{N: 3, TLS: true, Admin: true, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	const victim, src = 2, 0
	if err := f.Protect(victim, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the grace interval (50ms in fleet configs) lapse so CDP
	// verification enforces instead of erase-only.
	time.Sleep(200 * time.Millisecond)

	const flows = 20
	rep := f.Loadgen(src, victim, flows)
	if rep.LegitStamped != flows {
		t.Fatalf("legit stamped %d/%d", rep.LegitStamped, flows)
	}
	if rep.SpoofedBlocked != flows {
		t.Fatalf("spoofed blocked at source %d/%d", rep.SpoofedBlocked, flows)
	}
	if rep.RawInjected != flows {
		t.Fatalf("raw injected %d/%d", rep.RawInjected, flows)
	}

	// The victim delivered every legitimate flow and dropped every raw
	// injection; nothing was malformed.
	v := f.Nodes[victim]
	waitCounter(t, v, service.MetricNodeRxDelivered, flows)
	waitCounter(t, v, service.MetricNodeRxDropped, flows)
	waitCounter(t, v, core.MetricRouterInVerified, flows)
	if got := v.Stats().Get(fmt.Sprintf("as%d.%s", v.AS(), service.MetricNodeRxMalformed)); got != 0 {
		t.Fatalf("rx_malformed = %d", got)
	}

	// Live Prometheus scrape shows the verified counter.
	code, body := scrape(t, v.AdminAddr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	series := fmt.Sprintf(`discs_router_in_verified{as="%d"}`, v.AS())
	if got := promValue(t, body, series); got < flows {
		t.Fatalf("%s = %v, want >= %d", series, got, flows)
	}
	if !strings.Contains(body, "# TYPE discs_router_in_verified counter") {
		t.Fatal("missing TYPE header for discs_router_in_verified")
	}

	// The fleet is fully peered, so every node is healthy.
	for _, n := range f.Nodes {
		code, body := scrape(t, n.AdminAddr(), "/healthz")
		if code != http.StatusOK {
			t.Fatalf("%s /healthz status %d: %s", n.Name(), code, body)
		}
		var h service.Health
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("%s /healthz body: %v", n.Name(), err)
		}
		if !h.OK() || len(h.Peers) != 2 {
			t.Fatalf("%s health = %+v", n.Name(), h)
		}
	}
}

// TestHealthzDegradesOnDeadPeer kills one node of a two-node fleet and
// watches the survivor's /healthz flip from ok to degraded once the
// heartbeat machinery declares the peer dead and purges it.
func TestHealthzDegradesOnDeadPeer(t *testing.T) {
	f, err := service.NewFleet(service.FleetOptions{
		N: 2, Admin: true, BaseSeed: 7,
		HeartbeatMS: 50, DeadAfterMisses: 2, ReconnectMS: 60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	alive := f.Nodes[0]
	code, _ := scrape(t, alive.AdminAddr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("pre-kill /healthz status %d", code)
	}

	f.Nodes[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := scrape(t, alive.AdminAddr(), "/healthz")
		if code == http.StatusServiceUnavailable {
			var h service.Health
			if err := json.Unmarshal([]byte(body), &h); err != nil {
				t.Fatal(err)
			}
			if h.Status != "degraded" {
				t.Fatalf("health = %+v", h)
			}
			if st := h.Peers[f.Nodes[1].Name()]; st != "dead" {
				t.Fatalf("peer state %q, want dead", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never reported degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConfigLoadAndValidate pins the JSON config surface: a good file
// loads, and each structural defect is rejected.
func TestConfigLoadAndValidate(t *testing.T) {
	id, err := service.NodeIdentity("ctrl.as2", 5)
	if err != nil {
		t.Fatal(err)
	}
	good := service.Config{
		Name: "ctrl.as1", AS: 1, Listen: "127.0.0.1:0",
		Prefixes: map[string][]string{"1": {"10.0.0.0/16"}, "2": {"10.1.0.0/16"}},
		Peers:    []service.PeerConfig{{Name: "ctrl.as2", AS: 2, Addr: "127.0.0.1:9", Pub: service.PubHex(id)}},
	}
	b, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "node.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := service.LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != good.Name || len(loaded.Peers) != 1 {
		t.Fatalf("loaded = %+v", loaded)
	}

	bad := []struct {
		name   string
		mutate func(*service.Config)
	}{
		{"missing name", func(c *service.Config) { c.Name = "" }},
		{"missing as", func(c *service.Config) { c.AS = 0 }},
		{"missing listen", func(c *service.Config) { c.Listen = "" }},
		{"bad prefix", func(c *service.Config) { c.Prefixes = map[string][]string{"1": {"nope"}} }},
		{"bad asn key", func(c *service.Config) { c.Prefixes = map[string][]string{"x": {"10.0.0.0/16"}} }},
		{"peer missing as", func(c *service.Config) { c.Peers[0].AS = 0 }},
		{"peer bad pub", func(c *service.Config) { c.Peers[0].Pub = "zz" }},
	}
	for _, tc := range bad {
		c := good
		c.Peers = append([]service.PeerConfig(nil), good.Peers...)
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestReloadRejectsIdentityChange pins the reload contract: peers are
// live-reloadable, the node's own identity is not.
func TestReloadRejectsIdentityChange(t *testing.T) {
	cfg := service.Config{
		Name: "ctrl.as1", AS: 1, Listen: "127.0.0.1:0",
		Prefixes: map[string][]string{"1": {"10.0.0.0/16"}},
	}
	n, err := service.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	changed := cfg
	changed.AS = 9
	changed.Prefixes = map[string][]string{"9": {"10.0.0.0/16"}}
	if err := n.Reload(changed); err == nil {
		t.Fatal("reload accepted an AS change")
	}
}
