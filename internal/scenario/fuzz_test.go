package scenario

import (
	"testing"
	"time"
)

// FuzzScenarioConfig: the spec parser must be total — hostile lengths,
// unknown phase kinds, NaN/negative durations and malformed JSON must
// error, never panic — and every accepted spec must re-validate and
// round-trip through its canonical Marshal form.
func FuzzScenarioConfig(f *testing.F) {
	if seed, err := New("seed", 1).Victim(3).
		Pulse("pre", 4, 2, 2, time.Millisecond).
		Invoke("defend", "DP").
		Quiet("cool", time.Second).
		Build(); err == nil {
		if b, err := seed.Marshal(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"kind":"pulse","width":"10ms","sub_waves":4}]}`))
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"kind":"tsunami"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"kind":"pulse","gap":-1}]}`))
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"kind":"quiet","wait":1e308}]}`))
	f.Add([]byte(`{"version":1,"name":"x","recover_threshold":"NaN"}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Parse validated (and normalized) the spec; it must stay valid.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		out, err := s.Marshal()
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("canonical form fails to re-parse: %v\n%s", err, out)
		}
	})
}
