package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleSpecs loads every spec in the curated examples/scenario
// library, checks it parses and round-trips through the canonical
// Marshal form, and runs it end to end on a small world.
func TestExampleSpecs(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenario/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("example library: %d specs, want 4 (%v)", len(files), files)
	}
	checks := map[string]func(t *testing.T, res *Result){
		"pulsewave.json": func(t *testing.T, res *Result) {
			onset, sustain := res.Phases[1], res.Phases[3]
			if sustain.DropRate <= onset.DropRate {
				t.Errorf("invocation did not raise the drop rate: %v -> %v", onset.DropRate, sustain.DropRate)
			}
			if res.TTM == nil || !res.TTM.Invoked || !res.TTM.Recovered {
				t.Errorf("ttm = %+v", res.TTM)
			}
			for _, i := range []int{0, 5} {
				if res.Phases[i].FalsePositives != 0 {
					t.Errorf("legit phase %d: %d false positives", i, res.Phases[i].FalsePositives)
				}
			}
		},
		"carpetbomb.json": func(t *testing.T, res *Result) {
			carpet := res.Phases[2]
			if carpet.Sent != 40*4*8 {
				t.Errorf("carpet sent %d", carpet.Sent)
			}
			if carpet.DropRate <= res.Phases[0].DropRate {
				t.Errorf("carpet after DP+CDP not filtered: %v", carpet.DropRate)
			}
		},
		"adaptive-rotation.json": func(t *testing.T, res *Result) {
			rotate, probe := res.Phases[2], res.Phases[3]
			if rotate.Rotations == 0 {
				t.Error("rotate phase never rotated")
			}
			if probe.ProbesSent == 0 || probe.LiveAgents+probe.IdleAgents == 0 {
				t.Errorf("probe phase: %+v", probe)
			}
		},
		"adoption-sweep.json": func(t *testing.T, res *Result) {
			var ratios []float64
			for _, ph := range res.Phases {
				if ph.Kind == PhaseDeploy {
					if ph.NewDeployed == 0 {
						t.Errorf("deploy phase %d adopted nothing", ph.Index)
					}
					if ph.IncDP <= 0 || ph.Effectiveness <= 0 {
						t.Errorf("deploy phase %d: incentives %v/%v", ph.Index, ph.IncDP, ph.Effectiveness)
					}
					ratios = append(ratios, ph.DeployedRatio)
				}
			}
			for i := 1; i < len(ratios); i++ {
				if ratios[i] <= ratios[i-1] {
					t.Errorf("adoption ratio not increasing: %v", ratios)
				}
			}
			first, last := res.Phases[2], res.Phases[len(res.Phases)-1]
			if last.DropRate < first.DropRate {
				t.Errorf("adoption lowered the drop rate: %v -> %v", first.DropRate, last.DropRate)
			}
		},
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(raw)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := spec.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Parse(canon); err != nil {
				t.Fatalf("canonical form does not re-parse: %v", err)
			}

			sys, _ := world(t, 2, 3, 4, 5)
			eng, err := NewEngine(Options{Spec: spec, Sys: sys})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Phases) != len(spec.Phases) {
				t.Fatalf("%d phase results for %d phases", len(res.Phases), len(spec.Phases))
			}
			for _, ph := range res.Phases {
				if trafficKind(ph.Kind) && ph.Sent == 0 {
					t.Errorf("traffic phase %d (%s) sent nothing", ph.Index, ph.Name)
				}
			}
			check, ok := checks[filepath.Base(path)]
			if !ok {
				t.Fatalf("no check for %s — add one when adding specs", filepath.Base(path))
			}
			check(t, res)
		})
	}
}
