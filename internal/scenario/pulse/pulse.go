// Package pulse is the scenario engine's pacing primitive: it injects
// pre-materialized packet bursts into a core.System from driver
// context, advancing the simulated clock between bursts. It is the
// single wave-pacing implementation in the repository — attack.RunPaced
// and every internal/scenario phase (pulse-wave trains, carpet sweeps,
// adaptive rounds) are thin layers over Run.
//
// Determinism: packets are injected serially from driver context (the
// same place attack.Run always injected from), and the clock advances
// via Simulator.Run, so a burst train is bit-identical at any parallel
// worker count and identical whether the world was built straight
// through or restored from a snapshot.
package pulse

import (
	"time"

	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Packet is one injection: Pkt enters the system at From's border.
// Flow carries a caller-defined flow index through to the Sink so
// tallies can be grouped without re-deriving the flow from addresses.
type Packet struct {
	From topology.ASN
	Pkt  *packet.IPv4
	Flow int
}

// Burst is one pulse of a wave train: its packets are injected
// back-to-back at a single simulated instant, then the clock advances
// by Gap (firing any timers due in that window — heartbeats, interval
// recorders, expiries). A zero Gap injects the next burst at the same
// instant.
type Burst struct {
	Packets []Packet
	Gap     time.Duration
}

// Sink observes the fate of every injected packet, in injection order.
type Sink func(p Packet, d core.DeliveryResult)

// Run injects the bursts in order. sink may be nil when the caller
// only wants the side effects (counters, traces).
func Run(sys *core.System, bursts []Burst, sink Sink) {
	sim := sys.Net.Sim
	for _, b := range bursts {
		for _, p := range b.Packets {
			d := sys.SendV4(p.From, p.Pkt)
			if sink != nil {
				sink(p, d)
			}
		}
		if b.Gap > 0 {
			sim.Run(sim.Now() + b.Gap)
		}
	}
}

// Train builds the canonical pulse-wave burst layout over a per-flow
// packet matrix: pkts[i] holds flow i's packets for the whole train,
// and every burst takes each flow's next contiguous slice — so the
// injection order inside a burst is flow-major, matching the historic
// attack.RunPaced wave loop exactly.
//
// The train has `pulses` pulses separated by interGap; each pulse is
// split into subWaves bursts separated by intraGap (a pulse of width W
// sampled at S points uses intraGap = W/S). Packets per flow are
// divided first across pulses, then across sub-waves, with remainders
// distributed to the earlier slices — for subWaves = 1, intraGap = 0
// this is byte-for-byte the RunPaced schedule. No gap follows the
// final burst: the train ends at the instant of its last injection.
func Train(from func(flow int) topology.ASN, pkts [][]*packet.IPv4, pulses, subWaves int, intraGap, interGap time.Duration) []Burst {
	if pulses < 1 {
		pulses = 1
	}
	if subWaves < 1 {
		subWaves = 1
	}
	waves := pulses * subWaves
	bursts := make([]Burst, 0, waves)
	for w := 0; w < waves; w++ {
		var b Burst
		for i, ps := range pkts {
			lo, hi := w*len(ps)/waves, (w+1)*len(ps)/waves
			for _, p := range ps[lo:hi] {
				b.Packets = append(b.Packets, Packet{From: from(i), Pkt: p, Flow: i})
			}
		}
		if w < waves-1 {
			if (w+1)%subWaves == 0 {
				b.Gap = interGap
			} else {
				b.Gap = intraGap
			}
		}
		bursts = append(bursts, b)
	}
	return bursts
}
