package scenario

import (
	"discs/internal/flowexport"
	"discs/internal/topology"
)

// adapt runs the phase's attacker strategy between pulses, mutating
// the flow set in place. It executes before every pulse (including the
// first), so the attacker reacts to the world as it is *now* — after
// any deploy or invoke phases earlier in the campaign and after the
// previous pulse's outcome.
func (e *Engine) adapt(ph *Phase, pr *PhaseResult, flows []flowState, agg *datasetAgg) error {
	switch ph.Strategy {
	case StrategyRotate:
		e.adaptRotate(pr, flows)
		return nil
	case StrategyProbe:
		return e.adaptProbe(ph, pr, flows, agg)
	}
	return specErr(pr.Index, "Strategy", "unknown strategy "+ph.Strategy)
}

// adaptRotate re-draws every flow's spoofed source (the innocent AS)
// avoiding ASes that have deployed DISCS: once an AS deploys, its
// address space gains stamping keys and spoofing it gets filtered, so
// a rational attacker rotates to still-legacy space. When (almost)
// everything has deployed there is nowhere left to rotate and the
// draw falls back to any AS — exactly the paper's end-game where
// incremental adoption corners the attacker.
func (e *Engine) adaptRotate(pr *PhaseResult, flows []flowState) {
	deployed := make(map[topology.ASN]bool)
	for _, asn := range e.sys.Deployed() {
		deployed[asn] = true
	}
	for i := range flows {
		f := &flows[i].flow
		// Bounded re-draws: the sampler is weighted by address space, so
		// a few tries find legacy space whenever a meaningful amount
		// remains.
		for try := 0; try < 16; try++ {
			cand := e.samp.Draw(e.rng)
			if cand == 0 || cand == f.Agent || cand == f.Victim {
				continue
			}
			if deployed[cand] && try < 15 {
				continue
			}
			if cand != f.Innocent {
				pr.Rotations++
			}
			f.Innocent = cand
			break
		}
	}
}

// adaptProbe sends Probes low-volume probe packets per distinct agent
// along the real attack shape and benches agents whose probes all
// died: the attacker keeps only paths that evade the current DAS
// filtering. Benched agents are re-probed next pulse — a path can come
// back (invocation expiry) or die (new adoption).
func (e *Engine) adaptProbe(ph *Phase, pr *PhaseResult, flows []flowState, agg *datasetAgg) error {
	// Probe each distinct agent once per round, not once per flow.
	type probeOutcome struct {
		probed, alive bool
	}
	agents := make(map[topology.ASN]*probeOutcome)
	for i := range flows {
		f := flows[i].flow
		out := agents[f.Agent]
		if out == nil {
			out = &probeOutcome{}
			agents[f.Agent] = out
		}
		if out.probed {
			continue
		}
		out.probed = true
		pkts, err := f.Packets(e.topo, ph.Probes, e.rng)
		if err != nil {
			return err
		}
		e.markAttack()
		for _, p := range pkts {
			d := e.sys.SendV4(f.Agent, p)
			pr.Sent++
			pr.ProbesSent++
			if d.Delivered {
				pr.Delivered++
				out.alive = true
			} else {
				pr.Dropped++
			}
			agg.observe(len(flows)+i, flowState{flow: f, label: flowexport.LabelProbe}, p, d)
		}
	}
	live, idle := 0, 0
	for i := range flows {
		alive := agents[flows[i].flow.Agent].alive
		flows[i].benched = !alive
	}
	for _, out := range agents {
		if out.alive {
			live++
		} else {
			idle++
		}
	}
	pr.LiveAgents, pr.IdleAgents = live, idle
	return nil
}
