// Package scenario is the declarative attack-scenario engine of the
// DISCS reproduction: a versioned JSON (or Go-builder) spec describes
// a phased campaign — pulse-wave burst trains, carpet-bombing across a
// victim's prefix set, multi-vector d-DDoS/s-DDoS mixes, adaptive
// attacker strategies that react to deployment state, incremental DAS
// adoption steps and quiet gaps — and the engine (engine.go) drives an
// existing core.System through it deterministically, recording
// per-phase outcomes into internal/obs, first-class time-to-mitigation,
// the §VI incentive curves at every adoption step (internal/eval), and
// a ground-truth-labeled flow-record dataset (internal/flowexport).
//
// See DESIGN.md §16 for the model and examples/scenario for a curated
// spec library.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"discs/internal/topology"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// Limits keep hostile specs from turning the engine into a memory or
// CPU bomb: Parse and Validate reject anything beyond them. They are
// generous for real experiments (a maxed-out spec is ~10^9 packets —
// minutes of wall clock, not an OOM).
const (
	MaxPhases   = 256
	MaxFlows    = 1 << 20
	MaxPerFlow  = 1 << 20
	MaxPulses   = 1 << 16
	MaxSubWaves = 1 << 12
	// MaxDuration bounds every duration field (gaps, widths, waits,
	// invocation lifetimes): one simulated year.
	MaxDuration = Duration(365 * 24 * time.Hour)
	// maxSpecBytes bounds the JSON document itself.
	maxSpecBytes = 1 << 20
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms") and additionally accepts a bare JSON number of
// milliseconds. Negative, NaN, infinite and overflowing values are
// rejected at parse time so Validate can assume well-formed fields.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON writes the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1s"/"250ms" strings or numbers (milliseconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		if v < 0 || v > time.Duration(MaxDuration) {
			return fmt.Errorf("scenario: duration %q out of range [0, %v]", s, MaxDuration)
		}
		*d = Duration(v)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return err
	}
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 || ms > float64(time.Duration(MaxDuration)/time.Millisecond) {
		return fmt.Errorf("scenario: duration %v ms out of range", ms)
	}
	*d = Duration(time.Duration(ms * float64(time.Millisecond)))
	return nil
}

// PhaseKind names what a phase does.
type PhaseKind string

const (
	// PhasePulse injects a pulse-wave burst train of spoofing flows:
	// Pulses bursts of Flows×PerFlow packets, each pulse spread over
	// Width in SubWaves injections, pulses separated by Gap.
	PhasePulse PhaseKind = "pulse"
	// PhaseCarpet carpet-bombs the victim's prefix set: pulse p targets
	// prefix p mod len(prefixes), so the attack walks the whole
	// advertised space instead of concentrating on one subnet.
	PhaseCarpet PhaseKind = "carpet"
	// PhaseAdaptive runs an adaptive attacker: each pulse the strategy
	// reacts to the deployment state and the previous pulse's outcome
	// (see Strategy).
	PhaseAdaptive PhaseKind = "adaptive"
	// PhaseLegit sends genuine traffic from deployed peers toward the
	// victim; drops are false positives.
	PhaseLegit PhaseKind = "legit"
	// PhaseInvoke has the victim's controller invoke defense functions
	// at its peers and waits for deployment plus the §IV-E grace window.
	PhaseInvoke PhaseKind = "invoke"
	// PhaseDeploy grows the DAS set by Count ASes (incremental
	// adoption); the outcome records the §VI incentive and
	// effectiveness values at the new deployment ratio.
	PhaseDeploy PhaseKind = "deploy"
	// PhaseQuiet advances the simulated clock by Wait.
	PhaseQuiet PhaseKind = "quiet"
)

// Vector selects the spoofing family of a traffic phase.
const (
	VectorDDoS  = "ddos"  // direct: spoofed (innocent) sources at the victim
	VectorSDDoS = "sddos" // reflective: victim's source at innocent reflectors
	VectorMixed = "mixed" // alternating d-DDoS / s-DDoS flows
)

// Adaptive strategies.
const (
	// StrategyRotate re-draws every flow's spoofed source (innocent) AS
	// each pulse, avoiding ASes that have deployed DISCS — the attacker
	// rotates spoofed sources as stamping keys deploy.
	StrategyRotate = "rotate"
	// StrategyProbe sends Probes probe packets per agent before each
	// pulse and fires the pulse only from agents whose probes got
	// through — the attacker hunts for transit paths that evade DAS
	// filtering.
	StrategyProbe = "probe"
)

// Phase is one step of a campaign. Fields apply per Kind; Validate
// rejects fields set on phases that cannot honor them.
type Phase struct {
	Name string    `json:"name,omitempty"`
	Kind PhaseKind `json:"kind"`

	// Traffic shape (pulse, carpet, adaptive, legit).
	Vector   string   `json:"vector,omitempty"`    // ddos (default) | sddos | mixed
	Flows    int      `json:"flows,omitempty"`     // concurrent flows (default 40; legit: one per peer)
	PerFlow  int      `json:"per_flow,omitempty"`  // packets per flow across the whole train (default 8)
	Pulses   int      `json:"pulses,omitempty"`    // bursts in the train (default 1)
	SubWaves int      `json:"sub_waves,omitempty"` // injections per pulse (default 1)
	Width    Duration `json:"width,omitempty"`     // pulse width, spread across SubWaves
	Gap      Duration `json:"gap,omitempty"`       // inter-pulse gap

	// Adaptive attacker.
	Strategy string `json:"strategy,omitempty"` // rotate | probe
	Probes   int    `json:"probes,omitempty"`   // probe packets per agent (probe; default 1)

	// Invocation (invoke).
	Functions []string `json:"functions,omitempty"` // DP/CDP/SP/CSP; empty = all four
	Duration  Duration `json:"duration,omitempty"`  // campaign lifetime (default 24h)

	// Adoption (deploy).
	Count int    `json:"count,omitempty"` // ASes to add (default 1)
	Order string `json:"order,omitempty"` // size (default) | random

	// Quiet.
	Wait Duration `json:"wait,omitempty"`
}

// Spec is a complete campaign description.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Seed drives the scenario's own RNG stream (flow sampling, random
	// adoption order); it is independent of the world's seeds so the
	// same spec replays exactly on any compatible system.
	Seed int64 `json:"seed"`
	// Victim selects the attacked AS; 0 means the last-deployed DAS
	// (the smallest deployer under the usual largest-first order).
	Victim topology.ASN `json:"victim,omitempty"`
	// RecoverThreshold is the pulse drop rate at which the victim
	// counts as recovered for time-to-mitigation (default 0.5).
	RecoverThreshold float64 `json:"recover_threshold,omitempty"`
	Phases           []Phase `json:"phases"`
}

// SpecError is the typed validation failure for scenario specs, in the
// style of core.OptionError: callers branch on the offending phase and
// field without parsing the message.
//
//	var se *scenario.SpecError
//	if errors.As(err, &se) && se.Field == "Pulses" { ... }
type SpecError struct {
	Phase  int    // phase index, -1 for spec-level fields
	Field  string // offending field, e.g. "Pulses"
	Reason string // what is wrong, e.g. "must be >= 1"
}

func (e *SpecError) Error() string {
	if e.Phase < 0 {
		return fmt.Sprintf("scenario: Spec.%s: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("scenario: phase %d: %s: %s", e.Phase, e.Field, e.Reason)
}

func specErr(phase int, field, reason string) *SpecError {
	return &SpecError{Phase: phase, Field: field, Reason: reason}
}

// Parse decodes and validates a JSON spec. Unknown fields are
// rejected, so a typo fails loudly instead of silently running a
// different scenario.
func Parse(b []byte) (*Spec, error) {
	if len(b) > maxSpecBytes {
		return nil, specErr(-1, "(document)", fmt.Sprintf("%d bytes exceed the %d-byte limit", len(b), maxSpecBytes))
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A second document after the spec is a malformed file, not data.
	if dec.More() {
		return nil, specErr(-1, "(document)", "trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validVectors and validOrders gate the free-string enums.
var (
	validVectors    = map[string]bool{VectorDDoS: true, VectorSDDoS: true, VectorMixed: true}
	validStrategies = map[string]bool{StrategyRotate: true, StrategyProbe: true}
	validOrders     = map[string]bool{"size": true, "random": true}
	validFunctions  = map[string]bool{"DP": true, "CDP": true, "SP": true, "CSP": true}
)

// trafficKind reports whether k injects attack or legit traffic.
func trafficKind(k PhaseKind) bool {
	switch k {
	case PhasePulse, PhaseCarpet, PhaseAdaptive, PhaseLegit:
		return true
	}
	return false
}

// attackKind reports whether k injects spoofed attack traffic.
func attackKind(k PhaseKind) bool {
	return k == PhasePulse || k == PhaseCarpet || k == PhaseAdaptive
}

// Validate checks the spec and fills defaults in place (it is the
// normalization step: a validated spec has every applicable field
// populated, so the engine never branches on zero values).
func (s *Spec) Validate() error {
	if s.Version != Version {
		return specErr(-1, "Version", fmt.Sprintf("unsupported version %d (want %d)", s.Version, Version))
	}
	if s.Name == "" {
		return specErr(-1, "Name", "required")
	}
	if len(s.Name) > 128 {
		return specErr(-1, "Name", "longer than 128 bytes")
	}
	if math.IsNaN(s.RecoverThreshold) || math.IsInf(s.RecoverThreshold, 0) ||
		s.RecoverThreshold < 0 || s.RecoverThreshold > 1 {
		return specErr(-1, "RecoverThreshold", "must be in [0, 1]")
	}
	if s.RecoverThreshold == 0 {
		s.RecoverThreshold = 0.5
	}
	if len(s.Phases) == 0 {
		return specErr(-1, "Phases", "required")
	}
	if len(s.Phases) > MaxPhases {
		return specErr(-1, "Phases", fmt.Sprintf("%d phases exceed the %d limit", len(s.Phases), MaxPhases))
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one phase and fills its defaults.
func (p *Phase) validate(i int) error {
	if len(p.Name) > 128 {
		return specErr(i, "Name", "longer than 128 bytes")
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("%s-%d", p.Kind, i)
	}
	switch p.Kind {
	case PhasePulse, PhaseCarpet, PhaseAdaptive, PhaseLegit, PhaseInvoke, PhaseDeploy, PhaseQuiet:
	case "":
		return specErr(i, "Kind", "required")
	default:
		return specErr(i, "Kind", fmt.Sprintf("unknown kind %q", p.Kind))
	}

	// Durations arrive range-checked from Duration.UnmarshalJSON, but a
	// Go-built spec bypasses that path — re-check here.
	for _, d := range []struct {
		name string
		v    Duration
	}{{"Width", p.Width}, {"Gap", p.Gap}, {"Duration", p.Duration}, {"Wait", p.Wait}} {
		if d.v < 0 || d.v > MaxDuration {
			return specErr(i, d.name, fmt.Sprintf("out of range [0, %v]", MaxDuration))
		}
	}

	if trafficKind(p.Kind) {
		if p.Vector == "" {
			p.Vector = VectorDDoS
		}
		if !validVectors[p.Vector] {
			return specErr(i, "Vector", fmt.Sprintf("unknown vector %q", p.Vector))
		}
		if p.Kind == PhaseCarpet && p.Vector != VectorDDoS {
			return specErr(i, "Vector", "carpet bombing is a direct-path shape; only \"ddos\" is meaningful")
		}
		if p.Kind == PhaseLegit && p.Vector != VectorDDoS {
			return specErr(i, "Vector", "legit traffic has no spoofing vector; leave it unset")
		}
		if p.Flows < 0 || p.Flows > MaxFlows {
			return specErr(i, "Flows", fmt.Sprintf("out of range [0, %d]", MaxFlows))
		}
		if p.Flows == 0 && p.Kind != PhaseLegit {
			p.Flows = 40
		}
		if p.PerFlow < 0 || p.PerFlow > MaxPerFlow {
			return specErr(i, "PerFlow", fmt.Sprintf("out of range [0, %d]", MaxPerFlow))
		}
		if p.PerFlow == 0 {
			p.PerFlow = 8
		}
		if p.Pulses < 0 || p.Pulses > MaxPulses {
			return specErr(i, "Pulses", fmt.Sprintf("out of range [0, %d]", MaxPulses))
		}
		if p.Pulses == 0 {
			p.Pulses = 1
		}
		if p.SubWaves < 0 || p.SubWaves > MaxSubWaves {
			return specErr(i, "SubWaves", fmt.Sprintf("out of range [0, %d]", MaxSubWaves))
		}
		if p.SubWaves == 0 {
			p.SubWaves = 1
		}
		if p.SubWaves > 1 && p.Width == 0 {
			return specErr(i, "Width", "required when SubWaves > 1")
		}
	} else {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"Vector", p.Vector != ""}, {"Flows", p.Flows != 0}, {"PerFlow", p.PerFlow != 0},
			{"Pulses", p.Pulses != 0}, {"SubWaves", p.SubWaves != 0},
			{"Width", p.Width != 0}, {"Gap", p.Gap != 0},
		} {
			if f.set {
				return specErr(i, f.name, fmt.Sprintf("not applicable to kind %q", p.Kind))
			}
		}
	}

	if p.Kind == PhaseAdaptive {
		if p.Strategy == "" {
			return specErr(i, "Strategy", "required for adaptive phases")
		}
		if !validStrategies[p.Strategy] {
			return specErr(i, "Strategy", fmt.Sprintf("unknown strategy %q", p.Strategy))
		}
		if p.Probes < 0 || p.Probes > MaxPerFlow {
			return specErr(i, "Probes", fmt.Sprintf("out of range [0, %d]", MaxPerFlow))
		}
		if p.Probes == 0 {
			p.Probes = 1
		}
	} else if p.Strategy != "" || p.Probes != 0 {
		return specErr(i, "Strategy", fmt.Sprintf("not applicable to kind %q", p.Kind))
	}

	if p.Kind == PhaseInvoke {
		if len(p.Functions) == 0 {
			p.Functions = []string{"DP", "CDP", "SP", "CSP"}
		}
		for _, f := range p.Functions {
			if !validFunctions[strings.ToUpper(f)] {
				return specErr(i, "Functions", fmt.Sprintf("unknown function %q", f))
			}
		}
		if p.Duration == 0 {
			p.Duration = Duration(24 * time.Hour)
		}
	} else if len(p.Functions) != 0 || p.Duration != 0 {
		return specErr(i, "Functions", fmt.Sprintf("not applicable to kind %q", p.Kind))
	}

	if p.Kind == PhaseDeploy {
		if p.Count < 0 || p.Count > MaxFlows {
			return specErr(i, "Count", fmt.Sprintf("out of range [0, %d]", MaxFlows))
		}
		if p.Count == 0 {
			p.Count = 1
		}
		if p.Order == "" {
			p.Order = "size"
		}
		if !validOrders[p.Order] {
			return specErr(i, "Order", fmt.Sprintf("unknown order %q", p.Order))
		}
	} else if p.Count != 0 || p.Order != "" {
		return specErr(i, "Count", fmt.Sprintf("not applicable to kind %q", p.Kind))
	}

	if p.Kind == PhaseQuiet {
		if p.Wait == 0 {
			return specErr(i, "Wait", "required for quiet phases")
		}
	} else if p.Wait != 0 {
		return specErr(i, "Wait", fmt.Sprintf("not applicable to kind %q", p.Kind))
	}
	return nil
}

// Marshal writes the spec as indented JSON, the canonical on-disk
// form of the examples/scenario library.
func (s *Spec) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// --- builder ---------------------------------------------------------------

// Builder assembles a Spec in Go. Each method appends one phase;
// Build validates (and normalizes) the result. The zero-valued fields
// of the Phase argument take the same defaults as JSON specs.
type Builder struct {
	spec Spec
}

// New starts a builder for a named campaign.
func New(name string, seed int64) *Builder {
	return &Builder{spec: Spec{Version: Version, Name: name, Seed: seed}}
}

// Victim pins the attacked AS (default: the last-deployed DAS).
func (b *Builder) Victim(asn topology.ASN) *Builder {
	b.spec.Victim = asn
	return b
}

// RecoverThreshold sets the time-to-mitigation recovery drop rate.
func (b *Builder) RecoverThreshold(r float64) *Builder {
	b.spec.RecoverThreshold = r
	return b
}

// Phase appends a fully-specified phase.
func (b *Builder) Phase(p Phase) *Builder {
	b.spec.Phases = append(b.spec.Phases, p)
	return b
}

// Pulse appends a pulse-wave train: pulses bursts, each of
// flows×perFlow packets, separated by gap.
func (b *Builder) Pulse(name string, flows, perFlow, pulses int, gap time.Duration) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhasePulse,
		Flows: flows, PerFlow: perFlow, Pulses: pulses, Gap: Duration(gap)})
}

// Carpet appends a carpet-bombing train across the victim's prefixes.
func (b *Builder) Carpet(name string, flows, perFlow, pulses int, gap time.Duration) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseCarpet,
		Flows: flows, PerFlow: perFlow, Pulses: pulses, Gap: Duration(gap)})
}

// Adaptive appends an adaptive-attacker train with the given strategy.
func (b *Builder) Adaptive(name, strategy string, flows, perFlow, pulses int, gap time.Duration) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseAdaptive, Strategy: strategy,
		Flows: flows, PerFlow: perFlow, Pulses: pulses, Gap: Duration(gap)})
}

// Legit appends a benign-traffic phase from the deployed peers.
func (b *Builder) Legit(name string, perFlow int) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseLegit, PerFlow: perFlow})
}

// Invoke appends a defense invocation by the victim (functions empty =
// all four).
func (b *Builder) Invoke(name string, functions ...string) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseInvoke, Functions: functions})
}

// Deploy appends an adoption step of count ASes in the given order
// ("size" or "random").
func (b *Builder) Deploy(name string, count int, order string) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseDeploy, Count: count, Order: order})
}

// Quiet appends a clock advance.
func (b *Builder) Quiet(name string, wait time.Duration) *Builder {
	return b.Phase(Phase{Name: name, Kind: PhaseQuiet, Wait: Duration(wait)})
}

// Build validates and returns the spec.
func (b *Builder) Build() (*Spec, error) {
	s := b.spec
	s.Phases = append([]Phase(nil), b.spec.Phases...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
