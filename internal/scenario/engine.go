package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"discs/internal/attack"
	"discs/internal/core"
	"discs/internal/eval"
	"discs/internal/flowexport"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/scenario/pulse"
	"discs/internal/topology"
)

// Obs metric names the engine publishes (under the unified registry,
// so they ride the existing export/differential machinery).
const (
	MetricSent      = "scenario.sent"
	MetricDelivered = "scenario.delivered"
	MetricDropped   = "scenario.dropped"
	MetricPhases    = "scenario.phases"

	GaugeTTMDetectNS  = "scenario.ttm.detect_ns"
	GaugeTTMRecoverNS = "scenario.ttm.recover_ns"
	GaugeTTMTotalNS   = "scenario.ttm.total_ns"

	// EvPhase is the trace event emitted at every phase boundary.
	EvPhase = "scenario.phase"
)

// Options configures an engine run.
type Options struct {
	// Spec is the validated campaign (required). Run re-validates, so
	// hand-built specs cannot smuggle out-of-range fields past the
	// JSON path.
	Spec *Spec
	// Sys is the deployed system to drive (required).
	Sys *core.System
	// SeedOffset shifts the spec's RNG stream without editing the spec
	// — the -sweep hook: cell k runs with SeedOffset k.
	SeedOffset int64
}

// Engine drives a core.System through a Spec. One engine is one run;
// build a fresh engine to run again.
type Engine struct {
	spec   *Spec
	sys    *core.System
	rng    *rand.Rand
	topo   *topology.Topology
	samp   *attack.Sampler
	acc    *eval.Accumulator
	victim topology.ASN

	// mitigation bookkeeping
	firstAttackAt time.Duration
	invokedAt     time.Duration
	recoveredAt   time.Duration
	sawAttack     bool
	sawInvoke     bool
	recovered     bool

	dataset []flowexport.LabeledRecord
}

// PhaseResult is the recorded outcome of one phase.
type PhaseResult struct {
	Index int       `json:"index"`
	Name  string    `json:"name"`
	Kind  PhaseKind `json:"kind"`
	// Start and End are simulated-clock offsets.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`

	// Traffic tallies (traffic phases).
	Sent               int     `json:"sent,omitempty"`
	Delivered          int     `json:"delivered,omitempty"`
	Dropped            int     `json:"dropped,omitempty"`
	DropRate           float64 `json:"drop_rate,omitempty"`
	AmplifiedDelivered float64 `json:"amplified_delivered,omitempty"`
	// FalsePositives counts dropped benign packets (legit phases).
	FalsePositives int `json:"false_positives,omitempty"`

	// Adaptive attacker (adaptive phases).
	Rotations    int `json:"rotations,omitempty"`     // innocent re-draws (rotate)
	ProbesSent   int `json:"probes_sent,omitempty"`   // probe packets (probe)
	LiveAgents   int `json:"live_agents,omitempty"`   // agents with a surviving path after the last probe round
	IdleAgents   int `json:"idle_agents,omitempty"`   // agents benched by probing
	InvokedPeers int `json:"invoked_peers,omitempty"` // peers that accepted the invocation
	NewDeployed  int `json:"new_deployed,omitempty"`  // ASes added by this deploy phase

	// §VI incentive values at the deployment reached by this phase
	// (deploy phases re-run the paper's closed forms per adoption step).
	Deployed      int     `json:"deployed,omitempty"`
	DeployedRatio float64 `json:"deployed_ratio,omitempty"`
	IncDP         float64 `json:"inc_dp,omitempty"`
	IncCDP        float64 `json:"inc_cdp,omitempty"`
	IncBoth       float64 `json:"inc_both,omitempty"`
	Effectiveness float64 `json:"effectiveness,omitempty"`
}

// Mitigation is the first-class time-to-mitigation record: the
// simulated instants of the first attack packet, the victim's defense
// invocation, and the first post-invocation pulse whose drop rate
// reached the spec's recovery threshold — plus the derived delays.
type Mitigation struct {
	FirstAttackAt time.Duration `json:"first_attack_ns"`
	InvokedAt     time.Duration `json:"invoked_ns"`
	RecoveredAt   time.Duration `json:"recovered_ns"`
	// DetectDelay is invocation − first attack packet; RecoveryDelay is
	// recovery − invocation; Total is their sum.
	DetectDelay   time.Duration `json:"detect_delay_ns"`
	RecoveryDelay time.Duration `json:"recovery_delay_ns"`
	Total         time.Duration `json:"total_ns"`
	Invoked       bool          `json:"invoked"`
	Recovered     bool          `json:"recovered"`
}

// Result is a full engine run.
type Result struct {
	Scenario string        `json:"scenario"`
	Seed     int64         `json:"seed"`
	Victim   topology.ASN  `json:"victim"`
	Phases   []PhaseResult `json:"phases"`
	// TTM is present once the run contained attack traffic.
	TTM *Mitigation `json:"ttm,omitempty"`
	// Dataset holds the ground-truth-labeled flow records of the run.
	Dataset []flowexport.LabeledRecord `json:"-"`
}

// NewEngine validates the options and binds an engine to a system.
func NewEngine(o Options) (*Engine, error) {
	if o.Spec == nil {
		return nil, specErr(-1, "Spec", "required")
	}
	if o.Sys == nil {
		return nil, specErr(-1, "Sys", "required")
	}
	if err := o.Spec.Validate(); err != nil {
		return nil, err
	}
	topo := o.Sys.Net.Topo
	deployed := o.Sys.Deployed()
	victim := o.Spec.Victim
	if victim == 0 {
		if len(deployed) == 0 {
			return nil, specErr(-1, "Victim", "no DAS deployed and no explicit victim")
		}
		victim = deployed[len(deployed)-1]
	}
	if topo.AS(victim) == nil {
		return nil, specErr(-1, "Victim", fmt.Sprintf("AS%d not in the topology", victim))
	}
	for _, ph := range o.Spec.Phases {
		if ph.Kind == PhaseInvoke && o.Sys.Controllers[victim] == nil {
			return nil, specErr(-1, "Victim", fmt.Sprintf("AS%d has not deployed DISCS but the spec invokes defenses", victim))
		}
	}
	// The accumulator replays the existing deployment so the §VI closed
	// forms pick up exactly where the world is, not from zero.
	acc := eval.NewAccumulator(eval.FromTopology(topo))
	for _, asn := range deployed {
		if err := acc.Deploy(asn); err != nil {
			return nil, fmt.Errorf("scenario: replaying deployment: %w", err)
		}
	}
	return &Engine{
		spec:   o.Spec,
		sys:    o.Sys,
		rng:    rand.New(rand.NewSource(o.Spec.Seed + o.SeedOffset)),
		topo:   topo,
		samp:   attack.NewSampler(topo),
		acc:    acc,
		victim: victim,
	}, nil
}

// now returns the simulated clock as an offset.
func (e *Engine) now() time.Duration { return e.sys.Net.Sim.Now() }

// Run executes every phase in order and returns the recorded outcomes.
func (e *Engine) Run() (*Result, error) {
	reg := e.sys.Registry()
	res := &Result{Scenario: e.spec.Name, Seed: e.spec.Seed, Victim: e.victim}
	for i := range e.spec.Phases {
		ph := &e.spec.Phases[i]
		pr := PhaseResult{Index: i, Name: ph.Name, Kind: ph.Kind, Start: e.now()}
		reg.Tracer().Emit(obs.Event{
			Kind: EvPhase, AS: uint32(e.victim), Serial: uint64(i),
			Detail: string(ph.Kind) + ":" + ph.Name,
		})
		var err error
		switch ph.Kind {
		case PhasePulse, PhaseCarpet, PhaseAdaptive:
			err = e.runAttackPhase(ph, &pr)
		case PhaseLegit:
			err = e.runLegit(ph, &pr)
		case PhaseInvoke:
			err = e.runInvoke(ph, &pr)
		case PhaseDeploy:
			err = e.runDeploy(ph, &pr)
		case PhaseQuiet:
			e.sys.Net.Sim.Run(e.now() + ph.Wait.D())
		default:
			err = specErr(i, "Kind", fmt.Sprintf("unknown kind %q", ph.Kind))
		}
		if err != nil {
			return nil, fmt.Errorf("scenario %q phase %d (%s): %w", e.spec.Name, i, ph.Name, err)
		}
		pr.End = e.now()
		if pr.Sent > 0 {
			pr.DropRate = float64(pr.Dropped) / float64(pr.Sent)
		}
		// Every phase reports the deployment state it ended with, so a
		// sweep's incentive curve is just the deploy-phase rows.
		pr.Deployed = e.acc.NumDeployed()
		pr.DeployedRatio = e.acc.DeployedRatio()
		res.Phases = append(res.Phases, pr)

		scope := fmt.Sprintf("scenario.phase%03d.", i)
		reg.Counter(scope + "sent").Add(uint64(pr.Sent))
		reg.Counter(scope + "delivered").Add(uint64(pr.Delivered))
		reg.Counter(scope + "dropped").Add(uint64(pr.Dropped))
		reg.Counter(MetricSent).Add(uint64(pr.Sent))
		reg.Counter(MetricDelivered).Add(uint64(pr.Delivered))
		reg.Counter(MetricDropped).Add(uint64(pr.Dropped))
		reg.Counter(MetricPhases).Inc()
	}
	if e.sawAttack {
		ttm := &Mitigation{
			FirstAttackAt: e.firstAttackAt,
			InvokedAt:     e.invokedAt,
			RecoveredAt:   e.recoveredAt,
			Invoked:       e.sawInvoke,
			Recovered:     e.recovered,
		}
		if e.sawInvoke {
			ttm.DetectDelay = e.invokedAt - e.firstAttackAt
			reg.Gauge(GaugeTTMDetectNS).Set(int64(ttm.DetectDelay))
		}
		if e.recovered {
			ttm.RecoveryDelay = e.recoveredAt - e.invokedAt
			ttm.Total = e.recoveredAt - e.firstAttackAt
			reg.Gauge(GaugeTTMRecoverNS).Set(int64(ttm.RecoveryDelay))
			reg.Gauge(GaugeTTMTotalNS).Set(int64(ttm.Total))
		}
		res.TTM = ttm
	}
	res.Dataset = e.dataset
	return res, nil
}

// --- traffic phases --------------------------------------------------------

// flowState is one live attack flow inside a phase.
type flowState struct {
	flow  attack.Flow
	label flowexport.Label
	// carpet: the victim prefix this flow currently targets (invalid
	// Prefix for plain pulse flows).
	target netip.Prefix
	// probe strategy: benched agents sit out the pulse.
	benched bool
}

// runAttackPhase executes pulse, carpet and adaptive trains. The three
// share the same pulse loop; carpet re-aims each pulse across the
// victim's prefixes and adaptive lets the strategy mutate the flow set
// between pulses.
func (e *Engine) runAttackPhase(ph *Phase, pr *PhaseResult) error {
	flows, err := e.drawFlows(ph)
	if err != nil {
		return err
	}
	prefixes := e.victimPrefixes()
	if ph.Kind == PhaseCarpet && len(prefixes) == 0 {
		return fmt.Errorf("victim AS%d has no IPv4 prefixes to carpet", e.victim)
	}

	intraGap := time.Duration(0)
	if ph.SubWaves > 1 {
		intraGap = ph.Width.D() / time.Duration(ph.SubWaves)
	}
	agg := newDatasetAgg(e, ph, pr)
	for p := 0; p < ph.Pulses; p++ {
		if ph.Kind == PhaseCarpet {
			// Walk the prefix set: pulse p saturates prefix p mod n, so
			// the campaign sweeps the victim's whole advertised space.
			t := prefixes[p%len(prefixes)]
			for i := range flows {
				flows[i].target = t
			}
		}
		if ph.Kind == PhaseAdaptive {
			if err := e.adapt(ph, pr, flows, agg); err != nil {
				return err
			}
		}
		pulseSent, pulseDropped := 0, 0
		pkts, err := e.materialize(ph, flows)
		if err != nil {
			return err
		}
		bursts := pulse.Train(func(i int) topology.ASN { return flows[i].flow.Agent },
			pkts, 1, ph.SubWaves, intraGap, 0)
		e.markAttack()
		pulse.Run(e.sys, bursts, func(pk pulse.Packet, d core.DeliveryResult) {
			f := flows[pk.Flow]
			pr.Sent++
			pulseSent++
			if d.Delivered {
				pr.Delivered++
				if f.flow.Kind == attack.SDDoS {
					pr.AmplifiedDelivered += attack.AmplificationFactor
				} else {
					pr.AmplifiedDelivered++
				}
			} else {
				pr.Dropped++
				pulseDropped++
			}
			agg.observe(pk.Flow, f, pk.Pkt, d)
		})
		// A pulse that met the recovery threshold after invocation marks
		// the victim mitigated — the third leg of time-to-mitigation.
		if e.sawInvoke && !e.recovered && pulseSent > 0 &&
			float64(pulseDropped)/float64(pulseSent) >= e.spec.RecoverThreshold {
			e.recovered = true
			e.recoveredAt = e.now()
		}
		if ph.Gap > 0 && p < ph.Pulses-1 {
			e.sys.Net.Sim.Run(e.now() + ph.Gap.D())
		}
	}
	agg.flush()
	return nil
}

// drawFlows samples the phase's flow set. Mixed vectors alternate
// d-DDoS and s-DDoS per flow index.
func (e *Engine) drawFlows(ph *Phase) ([]flowState, error) {
	flows := make([]flowState, ph.Flows)
	for i := range flows {
		kind := attack.DDDoS
		label := flowexport.LabelDDoS
		if ph.Vector == VectorSDDoS || (ph.Vector == VectorMixed && i%2 == 1) {
			kind = attack.SDDoS
			label = flowexport.LabelSDDoS
		}
		f := e.samp.DrawFlowForVictim(kind, e.victim, e.rng)
		if f.Agent == 0 {
			return nil, fmt.Errorf("flow sampling failed (empty topology?)")
		}
		flows[i] = flowState{flow: f, label: label}
	}
	return flows, nil
}

// victimPrefixes returns the victim's IPv4 prefixes.
func (e *Engine) victimPrefixes() []netip.Prefix {
	var out []netip.Prefix
	if a := e.topo.AS(e.victim); a != nil {
		for _, p := range a.Prefixes {
			if p.Addr().Is4() {
				out = append(out, p)
			}
		}
	}
	return out
}

// materialize draws this pulse's packets for every flow: PerFlow
// packets per flow, with benched flows contributing none. Carpet
// flows aim at their current target prefix instead of a random victim
// address.
func (e *Engine) materialize(ph *Phase, flows []flowState) ([][]*packet.IPv4, error) {
	pkts := make([][]*packet.IPv4, len(flows))
	for i, f := range flows {
		if f.benched {
			continue
		}
		if f.target.IsValid() {
			ps, err := e.packetsAt(f.flow, f.target, ph.PerFlow)
			if err != nil {
				return nil, err
			}
			pkts[i] = ps
			continue
		}
		ps, err := f.flow.Packets(e.topo, ph.PerFlow, e.rng)
		if err != nil {
			return nil, err
		}
		pkts[i] = ps
	}
	return pkts, nil
}

// packetsAt materializes d-DDoS packets aimed inside one target prefix
// (the carpet-bombing shape): spoofed innocent sources, destinations
// uniform in the prefix.
func (e *Engine) packetsAt(f attack.Flow, target netip.Prefix, n int) ([]*packet.IPv4, error) {
	out := make([]*packet.IPv4, 0, n)
	for k := 0; k < n; k++ {
		src, ok := attack.RandomAddr(e.topo, f.Innocent, e.rng)
		if !ok {
			return nil, fmt.Errorf("AS%d has no IPv4 space", f.Innocent)
		}
		dst := addrIn(target, e.rng)
		payload := make([]byte, 24)
		e.rng.Read(payload)
		out = append(out, &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: src, Dst: dst, Payload: payload,
		})
	}
	return out, nil
}

// addrIn picks a uniformly random address inside an IPv4 prefix.
func addrIn(p netip.Prefix, rng *rand.Rand) netip.Addr {
	size := uint64(1) << (32 - p.Bits())
	x := rng.Uint64() % size
	base := p.Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(x)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// markAttack stamps the first-attack-packet instant.
func (e *Engine) markAttack() {
	if !e.sawAttack {
		e.sawAttack = true
		e.firstAttackAt = e.now()
	}
}

// --- legit -----------------------------------------------------------------

// runLegit sends genuine traffic from every deployed AS (minus the
// victim) toward the victim; drops are false positives. Flows > 0
// caps how many peers send.
func (e *Engine) runLegit(ph *Phase, pr *PhaseResult) error {
	agents := make([]topology.ASN, 0)
	for _, asn := range e.sys.Deployed() {
		if asn != e.victim {
			agents = append(agents, asn)
		}
	}
	if ph.Flows > 0 && ph.Flows < len(agents) {
		agents = agents[:ph.Flows]
	}
	agg := newDatasetAgg(e, ph, pr)
	for i, asn := range agents {
		f := attack.Flow{Kind: attack.DDDoS, Agent: asn, Innocent: asn, Victim: e.victim}
		pkts, err := f.Packets(e.topo, ph.PerFlow, e.rng)
		if err != nil {
			// An AS without IPv4 space simply cannot send; skip it.
			continue
		}
		for _, p := range pkts {
			d := e.sys.SendV4(asn, p)
			pr.Sent++
			if d.Delivered {
				pr.Delivered++
			} else {
				pr.Dropped++
				pr.FalsePositives++
			}
			agg.observe(i, flowState{flow: f, label: flowexport.LabelBenign}, p, d)
		}
	}
	agg.flush()
	return nil
}

// --- invoke ----------------------------------------------------------------

// runInvoke has the victim invoke the phase's functions at its peers,
// settles the control plane, and advances past the §IV-E grace window
// so strict verification is active for the next phase.
func (e *Engine) runInvoke(ph *Phase, pr *PhaseResult) error {
	vc := e.sys.Controllers[e.victim]
	if vc == nil {
		return fmt.Errorf("victim AS%d has no controller", e.victim)
	}
	var invs []core.Invocation
	for _, name := range ph.Functions {
		fn, err := core.ParseFunction(strings.ToUpper(name))
		if err != nil {
			return err
		}
		invs = append(invs, core.Invocation{
			Prefixes: vc.OwnPrefixes(), Function: fn, Duration: ph.Duration.D(),
		})
	}
	if !e.sawInvoke {
		e.sawInvoke = true
		e.invokedAt = e.now()
	}
	n, err := vc.Invoke(invs...)
	if err != nil {
		return err
	}
	pr.InvokedPeers = n
	if err := e.sys.Settle(); err != nil {
		return err
	}
	e.sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	return e.sys.Settle()
}

// --- deploy ----------------------------------------------------------------

// runDeploy grows the DAS set by Count ASes — "size" picks the largest
// undeployed ASes (the paper's largest-first adoption), "random"
// samples adoption uniformly — then records the §VI closed forms at
// the new deployment ratio.
func (e *Engine) runDeploy(ph *Phase, pr *PhaseResult) error {
	deployed := make(map[topology.ASN]bool)
	for _, asn := range e.sys.Deployed() {
		deployed[asn] = true
	}
	var candidates []topology.ASN
	for _, asn := range e.topo.BySizeDesc() {
		if !deployed[asn] {
			candidates = append(candidates, asn)
		}
	}
	if ph.Order == "random" {
		e.rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
	}
	n := ph.Count
	if n > len(candidates) {
		n = len(candidates)
	}
	for k := 0; k < n; k++ {
		asn := candidates[k]
		// Deploy seeds continue the ledger numbering, so a scenario
		// adoption step is indistinguishable from a pre-scenario Deploy.
		if _, err := e.sys.Deploy(asn, int64(len(e.sys.Deployed())+1)); err != nil {
			return err
		}
		if err := e.acc.Deploy(asn); err != nil {
			return err
		}
		pr.NewDeployed++
	}
	if err := e.sys.Settle(); err != nil {
		return err
	}
	// Let peering, key negotiation and the grace window complete so the
	// new DASes actually filter before the next pulse.
	e.sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	if err := e.sys.Settle(); err != nil {
		return err
	}
	pr.IncDP = e.acc.IncDP()
	pr.IncCDP = e.acc.IncCDP()
	pr.IncBoth = e.acc.IncBoth()
	pr.Effectiveness = e.acc.Effectiveness()
	return nil
}

// --- dataset aggregation ---------------------------------------------------

// datasetAgg folds every observed packet into one labeled flow record
// per (flow, target, phase) — the export granularity of the dataset.
// The target dimension matters for carpet phases, where one flow is
// re-aimed at a different victim prefix every pulse and each aim is a
// distinct record.
type datasetAgg struct {
	e    *Engine
	ph   *Phase
	pr   *PhaseResult
	recs map[aggKey]*flowexport.LabeledRecord
	keys []aggKey
}

type aggKey struct {
	flow   int
	target netip.Prefix
}

func newDatasetAgg(e *Engine, ph *Phase, pr *PhaseResult) *datasetAgg {
	return &datasetAgg{e: e, ph: ph, pr: pr, recs: make(map[aggKey]*flowexport.LabeledRecord)}
}

// observe records one packet's ground truth under its flow index.
func (a *datasetAgg) observe(flowIdx int, f flowState, p *packet.IPv4, d core.DeliveryResult) {
	key := aggKey{flow: flowIdx, target: f.target}
	r, ok := a.recs[key]
	now := flowexport.SimTime(a.e.now())
	if !ok {
		srcAS := f.flow.Innocent
		if f.flow.Kind == attack.SDDoS {
			srcAS = f.flow.Victim
		}
		if f.label == flowexport.LabelBenign {
			srcAS = f.flow.Agent
		}
		r = &flowexport.LabeledRecord{
			Record: flowexport.Record{
				Key: flowexport.Key{
					Src: p.Src, Dst: p.Dst, Proto: p.Protocol, SrcAS: srcAS,
				},
				First: now,
			},
			Scenario: a.e.spec.Name,
			Phase:    a.ph.Name,
			PhaseIdx: uint16(a.pr.Index),
			Label:    f.label,
		}
		a.recs[key] = r
		a.keys = append(a.keys, key)
	}
	r.Packets++
	r.Bytes += uint64(p.TotalLen())
	r.Last = now
	if d.Delivered {
		r.Delivered++
	} else {
		r.Dropped++
	}
}

// flush appends the phase's records to the run dataset in flow order.
func (a *datasetAgg) flush() {
	for _, k := range a.keys {
		a.e.dataset = append(a.e.dataset, *a.recs[k])
	}
}
