package scenario

import (
	"errors"
	"testing"
	"time"
)

func TestDurationJSONForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{`"250ms"`, 250 * time.Millisecond},
		{`"1h30m"`, 90 * time.Minute},
		{`100`, 100 * time.Millisecond},
		{`0.5`, 500 * time.Microsecond},
	} {
		var d Duration
		if err := d.UnmarshalJSON([]byte(tc.in)); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if d.D() != tc.want {
			t.Errorf("%s: got %v want %v", tc.in, d.D(), tc.want)
		}
	}
	for _, bad := range []string{`"-5s"`, `-1`, `"not a duration"`, `1e999`, `"9000000h"`, `{}`} {
		var d Duration
		if err := d.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"version":1,"name":"x","phases":[{"kind":"pulse","pulse_width":"1s"}]}`)); err == nil {
		t.Fatal("unknown phase field accepted")
	}
	if _, err := Parse([]byte(`{"version":1,"name":"x","phases":[{"kind":"quiet","wait":"1s"}]} {"more":1}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestValidateTypedErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  Spec
		phase int
		field string
	}{
		{"version", Spec{Version: 2, Name: "x", Phases: []Phase{{Kind: PhaseQuiet, Wait: 1}}}, -1, "Version"},
		{"name", Spec{Version: 1, Phases: []Phase{{Kind: PhaseQuiet, Wait: 1}}}, -1, "Name"},
		{"no phases", Spec{Version: 1, Name: "x"}, -1, "Phases"},
		{"bad kind", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: "tsunami"}}}, 0, "Kind"},
		{"bad vector", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, Vector: "zz"}}}, 0, "Vector"},
		{"carpet sddos", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseCarpet, Vector: VectorSDDoS}}}, 0, "Vector"},
		{"neg flows", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, Flows: -1}}}, 0, "Flows"},
		{"huge pulses", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, Pulses: MaxPulses + 1}}}, 0, "Pulses"},
		{"subwaves no width", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, SubWaves: 4}}}, 0, "Width"},
		{"neg width", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, Width: -1}}}, 0, "Width"},
		{"strategy on pulse", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhasePulse, Strategy: StrategyRotate}}}, 0, "Strategy"},
		{"adaptive no strategy", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseAdaptive}}}, 0, "Strategy"},
		{"bad strategy", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseAdaptive, Strategy: "pray"}}}, 0, "Strategy"},
		{"bad function", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseInvoke, Functions: []string{"RST"}}}}, 0, "Functions"},
		{"functions on quiet", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseQuiet, Wait: 1, Functions: []string{"DP"}}}}, 0, "Functions"},
		{"bad order", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseDeploy, Order: "alphabetical"}}}, 0, "Order"},
		{"quiet no wait", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseQuiet}}}, 0, "Wait"},
		{"flows on invoke", Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseInvoke, Flows: 3}}}, 0, "Flows"},
		{"threshold", Spec{Version: 1, Name: "x", RecoverThreshold: 1.5, Phases: []Phase{{Kind: PhaseQuiet, Wait: 1}}}, -1, "RecoverThreshold"},
	} {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: not a *SpecError: %v", tc.name, err)
			continue
		}
		if se.Phase != tc.phase {
			t.Errorf("%s: phase %d, want %d (%v)", tc.name, se.Phase, tc.phase, err)
		}
		if se.Field != tc.field {
			t.Errorf("%s: field %s, want %s", tc.name, se.Field, tc.field)
		}
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	s := Spec{Version: 1, Name: "d", Phases: []Phase{
		{Kind: PhasePulse},
		{Kind: PhaseInvoke},
		{Kind: PhaseDeploy},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := s.Phases[0]
	if p.Flows != 40 || p.PerFlow != 8 || p.Pulses != 1 || p.SubWaves != 1 || p.Vector != VectorDDoS {
		t.Errorf("pulse defaults: %+v", p)
	}
	if p.Name != "pulse-0" {
		t.Errorf("default name: %q", p.Name)
	}
	if inv := s.Phases[1]; len(inv.Functions) != 4 || inv.Duration.D() != 24*time.Hour {
		t.Errorf("invoke defaults: %+v", inv)
	}
	if d := s.Phases[2]; d.Count != 1 || d.Order != "size" {
		t.Errorf("deploy defaults: %+v", d)
	}
	if s.RecoverThreshold != 0.5 {
		t.Errorf("threshold default: %v", s.RecoverThreshold)
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	spec, err := New("campaign", 7).
		Victim(42).
		RecoverThreshold(0.8).
		Pulse("pre", 20, 10, 4, 100*time.Millisecond).
		Invoke("defend", "DP", "CDP").
		Adaptive("rotate", StrategyRotate, 20, 10, 3, 50*time.Millisecond).
		Carpet("carpet", 10, 5, 6, 10*time.Millisecond).
		Deploy("adopt", 5, "random").
		Legit("sanity", 10).
		Quiet("cooldown", time.Second).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Phases) != 7 {
		t.Fatalf("phases: %d", len(spec.Phases))
	}
	raw, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, raw)
	}
	if back.Name != "campaign" || back.Seed != 7 || back.Victim != 42 || back.RecoverThreshold != 0.8 {
		t.Errorf("header lost: %+v", back)
	}
	if back.Phases[2].Strategy != StrategyRotate || back.Phases[4].Order != "random" {
		t.Errorf("phase fields lost")
	}
}

func TestParseDocumentTooLarge(t *testing.T) {
	b := make([]byte, maxSpecBytes+1)
	var se *SpecError
	if _, err := Parse(b); !errors.As(err, &se) {
		t.Fatalf("oversized doc: %v", err)
	}
}
