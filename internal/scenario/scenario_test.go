package scenario

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/eval"
	"discs/internal/flowexport"
	"discs/internal/topology"
)

// world: provider AS1 with customers AS2..AS7, one /16 each; the
// victim AS3 advertises a second /16 so carpet phases have a prefix
// set to walk. deploy lists the DASes in ledger order.
func world(t *testing.T, deploy ...topology.ASN) (*core.System, *topology.Topology) {
	t.Helper()
	tp := topology.New()
	for i := topology.ASN(1); i <= 7; i++ {
		if _, err := tp.AddAS(i); err != nil {
			t.Fatal(err)
		}
		if err := tp.AddPrefix(i, netip.MustParsePrefix("10."+string('0'+byte(i))+".0.0/16")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddPrefix(3, netip.MustParsePrefix("10.30.0.0/16")); err != nil {
		t.Fatal(err)
	}
	for c := topology.ASN(2); c <= 7; c++ {
		if err := tp.Link(c, 1, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range deploy {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	return sys, tp
}

func run(t *testing.T, sys *core.System, spec *Spec) *Result {
	t.Helper()
	eng, err := NewEngine(Options{Spec: spec, Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPulseInvokeRecovery(t *testing.T) {
	sys, _ := world(t, 2, 3, 4, 5)
	spec, err := New("ttm", 1).Victim(3).
		Pulse("pre", 30, 6, 2, 10*time.Millisecond).
		Invoke("defend").
		Pulse("post", 30, 6, 2, 10*time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)

	if len(res.Phases) != 3 {
		t.Fatalf("phases: %d", len(res.Phases))
	}
	pre, inv, post := res.Phases[0], res.Phases[1], res.Phases[2]
	if pre.Sent != 30*6*2 {
		t.Errorf("pre sent = %d", pre.Sent)
	}
	if pre.Dropped != 0 {
		t.Errorf("pre-invocation drops: %d (nothing should filter yet)", pre.Dropped)
	}
	if inv.InvokedPeers == 0 {
		t.Errorf("invoke reached no peers")
	}
	if post.DropRate <= pre.DropRate || post.DropRate < spec.RecoverThreshold {
		t.Errorf("post drop rate %v (pre %v, threshold %v)", post.DropRate, pre.DropRate, spec.RecoverThreshold)
	}

	ttm := res.TTM
	if ttm == nil || !ttm.Invoked || !ttm.Recovered {
		t.Fatalf("ttm = %+v", ttm)
	}
	if ttm.FirstAttackAt != pre.Start {
		t.Errorf("first attack %v, pre start %v", ttm.FirstAttackAt, pre.Start)
	}
	if ttm.DetectDelay <= 0 || ttm.RecoveryDelay <= 0 {
		t.Errorf("delays: detect %v recover %v", ttm.DetectDelay, ttm.RecoveryDelay)
	}
	if ttm.Total != ttm.DetectDelay+ttm.RecoveryDelay {
		t.Errorf("total %v != %v + %v", ttm.Total, ttm.DetectDelay, ttm.RecoveryDelay)
	}

	if len(res.Dataset) == 0 {
		t.Fatal("empty dataset")
	}
	total := uint64(0)
	for _, r := range res.Dataset {
		if r.Scenario != "ttm" || r.Label != flowexport.LabelDDoS {
			t.Fatalf("record provenance: %+v", r)
		}
		if r.Phase != "pre" && r.Phase != "post" {
			t.Fatalf("record phase %q", r.Phase)
		}
		if r.Delivered+r.Dropped != r.Packets {
			t.Fatalf("record fates %d+%d != packets %d", r.Delivered, r.Dropped, r.Packets)
		}
		total += r.Packets
	}
	if got := uint64(pre.Sent + post.Sent); total != got {
		t.Errorf("dataset packets %d, sent %d", total, got)
	}

	reg := sys.Registry()
	if v := reg.Counter(MetricSent).Value(); v != uint64(pre.Sent+post.Sent) {
		t.Errorf("obs sent = %d", v)
	}
	if v := reg.Counter(MetricPhases).Value(); v != 3 {
		t.Errorf("obs phases = %d", v)
	}
	if reg.Gauge(GaugeTTMTotalNS).Value() != int64(ttm.Total) {
		t.Errorf("obs ttm gauge mismatch")
	}
}

func TestCarpetWalksVictimPrefixes(t *testing.T) {
	sys, tp := world(t, 2, 3)
	spec, err := New("carpet", 2).Victim(3).
		Carpet("sweep", 10, 4, 4, time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)
	if res.Phases[0].Sent != 10*4*4 {
		t.Errorf("sent = %d", res.Phases[0].Sent)
	}
	// Every pulse re-aims at prefix p mod n; with 4 pulses over the
	// victim's 2 prefixes the dataset must show hits in both.
	hit := map[netip.Prefix]bool{}
	for _, r := range res.Dataset {
		for _, p := range tp.AS(3).Prefixes {
			if p.Contains(r.Dst) {
				hit[p] = true
			}
		}
	}
	if len(hit) != 2 {
		t.Errorf("carpet hit %d of 2 victim prefixes: %v", len(hit), hit)
	}
}

func TestMixedVectorLabelsAndAmplification(t *testing.T) {
	sys, _ := world(t, 2, 3)
	spec, err := New("mixed", 3).Victim(3).
		Phase(Phase{Name: "mix", Kind: PhasePulse, Vector: VectorMixed, Flows: 10, PerFlow: 4}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)
	labels := map[flowexport.Label]int{}
	for _, r := range res.Dataset {
		labels[r.Label]++
	}
	if labels[flowexport.LabelDDoS] != 5 || labels[flowexport.LabelSDDoS] != 5 {
		t.Errorf("mixed labels: %v", labels)
	}
	// Delivered s-DDoS requests count amplified, so with any delivered
	// reflection traffic the weighted tally exceeds the plain one.
	ph := res.Phases[0]
	if ph.Delivered > 0 && ph.AmplifiedDelivered <= float64(ph.Delivered) {
		t.Errorf("amplified %v <= delivered %d", ph.AmplifiedDelivered, ph.Delivered)
	}
}

func TestAdaptiveRotate(t *testing.T) {
	sys, _ := world(t, 2, 3, 4, 5)
	spec, err := New("rotate", 4).Victim(3).
		Invoke("defend").
		Adaptive("rotate", StrategyRotate, 12, 4, 3, time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)
	ph := res.Phases[1]
	if ph.Rotations == 0 {
		t.Error("rotate strategy never rotated a source")
	}
	if ph.Sent != 12*4*3 {
		t.Errorf("sent = %d", ph.Sent)
	}
}

func TestAdaptiveProbe(t *testing.T) {
	// Deploy only AS2 alongside the victim: flows whose path crosses
	// the lone peer DAS (agent 2, or innocent 2 from a legacy agent)
	// die, everything else survives — probing must find both.
	sys, _ := world(t, 2, 3)
	spec, err := New("probe", 5).Victim(3).
		Invoke("defend").
		Adaptive("probe", StrategyProbe, 12, 4, 2, time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)
	ph := res.Phases[1]
	if ph.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if ph.LiveAgents == 0 || ph.IdleAgents == 0 {
		t.Errorf("agents live=%d idle=%d: with DASes deployed some paths must die and some survive",
			ph.LiveAgents, ph.IdleAgents)
	}
	probes := 0
	for _, r := range res.Dataset {
		if r.Label == flowexport.LabelProbe {
			probes += int(r.Packets)
		}
	}
	if probes != ph.ProbesSent {
		t.Errorf("dataset probes %d, phase %d", probes, ph.ProbesSent)
	}
}

func TestLegitNoFalsePositives(t *testing.T) {
	sys, _ := world(t, 2, 3, 4, 5)
	spec, err := New("legit", 6).Victim(3).
		Invoke("defend").
		Legit("sanity", 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)
	ph := res.Phases[1]
	// Three deployed peers (2, 4, 5) send genuine stamped traffic.
	if ph.Sent != 3*5 {
		t.Errorf("sent = %d", ph.Sent)
	}
	if ph.FalsePositives != 0 || ph.Delivered != ph.Sent {
		t.Errorf("legit traffic filtered: %+v", ph)
	}
	for _, r := range res.Dataset {
		if r.Label != flowexport.LabelBenign {
			t.Fatalf("legit record labeled %v", r.Label)
		}
	}
}

func TestDeployIncentivesMatchEval(t *testing.T) {
	sys, tp := world(t, 2, 3)
	spec, err := New("adopt", 7).Victim(3).
		Deploy("wave1", 2, "size").
		Deploy("wave2", 1, "size").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, spec)

	// Replay the same adoption order directly through the §VI closed
	// forms; the engine's per-phase values must match exactly.
	acc := eval.NewAccumulator(eval.FromTopology(tp))
	for _, asn := range []topology.ASN{2, 3} {
		if err := acc.Deploy(asn); err != nil {
			t.Fatal(err)
		}
	}
	deployed := map[topology.ASN]bool{2: true, 3: true}
	var order []topology.ASN
	for _, asn := range tp.BySizeDesc() {
		if !deployed[asn] {
			order = append(order, asn)
		}
	}
	next := 0
	for i, want := range []int{2, 1} {
		for k := 0; k < want; k++ {
			if err := acc.Deploy(order[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		ph := res.Phases[i]
		if ph.NewDeployed != want {
			t.Errorf("phase %d: deployed %d, want %d", i, ph.NewDeployed, want)
		}
		if ph.Deployed != acc.NumDeployed() || ph.DeployedRatio != acc.DeployedRatio() {
			t.Errorf("phase %d: deployment state %d/%v, want %d/%v",
				i, ph.Deployed, ph.DeployedRatio, acc.NumDeployed(), acc.DeployedRatio())
		}
		if ph.IncDP != acc.IncDP() || ph.IncCDP != acc.IncCDP() ||
			ph.IncBoth != acc.IncBoth() || ph.Effectiveness != acc.Effectiveness() {
			t.Errorf("phase %d: incentives diverge from eval", i)
		}
	}
	if got := len(sys.Deployed()); got != 5 {
		t.Errorf("system deployment: %d", got)
	}
}

func TestRunDeterministicAndSeedSensitive(t *testing.T) {
	build := func() *core.System {
		sys, _ := world(t, 2, 3, 4, 5)
		return sys
	}
	spec, err := New("det", 11).Victim(3).
		Pulse("pre", 20, 4, 2, time.Millisecond).
		Invoke("defend").
		Adaptive("adapt", StrategyRotate, 10, 4, 2, time.Millisecond).
		Deploy("grow", 1, "random").
		Legit("legit", 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(off int64) *Result {
		eng, err := NewEngine(Options{Spec: spec, Sys: build(), SeedOffset: off})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runWith(0), runWith(0)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same spec, same seed: results diverge\n%+v\n%+v", a, b)
	}
	c := runWith(1)
	if reflect.DeepEqual(a.Dataset, c.Dataset) {
		t.Errorf("seed offset did not change the traffic")
	}
}

func TestNewEngineErrors(t *testing.T) {
	sys, _ := world(t, 2, 3)
	ok := &Spec{Version: 1, Name: "x", Phases: []Phase{{Kind: PhaseQuiet, Wait: Duration(time.Second)}}}
	if _, err := NewEngine(Options{Sys: sys}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := NewEngine(Options{Spec: ok}); err == nil {
		t.Error("nil sys accepted")
	}
	bad := *ok
	bad.Victim = 99
	if _, err := NewEngine(Options{Spec: &bad, Sys: sys}); err == nil {
		t.Error("unknown victim accepted")
	}
	// A legacy victim cannot invoke defenses.
	inv := &Spec{Version: 1, Name: "x", Victim: 6, Phases: []Phase{{Kind: PhaseInvoke}}}
	if _, err := NewEngine(Options{Spec: inv, Sys: sys}); err == nil {
		t.Error("invoke with legacy victim accepted")
	}
	// Victim 0 resolves to the last-deployed DAS.
	eng, err := NewEngine(Options{Spec: ok, Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	if eng.victim != 3 {
		t.Errorf("default victim %d, want 3", eng.victim)
	}
	// Quiet phases advance the simulated clock.
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Phases[0].End - res.Phases[0].Start; d != time.Second {
		t.Errorf("quiet advanced %v", d)
	}
	// Run on an attack-free spec records no TTM.
	if res.TTM != nil {
		t.Errorf("ttm on quiet-only run: %+v", res.TTM)
	}
}

// An attack flow whose spoofed source sits inside the victim AS should
// still be deterministic end to end — smoke the sampler's pinning.
func TestDrawFlowsPinVictim(t *testing.T) {
	sys, _ := world(t, 2, 3)
	eng, err := NewEngine(Options{Spec: &Spec{
		Version: 1, Name: "x", Victim: 3,
		Phases: []Phase{{Kind: PhasePulse}},
	}, Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := eng.drawFlows(&eng.spec.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.flow.Victim != 3 || f.flow.Agent == 3 || f.flow.Innocent == 3 {
			t.Fatalf("flow not pinned to victim: %+v", f.flow)
		}
		if f.flow.Kind != attack.DDDoS {
			t.Fatalf("default vector drew %v", f.flow.Kind)
		}
	}
}
