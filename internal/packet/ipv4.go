package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used in this repository.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// IPv4 flag bits (in the 3-bit Flags field).
const (
	FlagDF = 0b010 // don't fragment
	FlagMF = 0b001 // more fragments
)

// MsgLenV4 is the length of the DISCS MAC input for IPv4 (§V-E).
const MsgLenV4 = 21

// IPv4 is a parsed IPv4 packet. Header length and total length are
// derived during Marshal; Checksum records the checksum observed at
// parse time and is recomputed on Marshal.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits, in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16 // as parsed; recomputed by Marshal
	Src, Dst netip.Addr
	Options  []byte // raw options, length must be a multiple of 4
	Payload  []byte
}

var (
	errShort     = errors.New("packet: truncated packet")
	errVersion   = errors.New("packet: wrong IP version")
	errHeaderLen = errors.New("packet: bad header length")
)

// ParseIPv4 parses a raw IPv4 packet. The returned struct aliases b's
// payload bytes; callers that mutate the packet should treat the
// original buffer as consumed.
func ParseIPv4(b []byte) (*IPv4, error) {
	if len(b) < 20 {
		return nil, errShort
	}
	if b[0]>>4 != 4 {
		return nil, errVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || ihl > len(b) {
		return nil, errHeaderLen
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("packet: total length %d outside [%d,%d]", total, ihl, len(b))
	}
	var src, dst [4]byte
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	p := &IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:12]),
		Src:      netip.AddrFrom4(src),
		Dst:      netip.AddrFrom4(dst),
	}
	if ihl > 20 {
		p.Options = append([]byte(nil), b[20:ihl]...)
	}
	p.Payload = b[ihl:total]
	return p, nil
}

// HeaderLen returns the header length in bytes including options.
func (p *IPv4) HeaderLen() int {
	opt := len(p.Options)
	opt = (opt + 3) &^ 3 // options are padded to 4-byte multiples
	return 20 + opt
}

// TotalLen returns the on-wire total length.
func (p *IPv4) TotalLen() int { return p.HeaderLen() + len(p.Payload) }

// Marshal serializes the packet with a freshly computed checksum and
// updates p.Checksum to the computed value.
func (p *IPv4) Marshal() ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, errors.New("packet: IPv4 addresses required")
	}
	hl := p.HeaderLen()
	if hl > 60 {
		return nil, errHeaderLen
	}
	total := hl + len(p.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: total length %d exceeds 65535", total)
	}
	b := make([]byte, total)
	b[0] = 4<<4 | uint8(hl/4)
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(p.Flags&0x7)<<13|p.FragOff&0x1fff)
	b[8] = p.TTL
	b[9] = p.Protocol
	src := p.Src.As4()
	dst := p.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	copy(b[20:], p.Options)
	cs := Checksum(b[:hl])
	binary.BigEndian.PutUint16(b[10:12], cs)
	p.Checksum = cs
	copy(b[hl:], p.Payload)
	return b, nil
}

// Msg extracts the 21-byte DISCS MAC input (§V-E): Version|IHL, Total
// Length, Flags (padded with five zero bits), Protocol, source and
// destination addresses, then the first 8 bytes of the payload
// (zero-padded). IPID and Fragment Offset are deliberately excluded
// because stamping rewrites them.
func (p *IPv4) Msg() [MsgLenV4]byte {
	var m [MsgLenV4]byte
	m[0] = 4<<4 | uint8(p.HeaderLen()/4)
	binary.BigEndian.PutUint16(m[1:3], uint16(p.TotalLen()))
	m[3] = p.Flags & 0x7 << 5
	m[4] = p.Protocol
	src := p.Src.As4()
	dst := p.Dst.As4()
	copy(m[5:9], src[:])
	copy(m[9:13], dst[:])
	copy(m[13:21], p.Payload) // copies min(8, len) bytes; rest stays zero
	return m
}

// Mark reads the 29-bit DISCS mark from the IPID and Fragment Offset
// fields: the 16 IPID bits are the high bits, the 13 fragment-offset
// bits the low bits.
func (p *IPv4) Mark() uint32 {
	return uint32(p.ID)<<13 | uint32(p.FragOff&0x1fff)
}

// SetMark writes a 29-bit DISCS mark into IPID and Fragment Offset.
// Values above 2^29-1 are masked.
func (p *IPv4) SetMark(mark uint32) {
	mark &= 1<<29 - 1
	p.ID = uint16(mark >> 13)
	p.FragOff = uint16(mark & 0x1fff)
}

// ScrubMark replaces the mark fields with caller-supplied bits (the
// verification end replaces them with random bits after a successful
// verification, §V-E).
func (p *IPv4) ScrubMark(random uint32) { p.SetMark(random) }

// Clone deep-copies the packet.
func (p *IPv4) Clone() *IPv4 {
	q := *p
	q.Options = append([]byte(nil), p.Options...)
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// ICMPv4TimeExceeded builds the ICMP time-exceeded (type 11, code 0)
// message a router sends when a packet's TTL expires: the original IP
// header plus the first 8 payload bytes are embedded. src is the
// reporting router, orig the expired packet.
func ICMPv4TimeExceeded(src netip.Addr, orig *IPv4) (*IPv4, error) {
	ob, err := orig.Marshal()
	if err != nil {
		return nil, err
	}
	embed := orig.HeaderLen() + 8
	if embed > len(ob) {
		embed = len(ob)
	}
	body := make([]byte, 8+embed)
	body[0] = 11 // type: time exceeded
	// code 0: TTL exceeded in transit; bytes 4..8 unused.
	copy(body[8:], ob[:embed])
	binary.BigEndian.PutUint16(body[2:4], Checksum(body))
	return &IPv4{
		TTL:      64,
		Protocol: ProtoICMP,
		Src:      src,
		Dst:      orig.Src,
		Payload:  body,
	}, nil
}

// ICMPv4Embedded extracts the packet embedded in an ICMP error message
// (time exceeded, destination unreachable, ...). It returns nil, false
// when p is not an ICMP error carrying an embedded header. The embedded
// packet usually holds only the first 8 payload bytes of the original.
func ICMPv4Embedded(p *IPv4) (*IPv4, bool) {
	if p.Protocol != ProtoICMP || len(p.Payload) < 8+20 {
		return nil, false
	}
	t := p.Payload[0]
	// ICMP error types that embed the original datagram.
	if t != 3 && t != 4 && t != 5 && t != 11 && t != 12 {
		return nil, false
	}
	inner := p.Payload[8:]
	// The embedded packet's TotalLength describes the *original* packet,
	// which is longer than the embedded snippet; parse leniently.
	emb, err := parseIPv4Lenient(inner)
	if err != nil {
		return nil, false
	}
	return emb, true
}

// parseIPv4Lenient parses a possibly-truncated IPv4 packet as embedded
// in ICMP errors, ignoring the TotalLength bound.
func parseIPv4Lenient(b []byte) (*IPv4, error) {
	if len(b) < 20 {
		return nil, errShort
	}
	if b[0]>>4 != 4 {
		return nil, errVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || ihl > len(b) {
		return nil, errHeaderLen
	}
	var src, dst [4]byte
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	p := &IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:12]),
		Src:      netip.AddrFrom4(src),
		Dst:      netip.AddrFrom4(dst),
	}
	if ihl > 20 {
		p.Options = append([]byte(nil), b[20:ihl]...)
	}
	p.Payload = b[ihl:]
	return p, nil
}

// ReplaceICMPv4Embedded writes emb's mark fields (IPID and Fragment
// Offset) back into the ICMP error message in p, patching the embedded
// bytes in place. Every other embedded field — in particular the
// original Total Length, which describes the full offending datagram
// rather than the truncated snippet carried by the error — is preserved
// exactly, so the receiving host can still match the error to the
// datagram it sent. The embedded header checksum and the outer ICMP
// checksum are recomputed. Used by the DISCS source-AS border router to
// scrub marks from returning TTL-exceeded messages (§VI-E2).
func ReplaceICMPv4Embedded(p *IPv4, emb *IPv4) error {
	if p.Protocol != ProtoICMP || len(p.Payload) < 8+20 {
		return errors.New("packet: not an ICMP error message")
	}
	inner := p.Payload[8:]
	if inner[0]>>4 != 4 {
		return errVersion
	}
	ihl := int(inner[0]&0x0f) * 4
	if ihl < 20 || ihl > len(inner) {
		return errHeaderLen
	}
	binary.BigEndian.PutUint16(inner[4:6], emb.ID)
	flags := inner[6] & 0xe0 // the flag bits carry no mark; keep them
	binary.BigEndian.PutUint16(inner[6:8], emb.FragOff&0x1fff)
	inner[6] |= flags
	// Recompute the embedded header checksum over the available header.
	inner[10], inner[11] = 0, 0
	binary.BigEndian.PutUint16(inner[10:12], Checksum(inner[:ihl]))
	// Recompute the outer ICMP checksum.
	p.Payload[2], p.Payload[3] = 0, 0
	binary.BigEndian.PutUint16(p.Payload[2:4], Checksum(p.Payload))
	return nil
}
