package packet

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements IPv4 fragmentation and reassembly. DISCS
// knowingly accepts a small collateral (§V-E): stamping rewrites the
// Identification and Fragment Offset fields, so fragments of
// victim-related packets can no longer be reassembled — affecting the
// ~0.06% of Internet traffic that is fragmented, and only for the
// prefixes under active protection. The tests demonstrate exactly this
// trade-off.

// FragmentIPv4 splits p into fragments that fit mtu bytes on the wire.
// It fails when DF is set (callers then emit ICMP "fragmentation
// needed") or when the MTU cannot carry any payload.
func FragmentIPv4(p *IPv4, mtu int) ([]*IPv4, error) {
	hl := p.HeaderLen()
	if p.TotalLen() <= mtu {
		return []*IPv4{p.Clone()}, nil
	}
	if p.Flags&FlagDF != 0 {
		return nil, errors.New("packet: DF set on packet larger than MTU")
	}
	chunk := (mtu - hl) &^ 7 // fragment payloads are 8-byte multiples
	if chunk <= 0 {
		return nil, fmt.Errorf("packet: MTU %d cannot carry payload (header %d)", mtu, hl)
	}
	if p.FragOff != 0 || p.Flags&FlagMF != 0 {
		return nil, errors.New("packet: refusing to re-fragment a fragment")
	}
	var out []*IPv4
	for off := 0; off < len(p.Payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(p.Payload) {
			end = len(p.Payload)
			last = true
		}
		f := p.Clone()
		f.Payload = append([]byte(nil), p.Payload[off:end]...)
		f.FragOff = uint16(off / 8)
		if !last {
			f.Flags |= FlagMF
		} else {
			f.Flags &^= FlagMF
		}
		out = append(out, f)
	}
	return out, nil
}

// ReassembleIPv4 reconstructs the original packet from its fragments
// (any order). All fragments must agree on (src, dst, protocol, ID),
// cover a contiguous range starting at zero, and include a final
// fragment without MF.
func ReassembleIPv4(frags []*IPv4) (*IPv4, error) {
	if len(frags) == 0 {
		return nil, errors.New("packet: no fragments")
	}
	first := frags[0]
	for _, f := range frags[1:] {
		if f.Src != first.Src || f.Dst != first.Dst ||
			f.Protocol != first.Protocol || f.ID != first.ID {
			return nil, errors.New("packet: fragments from different datagrams")
		}
	}
	sorted := append([]*IPv4(nil), frags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].FragOff < sorted[j].FragOff })

	var payload []byte
	expect := uint16(0)
	for i, f := range sorted {
		if f.FragOff != expect {
			return nil, fmt.Errorf("packet: gap at fragment offset %d (want %d)", f.FragOff, expect)
		}
		isLast := i == len(sorted)-1
		if isLast {
			if f.Flags&FlagMF != 0 {
				return nil, errors.New("packet: final fragment missing (MF still set)")
			}
		} else {
			if f.Flags&FlagMF == 0 {
				return nil, errors.New("packet: non-final fragment without MF")
			}
			if len(f.Payload)%8 != 0 {
				return nil, errors.New("packet: non-final fragment payload not 8-byte aligned")
			}
		}
		payload = append(payload, f.Payload...)
		expect = f.FragOff + uint16(len(f.Payload)/8)
	}
	p := sorted[0].Clone()
	p.Payload = payload
	p.FragOff = 0
	p.Flags &^= FlagMF
	return p, nil
}
