package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func v6(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is6() {
		t.Fatalf("bad v6 addr %q: %v", s, err)
	}
	return a
}

func sampleV6(t testing.TB) *IPv6 {
	return &IPv6{
		TrafficClass: 0x20,
		FlowLabel:    0xabcde,
		HopLimit:     64,
		Proto:        ProtoUDP,
		Src:          v6(t, "2001:db8:1::10"),
		Dst:          v6(t, "2001:db8:2::20"),
		Payload:      []byte("ipv6 payload for discs"),
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	p := sampleV6(t)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 40+len(p.Payload) {
		t.Fatalf("marshal len = %d", len(b))
	}
	q, err := ParseIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.TrafficClass != p.TrafficClass || q.FlowLabel != p.FlowLabel ||
		q.HopLimit != p.HopLimit || q.Proto != p.Proto ||
		q.Src != p.Src || q.Dst != p.Dst || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v", q)
	}
}

func TestIPv6ParseErrors(t *testing.T) {
	if _, err := ParseIPv6(make([]byte, 20)); err == nil {
		t.Error("short should fail")
	}
	b := make([]byte, 40)
	b[0] = 4 << 4
	if _, err := ParseIPv6(b); err == nil {
		t.Error("wrong version should fail")
	}
	b[0] = 6 << 4
	b[4], b[5] = 0, 200 // payload length > buffer
	if _, err := ParseIPv6(b); err == nil {
		t.Error("bad payload length should fail")
	}
}

func TestIPv6MarshalRejectsV4(t *testing.T) {
	p := sampleV6(t)
	p.Src = netip.MustParseAddr("1.2.3.4")
	if _, err := p.Marshal(); err == nil {
		t.Error("v4 src should fail")
	}
}

func TestStampNewHeader(t *testing.T) {
	p := sampleV6(t)
	if err := p.StampV6(0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if len(p.Ext) != 1 || p.Ext[0].Kind != ExtDestOpts {
		t.Fatalf("ext chain = %+v", p.Ext)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Stamping adds exactly 8 bytes (§V-F: at most 8 bytes).
	if len(b) != 40+8+len(p.Payload) {
		t.Fatalf("stamped len = %d", len(b))
	}
	q, err := ParseIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	mac, ok := q.MarkV6()
	if !ok || mac != 0xdeadbeef {
		t.Fatalf("mark = %08x %v", mac, ok)
	}
	if q.Proto != ProtoUDP {
		t.Fatalf("upper proto = %d", q.Proto)
	}
}

func TestStampExistingDestOpts(t *testing.T) {
	p := sampleV6(t)
	// Pre-existing destination options header with one unrelated option
	// (type 0x3e, 2 bytes data) padded to 8 bytes.
	p.Ext = []ExtHeader{{Kind: ExtDestOpts, Body: padOptions([]byte{0x3e, 2, 0xaa, 0xbb})}}
	before, _ := p.Marshal()
	if err := p.StampV6(0x01020304); err != nil {
		t.Fatal(err)
	}
	if len(p.Ext) != 1 {
		t.Fatalf("should reuse header, got %d headers", len(p.Ext))
	}
	after, _ := p.Marshal()
	if len(after)-len(before) > 8 {
		t.Fatalf("stamp grew packet by %d bytes, max 8", len(after)-len(before))
	}
	q, _ := ParseIPv6(after)
	mac, ok := q.MarkV6()
	if !ok || mac != 0x01020304 {
		t.Fatalf("mark = %08x %v", mac, ok)
	}
	// The unrelated option must survive.
	var sawOther bool
	walkOptions(q.Ext[0].Body, func(typ uint8, data []byte, _ int) bool {
		if typ == 0x3e && bytes.Equal(data, []byte{0xaa, 0xbb}) {
			sawOther = true
		}
		return true
	})
	if !sawOther {
		t.Fatal("unrelated option lost")
	}
}

func TestStampAfterHopByHop(t *testing.T) {
	p := sampleV6(t)
	p.Ext = []ExtHeader{{Kind: ExtHopByHop, Body: padOptions(nil)}}
	if err := p.StampV6(1); err != nil {
		t.Fatal(err)
	}
	if p.Ext[0].Kind != ExtHopByHop || p.Ext[1].Kind != ExtDestOpts {
		t.Fatalf("chain order wrong: %+v", p.Ext)
	}
}

func TestStampBeforeRouting(t *testing.T) {
	p := sampleV6(t)
	// Routing header: body is 6 bytes (total 8): type, segs left, +4 reserved.
	p.Ext = []ExtHeader{{Kind: ExtRouting, Body: make([]byte, 6)}}
	if err := p.StampV6(7); err != nil {
		t.Fatal(err)
	}
	if p.Ext[0].Kind != ExtDestOpts || p.Ext[1].Kind != ExtRouting {
		t.Fatalf("DISCS header must precede routing: %+v", p.Ext)
	}
	b, _ := p.Marshal()
	q, _ := ParseIPv6(b)
	if mac, ok := q.MarkV6(); !ok || mac != 7 {
		t.Fatalf("mark = %d %v", mac, ok)
	}
}

func TestDestOptsAfterRoutingNotUsed(t *testing.T) {
	// A destination-options header after a routing header is the
	// "DestOpts(2)" position; DISCS must not place its mark there and
	// must not read marks from there.
	p := sampleV6(t)
	p.Ext = []ExtHeader{
		{Kind: ExtRouting, Body: make([]byte, 6)},
		{Kind: ExtDestOpts, Body: padOptions([]byte{OptionTypeDISCS, 4, 1, 2, 3, 4})},
	}
	if _, ok := p.MarkV6(); ok {
		t.Fatal("MarkV6 read from DestOpts after routing header")
	}
	if err := p.StampV6(9); err != nil {
		t.Fatal(err)
	}
	if p.Ext[0].Kind != ExtDestOpts {
		t.Fatal("stamp should insert a fresh header before routing")
	}
}

func TestDoubleStampRejected(t *testing.T) {
	p := sampleV6(t)
	if err := p.StampV6(1); err != nil {
		t.Fatal(err)
	}
	if err := p.StampV6(2); err == nil {
		t.Fatal("double stamp should fail")
	}
}

func TestUnstampRemovesWholeHeader(t *testing.T) {
	p := sampleV6(t)
	orig, _ := p.Marshal()
	p.StampV6(0xfeedface)
	if !p.UnstampV6() {
		t.Fatal("unstamp reported no-op")
	}
	b, _ := p.Marshal()
	if !bytes.Equal(b, orig) {
		t.Fatal("stamp+unstamp is not identity")
	}
	if p.UnstampV6() {
		t.Fatal("second unstamp should be no-op")
	}
}

func TestUnstampKeepsOtherOptions(t *testing.T) {
	p := sampleV6(t)
	p.Ext = []ExtHeader{{Kind: ExtDestOpts, Body: padOptions([]byte{0x3e, 2, 0xaa, 0xbb})}}
	orig, _ := p.Marshal()
	p.StampV6(42)
	if !p.UnstampV6() {
		t.Fatal("unstamp failed")
	}
	b, _ := p.Marshal()
	if !bytes.Equal(b, orig) {
		t.Fatalf("stamp+unstamp not identity with shared header:\n%x\n%x", b, orig)
	}
}

func TestMsgV6Layout(t *testing.T) {
	p := sampleV6(t)
	m := p.Msg()
	src := p.Src.As16()
	dst := p.Dst.As16()
	if !bytes.Equal(m[0:16], src[:]) || !bytes.Equal(m[16:32], dst[:]) {
		t.Fatal("msg addresses wrong")
	}
	if !bytes.Equal(m[32:40], p.Payload[:8]) {
		t.Fatal("msg payload wrong")
	}
}

func TestMsgV6StableUnderStamping(t *testing.T) {
	p := sampleV6(t)
	before := p.Msg()
	p.StampV6(123)
	if p.Msg() != before {
		t.Fatal("msg changed after stamping")
	}
	p.UnstampV6()
	if p.Msg() != before {
		t.Fatal("msg changed after unstamping")
	}
	// Hop limit is mutable: excluded.
	p.HopLimit--
	if p.Msg() != before {
		t.Fatal("msg depends on hop limit")
	}
}

func TestMsgV6ShortPayload(t *testing.T) {
	p := sampleV6(t)
	p.Payload = []byte{1, 2, 3}
	m := p.Msg()
	want := [8]byte{1, 2, 3}
	if !bytes.Equal(m[32:40], want[:]) {
		t.Fatalf("msg payload = %x", m[32:40])
	}
}

func TestStampOverhead(t *testing.T) {
	p := sampleV6(t)
	if got := p.StampOverheadV6(); got != 8 {
		t.Fatalf("fresh packet overhead = %d, want 8", got)
	}
	p.Ext = []ExtHeader{{Kind: ExtDestOpts, Body: padOptions([]byte{0x3e, 2, 0xaa, 0xbb})}}
	// Existing header is 8 bytes (4 option + 2 pad + 2 fixed); adding a
	// 6-byte option grows to 16 bytes: overhead 8.
	if got := p.StampOverheadV6(); got > 8 {
		t.Fatalf("overhead = %d, must be ≤ 8 (§V-F)", got)
	}
}

func TestICMPv6TimeExceededAndScrub(t *testing.T) {
	orig := sampleV6(t)
	orig.StampV6(0xcafebabe)
	router := v6(t, "2001:db8:ffff::1")
	icmp, err := NewICMPv6TimeExceeded(router, orig)
	if err != nil {
		t.Fatal(err)
	}
	if icmp.Proto != ProtoICMPv6 || icmp.Dst != orig.Src {
		t.Fatalf("icmp header wrong: %+v", icmp)
	}
	b, _ := icmp.Marshal()
	q, _ := ParseIPv6(b)
	emb, ok := ICMPv6Embedded(q)
	if !ok {
		t.Fatal("embedded not found")
	}
	if mac, ok := emb.MarkV6(); !ok || mac != 0xcafebabe {
		t.Fatalf("embedded mark = %08x %v", mac, ok)
	}
	// ICMPv6 checksum with pseudo-header must validate.
	srcb := q.Src.As16()
	dstb := q.Dst.As16()
	if checksumWithPseudo(srcb[:], dstb[:], ProtoICMPv6, q.Payload) != 0 {
		t.Fatal("ICMPv6 checksum invalid")
	}

	if !ScrubICMPv6EmbeddedMark(q, 0x11111111) {
		t.Fatal("scrub failed")
	}
	emb2, ok := ICMPv6Embedded(q)
	if !ok {
		t.Fatal("embedded lost after scrub")
	}
	if mac, _ := emb2.MarkV6(); mac == 0xcafebabe {
		t.Fatal("mark not scrubbed")
	}
	if checksumWithPseudo(srcb[:], dstb[:], ProtoICMPv6, q.Payload) != 0 {
		t.Fatal("ICMPv6 checksum invalid after scrub")
	}
}

func TestScrubICMPv6NoMarkNoOp(t *testing.T) {
	orig := sampleV6(t)
	icmp, _ := NewICMPv6TimeExceeded(v6(t, "2001:db8:ffff::1"), orig)
	b, _ := icmp.Marshal()
	q, _ := ParseIPv6(b)
	if ScrubICMPv6EmbeddedMark(q, 0) {
		t.Fatal("scrub of unmarked packet should be no-op")
	}
}

func TestICMPv6PacketTooBig(t *testing.T) {
	orig := sampleV6(t)
	icmp, err := NewICMPv6PacketTooBig(v6(t, "2001:db8:ffff::1"), orig, 1492)
	if err != nil {
		t.Fatal(err)
	}
	if icmp.Payload[0] != ICMPv6PacketTooBigType {
		t.Fatalf("type = %d", icmp.Payload[0])
	}
	mtu := uint32(icmp.Payload[4])<<24 | uint32(icmp.Payload[5])<<16 |
		uint32(icmp.Payload[6])<<8 | uint32(icmp.Payload[7])
	if mtu != 1492 {
		t.Fatalf("mtu = %d", mtu)
	}
}

func TestICMPv6ErrorTruncatedTo1280(t *testing.T) {
	orig := sampleV6(t)
	orig.Payload = make([]byte, 4000)
	icmp, err := NewICMPv6TimeExceeded(v6(t, "2001:db8:ffff::1"), orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := icmp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 1280 {
		t.Fatalf("ICMPv6 error %d bytes, must fit in 1280", len(b))
	}
}

func TestReplaceICMPv6Embedded(t *testing.T) {
	orig := sampleV6(t)
	orig.StampV6(0x22222222)
	icmp, _ := NewICMPv6TimeExceeded(v6(t, "2001:db8:ffff::1"), orig)
	emb, _ := ICMPv6Embedded(icmp)
	// Same-length replacement succeeds.
	if err := ReplaceICMPv6Embedded(icmp, emb); err != nil {
		t.Fatal(err)
	}
	// Different length rejected.
	emb.Payload = emb.Payload[:len(emb.Payload)-1]
	if err := ReplaceICMPv6Embedded(icmp, emb); err == nil {
		t.Fatal("length change should be rejected")
	}
}

func TestFragmentHeaderParsed(t *testing.T) {
	p := sampleV6(t)
	p.Ext = []ExtHeader{{Kind: ExtFragment, Body: make([]byte, 6)}}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ext) != 1 || q.Ext[0].Kind != ExtFragment {
		t.Fatalf("chain = %+v", q.Ext)
	}
}

func TestPadOptions(t *testing.T) {
	for n := 0; n < 24; n++ {
		body := padOptions(make([]byte, n))
		if (len(body)+2)%8 != 0 {
			t.Fatalf("padOptions(%d) -> %d bytes, +2 not multiple of 8", n, len(body))
		}
	}
}

// Property: stamp then unstamp is the identity on the wire for packets
// without extension headers.
func TestPropertyStampUnstampIdentity(t *testing.T) {
	f := func(payload []byte, mac uint32, hop uint8) bool {
		if len(payload) > 500 {
			payload = payload[:500]
		}
		p := &IPv6{
			HopLimit: hop, Proto: ProtoUDP,
			Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"),
			Payload: payload,
		}
		orig, err := p.Marshal()
		if err != nil {
			return false
		}
		if p.StampV6(mac) != nil {
			return false
		}
		got, ok := p.MarkV6()
		if !ok || got != mac {
			return false
		}
		if !p.UnstampV6() {
			return false
		}
		after, err := p.Marshal()
		return err == nil && bytes.Equal(orig, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStampV6(b *testing.B) {
	p := sampleV6(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		q.StampV6(uint32(i))
	}
}
