package packet

import "encoding/binary"

// This file implements the in-place MAC scrubbing of ICMP error
// messages described in §VI-E2: an attacker inside the source DAS can
// learn a valid mark by sending a packet whose TTL expires right after
// crossing the DAS border and reading the mark back from the embedded
// header in the returned "TTL exceeded" message. The source DAS border
// router therefore inspects inbound time-exceeded messages and erases
// the embedded marks. Scrubbing rewrites bytes in place so that every
// other field of the (possibly truncated) embedded packet is preserved
// exactly.

// ScrubICMPv4EmbeddedMark overwrites the DISCS mark fields (IPID and
// Fragment Offset) of the packet embedded in an ICMPv4 error message
// with the given replacement bits, preserving the embedded Flags bits,
// and fixes both the embedded header checksum and the ICMP checksum.
// It reports whether a scrub happened.
func ScrubICMPv4EmbeddedMark(p *IPv4, random uint32) bool {
	if p.Protocol != ProtoICMP || len(p.Payload) < 8+20 {
		return false
	}
	t := p.Payload[0]
	if t != 3 && t != 4 && t != 5 && t != 11 && t != 12 {
		return false
	}
	emb := p.Payload[8:]
	if emb[0]>>4 != 4 {
		return false
	}
	ihl := int(emb[0]&0x0f) * 4
	if ihl < 20 || ihl > len(emb) {
		return false
	}
	random &= 1<<29 - 1
	binary.BigEndian.PutUint16(emb[4:6], uint16(random>>13))
	flags := emb[6] & 0xe0
	binary.BigEndian.PutUint16(emb[6:8], uint16(random&0x1fff))
	emb[6] |= flags
	// Recompute the embedded header checksum over the available header.
	emb[10], emb[11] = 0, 0
	binary.BigEndian.PutUint16(emb[10:12], Checksum(emb[:ihl]))
	// Recompute the outer ICMP checksum.
	p.Payload[2], p.Payload[3] = 0, 0
	binary.BigEndian.PutUint16(p.Payload[2:4], Checksum(p.Payload))
	return true
}

// ScrubICMPv6EmbeddedMark overwrites the DISCS option data of the
// packet embedded in an ICMPv6 error message with the given bits and
// fixes the ICMPv6 checksum. It reports whether a DISCS option was
// found and scrubbed.
func ScrubICMPv6EmbeddedMark(p *IPv6, random uint32) bool {
	if p.Proto != ProtoICMPv6 || len(p.Payload) < 8+40 {
		return false
	}
	if t := p.Payload[0]; t < 1 || t > 4 {
		return false
	}
	emb := p.Payload[8:]
	if emb[0]>>4 != 6 {
		return false
	}
	// Walk the embedded extension chain looking for a destination
	// options header before any routing/fragment header.
	nh := emb[6]
	off := 40
	for isKnownExt(nh) {
		if off+8 > len(emb) {
			return false
		}
		var hlen int
		if nh == ExtFragment {
			hlen = 8
		} else {
			hlen = (int(emb[off+1]) + 1) * 8
		}
		if off+hlen > len(emb) {
			return false
		}
		switch nh {
		case ExtRouting, ExtFragment:
			return false
		case ExtDestOpts:
			if scrubOptionArea(emb[off+2:off+hlen], random) {
				p.Payload[2], p.Payload[3] = 0, 0
				srcb := p.Src.As16()
				dstb := p.Dst.As16()
				binary.BigEndian.PutUint16(p.Payload[2:4],
					checksumWithPseudo(srcb[:], dstb[:], ProtoICMPv6, p.Payload))
				return true
			}
			return false
		}
		nh = emb[off]
		off += hlen
	}
	return false
}

// scrubOptionArea overwrites the data of a DISCS option within a TLV
// area in place.
func scrubOptionArea(body []byte, random uint32) bool {
	for i := 0; i < len(body); {
		t := body[i]
		if t == 0 {
			i++
			continue
		}
		if i+1 >= len(body) {
			return false
		}
		l := int(body[i+1])
		if i+2+l > len(body) {
			return false
		}
		if t == OptionTypeDISCS && l == DISCSOptionLen {
			binary.BigEndian.PutUint32(body[i+2:i+6], random)
			return true
		}
		i += 2 + l
	}
	return false
}
