// Package packet implements raw IPv4 and IPv6 packet formats with the
// backward-compatible DISCS mark embedding from §V-E and §V-F of the
// paper:
//
//   - IPv4: a 29-bit truncated AES-CMAC replaces the Identification and
//     Fragment Offset fields (the Flags bits are preserved and covered
//     by the MAC input). The header checksum is updated accordingly.
//   - IPv6: a 4-byte MAC is carried in a DISCS option inside a
//     destination options header placed before any routing header.
//
// The package also provides the DISCS "msg" extraction (the immutable
// fields covered by the MAC) and the ICMP/ICMPv6 messages DISCS
// interacts with: TTL/hop-limit exceeded (for replay-MAC scrubbing,
// §VI-E2) and packet-too-big (for the IPv6 MTU reduction, §V-F).
package packet

// Checksum computes the ones-complement Internet checksum (RFC 1071)
// over b. An odd final byte is padded with a zero as if it were the
// high byte of a 16-bit word.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum accumulates src/dst/len/proto for upper-layer
// checksums (ICMPv6 requires the IPv6 pseudo-header).
func pseudoHeaderSum(src, dst []byte, length uint32, proto uint8) uint32 {
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
	}
	add(src)
	add(dst)
	sum += length >> 16
	sum += length & 0xffff
	sum += uint32(proto)
	return sum
}

// checksumWithPseudo computes an upper-layer checksum including an
// IPv6 pseudo-header.
func checksumWithPseudo(src, dst []byte, proto uint8, payload []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, uint32(len(payload)), proto)
	n := len(payload)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(payload[i])<<8 | uint32(payload[i+1])
	}
	if n%2 == 1 {
		sum += uint32(payload[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
