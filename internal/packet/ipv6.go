package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IPv6 extension header "next header" values.
const (
	ExtHopByHop = 0
	ExtRouting  = 43
	ExtFragment = 44
	ExtDestOpts = 60
)

// OptionTypeDISCS is the destination-option type carrying the DISCS
// MAC (§V-F). The first three bits are 001: the two high-order bits 00
// tell legacy nodes to skip an unrecognized option and keep processing,
// and the third bit 1 marks the option data as mutable en route, so it
// is excluded from any IPsec AH computation. The remaining five bits
// would be assigned by IANA; we use 0b00110.
const OptionTypeDISCS = 0b0010_0110 // 0x26

// DISCSOptionLen is the option data length: a 4-byte MAC.
const DISCSOptionLen = 4

// MsgLenV6 is the DISCS MAC input length for IPv6 (§V-F): source and
// destination addresses plus the first 8 bytes of the payload. Payload
// Length and Next Header are excluded because stamping modifies them.
const MsgLenV6 = 40

// ExtHeader is one IPv6 extension header in the chain. Body is the
// header content after the NextHeader and HdrExtLen octets; for options
// headers it is the raw option TLV area and its length must make the
// full header a multiple of 8 bytes (len(Body) ≡ 6 mod 8).
type ExtHeader struct {
	Kind uint8 // ExtHopByHop, ExtDestOpts, ExtRouting, ExtFragment
	Body []byte
}

// IPv6 is a parsed IPv6 packet with its extension-header chain.
// NextHeader values inside the chain are recomputed during Marshal;
// Proto is the upper-layer protocol after all extension headers.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	HopLimit     uint8
	Proto        uint8 // upper-layer protocol (e.g. ProtoUDP)
	Src, Dst     netip.Addr
	Ext          []ExtHeader
	Payload      []byte
}

// isKnownExt reports whether the next-header value is an extension
// header this package parses structurally.
func isKnownExt(nh uint8) bool {
	switch nh {
	case ExtHopByHop, ExtRouting, ExtFragment, ExtDestOpts:
		return true
	}
	return false
}

// ParseIPv6 parses a raw IPv6 packet including its extension chain.
func ParseIPv6(b []byte) (*IPv6, error) {
	if len(b) < 40 {
		return nil, errShort
	}
	if b[0]>>4 != 6 {
		return nil, errVersion
	}
	plen := int(binary.BigEndian.Uint16(b[4:6]))
	if 40+plen > len(b) {
		return nil, fmt.Errorf("packet: payload length %d exceeds buffer", plen)
	}
	var src, dst [16]byte
	copy(src[:], b[8:24])
	copy(dst[:], b[24:40])
	p := &IPv6{
		TrafficClass: b[0]<<4 | b[1]>>4,
		FlowLabel:    uint32(b[1]&0x0f)<<16 | uint32(b[2])<<8 | uint32(b[3]),
		HopLimit:     b[7],
		Src:          netip.AddrFrom16(src),
		Dst:          netip.AddrFrom16(dst),
	}
	nh := b[6]
	rest := b[40 : 40+plen]
	for isKnownExt(nh) {
		if len(rest) < 8 {
			return nil, errShort
		}
		var hlen int
		if nh == ExtFragment {
			hlen = 8
		} else {
			// Widen before adding: a HdrExtLen of 255 must not wrap to 0
			// in byte arithmetic.
			hlen = (int(rest[1]) + 1) * 8
		}
		if hlen > len(rest) {
			return nil, errHeaderLen
		}
		p.Ext = append(p.Ext, ExtHeader{Kind: nh, Body: append([]byte(nil), rest[2:hlen]...)})
		nh = rest[0]
		rest = rest[hlen:]
	}
	p.Proto = nh
	p.Payload = rest
	return p, nil
}

// Marshal serializes the packet, recomputing Payload Length and the
// NextHeader chain.
func (p *IPv6) Marshal() ([]byte, error) {
	// Reject plain IPv4 addresses (a construction mistake); v4-mapped
	// IPv6 addresses are legal header bytes and round-trip via As16.
	if !p.Src.Is6() || !p.Dst.Is6() {
		return nil, errors.New("packet: IPv6 addresses required")
	}
	extLen := 0
	for _, e := range p.Ext {
		if (len(e.Body)+2)%8 != 0 {
			return nil, fmt.Errorf("packet: extension header body %d+2 not multiple of 8", len(e.Body))
		}
		extLen += len(e.Body) + 2
	}
	plen := extLen + len(p.Payload)
	if plen > 0xffff {
		return nil, fmt.Errorf("packet: payload length %d exceeds 65535", plen)
	}
	b := make([]byte, 40+plen)
	b[0] = 6<<4 | p.TrafficClass>>4
	b[1] = p.TrafficClass<<4 | uint8(p.FlowLabel>>16&0x0f)
	b[2] = byte(p.FlowLabel >> 8)
	b[3] = byte(p.FlowLabel)
	binary.BigEndian.PutUint16(b[4:6], uint16(plen))
	if len(p.Ext) > 0 {
		b[6] = p.Ext[0].Kind
	} else {
		b[6] = p.Proto
	}
	b[7] = p.HopLimit
	src := p.Src.As16()
	dst := p.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	off := 40
	for i, e := range p.Ext {
		next := p.Proto
		if i+1 < len(p.Ext) {
			next = p.Ext[i+1].Kind
		}
		b[off] = next
		b[off+1] = uint8((len(e.Body)+2)/8 - 1)
		copy(b[off+2:], e.Body)
		off += len(e.Body) + 2
	}
	copy(b[off:], p.Payload)
	return b, nil
}

// WireLen returns the serialized packet size in bytes without
// marshaling.
func (p *IPv6) WireLen() int {
	n := 40 + len(p.Payload)
	for _, e := range p.Ext {
		n += len(e.Body) + 2
	}
	return n
}

// Msg extracts the 40-byte DISCS MAC input (§V-F): source address,
// destination address, and the first 8 bytes of the upper-layer
// payload, zero-padded.
func (p *IPv6) Msg() [MsgLenV6]byte {
	var m [MsgLenV6]byte
	src := p.Src.As16()
	dst := p.Dst.As16()
	copy(m[0:16], src[:])
	copy(m[16:32], dst[:])
	copy(m[32:40], p.Payload)
	return m
}

// Clone deep-copies the packet.
func (p *IPv6) Clone() *IPv6 {
	q := *p
	q.Ext = make([]ExtHeader, len(p.Ext))
	for i, e := range p.Ext {
		q.Ext[i] = ExtHeader{Kind: e.Kind, Body: append([]byte(nil), e.Body...)}
	}
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// option walks a destination-options TLV area. cb receives the option
// type, its data, and the offset of the option's first byte; returning
// false stops the walk.
func walkOptions(body []byte, cb func(typ uint8, data []byte, off int) bool) error {
	for i := 0; i < len(body); {
		t := body[i]
		if t == 0 { // Pad1
			i++
			continue
		}
		if i+1 >= len(body) {
			return errors.New("packet: truncated option")
		}
		l := int(body[i+1])
		if i+2+l > len(body) {
			return errors.New("packet: option data overruns header")
		}
		if !cb(t, body[i+2:i+2+l], i) {
			return nil
		}
		i += 2 + l
	}
	return nil
}

// padOptions pads a TLV area with Pad1/PadN so that len+2 is a multiple
// of 8.
func padOptions(body []byte) []byte {
	need := (8 - (len(body)+2)%8) % 8
	switch need {
	case 0:
		return body
	case 1:
		return append(body, 0) // Pad1
	default:
		pad := make([]byte, need)
		pad[0] = 1 // PadN
		pad[1] = byte(need - 2)
		return append(body, pad...)
	}
}

// discsInsertPos returns the index in p.Ext where a new destination
// options header carrying the DISCS option must be inserted: after any
// hop-by-hop header, before everything else (§V-F places it before the
// routing header).
func (p *IPv6) discsInsertPos() int {
	if len(p.Ext) > 0 && p.Ext[0].Kind == ExtHopByHop {
		return 1
	}
	return 0
}

// discsDestOpts returns the index of the destination-options header a
// DISCS option may live in: the first one not preceded by a routing or
// fragment header. Returns -1 when absent.
func (p *IPv6) discsDestOpts() int {
	for i, e := range p.Ext {
		switch e.Kind {
		case ExtRouting, ExtFragment:
			return -1
		case ExtDestOpts:
			return i
		}
	}
	return -1
}

// StampV6 inserts the 4-byte DISCS MAC. If a destination options header
// already lies before the routing header, only the option is inserted;
// otherwise an entire 8-byte destination options header is added
// (§V-F). It returns an error if a DISCS option is already present.
func (p *IPv6) StampV6(mac uint32) error {
	var macb [DISCSOptionLen]byte
	binary.BigEndian.PutUint32(macb[:], mac)
	opt := []byte{OptionTypeDISCS, DISCSOptionLen, macb[0], macb[1], macb[2], macb[3]}

	if i := p.discsDestOpts(); i >= 0 {
		found := false
		walkOptions(p.Ext[i].Body, func(t uint8, _ []byte, _ int) bool {
			if t == OptionTypeDISCS {
				found = true
				return false
			}
			return true
		})
		if found {
			return errors.New("packet: DISCS option already present")
		}
		body := append(stripPadding(p.Ext[i].Body), opt...)
		p.Ext[i].Body = padOptions(body)
		return nil
	}
	hdr := ExtHeader{Kind: ExtDestOpts, Body: opt} // 2+6 = 8 bytes, no padding
	pos := p.discsInsertPos()
	p.Ext = append(p.Ext, ExtHeader{})
	copy(p.Ext[pos+1:], p.Ext[pos:])
	p.Ext[pos] = hdr
	return nil
}

// stripPadding removes Pad1/PadN options from a TLV area.
func stripPadding(body []byte) []byte {
	var out []byte
	walkOptions(body, func(t uint8, data []byte, _ int) bool {
		if t != 0 && t != 1 {
			out = append(out, t, byte(len(data)))
			out = append(out, data...)
		}
		return true
	})
	return out
}

// MarkV6 reads the DISCS MAC from the packet, reporting whether one is
// present.
func (p *IPv6) MarkV6() (uint32, bool) {
	i := p.discsDestOpts()
	if i < 0 {
		return 0, false
	}
	var mac uint32
	found := false
	walkOptions(p.Ext[i].Body, func(t uint8, data []byte, _ int) bool {
		if t == OptionTypeDISCS && len(data) == DISCSOptionLen {
			mac = binary.BigEndian.Uint32(data)
			found = true
			return false
		}
		return true
	})
	return mac, found
}

// UnstampV6 removes the DISCS option. If no other (non-padding) option
// remains in the destination options header, the entire header is
// removed (§V-F). It reports whether an option was removed.
func (p *IPv6) UnstampV6() bool {
	i := p.discsDestOpts()
	if i < 0 {
		return false
	}
	var rest []byte
	found := false
	walkOptions(p.Ext[i].Body, func(t uint8, data []byte, _ int) bool {
		switch t {
		case OptionTypeDISCS:
			found = true
		case 0, 1: // padding
		default:
			rest = append(rest, t, byte(len(data)))
			rest = append(rest, data...)
		}
		return true
	})
	if !found {
		return false
	}
	if len(rest) == 0 {
		p.Ext = append(p.Ext[:i], p.Ext[i+1:]...)
		return true
	}
	p.Ext[i].Body = padOptions(rest)
	return true
}

// StampOverheadV6 returns how many bytes stamping would add to this
// packet: 8 when a whole destination options header must be inserted,
// otherwise the option size rounded to the 8-byte header granularity.
func (p *IPv6) StampOverheadV6() int {
	i := p.discsDestOpts()
	if i < 0 {
		return 8
	}
	cur := len(p.Ext[i].Body) + 2
	grown := len(stripPadding(p.Ext[i].Body)) + len([]byte{0, 0, 0, 0, 0, 0}) + 2
	grown = (grown + 7) &^ 7
	return grown - cur
}

// ICMPv6 types used by DISCS.
const (
	ICMPv6PacketTooBigType = 2
	ICMPv6TimeExceededType = 3
)

// NewICMPv6PacketTooBig builds the "packet too big" message a border
// router returns when stamping would exceed the external link MTU
// (§V-F), announcing newMTU. As much of the offending packet as fits in
// 1280 bytes is embedded.
func NewICMPv6PacketTooBig(src netip.Addr, orig *IPv6, newMTU uint32) (*IPv6, error) {
	return newICMPv6Error(src, orig, ICMPv6PacketTooBigType, newMTU)
}

// NewICMPv6TimeExceeded builds the hop-limit-exceeded message (type 3,
// code 0).
func NewICMPv6TimeExceeded(src netip.Addr, orig *IPv6) (*IPv6, error) {
	return newICMPv6Error(src, orig, ICMPv6TimeExceededType, 0)
}

func newICMPv6Error(src netip.Addr, orig *IPv6, typ uint8, word uint32) (*IPv6, error) {
	ob, err := orig.Marshal()
	if err != nil {
		return nil, err
	}
	max := 1280 - 40 - 8
	if len(ob) > max {
		ob = ob[:max]
	}
	body := make([]byte, 8+len(ob))
	body[0] = typ
	binary.BigEndian.PutUint32(body[4:8], word)
	copy(body[8:], ob)
	p := &IPv6{
		HopLimit: 64,
		Proto:    ProtoICMPv6,
		Src:      src,
		Dst:      orig.Src,
		Payload:  body,
	}
	srcb := src.As16()
	dstb := orig.Src.As16()
	binary.BigEndian.PutUint16(body[2:4], checksumWithPseudo(srcb[:], dstb[:], ProtoICMPv6, body))
	return p, nil
}

// ICMPv6Embedded extracts the packet embedded in an ICMPv6 error
// message (types 1-4). Returns nil, false when not applicable.
func ICMPv6Embedded(p *IPv6) (*IPv6, bool) {
	if p.Proto != ProtoICMPv6 || len(p.Payload) < 8+40 {
		return nil, false
	}
	if t := p.Payload[0]; t < 1 || t > 4 {
		return nil, false
	}
	emb, err := ParseIPv6(p.Payload[8:])
	if err != nil {
		return nil, false
	}
	return emb, true
}

// ReplaceICMPv6Embedded swaps the embedded packet of an ICMPv6 error
// in place and fixes the ICMPv6 checksum. The replacement must marshal
// to the same length as the original embedded bytes (the DISCS scrubber
// only rewrites the MAC in the embedded destination option, §VI-E2).
func ReplaceICMPv6Embedded(p *IPv6, emb *IPv6) error {
	if p.Proto != ProtoICMPv6 || len(p.Payload) < 8 {
		return errors.New("packet: not an ICMPv6 error message")
	}
	eb, err := emb.Marshal()
	if err != nil {
		return err
	}
	if len(eb) != len(p.Payload)-8 {
		return fmt.Errorf("packet: embedded length %d != original %d", len(eb), len(p.Payload)-8)
	}
	body := make([]byte, len(p.Payload))
	copy(body, p.Payload[:8])
	body[2], body[3] = 0, 0
	copy(body[8:], eb)
	srcb := p.Src.As16()
	dstb := p.Dst.As16()
	binary.BigEndian.PutUint16(body[2:4], checksumWithPseudo(srcb[:], dstb[:], ProtoICMPv6, body))
	p.Payload = body
	return nil
}
