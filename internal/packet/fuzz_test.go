package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzParseIPv4 checks that arbitrary bytes never panic the parser and
// that accepted packets survive a marshal→parse round trip.
func FuzzParseIPv4(f *testing.F) {
	p := &IPv4{
		TTL: 64, Protocol: ProtoUDP, ID: 7, Flags: FlagDF,
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("192.0.2.9"),
		Payload: []byte("seed"),
	}
	b, _ := p.Marshal()
	f.Add(b)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0xff}, 60))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseIPv4(data)
		if err != nil {
			return
		}
		out, err := q.Marshal()
		if err != nil {
			t.Fatalf("parsed packet fails to marshal: %v", err)
		}
		r, err := ParseIPv4(out)
		if err != nil {
			t.Fatalf("marshal output fails to parse: %v", err)
		}
		if r.Src != q.Src || r.Dst != q.Dst || r.ID != q.ID ||
			r.FragOff != q.FragOff || !bytes.Equal(r.Payload, q.Payload) {
			t.Fatal("round trip not stable")
		}
		// Mark accessors must be total.
		q.SetMark(q.Mark())
		_ = q.Msg()
	})
}

// FuzzParseIPv6 does the same for the IPv6 parser including the
// extension-header chain and the DISCS option walker.
func FuzzParseIPv6(f *testing.F) {
	p := &IPv6{
		HopLimit: 64, Proto: ProtoUDP,
		Src: mustAddr("2001:db8::1"), Dst: mustAddr("2001:db8::2"),
		Payload: []byte("seed"),
	}
	b, _ := p.Marshal()
	f.Add(b)
	p.StampV6(0xdeadbeef)
	b2, _ := p.Marshal()
	f.Add(b2)
	f.Add([]byte{0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseIPv6(data)
		if err != nil {
			return
		}
		out, err := q.Marshal()
		if err != nil {
			// Parsed chains re-marshal unless an ext body length is
			// inconsistent; the parser normalizes lengths, so this is a
			// bug.
			t.Fatalf("parsed packet fails to marshal: %v", err)
		}
		if _, err := ParseIPv6(out); err != nil {
			t.Fatalf("marshal output fails to parse: %v", err)
		}
		// Option accessors must be total even on junk chains.
		q.MarkV6()
		q.UnstampV6()
		_ = q.Msg()
		_ = q.WireLen()
	})
}

// FuzzScrubICMPv4 ensures the raw-bytes scrubber never panics or
// corrupts checksums.
func FuzzScrubICMPv4(f *testing.F) {
	orig := &IPv4{
		TTL: 64, Protocol: ProtoUDP,
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("192.0.2.9"),
		Payload: []byte("original"),
	}
	icmp, _ := ICMPv4TimeExceeded(mustAddr("203.0.113.1"), orig)
	b, _ := icmp.Marshal()
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseIPv4(data)
		if err != nil {
			return
		}
		if ScrubICMPv4EmbeddedMark(p, 0x1234567) {
			// A successful scrub must leave a valid ICMP checksum.
			if Checksum(p.Payload) != 0 {
				t.Fatal("scrub corrupted ICMP checksum")
			}
		}
	})
}

// FuzzFragmentReassemble: reassembly of arbitrary fragment sets must
// never panic, and fragmenting any accepted packet round-trips.
func FuzzFragmentReassemble(f *testing.F) {
	p := &IPv4{
		TTL: 64, Protocol: ProtoUDP, ID: 9,
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2"),
		Payload: bytes.Repeat([]byte{0xab}, 3000),
	}
	b, _ := p.Marshal()
	f.Add(b, 576)
	f.Fuzz(func(t *testing.T, data []byte, mtu int) {
		q, err := ParseIPv4(data)
		if err != nil {
			return
		}
		if q.FragOff != 0 || q.Flags&FlagMF != 0 {
			// Already a fragment: Fragment passes it through, but a lone
			// middle fragment legitimately cannot reassemble.
			return
		}
		frags, err := FragmentIPv4(q, mtu)
		if err != nil {
			return
		}
		got, err := ReassembleIPv4(frags)
		if err != nil {
			t.Fatalf("own fragments fail reassembly: %v", err)
		}
		if !bytes.Equal(got.Payload, q.Payload) {
			t.Fatal("fragment round trip corrupted payload")
		}
	})
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
