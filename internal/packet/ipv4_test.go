package packet

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func v4(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		t.Fatalf("bad v4 addr %q: %v", s, err)
	}
	return a
}

func samplePacket(t testing.TB) *IPv4 {
	return &IPv4{
		TOS:      0,
		ID:       0x1234,
		Flags:    FlagDF,
		FragOff:  0,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      v4(t, "10.1.2.3"),
		Dst:      v4(t, "192.0.2.55"),
		Payload:  []byte("hello discs world"),
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := samplePacket(t)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.TOS != p.TOS || q.ID != p.ID || q.Flags != p.Flags || q.FragOff != p.FragOff ||
		q.TTL != p.TTL || q.Protocol != p.Protocol || q.Src != p.Src || q.Dst != p.Dst {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
	if q.Checksum != p.Checksum {
		t.Fatalf("checksum mismatch: %x vs %x", q.Checksum, p.Checksum)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	p := samplePacket(t)
	b, _ := p.Marshal()
	// Header checksum of a valid header computes to zero when the
	// checksum field is included.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("header does not checksum to ones: %04x", sum)
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short packet should fail")
	}
	b := make([]byte, 20)
	b[0] = 6 << 4
	if _, err := ParseIPv4(b); err == nil {
		t.Error("wrong version should fail")
	}
	b[0] = 4<<4 | 3 // IHL 12 bytes < 20
	if _, err := ParseIPv4(b); err == nil {
		t.Error("bad IHL should fail")
	}
	b[0] = 4<<4 | 5
	binary.BigEndian.PutUint16(b[2:4], 100) // total > len
	if _, err := ParseIPv4(b); err == nil {
		t.Error("bad total length should fail")
	}
}

func TestIPv4MarshalValidation(t *testing.T) {
	p := samplePacket(t)
	p.Src = netip.MustParseAddr("2001:db8::1")
	if _, err := p.Marshal(); err == nil {
		t.Error("v6 src in IPv4 should fail")
	}
	p = samplePacket(t)
	p.Payload = make([]byte, 70000)
	if _, err := p.Marshal(); err == nil {
		t.Error("oversize packet should fail")
	}
}

func TestIPv4Options(t *testing.T) {
	p := samplePacket(t)
	p.Options = []byte{7, 4, 0, 0} // 4-byte option
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Options, p.Options) {
		t.Fatalf("options = %x", q.Options)
	}
	if q.HeaderLen() != 24 {
		t.Fatalf("header len = %d", q.HeaderLen())
	}
}

func TestMarkRoundTrip(t *testing.T) {
	p := samplePacket(t)
	p.SetMark(0x1abcdef5)
	if got := p.Mark(); got != 0x1abcdef5 {
		t.Fatalf("Mark = %08x", got)
	}
	// High bits beyond 29 are masked.
	p.SetMark(0xffffffff)
	if got := p.Mark(); got != 1<<29-1 {
		t.Fatalf("Mark = %08x, want %08x", got, uint32(1<<29-1))
	}
}

func TestMarkSplitsAcrossFields(t *testing.T) {
	p := samplePacket(t)
	p.SetMark(0b1000000000000001_0000000000011)
	// Top 16 bits -> ID, bottom 13 -> FragOff.
	if p.ID != 0b1000_0000_0000_0000|1 {
		t.Fatalf("ID = %04x", p.ID)
	}
	if p.FragOff != 3 {
		t.Fatalf("FragOff = %d", p.FragOff)
	}
}

func TestMarkPreservesFlags(t *testing.T) {
	p := samplePacket(t)
	p.Flags = FlagDF
	p.SetMark(0x0badf00d)
	if p.Flags != FlagDF {
		t.Fatal("SetMark must not touch Flags")
	}
	b, _ := p.Marshal()
	q, _ := ParseIPv4(b)
	if q.Flags != FlagDF || q.Mark() != 0x0badf00d {
		t.Fatalf("flags %03b mark %08x", q.Flags, q.Mark())
	}
}

func TestMsgV4Layout(t *testing.T) {
	p := samplePacket(t)
	m := p.Msg()
	if m[0] != 4<<4|5 {
		t.Errorf("msg[0] = %02x, want version|ihl", m[0])
	}
	if binary.BigEndian.Uint16(m[1:3]) != uint16(p.TotalLen()) {
		t.Error("msg total length wrong")
	}
	if m[3] != p.Flags<<5 {
		t.Errorf("msg flags byte = %02x", m[3])
	}
	if m[4] != ProtoUDP {
		t.Errorf("msg proto = %d", m[4])
	}
	src := p.Src.As4()
	dst := p.Dst.As4()
	if !bytes.Equal(m[5:9], src[:]) || !bytes.Equal(m[9:13], dst[:]) {
		t.Error("msg addresses wrong")
	}
	if !bytes.Equal(m[13:21], p.Payload[:8]) {
		t.Error("msg payload bytes wrong")
	}
}

func TestMsgV4ShortPayloadZeroPadded(t *testing.T) {
	p := samplePacket(t)
	p.Payload = []byte{0xaa, 0xbb}
	m := p.Msg()
	want := [8]byte{0xaa, 0xbb}
	if !bytes.Equal(m[13:21], want[:]) {
		t.Fatalf("msg payload = %x", m[13:21])
	}
}

func TestMsgV4ExcludesMarkFields(t *testing.T) {
	// Stamping (rewriting ID/FragOff) must not change the msg.
	p := samplePacket(t)
	before := p.Msg()
	p.SetMark(0x12345678 & (1<<29 - 1))
	after := p.Msg()
	if before != after {
		t.Fatal("msg changed after stamping")
	}
	// But TTL changes must not change msg either (mutable field).
	p.TTL--
	if p.Msg() != before {
		t.Fatal("msg depends on TTL")
	}
	// Changing an immutable field must change the msg.
	p.Protocol = ProtoTCP
	if p.Msg() == before {
		t.Fatal("msg ignores protocol")
	}
}

func TestIPv4Clone(t *testing.T) {
	p := samplePacket(t)
	p.Options = []byte{7, 4, 0, 0}
	q := p.Clone()
	q.Payload[0] = 'X'
	q.Options[0] = 9
	q.ID = 9999
	if p.Payload[0] == 'X' || p.Options[0] == 9 || p.ID == 9999 {
		t.Fatal("Clone shares state")
	}
}

func TestICMPv4TimeExceededAndEmbedded(t *testing.T) {
	orig := samplePacket(t)
	orig.SetMark(0x0ddba11 & (1<<29 - 1))
	router := v4(t, "203.0.113.1")
	icmp, err := ICMPv4TimeExceeded(router, orig)
	if err != nil {
		t.Fatal(err)
	}
	if icmp.Protocol != ProtoICMP || icmp.Dst != orig.Src || icmp.Src != router {
		t.Fatalf("icmp header wrong: %+v", icmp)
	}
	if icmp.Payload[0] != 11 {
		t.Fatalf("icmp type = %d", icmp.Payload[0])
	}
	if Checksum(icmp.Payload) != 0 {
		t.Fatal("ICMP checksum invalid")
	}
	emb, ok := ICMPv4Embedded(icmp)
	if !ok {
		t.Fatal("embedded packet not found")
	}
	if emb.Src != orig.Src || emb.Dst != orig.Dst || emb.Mark() != orig.Mark() {
		t.Fatalf("embedded mismatch: %+v", emb)
	}
	if len(emb.Payload) != 8 {
		t.Fatalf("embedded payload = %d bytes, want 8", len(emb.Payload))
	}
}

func TestICMPv4EmbeddedRejectsNonError(t *testing.T) {
	p := samplePacket(t)
	if _, ok := ICMPv4Embedded(p); ok {
		t.Fatal("UDP packet should not yield embedded")
	}
	p.Protocol = ProtoICMP
	p.Payload = make([]byte, 40)
	p.Payload[0] = 8 // echo request: not an error
	if _, ok := ICMPv4Embedded(p); ok {
		t.Fatal("echo request should not yield embedded")
	}
}

func TestScrubICMPv4EmbeddedMark(t *testing.T) {
	orig := samplePacket(t)
	mark := uint32(0x1badf00d) & (1<<29 - 1)
	orig.SetMark(mark)
	icmp, err := ICMPv4TimeExceeded(v4(t, "203.0.113.1"), orig)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize and reparse: scrubbing happens at the inspecting border
	// router, which sees raw bytes.
	b, _ := icmp.Marshal()
	q, _ := ParseIPv4(b)

	if !ScrubICMPv4EmbeddedMark(q, 0) {
		t.Fatal("scrub reported no-op")
	}
	emb, ok := ICMPv4Embedded(q)
	if !ok {
		t.Fatal("embedded lost after scrub")
	}
	if emb.Mark() == mark {
		t.Fatal("mark not scrubbed")
	}
	if emb.Mark() != 0 {
		t.Fatalf("mark = %08x, want 0", emb.Mark())
	}
	if emb.Flags != orig.Flags {
		t.Fatal("scrub damaged Flags")
	}
	if emb.Src != orig.Src || emb.Dst != orig.Dst || emb.Protocol != orig.Protocol {
		t.Fatal("scrub damaged embedded header")
	}
	// Outer ICMP checksum must still validate.
	if Checksum(q.Payload) != 0 {
		t.Fatal("ICMP checksum invalid after scrub")
	}
	// Embedded header checksum must validate too.
	if Checksum(q.Payload[8:8+20]) != 0 {
		t.Fatal("embedded checksum invalid after scrub")
	}
}

// ReplaceICMPv4Embedded must patch the embedded bytes in place: the
// embedded Total Length describes the full offending datagram, not the
// truncated snippet the error carries, and the old implementation
// re-marshaled the snippet — rewriting Total Length to the snippet size
// and breaking the receiver's ability to match the error to its
// original datagram.
func TestReplaceICMPv4EmbeddedPatchesInPlace(t *testing.T) {
	orig := samplePacket(t)
	orig.SetMark(0x1f0f0f0f & (1<<29 - 1))
	icmp, err := ICMPv4TimeExceeded(v4(t, "203.0.113.1"), orig)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := icmp.Marshal()
	q, _ := ParseIPv4(b)
	before := append([]byte(nil), q.Payload...)

	// The embedded Total Length covers the original datagram and is
	// strictly larger than the embedded snippet — the case the old
	// re-marshal destroyed.
	wantTL := binary.BigEndian.Uint16(before[8+2 : 8+4])
	if int(wantTL) != orig.TotalLen() {
		t.Fatalf("embedded Total Length = %d, want %d", wantTL, orig.TotalLen())
	}
	if int(wantTL) <= len(before)-8 {
		t.Fatalf("test needs a truncated embed: TL %d vs snippet %d", wantTL, len(before)-8)
	}

	emb, ok := ICMPv4Embedded(q)
	if !ok {
		t.Fatal("no embedded packet")
	}
	emb.SetMark(0) // the scrub the border router applies
	if err := ReplaceICMPv4Embedded(q, emb); err != nil {
		t.Fatal(err)
	}

	after := q.Payload
	if got := binary.BigEndian.Uint16(after[8+2 : 8+4]); got != wantTL {
		t.Fatalf("embedded Total Length rewritten: %d, want %d", got, wantTL)
	}
	// Only the outer ICMP checksum (bytes 2..4), the embedded IPID and
	// Fragment Offset (bytes 12..16) and the embedded header checksum
	// (bytes 18..20) may change; every other byte must survive exactly.
	for i := range after {
		if before[i] == after[i] {
			continue
		}
		mutable := (i >= 2 && i < 4) || (i >= 8+4 && i < 8+8) || (i >= 8+10 && i < 8+12)
		if !mutable {
			t.Errorf("byte %d changed %02x -> %02x", i, before[i], after[i])
		}
	}
	// The mark is gone and both checksums still validate.
	if emb2, _ := ICMPv4Embedded(q); emb2.Mark() != 0 {
		t.Fatalf("mark = %08x after replace", emb2.Mark())
	}
	if Checksum(q.Payload) != 0 {
		t.Fatal("outer ICMP checksum invalid")
	}
	if Checksum(q.Payload[8:8+20]) != 0 {
		t.Fatal("embedded header checksum invalid")
	}
}

func TestReplaceICMPv4EmbeddedRejectsNonError(t *testing.T) {
	p := samplePacket(t)
	if err := ReplaceICMPv4Embedded(p, samplePacket(t)); err == nil {
		t.Fatal("accepted a non-ICMP packet")
	}
}

func TestScrubICMPv4NoOpOnNonError(t *testing.T) {
	p := samplePacket(t)
	if ScrubICMPv4EmbeddedMark(p, 0) {
		t.Fatal("scrub should refuse non-ICMP")
	}
}

// Property: marshal→parse round trip preserves all fields for random
// packets.
func TestPropertyIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, flags, ttl, proto uint8, fo uint16, src, dst [4]byte, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p := &IPv4{
			TOS: tos, ID: id, Flags: flags & 7, FragOff: fo & 0x1fff,
			TTL: ttl, Protocol: proto,
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst),
			Payload: payload,
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := ParseIPv4(b)
		if err != nil {
			return false
		}
		return q.TOS == p.TOS && q.ID == p.ID && q.Flags == p.Flags &&
			q.FragOff == p.FragOff && q.TTL == p.TTL && q.Protocol == p.Protocol &&
			q.Src == p.Src && q.Dst == p.Dst && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SetMark/Mark round-trips any 29-bit value.
func TestPropertyMarkRoundTrip(t *testing.T) {
	f := func(mark uint32) bool {
		p := &IPv4{Src: netip.AddrFrom4([4]byte{1, 2, 3, 4}), Dst: netip.AddrFrom4([4]byte{5, 6, 7, 8})}
		p.SetMark(mark)
		return p.Mark() == mark&(1<<29-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 style example.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(b)
	// Sum = 0x0001+0xf203+0xf4f5+0xf6f7 = 0x2ddf0 -> 0xddf2 -> ^= 0x220d
	if got != 0x220d {
		t.Fatalf("Checksum = %04x, want 220d", got)
	}
	// Odd length pads with zero.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func BenchmarkIPv4Marshal(b *testing.B) {
	p := samplePacket(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPv4Parse(b *testing.B) {
	p := samplePacket(b)
	buf, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseIPv4(buf); err != nil {
			b.Fatal(err)
		}
	}
}
