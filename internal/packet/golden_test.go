package packet

import (
	"encoding/hex"
	"net/netip"
	"testing"
)

// Golden wire-format tests: the exact bytes of stamped packets are part
// of DISCS's backward-compatibility contract (§V-E/§V-F); any change to
// them breaks interop between stamping and verification ends.

func TestGoldenStampedIPv4(t *testing.T) {
	p := &IPv4{
		TOS: 0, TTL: 64, Protocol: ProtoUDP, Flags: FlagDF,
		Src:     netip.MustParseAddr("10.1.0.10"),
		Dst:     netip.MustParseAddr("10.3.0.1"),
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	p.SetMark(0x15555555) // 29-bit pattern across IPID+FragOff
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	const want = "45000018" + // ver|ihl, tos, total length 24
		"aaaa" + // IPID = mark >> 13
		"5555" + // flags(010=DF) | fragoff = mark & 0x1fff: 0b010 1010101010101
		"4011" + // ttl 64, proto 17
		"66c7" + // header checksum (validated by TestIPv4ChecksumValid)
		"0a01000a" + // src
		"0a030001" + // dst
		"deadbeef"
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("stamped IPv4 bytes changed:\n got %s\nwant %s", got, want)
	}
	// And the mark reads back.
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mark() != 0x15555555 {
		t.Fatalf("mark = %08x", q.Mark())
	}
}

func TestGoldenStampedIPv6(t *testing.T) {
	p := &IPv6{
		HopLimit: 64, Proto: ProtoUDP,
		Src:     netip.MustParseAddr("2001:db8:1::a"),
		Dst:     netip.MustParseAddr("2001:db8:3::1"),
		Payload: []byte{0xde, 0xad},
	}
	if err := p.StampV6(0xcafebabe); err != nil {
		t.Fatal(err)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Reference bytes: base header (ver/tc/flow, payload length 10,
	// next header 60 = destination options, hop limit 64), addresses,
	// then the 8-byte options header (inner next header UDP, ext len 0,
	// DISCS option 0x26 length 4 with the 32-bit mark) and the payload.
	ref := make([]byte, 0, len(b))
	ref = append(ref, 0x60, 0, 0, 0, 0x00, 0x0a, 0x3c, 0x40)
	src := p.Src.As16()
	dst := p.Dst.As16()
	ref = append(ref, src[:]...)
	ref = append(ref, dst[:]...)
	ref = append(ref, 0x11, 0x00, 0x26, 0x04, 0xca, 0xfe, 0xba, 0xbe)
	ref = append(ref, 0xde, 0xad)
	if hex.EncodeToString(b) != hex.EncodeToString(ref) {
		t.Fatalf("stamped IPv6 bytes changed:\n got %s\nwant %s",
			hex.EncodeToString(b), hex.EncodeToString(ref))
	}
}

// TestGoldenDISCSOptionType pins the §V-F option type bits: 00 (skip
// unknown) + 1 (mutable en route) + 00110.
func TestGoldenDISCSOptionType(t *testing.T) {
	if OptionTypeDISCS != 0x26 {
		t.Fatalf("option type = %#x", OptionTypeDISCS)
	}
	if OptionTypeDISCS>>6 != 0 {
		t.Fatal("high bits must be 00: legacy nodes skip and continue")
	}
	if OptionTypeDISCS&0x20 == 0 {
		t.Fatal("change-en-route bit must be set (AH exclusion)")
	}
}
