package packet

import (
	"encoding/hex"
	"net/netip"
	"testing"
)

// Golden wire-format tests: the exact bytes of stamped packets are part
// of DISCS's backward-compatibility contract (§V-E/§V-F); any change to
// them breaks interop between stamping and verification ends.

func TestGoldenStampedIPv4(t *testing.T) {
	p := &IPv4{
		TOS: 0, TTL: 64, Protocol: ProtoUDP, Flags: FlagDF,
		Src:     netip.MustParseAddr("10.1.0.10"),
		Dst:     netip.MustParseAddr("10.3.0.1"),
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	p.SetMark(0x15555555) // 29-bit pattern across IPID+FragOff
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	const want = "45000018" + // ver|ihl, tos, total length 24
		"aaaa" + // IPID = mark >> 13
		"5555" + // flags(010=DF) | fragoff = mark & 0x1fff: 0b010 1010101010101
		"4011" + // ttl 64, proto 17
		"66c7" + // header checksum (validated by TestIPv4ChecksumValid)
		"0a01000a" + // src
		"0a030001" + // dst
		"deadbeef"
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("stamped IPv4 bytes changed:\n got %s\nwant %s", got, want)
	}
	// And the mark reads back.
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mark() != 0x15555555 {
		t.Fatalf("mark = %08x", q.Mark())
	}
}

func TestGoldenStampedIPv6(t *testing.T) {
	p := &IPv6{
		HopLimit: 64, Proto: ProtoUDP,
		Src:     netip.MustParseAddr("2001:db8:1::a"),
		Dst:     netip.MustParseAddr("2001:db8:3::1"),
		Payload: []byte{0xde, 0xad},
	}
	if err := p.StampV6(0xcafebabe); err != nil {
		t.Fatal(err)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Reference bytes: base header (ver/tc/flow, payload length 10,
	// next header 60 = destination options, hop limit 64), addresses,
	// then the 8-byte options header (inner next header UDP, ext len 0,
	// DISCS option 0x26 length 4 with the 32-bit mark) and the payload.
	ref := make([]byte, 0, len(b))
	ref = append(ref, 0x60, 0, 0, 0, 0x00, 0x0a, 0x3c, 0x40)
	src := p.Src.As16()
	dst := p.Dst.As16()
	ref = append(ref, src[:]...)
	ref = append(ref, dst[:]...)
	ref = append(ref, 0x11, 0x00, 0x26, 0x04, 0xca, 0xfe, 0xba, 0xbe)
	ref = append(ref, 0xde, 0xad)
	if hex.EncodeToString(b) != hex.EncodeToString(ref) {
		t.Fatalf("stamped IPv6 bytes changed:\n got %s\nwant %s",
			hex.EncodeToString(b), hex.EncodeToString(ref))
	}
}

// TestGoldenScrubbedICMPv4 pins the exact bytes of a TTL-exceeded
// message after the border router scrubbed the embedded mark (§VI-E2).
// The scrub is an in-place patch: relative to the unscrubbed message,
// only the embedded IPID/Fragment-Offset bytes, the embedded header
// checksum and the outer ICMP checksum may differ — in particular the
// embedded Total Length still describes the full original datagram
// (31 bytes here), not the 28-byte snippet the error carries.
func TestGoldenScrubbedICMPv4(t *testing.T) {
	orig := &IPv4{
		TTL: 7, Protocol: ProtoUDP, Flags: FlagDF,
		Src:     netip.MustParseAddr("10.1.0.10"),
		Dst:     netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("discs-mark1"), // 11 bytes: embed truncates to 8
	}
	orig.SetMark(0x15555555)
	icmp, err := ICMPv4TimeExceeded(netip.MustParseAddr("203.0.113.1"), orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := icmp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !ScrubICMPv4EmbeddedMark(q, 0x0badcafe) {
		t.Fatal("scrub reported no-op")
	}
	out, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	const want = "45000038" + // outer: ver|ihl, tos, total length 56
		"00000000" + // outer IPID/flags/fragoff (unmarked)
		"400134b9" + // ttl 64, proto 1 (ICMP), outer header checksum
		"cb007101" + // outer src 203.0.113.1
		"0a01000a" + // outer dst: the original sender
		"0b003ca4" + // ICMP type 11, code 0, checksum after scrub
		"00000000" + // ICMP unused word
		// Embedded original header, mark scrubbed in place:
		"4500001f" + // ver|ihl, tos, Total Length 31 = FULL datagram, preserved
		"5d6e4afe" + // IPID=0x0badcafe>>13, fragoff=low 13 bits, DF flag kept
		"0711f753" + // ttl 7, proto UDP, embedded checksum after scrub
		"0a01000a" + // embedded src
		"0a030001" + // embedded dst
		"64697363732d6d61" // first 8 payload bytes: "discs-ma"
	if got := hex.EncodeToString(out); got != want {
		t.Fatalf("scrubbed ICMPv4 bytes changed:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenDISCSOptionType pins the §V-F option type bits: 00 (skip
// unknown) + 1 (mutable en route) + 00110.
func TestGoldenDISCSOptionType(t *testing.T) {
	if OptionTypeDISCS != 0x26 {
		t.Fatalf("option type = %#x", OptionTypeDISCS)
	}
	if OptionTypeDISCS>>6 != 0 {
		t.Fatal("high bits must be 00: legacy nodes skip and continue")
	}
	if OptionTypeDISCS&0x20 == 0 {
		t.Fatal("change-en-route bit must be set (AH exclusion)")
	}
}
