package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func bigPacket(t testing.TB, n int) *IPv4 {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &IPv4{
		TTL: 64, Protocol: ProtoUDP, ID: 0x4242,
		Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1"),
		Payload: payload,
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	p := bigPacket(t, 3000)
	frags, err := FragmentIPv4(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments", len(frags))
	}
	for _, f := range frags {
		if f.TotalLen() > 1500 {
			t.Fatalf("fragment exceeds MTU: %d", f.TotalLen())
		}
		if f.ID != p.ID {
			t.Fatal("fragment ID changed")
		}
	}
	got, err := ReassembleIPv4(frags)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mismatch after reassembly")
	}
	if got.Flags&FlagMF != 0 || got.FragOff != 0 {
		t.Fatal("reassembled packet still looks fragmented")
	}
}

func TestFragmentOutOfOrderReassembly(t *testing.T) {
	p := bigPacket(t, 2000)
	frags, err := FragmentIPv4(p, 576)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse order.
	rev := make([]*IPv4, len(frags))
	for i, f := range frags {
		rev[len(frags)-1-i] = f
	}
	got, err := ReassembleIPv4(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	p := bigPacket(t, 100)
	frags, err := FragmentIPv4(p, 1500)
	if err != nil || len(frags) != 1 {
		t.Fatalf("frags = %d, %v", len(frags), err)
	}
	if frags[0] == p {
		t.Fatal("passthrough must clone")
	}
}

func TestFragmentDFRejected(t *testing.T) {
	p := bigPacket(t, 3000)
	p.Flags |= FlagDF
	if _, err := FragmentIPv4(p, 1500); err == nil {
		t.Fatal("DF packet fragmented")
	}
}

func TestFragmentTinyMTURejected(t *testing.T) {
	p := bigPacket(t, 3000)
	if _, err := FragmentIPv4(p, 24); err == nil {
		t.Fatal("MTU smaller than header accepted")
	}
}

func TestRefragmentRejected(t *testing.T) {
	p := bigPacket(t, 3000)
	frags, _ := FragmentIPv4(p, 1500)
	if _, err := FragmentIPv4(frags[0], 576); err == nil {
		t.Fatal("re-fragmentation should be refused")
	}
}

func TestReassembleErrors(t *testing.T) {
	if _, err := ReassembleIPv4(nil); err == nil {
		t.Fatal("empty fragment list accepted")
	}
	p := bigPacket(t, 2000)
	frags, _ := FragmentIPv4(p, 576)
	// Missing middle fragment.
	if _, err := ReassembleIPv4([]*IPv4{frags[0], frags[2]}); err == nil {
		t.Fatal("gap not detected")
	}
	// Missing final fragment.
	if _, err := ReassembleIPv4(frags[:len(frags)-1]); err == nil {
		t.Fatal("missing tail not detected")
	}
	// Mixed datagrams.
	other := bigPacket(t, 2000)
	other.ID++
	oFrags, _ := FragmentIPv4(other, 576)
	if _, err := ReassembleIPv4([]*IPv4{frags[0], oFrags[1]}); err == nil {
		t.Fatal("mixed datagrams not detected")
	}
}

// TestStampingBreaksReassembly demonstrates the §V-E collateral: a
// DISCS stamp rewrites IPID and Fragment Offset, so a stamped fragment
// can no longer be matched or reassembled — the paper accepts this for
// the ~0.06% of traffic that is fragmented, and only for protected
// prefixes.
func TestStampingBreaksReassembly(t *testing.T) {
	p := bigPacket(t, 2000)
	frags, err := FragmentIPv4(p, 576)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: reassembly works.
	if _, err := ReassembleIPv4(frags); err != nil {
		t.Fatal(err)
	}
	// Stamp one fragment the way CDP would (rewrite the mark fields).
	frags[1].SetMark(0x0abcdef1)
	if _, err := ReassembleIPv4(frags); err == nil {
		t.Fatal("reassembly should fail after the mark rewrote ID/FragOff")
	}
}

// Property: fragment→reassemble is the identity for random payloads
// and MTUs.
func TestPropertyFragmentRoundTrip(t *testing.T) {
	f := func(payload []byte, mtuSel uint8) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 4000 {
			payload = payload[:4000]
		}
		mtu := 68 + int(mtuSel)*8 // 68..2108
		p := &IPv4{
			TTL: 64, Protocol: ProtoUDP, ID: 7,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			Payload: append([]byte(nil), payload...),
		}
		frags, err := FragmentIPv4(p, mtu)
		if err != nil {
			return false
		}
		got, err := ReassembleIPv4(frags)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
