package cmac

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 §4 test vectors.
var rfcKey, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

var rfcMsg, _ = hex.DecodeString(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("hex %q: %v", s, err)
	}
	return b
}

func TestRFC4493Subkeys(t *testing.T) {
	c, err := New(rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	wantK1 := fromHex(t, "fbeed618357133667c85e08f7236a8de")
	wantK2 := fromHex(t, "f7ddac306ae266ccf90bc11ee46d513b")
	if !bytes.Equal(c.k1[:], wantK1) {
		t.Errorf("K1 = %x, want %x", c.k1, wantK1)
	}
	if !bytes.Equal(c.k2[:], wantK2) {
		t.Errorf("K2 = %x, want %x", c.k2, wantK2)
	}
}

func TestRFC4493Vectors(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want string
	}{
		{"len0", 0, "bb1d6929e95937287fa37d129b756746"},
		{"len16", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", 40, "dfa66747de9ae63030ca32611497c827"},
		{"len64", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	c, err := New(rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.Sum(rfcMsg[:tc.n])
			want := fromHex(t, tc.want)
			if !bytes.Equal(got[:], want) {
				t.Errorf("Sum = %x, want %x", got, want)
			}
			if !c.Verify(rfcMsg[:tc.n], want) {
				t.Error("Verify(correct) = false")
			}
		})
	}
}

func TestVerifyRejects(t *testing.T) {
	c, _ := New(rfcKey)
	mac := c.Sum(rfcMsg[:16])
	bad := mac
	bad[5] ^= 1
	if c.Verify(rfcMsg[:16], bad[:]) {
		t.Error("Verify accepted corrupted MAC")
	}
	if c.Verify(rfcMsg[:16], mac[:15]) {
		t.Error("Verify accepted short MAC")
	}
	if c.Verify(rfcMsg[:17], mac[:]) {
		t.Error("Verify accepted wrong message")
	}
}

func TestKeyLength(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key should fail (AES-128 only)", n)
		}
	}
	if _, err := New(make([]byte, 16)); err != nil {
		t.Errorf("New with 16-byte key: %v", err)
	}
}

func TestTruncations(t *testing.T) {
	c, _ := New(rfcKey)
	// len16 vector: full MAC = 070a16b4 6b4d4144 f79bdd9d d04a287c
	msg := rfcMsg[:16]
	want32 := uint32(0x070a16b4)
	if got := c.Sum32(msg); got != want32 {
		t.Errorf("Sum32 = %08x, want %08x", got, want32)
	}
	want29 := want32 >> 3
	if got := c.Sum29(msg); got != want29 {
		t.Errorf("Sum29 = %08x, want %08x", got, want29)
	}
	if c.Sum29(msg) >= 1<<29 {
		t.Error("Sum29 out of 29-bit range")
	}
	if !c.Verify29(msg, want29) || !c.Verify32(msg, want32) {
		t.Error("truncated verify of correct MAC failed")
	}
	if c.Verify29(msg, want29^1) || c.Verify32(msg, want32^1) {
		t.Error("truncated verify accepted wrong MAC")
	}
	// Verify29 must ignore bits above bit 28 in the candidate.
	if !c.Verify29(msg, want29|1<<31) {
		t.Error("Verify29 should mask candidate to 29 bits")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	k2 := append([]byte(nil), rfcKey...)
	k2[0] ^= 0xff
	c1, _ := New(rfcKey)
	c2, _ := New(k2)
	m1 := c1.Sum(rfcMsg[:40])
	m2 := c2.Sum(rfcMsg[:40])
	if m1 == m2 {
		t.Error("different keys produced identical MACs")
	}
}

func TestDeterministic(t *testing.T) {
	c, _ := New(rfcKey)
	a := c.Sum(rfcMsg)
	b := c.Sum(rfcMsg)
	if a != b {
		t.Error("Sum is not deterministic")
	}
}

func TestAllMessageLengths(t *testing.T) {
	// Exercise every padding branch: 0..48 bytes.
	c, _ := New(rfcKey)
	seen := make(map[[16]byte]bool)
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(i)
	}
	for n := 0; n <= 48; n++ {
		m := c.Sum(msg[:n])
		if seen[m] {
			t.Fatalf("collision at length %d", n)
		}
		seen[m] = true
	}
}

// Property: a single-bit flip anywhere in the message changes the MAC.
func TestPropertyBitFlipChangesMAC(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte, pos uint16) bool {
		if len(msg) == 0 {
			return true
		}
		orig := c.Sum(msg)
		i := int(pos) % len(msg)
		msg[i] ^= 1
		flipped := c.Sum(msg)
		msg[i] ^= 1
		return orig != flipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Verify(msg, Sum(msg)) always holds.
func TestPropertyRoundTrip(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte) bool {
		m := c.Sum(msg)
		return c.Verify(msg, m[:]) && c.Verify29(msg, c.Sum29(msg)) && c.Verify32(msg, c.Sum32(msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages differing only in length (prefix) have different MACs
// (padding domain separation).
func TestPropertyPrefixDistinct(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte) bool {
		if len(msg) == 0 {
			return true
		}
		return c.Sum(msg) != c.Sum(msg[:len(msg)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression: Verify must reject a wrong-length mac up front (it used
// to burn a full CMAC computation before looking at len(mac)).
func TestVerifyWrongLengthMAC(t *testing.T) {
	c, _ := New(rfcKey)
	mac := c.Sum(rfcMsg[:16])
	long := append(mac[:], 0x00)
	for _, cand := range [][]byte{nil, {}, mac[:1], mac[:15], long} {
		if c.Verify(rfcMsg[:16], cand) {
			t.Errorf("Verify accepted %d-byte mac", len(cand))
		}
	}
	if !c.Verify(rfcMsg[:16], mac[:]) {
		t.Error("Verify rejected correct mac")
	}
}

// SumCached must be bit-identical to SumWith for every length and
// cache state.
func TestSumCachedMatchesSum(t *testing.T) {
	c, _ := New(rfcKey)
	var s Scratch
	var bc BlockCache
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	for n := 0; n <= len(msg); n++ {
		want := c.Sum(msg[:n])
		for pass := 0; pass < 2; pass++ { // cold then warm cache
			if got := c.SumCached(msg[:n], &s, &bc); got != want {
				t.Fatalf("len %d pass %d: SumCached = %x, want %x", n, pass, got, want)
			}
		}
		if got := c.SumCached(msg[:n], &s, nil); got != want {
			t.Fatalf("len %d: SumCached(nil cache) = %x, want %x", n, got, want)
		}
	}
}

func TestBlockCacheBehavior(t *testing.T) {
	c, _ := New(rfcKey)
	var s Scratch
	var bc BlockCache
	msg := make([]byte, 21) // 2 blocks: first block cacheable
	for i := range msg {
		msg[i] = byte(i)
	}
	c.SumCached(msg, &s, &bc)
	if bc.Misses() != 1 || bc.Hits() != 0 {
		t.Fatalf("cold: hits=%d misses=%d, want 0/1", bc.Hits(), bc.Misses())
	}
	// Same leading block, different tail: still a hit.
	msg[20] ^= 0xff
	c.SumCached(msg, &s, &bc)
	if bc.Hits() != 1 {
		t.Fatalf("warm: hits=%d, want 1", bc.Hits())
	}
	// A different CMAC instance over the same key bytes must miss:
	// entries are tagged by instance pointer, which is how key-table
	// snapshot swaps invalidate the cache.
	c2, _ := New(rfcKey)
	c2.SumCached(msg, &s, &bc)
	if bc.Misses() != 2 {
		t.Fatalf("rotated key: misses=%d, want 2", bc.Misses())
	}
	bc.Reset()
	if bc.Hits() != 0 || bc.Misses() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// Single-block messages never touch the cache.
	c.SumCached(msg[:10], &s, &bc)
	if bc.Hits()+bc.Misses() != 0 {
		t.Fatal("single-block message consulted the cache")
	}
}

// SumBurst must be bit-identical to per-message Sum32/Sum29 across
// message lengths (single-block, exact-multiple, padded) and burst
// sizes (empty, partial lane group, multiple groups), cached or not.
func TestSumBurstMatchesSerial(t *testing.T) {
	c, _ := New(rfcKey)
	var bs BurstScratch
	var bc BlockCache
	for _, msgLen := range []int{1, 5, 15, 16, 17, 21, 32, 40, 47, 48, 100} {
		for _, n := range []int{0, 1, 3, 8, 9, 16, 23, 64} {
			flat := make([]byte, n*msgLen)
			for i := range flat {
				flat[i] = byte(i*13 + msgLen)
			}
			// Repeat some leading blocks so the cache path gets hits.
			if n > 4 && msgLen >= 17 {
				copy(flat[2*msgLen:], flat[:16])
				copy(flat[3*msgLen:], flat[:16])
			}
			out := make([]uint32, n)
			for _, cache := range []*BlockCache{nil, &bc} {
				c.SumBurst32(flat, msgLen, out, &bs, cache)
				for i := 0; i < n; i++ {
					want := c.Sum32(flat[i*msgLen : (i+1)*msgLen])
					if out[i] != want {
						t.Fatalf("msgLen=%d n=%d cache=%v msg %d: burst %08x, serial %08x",
							msgLen, n, cache != nil, i, out[i], want)
					}
				}
				c.SumBurst29(flat, msgLen, out, &bs, cache)
				for i := 0; i < n; i++ {
					want := c.Sum29(flat[i*msgLen : (i+1)*msgLen])
					if out[i] != want {
						t.Fatalf("msgLen=%d n=%d cache=%v msg %d: burst29 %08x, serial %08x",
							msgLen, n, cache != nil, i, out[i], want)
					}
				}
			}
		}
	}
}

func TestSumBurstPanics(t *testing.T) {
	c, _ := New(rfcKey)
	var bs BurstScratch
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("msgLen=0", func() {
		c.SumBurst32(nil, 0, make([]uint32, 1), &bs, nil)
	})
	mustPanic("short flat", func() {
		c.SumBurst32(make([]byte, 20), 21, make([]uint32, 1), &bs, nil)
	})
}

func BenchmarkSum21B(b *testing.B) {
	// 21 bytes is the IPv4 msg size (§V-E).
	c, _ := New(rfcKey)
	msg := make([]byte, 21)
	b.SetBytes(21)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}

func BenchmarkSum40B(b *testing.B) {
	// 40 bytes is the IPv6 msg size (src 16 + dst 16 + 8 payload).
	c, _ := New(rfcKey)
	msg := make([]byte, 40)
	b.SetBytes(40)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}

func BenchmarkSum1500B(b *testing.B) {
	c, _ := New(rfcKey)
	msg := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}

// benchBurst packs n copies of distinct 21-byte v4-shaped messages; if
// sharedPrefix, all share the leading 16 bytes (flow locality → cache
// hits), else every first block differs (hostile shape).
func benchBurst(b *testing.B, n int, sharedPrefix, cached bool) {
	c, _ := New(rfcKey)
	const msgLen = 21
	flat := make([]byte, n*msgLen)
	for i := 0; i < n; i++ {
		m := flat[i*msgLen : (i+1)*msgLen]
		for j := range m {
			m[j] = byte(j)
		}
		if sharedPrefix {
			m[18] = byte(i) // vary only the tail
		} else {
			m[0] = byte(i)
			m[1] = byte(i >> 8)
		}
	}
	var bs BurstScratch
	var bc BlockCache
	cache := &bc
	if !cached {
		cache = nil
	}
	out := make([]uint32, n)
	b.SetBytes(int64(n * msgLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SumBurst29(flat, msgLen, out, &bs, cache)
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds()/1e6, "Mmacs/s")
}

func BenchmarkSumBurst64x21B(b *testing.B)       { benchBurst(b, 64, false, false) }
func BenchmarkSumBurst64x21BCached(b *testing.B) { benchBurst(b, 64, true, true) }
func BenchmarkSumBurst64x21BCold(b *testing.B)   { benchBurst(b, 64, false, true) }

func BenchmarkSumSerial64x21B(b *testing.B) {
	c, _ := New(rfcKey)
	const msgLen = 21
	flat := make([]byte, 64*msgLen)
	for i := range flat {
		flat[i] = byte(i)
	}
	var s Scratch
	b.SetBytes(64 * msgLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			c.Sum29With(flat[j*msgLen:(j+1)*msgLen], &s)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds()/1e6, "Mmacs/s")
}
