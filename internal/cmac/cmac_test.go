package cmac

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 §4 test vectors.
var rfcKey, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

var rfcMsg, _ = hex.DecodeString(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("hex %q: %v", s, err)
	}
	return b
}

func TestRFC4493Subkeys(t *testing.T) {
	c, err := New(rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	wantK1 := fromHex(t, "fbeed618357133667c85e08f7236a8de")
	wantK2 := fromHex(t, "f7ddac306ae266ccf90bc11ee46d513b")
	if !bytes.Equal(c.k1[:], wantK1) {
		t.Errorf("K1 = %x, want %x", c.k1, wantK1)
	}
	if !bytes.Equal(c.k2[:], wantK2) {
		t.Errorf("K2 = %x, want %x", c.k2, wantK2)
	}
}

func TestRFC4493Vectors(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want string
	}{
		{"len0", 0, "bb1d6929e95937287fa37d129b756746"},
		{"len16", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", 40, "dfa66747de9ae63030ca32611497c827"},
		{"len64", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	c, err := New(rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.Sum(rfcMsg[:tc.n])
			want := fromHex(t, tc.want)
			if !bytes.Equal(got[:], want) {
				t.Errorf("Sum = %x, want %x", got, want)
			}
			if !c.Verify(rfcMsg[:tc.n], want) {
				t.Error("Verify(correct) = false")
			}
		})
	}
}

func TestVerifyRejects(t *testing.T) {
	c, _ := New(rfcKey)
	mac := c.Sum(rfcMsg[:16])
	bad := mac
	bad[5] ^= 1
	if c.Verify(rfcMsg[:16], bad[:]) {
		t.Error("Verify accepted corrupted MAC")
	}
	if c.Verify(rfcMsg[:16], mac[:15]) {
		t.Error("Verify accepted short MAC")
	}
	if c.Verify(rfcMsg[:17], mac[:]) {
		t.Error("Verify accepted wrong message")
	}
}

func TestKeyLength(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key should fail (AES-128 only)", n)
		}
	}
	if _, err := New(make([]byte, 16)); err != nil {
		t.Errorf("New with 16-byte key: %v", err)
	}
}

func TestTruncations(t *testing.T) {
	c, _ := New(rfcKey)
	// len16 vector: full MAC = 070a16b4 6b4d4144 f79bdd9d d04a287c
	msg := rfcMsg[:16]
	want32 := uint32(0x070a16b4)
	if got := c.Sum32(msg); got != want32 {
		t.Errorf("Sum32 = %08x, want %08x", got, want32)
	}
	want29 := want32 >> 3
	if got := c.Sum29(msg); got != want29 {
		t.Errorf("Sum29 = %08x, want %08x", got, want29)
	}
	if c.Sum29(msg) >= 1<<29 {
		t.Error("Sum29 out of 29-bit range")
	}
	if !c.Verify29(msg, want29) || !c.Verify32(msg, want32) {
		t.Error("truncated verify of correct MAC failed")
	}
	if c.Verify29(msg, want29^1) || c.Verify32(msg, want32^1) {
		t.Error("truncated verify accepted wrong MAC")
	}
	// Verify29 must ignore bits above bit 28 in the candidate.
	if !c.Verify29(msg, want29|1<<31) {
		t.Error("Verify29 should mask candidate to 29 bits")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	k2 := append([]byte(nil), rfcKey...)
	k2[0] ^= 0xff
	c1, _ := New(rfcKey)
	c2, _ := New(k2)
	m1 := c1.Sum(rfcMsg[:40])
	m2 := c2.Sum(rfcMsg[:40])
	if m1 == m2 {
		t.Error("different keys produced identical MACs")
	}
}

func TestDeterministic(t *testing.T) {
	c, _ := New(rfcKey)
	a := c.Sum(rfcMsg)
	b := c.Sum(rfcMsg)
	if a != b {
		t.Error("Sum is not deterministic")
	}
}

func TestAllMessageLengths(t *testing.T) {
	// Exercise every padding branch: 0..48 bytes.
	c, _ := New(rfcKey)
	seen := make(map[[16]byte]bool)
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(i)
	}
	for n := 0; n <= 48; n++ {
		m := c.Sum(msg[:n])
		if seen[m] {
			t.Fatalf("collision at length %d", n)
		}
		seen[m] = true
	}
}

// Property: a single-bit flip anywhere in the message changes the MAC.
func TestPropertyBitFlipChangesMAC(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte, pos uint16) bool {
		if len(msg) == 0 {
			return true
		}
		orig := c.Sum(msg)
		i := int(pos) % len(msg)
		msg[i] ^= 1
		flipped := c.Sum(msg)
		msg[i] ^= 1
		return orig != flipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Verify(msg, Sum(msg)) always holds.
func TestPropertyRoundTrip(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte) bool {
		m := c.Sum(msg)
		return c.Verify(msg, m[:]) && c.Verify29(msg, c.Sum29(msg)) && c.Verify32(msg, c.Sum32(msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages differing only in length (prefix) have different MACs
// (padding domain separation).
func TestPropertyPrefixDistinct(t *testing.T) {
	c, _ := New(rfcKey)
	f := func(msg []byte) bool {
		if len(msg) == 0 {
			return true
		}
		return c.Sum(msg) != c.Sum(msg[:len(msg)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSum21B(b *testing.B) {
	// 21 bytes is the IPv4 msg size (§V-E).
	c, _ := New(rfcKey)
	msg := make([]byte, 21)
	b.SetBytes(21)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}

func BenchmarkSum40B(b *testing.B) {
	// 40 bytes is the IPv6 msg size (src 16 + dst 16 + 8 payload).
	c, _ := New(rfcKey)
	msg := make([]byte, 40)
	b.SetBytes(40)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}

func BenchmarkSum1500B(b *testing.B) {
	c, _ := New(rfcKey)
	msg := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		c.Sum(msg)
	}
}
