package cmac_test

import (
	"fmt"

	"discs/internal/cmac"
)

// Stamp and verify a DISCS IPv4 mark: the 29-bit truncation of the
// AES-CMAC over the packet's immutable fields.
func Example() {
	key := make([]byte, cmac.KeySize) // negotiated per peer pair (§IV-D)
	c, err := cmac.New(key)
	if err != nil {
		panic(err)
	}
	msg := []byte("21-byte IPv4 msg....!") // §V-E immutable fields
	mark := c.Sum29(msg)
	fmt.Println(c.Verify29(msg, mark))
	fmt.Println(c.Verify29([]byte("tampered msg........!"), mark))
	// Output:
	// true
	// false
}
