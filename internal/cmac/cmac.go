// Package cmac implements the AES-CMAC message authentication code
// defined in RFC 4493, the MAC generation algorithm used by the DISCS
// data plane (§V-D of the paper).
//
// DISCS stamps a truncated AES-CMAC of selected immutable packet fields
// into each outbound packet: 29 bits for IPv4 (IPID + Fragment Offset)
// and 32 bits for IPv6 (DISCS destination option). This package provides
// the full 128-bit CMAC plus the two truncations.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size used throughout DISCS.
const KeySize = 16

// rb is the constant from RFC 4493 §2.3 used in subkey generation.
const rb = 0x87

// CMAC computes AES-CMAC over msg with precomputed subkeys. Create one
// per key with New and reuse it; the struct is cheap but key expansion
// is not. A CMAC value is safe for concurrent use: Sum does not mutate
// receiver state.
type CMAC struct {
	block  cipher.Block
	k1, k2 [BlockSize]byte
}

// New creates a CMAC instance for a 16-byte AES-128 key.
func New(key []byte) (*CMAC, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cmac: key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	c := &CMAC{block: block}
	// Subkey generation (RFC 4493 §2.3): L = AES-128(K, 0^128);
	// K1 = L<<1 (xor Rb if msb(L)); K2 = K1<<1 (xor Rb if msb(K1)).
	var l [BlockSize]byte
	block.Encrypt(l[:], l[:])
	shiftLeft(&c.k1, &l)
	if l[0]&0x80 != 0 {
		c.k1[BlockSize-1] ^= rb
	}
	shiftLeft(&c.k2, &c.k1)
	if c.k1[0]&0x80 != 0 {
		c.k2[BlockSize-1] ^= rb
	}
	return c, nil
}

// shiftLeft sets dst = src << 1 (128-bit big-endian shift).
func shiftLeft(dst, src *[BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		dst[i] = src[i]<<1 | carry
		carry = src[i] >> 7
	}
}

// Scratch holds the chaining buffers one CMAC computation needs. The
// buffers are passed to cipher.Block.Encrypt, an interface call, so
// stack-allocated arrays would escape and cost two heap allocations per
// MAC; a Scratch lets callers hoist that out of the per-packet path. A
// Scratch is reusable across keys and messages but must not be shared
// by concurrent computations. The zero value is ready to use.
type Scratch struct {
	x, y [BlockSize]byte
}

// scratchPool backs the convenience methods (Sum, Sum29, ...) so they
// stay allocation-free in steady state without forcing every caller to
// manage a Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Sum computes the 16-byte AES-CMAC of msg.
func (c *CMAC) Sum(msg []byte) [BlockSize]byte {
	s := scratchPool.Get().(*Scratch)
	m := c.SumWith(msg, s)
	scratchPool.Put(s)
	return m
}

// SumWith computes the 16-byte AES-CMAC of msg using the caller's
// scratch buffers, performing no heap allocation.
func (c *CMAC) SumWith(msg []byte, s *Scratch) [BlockSize]byte {
	n := len(msg)
	nBlocks := (n + BlockSize - 1) / BlockSize
	complete := nBlocks > 0 && n%BlockSize == 0

	// Build the final block M_last.
	var last [BlockSize]byte
	if complete {
		copy(last[:], msg[(nBlocks-1)*BlockSize:])
		xorInto(&last, &c.k1)
	} else {
		if nBlocks == 0 {
			nBlocks = 1
		}
		rem := msg[(nBlocks-1)*BlockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80 // 10* padding
		xorInto(&last, &c.k2)
	}

	s.x = [BlockSize]byte{}
	for i := 0; i < nBlocks-1; i++ {
		xorBlock(&s.y, &s.x, msg[i*BlockSize:(i+1)*BlockSize])
		c.block.Encrypt(s.x[:], s.y[:])
	}
	xorBlock(&s.y, &s.x, last[:])
	c.block.Encrypt(s.x[:], s.y[:])
	return s.x
}

// xorBlock sets dst = a ^ b using two word-wide operations; the
// byte-wise loop showed up in data-plane profiles. Endianness is
// irrelevant for pure XOR.
func xorBlock(dst, a *[BlockSize]byte, b []byte) {
	x0 := binary.LittleEndian.Uint64(a[0:8]) ^ binary.LittleEndian.Uint64(b[0:8])
	x1 := binary.LittleEndian.Uint64(a[8:16]) ^ binary.LittleEndian.Uint64(b[8:16])
	binary.LittleEndian.PutUint64(dst[0:8], x0)
	binary.LittleEndian.PutUint64(dst[8:16], x1)
}

func xorInto(dst, src *[BlockSize]byte) {
	x0 := binary.LittleEndian.Uint64(dst[0:8]) ^ binary.LittleEndian.Uint64(src[0:8])
	x1 := binary.LittleEndian.Uint64(dst[8:16]) ^ binary.LittleEndian.Uint64(src[8:16])
	binary.LittleEndian.PutUint64(dst[0:8], x0)
	binary.LittleEndian.PutUint64(dst[8:16], x1)
}

// Verify reports whether mac equals the CMAC of msg, in constant time.
func (c *CMAC) Verify(msg, mac []byte) bool {
	want := c.Sum(msg)
	if len(mac) != BlockSize {
		return false
	}
	return subtle.ConstantTimeCompare(want[:], mac) == 1
}

// Sum29 computes the 29-bit truncation used for IPv4 stamping: the
// most-significant 29 bits of the CMAC, returned in the low bits of a
// uint32 (range [0, 2^29)).
func (c *CMAC) Sum29(msg []byte) uint32 {
	return c.Sum32(msg) >> 3
}

// Sum29With is Sum29 with caller-provided scratch buffers.
func (c *CMAC) Sum29With(msg []byte, s *Scratch) uint32 {
	return c.Sum32With(msg, s) >> 3
}

// Sum32 computes the 32-bit truncation used for IPv6 stamping: the
// most-significant 4 bytes of the CMAC.
func (c *CMAC) Sum32(msg []byte) uint32 {
	s := scratchPool.Get().(*Scratch)
	v := c.Sum32With(msg, s)
	scratchPool.Put(s)
	return v
}

// Sum32With is Sum32 with caller-provided scratch buffers.
func (c *CMAC) Sum32With(msg []byte, s *Scratch) uint32 {
	m := c.SumWith(msg, s)
	return uint32(m[0])<<24 | uint32(m[1])<<16 | uint32(m[2])<<8 | uint32(m[3])
}

// Verify29 reports whether mac29 matches the 29-bit truncated CMAC of
// msg. Note: truncated-MAC comparison is not constant time; the mark is
// a per-packet forgery deterrent (§VI-E1), not a long-term secret.
func (c *CMAC) Verify29(msg []byte, mac29 uint32) bool {
	return c.Sum29(msg) == mac29&(1<<29-1)
}

// Verify32 reports whether mac32 matches the 32-bit truncated CMAC.
func (c *CMAC) Verify32(msg []byte, mac32 uint32) bool {
	return c.Sum32(msg) == mac32
}
