// Package cmac implements the AES-CMAC message authentication code
// defined in RFC 4493, the MAC generation algorithm used by the DISCS
// data plane (§V-D of the paper).
//
// DISCS stamps a truncated AES-CMAC of selected immutable packet fields
// into each outbound packet: 29 bits for IPv4 (IPID + Fragment Offset)
// and 32 bits for IPv6 (DISCS destination option). This package provides
// the full 128-bit CMAC plus the two truncations.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size used throughout DISCS.
const KeySize = 16

// rb is the constant from RFC 4493 §2.3 used in subkey generation.
const rb = 0x87

// CMAC computes AES-CMAC over msg with precomputed subkeys. Create one
// per key with New and reuse it; the struct is cheap but key expansion
// is not. A CMAC value is safe for concurrent use: Sum does not mutate
// receiver state.
type CMAC struct {
	block  cipher.Block
	k1, k2 [BlockSize]byte
}

// New creates a CMAC instance for a 16-byte AES-128 key.
func New(key []byte) (*CMAC, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cmac: key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	c := &CMAC{block: block}
	// Subkey generation (RFC 4493 §2.3): L = AES-128(K, 0^128);
	// K1 = L<<1 (xor Rb if msb(L)); K2 = K1<<1 (xor Rb if msb(K1)).
	var l [BlockSize]byte
	block.Encrypt(l[:], l[:])
	shiftLeft(&c.k1, &l)
	if l[0]&0x80 != 0 {
		c.k1[BlockSize-1] ^= rb
	}
	shiftLeft(&c.k2, &c.k1)
	if c.k1[0]&0x80 != 0 {
		c.k2[BlockSize-1] ^= rb
	}
	return c, nil
}

// shiftLeft sets dst = src << 1 (128-bit big-endian shift).
func shiftLeft(dst, src *[BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		dst[i] = src[i]<<1 | carry
		carry = src[i] >> 7
	}
}

// Scratch holds the chaining buffers one CMAC computation needs. The
// buffers are passed to cipher.Block.Encrypt, an interface call, so
// stack-allocated arrays would escape and cost two heap allocations per
// MAC; a Scratch lets callers hoist that out of the per-packet path. A
// Scratch is reusable across keys and messages but must not be shared
// by concurrent computations. The zero value is ready to use.
type Scratch struct {
	x, y [BlockSize]byte
}

// scratchPool backs the convenience methods (Sum, Sum29, ...) so they
// stay allocation-free in steady state without forcing every caller to
// manage a Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Sum computes the 16-byte AES-CMAC of msg.
func (c *CMAC) Sum(msg []byte) [BlockSize]byte {
	s := scratchPool.Get().(*Scratch)
	m := c.SumWith(msg, s)
	scratchPool.Put(s)
	return m
}

// SumWith computes the 16-byte AES-CMAC of msg using the caller's
// scratch buffers, performing no heap allocation.
func (c *CMAC) SumWith(msg []byte, s *Scratch) [BlockSize]byte {
	return c.SumCached(msg, s, nil)
}

// SumCached is SumWith with an optional first-block cache. For messages
// of two or more blocks the first chained encryption E_K(M1) depends
// only on the key and the leading 16 message bytes; when bc is non-nil
// that value is looked up (and on miss, filled) in bc, saving one AES
// round per MAC for workloads where the leading block repeats — in
// DISCS the first block of a mark message holds header fields shared by
// every packet of a flow. A nil bc computes everything directly.
func (c *CMAC) SumCached(msg []byte, s *Scratch, bc *BlockCache) [BlockSize]byte {
	n := len(msg)
	nBlocks := (n + BlockSize - 1) / BlockSize
	complete := nBlocks > 0 && n%BlockSize == 0

	// Build the final block M_last.
	var last [BlockSize]byte
	if complete {
		copy(last[:], msg[(nBlocks-1)*BlockSize:])
		xorInto(&last, &c.k1)
	} else {
		if nBlocks == 0 {
			nBlocks = 1
		}
		rem := msg[(nBlocks-1)*BlockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80 // 10* padding
		xorInto(&last, &c.k2)
	}

	if nBlocks >= 2 {
		// First chained block: X1 = E_K(M1), cacheable.
		copy(s.y[:], msg[:BlockSize])
		c.firstBlock(&s.y, &s.x, bc)
		for i := 1; i < nBlocks-1; i++ {
			xorBlock(&s.y, &s.x, msg[i*BlockSize:(i+1)*BlockSize])
			c.block.Encrypt(s.x[:], s.y[:])
		}
	} else {
		s.x = [BlockSize]byte{}
	}
	xorBlock(&s.y, &s.x, last[:])
	c.block.Encrypt(s.x[:], s.y[:])
	return s.x
}

// xorBlock sets dst = a ^ b using two word-wide operations; the
// byte-wise loop showed up in data-plane profiles. Endianness is
// irrelevant for pure XOR.
func xorBlock(dst, a *[BlockSize]byte, b []byte) {
	x0 := binary.LittleEndian.Uint64(a[0:8]) ^ binary.LittleEndian.Uint64(b[0:8])
	x1 := binary.LittleEndian.Uint64(a[8:16]) ^ binary.LittleEndian.Uint64(b[8:16])
	binary.LittleEndian.PutUint64(dst[0:8], x0)
	binary.LittleEndian.PutUint64(dst[8:16], x1)
}

func xorInto(dst, src *[BlockSize]byte) {
	x0 := binary.LittleEndian.Uint64(dst[0:8]) ^ binary.LittleEndian.Uint64(src[0:8])
	x1 := binary.LittleEndian.Uint64(dst[8:16]) ^ binary.LittleEndian.Uint64(src[8:16])
	binary.LittleEndian.PutUint64(dst[0:8], x0)
	binary.LittleEndian.PutUint64(dst[8:16], x1)
}

// Verify reports whether mac equals the CMAC of msg, in constant time.
// A mac of the wrong length is rejected before any AES work is done;
// the constant-time property only matters for well-formed candidates.
func (c *CMAC) Verify(msg, mac []byte) bool {
	if len(mac) != BlockSize {
		return false
	}
	want := c.Sum(msg)
	return subtle.ConstantTimeCompare(want[:], mac) == 1
}

// blockCacheSize is the number of direct-mapped BlockCache slots. At 40
// bytes per entry the whole cache is ~10 KiB — resident in L1/L2 for a
// pinned data-plane worker.
const blockCacheSize = 256

type blockCacheEntry struct {
	key *CMAC
	blk [BlockSize]byte
	enc [BlockSize]byte
}

// BlockCache is a direct-mapped cache of first-block encryptions
// E_K(M1), keyed by (CMAC instance, plaintext block). It exploits the
// structure of DISCS mark messages: the leading 16 bytes carry header
// fields that repeat across the packets of a flow, so in steady state
// the first of the two AES rounds per mark can be skipped entirely.
//
// Entries are tagged with the *CMAC pointer, so key rotation
// invalidates naturally: a new key table snapshot carries new CMAC
// instances and their lookups simply miss. A BlockCache must not be
// shared by concurrent computations; give each data-plane worker its
// own (core.BurstPipeline does this). The zero value is ready to use.
type BlockCache struct {
	entries      [blockCacheSize]blockCacheEntry
	hits, misses uint64
}

// Hits returns the number of cache hits since the last Reset.
func (bc *BlockCache) Hits() uint64 { return bc.hits }

// Misses returns the number of cache misses since the last Reset.
func (bc *BlockCache) Misses() uint64 { return bc.misses }

// Reset clears all entries and counters.
func (bc *BlockCache) Reset() { *bc = BlockCache{} }

// blockSlot hashes a plaintext block to a cache slot.
func blockSlot(b *[BlockSize]byte) uint32 {
	h := binary.LittleEndian.Uint64(b[0:8]) ^ binary.LittleEndian.Uint64(b[8:16])*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return uint32(h>>32) & (blockCacheSize - 1)
}

// firstBlock sets *dst = E_K(*src), consulting bc when non-nil. src and
// dst must be scratch-owned buffers (they are passed to cipher.Block
// methods and would otherwise escape).
func (c *CMAC) firstBlock(src, dst *[BlockSize]byte, bc *BlockCache) {
	if bc == nil {
		c.block.Encrypt(dst[:], src[:])
		return
	}
	e := &bc.entries[blockSlot(src)]
	if e.key == c && e.blk == *src {
		bc.hits++
		*dst = e.enc
		return
	}
	bc.misses++
	c.block.Encrypt(dst[:], src[:])
	e.key, e.blk, e.enc = c, *src, *dst
}

// BurstLanes is the number of independent CMAC chains SumBurst keeps in
// flight at once. AES-NI encrypt has multi-cycle latency but per-cycle
// throughput; eight independent chains are enough to cover the latency
// of one AESENC sequence on current x86 and arm64 cores.
const BurstLanes = 8

// BurstScratch holds the per-lane chaining buffers for SumBurst29/32.
// Like Scratch it exists to keep the buffers heap-resident but
// allocation-free in steady state; it must not be shared by concurrent
// bursts. The zero value is ready to use.
type BurstScratch struct {
	x, y [BurstLanes][BlockSize]byte
}

// SumBurst32 computes the 32-bit truncated CMAC of n = len(out)
// equal-length messages packed back-to-back in flat (message i occupies
// flat[i*msgLen:(i+1)*msgLen]), writing the results to out. The
// messages are independent, so their block encryptions are interleaved
// across up to BurstLanes lanes: all first blocks, then each interior
// block index across lanes, then all final blocks. Consecutive Encrypt
// calls therefore never depend on each other and the AES unit stays
// full instead of stalling on the serial CBC-MAC chain of a single
// message. bc, when non-nil, serves first-block encryptions for
// messages of two or more blocks (see BlockCache).
//
// Results are bit-identical to calling Sum32 per message.
func (c *CMAC) SumBurst32(flat []byte, msgLen int, out []uint32, bs *BurstScratch, bc *BlockCache) {
	n := len(out)
	if msgLen <= 0 {
		panic("cmac: SumBurst32 msgLen must be positive")
	}
	if len(flat) < n*msgLen {
		panic("cmac: SumBurst32 flat shorter than len(out)*msgLen")
	}
	nBlocks := (msgLen + BlockSize - 1) / BlockSize
	complete := msgLen%BlockSize == 0
	if nBlocks < 2 {
		// Single-block messages: the only AES round already folds in
		// the subkey, so there is no shared prefix to cache and no
		// chain to overlap. Process serially through lane 0.
		for i := 0; i < n; i++ {
			rem := flat[i*msgLen : (i+1)*msgLen]
			var last [BlockSize]byte
			copy(last[:], rem)
			if complete {
				xorInto(&last, &c.k1)
			} else {
				last[msgLen] = 0x80
				xorInto(&last, &c.k2)
			}
			bs.y[0] = last
			c.block.Encrypt(bs.x[0][:], bs.y[0][:])
			out[i] = mac32(&bs.x[0])
		}
		return
	}
	lastOff := (nBlocks - 1) * BlockSize
	for base := 0; base < n; base += BurstLanes {
		m := n - base
		if m > BurstLanes {
			m = BurstLanes
		}
		// Phase 1: first blocks, X1 = E_K(M1) per lane.
		for j := 0; j < m; j++ {
			msg := flat[(base+j)*msgLen:]
			copy(bs.y[j][:], msg[:BlockSize])
			c.firstBlock(&bs.y[j], &bs.x[j], bc)
		}
		// Phase 2: interior blocks, one block index across all lanes
		// before advancing, so adjacent encryptions are independent.
		for b := 1; b < nBlocks-1; b++ {
			off := b * BlockSize
			for j := 0; j < m; j++ {
				msg := flat[(base+j)*msgLen:]
				xorBlock(&bs.y[j], &bs.x[j], msg[off:off+BlockSize])
				c.block.Encrypt(bs.x[j][:], bs.y[j][:])
			}
		}
		// Phase 3: fold the subkeyed final block per lane, then run
		// the closing encryptions back to back.
		for j := 0; j < m; j++ {
			rem := flat[(base+j)*msgLen+lastOff : (base+j+1)*msgLen]
			var last [BlockSize]byte
			copy(last[:], rem)
			if complete {
				xorInto(&last, &c.k1)
			} else {
				last[len(rem)] = 0x80
				xorInto(&last, &c.k2)
			}
			xorBlock(&bs.y[j], &bs.x[j], last[:])
		}
		for j := 0; j < m; j++ {
			c.block.Encrypt(bs.x[j][:], bs.y[j][:])
		}
		for j := 0; j < m; j++ {
			out[base+j] = mac32(&bs.x[j])
		}
	}
}

// SumBurst29 is SumBurst32 truncated to the 29-bit IPv4 mark width.
func (c *CMAC) SumBurst29(flat []byte, msgLen int, out []uint32, bs *BurstScratch, bc *BlockCache) {
	c.SumBurst32(flat, msgLen, out, bs, bc)
	for i := range out {
		out[i] >>= 3
	}
}

// Sum29 computes the 29-bit truncation used for IPv4 stamping: the
// most-significant 29 bits of the CMAC, returned in the low bits of a
// uint32 (range [0, 2^29)).
func (c *CMAC) Sum29(msg []byte) uint32 {
	return c.Sum32(msg) >> 3
}

// Sum29With is Sum29 with caller-provided scratch buffers.
func (c *CMAC) Sum29With(msg []byte, s *Scratch) uint32 {
	return c.Sum32With(msg, s) >> 3
}

// Sum32 computes the 32-bit truncation used for IPv6 stamping: the
// most-significant 4 bytes of the CMAC.
func (c *CMAC) Sum32(msg []byte) uint32 {
	s := scratchPool.Get().(*Scratch)
	v := c.Sum32With(msg, s)
	scratchPool.Put(s)
	return v
}

// Sum32With is Sum32 with caller-provided scratch buffers.
func (c *CMAC) Sum32With(msg []byte, s *Scratch) uint32 {
	m := c.SumWith(msg, s)
	return mac32(&m)
}

// Sum29Cached is Sum29With with an optional first-block cache.
func (c *CMAC) Sum29Cached(msg []byte, s *Scratch, bc *BlockCache) uint32 {
	return c.Sum32Cached(msg, s, bc) >> 3
}

// Sum32Cached is Sum32With with an optional first-block cache.
func (c *CMAC) Sum32Cached(msg []byte, s *Scratch, bc *BlockCache) uint32 {
	m := c.SumCached(msg, s, bc)
	return mac32(&m)
}

// mac32 extracts the 32-bit truncation (big-endian leading 4 bytes).
func mac32(m *[BlockSize]byte) uint32 {
	return uint32(m[0])<<24 | uint32(m[1])<<16 | uint32(m[2])<<8 | uint32(m[3])
}

// Verify29 reports whether mac29 matches the 29-bit truncated CMAC of
// msg. Note: truncated-MAC comparison is not constant time; the mark is
// a per-packet forgery deterrent (§VI-E1), not a long-term secret.
func (c *CMAC) Verify29(msg []byte, mac29 uint32) bool {
	return c.Sum29(msg) == mac29&(1<<29-1)
}

// Verify32 reports whether mac32 matches the 32-bit truncated CMAC.
func (c *CMAC) Verify32(msg []byte, mac32 uint32) bool {
	return c.Sum32(msg) == mac32
}
