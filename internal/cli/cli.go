// Package cli holds the flag and output plumbing shared by the cmd/
// binaries: logger setup, the synthetic-Internet flag block, markdown
// table rendering, and views over the observability export that
// discs-sim writes (see internal/obs).
package cli

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sort"
	"strings"

	"discs/internal/obs"
	"discs/internal/topology"
)

// Init configures the standard logger the way every discs binary does:
// no timestamps, the binary's name as prefix.
func Init(name string) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
}

// TopoFlags is the flag block shared by every binary that generates a
// synthetic Internet: -ases, -prefixes, -zipf and -seed.
type TopoFlags struct {
	ASes     int
	Prefixes int
	Zipf     float64
	Seed     int64
}

// RegisterTopoFlags installs the shared topology flags on the default
// flag set, with defaults taken from base.
func RegisterTopoFlags(base topology.GenConfig) *TopoFlags {
	tf := &TopoFlags{}
	flag.IntVar(&tf.ASes, "ases", base.NumASes, "number of ASes in the synthetic Internet")
	flag.IntVar(&tf.Prefixes, "prefixes", base.NumPrefixes, "target number of routable prefixes")
	flag.Float64Var(&tf.Zipf, "zipf", base.ZipfExponent, "Zipf exponent of the AS size distribution")
	flag.Int64Var(&tf.Seed, "seed", base.Seed, "generator seed")
	return tf
}

// Config overlays the parsed flag values onto base, leaving every
// other generator knob (tier-1 count, head/tail shape, SkipLinks)
// as the caller set it.
func (tf *TopoFlags) Config(base topology.GenConfig) topology.GenConfig {
	base.NumASes = tf.ASes
	base.NumPrefixes = tf.Prefixes
	base.ZipfExponent = tf.Zipf
	base.Seed = tf.Seed
	return base
}

// Build generates the synthetic Internet described by the parsed flags
// overlaid on base.
func (tf *TopoFlags) Build(base topology.GenConfig) (*topology.Topology, error) {
	return topology.GenerateInternet(tf.Config(base))
}

// ConfigSet overlays only the topology flags the user explicitly set
// on the command line onto base, leaving everything else — including
// the four flagged knobs at their base values — untouched. Mode flags
// like discs-sim -paper use this: the mode picks its own defaults
// (DefaultGenConfig) and an explicit -ases/-seed still wins.
func (tf *TopoFlags) ConfigSet(base topology.GenConfig) topology.GenConfig {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ases":
			base.NumASes = tf.ASes
		case "prefixes":
			base.NumPrefixes = tf.Prefixes
		case "zipf":
			base.ZipfExponent = tf.Zipf
		case "seed":
			base.Seed = tf.Seed
		}
	})
	return base
}

// Table accumulates rows and renders a GitHub-markdown table — the
// output format of discs-report.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// Row appends one row; missing cells render empty.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(t.headers))
		copy(cells, row)
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Seconds converts a simulated-time stamp (nanoseconds) to seconds.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }

// AggregateScopes folds per-AS scoped counters ("as7.ctrl.msgs_sent")
// into fleet-wide totals keyed by the bare metric name ("ctrl.msgs_sent"),
// leaving unscoped names (netsim.*) untouched. Gauges aggregate the
// same way. The result is the fleet view discs-report renders.
func AggregateScopes(s obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		AtNanos:  s.AtNanos,
		Counters: make(map[string]uint64, len(s.Counters)),
	}
	for name, v := range s.Counters {
		out.Counters[stripScope(name)] += v
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[stripScope(name)] += v
		}
	}
	return out
}

// stripScope removes a leading "as<digits>." scope, if present.
func stripScope(name string) string {
	if !strings.HasPrefix(name, "as") {
		return name
	}
	rest := name[2:]
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return name
	}
	for _, c := range rest[:dot] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return rest[dot+1:]
}

// WriteSeriesTSV renders the recorded time series as TSV: a t_s column
// followed by one column per requested metric. Each row is the
// per-interval delta (the first row is since the start), with scoped
// counters summed fleet-wide, so the columns read as rates.
func WriteSeriesTSV(w io.Writer, points []obs.Snapshot, cols []string) error {
	if _, err := fmt.Fprintf(w, "t_s\t%s\n", strings.Join(cols, "\t")); err != nil {
		return err
	}
	var prev obs.Snapshot
	for _, p := range points {
		d := p.Delta(prev)
		cells := make([]string, 0, len(cols)+1)
		cells = append(cells, fmt.Sprintf("%.3f", Seconds(p.AtNanos)))
		for _, c := range cols {
			cells = append(cells, fmt.Sprintf("%d", d.Sum(c)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
		prev = p
	}
	return nil
}

// KindCount is one entry of an event-kind tally.
type KindCount struct {
	Kind string
	N    int
}

// EventCounts tallies events by kind, sorted by kind name for
// deterministic output.
func EventCounts(events []obs.Event) []KindCount {
	m := make(map[string]int)
	for _, e := range events {
		m[e.Kind]++
	}
	out := make([]KindCount, 0, len(m))
	for k, n := range m {
		out = append(out, KindCount{Kind: k, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
