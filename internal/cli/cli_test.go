package cli

import (
	"strings"
	"testing"

	"discs/internal/obs"
)

func TestStripScope(t *testing.T) {
	cases := map[string]string{
		"as7.ctrl.msgs_sent":      "ctrl.msgs_sent",
		"as1001.router.in_cached": "router.in_cached",
		"netsim.delivered":        "netsim.delivered",
		"asX.ctrl.msgs_sent":      "asX.ctrl.msgs_sent", // not a numeric scope
		"as.ctrl.msgs_sent":       "as.ctrl.msgs_sent",
		"assorted.thing":          "assorted.thing",
	}
	for in, want := range cases {
		if got := stripScope(in); got != want {
			t.Errorf("stripScope(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAggregateScopes(t *testing.T) {
	s := obs.Snapshot{
		AtNanos: 42,
		Counters: map[string]uint64{
			"as1.router.out_processed": 3,
			"as2.router.out_processed": 4,
			"netsim.delivered":         9,
		},
		Gauges: map[string]int64{
			"as1.ctrl.peers_established": 2,
			"as2.ctrl.peers_established": 1,
		},
	}
	agg := AggregateScopes(s)
	if agg.AtNanos != 42 {
		t.Fatalf("timestamp not carried: %d", agg.AtNanos)
	}
	if got := agg.Get("router.out_processed"); got != 7 {
		t.Fatalf("aggregated counter = %d, want 7", got)
	}
	if got := agg.Get("netsim.delivered"); got != 9 {
		t.Fatalf("unscoped counter = %d, want 9", got)
	}
	if got := agg.GetGauge("ctrl.peers_established"); got != 3 {
		t.Fatalf("aggregated gauge = %d, want 3", got)
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	points := []obs.Snapshot{
		{AtNanos: 1e9, Counters: map[string]uint64{"as1.x.n": 2, "as2.x.n": 1}},
		{AtNanos: 2e9, Counters: map[string]uint64{"as1.x.n": 5, "as2.x.n": 1}},
	}
	var b strings.Builder
	if err := WriteSeriesTSV(&b, points, []string{"x.n"}); err != nil {
		t.Fatal(err)
	}
	want := "t_s\tx.n\n1.000\t3\n2.000\t3\n"
	if b.String() != want {
		t.Fatalf("series:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("A", "B")
	tb.Row("1", "2")
	tb.Row("only") // short row pads
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	want := "| A | B |\n|---|---|\n| 1 | 2 |\n| only |  |\n"
	if b.String() != want {
		t.Fatalf("table:\n%q\nwant:\n%q", b.String(), want)
	}
}
