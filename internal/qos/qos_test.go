package qos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFluidUnderload(t *testing.T) {
	res := Fluid(1000, FluidDemand{High, 300}, FluidDemand{Low, 400})
	if res.Served[High] != 300 || res.Served[Low] != 400 {
		t.Fatalf("served = %v", res.Served)
	}
	if res.LossRate[High] != 0 || res.LossRate[Low] != 0 {
		t.Fatalf("loss = %v", res.LossRate)
	}
}

func TestFluidOverloadProtectsHigh(t *testing.T) {
	// 10× overload from low-priority attack traffic: high still gets
	// everything, low eats the entire loss.
	res := Fluid(1000, FluidDemand{High, 500}, FluidDemand{Low, 10_000})
	if res.Served[High] != 500 {
		t.Fatalf("high served = %v", res.Served[High])
	}
	if res.Served[Low] != 500 {
		t.Fatalf("low served = %v", res.Served[Low])
	}
	if res.LossRate[Low] != 0.95 {
		t.Fatalf("low loss = %v", res.LossRate[Low])
	}
}

func TestFluidHighOverload(t *testing.T) {
	res := Fluid(1000, FluidDemand{High, 2000}, FluidDemand{Low, 100})
	if res.Served[High] != 1000 || res.Served[Low] != 0 {
		t.Fatalf("served = %v", res.Served)
	}
	if res.LossRate[High] != 0.5 || res.LossRate[Low] != 1 {
		t.Fatalf("loss = %v", res.LossRate)
	}
}

func TestFluidIgnoresBadDemands(t *testing.T) {
	res := Fluid(100, FluidDemand{Class(9), 50}, FluidDemand{High, -5})
	if res.Served[High] != 0 || res.Served[Low] != 0 {
		t.Fatalf("served = %v", res.Served)
	}
}

// trace builds a uniform arrival trace for a class.
func trace(class Class, pps float64, dur time.Duration, idBase int) []Packet {
	n := int(pps * dur.Seconds())
	out := make([]Packet, n)
	gap := time.Duration(float64(time.Second) / pps)
	for i := range out {
		out[i] = Packet{Arrival: time.Duration(i) * gap, Class: class, ID: idBase + i}
	}
	return out
}

func merge(traces ...[]Packet) []Packet {
	var out []Packet
	for _, tr := range traces {
		out = append(out, tr...)
	}
	return out
}

func TestQueueUnderloadDeliversAll(t *testing.T) {
	q := Queue{ServicePPS: 1000, BufferPerClass: 64}
	pkts := merge(trace(High, 200, time.Second, 0), trace(Low, 300, time.Second, 10_000))
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(out)
	if s.Dropped[High] != 0 || s.Dropped[Low] != 0 {
		t.Fatalf("drops under load 0.5: %+v", s)
	}
	// FIFO departures strictly ordered and spaced ≥ service time.
	for _, o := range out {
		if !o.Dropped && o.Departed < o.Packet.Arrival {
			t.Fatal("departure before arrival")
		}
	}
}

func TestQueueOverloadStrictPriority(t *testing.T) {
	// Attack: low-class flood at 10× capacity; legit high class at 30%
	// of capacity. High goodput must stay ≈1, low takes all the loss.
	q := Queue{ServicePPS: 1000, BufferPerClass: 32}
	pkts := merge(
		trace(High, 300, time.Second, 0),
		trace(Low, 10_000, time.Second, 100_000),
	)
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(out)
	if g := s.GoodputRate(High); g < 0.99 {
		t.Fatalf("high goodput = %v under low-class flood", g)
	}
	if g := s.GoodputRate(Low); g > 0.15 {
		t.Fatalf("low goodput = %v, should be starved to ≈0.1", g)
	}
}

// TestQueueNoClassificationBaseline models MEF's situation: the victim
// cannot classify, so attack and legit traffic share one class — and
// legit goodput collapses to ≈ capacity/offered.
func TestQueueNoClassificationBaseline(t *testing.T) {
	q := Queue{ServicePPS: 1000, BufferPerClass: 32}
	pkts := merge(
		trace(Low, 300, time.Second, 0),          // "legit" but unclassifiable
		trace(Low, 10_000, time.Second, 100_000), // attack
	)
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(out)
	// Total goodput bounded by capacity/offered ≈ 1000/10300.
	if g := s.GoodputRate(Low); g > 0.2 {
		t.Fatalf("unclassified goodput = %v, want ≈0.1", g)
	}
}

func TestQueueConservation(t *testing.T) {
	q := Queue{ServicePPS: 500, BufferPerClass: 8}
	rng := rand.New(rand.NewSource(1))
	pkts := make([]Packet, 2000)
	for i := range pkts {
		pkts[i] = Packet{
			Arrival: time.Duration(rng.Int63n(int64(time.Second))),
			Class:   Class(rng.Intn(2)),
			ID:      i,
		}
	}
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pkts) {
		t.Fatalf("outcomes = %d", len(out))
	}
	s := Summarize(out)
	total := s.Delivered[High] + s.Delivered[Low] + s.Dropped[High] + s.Dropped[Low]
	if total != len(pkts) {
		t.Fatalf("conservation violated: %d != %d", total, len(pkts))
	}
}

func TestQueueServiceRate(t *testing.T) {
	// Served packets cannot exceed capacity × makespan.
	q := Queue{ServicePPS: 100, BufferPerClass: 1000}
	pkts := trace(High, 1000, time.Second, 0) // 10× burst, big buffer
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	var lastDepart time.Duration
	delivered := 0
	for _, o := range out {
		if !o.Dropped {
			delivered++
			if o.Departed > lastDepart {
				lastDepart = o.Departed
			}
		}
	}
	maxServed := int(lastDepart.Seconds()*q.ServicePPS) + 1
	if delivered > maxServed {
		t.Fatalf("delivered %d > capacity bound %d", delivered, maxServed)
	}
}

func TestQueueValidation(t *testing.T) {
	if _, err := (Queue{ServicePPS: 0, BufferPerClass: 1}).Run(nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := (Queue{ServicePPS: 1, BufferPerClass: 0}).Run(nil); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := (Queue{ServicePPS: 1, BufferPerClass: 1}).Run([]Packet{{Class: Class(7)}}); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestQueueEmptyTrace(t *testing.T) {
	out, err := (Queue{ServicePPS: 1, BufferPerClass: 1}).Run(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty trace: %v %v", out, err)
	}
}

// Property: high-class goodput under a low-class flood is always ≥ the
// goodput it would get without classification, for random loads.
func TestPropertyClassificationNeverHurts(t *testing.T) {
	f := func(seed int64, legitPermil, attackX uint8) bool {
		legitPPS := 50 + float64(legitPermil)            // 50..305
		attackPPS := 1000 + float64(attackX)*50          // 1000..13750
		q := Queue{ServicePPS: 1000, BufferPerClass: 16} // capacity 1000

		legit := trace(High, legitPPS, 500*time.Millisecond, 0)
		att := trace(Low, attackPPS, 500*time.Millisecond, 1_000_000)
		out, err := q.Run(merge(legit, att))
		if err != nil {
			return false
		}
		withClass := Summarize(out).GoodputRate(High)

		// Same trace, no classification: everything Low.
		var flat []Packet
		for _, p := range merge(legit, att) {
			p.Class = Low
			flat = append(flat, p)
		}
		out2, err := q.Run(flat)
		if err != nil {
			return false
		}
		// Goodput of the legit subset without classification.
		legitIDs := map[int]bool{}
		for _, p := range legit {
			legitIDs[p.ID] = true
		}
		deliv, offered := 0, 0
		for _, o := range out2 {
			if legitIDs[o.Packet.ID] {
				offered++
				if !o.Dropped {
					deliv++
				}
			}
		}
		without := float64(deliv) / float64(offered)
		return withClass >= without-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndStrings(t *testing.T) {
	if High.String() != "high" || Low.String() != "low" {
		t.Fatal("class strings")
	}
	s := Stats{}
	if s.GoodputRate(High) != 1 {
		t.Fatal("empty goodput should be 1")
	}
}
