package qos

import "discs/internal/core"

// ClassOf maps a DISCS data-plane verdict to a queue class: packets
// whose marks verified are provably from collaborator ASes and go to
// the high-priority queue; everything else the victim cannot vouch for
// is low priority. Dropped packets never reach the queue (callers
// should filter them first); they map to Low defensively.
//
// This is the §I capability MEF lacks: because MEF's egress filtering
// leaves no evidence in the packet, an MEF victim must treat all
// inbound traffic as one class.
func ClassOf(v core.Verdict) Class {
	if v == core.VerdictPassVerified {
		return High
	}
	return Low
}
