// Package qos implements the prioritized-queue enforcement that DISCS
// enables at a victim's overwhelmed uplink.
//
// §I of the paper points out MEF's intrinsic limitation: "the victim
// AS cannot determine whether an inbound packet is spoofed or not no
// matter what source address it carries, so it cannot enforce
// prioritized queues in case the bandwidth is overwhelmed." DISCS's
// CDP verification *does* classify inbound packets — verified marks
// are provably from collaborators — so the victim border can map
// verified traffic to a high-priority queue and unverifiable traffic
// to a low-priority one, keeping collaborator goodput near 100% even
// under severe overload.
//
// The package provides two models:
//
//   - a fluid (rate-based) strict-priority model for analytic results
//     and the ablation bench, and
//   - a packet-level strict-priority queue with finite buffers and
//     drop-tail behavior, driven by (arrival-time, class) events.
package qos

import (
	"container/heap"
	"fmt"
	"time"
)

// Class is a queue priority class.
type Class int

const (
	// High is the verified/collaborator class.
	High Class = iota
	// Low is the unverifiable class.
	Low
	numClasses
)

func (c Class) String() string {
	switch c {
	case High:
		return "high"
	case Low:
		return "low"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// FluidDemand is the offered load of one class in packets/second.
type FluidDemand struct {
	Class Class
	PPS   float64
}

// FluidResult reports the served rate per class under strict priority.
type FluidResult struct {
	Served [numClasses]float64
	// LossRate per class: fraction of offered load dropped.
	LossRate [numClasses]float64
}

// Fluid evaluates a strict-priority server of the given capacity
// (packets/second) against per-class offered loads: High is served
// first, Low gets the remainder.
func Fluid(capacityPPS float64, demands ...FluidDemand) FluidResult {
	var offered [numClasses]float64
	for _, d := range demands {
		if d.Class >= 0 && d.Class < numClasses && d.PPS > 0 {
			offered[d.Class] += d.PPS
		}
	}
	var res FluidResult
	remaining := capacityPPS
	for c := Class(0); c < numClasses; c++ {
		served := offered[c]
		if served > remaining {
			served = remaining
		}
		res.Served[c] = served
		remaining -= served
		if offered[c] > 0 {
			res.LossRate[c] = 1 - served/offered[c]
		}
	}
	return res
}

// Packet is one arrival at the queue.
type Packet struct {
	Arrival time.Duration
	Class   Class
	// ID lets callers correlate outcomes; opaque to the queue.
	ID int
}

// Outcome is the fate of one packet.
type Outcome struct {
	Packet   Packet
	Dropped  bool
	Departed time.Duration // service completion time (if not dropped)
}

// Queue is a strict-priority, drop-tail queue with one buffer per
// class, served at a fixed packet rate.
type Queue struct {
	// ServicePPS is the drain rate in packets/second.
	ServicePPS float64
	// BufferPerClass is the per-class buffer capacity in packets.
	BufferPerClass int
}

// arrivalHeap orders packets by arrival time (stable by ID).
type arrivalHeap []Packet

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].ID < h[j].ID
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(Packet)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// Run simulates the queue over the packet trace and returns one
// outcome per packet (same order as input). The simulation is a
// two-event loop (arrival, service completion) over a single
// work-conserving server: at each completion the head of the
// highest-priority non-empty buffer enters service.
func (q Queue) Run(packets []Packet) ([]Outcome, error) {
	if q.ServicePPS <= 0 {
		return nil, fmt.Errorf("qos: non-positive service rate %v", q.ServicePPS)
	}
	if q.BufferPerClass <= 0 {
		return nil, fmt.Errorf("qos: non-positive buffer %d", q.BufferPerClass)
	}
	serviceTime := time.Duration(float64(time.Second) / q.ServicePPS)

	arrivals := make(arrivalHeap, 0, len(packets))
	for _, p := range packets {
		if p.Class < 0 || p.Class >= numClasses {
			return nil, fmt.Errorf("qos: bad class %d", p.Class)
		}
		arrivals = append(arrivals, p)
	}
	heap.Init(&arrivals)

	outcomes := make(map[int]Outcome, len(packets))
	var buffers [numClasses][]Packet
	busy := false
	var busyUntil time.Duration

	// startService admits a packet to the server at time `at`.
	startService := func(p Packet, at time.Duration) {
		busy = true
		busyUntil = at + serviceTime
		outcomes[p.ID] = Outcome{Packet: p, Departed: busyUntil}
	}
	// dequeue pops the highest-priority buffered packet.
	dequeue := func() (Packet, bool) {
		for c := Class(0); c < numClasses; c++ {
			if len(buffers[c]) > 0 {
				p := buffers[c][0]
				buffers[c] = buffers[c][1:]
				return p, true
			}
		}
		return Packet{}, false
	}

	for {
		// Service completion is the next event when it precedes (or
		// ties with) the next arrival.
		if busy && (arrivals.Len() == 0 || busyUntil <= arrivals[0].Arrival) {
			busy = false
			if p, ok := dequeue(); ok {
				startService(p, busyUntil)
			}
			continue
		}
		if arrivals.Len() == 0 {
			break
		}
		p := heap.Pop(&arrivals).(Packet)
		switch {
		case !busy:
			startService(p, p.Arrival)
		case len(buffers[p.Class]) >= q.BufferPerClass:
			outcomes[p.ID] = Outcome{Packet: p, Dropped: true}
		default:
			buffers[p.Class] = append(buffers[p.Class], p)
		}
	}

	out := make([]Outcome, len(packets))
	for i, p := range packets {
		o, ok := outcomes[p.ID]
		if !ok {
			return nil, fmt.Errorf("qos: packet %d lost by simulator (duplicate ID?)", p.ID)
		}
		out[i] = o
	}
	return out, nil
}

// Stats summarizes outcomes per class.
type Stats struct {
	Offered   [numClasses]int
	Delivered [numClasses]int
	Dropped   [numClasses]int
}

// Summarize tallies outcomes.
func Summarize(outcomes []Outcome) Stats {
	var s Stats
	for _, o := range outcomes {
		c := o.Packet.Class
		s.Offered[c]++
		if o.Dropped {
			s.Dropped[c]++
		} else {
			s.Delivered[c]++
		}
	}
	return s
}

// GoodputRate returns delivered/offered for a class (1 when nothing
// was offered).
func (s Stats) GoodputRate(c Class) float64 {
	if s.Offered[c] == 0 {
		return 1
	}
	return float64(s.Delivered[c]) / float64(s.Offered[c])
}
