package qos_test

import (
	"fmt"

	"discs/internal/qos"
)

// A 10× flood of unverifiable traffic cannot displace verified
// collaborator traffic from a strict-priority uplink.
func ExampleFluid() {
	res := qos.Fluid(1000,
		qos.FluidDemand{Class: qos.High, PPS: 400},   // CDP-verified
		qos.FluidDemand{Class: qos.Low, PPS: 10_000}, // spoofed flood
	)
	fmt.Printf("verified served: %.0f pps (%.0f%% loss)\n",
		res.Served[qos.High], 100*res.LossRate[qos.High])
	fmt.Printf("flood served:    %.0f pps (%.0f%% loss)\n",
		res.Served[qos.Low], 100*res.LossRate[qos.Low])
	// Output:
	// verified served: 400 pps (0% loss)
	// flood served:    600 pps (94% loss)
}
