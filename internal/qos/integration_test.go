package qos

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"discs/internal/core"
	"discs/internal/lpm"
	"discs/internal/packet"
	"discs/internal/topology"
)

// TestClassOf maps verdicts.
func TestClassOf(t *testing.T) {
	if ClassOf(core.VerdictPassVerified) != High {
		t.Fatal("verified must be high")
	}
	for _, v := range []core.Verdict{core.VerdictPass, core.VerdictPassStamped, core.VerdictPassAlarm, core.VerdictDrop} {
		if ClassOf(v) != Low {
			t.Fatalf("%v must be low", v)
		}
	}
}

// buildCDP builds the stamping peer and verifying victim used by the
// uplink scenario.
func buildCDP(t testing.TB) (peer, victim *core.BorderRouter) {
	pfx := lpm.New[topology.ASN]()
	pfx.Insert(netip.MustParsePrefix("10.1.0.0/16"), 1)
	pfx.Insert(netip.MustParsePrefix("10.3.0.0/16"), 3)
	key := make([]byte, 16)
	t0 := time.Unix(0, 0).UTC()
	v := netip.MustParsePrefix("10.3.0.0/16")

	pt := core.NewTables(1, pfx)
	pt.In[core.TableOutDst].Install(v, core.OpCDPStamp, t0, time.Hour, 0)
	pt.Keys.SetStampKey(3, key)
	peer, err := core.NewBorderRouterWithOptions(core.RouterOptions{Tables: pt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	vt := core.NewTables(3, pfx)
	vt.In[core.TableInDst].Install(v, core.OpCDPVerify, t0, time.Hour, 0)
	vt.Keys.SetVerifyKey(1, key)
	victim, err = core.NewBorderRouterWithOptions(core.RouterOptions{Tables: vt, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return peer, victim
}

// TestUplinkScenario is the full §I claim: under a bandwidth-
// overwhelming d-DDoS, a DISCS victim classifies inbound packets by
// CDP verification and protects collaborator goodput with a priority
// queue, while an MEF-style victim (no classification) loses ~90% of
// the same legitimate traffic.
func TestUplinkScenario(t *testing.T) {
	peer, victim := buildCDP(t)
	now := time.Unix(0, 0).UTC().Add(time.Minute)
	rng := rand.New(rand.NewSource(7))

	const legitPPS, attackPPS, capacityPPS = 300, 5000, 1000
	mk := func(src string, stamped bool, id int, at time.Duration) (Packet, bool) {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(rng.Intn(256))},
		}
		if stamped {
			if v := peer.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPassStamped {
				t.Fatalf("stamping failed: %v", v)
			}
		}
		verdict := victim.ProcessInbound(core.V4{P: p}, now)
		if verdict.Dropped() {
			return Packet{}, false
		}
		return Packet{Arrival: at, Class: ClassOf(verdict), ID: id}, true
	}

	var pkts []Packet
	legitIDs := map[int]bool{}
	id := 0
	legitGap := time.Second / time.Duration(legitPPS)
	for i := 0; i < legitPPS; i++ {
		p, ok := mk("10.1.0.10", true, id, time.Duration(i)*legitGap)
		if !ok {
			t.Fatal("legit packet dropped at verification")
		}
		legitIDs[id] = true
		pkts = append(pkts, p)
		id++
	}
	// Attack from a legacy AS spoofing random sources: unverifiable
	// but not droppable (no key for the spoofed source ASes).
	attackGap := time.Second / time.Duration(attackPPS)
	for i := 0; i < attackPPS; i++ {
		p, ok := mk("198.51.100.7", false, id, time.Duration(i)*attackGap)
		if !ok {
			t.Fatal("unexpected drop of unverifiable packet")
		}
		pkts = append(pkts, p)
		id++
	}

	q := Queue{ServicePPS: capacityPPS, BufferPerClass: 32}
	out, err := q.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(out)
	if g := s.GoodputRate(High); g < 0.99 {
		t.Fatalf("DISCS victim: collaborator goodput = %v, want ≈1", g)
	}

	// MEF-style: same packets, no classification.
	flat := make([]Packet, len(pkts))
	for i, p := range pkts {
		p.Class = Low
		flat[i] = p
	}
	out2, err := q.Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	deliv, offered := 0, 0
	for _, o := range out2 {
		if legitIDs[o.Packet.ID] {
			offered++
			if !o.Dropped {
				deliv++
			}
		}
	}
	mefGoodput := float64(deliv) / float64(offered)
	if mefGoodput > 0.5 {
		t.Fatalf("MEF-style goodput = %v; overload scenario not overwhelming", mefGoodput)
	}
	t.Logf("legit goodput: DISCS=%.3f MEF-style=%.3f", s.GoodputRate(High), mefGoodput)
}

// BenchmarkUplinkClassification measures the classify-and-enqueue
// pipeline (verification + queue admission) per packet.
func BenchmarkUplinkClassification(b *testing.B) {
	peer, victim := buildCDP(b)
	now := time.Unix(0, 0).UTC().Add(time.Minute)
	p := &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("qos bench"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		peer.ProcessOutbound(core.V4{P: q}, now)
		v := victim.ProcessInbound(core.V4{P: q}, now)
		if ClassOf(v) != High {
			b.Fatal("classification failed")
		}
	}
}
