package cost

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// within reports |got−want| ≤ tol·want.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

// TestControllerMatchesPaper checks every §VI-C1 number. The paper
// mixes "43k" (memory arithmetic) and 44 036 (rates) and rounds
// aggressively, so tolerances are a few percent.
func TestControllerMatchesPaper(t *testing.T) {
	c := Controller(Defaults())

	if !within(c.ASMemoryBytes, 1.6e6, 0.05) {
		t.Errorf("AS memory = %.2f MB, paper 1.6 MB", c.ASMemoryBytes/1e6)
	}
	if !within(c.PrefixMemoryBytes, 31.5e6, 0.05) {
		t.Errorf("prefix memory = %.2f MB, paper 31.5 MB", c.PrefixMemoryBytes/1e6)
	}
	if !within(c.SSLMemoryBytes, 430e6, 0.02) {
		t.Errorf("SSL memory = %.2f MB, paper 430 MB", c.SSLMemoryBytes/1e6)
	}
	if !within(c.TotalMemoryBytes, 463.1e6, 0.02) {
		t.Errorf("total memory = %.2f MB, paper 463.1 MB", c.TotalMemoryBytes/1e6)
	}
	if !within(c.KeyNegotiationsPerMin, 6.1, 0.05) {
		t.Errorf("key negotiations = %.2f/min, paper 6.1", c.KeyNegotiationsPerMin)
	}
	if !within(c.InvocationsPerMin, 1.1, 0.05) {
		t.Errorf("invocations = %.2f/min, paper 1.1", c.InvocationsPerMin)
	}
	if !within(c.ConnPerSecOnAttack, 147, 0.05) {
		t.Errorf("SSL conns = %.1f/s, paper 147", c.ConnPerSecOnAttack)
	}
	if !within(c.CPUUtilization, 0.073, 0.05) {
		t.Errorf("CPU = %.1f%%, paper 7.3%%", c.CPUUtilization*100)
	}
	if !within(c.BandwidthMbps, 1.76, 0.05) {
		t.Errorf("bandwidth = %.2f Mbps, paper 1.76", c.BandwidthMbps)
	}
}

// TestRouterMatchesPaper checks the §VI-C2 numbers.
func TestRouterMatchesPaper(t *testing.T) {
	r := Router(Defaults())
	if !within(r.SRAMBytes, 3.5e6, 0.05) {
		t.Errorf("SRAM = %.2f MB, paper 3.5 MB", r.SRAMBytes/1e6)
	}
	if r.CAMBits != 43000*32 {
		t.Errorf("CAM = %.0f bits, paper 43k×32", r.CAMBits)
	}
	// Paper: ~8 Mpps IPv4, ~5.33 Mpps IPv6 per 2 Gbps core.
	if !within(r.V4MACPerSec, 8e6, 0.05) {
		t.Errorf("v4 MAC rate = %.2f Mpps, paper ≈8", r.V4MACPerSec/1e6)
	}
	if !within(r.V6MACPerSec, 5.33e6, 0.05) {
		t.Errorf("v6 MAC rate = %.2f Mpps, paper ≈5.33", r.V6MACPerSec/1e6)
	}
	// Paper: 26.25 / 18.33 Gbps at 400-byte payloads.
	if !within(r.V4Gbps, 26.25, 0.05) {
		t.Errorf("v4 line rate = %.2f Gbps, paper 26.25", r.V4Gbps)
	}
	if !within(r.V6Gbps, 18.33, 0.05) {
		t.Errorf("v6 line rate = %.2f Gbps, paper 18.33", r.V6Gbps)
	}
	// Paper: goodput decreases by only ~1.6% for victim-related IPv6.
	if !within(r.V6GoodputLoss, 0.016, 0.15) {
		t.Errorf("v6 goodput loss = %.2f%%, paper ≈1.6%%", r.V6GoodputLoss*100)
	}
}

func TestCMACBlocks(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 16: 1, 17: 2, 21: 2, 32: 2, 40: 3, 48: 3}
	for n, want := range cases {
		if got := cmacBlocks(n); got != want {
			t.Errorf("cmacBlocks(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestScaling: costs scale linearly with Internet size — the §VI-C
// claim that the system "can scale to the Internet scope".
func TestScaling(t *testing.T) {
	p := Defaults()
	base := Controller(p)
	p.NumASes *= 2
	p.NumPrefixes *= 2
	dbl := Controller(p)
	if !within(dbl.TotalMemoryBytes, 2*base.TotalMemoryBytes, 0.01) {
		t.Errorf("memory does not scale linearly: %v vs %v", dbl.TotalMemoryBytes, base.TotalMemoryBytes)
	}
	if !within(dbl.ConnPerSecOnAttack, 2*base.ConnPerSecOnAttack, 0.01) {
		t.Error("connection rate does not scale linearly")
	}
	rb := Router(Defaults())
	rd := Router(p)
	if !within(rd.SRAMBytes, 2*rb.SRAMBytes, 0.01) {
		t.Error("router SRAM does not scale linearly")
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, Defaults()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{
		"controller.memory.total_MB", "controller.cpu_utilization_pct",
		"router.sram_MB", "router.v4_line_rate_Gbps",
	} {
		if !strings.Contains(out, key) {
			t.Errorf("table missing %s", key)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 16 {
		t.Errorf("table rows = %d, want 16", len(strings.Split(strings.TrimSpace(out), "\n")))
	}
}
