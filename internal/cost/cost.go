// Package cost implements the resource model of §VI-C of the paper:
// controller storage/computation/network overhead and border-router
// SRAM/CAM/crypto-throughput, parameterized by Internet scale so every
// published number can be regenerated (and re-derived for other
// scales).
package cost

import (
	"fmt"
	"io"
	"math"
)

// Params are the §VI-C sizing inputs with the paper's values as
// defaults.
type Params struct {
	// NumASes is the number of ASes; §VI-C uses "around 43k".
	NumASes int
	// NumPrefixes is the number of routable IPv4 prefixes (~442k).
	NumPrefixes int
	// RekeyDays is the key renegotiation period (10 days).
	RekeyDays float64
	// AttacksPerDay is the global attack rate; §VI-C derives 1611 from
	// Arbor's 1128 reported attacks over 70% visibility.
	AttacksPerDay float64
	// ReactionSeconds is the budget to notify all peers of an
	// invocation (5 minutes).
	ReactionSeconds float64
	// SSLConnMemory is the per-connection memory of the secure channel
	// (<10 kB per §VI-C).
	SSLConnMemory int
	// SSLConnPerSecCapacity is a low-end CPU's connection-setup rate
	// (2000/s on an Atom per §VI-C).
	SSLConnPerSecCapacity float64
	// SSLConnBytes is the traffic per connection with session cache
	// (1.5 kB).
	SSLConnBytes int
	// CryptoBitsPerSec is the AES-CMAC message throughput of one
	// hardware core (2 Gbps per §VI-C).
	CryptoBitsPerSec float64
	// AvgPayload is the assumed mean payload size (400 B).
	AvgPayload int
}

// Defaults returns the paper's §VI-C parameters.
func Defaults() Params {
	return Params{
		NumASes:               43_000,
		NumPrefixes:           442_000,
		RekeyDays:             10,
		AttacksPerDay:         1128 / 0.7, // ≈1611
		ReactionSeconds:       300,
		SSLConnMemory:         10_000,
		SSLConnPerSecCapacity: 2000,
		SSLConnBytes:          1500,
		CryptoBitsPerSec:      2e9,
		AvgPayload:            400,
	}
}

// Per-entry byte sizes from §VI-C1/C2.
const (
	asEntryBytes     = 4 + 1 + 1 + 32 // ASN + blacklist flag + peer flag + 2 keys
	prefixEntryBytes = 5 + 4 + 64     // prefix + ASN + 4 functions × (start,end)
	routerPfxBytes   = 4 + 1          // ASN + 6-bit function set (1 byte)
	routerKeyBits    = 32             // CAM: AS number
	routerKeyBytes   = 32             // SRAM: stamping + verification key
)

// ControllerCost is the §VI-C1 result set.
type ControllerCost struct {
	ASMemoryBytes     float64
	PrefixMemoryBytes float64
	SSLMemoryBytes    float64
	TotalMemoryBytes  float64

	KeyNegotiationsPerMin float64
	InvocationsPerMin     float64
	ConnPerSecOnAttack    float64
	CPUUtilization        float64 // fraction of the low-end CPU
	BandwidthMbps         float64
}

// Controller evaluates the controller model.
func Controller(p Params) ControllerCost {
	var c ControllerCost
	c.ASMemoryBytes = float64(p.NumASes) * asEntryBytes
	c.PrefixMemoryBytes = float64(p.NumPrefixes) * prefixEntryBytes
	c.SSLMemoryBytes = float64(p.NumASes) * float64(p.SSLConnMemory)
	c.TotalMemoryBytes = c.ASMemoryBytes + c.PrefixMemoryBytes + c.SSLMemoryBytes

	minutes := p.RekeyDays * 24 * 60
	// Each peer pair renegotiates two directed keys per period: one we
	// generate, one we receive and deploy.
	c.KeyNegotiationsPerMin = 2 * float64(p.NumASes) / minutes
	c.InvocationsPerMin = p.AttacksPerDay / (24 * 60)
	c.ConnPerSecOnAttack = float64(p.NumASes) / p.ReactionSeconds
	c.CPUUtilization = c.ConnPerSecOnAttack / p.SSLConnPerSecCapacity
	c.BandwidthMbps = c.ConnPerSecOnAttack * float64(p.SSLConnBytes) * 8 / 1e6
	return c
}

// RouterCost is the §VI-C2 result set.
type RouterCost struct {
	SRAMBytes float64
	CAMBits   float64

	// MAC throughput of one hardware crypto core, in packets/sec:
	// AES-CMAC over the 21-byte IPv4 msg pads to 2 AES blocks, the
	// 40-byte IPv6 msg to 3.
	V4MACPerSec float64
	V6MACPerSec float64
	// Corresponding line rates assuming AvgPayload-byte payloads.
	V4Gbps float64
	V6Gbps float64
	// V6GoodputLoss is the goodput reduction from the 8-byte stamp.
	V6GoodputLoss float64
}

// cmacBlocks returns the number of AES blocks CMAC processes for an
// n-byte message (10* padding for partial blocks).
func cmacBlocks(n int) int {
	if n == 0 {
		return 1
	}
	return int(math.Ceil(float64(n) / 16))
}

// Router evaluates the router model.
func Router(p Params) RouterCost {
	var r RouterCost
	r.SRAMBytes = float64(p.NumPrefixes)*routerPfxBytes + float64(p.NumASes)*routerKeyBytes
	r.CAMBits = float64(p.NumASes) * routerKeyBits

	bytesPerSec := p.CryptoBitsPerSec / 8
	v4Blocks := cmacBlocks(21) // §V-E msg
	v6Blocks := cmacBlocks(40) // §V-F msg
	r.V4MACPerSec = bytesPerSec / float64(v4Blocks*16)
	r.V6MACPerSec = bytesPerSec / float64(v6Blocks*16)
	r.V4Gbps = r.V4MACPerSec * float64(p.AvgPayload+20) * 8 / 1e9
	r.V6Gbps = r.V6MACPerSec * float64(p.AvgPayload+40) * 8 / 1e9
	r.V6GoodputLoss = 8 / float64(p.AvgPayload+40+8+8) // +UDP header +stamp
	return r
}

// WriteTable prints both cost tables in the format of cmd/discs-cost.
func WriteTable(w io.Writer, p Params) error {
	c := Controller(p)
	r := Router(p)
	mb := func(b float64) float64 { return b / 1e6 }
	rows := []struct {
		k string
		v string
	}{
		{"controller.memory.as_table_MB", fmt.Sprintf("%.1f", mb(c.ASMemoryBytes))},
		{"controller.memory.prefix_table_MB", fmt.Sprintf("%.1f", mb(c.PrefixMemoryBytes))},
		{"controller.memory.ssl_MB", fmt.Sprintf("%.1f", mb(c.SSLMemoryBytes))},
		{"controller.memory.total_MB", fmt.Sprintf("%.1f", mb(c.TotalMemoryBytes))},
		{"controller.key_negotiations_per_min", fmt.Sprintf("%.1f", c.KeyNegotiationsPerMin)},
		{"controller.invocations_per_min", fmt.Sprintf("%.1f", c.InvocationsPerMin)},
		{"controller.ssl_conn_per_sec_on_attack", fmt.Sprintf("%.0f", c.ConnPerSecOnAttack)},
		{"controller.cpu_utilization_pct", fmt.Sprintf("%.1f", c.CPUUtilization*100)},
		{"controller.bandwidth_Mbps", fmt.Sprintf("%.2f", c.BandwidthMbps)},
		{"router.sram_MB", fmt.Sprintf("%.1f", mb(r.SRAMBytes))},
		{"router.cam_bits", fmt.Sprintf("%.0f", r.CAMBits)},
		{"router.v4_mac_Mpps_per_core", fmt.Sprintf("%.2f", r.V4MACPerSec/1e6)},
		{"router.v6_mac_Mpps_per_core", fmt.Sprintf("%.2f", r.V6MACPerSec/1e6)},
		{"router.v4_line_rate_Gbps", fmt.Sprintf("%.2f", r.V4Gbps)},
		{"router.v6_line_rate_Gbps", fmt.Sprintf("%.2f", r.V6Gbps)},
		{"router.v6_goodput_loss_pct", fmt.Sprintf("%.2f", r.V6GoodputLoss*100)},
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", row.k, row.v); err != nil {
			return err
		}
	}
	return nil
}
