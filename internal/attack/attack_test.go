package attack

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"discs/internal/topology"
)

// weightedTopo builds ASes 1..4 with address-space ratios 8:4:2:2.
func weightedTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp := topology.New()
	prefixes := map[topology.ASN][]string{
		1: {"10.0.0.0/13"}, // 2^19 * 1 = 8 units
		2: {"11.0.0.0/14"}, // 4 units
		3: {"12.0.0.0/15"}, // 2 units
		4: {"13.0.0.0/15"}, // 2 units
	}
	for asn := topology.ASN(1); asn <= 4; asn++ {
		if _, err := tp.AddAS(asn); err != nil {
			t.Fatal(err)
		}
		for _, p := range prefixes[asn] {
			if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tp
}

func TestSamplerProportions(t *testing.T) {
	tp := weightedTopo(t)
	s := NewSampler(tp)
	rng := rand.New(rand.NewSource(1))
	counts := map[topology.ASN]int{}
	const n = 40_000
	for i := 0; i < n; i++ {
		counts[s.Draw(rng)]++
	}
	want := map[topology.ASN]float64{1: 0.5, 2: 0.25, 3: 0.125, 4: 0.125}
	for asn, w := range want {
		got := float64(counts[asn]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("AS%d frequency = %.3f, want %.3f", asn, got, w)
		}
	}
}

func TestDrawFlowConstraints(t *testing.T) {
	tp := weightedTopo(t)
	s := NewSampler(tp)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		f := s.DrawFlow(DDDoS, rng)
		if f.Agent == f.Victim || f.Innocent == f.Victim || f.Agent == f.Innocent {
			t.Fatalf("flow violates distinctness: %v", f)
		}
	}
	for i := 0; i < 1000; i++ {
		f := s.DrawFlowForVictim(SDDoS, 3, rng)
		if f.Victim != 3 || f.Agent == 3 || f.Innocent == 3 || f.Agent == f.Innocent {
			t.Fatalf("victim-pinned flow wrong: %v", f)
		}
	}
}

func TestNewBotnet(t *testing.T) {
	tp := weightedTopo(t)
	s := NewSampler(tp)
	rng := rand.New(rand.NewSource(3))
	b := s.NewBotnet(3, rng)
	if len(b.Agents) != 3 {
		t.Fatalf("agents = %v", b.Agents)
	}
	seen := map[topology.ASN]bool{}
	for _, a := range b.Agents {
		if seen[a] {
			t.Fatalf("duplicate agent in %v", b.Agents)
		}
		seen[a] = true
	}
	// Requesting more agents than ASes terminates.
	b = s.NewBotnet(100, rng)
	if len(b.Agents) != 4 {
		t.Fatalf("oversized botnet = %v", b.Agents)
	}
}

func TestRandomAddrInsideAS(t *testing.T) {
	tp := weightedTopo(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a, ok := RandomAddr(tp, 2, rng)
		if !ok {
			t.Fatal("no address")
		}
		if owner, _ := tp.OwnerOf(a); owner != 2 {
			t.Fatalf("address %v owned by AS%d", a, owner)
		}
	}
	if _, ok := RandomAddr(tp, 99, rng); ok {
		t.Fatal("unknown AS yielded an address")
	}
}

func TestFlowPacketsDDDoS(t *testing.T) {
	tp := weightedTopo(t)
	rng := rand.New(rand.NewSource(5))
	f := Flow{Kind: DDDoS, Agent: 1, Innocent: 2, Victim: 3}
	pkts, err := f.Packets(tp, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 50 {
		t.Fatalf("%d packets", len(pkts))
	}
	for _, p := range pkts {
		if owner, _ := tp.OwnerOf(p.Src); owner != 2 {
			t.Fatalf("d-DDoS src owned by AS%d, want innocent AS2", owner)
		}
		if owner, _ := tp.OwnerOf(p.Dst); owner != 3 {
			t.Fatalf("d-DDoS dst owned by AS%d, want victim AS3", owner)
		}
	}
}

func TestFlowPacketsSDDoS(t *testing.T) {
	tp := weightedTopo(t)
	rng := rand.New(rand.NewSource(6))
	f := Flow{Kind: SDDoS, Agent: 1, Innocent: 2, Victim: 3}
	pkts, err := f.Packets(tp, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if owner, _ := tp.OwnerOf(p.Src); owner != 3 {
			t.Fatalf("s-DDoS src owned by AS%d, want victim AS3", owner)
		}
		if owner, _ := tp.OwnerOf(p.Dst); owner != 2 {
			t.Fatalf("s-DDoS dst owned by AS%d, want reflector AS2", owner)
		}
	}
}

func TestFlowPacketsErrors(t *testing.T) {
	tp := weightedTopo(t)
	rng := rand.New(rand.NewSource(7))
	if _, err := (Flow{Kind: Kind(9), Agent: 1, Innocent: 2, Victim: 3}).Packets(tp, 1, rng); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (Flow{Kind: DDDoS, Agent: 1, Innocent: 99, Victim: 3}).Packets(tp, 1, rng); err == nil {
		t.Fatal("unknown AS accepted")
	}
}

func TestKindString(t *testing.T) {
	if DDDoS.String() != "d-DDoS" || SDDoS.String() != "s-DDoS" {
		t.Fatal("Kind strings wrong")
	}
}

func TestResultDropRate(t *testing.T) {
	r := Result{Sent: 10, Dropped: 4}
	if r.DropRate() != 0.4 {
		t.Fatalf("DropRate = %v", r.DropRate())
	}
	if (Result{}).DropRate() != 0 {
		t.Fatal("empty DropRate should be 0")
	}
}
