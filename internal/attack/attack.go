// Package attack generates the spoofing-attack workloads the DISCS
// evaluation runs against (§VI of the paper).
//
// A spoofing flow is the triple (a, i, v) of §VI-A: agent AS a sends
// the traffic, victim AS v is attacked, and innocent AS i is abused —
// as the spoofed source in a d-DDoS, or as the reflector destination
// in an s-DDoS. Following the paper (and the literature it cites),
// every routable address is equally likely to be the agent, innocent
// or victim, so ASes are sampled with probability proportional to
// their routable address space.
package attack

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"discs/internal/packet"
	"discs/internal/topology"
)

// Kind distinguishes the two spoofing-DDoS families (§I).
type Kind int

const (
	// DDDoS: agents send packets directly to the victim with spoofed
	// (innocent) source addresses for anonymity.
	DDDoS Kind = iota
	// SDDoS: agents send requests to innocent reflectors with the
	// victim's source address; the replies flood the victim.
	SDDoS
)

func (k Kind) String() string {
	if k == DDDoS {
		return "d-DDoS"
	}
	return "s-DDoS"
}

// Flow is one spoofing flow (a, i, v).
type Flow struct {
	Kind     Kind
	Agent    topology.ASN // a — where the packets originate
	Innocent topology.ASN // i — spoofed source (d-DDoS) or reflector (s-DDoS)
	Victim   topology.ASN // v — the attacked AS
}

func (f Flow) String() string {
	return fmt.Sprintf("%v(a=AS%d, i=AS%d, v=AS%d)", f.Kind, f.Agent, f.Innocent, f.Victim)
}

// Sampler draws ASes with probability proportional to their routable
// address space (the paper's r_j weights).
type Sampler struct {
	topo *topology.Topology
	asns []topology.ASN
	cum  []float64 // cumulative weights
}

// NewSampler builds a weighted sampler over all ASes of the topology.
func NewSampler(topo *topology.Topology) *Sampler {
	asns := append([]topology.ASN(nil), topo.ASNs()...)
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	cum := make([]float64, len(asns))
	var total float64
	for i, asn := range asns {
		total += topo.Ratio(asn)
		cum[i] = total
	}
	return &Sampler{topo: topo, asns: asns, cum: cum}
}

// Draw samples one AS.
func (s *Sampler) Draw(rng *rand.Rand) topology.ASN {
	if len(s.asns) == 0 {
		return 0
	}
	x := rng.Float64() * s.cum[len(s.cum)-1]
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.asns) {
		i = len(s.asns) - 1
	}
	return s.asns[i]
}

// DrawFlow samples a spoofing flow of the given kind with the
// constraints of §VI-A: a ≠ v and i ∉ {a, v} would bias the model, so
// the paper only requires a ≠ v and i ≠ a for d-DDoS incentives; we
// enforce a, i, v pairwise distinct, which is the regime all the
// closed forms quantify over (a = v or i = v terms carry zero or
// excluded weight).
func (s *Sampler) DrawFlow(kind Kind, rng *rand.Rand) Flow {
	for {
		a, i, v := s.Draw(rng), s.Draw(rng), s.Draw(rng)
		if a == 0 || i == 0 || v == 0 {
			return Flow{Kind: kind}
		}
		if a != v && i != v && a != i {
			return Flow{Kind: kind, Agent: a, Innocent: i, Victim: v}
		}
	}
}

// DrawFlowForVictim samples a flow attacking a fixed victim.
func (s *Sampler) DrawFlowForVictim(kind Kind, victim topology.ASN, rng *rand.Rand) Flow {
	for {
		a, i := s.Draw(rng), s.Draw(rng)
		if a == 0 || i == 0 {
			return Flow{Kind: kind, Victim: victim}
		}
		if a != victim && i != victim && a != i {
			return Flow{Kind: kind, Agent: a, Innocent: i, Victim: victim}
		}
	}
}

// Botnet is a set of agent ASes (the "large farms of botnets" of §I),
// sampled by address-space weight.
type Botnet struct {
	Agents []topology.ASN
}

// NewBotnet samples n distinct agent ASes.
func (s *Sampler) NewBotnet(n int, rng *rand.Rand) Botnet {
	seen := make(map[topology.ASN]bool)
	var agents []topology.ASN
	for len(agents) < n && len(agents) < len(s.asns) {
		a := s.Draw(rng)
		if a == 0 || seen[a] {
			continue
		}
		seen[a] = true
		agents = append(agents, a)
	}
	return Botnet{Agents: agents}
}

// RandomAddr picks a uniformly random IPv4 address inside the AS's
// space (prefixes weighted by size). ok is false when the AS has no
// IPv4 prefix.
func RandomAddr(topo *topology.Topology, asn topology.ASN, rng *rand.Rand) (netip.Addr, bool) {
	a := topo.AS(asn)
	if a == nil {
		return netip.Addr{}, false
	}
	var v4 []netip.Prefix
	var total uint64
	for _, p := range a.Prefixes {
		if p.Addr().Is4() {
			v4 = append(v4, p)
			total += 1 << (32 - p.Bits())
		}
	}
	if len(v4) == 0 {
		return netip.Addr{}, false
	}
	x := rng.Uint64() % total
	for _, p := range v4 {
		size := uint64(1) << (32 - p.Bits())
		if x < size {
			base := p.Addr().As4()
			v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
			v += uint32(x)
			return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), true
		}
		x -= size
	}
	return netip.Addr{}, false
}

// Packets materializes n IPv4 packets for the flow: d-DDoS packets go
// agent→victim with the innocent's source; s-DDoS requests go
// agent→innocent with the victim's source.
func (f Flow) Packets(topo *topology.Topology, n int, rng *rand.Rand) ([]*packet.IPv4, error) {
	var srcAS, dstAS topology.ASN
	switch f.Kind {
	case DDDoS:
		srcAS, dstAS = f.Innocent, f.Victim
	case SDDoS:
		srcAS, dstAS = f.Victim, f.Innocent
	default:
		return nil, fmt.Errorf("attack: unknown kind %d", f.Kind)
	}
	out := make([]*packet.IPv4, 0, n)
	for k := 0; k < n; k++ {
		src, ok := RandomAddr(topo, srcAS, rng)
		if !ok {
			return nil, fmt.Errorf("attack: AS%d has no IPv4 space", srcAS)
		}
		dst, ok := RandomAddr(topo, dstAS, rng)
		if !ok {
			return nil, fmt.Errorf("attack: AS%d has no IPv4 space", dstAS)
		}
		payload := make([]byte, 24)
		rng.Read(payload)
		out = append(out, &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: src, Dst: dst, Payload: payload,
		})
	}
	return out, nil
}

// AmplificationFactor models the s-DDoS volume multiplier; §I cites a
// 73× factor for DNS amplification (60-byte request → 4000-byte
// response).
const AmplificationFactor = 73.0
