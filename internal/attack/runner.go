package attack

import (
	"math/rand"

	"discs/internal/core"
	"discs/internal/topology"
)

// Result aggregates the fate of attack traffic injected through a
// DISCS system.
type Result struct {
	Sent      int
	Delivered int
	Dropped   int
	// DroppedAt counts drops per AS — shows whether filtering happened
	// at the peers (far from the victim, saving bandwidth) or at the
	// victim's own border.
	DroppedAt map[topology.ASN]int
	// AmplifiedDelivered weighs delivered s-DDoS requests by the
	// amplification factor; for d-DDoS it equals Delivered.
	AmplifiedDelivered float64
}

// Run injects `perFlow` packets for each flow into the system at the
// flow's agent AS and tallies the outcome. For s-DDoS, a delivered
// request reaches the reflector and its (amplified) reply floods the
// victim; the reply path is not simulated because reflector replies
// are legitimate traffic no defense filters.
func Run(sys *core.System, flows []Flow, perFlow int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	res := Result{DroppedAt: make(map[topology.ASN]int)}
	for _, f := range flows {
		pkts, err := f.Packets(sys.Net.Topo, perFlow, rng)
		if err != nil {
			return res, err
		}
		for _, p := range pkts {
			res.Sent++
			d := sys.SendV4(f.Agent, p)
			if d.Delivered {
				res.Delivered++
				if f.Kind == SDDoS {
					res.AmplifiedDelivered += AmplificationFactor
				} else {
					res.AmplifiedDelivered++
				}
			} else {
				res.Dropped++
				res.DroppedAt[d.DroppedAt]++
			}
		}
	}
	return res, nil
}

// DropRate returns the fraction of attack packets filtered.
func (r Result) DropRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Sent)
}
