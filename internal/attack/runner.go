package attack

import (
	"math/rand"
	"time"

	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/scenario/pulse"
	"discs/internal/topology"
)

// Result aggregates the fate of attack traffic injected through a
// DISCS system.
type Result struct {
	Sent      int
	Delivered int
	Dropped   int
	// DroppedAt counts drops per AS — shows whether filtering happened
	// at the peers (far from the victim, saving bandwidth) or at the
	// victim's own border.
	DroppedAt map[topology.ASN]int
	// AmplifiedDelivered weighs delivered s-DDoS requests by the
	// amplification factor; for d-DDoS it equals Delivered.
	AmplifiedDelivered float64
}

// tally records the fate of one packet of flow f.
func (r *Result) tally(f Flow, d core.DeliveryResult) {
	r.Sent++
	if d.Delivered {
		r.Delivered++
		if f.Kind == SDDoS {
			r.AmplifiedDelivered += AmplificationFactor
		} else {
			r.AmplifiedDelivered++
		}
	} else {
		r.Dropped++
		r.DroppedAt[d.DroppedAt]++
	}
}

// Run injects `perFlow` packets for each flow into the system at the
// flow's agent AS and tallies the outcome. For s-DDoS, a delivered
// request reaches the reflector and its (amplified) reply floods the
// victim; the reply path is not simulated because reflector replies
// are legitimate traffic no defense filters.
//
// Run injects everything at a single simulated instant. Use RunPaced
// when interval observers (discs-sim -metrics) should see the attack
// unfold over simulated time.
func Run(sys *core.System, flows []Flow, perFlow int, seed int64) (Result, error) {
	return RunPaced(sys, flows, perFlow, seed, 1, 0)
}

// RunPaced injects the same traffic as Run but spread over simulated
// time: the packets of every flow are split into `waves` contiguous
// batches, and the simulated clock advances by `gap` between waves
// (firing any timers due in that window — heartbeats, interval
// recorders). With waves <= 1 or gap <= 0 it degenerates to Run.
//
// It is a thin shim over the scenario engine's pulse phase (see
// internal/scenario/pulse): the historic wave loop that lived here is
// now the single pacing implementation shared with internal/scenario,
// and the schedule is identical — a train of `waves` single-sub-wave
// pulses separated by `gap`.
func RunPaced(sys *core.System, flows []Flow, perFlow int, seed int64, waves int, gap time.Duration) (Result, error) {
	if waves < 1 {
		waves = 1
	}
	if gap < 0 {
		gap = 0
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{DroppedAt: make(map[topology.ASN]int)}
	// Draw every packet up front so the rng consumption — and with it
	// the generated traffic — is identical for any wave count.
	pkts := make([][]*packet.IPv4, len(flows))
	for i, f := range flows {
		ps, err := f.Packets(sys.Net.Topo, perFlow, rng)
		if err != nil {
			return res, err
		}
		pkts[i] = ps
	}
	bursts := pulse.Train(func(i int) topology.ASN { return flows[i].Agent },
		pkts, waves, 1, 0, gap)
	pulse.Run(sys, bursts, func(p pulse.Packet, d core.DeliveryResult) {
		res.tally(flows[p.Flow], d)
	})
	return res, nil
}

// DropRate returns the fraction of attack packets filtered.
func (r Result) DropRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Sent)
}
