package attack

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/topology"
)

// runnerWorld: provider 1 with customers 2 (DAS), 3 (DAS victim),
// 4 (legacy), DP+CDP+SP+CSP invoked for the victim.
func runnerWorld(t *testing.T) (*core.System, *topology.Topology) {
	t.Helper()
	tp := topology.New()
	for i := topology.ASN(1); i <= 4; i++ {
		if _, err := tp.AddAS(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := tp.Link(c, 1, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	victim := sys.Controllers[3]
	var invs []core.Invocation
	for _, f := range []core.Function{core.DP, core.CDP, core.SP, core.CSP} {
		invs = append(invs, core.Invocation{
			Prefixes: victim.OwnPrefixes(), Function: f, Duration: 24 * time.Hour,
		})
	}
	if _, err := victim.Invoke(invs...); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	return sys, tp
}

func TestRunDDDoS(t *testing.T) {
	sys, _ := runnerWorld(t)
	flows := []Flow{
		{Kind: DDDoS, Agent: 2, Innocent: 4, Victim: 3}, // dies at DAS 2 (DP)
		{Kind: DDDoS, Agent: 4, Innocent: 2, Victim: 3}, // dies at victim (CDP)
	}
	res, err := Run(sys, flows, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 40 || res.Dropped != 40 || res.Delivered != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.DroppedAt[2] != 20 || res.DroppedAt[3] != 20 {
		t.Fatalf("drop locations = %v", res.DroppedAt)
	}
	if res.DropRate() != 1 {
		t.Fatalf("drop rate = %v", res.DropRate())
	}
	if res.AmplifiedDelivered != 0 {
		t.Fatalf("amplified = %v", res.AmplifiedDelivered)
	}
}

func TestRunSDDoSAmplification(t *testing.T) {
	sys, _ := runnerWorld(t)
	// Reflection off the legacy AS 4: the agent is also legacy, so
	// nothing filters these requests — each delivered request counts
	// with the amplification factor.
	flows := []Flow{{Kind: SDDoS, Agent: 4, Innocent: 1, Victim: 3}}
	res, err := Run(sys, flows, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	if res.AmplifiedDelivered != 10*AmplificationFactor {
		t.Fatalf("amplified = %v", res.AmplifiedDelivered)
	}
	// Reflection from inside the DAS peer dies at its egress (SP).
	res, err = Run(sys, []Flow{{Kind: SDDoS, Agent: 2, Innocent: 4, Victim: 3}}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 10 || res.DroppedAt[2] != 10 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunBadFlow(t *testing.T) {
	sys, _ := runnerWorld(t)
	if _, err := Run(sys, []Flow{{Kind: Kind(9), Agent: 2, Innocent: 4, Victim: 3}}, 1, 1); err == nil {
		t.Fatal("bad flow kind accepted")
	}
}
