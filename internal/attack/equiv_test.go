package attack

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/topology"
)

// referencePaced is the wave loop exactly as it lived here before the
// pacing moved into internal/scenario/pulse: draw every packet up
// front, then inject each flow's w-th contiguous slice per wave,
// advancing the clock by gap between waves. RunPaced must stay
// byte-identical to this schedule — same packets, same injection
// order, same simulated instants.
func referencePaced(sys *core.System, flows []Flow, perFlow int, seed int64, waves int, gap time.Duration) (Result, error) {
	if waves < 1 {
		waves = 1
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{DroppedAt: make(map[topology.ASN]int)}
	pkts := make([][]*packet.IPv4, len(flows))
	for i, f := range flows {
		ps, err := f.Packets(sys.Net.Topo, perFlow, rng)
		if err != nil {
			return res, err
		}
		pkts[i] = ps
	}
	sim := sys.Net.Sim
	for w := 0; w < waves; w++ {
		for i, f := range flows {
			lo, hi := w*len(pkts[i])/waves, (w+1)*len(pkts[i])/waves
			for _, p := range pkts[i][lo:hi] {
				res.tally(f, sys.SendV4(f.Agent, p))
			}
		}
		if gap > 0 && w < waves-1 {
			sim.Run(sim.Now() + gap)
		}
	}
	return res, nil
}

func TestRunPacedMatchesReferenceLoop(t *testing.T) {
	flows := []Flow{
		{Kind: DDDoS, Agent: 2, Innocent: 4, Victim: 3},
		{Kind: DDDoS, Agent: 4, Innocent: 2, Victim: 3},
		{Kind: SDDoS, Agent: 4, Innocent: 1, Victim: 3},
	}
	for _, tc := range []struct {
		name    string
		perFlow int
		waves   int
		gap     time.Duration
	}{
		{"single wave", 12, 1, 0},
		{"even split", 12, 4, 10 * time.Millisecond},
		{"ragged split", 7, 3, time.Millisecond},
		{"more waves than packets", 2, 5, time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refSys, _ := runnerWorld(t)
			newSys, _ := runnerWorld(t)

			want, err := referencePaced(refSys, flows, tc.perFlow, 42, tc.waves, tc.gap)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunPaced(newSys, flows, tc.perFlow, 42, tc.waves, tc.gap)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("results diverge:\nreference %+v\nshim      %+v", want, got)
			}
			// The verdict counters of the two worlds must be identical —
			// same packets through the same tables at the same instants.
			ref, shim := refSys.Registry().Snapshot(), newSys.Registry().Snapshot()
			for name, v := range ref.Counters {
				if shim.Counters[name] != v {
					t.Errorf("counter %s: reference %d, shim %d", name, v, shim.Counters[name])
				}
			}
			for name, v := range shim.Counters {
				if _, ok := ref.Counters[name]; !ok && v != 0 {
					t.Errorf("counter %s only in shim run: %d", name, v)
				}
			}
			if refSys.Net.Sim.Now() != newSys.Net.Sim.Now() {
				t.Errorf("clocks diverge: reference %v, shim %v", refSys.Net.Sim.Now(), newSys.Net.Sim.Now())
			}
		})
	}
}
