package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// flakyListener fails the first `failures` Accept calls with a
// transient error before delegating — the shape of an EMFILE burst.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.failures > 0
	if fail {
		l.failures--
	}
	l.mu.Unlock()
	if fail {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: errors.New("too many open files")}
	}
	return l.Listener.Accept()
}

// TestAcceptLoopRecovers pins the accept-loop bugfix: a transient
// Accept error (EMFILE and friends) must not permanently stop the
// node from receiving — the loop backs off, retries, and later
// connections still deliver frames.
func TestAcceptLoopRecovers(t *testing.T) {
	a, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Swap in the flaky wrapper before Start spawns the accept loop.
	a.ln = &flakyListener{Listener: a.ln, failures: 5}
	recv := &collector{}
	if err := a.Start(recv.handle); err != nil {
		t.Fatal(err)
	}

	b, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetPeer("a", a.Addr())
	if err := b.Start(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(recv.wait(t, 0)) == 0 {
		b.Send("a", Frame{Kind: 1, From: "b", Data: []byte("hi")})
		if time.Now().After(deadline) {
			t.Fatal("no frame delivered after transient accept errors")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.acceptRetries.Value(); got != 5 {
		t.Fatalf("accept_retries = %d, want 5", got)
	}
}

// blackholeListener accepts connections and never reads them: the
// remote's TCP buffers fill and its writes block — the worst kind of
// sick peer, alive at the socket layer and dead above it.
func blackholeListener(t *testing.T) (addr string, done func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}
}

// TestSendNotBlockedByBlackholedPeer pins the head-of-line fix: one
// peer whose connection is up but wedged (never reads) must cost only
// its own bounded queue. Sends to it stay non-blocking (drop when the
// queue fills), sends to a healthy peer deliver at full speed, and
// Close returns promptly even with the worker stuck in a write.
func TestSendNotBlockedByBlackholedPeer(t *testing.T) {
	black, stopBlack := blackholeListener(t)
	defer stopBlack()

	a, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0", DialTimeout: 500 * time.Millisecond, SendQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	good, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	recvGood := &collector{}
	if err := good.Start(recvGood.handle); err != nil {
		t.Fatal(err)
	}
	a.SetPeer("black", black)
	a.SetPeer("good", good.Addr())

	// Large frames wedge the blackholed worker fast: socket buffers
	// fill, the write blocks until its deadline, the queue fills behind
	// it. Every Send must return quickly regardless.
	payload := bytes.Repeat([]byte{0xee}, 32<<10)
	sawDrop := false
	for i := 0; i < 200; i++ {
		begin := time.Now()
		ok := a.Send("black", Frame{Kind: 1, From: "a", Data: payload})
		if d := time.Since(begin); d > 100*time.Millisecond {
			t.Fatalf("Send to blackholed peer blocked %v", d)
		}
		sawDrop = sawDrop || !ok
	}
	if !sawDrop {
		t.Fatal("queue to a blackholed peer never filled — Send is not bounded")
	}
	if st, ok := a.PeerStats("black"); !ok || st.FramesDropped == 0 {
		t.Fatalf("blackholed peer stats = %+v, want queue-overflow drops", st)
	}

	// The healthy peer is unaffected.
	for i := 0; i < 5; i++ {
		begin := time.Now()
		if !a.Send("good", Frame{Kind: 2, From: "a", Data: []byte{byte(i)}}) {
			t.Fatalf("send %d to healthy peer dropped", i)
		}
		if d := time.Since(begin); d > 100*time.Millisecond {
			t.Fatalf("Send to healthy peer took %v", d)
		}
	}
	recvGood.wait(t, 5)

	// Close must not wait out the blackholed worker's write deadline
	// chain: closing the conn errors the blocked write out.
	begin := time.Now()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > 2*time.Second {
		t.Fatalf("Close took %v with a blackholed peer", d)
	}
}

// TestChurnCounters kills and revives a peer mid-traffic and checks
// the per-peer accounting invariant: once the queue drains, every
// frame ever accepted or rejected by Send is visible as exactly one of
// frames_sent or frames_dropped, and the revival shows up in redials.
// Run under -race this also exercises Send/worker/SetPeer interleaving.
func TestChurnCounters(t *testing.T) {
	a, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0", DialTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Start(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	recvB := &collector{}
	if err := b.Start(recvB.handle); err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a.SetPeer("b", addr)

	const total = 300
	received := func(c *collector) int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.frames)
	}
	var recvB2 *collector
	for i := 0; i < total; i++ {
		if i == 100 {
			b.Close() // peer dies mid-traffic
		}
		if i == 200 {
			// Peer revives on the same address (Go listeners set
			// SO_REUSEADDR, so the rebind races nothing).
			b2, err := NewTCP(TCPOptions{Addr: addr})
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			recvB2 = &collector{}
			if err := b2.Start(recvB2.handle); err != nil {
				t.Fatal(err)
			}
		}
		a.Send("b", Frame{Kind: 1, From: "a", Data: []byte{byte(i)}})
		time.Sleep(time.Millisecond)
	}

	// Wait for the worker to drain so the accounting is quiescent.
	deadline := time.Now().Add(5 * time.Second)
	var st PeerStats
	for {
		var ok bool
		st, ok = a.PeerStats("b")
		if !ok {
			t.Fatal("peer b unregistered")
		}
		if st.QueueDepth == 0 && st.FramesSent+st.FramesDropped == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never quiesced: %+v (sent+dropped=%d, want %d)",
				st, st.FramesSent+st.FramesDropped, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Redials == 0 {
		t.Fatalf("peer revived but redials = 0: %+v", st)
	}
	got := received(recvB) + received(recvB2)
	if got == 0 || uint64(got) > st.FramesSent {
		t.Fatalf("received %d frames, frames_sent %d — received must be positive and ≤ sent", got, st.FramesSent)
	}
	if received(recvB2) == 0 {
		t.Fatal("no frames delivered after the peer revived")
	}
}
