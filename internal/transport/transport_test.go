package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: 0, From: "ctrl.as1", Data: []byte("hello")},
		{Kind: 5, From: "", Data: nil},
		{Kind: 0xff, From: "x", Data: bytes.Repeat([]byte{0xaa}, 4096)},
		{Kind: 7, From: strings.Repeat("n", MaxFromLen), Data: []byte{1}},
	}
	var wire []byte
	for _, f := range frames {
		var err error
		wire, err = AppendFrame(wire, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("read past the last frame succeeded")
	}
}

func TestFrameLimits(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{From: strings.Repeat("n", MaxFromLen+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized name: %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Data: make([]byte, MaxFrameSize)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized payload: %v", err)
	}
	// A forged length prefix must be rejected before allocation.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("forged length: %v", err)
	}
	// A fromLen overrunning the payload must error, not panic.
	bad := []byte{0, 0, 0, 2, 9, 200}
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("overrunning fromLen accepted")
	}
}

// collector gathers frames delivered to a transport handler.
type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) handle(f Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
}

func (c *collector) wait(t *testing.T, n int) []Frame {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.frames)
		out := append([]Frame(nil), c.frames...)
		c.mu.Unlock()
		if got >= n {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d frames", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func tcpPair(t *testing.T, useTLS bool) (a, b *TCP, recvA, recvB *collector) {
	t.Helper()
	a, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0", TLS: useTLS})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewTCP(TCPOptions{Addr: "127.0.0.1:0", TLS: useTLS})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.SetPeer("b", b.Addr())
	b.SetPeer("a", a.Addr())
	recvA, recvB = &collector{}, &collector{}
	if err := a.Start(recvA.handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(recvB.handle); err != nil {
		t.Fatal(err)
	}
	return a, b, recvA, recvB
}

func testTCPDelivery(t *testing.T, useTLS bool) {
	a, b, recvA, recvB := tcpPair(t, useTLS)
	for i := 0; i < 10; i++ {
		if !a.Send("b", Frame{Kind: uint8(i), From: "a", Data: []byte{byte(i)}}) {
			t.Fatalf("send %d dropped", i)
		}
	}
	got := recvB.wait(t, 10)
	for i, f := range got {
		if f.Kind != uint8(i) || f.From != "a" || len(f.Data) != 1 || f.Data[0] != byte(i) {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
	// Both directions work simultaneously.
	if !b.Send("a", Frame{Kind: 9, From: "b", Data: []byte("pong")}) {
		t.Fatal("reverse send dropped")
	}
	if f := recvA.wait(t, 1)[0]; f.From != "b" || string(f.Data) != "pong" {
		t.Fatalf("reverse frame = %+v", f)
	}
}

func TestTCPDelivery(t *testing.T)    { testTCPDelivery(t, false) }
func TestTCPTLSDelivery(t *testing.T) { testTCPDelivery(t, true) }

func TestTCPDropSemantics(t *testing.T) {
	a, b, _, recvB := tcpPair(t, false)

	// Unknown peer: reported dropped, not an error.
	if a.Send("nobody", Frame{Kind: 1, From: "a"}) {
		t.Fatal("send to unknown peer claimed delivery")
	}
	// Peer listener gone: first Send may succeed into the dead socket's
	// buffer, but the transport must recover to reporting drops, and
	// must never block.
	b.Close()
	dropped := false
	for i := 0; i < 10 && !dropped; i++ {
		dropped = !a.Send("b", Frame{Kind: 2, From: "a"})
		time.Sleep(10 * time.Millisecond)
	}
	if !dropped {
		t.Fatal("sends to a closed peer never reported a drop")
	}
	// Closed transport: everything drops.
	a.Close()
	if a.Send("b", Frame{Kind: 3, From: "a"}) {
		t.Fatal("send on closed transport claimed delivery")
	}
	_ = recvB
}

func TestTCPStartTwice(t *testing.T) {
	a, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Start(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(func(Frame) {}); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestTCPSetPeerRedial(t *testing.T) {
	a, b, _, recvB := tcpPair(t, false)
	if !a.Send("b", Frame{Kind: 1, From: "a"}) {
		t.Fatal("initial send dropped")
	}
	recvB.wait(t, 1)
	// Repointing the peer must drop the cached connection and dial the
	// new address on the next send.
	c, err := NewTCP(TCPOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recvC := &collector{}
	if err := c.Start(recvC.handle); err != nil {
		t.Fatal(err)
	}
	a.SetPeer("b", c.Addr())
	if !a.Send("b", Frame{Kind: 2, From: "a"}) {
		t.Fatal("post-repoint send dropped")
	}
	if f := recvC.wait(t, 1)[0]; f.Kind != 2 {
		t.Fatalf("repointed frame = %+v", f)
	}
	_ = b
}
