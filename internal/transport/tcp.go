package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"
)

// TCPOptions configures a TCP transport endpoint.
type TCPOptions struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port; the
	// bound address is available from Addr() immediately after NewTCP).
	Addr string
	// TLS wraps every connection in TLS. Certificates are ephemeral and
	// self-signed: the transport provides confidentiality on the wire,
	// while authentication rides on the securechan X25519 handshake the
	// controllers run inside it — a man in the middle can drop or
	// corrupt frames (which the control plane already tolerates) but
	// cannot forge or read control messages.
	TLS bool
	// DialTimeout bounds connection establishment and per-frame writes;
	// 0 means 3s. A slow or dead peer costs one timeout, then the frame
	// is reported dropped and the controller's retry machinery owns it.
	DialTimeout time.Duration
}

// TCP is the real-socket Transport: length-prefixed frames over
// TCP (optionally TLS), one lazily-dialed connection per peer, with
// the drop-on-error delivery contract of the package doc. Peers are
// named endpoints registered in an address book (SetPeer); Send to an
// unregistered peer reports a drop.
type TCP struct {
	opts     TCPOptions
	ln       net.Listener
	tlsConf  *tls.Config
	handler  Handler
	handlerM sync.RWMutex

	mu      sync.Mutex
	peers   map[string]string   // name -> dial address
	conns   map[string]net.Conn // name -> established outbound conn
	inbound map[net.Conn]bool   // accepted conns, closed with the transport
	closed  bool

	wg sync.WaitGroup
}

// NewTCP binds the listen address and returns the endpoint. The
// listener is live (so Addr() is concrete and peers can already dial
// in), but inbound frames are not consumed until Start.
func NewTCP(o TCPOptions) (*TCP, error) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	t := &TCP{
		opts:    o,
		peers:   make(map[string]string),
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]bool),
	}
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", o.Addr, err)
	}
	if o.TLS {
		cert, err := ephemeralCert()
		if err != nil {
			ln.Close()
			return nil, err
		}
		t.tlsConf = &tls.Config{
			Certificates: []tls.Certificate{cert},
			// Self-signed by design: endpoint authentication happens in
			// the securechan handshake riding on this transport.
			InsecureSkipVerify: true,
			MinVersion:         tls.VersionTLS13,
		}
		ln = tls.NewListener(ln, t.tlsConf)
	}
	t.ln = ln
	return t, nil
}

// Addr returns the bound listen address (concrete port even when the
// options said ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) the dial address for a named peer.
func (t *TCP) SetPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peers[name] != addr {
		t.peers[name] = addr
		// A stale connection to the old address would silently eat
		// frames; drop it and let the next Send redial.
		if c, ok := t.conns[name]; ok {
			c.Close()
			delete(t.conns, name)
		}
	}
}

// Start begins accepting connections and delivering inbound frames to
// h. Frames are handed to h from per-connection goroutines; the host
// serializes them onto its event loop.
func (t *TCP) Start(h Handler) error {
	t.handlerM.Lock()
	if t.handler != nil {
		t.handlerM.Unlock()
		return fmt.Errorf("transport: Start called twice")
	}
	t.handler = h
	t.handlerM.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.inbound[conn] = true
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.serve(conn)
			}()
		}
	}()
	return nil
}

// serve drains one inbound connection until EOF or error. Errors are
// not reported anywhere: a torn connection is indistinguishable from
// frame loss, which the control plane tolerates by design.
func (t *TCP) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		t.handlerM.RLock()
		h := t.handler
		t.handlerM.RUnlock()
		if h != nil {
			h(f)
		}
	}
}

// Send delivers f to the named peer, dialing on first use. False means
// the frame was dropped: unknown peer, dial failure, write failure, or
// transport closed. A failed write tears the cached connection down so
// the next Send redials.
func (t *TCP) Send(peer string, f Frame) bool {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	conn, ok := t.conns[peer]
	if !ok {
		addr, known := t.peers[peer]
		if !known {
			return false
		}
		conn, err = t.dial(addr)
		if err != nil {
			return false
		}
		t.conns[peer] = conn
	}
	conn.SetWriteDeadline(time.Now().Add(t.opts.DialTimeout))
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		delete(t.conns, peer)
		return false
	}
	return true
}

func (t *TCP) dial(addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	if t.tlsConf != nil {
		return tls.DialWithDialer(&d, "tcp", addr, t.tlsConf)
	}
	return d.Dial("tcp", addr)
}

// Close shuts the listener and every connection down and waits for the
// serve goroutines to drain. Subsequent Sends report false.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	for name, c := range t.conns {
		c.Close()
		delete(t.conns, name)
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// ephemeralCert builds a throwaway self-signed certificate for the
// TLS record layer (see TCPOptions.TLS for why self-signed is sound
// here).
func ephemeralCert() (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "discs-node"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
