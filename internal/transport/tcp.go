package transport

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"discs/internal/obs"
)

// Per-peer transport metric names, registered under the configured
// scope with a ".peer.<name>" suffix (PeerMetric); the obs Prometheus
// exposition lifts that suffix into a {peer="<name>"} label, so a
// scrape sees e.g. discs_transport_bytes_sent{as="7",peer="ctrl.as9"}.
const (
	// MetricDialFailures counts failed dial attempts to the peer.
	MetricDialFailures = "transport.dial_failures"
	// MetricRedials counts connections re-established after a loss —
	// the first successful dial is not a redial.
	MetricRedials = "transport.redials"
	// MetricFramesDropped counts frames the transport knows it did not
	// deliver: queue overflow, dial failure, write failure, shutdown.
	MetricFramesDropped = "transport.frames_dropped"
	// MetricFramesSent counts frames written to the peer's connection.
	MetricFramesSent = "transport.frames_sent"
	// MetricBytesSent counts wire bytes written to the peer.
	MetricBytesSent = "transport.bytes_sent"
	// MetricQueueDepth gauges the peer's outbound queue occupancy.
	MetricQueueDepth = "transport.queue_depth"

	// MetricAcceptRetries counts transient Accept errors survived by
	// the accept loop (not per-peer: inbound conns have no peer name
	// until their first frame arrives).
	MetricAcceptRetries = "transport.accept_retries"
)

// PeerMetric returns the registry name of a per-peer metric: the base
// family plus the ".peer.<name>" suffix the Prometheus exposition
// turns into a peer label.
func PeerMetric(base, peer string) string { return base + ".peer." + peer }

// TCPOptions configures a TCP transport endpoint.
type TCPOptions struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port; the
	// bound address is available from Addr() immediately after NewTCP).
	Addr string
	// TLS wraps every connection in TLS. Certificates are ephemeral and
	// self-signed: the transport provides confidentiality on the wire,
	// while authentication rides on the securechan X25519 handshake the
	// controllers run inside it — a man in the middle can drop or
	// corrupt frames (which the control plane already tolerates) but
	// cannot forge or read control messages.
	TLS bool
	// DialTimeout bounds connection establishment and per-batch writes;
	// 0 means 3s. A slow or dead peer costs its own worker one timeout
	// — never the callers of Send, which only ever enqueue.
	DialTimeout time.Duration
	// SendQueue caps each peer's outbound frame queue; 0 means 256.
	// When the queue is full, Send drops the frame and reports false —
	// the bounded-memory spelling of the package's loss tolerance.
	SendQueue int
	// Registry receives the transport's metrics (per-peer families
	// under Scope). Nil means a private registry: counters still count,
	// nobody scrapes them.
	Registry *obs.Registry
	// Scope prefixes every transport metric (e.g. "as7.").
	Scope string
	// Dial overrides connection establishment (tests inject hanging or
	// flaky dials; proxies substitute their own). Nil means TCP, or
	// TLS-over-TCP when TLS is set. The context is canceled when the
	// transport closes, so a hung dial never outlives Close.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the real-socket Transport: length-prefixed frames over
// TCP (optionally TLS), with one dedicated send worker and bounded
// outbound queue per registered peer. Send never blocks and never
// dials: it enqueues to the peer's worker, which owns dialing, write
// batching, teardown and redial. A dead or blackholed peer therefore
// costs only its own queue — Sends to healthy peers and Close proceed
// at full speed. Peers are named endpoints registered in an address
// book (SetPeer); Send to an unregistered peer reports a drop.
type TCP struct {
	opts    TCPOptions
	ln      net.Listener
	tlsConf *tls.Config

	handler  Handler
	handlerM sync.RWMutex

	ctx    context.Context
	cancel context.CancelFunc
	dialFn func(ctx context.Context, addr string) (net.Conn, error)

	sc            obs.Scope
	acceptRetries *obs.Counter

	mu      sync.RWMutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]bool // accepted conns, closed with the transport
	closed  bool

	wg sync.WaitGroup
}

// tcpPeer is one peer's outbound half: address, bounded frame queue,
// and the connection its worker currently owns. All mutable state is
// under mu; the queue hands encoded frames from Send to the worker.
type tcpPeer struct {
	t    *TCP
	name string

	q    chan []byte
	stop chan struct{}

	mu            sync.Mutex
	addr          string
	conn          net.Conn // worker-owned; closed by SetPeer/Close to interrupt
	down          bool     // last dial or write failed; cleared by a successful dial
	everConnected bool
	lastDialFail  time.Time
	backoff       time.Duration

	dialFailures  *obs.Counter
	redials       *obs.Counter
	framesDropped *obs.Counter
	framesSent    *obs.Counter
	bytesSent     *obs.Counter
	queueDepth    *obs.Gauge
}

const (
	defaultSendQueue = 256
	// maxWriteBatch caps how many queued bytes one conn.Write carries;
	// coalescing frames into one write is where the burst throughput
	// comes from (a syscall per train instead of per frame).
	maxWriteBatch = 64 << 10
	// Dial backoff to a failing peer: exponential between these bounds,
	// reset by a successful dial or an address change.
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = time.Second
	// Accept backoff after a transient Accept error (EMFILE, ...).
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// NewTCP binds the listen address and returns the endpoint. The
// listener is live (so Addr() is concrete and peers can already dial
// in), but inbound frames are not consumed until Start.
func NewTCP(o TCPOptions) (*TCP, error) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.SendQueue <= 0 {
		o.SendQueue = defaultSendQueue
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &TCP{
		opts:    o,
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]bool),
		sc:      reg.Scope(o.Scope),
	}
	t.ctx, t.cancel = context.WithCancel(context.Background())
	t.acceptRetries = t.sc.Counter(MetricAcceptRetries)
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		t.cancel()
		return nil, fmt.Errorf("transport: listen %s: %w", o.Addr, err)
	}
	if o.TLS {
		cert, err := ephemeralCert()
		if err != nil {
			ln.Close()
			t.cancel()
			return nil, err
		}
		t.tlsConf = &tls.Config{
			Certificates: []tls.Certificate{cert},
			// Self-signed by design: endpoint authentication happens in
			// the securechan handshake riding on this transport.
			InsecureSkipVerify: true,
			MinVersion:         tls.VersionTLS13,
		}
		ln = tls.NewListener(ln, t.tlsConf)
	}
	t.ln = ln
	t.dialFn = o.Dial
	if t.dialFn == nil {
		t.dialFn = t.defaultDial
	}
	return t, nil
}

// Addr returns the bound listen address (concrete port even when the
// options said ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) the dial address for a named peer,
// spawning the peer's send worker on first registration. Repointing an
// existing peer tears its cached connection down (a stale connection
// to the old address would silently eat frames) and resets its dial
// backoff; the worker redials the new address on the next frame.
func (t *TCP) SetPeer(name, addr string) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	p, ok := t.peers[name]
	if !ok {
		p = t.newPeer(name)
		t.peers[name] = p
		t.wg.Add(1)
		go p.run()
	}
	t.mu.Unlock()

	p.mu.Lock()
	if p.addr != addr {
		p.addr = addr
		p.down = false
		p.backoff = 0
		p.lastDialFail = time.Time{}
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	p.mu.Unlock()
}

func (t *TCP) newPeer(name string) *tcpPeer {
	return &tcpPeer{
		t:             t,
		name:          name,
		q:             make(chan []byte, t.opts.SendQueue),
		stop:          make(chan struct{}),
		dialFailures:  t.sc.Counter(PeerMetric(MetricDialFailures, name)),
		redials:       t.sc.Counter(PeerMetric(MetricRedials, name)),
		framesDropped: t.sc.Counter(PeerMetric(MetricFramesDropped, name)),
		framesSent:    t.sc.Counter(PeerMetric(MetricFramesSent, name)),
		bytesSent:     t.sc.Counter(PeerMetric(MetricBytesSent, name)),
		queueDepth:    t.sc.Gauge(PeerMetric(MetricQueueDepth, name)),
	}
}

// PeerStats is a point-in-time view of one peer's transport counters,
// for tests and programmatic health checks; scrapes read the same
// numbers from the registry.
type PeerStats struct {
	DialFailures  uint64
	Redials       uint64
	FramesDropped uint64
	FramesSent    uint64
	BytesSent     uint64
	QueueDepth    int64
	Down          bool
}

// PeerStats returns the named peer's counters; ok is false for an
// unregistered peer.
func (t *TCP) PeerStats(name string) (PeerStats, bool) {
	t.mu.RLock()
	p := t.peers[name]
	t.mu.RUnlock()
	if p == nil {
		return PeerStats{}, false
	}
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	return PeerStats{
		DialFailures:  p.dialFailures.Value(),
		Redials:       p.redials.Value(),
		FramesDropped: p.framesDropped.Value(),
		FramesSent:    p.framesSent.Value(),
		BytesSent:     p.bytesSent.Value(),
		QueueDepth:    int64(len(p.q)),
		Down:          down,
	}, true
}

// Start begins accepting connections and delivering inbound frames to
// h. Frames are handed to h from per-connection goroutines; the host
// serializes them onto its event loop. Transient Accept errors
// (EMFILE and friends) are survived with capped backoff — the loop
// exits only when the transport closes.
func (t *TCP) Start(h Handler) error {
	t.handlerM.Lock()
	if t.handler != nil {
		t.handlerM.Unlock()
		return fmt.Errorf("transport: Start called twice")
	}
	t.handler = h
	t.handlerM.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		backoff := time.Duration(0)
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				if t.isClosed() || errors.Is(err, net.ErrClosed) {
					return
				}
				// Transient (out of fds, aborted handshake, ...): the
				// node must not silently stop receiving forever.
				t.acceptRetries.Inc()
				if backoff == 0 {
					backoff = acceptBackoffMin
				} else if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				select {
				case <-t.ctx.Done():
					return
				case <-time.After(backoff):
				}
				continue
			}
			backoff = 0
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.inbound[conn] = true
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.serve(conn)
			}()
		}
	}()
	return nil
}

func (t *TCP) isClosed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.closed
}

// serve drains one inbound connection until EOF or error. Errors are
// not reported anywhere: a torn connection is indistinguishable from
// frame loss, which the control plane tolerates by design. The reader
// is buffered so a train of coalesced frames costs one syscall, not
// two per frame.
func (t *TCP) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	r := newFrameReader(conn)
	for {
		f, err := ReadFrame(r)
		if err != nil {
			return
		}
		t.handlerM.RLock()
		h := t.handler
		t.handlerM.RUnlock()
		if h != nil {
			h(f)
		}
	}
}

// Send enqueues f for delivery to the named peer's send worker and
// never blocks. False means the frame was dropped (unknown peer, full
// queue, transport closed) or the peer is currently down (its last
// dial or write failed) — the caller's retry machinery owns recovery
// either way. True means the frame was accepted by a healthy peer's
// queue; delivery remains best-effort.
func (t *TCP) Send(peer string, f Frame) bool {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return false
	}
	t.mu.RLock()
	p := t.peers[peer]
	closed := t.closed
	t.mu.RUnlock()
	if closed || p == nil {
		return false
	}
	select {
	case p.q <- buf:
		p.queueDepth.Set(int64(len(p.q)))
		p.mu.Lock()
		down := p.down
		p.mu.Unlock()
		return !down
	default:
		p.framesDropped.Inc()
		return false
	}
}

// run is the peer's send worker: it drains the queue, coalesces
// frames into batched writes, and owns the connection lifecycle
// (dial, teardown, redial with backoff). One worker per peer keeps
// frame order FIFO and confines every slow operation — dial timeouts,
// blocked writes — to the peer that earned them.
func (p *tcpPeer) run() {
	defer p.t.wg.Done()
	batch := make([][]byte, 0, 64)
	var wbuf []byte
	for {
		var first []byte
		select {
		case first = <-p.q:
		case <-p.stop:
			p.drainOnStop()
			return
		}
		batch = append(batch[:0], first)
		total := len(first)
	coalesce:
		for total < maxWriteBatch {
			select {
			case b := <-p.q:
				batch = append(batch, b)
				total += len(b)
			default:
				break coalesce
			}
		}
		p.queueDepth.Set(int64(len(p.q)))
		wbuf = p.flush(batch, wbuf[:0])
	}
}

// drainOnStop counts every undelivered queued frame as dropped and
// zeroes the depth gauge.
func (p *tcpPeer) drainOnStop() {
	for {
		select {
		case <-p.q:
			p.framesDropped.Inc()
		default:
			p.queueDepth.Set(0)
			return
		}
	}
}

// flush writes one coalesced batch, dialing first if the peer has no
// connection. Failures drop the whole batch (a partially written
// frame tears the stream anyway) and mark the peer down until a dial
// succeeds.
func (p *tcpPeer) flush(batch [][]byte, wbuf []byte) []byte {
	conn := p.currentConn()
	if conn == nil {
		conn = p.dial()
		if conn == nil {
			p.framesDropped.Add(uint64(len(batch)))
			return wbuf
		}
	}
	for _, b := range batch {
		wbuf = append(wbuf, b...)
	}
	conn.SetWriteDeadline(time.Now().Add(p.t.opts.DialTimeout))
	if _, err := conn.Write(wbuf); err != nil {
		p.teardown(conn)
		p.framesDropped.Add(uint64(len(batch)))
		return wbuf
	}
	p.framesSent.Add(uint64(len(batch)))
	p.bytesSent.Add(uint64(len(wbuf)))
	return wbuf
}

func (p *tcpPeer) currentConn() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// dial establishes the peer connection, honoring the failure backoff.
// It runs outside p.mu (a dial may take DialTimeout), so SetPeer and
// Close stay responsive while it is in flight; the transport context
// cancels it on Close.
func (p *tcpPeer) dial() net.Conn {
	p.mu.Lock()
	addr := p.addr
	inBackoff := p.backoff > 0 && time.Since(p.lastDialFail) < p.backoff
	p.mu.Unlock()
	if addr == "" || inBackoff {
		return nil
	}
	c, err := p.t.dialFn(p.t.ctx, addr)

	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.dialFailures.Inc()
		p.down = true
		p.lastDialFail = time.Now()
		if p.backoff == 0 {
			p.backoff = dialBackoffMin
		} else if p.backoff *= 2; p.backoff > dialBackoffMax {
			p.backoff = dialBackoffMax
		}
		return nil
	}
	select {
	case <-p.stop:
		c.Close()
		return nil
	default:
	}
	if p.addr != addr {
		// Repointed while dialing; the old address's conn is stale.
		c.Close()
		return nil
	}
	if p.everConnected {
		p.redials.Inc()
	}
	p.everConnected = true
	p.down = false
	p.backoff = 0
	p.conn = c
	return c
}

// teardown discards a failed connection and marks the peer down; the
// next batch redials immediately (write failures carry no dial
// backoff — the address may be fine and the connection merely stale).
func (p *tcpPeer) teardown(conn net.Conn) {
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.down = true
	p.mu.Unlock()
	conn.Close()
}

func (t *TCP) defaultDial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	if t.tlsConf != nil {
		td := tls.Dialer{NetDialer: &d, Config: t.tlsConf}
		return td.DialContext(ctx, "tcp", addr)
	}
	return d.DialContext(ctx, "tcp", addr)
}

// Close shuts the listener, every peer worker and every connection
// down and waits for all goroutines to drain. It is bounded even with
// peers mid-dial or mid-write: the dial context is canceled and live
// connections are closed under it, which errors the blocked calls
// out. Subsequent Sends report false.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.cancel() // interrupt in-flight dials
	for _, p := range peers {
		close(p.stop)
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close() // interrupt a blocked write
			p.conn = nil
		}
		p.mu.Unlock()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// ephemeralCert builds a throwaway self-signed certificate for the
// TLS record layer (see TCPOptions.TLS for why self-signed is sound
// here).
func ephemeralCert() (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "discs-node"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
