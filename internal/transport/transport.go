// Package transport is the controller-to-controller I/O seam of the
// DISCS reproduction: the same frame vocabulary the in-simulator
// wiring uses, abstracted so the core control plane can run over real
// sockets unchanged.
//
// A Transport moves opaque frames between named controller endpoints
// with the delivery contract of the securechan record layer: frames
// may be lost or arrive late, but arrive intact and at most once per
// send. Nothing here retries — the controller state machines already
// re-drive idempotent exchanges on loss (they were built for a
// fault-injecting simulator), so a real transport is allowed to drop a
// frame whenever a connection is down and simply report it.
//
// Two implementations exist:
//
//   - the in-sim adapter (internal/core, simConn), which maps Send to
//     a netsim link delivery and keeps bit-identical simulation
//     behavior;
//   - TCP (tcp.go in this package), stdlib TCP+TLS with
//     length-prefixed frames and per-peer asynchronous send workers
//     (bounded queues, coalesced writes, drop-on-error with backoff
//     redial), for running DISCS as a real multi-process service.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame is one transport unit: a frame kind (the core control plane
// defines the values — handshake hellos, protected records, data-plane
// payloads), the sender's controller name, and an opaque payload.
type Frame struct {
	Kind uint8
	From string
	Data []byte
}

// Handler consumes inbound frames. Transports may invoke it from
// internal goroutines; serialization onto the controller's event loop
// is the host's responsibility.
type Handler func(Frame)

// Transport moves frames between named controller endpoints.
type Transport interface {
	// Start begins delivering inbound frames to h. It must be called
	// exactly once, before the first Send.
	Start(h Handler) error
	// Send delivers f to the named peer, best-effort, and must not
	// block on the peer's health: false means the frame was dropped
	// (unknown peer, connection down, queue full, transport closed)
	// and the caller's retry machinery owns recovery.
	Send(peer string, f Frame) bool
	// Close stops the transport; subsequent Sends report false.
	Close() error
}

// Stream framing shared by the TCP implementation and its tests:
// a 4-byte big-endian payload length, then kind (1 byte), sender-name
// length (1 byte), sender name, and the payload bytes.

// MaxFrameSize caps the payload length a reader accepts, so a
// misbehaving peer cannot make a node allocate unbounded memory from
// a forged length prefix.
const MaxFrameSize = 1 << 20

// MaxFromLen bounds the sender-name field of the wire format.
const MaxFromLen = 255

// ErrFrameTooBig reports a frame exceeding MaxFrameSize (or a name
// exceeding MaxFromLen) on either the write or the read side.
var ErrFrameTooBig = errors.New("transport: frame too big")

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.From) > MaxFromLen {
		return dst, fmt.Errorf("sender name %d bytes: %w", len(f.From), ErrFrameTooBig)
	}
	n := 2 + len(f.From) + len(f.Data)
	if n > MaxFrameSize {
		return dst, fmt.Errorf("frame payload %d bytes: %w", n, ErrFrameTooBig)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Kind, byte(len(f.From)))
	dst = append(dst, f.From...)
	dst = append(dst, f.Data...)
	return dst, nil
}

// newFrameReader wraps a connection for ReadFrame: buffering means a
// train of coalesced frames is pulled from the kernel in one read
// instead of two syscalls per frame.
func newFrameReader(r io.Reader) io.Reader { return bufio.NewReaderSize(r, 64<<10) }

// ReadFrame reads one frame from r, enforcing MaxFrameSize.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("frame payload %d bytes: %w", n, ErrFrameTooBig)
	}
	if n < 2 {
		return Frame{}, fmt.Errorf("transport: frame payload %d bytes, want >= 2", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, err
	}
	fromLen := int(buf[1])
	if 2+fromLen > len(buf) {
		return Frame{}, fmt.Errorf("transport: sender name %d bytes overruns %d-byte payload", fromLen, n)
	}
	return Frame{
		Kind: buf[0],
		From: string(buf[2 : 2+fromLen]),
		Data: buf[2+fromLen:],
	}, nil
}
