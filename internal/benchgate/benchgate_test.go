package benchgate

import (
	"path/filepath"
	"testing"
)

// fatalRecorder overrides Fatalf so gate failures can be asserted
// in-process; the embedded TB supplies the rest of the interface.
type fatalRecorder struct {
	testing.TB
	failed bool
}

func (f *fatalRecorder) Fatalf(string, ...any) { f.failed = true }
func (f *fatalRecorder) Helper()               {}

func TestBudget(t *testing.T) {
	if b := Budget(t, "ns/op", 100, 100, 0.25); b != 125 {
		t.Fatalf("budget = %v, want 125", b)
	}
	Budget(t, "ns/op", 109.9, 100, 0.1) // inside slack: passes

	f := &fatalRecorder{TB: t}
	Budget(f, "ns/op", 111, 100, 0.1)
	if !f.failed {
		t.Fatal("Budget accepted a measurement over budget")
	}
}

func TestFloor(t *testing.T) {
	if fl := Floor(t, "mpps", 100, 100, 0.1); fl != 90 {
		t.Fatalf("floor = %v, want 90", fl)
	}
	Floor(t, "mpps", 90.1, 100, 0.1)  // inside slack: passes
	Floor(t, "mpps", 150, 100, 0.1)   // faster than committed: passes
	Floor(t, "mpps", 0.91, 1.0, 0.10) // boundary-ish: passes

	f := &fatalRecorder{TB: t}
	Floor(f, "mpps", 89.9, 100, 0.1)
	if !f.failed {
		t.Fatal("Floor accepted a measurement under the floor")
	}
	// A regression to half the committed throughput must always trip.
	f2 := &fatalRecorder{TB: t}
	Floor(f2, "mpps", 50, 100, 0.25)
	if !f2.failed {
		t.Fatal("Floor accepted a 2x throughput regression")
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	type report struct {
		Mpps float64 `json:"mpps"`
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	Write(t, path, report{Mpps: 4.8})
	var got report
	Load(t, path, "make bench-test", &got)
	if got.Mpps != 4.8 {
		t.Fatalf("round trip = %+v", got)
	}
}
