// Package benchgate is the shared helper behind the BENCH_*.json
// budget gates: every gate loads a committed baseline, compares a
// fresh measurement against it with a relative slack, and every
// report target rewrites the baseline as indented JSON. The four
// original gates (data-plane, paper, topology, obs) each carried a
// private copy of this plumbing; they and any new gate share this one.
package benchgate

import (
	"encoding/json"
	"os"
	"testing"
)

// Load reads the committed baseline at path into out. regen names the
// make target that (re)creates the file, for the failure message;
// pass "" for hand-committed baselines.
func Load(tb testing.TB, path, regen string, out any) {
	tb.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		if regen != "" {
			tb.Fatalf("committed baseline missing (run %s): %v", regen, err)
		}
		tb.Fatalf("committed baseline missing: %v", err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		tb.Fatalf("%s: %v", path, err)
	}
}

// Write commits report to path as indented JSON with a trailing
// newline, the canonical BENCH_*.json form.
func Write(tb testing.TB, path string, report any) {
	tb.Helper()
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// Budget enforces got ≤ committed·(1+slack) and returns the computed
// budget for logging. what should name the measurement with its unit,
// e.g. "paper scenario at -workers 1 (s)". Use it for lower-is-better
// metrics (latency, allocations); for higher-is-better metrics
// (throughput) use Floor.
func Budget(tb testing.TB, what string, got, committed, slack float64) float64 {
	tb.Helper()
	budget := committed * (1 + slack)
	if got > budget {
		tb.Fatalf("%s: %.3f over budget %.3f (committed %.3f +%.0f%%)",
			what, got, budget, committed, slack*100)
	}
	return budget
}

// Floor enforces got ≥ committed·(1−slack) and returns the computed
// floor for logging — the higher-is-better dual of Budget, for gating
// throughput metrics like Mpps directly instead of inverting them into
// a ns/op budget.
func Floor(tb testing.TB, what string, got, committed, slack float64) float64 {
	tb.Helper()
	floor := committed * (1 - slack)
	if got < floor {
		tb.Fatalf("%s: %.3f under floor %.3f (committed %.3f -%.0f%%)",
			what, got, floor, committed, slack*100)
	}
	return floor
}
