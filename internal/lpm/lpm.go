// Package lpm provides longest-prefix-match tables over IPv4 and IPv6
// prefixes, built on binary tries.
//
// DISCS border routers and controllers use several LPM tables (§V-A of
// the paper): the Pfx2AS mapping table and the four function tables
// (In-Src, In-Dst, Out-Src, Out-Dst). All of them need exact-prefix
// insert/delete and longest-prefix lookup by address; this package
// provides a single generic implementation.
package lpm

import (
	"fmt"
	"net/netip"
	"sort"
)

// Table is a longest-prefix-match table mapping prefixes to values of
// type V. IPv4 and IPv6 prefixes live in separate tries inside the same
// table. IPv4-mapped IPv6 addresses are treated as IPv4.
//
// Table is not safe for concurrent mutation; concurrent readers are
// safe as long as there is no writer. The zero value is unusable; use
// New.
type Table[V any] struct {
	v4, v6 *node[V]
	n      int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New creates an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{v4: &node[V]{}, v6: &node[V]{}}
}

// Len returns the number of prefixes in the table.
func (t *Table[V]) Len() int { return t.n }

// Canon normalizes a prefix the way this package stores it: unwraps
// 4-in-6 addresses and masks host bits. It returns an error for invalid
// prefixes. Callers that keep prefix-keyed side tables next to an lpm
// Table (e.g. the DISCS function tables) use it so their keys compare
// equal to the Table's.
func Canon(p netip.Prefix) (netip.Prefix, error) {
	if !p.IsValid() {
		return netip.Prefix{}, fmt.Errorf("lpm: invalid prefix %v", p)
	}
	a := p.Addr()
	if a.Is4In6() {
		bits := p.Bits() - 96
		if bits < 0 {
			return netip.Prefix{}, fmt.Errorf("lpm: 4-in-6 prefix %v shorter than /96", p)
		}
		p = netip.PrefixFrom(a.Unmap(), bits)
	}
	return p.Masked(), nil
}

// bit returns bit i (0 = most significant) of the address.
func bit(a netip.Addr, i int) int {
	b := a.AsSlice()
	return int(b[i/8]>>(7-i%8)) & 1
}

func (t *Table[V]) root(a netip.Addr) *node[V] {
	if a.Is4() {
		return t.v4
	}
	return t.v6
}

// Insert adds or replaces the value for an exact prefix.
func (t *Table[V]) Insert(p netip.Prefix, v V) error {
	p, err := Canon(p)
	if err != nil {
		return err
	}
	n := t.root(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := bit(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.n++
	}
	n.val, n.set = v, true
	return nil
}

// Delete removes an exact prefix. It reports whether the prefix was
// present. Trie nodes are left in place (they are tiny and the DISCS
// tables are rebuilt wholesale by the controller on policy change).
func (t *Table[V]) Delete(p netip.Prefix) bool {
	p, err := Canon(p)
	if err != nil {
		return false
	}
	n := t.root(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bit(p.Addr(), i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.n--
	return true
}

// Get returns the value stored for the exact prefix.
func (t *Table[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	p, err := Canon(p)
	if err != nil {
		return zero, false
	}
	n := t.root(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bit(p.Addr(), i)]
		if n == nil {
			return zero, false
		}
	}
	return n.val, n.set
}

// Lookup performs a longest-prefix match for the address and returns
// the matched value, the matched prefix, and whether anything matched.
func (t *Table[V]) Lookup(a netip.Addr) (V, netip.Prefix, bool) {
	var zero V
	v, bestLen := t.lookupVal(a)
	if bestLen < 0 {
		return zero, netip.Prefix{}, false
	}
	return v, netip.PrefixFrom(a.Unmap(), bestLen).Masked(), true
}

// lookupVal is the allocation-free core of Lookup: it returns the
// longest-match value and prefix length, or length -1 when nothing
// matched. The address bytes are extracted once up front instead of per
// trie level — this runs for every packet on the DISCS forwarding path.
func (t *Table[V]) lookupVal(a netip.Addr) (V, int) {
	var zero V
	if !a.IsValid() {
		return zero, -1
	}
	a = a.Unmap()
	var buf [16]byte
	maxBits := 128
	if a.Is4() {
		b4 := a.As4()
		copy(buf[:4], b4[:])
		maxBits = 32
	} else {
		buf = a.As16()
	}
	n := t.root(a)
	bestLen := -1
	var best V
	for i := 0; ; i++ {
		if n.set {
			bestLen, best = i, n.val
		}
		if i == maxBits {
			break
		}
		n = n.child[buf[i>>3]>>(7-i&7)&1]
		if n == nil {
			break
		}
	}
	return best, bestLen
}

// LookupVal is Lookup without materializing the matched prefix; the
// fast path for callers that only need the value.
func (t *Table[V]) LookupVal(a netip.Addr) (V, bool) {
	v, bestLen := t.lookupVal(a)
	return v, bestLen >= 0
}

// Contains reports whether a longest-prefix match exists for a.
func (t *Table[V]) Contains(a netip.Addr) bool {
	_, _, ok := t.Lookup(a)
	return ok
}

// Walk visits every (prefix, value) pair in the table in unspecified
// order. Returning false from fn stops the walk.
func (t *Table[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	var rec func(n *node[V], addr [16]byte, depth int, v6 bool) bool
	rec = func(n *node[V], addr [16]byte, depth int, v6 bool) bool {
		if n == nil {
			return true
		}
		if n.set {
			var p netip.Prefix
			if v6 {
				p = netip.PrefixFrom(netip.AddrFrom16(addr), depth)
			} else {
				var a4 [4]byte
				copy(a4[:], addr[:4])
				p = netip.PrefixFrom(netip.AddrFrom4(a4), depth)
			}
			if !fn(p, n.val) {
				return false
			}
		}
		if n.child[0] != nil && !rec(n.child[0], addr, depth+1, v6) {
			return false
		}
		if n.child[1] != nil {
			addr[depth/8] |= 1 << (7 - depth%8)
			if !rec(n.child[1], addr, depth+1, v6) {
				return false
			}
		}
		return true
	}
	var a [16]byte
	if !rec(t.v4, a, 0, false) {
		return
	}
	a = [16]byte{}
	rec(t.v6, a, 0, true)
}

// Prefixes returns all prefixes in the table sorted by string form,
// useful for deterministic iteration in tests and reports.
func (t *Table[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.n)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
