// Package lpm provides longest-prefix-match tables over IPv4 and IPv6
// prefixes, built on multibit tries.
//
// DISCS border routers and controllers use several LPM tables (§V-A of
// the paper): the Pfx2AS mapping table and the four function tables
// (In-Src, In-Dst, Out-Src, Out-Dst). All of them need exact-prefix
// insert/delete and longest-prefix lookup by address; this package
// provides a single generic implementation.
//
// The trie uses a 4-bit stride with controlled prefix expansion: each
// node covers one address nibble, prefixes whose length is not a
// multiple of four are expanded into the 2^(4-r) slots they cover, and
// a lookup inspects at most 8 nodes for IPv4 (32 for IPv6) instead of
// one per bit. The expansion bookkeeping (the exact entry list per
// node) makes insert and delete a little dearer, which is the right
// trade: DISCS mutates tables on control-plane events and looks them
// up for every packet.
package lpm

import (
	"fmt"
	"net/netip"
	"sort"
)

// stride is the number of address bits consumed per trie level.
const stride = 4

// fanout is the number of child slots per node (2^stride).
const fanout = 1 << stride

// Table is a longest-prefix-match table mapping prefixes to values of
// type V. IPv4 and IPv6 prefixes live in separate tries inside the same
// table. IPv4-mapped IPv6 addresses are treated as IPv4.
//
// Table is not safe for concurrent mutation; concurrent readers are
// safe as long as there is no writer. The zero value is unusable; use
// New.
type Table[V any] struct {
	v4, v6 *node[V]
	// def4/def6 hold the zero-length prefixes (0.0.0.0/0, ::/0), which
	// have no nibble to expand into.
	def4, def6       V
	defSet4, defSet6 bool
	n                int
}

// entry is one exact prefix terminating in a node: a prefix of length
// 4·depth+r (r in 1..4) whose last r bits are the top bits of suffix.
type entry[V any] struct {
	suffix uint8 // the prefix's bits within this node's nibble, left-aligned, low bits zero
	r      uint8 // number of meaningful suffix bits, 1..4
	val    V
}

// node covers one 4-bit stride of the address space. vals/rlen are the
// expanded view consulted by lookups: slot s holds the longest prefix
// terminating in this node that covers s (rlen is its length relative
// to the node, 0 = none). exact is the authoritative entry list the
// expansion is recomputed from on delete.
type node[V any] struct {
	child [fanout]*node[V]
	vals  [fanout]V
	rlen  [fanout]uint8
	exact []entry[V]
}

// New creates an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{v4: &node[V]{}, v6: &node[V]{}}
}

// Len returns the number of prefixes in the table.
func (t *Table[V]) Len() int { return t.n }

// Canon normalizes a prefix the way this package stores it: unwraps
// 4-in-6 addresses and masks host bits. It returns an error for invalid
// prefixes. Callers that keep prefix-keyed side tables next to an lpm
// Table (e.g. the DISCS function tables) use it so their keys compare
// equal to the Table's.
func Canon(p netip.Prefix) (netip.Prefix, error) {
	if !p.IsValid() {
		return netip.Prefix{}, fmt.Errorf("lpm: invalid prefix %v", p)
	}
	a := p.Addr()
	if a.Is4In6() {
		bits := p.Bits() - 96
		if bits < 0 {
			return netip.Prefix{}, fmt.Errorf("lpm: 4-in-6 prefix %v shorter than /96", p)
		}
		p = netip.PrefixFrom(a.Unmap(), bits)
	}
	return p.Masked(), nil
}

func (t *Table[V]) root(a netip.Addr) *node[V] {
	if a.Is4() {
		return t.v4
	}
	return t.v6
}

// addrBytes extracts the address bytes once up front; nibble i of the
// address is then two shifts away.
func addrBytes(a netip.Addr) (buf [16]byte, nibbles int) {
	if a.Is4() {
		b4 := a.As4()
		copy(buf[:4], b4[:])
		return buf, 8
	}
	return a.As16(), 32
}

// nibble returns 4-bit group i (0 = most significant) of buf.
func nibble(buf *[16]byte, i int) uint8 {
	return buf[i>>1] >> (4 - (i&1)<<2) & 0x0f
}

// walkTo descends (creating nodes when create is set) to the node a
// prefix of length bits terminates in, returning the node, the suffix
// nibble index, and the per-node remainder r in 1..4. bits must be > 0.
func (t *Table[V]) walkTo(a netip.Addr, bits int, create bool) (n *node[V], nib uint8, r uint8) {
	buf, _ := addrBytes(a)
	depth := (bits - 1) / stride
	n = t.root(a)
	for i := 0; i < depth; i++ {
		b := nibble(&buf, i)
		if n.child[b] == nil {
			if !create {
				return nil, 0, 0
			}
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	return n, nibble(&buf, depth), uint8(bits - depth*stride)
}

// covered returns the slot range [base, base+count) an entry expands
// into.
func covered(suffix, r uint8) (base, count int) {
	return int(suffix), 1 << (stride - r)
}

// Insert adds or replaces the value for an exact prefix.
func (t *Table[V]) Insert(p netip.Prefix, v V) error {
	p, err := Canon(p)
	if err != nil {
		return err
	}
	a := p.Addr()
	if p.Bits() == 0 {
		if a.Is4() {
			if !t.defSet4 {
				t.n++
			}
			t.def4, t.defSet4 = v, true
		} else {
			if !t.defSet6 {
				t.n++
			}
			t.def6, t.defSet6 = v, true
		}
		return nil
	}
	n, nib, r := t.walkTo(a, p.Bits(), true)
	suffix := nib & (0xf0 >> r)
	replaced := false
	for i := range n.exact {
		if n.exact[i].suffix == suffix && n.exact[i].r == r {
			n.exact[i].val, replaced = v, true
			break
		}
	}
	if !replaced {
		n.exact = append(n.exact, entry[V]{suffix: suffix, r: r, val: v})
		t.n++
	}
	base, count := covered(suffix, r)
	for s := base; s < base+count; s++ {
		if n.rlen[s] <= r {
			n.vals[s], n.rlen[s] = v, r
		}
	}
	return nil
}

// recompute rebuilds the expanded slots an entry covered from the
// node's remaining exact entries (the rare path: delete only).
func (n *node[V]) recompute(base, count int) {
	for s := base; s < base+count; s++ {
		var zero V
		n.vals[s], n.rlen[s] = zero, 0
		for i := range n.exact {
			e := &n.exact[i]
			if e.r >= n.rlen[s] && int(e.suffix) <= s && s < int(e.suffix)+1<<(stride-e.r) {
				n.vals[s], n.rlen[s] = e.val, e.r
			}
		}
	}
}

// Delete removes an exact prefix. It reports whether the prefix was
// present. Trie nodes are left in place (they are tiny and the DISCS
// tables are rebuilt wholesale by the controller on policy change).
func (t *Table[V]) Delete(p netip.Prefix) bool {
	p, err := Canon(p)
	if err != nil {
		return false
	}
	a := p.Addr()
	if p.Bits() == 0 {
		var zero V
		if a.Is4() {
			if !t.defSet4 {
				return false
			}
			t.def4, t.defSet4 = zero, false
		} else {
			if !t.defSet6 {
				return false
			}
			t.def6, t.defSet6 = zero, false
		}
		t.n--
		return true
	}
	n, nib, r := t.walkTo(a, p.Bits(), false)
	if n == nil {
		return false
	}
	suffix := nib & (0xf0 >> r)
	for i := range n.exact {
		if n.exact[i].suffix == suffix && n.exact[i].r == r {
			n.exact[i] = n.exact[len(n.exact)-1]
			n.exact = n.exact[:len(n.exact)-1]
			base, count := covered(suffix, r)
			n.recompute(base, count)
			t.n--
			return true
		}
	}
	return false
}

// Get returns the value stored for the exact prefix.
func (t *Table[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	p, err := Canon(p)
	if err != nil {
		return zero, false
	}
	a := p.Addr()
	if p.Bits() == 0 {
		if a.Is4() {
			return t.def4, t.defSet4
		}
		return t.def6, t.defSet6
	}
	n, nib, r := t.walkTo(a, p.Bits(), false)
	if n == nil {
		return zero, false
	}
	suffix := nib & (0xf0 >> r)
	for i := range n.exact {
		if n.exact[i].suffix == suffix && n.exact[i].r == r {
			return n.exact[i].val, true
		}
	}
	return zero, false
}

// Lookup performs a longest-prefix match for the address and returns
// the matched value, the matched prefix, and whether anything matched.
func (t *Table[V]) Lookup(a netip.Addr) (V, netip.Prefix, bool) {
	var zero V
	v, bestLen := t.lookupVal(a)
	if bestLen < 0 {
		return zero, netip.Prefix{}, false
	}
	return v, netip.PrefixFrom(a.Unmap(), bestLen).Masked(), true
}

// lookupVal is the allocation-free core of Lookup: it returns the
// longest-match value and prefix length, or length -1 when nothing
// matched. This runs for every packet on the DISCS forwarding path: one
// node per address nibble, each visit an expanded-slot load and a child
// load, with no per-bit branching.
func (t *Table[V]) lookupVal(a netip.Addr) (V, int) {
	var best V
	bestLen := -1
	if !a.IsValid() {
		return best, -1
	}
	a = a.Unmap()
	buf, nibbles := addrBytes(a)
	var n *node[V]
	if a.Is4() {
		if t.defSet4 {
			best, bestLen = t.def4, 0
		}
		n = t.v4
	} else {
		if t.defSet6 {
			best, bestLen = t.def6, 0
		}
		n = t.v6
	}
	for i := 0; i < nibbles; i++ {
		nib := buf[i>>1] >> (4 - (i&1)<<2) & 0x0f
		if r := n.rlen[nib]; r > 0 {
			best, bestLen = n.vals[nib], i*stride+int(r)
		}
		n = n.child[nib]
		if n == nil {
			break
		}
	}
	return best, bestLen
}

// LookupVal is Lookup without materializing the matched prefix; the
// fast path for callers that only need the value.
func (t *Table[V]) LookupVal(a netip.Addr) (V, bool) {
	v, bestLen := t.lookupVal(a)
	return v, bestLen >= 0
}

// Contains reports whether a longest-prefix match exists for a.
func (t *Table[V]) Contains(a netip.Addr) bool {
	_, _, ok := t.Lookup(a)
	return ok
}

// Walk visits every (prefix, value) pair in the table in unspecified
// order. Returning false from fn stops the walk.
func (t *Table[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	mk := func(addr [16]byte, bits int, v6 bool) netip.Prefix {
		if v6 {
			return netip.PrefixFrom(netip.AddrFrom16(addr), bits)
		}
		var a4 [4]byte
		copy(a4[:], addr[:4])
		return netip.PrefixFrom(netip.AddrFrom4(a4), bits)
	}
	var rec func(n *node[V], addr [16]byte, depth int, v6 bool) bool
	rec = func(n *node[V], addr [16]byte, depth int, v6 bool) bool {
		for i := range n.exact {
			e := &n.exact[i]
			a := addr
			a[depth>>1] |= e.suffix << (4 - (depth&1)<<2)
			if !fn(mk(a, depth*stride+int(e.r), v6), e.val) {
				return false
			}
		}
		for b := 0; b < fanout; b++ {
			c := n.child[b]
			if c == nil {
				continue
			}
			a := addr
			a[depth>>1] |= uint8(b) << (4 - (depth&1)<<2)
			if !rec(c, a, depth+1, v6) {
				return false
			}
		}
		return true
	}
	var a [16]byte
	if t.defSet4 && !fn(mk(a, 0, false), t.def4) {
		return
	}
	if !rec(t.v4, a, 0, false) {
		return
	}
	if t.defSet6 && !fn(mk(a, 0, true), t.def6) {
		return
	}
	rec(t.v6, a, 0, true)
}

// Prefixes returns all prefixes in the table sorted by string form,
// useful for deterministic iteration in tests and reports.
func (t *Table[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.n)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
