package lpm_test

import (
	"fmt"
	"net/netip"

	"discs/internal/lpm"
)

// A miniature Pfx2AS table (§V-A): longest-prefix match maps addresses
// to their origin AS.
func Example() {
	t := lpm.New[uint32]()
	t.Insert(netip.MustParsePrefix("10.0.0.0/8"), 64500)
	t.Insert(netip.MustParsePrefix("10.1.0.0/16"), 64501) // customer carve-out

	asn, pfx, _ := t.Lookup(netip.MustParseAddr("10.1.2.3"))
	fmt.Println(asn, pfx)
	asn, pfx, _ = t.Lookup(netip.MustParseAddr("10.2.0.1"))
	fmt.Println(asn, pfx)
	// Output:
	// 64501 10.1.0.0/16
	// 64500 10.0.0.0/8
}
