package lpm

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func addr(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func TestInsertLookupV4(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "10.0.0.0/8"), 1)
	tb.Insert(pfx(t, "10.1.0.0/16"), 2)
	tb.Insert(pfx(t, "10.1.2.0/24"), 3)

	cases := []struct {
		a    string
		want int
		pfx  string
	}{
		{"10.1.2.3", 3, "10.1.2.0/24"},
		{"10.1.3.3", 2, "10.1.0.0/16"},
		{"10.2.0.1", 1, "10.0.0.0/8"},
	}
	for _, c := range cases {
		v, p, ok := tb.Lookup(addr(t, c.a))
		if !ok || v != c.want || p.String() != c.pfx {
			t.Errorf("Lookup(%s) = %d %v %v, want %d %s", c.a, v, p, ok, c.want, c.pfx)
		}
	}
	if _, _, ok := tb.Lookup(addr(t, "11.0.0.1")); ok {
		t.Error("Lookup(11.0.0.1) should miss")
	}
}

func TestInsertLookupV6(t *testing.T) {
	tb := New[string]()
	tb.Insert(pfx(t, "2001:db8::/32"), "doc")
	tb.Insert(pfx(t, "2001:db8:1::/48"), "sub")
	v, _, ok := tb.Lookup(addr(t, "2001:db8:1::5"))
	if !ok || v != "sub" {
		t.Fatalf("got %q %v", v, ok)
	}
	v, _, ok = tb.Lookup(addr(t, "2001:db8:2::5"))
	if !ok || v != "doc" {
		t.Fatalf("got %q %v", v, ok)
	}
	if _, _, ok := tb.Lookup(addr(t, "2001:db9::1")); ok {
		t.Error("should miss")
	}
}

func TestV4AndV6Separate(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "0.0.0.0/0"), 4)
	tb.Insert(pfx(t, "::/0"), 6)
	if v, _, _ := tb.Lookup(addr(t, "1.2.3.4")); v != 4 {
		t.Errorf("v4 default = %d", v)
	}
	if v, _, _ := tb.Lookup(addr(t, "::1")); v != 6 {
		t.Errorf("v6 default = %d", v)
	}
}

func TestFourInSixNormalized(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "10.0.0.0/8"), 1)
	// Lookup with a 4-in-6 address must hit the v4 entry.
	a := netip.AddrFrom16(addr(t, "::ffff:10.1.2.3").As16())
	if !a.Is4In6() {
		t.Fatal("test setup: not 4-in-6")
	}
	v, _, ok := tb.Lookup(a)
	if !ok || v != 1 {
		t.Fatalf("4-in-6 lookup = %d %v", v, ok)
	}
}

func TestHostBitsMasked(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "10.1.2.3/8"), 7) // host bits set; must mask to 10.0.0.0/8
	v, p, ok := tb.Lookup(addr(t, "10.200.0.1"))
	if !ok || v != 7 || p.String() != "10.0.0.0/8" {
		t.Fatalf("got %d %v %v", v, p, ok)
	}
}

func TestExactGetDelete(t *testing.T) {
	tb := New[int]()
	p8 := pfx(t, "10.0.0.0/8")
	p16 := pfx(t, "10.0.0.0/16")
	tb.Insert(p8, 1)
	tb.Insert(p16, 2)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if v, ok := tb.Get(p8); !ok || v != 1 {
		t.Fatalf("Get(/8) = %d %v", v, ok)
	}
	if v, ok := tb.Get(p16); !ok || v != 2 {
		t.Fatalf("Get(/16) = %d %v", v, ok)
	}
	if _, ok := tb.Get(pfx(t, "10.0.0.0/12")); ok {
		t.Fatal("Get(/12) should miss (no exact entry)")
	}
	if !tb.Delete(p16) {
		t.Fatal("Delete(/16) should succeed")
	}
	if tb.Delete(p16) {
		t.Fatal("double Delete should fail")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after delete", tb.Len())
	}
	// /8 still matches where /16 used to.
	if v, _, _ := tb.Lookup(addr(t, "10.0.0.1")); v != 1 {
		t.Fatalf("post-delete lookup = %d", v)
	}
}

func TestInsertReplace(t *testing.T) {
	tb := New[int]()
	p := pfx(t, "192.168.0.0/16")
	tb.Insert(p, 1)
	tb.Insert(p, 2)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	if v, _ := tb.Get(p); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestDefaultRouteAndFullLength(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "0.0.0.0/0"), 1)
	tb.Insert(pfx(t, "1.2.3.4/32"), 2)
	if v, _, _ := tb.Lookup(addr(t, "1.2.3.4")); v != 2 {
		t.Fatal("/32 should win over default")
	}
	if v, _, _ := tb.Lookup(addr(t, "1.2.3.5")); v != 1 {
		t.Fatal("default should match everything else")
	}
	tb.Insert(pfx(t, "::/0"), 3)
	tb.Insert(pfx(t, "2001:db8::1/128"), 4)
	if v, _, _ := tb.Lookup(addr(t, "2001:db8::1")); v != 4 {
		t.Fatal("/128 should win")
	}
}

func TestInvalidInputs(t *testing.T) {
	tb := New[int]()
	if err := tb.Insert(netip.Prefix{}, 1); err == nil {
		t.Fatal("Insert of zero prefix should error")
	}
	if tb.Delete(netip.Prefix{}) {
		t.Fatal("Delete of zero prefix should be false")
	}
	if _, _, ok := tb.Lookup(netip.Addr{}); ok {
		t.Fatal("Lookup of zero addr should miss")
	}
	if tb.Contains(netip.Addr{}) {
		t.Fatal("Contains of zero addr should be false")
	}
}

func TestWalkAndPrefixes(t *testing.T) {
	tb := New[int]()
	want := map[string]int{
		"10.0.0.0/8":      1,
		"10.1.0.0/16":     2,
		"192.168.1.0/24":  3,
		"2001:db8::/32":   4,
		"2001:db8:5::/48": 5,
		"0.0.0.0/0":       6,
	}
	for s, v := range want {
		tb.Insert(pfx(t, s), v)
	}
	got := map[string]int{}
	tb.Walk(func(p netip.Prefix, v int) bool {
		got[p.String()] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d entries, want %d: %v", len(got), len(want), got)
	}
	for s, v := range want {
		if got[s] != v {
			t.Errorf("Walk[%s] = %d, want %d", s, got[s], v)
		}
	}
	ps := tb.Prefixes()
	if len(ps) != len(want) {
		t.Fatalf("Prefixes len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].String() >= ps[i].String() {
			t.Fatal("Prefixes not sorted")
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx(t, "10.0.0.0/8"), 1)
	tb.Insert(pfx(t, "11.0.0.0/8"), 2)
	tb.Insert(pfx(t, "2001:db8::/32"), 3)
	n := 0
	tb.Walk(func(netip.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestAgainstLinearScan cross-checks trie LPM against a brute-force
// linear scan on random prefixes and addresses.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New[int]()
	type entry struct {
		p netip.Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 500; i++ {
		var a [4]byte
		rng.Read(a[:])
		bits := rng.Intn(33)
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
		v := i
		// Linear model replaces on duplicate prefix, as Insert does.
		dup := false
		for j := range entries {
			if entries[j].p == p {
				entries[j].v, dup = v, true
				break
			}
		}
		if !dup {
			entries = append(entries, entry{p, v})
		}
		tb.Insert(p, v)
	}
	if tb.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(entries))
	}
	for i := 0; i < 2000; i++ {
		var a4 [4]byte
		rng.Read(a4[:])
		a := netip.AddrFrom4(a4)
		bestLen, bestVal, found := -1, 0, false
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Bits() > bestLen {
				bestLen, bestVal, found = e.p.Bits(), e.v, true
			}
		}
		v, p, ok := tb.Lookup(a)
		if ok != found {
			t.Fatalf("Lookup(%v) ok=%v, want %v", a, ok, found)
		}
		if found && (v != bestVal || p.Bits() != bestLen) {
			t.Fatalf("Lookup(%v) = %d /%d, want %d /%d", a, v, p.Bits(), bestVal, bestLen)
		}
	}
}

// TestAgainstLinearScanV6 cross-checks the IPv6 trie against a
// brute-force scan.
func TestAgainstLinearScanV6(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tb := New[int]()
	type entry struct {
		p netip.Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 300; i++ {
		var a [16]byte
		rng.Read(a[:2]) // cluster prefixes so matches actually occur
		a[0] = 0x20
		bits := rng.Intn(65)
		p := netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
		dup := false
		for j := range entries {
			if entries[j].p == p {
				entries[j].v, dup = i, true
				break
			}
		}
		if !dup {
			entries = append(entries, entry{p, i})
		}
		tb.Insert(p, i)
	}
	for i := 0; i < 1000; i++ {
		var a16 [16]byte
		rng.Read(a16[:3])
		a16[0] = 0x20
		a := netip.AddrFrom16(a16)
		bestLen, bestVal, found := -1, 0, false
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Bits() > bestLen {
				bestLen, bestVal, found = e.p.Bits(), e.v, true
			}
		}
		v, p, ok := tb.Lookup(a)
		if ok != found {
			t.Fatalf("Lookup(%v) ok=%v, want %v", a, ok, found)
		}
		if found && (v != bestVal || p.Bits() != bestLen) {
			t.Fatalf("Lookup(%v) = %d /%d, want %d /%d", a, v, p.Bits(), bestVal, bestLen)
		}
	}
}

// Property: any address within an inserted prefix matches at least that
// prefix length.
func TestPropertyContainment(t *testing.T) {
	f := func(a4 [4]byte, bits uint8) bool {
		b := int(bits % 33)
		p := netip.PrefixFrom(netip.AddrFrom4(a4), b).Masked()
		tb := New[bool]()
		tb.Insert(p, true)
		// The base address of the prefix must match.
		v, got, ok := tb.Lookup(p.Addr())
		return ok && v && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: insert then delete restores non-membership.
func TestPropertyInsertDelete(t *testing.T) {
	f := func(a4 [4]byte, bits uint8) bool {
		b := int(bits % 33)
		p := netip.PrefixFrom(netip.AddrFrom4(a4), b).Masked()
		tb := New[int]()
		tb.Insert(p, 1)
		if !tb.Delete(p) {
			return false
		}
		_, ok := tb.Get(p)
		return !ok && tb.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupV4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tb := New[int]()
	for i := 0; i < 100_000; i++ {
		var a [4]byte
		rng.Read(a[:])
		tb.Insert(netip.PrefixFrom(netip.AddrFrom4(a), 8+rng.Intn(17)), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		var a [4]byte
		rng.Read(a[:])
		addrs[i] = netip.AddrFrom4(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addrs[i%len(addrs)])
	}
}
