package bgp

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/topology"
)

// multihomedTopo: stub S is a customer of both M1 and M2, which are
// customers of T. A link failure S-M1 must reroute via M2.
//
//	   T (10)
//	  /      \
//	M1(100)  M2(200)
//	  \      /
//	   S (1000)
func multihomedTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp := topology.New()
	for _, a := range []topology.ASN{10, 100, 200, 1000} {
		if _, err := tp.AddAS(a); err != nil {
			t.Fatal(err)
		}
	}
	links := []struct{ a, b topology.ASN }{
		{100, 10}, {200, 10}, {1000, 100}, {1000, 200},
	}
	for _, l := range links {
		if err := tp.Link(l.a, l.b, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	for a, p := range map[topology.ASN]string{
		10: "10.0.0.0/16", 100: "10.1.0.0/16", 200: "10.2.0.0/16", 1000: "172.16.0.0/16",
	} {
		if err := tp.AddPrefix(a, netip.MustParsePrefix(p)); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

func convergedMultihomed(t *testing.T) *Network {
	t.Helper()
	net, err := BuildNetwork(multihomedTopo(t), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLinkFailureReroutesToBackup(t *testing.T) {
	net := convergedMultihomed(t)
	sPfx := netip.MustParsePrefix("172.16.0.0/16")

	// Before failure: T prefers the lower-ASN customer path (via 100).
	r := net.Speakers[10].LocRib(sPfx)
	if r == nil || r.From != 100 {
		t.Fatalf("pre-failure route = %+v", r)
	}

	if !net.FailLink(1000, 100) {
		t.Fatal("FailLink found no link")
	}
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	// After failure: rerouted via M2.
	r = net.Speakers[10].LocRib(sPfx)
	if r == nil || r.From != 200 {
		t.Fatalf("post-failure route = %+v, want via 200", r)
	}
	// M1 reaches S only via its provider now (T → M2 → S is a valley
	// from M1's perspective... M1-T-M2-S is up, down, down: valid).
	r = net.Speakers[100].LocRib(sPfx)
	if r == nil || r.From != 10 {
		t.Fatalf("M1 route = %+v, want via provider 10", r)
	}
	full := append([]topology.ASN{100}, r.ASPath...)
	// Note: the physical link 1000-100 is down, but the topology object
	// still lists it; validate only the used hops exist in the graph.
	if err := net.Topo.ValidateValleyFree(full); err != nil {
		t.Fatalf("rerouted path invalid: %v", err)
	}
}

func TestLinkFailureIsolatesSingleHomed(t *testing.T) {
	// Remove the backup: fail both of S's uplinks → its prefix must be
	// withdrawn everywhere.
	net := convergedMultihomed(t)
	sPfx := netip.MustParsePrefix("172.16.0.0/16")
	net.FailLink(1000, 100)
	net.FailLink(1000, 200)
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []topology.ASN{10, 100, 200} {
		if r := net.Speakers[asn].LocRib(sPfx); r != nil {
			t.Fatalf("AS%d still routes to isolated stub via %v", asn, r.ASPath)
		}
	}
}

func TestLinkRestoreRecovers(t *testing.T) {
	net := convergedMultihomed(t)
	sPfx := netip.MustParsePrefix("172.16.0.0/16")
	net.FailLink(1000, 100)
	net.Converge()
	if !net.RestoreLink(1000, 100) {
		t.Fatal("RestoreLink found no link")
	}
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	// T prefers via 100 again (lower neighbor ASN tie-break).
	r := net.Speakers[10].LocRib(sPfx)
	if r == nil || r.From != 100 {
		t.Fatalf("post-restore route = %+v", r)
	}
	// And S regains full reachability.
	for _, p := range []string{"10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16"} {
		if net.Speakers[1000].LocRib(netip.MustParsePrefix(p)) == nil {
			t.Fatalf("S missing route to %s after restore", p)
		}
	}
}

func TestFailLinkUnknown(t *testing.T) {
	net := convergedMultihomed(t)
	if net.FailLink(10, 1000) {
		t.Fatal("FailLink invented a link")
	}
	if net.FailLink(10, 9999) {
		t.Fatal("FailLink accepted unknown AS")
	}
	if net.RestoreLink(10, 9999) {
		t.Fatal("RestoreLink accepted unknown AS")
	}
}

// TestDISCSAdSurvivesRouteChange: a DISCS-Ad learned before a route
// change stays known (Ads are remembered, not revoked by routing).
func TestDISCSAdSurvivesRouteChange(t *testing.T) {
	net := convergedMultihomed(t)
	ad := DISCSAd{Origin: 1000, Controller: "ctrl.s"}
	if err := net.Speakers[1000].ReOriginate(netip.MustParsePrefix("172.16.0.0/16"), NewDISCSAdAttr(ad)); err != nil {
		t.Fatal(err)
	}
	net.Converge()
	if ads := net.Speakers[10].KnownAds(); len(ads) != 1 {
		t.Fatalf("ads = %v", ads)
	}
	net.FailLink(1000, 100)
	net.Converge()
	if ads := net.Speakers[10].KnownAds(); len(ads) != 1 || ads[0] != ad {
		t.Fatalf("Ad lost after route change: %v", ads)
	}
}
