// Package bgp implements a simplified BGP-4 on top of the netsim
// simulator: per-AS speakers with eBGP sessions along topology links,
// Adj-RIB-In / Loc-RIB structures, Gao-Rexford export policies, and
// best-path selection.
//
// Its role in this repository is to carry the DISCS-Ad (§IV-B of the
// paper): an optional transitive path attribute announcing a DAS and
// its controller address. Legacy ASes forward the attribute without
// understanding it — exactly the property DISCS relies on for
// Internet-wide, incrementally-deployable discovery.
package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"discs/internal/netsim"
	"discs/internal/topology"
)

// Path attribute flags (RFC 4271 §4.3).
const (
	AttrFlagOptional   = 0x80
	AttrFlagTransitive = 0x40
)

// AttrCodeDISCSAd is the (to-be-IANA-assigned) path attribute type
// code for the DISCS advertisement.
const AttrCodeDISCSAd = 0xF0

// Attr is a BGP path attribute. Unrecognized optional transitive
// attributes are retained and propagated (RFC 4271 §5), which is what
// lets DISCS-Ads cross legacy ASes.
type Attr struct {
	Flags uint8
	Code  uint8
	Data  []byte
}

// DISCSAd is the payload of a DISCS advertisement: the origin DAS and
// the name (or address) of its controller.
type DISCSAd struct {
	Origin     topology.ASN
	Controller string
}

// Encode serializes the Ad into attribute data.
func (ad DISCSAd) Encode() []byte {
	b := make([]byte, 4+len(ad.Controller))
	binary.BigEndian.PutUint32(b[:4], uint32(ad.Origin))
	copy(b[4:], ad.Controller)
	return b
}

// DecodeDISCSAd parses attribute data into a DISCSAd.
func DecodeDISCSAd(b []byte) (DISCSAd, error) {
	if len(b) < 4 {
		return DISCSAd{}, fmt.Errorf("bgp: DISCS-Ad too short (%d bytes)", len(b))
	}
	return DISCSAd{
		Origin:     topology.ASN(binary.BigEndian.Uint32(b[:4])),
		Controller: string(b[4:]),
	}, nil
}

// NewDISCSAdAttr wraps an Ad in an optional transitive attribute.
func NewDISCSAdAttr(ad DISCSAd) Attr {
	return Attr{Flags: AttrFlagOptional | AttrFlagTransitive, Code: AttrCodeDISCSAd, Data: ad.Encode()}
}

// Update is a BGP UPDATE message for a single prefix.
type Update struct {
	Prefix    netip.Prefix
	Withdrawn bool
	ASPath    []topology.ASN
	Attrs     []Attr
}

// Size approximates the wire size for netsim bandwidth accounting.
func (u *Update) Size() int {
	n := 23 + 5 + 2*len(u.ASPath) // header + NLRI + AS path
	for _, a := range u.Attrs {
		n += 3 + len(a.Data)
	}
	return n
}

// Route is an entry in a RIB.
type Route struct {
	Prefix  netip.Prefix
	ASPath  []topology.ASN // first element is the neighbor the route came from
	Attrs   []Attr
	From    topology.ASN          // advertising neighbor; 0 for locally originated
	FromRel topology.Relationship // relationship of the hop to From (our perspective)
	Local   bool
}

// preferenceClass ranks routes by business preference: customer routes
// earn money (best), then peers, then providers.
func (r *Route) preferenceClass() int {
	if r.Local {
		return 3
	}
	switch r.FromRel {
	case topology.ProviderToCustomer: // From is our customer
		return 2
	case topology.PeerToPeer:
		return 1
	default: // From is our provider
		return 0
	}
}

// better reports whether r is preferred over s: local > customer >
// peer > provider, then shorter AS path, then lower neighbor ASN.
func (r *Route) better(s *Route) bool {
	if s == nil {
		return true
	}
	if a, b := r.preferenceClass(), s.preferenceClass(); a != b {
		return a > b
	}
	if len(r.ASPath) != len(s.ASPath) {
		return len(r.ASPath) < len(s.ASPath)
	}
	return r.From < s.From
}

// AdHandler receives DISCS-Ads extracted from propagated updates.
type AdHandler func(ad DISCSAd)

// Speaker is the BGP process of one AS, attached to one netsim node
// (the AS's border-router abstraction).
type Speaker struct {
	ASN  topology.ASN
	node *netsim.Node
	topo *topology.Topology

	neighbors map[topology.ASN]*netsim.Node
	byNode    map[*netsim.Node]topology.ASN          // reverse index for receive()
	rels      map[topology.ASN]topology.Relationship // our perspective of hop to neighbor

	adjIn  map[netip.Prefix]map[topology.ASN]*Route
	locRib map[netip.Prefix]*Route

	adHandlers []AdHandler
	seenAds    map[topology.ASN]string // dedup: origin -> controller

	// Stats.
	UpdatesSent, UpdatesRecv uint64
}

// NewSpeaker creates a speaker for asn on node. Neighbors are attached
// with AddNeighbor.
func NewSpeaker(asn topology.ASN, node *netsim.Node, topo *topology.Topology) *Speaker {
	s := &Speaker{
		ASN:       asn,
		node:      node,
		topo:      topo,
		neighbors: make(map[topology.ASN]*netsim.Node),
		byNode:    make(map[*netsim.Node]topology.ASN),
		rels:      make(map[topology.ASN]topology.Relationship),
		adjIn:     make(map[netip.Prefix]map[topology.ASN]*Route),
		locRib:    make(map[netip.Prefix]*Route),
		seenAds:   make(map[topology.ASN]string),
	}
	node.SetHandler(netsim.HandlerFunc(s.receive))
	node.Meta["bgp"] = s
	return s
}

// Node returns the netsim node this speaker runs on.
func (s *Speaker) Node() *netsim.Node { return s.node }

// AddNeighbor declares an eBGP session to the neighbor speaker's node.
// rel is the relationship of the hop from this AS to the neighbor.
func (s *Speaker) AddNeighbor(asn topology.ASN, node *netsim.Node, rel topology.Relationship) {
	s.neighbors[asn] = node
	s.byNode[node] = asn
	s.rels[asn] = rel
}

// OnAd registers a handler invoked once per newly learned DISCS-Ad
// (deduplicated by origin+controller).
func (s *Speaker) OnAd(h AdHandler) { s.adHandlers = append(s.adHandlers, h) }

// Originate installs a locally originated route and announces it to
// neighbors according to export policy.
func (s *Speaker) Originate(p netip.Prefix, attrs ...Attr) {
	p = p.Masked()
	r := &Route{Prefix: p, Local: true, Attrs: attrs}
	s.locRib[p] = r
	s.export(r)
}

// ReOriginate re-announces an already-originated prefix with new
// attributes. The paper's DISCS-Ad bootstrap uses this: the update
// prepends the origin AS so legacy routers accept a changed route
// without reachability impact (§IV-B).
func (s *Speaker) ReOriginate(p netip.Prefix, attrs ...Attr) error {
	p = p.Masked()
	r := s.locRib[p]
	if r == nil || !r.Local {
		return fmt.Errorf("bgp: AS%d does not originate %v", s.ASN, p)
	}
	r.Attrs = attrs
	s.export(r)
	return nil
}

// LocRib returns the current best route for p, or nil.
func (s *Speaker) LocRib(p netip.Prefix) *Route { return s.locRib[p.Masked()] }

// SessionDown handles the loss of an eBGP session (link failure or
// neighbor death): every route learned from that neighbor is flushed
// from the Adj-RIB-In and the decision process reruns, issuing
// withdrawals or switching to backup paths as needed. The session
// configuration is retained so SessionUp can restore it.
func (s *Speaker) SessionDown(neighbor topology.ASN) {
	var affected []netip.Prefix
	for p, peers := range s.adjIn {
		if _, ok := peers[neighbor]; ok {
			delete(peers, neighbor)
			affected = append(affected, p)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].String() < affected[j].String() })
	for _, p := range affected {
		s.decide(p)
	}
}

// SessionUp re-advertises the full Loc-RIB to a restored neighbor (the
// initial-exchange behavior of a fresh BGP session).
func (s *Speaker) SessionUp(neighbor topology.ASN) {
	node := s.neighbors[neighbor]
	if node == nil {
		return
	}
	for _, p := range s.Routes() {
		r := s.locRib[p]
		// Export policy still applies.
		allowed := false
		for _, t := range s.exportTargets(r) {
			if t == neighbor {
				allowed = true
				break
			}
		}
		if !allowed {
			continue
		}
		u := &Update{
			Prefix: r.Prefix,
			ASPath: append([]topology.ASN{s.ASN}, r.ASPath...),
			Attrs:  r.Attrs,
		}
		if s.node.SendTo(node, u) {
			s.UpdatesSent++
		}
	}
}

// Routes returns all Loc-RIB prefixes, sorted for determinism.
func (s *Speaker) Routes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.locRib))
	for p := range s.locRib {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// exportTargets returns the neighbors a route may be exported to under
// Gao-Rexford policy: routes from customers (or local routes) go to
// everyone; routes from peers/providers go to customers only.
func (s *Speaker) exportTargets(r *Route) []topology.ASN {
	toAll := r.Local || r.FromRel == topology.ProviderToCustomer
	var out []topology.ASN
	for n := range s.neighbors {
		if n == r.From {
			continue
		}
		if toAll || s.rels[n] == topology.ProviderToCustomer {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// export sends the route to all permitted neighbors with our ASN
// prepended.
func (s *Speaker) export(r *Route) {
	path := append([]topology.ASN{s.ASN}, r.ASPath...)
	for _, nASN := range s.exportTargets(r) {
		u := &Update{
			Prefix: r.Prefix,
			ASPath: append([]topology.ASN(nil), path...),
			Attrs:  r.Attrs,
		}
		if s.node.SendTo(s.neighbors[nASN], u) {
			s.UpdatesSent++
		}
	}
}

// receive processes an incoming UPDATE.
func (s *Speaker) receive(from *netsim.Node, _ *netsim.Link, msg netsim.Message) {
	u, ok := msg.(*Update)
	if !ok {
		return
	}
	s.UpdatesRecv++
	// Identify which neighbor sent it (O(1); a tier-1 speaker has
	// thousands of sessions, so scanning per update does not scale).
	fromASN, found := s.byNode[from]
	if !found {
		return // not a configured session
	}
	// Loop prevention.
	for _, hop := range u.ASPath {
		if hop == s.ASN {
			return
		}
	}
	// Surface any DISCS-Ads regardless of best-path outcome: the
	// controller learns about DASes from every update carrying the
	// attribute (the Ad is informational, not a routing input).
	s.extractAds(u.Attrs)

	if u.Withdrawn {
		if peers := s.adjIn[u.Prefix]; peers != nil {
			delete(peers, fromASN)
		}
		s.decide(u.Prefix)
		return
	}
	r := &Route{
		Prefix:  u.Prefix,
		ASPath:  append([]topology.ASN(nil), u.ASPath...),
		Attrs:   u.Attrs,
		From:    fromASN,
		FromRel: s.rels[fromASN],
	}
	if s.adjIn[u.Prefix] == nil {
		s.adjIn[u.Prefix] = make(map[topology.ASN]*Route)
	}
	s.adjIn[u.Prefix][fromASN] = r
	s.decide(u.Prefix)
}

// decide recomputes the best path for p and exports on change. A
// changed attribute set on the same best path also triggers export so
// re-originated DISCS-Ads propagate.
func (s *Speaker) decide(p netip.Prefix) {
	cur := s.locRib[p]
	if cur != nil && cur.Local {
		return // local routes always win
	}
	var best *Route
	// Deterministic iteration over candidates.
	var froms []topology.ASN
	for f := range s.adjIn[p] {
		froms = append(froms, f)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, f := range froms {
		if r := s.adjIn[p][f]; r.better(best) {
			best = r
		}
	}
	if best == nil {
		if cur != nil {
			delete(s.locRib, p)
			s.exportWithdraw(cur, nil)
		}
		return
	}
	if cur != nil && routesEqual(cur, best) {
		return
	}
	s.locRib[p] = best
	// When the best path's provenance changes, the Gao-Rexford export
	// set can shrink (e.g. customer route → provider route is no longer
	// announced to providers/peers): retract from neighbors that held
	// the old announcement but are outside the new export set.
	if cur != nil {
		s.exportWithdraw(cur, s.exportTargets(best))
	}
	s.export(best)
}

func routesEqual(a, b *Route) bool {
	if a.From != b.From || len(a.ASPath) != len(b.ASPath) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for i := range a.Attrs {
		if a.Attrs[i].Code != b.Attrs[i].Code || string(a.Attrs[i].Data) != string(b.Attrs[i].Data) {
			return false
		}
	}
	return true
}

// exportWithdraw notifies the neighbors that received route r that it
// is gone, excluding any neighbor in keep (they are about to get a
// replacement announcement instead).
func (s *Speaker) exportWithdraw(r *Route, keep []topology.ASN) {
	keepSet := make(map[topology.ASN]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	for _, nASN := range s.exportTargets(r) {
		if keepSet[nASN] {
			continue
		}
		u := &Update{Prefix: r.Prefix, Withdrawn: true}
		if s.node.SendTo(s.neighbors[nASN], u) {
			s.UpdatesSent++
		}
	}
}

// extractAds fires handlers for new DISCS-Ads.
func (s *Speaker) extractAds(attrs []Attr) {
	for _, a := range attrs {
		if a.Code != AttrCodeDISCSAd {
			continue
		}
		ad, err := DecodeDISCSAd(a.Data)
		if err != nil {
			continue
		}
		if s.seenAds[ad.Origin] == ad.Controller {
			continue
		}
		s.seenAds[ad.Origin] = ad.Controller
		for _, h := range s.adHandlers {
			h(ad)
		}
	}
}

// KnownAds returns the deduplicated DISCS-Ads this speaker has seen,
// sorted by origin ASN.
func (s *Speaker) KnownAds() []DISCSAd {
	out := make([]DISCSAd, 0, len(s.seenAds))
	for o, c := range s.seenAds {
		out = append(out, DISCSAd{Origin: o, Controller: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}
