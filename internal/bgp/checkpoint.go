// Checkpoint/restore seam. A speaker's routing state — Adj-RIBs-In,
// Loc-RIB and the DISCS-Ad dedup set — is serialized as data and
// injected back directly, with no UPDATE messages replayed: the whole
// point of a post-convergence snapshot is to skip the convergence
// event storm. Loc-RIB entries that are not locally originated are
// stored as a reference (the advertising neighbor) into the Adj-RIB,
// so restore re-establishes the same pointer identity decide() left
// behind.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"

	"discs/internal/snapcodec"
	"discs/internal/topology"
)

func writeRouteBody(w *snapcodec.Writer, rt *Route) {
	w.Uvarint(uint64(len(rt.ASPath)))
	for _, a := range rt.ASPath {
		w.Uvarint(uint64(a))
	}
	w.Uvarint(uint64(len(rt.Attrs)))
	for _, at := range rt.Attrs {
		w.U8(at.Flags)
		w.U8(at.Code)
		w.Bytes(at.Data)
	}
	w.Varint(int64(rt.FromRel))
}

func readRouteBody(r *snapcodec.Reader, rt *Route) {
	n := r.Count(1)
	if n > 0 {
		rt.ASPath = make([]topology.ASN, n)
		for i := range rt.ASPath {
			rt.ASPath[i] = topology.ASN(r.Uvarint())
		}
	}
	na := r.Count(3)
	if na > 0 {
		rt.Attrs = make([]Attr, na)
		for i := range rt.Attrs {
			rt.Attrs[i] = Attr{Flags: r.U8(), Code: r.U8(), Data: r.Bytes()}
		}
	}
	rt.FromRel = topology.Relationship(r.Varint())
}

func sortedPrefixes[V any](m map[netip.Prefix]V) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// checkpoint serializes one speaker's routing state.
func (s *Speaker) checkpoint(w *snapcodec.Writer) {
	w.Uvarint(s.UpdatesSent)
	w.Uvarint(s.UpdatesRecv)

	w.Uvarint(uint64(len(s.adjIn)))
	for _, p := range sortedPrefixes(s.adjIn) {
		w.Prefix(p)
		froms := s.adjIn[p]
		keys := make([]topology.ASN, 0, len(froms))
		for f := range froms {
			keys = append(keys, f)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.Uvarint(uint64(len(keys)))
		for _, f := range keys {
			w.Uvarint(uint64(f))
			writeRouteBody(w, froms[f])
		}
	}

	w.Uvarint(uint64(len(s.locRib)))
	for _, p := range sortedPrefixes(s.locRib) {
		rt := s.locRib[p]
		w.Prefix(p)
		w.Bool(rt.Local)
		if rt.Local {
			writeRouteBody(w, rt)
		} else {
			w.Uvarint(uint64(rt.From)) // reference into adjIn[p]
		}
	}

	origins := make([]topology.ASN, 0, len(s.seenAds))
	for o := range s.seenAds {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	w.Uvarint(uint64(len(origins)))
	for _, o := range origins {
		w.Uvarint(uint64(o))
		w.String(s.seenAds[o])
	}
}

// restore injects state written by checkpoint into a fresh speaker.
func (s *Speaker) restore(r *snapcodec.Reader) error {
	s.UpdatesSent = r.Uvarint()
	s.UpdatesRecv = r.Uvarint()

	np := r.Count(6)
	for i := 0; i < np; i++ {
		p := r.Prefix()
		nf := r.Count(2)
		froms := make(map[topology.ASN]*Route, nf)
		for j := 0; j < nf; j++ {
			from := topology.ASN(r.Uvarint())
			rt := &Route{Prefix: p, From: from}
			readRouteBody(r, rt)
			froms[from] = rt
		}
		if r.Err() != nil {
			return r.Err()
		}
		s.adjIn[p] = froms
	}

	nl := r.Count(6)
	for i := 0; i < nl; i++ {
		p := r.Prefix()
		if r.Bool() {
			rt := &Route{Prefix: p, Local: true}
			readRouteBody(r, rt)
			s.locRib[p] = rt
		} else {
			from := topology.ASN(r.Uvarint())
			rt := s.adjIn[p][from]
			if rt == nil && r.Err() == nil {
				return fmt.Errorf("bgp: restore: AS%d Loc-RIB %v references absent Adj-RIB route from AS%d",
					s.ASN, p, from)
			}
			s.locRib[p] = rt
		}
		if r.Err() != nil {
			return r.Err()
		}
	}

	na := r.Count(2)
	for i := 0; i < na; i++ {
		o := topology.ASN(r.Uvarint())
		s.seenAds[o] = r.String()
	}
	return r.Err()
}

// Checkpoint serializes every speaker's routing state, in topology
// order.
func (n *Network) Checkpoint(w *snapcodec.Writer) error {
	asns := n.Topo.ASNs()
	w.Uvarint(uint64(len(asns)))
	for _, asn := range asns {
		w.Uvarint(uint64(asn))
		n.Speakers[asn].checkpoint(w)
	}
	return w.Err()
}

// RestoreCheckpoint loads speaker state written by Checkpoint into a
// freshly built network over the same (restored) topology.
func (n *Network) RestoreCheckpoint(r *snapcodec.Reader) error {
	cnt := r.Count(2)
	if r.Err() != nil {
		return r.Err()
	}
	if cnt != len(n.Speakers) {
		return fmt.Errorf("bgp: restore: image has %d speakers, network has %d", cnt, len(n.Speakers))
	}
	for i := 0; i < cnt; i++ {
		asn := topology.ASN(r.Uvarint())
		if r.Err() != nil {
			return r.Err()
		}
		sp := n.Speakers[asn]
		if sp == nil {
			return fmt.Errorf("bgp: restore: image speaker AS%d absent from network", asn)
		}
		if err := sp.restore(r); err != nil {
			return err
		}
	}
	return nil
}
