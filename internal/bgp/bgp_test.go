package bgp

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/topology"
)

// buildTopo creates a small labelled topology:
//
//	    T1 ──peer── T2          (tier 1)
//	    /  \          \
//	  M1    M2         M3       (mid: customers of tier 1)
//	 /  \     \       /
//	S1   S2    S3   S4          (stubs)
func buildTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp := topology.New()
	names := map[string]topology.ASN{
		"T1": 10, "T2": 20, "M1": 100, "M2": 200, "M3": 300,
		"S1": 1001, "S2": 1002, "S3": 1003, "S4": 1004,
	}
	for _, asn := range names {
		if _, err := tp.AddAS(asn); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b string, rel topology.Relationship) {
		if err := tp.Link(names[a], names[b], rel); err != nil {
			t.Fatal(err)
		}
	}
	link("T1", "T2", topology.PeerToPeer)
	link("M1", "T1", topology.CustomerToProvider)
	link("M2", "T1", topology.CustomerToProvider)
	link("M3", "T2", topology.CustomerToProvider)
	link("S1", "M1", topology.CustomerToProvider)
	link("S2", "M1", topology.CustomerToProvider)
	link("S3", "M2", topology.CustomerToProvider)
	link("S4", "M3", topology.CustomerToProvider)
	// Prefixes: one per AS, 10.<asn/100>.<asn%100>.0/24 style.
	pfx := map[string]string{
		"T1": "10.0.0.0/16", "T2": "20.0.0.0/16", "M1": "100.0.0.0/16",
		"M2": "100.1.0.0/16", "M3": "100.2.0.0/16",
		"S1": "172.16.1.0/24", "S2": "172.16.2.0/24", "S3": "172.16.3.0/24", "S4": "172.16.4.0/24",
	}
	for name, p := range pfx {
		if err := tp.AddPrefix(names[name], netip.MustParsePrefix(p)); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

func converged(t *testing.T) *Network {
	t.Helper()
	tp := buildTopo(t)
	net, err := BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFullReachability(t *testing.T) {
	net := converged(t)
	// Every speaker must have a route to every prefix.
	for _, asn := range net.Topo.ASNs() {
		sp := net.Speakers[asn]
		for _, other := range net.Topo.ASNs() {
			for _, p := range net.Topo.AS(other).Prefixes {
				r := sp.LocRib(p)
				if other == asn {
					if r == nil || !r.Local {
						t.Fatalf("AS%d missing local route %v", asn, p)
					}
					continue
				}
				if r == nil {
					t.Fatalf("AS%d has no route to %v (AS%d)", asn, p, other)
				}
				// The path must end at the originator.
				if r.ASPath[len(r.ASPath)-1] != other {
					t.Fatalf("AS%d route to %v ends at AS%d", asn, p, r.ASPath[len(r.ASPath)-1])
				}
			}
		}
	}
}

func TestPathsAreValleyFree(t *testing.T) {
	net := converged(t)
	for _, asn := range net.Topo.ASNs() {
		sp := net.Speakers[asn]
		for _, p := range sp.Routes() {
			r := sp.LocRib(p)
			if r.Local {
				continue
			}
			full := append([]topology.ASN{asn}, r.ASPath...)
			if err := net.Topo.ValidateValleyFree(full); err != nil {
				t.Fatalf("AS%d route to %v: %v (path %v)", asn, p, err, full)
			}
		}
	}
}

func TestCustomerRoutePreferred(t *testing.T) {
	// M1 learns S1's prefix directly from its customer S1. Even though
	// T1 may also offer it, the customer route must win.
	net := converged(t)
	r := net.Speakers[100].LocRib(netip.MustParsePrefix("172.16.1.0/24"))
	if r == nil || r.From != 1001 {
		t.Fatalf("M1 route to S1 = %+v, want via customer 1001", r)
	}
	if r.FromRel != topology.ProviderToCustomer {
		t.Fatalf("FromRel = %v", r.FromRel)
	}
}

func TestNoTransitThroughPeersForPeers(t *testing.T) {
	// Gao-Rexford: T1 must not export peer T2's routes to its peer...
	// T1 has only one peer; check instead that a stub's route through a
	// peer link is only reachable downhill: M1's route to M3's prefix
	// goes via T1 then the T1-T2 peer link.
	net := converged(t)
	r := net.Speakers[100].LocRib(netip.MustParsePrefix("100.2.0.0/16"))
	if r == nil {
		t.Fatal("M1 has no route to M3")
	}
	want := []topology.ASN{10, 20, 300}
	if len(r.ASPath) != len(want) {
		t.Fatalf("ASPath = %v, want %v", r.ASPath, want)
	}
	for i := range want {
		if r.ASPath[i] != want[i] {
			t.Fatalf("ASPath = %v, want %v", r.ASPath, want)
		}
	}
}

func TestLoopPrevention(t *testing.T) {
	net := converged(t)
	// No route's AS path may contain the speaker's own ASN.
	for _, asn := range net.Topo.ASNs() {
		sp := net.Speakers[asn]
		for _, p := range sp.Routes() {
			r := sp.LocRib(p)
			for _, hop := range r.ASPath {
				if hop == asn {
					t.Fatalf("AS%d has looped path %v for %v", asn, r.ASPath, p)
				}
			}
		}
	}
}

func TestWithdraw(t *testing.T) {
	net := converged(t)
	s1 := net.Speakers[1001]
	p := netip.MustParsePrefix("172.16.1.0/24")
	// Simulate S1 withdrawing: send withdraw to M1 directly.
	s1.exportWithdraw(s1.LocRib(p), nil)
	delete(s1.locRib, p)
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range net.Topo.ASNs() {
		if asn == 1001 {
			continue
		}
		if r := net.Speakers[asn].LocRib(p); r != nil {
			t.Fatalf("AS%d still has withdrawn route %v via %v", asn, p, r.ASPath)
		}
	}
}

func TestDISCSAdEncodeDecode(t *testing.T) {
	ad := DISCSAd{Origin: 64500, Controller: "controller.as64500.example"}
	got, err := DecodeDISCSAd(ad.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != ad {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeDISCSAd([]byte{1, 2}); err == nil {
		t.Fatal("short Ad should fail")
	}
	attr := NewDISCSAdAttr(ad)
	if attr.Flags&AttrFlagOptional == 0 || attr.Flags&AttrFlagTransitive == 0 {
		t.Fatal("DISCS-Ad attribute must be optional transitive")
	}
}

func TestDISCSAdPropagatesInternetWide(t *testing.T) {
	net := converged(t)
	// S1 deploys DISCS: its controller re-originates S1's prefix with
	// the Ad attached.
	ad := DISCSAd{Origin: 1001, Controller: "ctrl.s1"}
	if err := net.Speakers[1001].ReOriginate(netip.MustParsePrefix("172.16.1.0/24"), NewDISCSAdAttr(ad)); err != nil {
		t.Fatal(err)
	}
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	// Every other AS (all "legacy") must have seen the Ad: optional
	// transitive attributes are retained and propagated.
	for _, asn := range net.Topo.ASNs() {
		if asn == 1001 {
			continue
		}
		ads := net.Speakers[asn].KnownAds()
		if len(ads) != 1 || ads[0] != ad {
			t.Fatalf("AS%d ads = %+v", asn, ads)
		}
	}
}

func TestAdHandlerFiresOncePerOrigin(t *testing.T) {
	net := converged(t)
	count := 0
	net.Speakers[1004].OnAd(func(ad DISCSAd) { count++ })
	ad := DISCSAd{Origin: 1001, Controller: "ctrl.s1"}
	net.Speakers[1001].ReOriginate(netip.MustParsePrefix("172.16.1.0/24"), NewDISCSAdAttr(ad))
	net.Converge()
	// Re-announce same Ad: no duplicate callback.
	net.Speakers[1001].ReOriginate(netip.MustParsePrefix("172.16.1.0/24"), NewDISCSAdAttr(ad))
	net.Converge()
	if count != 1 {
		t.Fatalf("handler fired %d times, want 1", count)
	}
	// A changed controller name fires again.
	net.Speakers[1001].ReOriginate(netip.MustParsePrefix("172.16.1.0/24"),
		NewDISCSAdAttr(DISCSAd{Origin: 1001, Controller: "ctrl2.s1"}))
	net.Converge()
	if count != 2 {
		t.Fatalf("handler fired %d times after change, want 2", count)
	}
}

func TestMultipleDASesDiscoverEachOther(t *testing.T) {
	net := converged(t)
	deployers := []topology.ASN{1001, 1003, 300}
	prefixes := map[topology.ASN]string{1001: "172.16.1.0/24", 1003: "172.16.3.0/24", 300: "100.2.0.0/16"}
	for _, asn := range deployers {
		ad := DISCSAd{Origin: asn, Controller: "ctrl"}
		if err := net.Speakers[asn].ReOriginate(netip.MustParsePrefix(prefixes[asn]), NewDISCSAdAttr(ad)); err != nil {
			t.Fatal(err)
		}
	}
	net.Converge()
	for _, asn := range deployers {
		ads := net.Speakers[asn].KnownAds()
		// Each deployer sees the other two.
		if len(ads) != 2 {
			t.Fatalf("AS%d sees %d ads: %+v", asn, len(ads), ads)
		}
	}
}

func TestReOriginateUnknownPrefix(t *testing.T) {
	net := converged(t)
	err := net.Speakers[1001].ReOriginate(netip.MustParsePrefix("9.9.9.0/24"))
	if err == nil {
		t.Fatal("ReOriginate of foreign prefix should fail")
	}
}

func TestUpdateSize(t *testing.T) {
	u := &Update{
		Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		ASPath: []topology.ASN{1, 2, 3},
		Attrs:  []Attr{{Code: AttrCodeDISCSAd, Data: make([]byte, 10)}},
	}
	if u.Size() <= 0 || u.Size() > 200 {
		t.Fatalf("Size = %d", u.Size())
	}
}

func TestConvergenceMessageCountBounded(t *testing.T) {
	net := converged(t)
	var total uint64
	for _, sp := range net.Speakers {
		total += sp.UpdatesSent
	}
	// 9 ASes × 9 prefixes with policy filtering: should be well under
	// a full O(N^2·E) blowup.
	if total == 0 || total > 2000 {
		t.Fatalf("total updates = %d", total)
	}
}

func TestBestPathStability(t *testing.T) {
	// Converging twice from scratch yields identical Loc-RIBs
	// (determinism of the whole stack).
	a := converged(t)
	b := converged(t)
	for _, asn := range a.Topo.ASNs() {
		ra, rb := a.Speakers[asn], b.Speakers[asn]
		pa, pb := ra.Routes(), rb.Routes()
		if len(pa) != len(pb) {
			t.Fatalf("AS%d: %d vs %d routes", asn, len(pa), len(pb))
		}
		for i := range pa {
			x, y := ra.LocRib(pa[i]), rb.LocRib(pb[i])
			if x.From != y.From || len(x.ASPath) != len(y.ASPath) {
				t.Fatalf("AS%d route %v differs between runs", asn, pa[i])
			}
		}
	}
}
