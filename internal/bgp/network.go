package bgp

import (
	"fmt"
	"time"

	"discs/internal/netsim"
	"discs/internal/topology"
)

// Network bundles a simulator, a topology, and one speaker per AS with
// eBGP sessions along every topology link. It is the starting point for
// the DISCS control-plane simulations and the examples.
type Network struct {
	Sim      *netsim.Simulator
	Topo     *topology.Topology
	Speakers map[topology.ASN]*Speaker
}

// BuildNetwork creates a netsim node ("borderN") and speaker for every
// AS and connects neighbors with the given link delay. The build is
// O(V+E): node and link tables are preallocated via Reserve, and each
// physical link is created exactly once — transit from the customer
// side (each relationship appears in exactly one Providers list),
// peering from the lower-ASN side — which topology.Link's duplicate
// guard makes safe without any linked() re-scan.
func BuildNetwork(topo *topology.Topology, linkDelay time.Duration) (*Network, error) {
	sim := netsim.New()
	nAS := topo.NumASes()
	sim.Reserve(nAS, topo.NumLinks())
	net := &Network{Sim: sim, Topo: topo, Speakers: make(map[topology.ASN]*Speaker, nAS)}
	for _, asn := range topo.ASNs() {
		node, err := sim.AddNode(fmt.Sprintf("border%d", asn))
		if err != nil {
			return nil, err
		}
		net.Speakers[asn] = NewSpeaker(asn, node, topo)
	}
	for _, asn := range topo.ASNs() {
		a := topo.AS(asn)
		sp := net.Speakers[asn]
		for _, prov := range a.Providers {
			other := net.Speakers[prov]
			if _, err := sim.Connect(sp.node, other.node, linkDelay); err != nil {
				return nil, err
			}
			sp.AddNeighbor(prov, other.node, topology.CustomerToProvider)
			other.AddNeighbor(asn, sp.node, topology.ProviderToCustomer)
		}
		for _, peer := range a.Peers {
			if peer < asn {
				continue // the lower side created it
			}
			other := net.Speakers[peer]
			if _, err := sim.Connect(sp.node, other.node, linkDelay); err != nil {
				return nil, err
			}
			sp.AddNeighbor(peer, other.node, topology.PeerToPeer)
			other.AddNeighbor(asn, sp.node, topology.PeerToPeer)
		}
	}
	return net, nil
}

// AssignShards partitions the topology into k customer-cone shards
// (topology.PartitionCones) and stamps every border node with its
// shard, preparing the network for a parallel engine install
// (parsim.New). Call it after BuildNetwork and before installing the
// engine; it returns the partition so later node creation (controller
// and data-plane nodes) can inherit AS shard affinity.
func (n *Network) AssignShards(k int) map[topology.ASN]int {
	shard := n.Topo.PartitionCones(k)
	for asn, s := range shard {
		n.Speakers[asn].Node().SetShard(s)
	}
	return shard
}

// OriginateAll makes every AS originate all of its prefixes.
func (n *Network) OriginateAll() {
	for _, asn := range n.Topo.ASNs() {
		sp := n.Speakers[asn]
		for _, p := range n.Topo.AS(asn).Prefixes {
			sp.Originate(p)
		}
	}
}

// OriginateFirst makes each given AS originate its first prefix only.
// Paper-scale runs use this: DISCS needs BGP solely as the Ad
// dissemination substrate, and one prefix per deploying AS keeps
// convergence event counts linear in the topology instead of linear
// in the 442k-prefix table.
func (n *Network) OriginateFirst(asns ...topology.ASN) {
	for _, asn := range asns {
		sp := n.Speakers[asn]
		if sp == nil {
			continue
		}
		if pfx := n.Topo.AS(asn).Prefixes; len(pfx) > 0 {
			sp.Originate(pfx[0])
		}
	}
}

// Converge runs the simulator until no BGP events remain.
func (n *Network) Converge() error {
	_, err := n.Sim.RunAll()
	return err
}

// FailLink takes the physical link between two neighboring ASes down
// and signals the session loss to both speakers, triggering withdraws
// and reroutes. It reports whether a link existed.
func (n *Network) FailLink(a, b topology.ASN) bool {
	sa, sb := n.Speakers[a], n.Speakers[b]
	if sa == nil || sb == nil {
		return false
	}
	found := false
	for _, l := range sa.Node().Links() {
		if l.Neighbor(sa.Node()) == sb.Node() {
			l.SetUp(false)
			found = true
		}
	}
	if !found {
		return false
	}
	sa.SessionDown(b)
	sb.SessionDown(a)
	return true
}

// RestoreLink brings the link back up and replays full routing tables
// over the restored session.
func (n *Network) RestoreLink(a, b topology.ASN) bool {
	sa, sb := n.Speakers[a], n.Speakers[b]
	if sa == nil || sb == nil {
		return false
	}
	found := false
	for _, l := range sa.Node().Links() {
		if l.Neighbor(sa.Node()) == sb.Node() {
			l.SetUp(true)
			found = true
		}
	}
	if !found {
		return false
	}
	sa.SessionUp(b)
	sb.SessionUp(a)
	return true
}
