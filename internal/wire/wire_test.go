package wire

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/packet"
	"discs/internal/topology"
)

// wireWorld builds the scenario of §I: provider P(1) with customers
// A(2) (a DAS hosting a botnet), V(3) (the DAS victim) and L(4) (a
// legacy AS with legitimate clients). DISCS is deployed on A and V.
func wireWorld(t *testing.T) (*core.System, *DataNet) {
	t.Helper()
	tp := topology.New()
	for i := topology.ASN(1); i <= 4; i++ {
		if _, err := tp.AddAS(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := tp.Link(c, 1, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	dn, err := New(sys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys, dn
}

func mkPkt(src, dst string) *packet.IPv4 {
	return &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		Payload: make([]byte, 36), // 56-byte packets
	}
}

// schedule injects n packets from fromAS uniformly over the window
// [start, start+dur).
func schedule(sys *core.System, dn *DataNet, fromAS topology.ASN, src, dst string,
	n int, start, dur time.Duration) {
	gap := dur / time.Duration(n)
	for i := 0; i < n; i++ {
		at := start + time.Duration(i)*gap
		sys.Net.Sim.Schedule(sys.Net.Sim.Now()+at, func() {
			dn.Inject(fromAS, mkPkt(src, dst))
		})
	}
}

func TestWireBasicsDelivery(t *testing.T) {
	sys, dn := wireWorld(t)
	dn.Inject(4, mkPkt("10.4.0.10", "10.3.0.1"))
	sys.Settle()
	if dn.Delivered() != 1 {
		t.Fatalf("delivered = %d", dn.Delivered())
	}
	d := dn.Deliveries()[0]
	// Two hops (4→1→3) at 1 ms each.
	if d.At < 2*time.Millisecond {
		t.Fatalf("delivered at %v, want ≥2ms", d.At)
	}
	// Bytes accounted on both directed links.
	if dn.LinkBytes(4, 1) == 0 || dn.LinkBytes(1, 3) == 0 {
		t.Fatal("link byte counters empty")
	}
	if dn.LinkBytes(3, 1) != 0 {
		t.Fatal("reverse direction should be empty")
	}
}

func TestWireIntraAS(t *testing.T) {
	sys, dn := wireWorld(t)
	dn.Inject(4, mkPkt("10.4.0.10", "10.4.0.99"))
	sys.Settle()
	if dn.Delivered() != 1 {
		t.Fatalf("intra-AS delivery = %d", dn.Delivered())
	}
}

func TestWireUnroutableAndTTL(t *testing.T) {
	sys, dn := wireWorld(t)
	dn.Inject(4, mkPkt("10.4.0.10", "198.51.100.1"))
	if dn.DroppedNet() != 1 {
		t.Fatalf("unroutable not counted: %d", dn.DroppedNet())
	}
	p := mkPkt("10.4.0.10", "10.3.0.1")
	p.TTL = 1
	dn.Inject(4, p)
	sys.Settle()
	if dn.Delivered() != 0 {
		t.Fatal("TTL=1 packet delivered across two hops")
	}
}

// TestWireBandwidthExhaustion is the §I experiment: a botnet in DAS A
// floods the victim through its finite uplink; legitimate traffic
// starves. Invoking DP kills the flood at A's egress — far from the
// victim — restoring legitimate goodput and freeing the intermediate
// links.
func TestWireBandwidthExhaustion(t *testing.T) {
	sys, dn := wireWorld(t)
	// The victim's uplink P→V: 128 kB/s (≈2300 pps of 56-byte packets),
	// 20 ms of buffer.
	up := dn.Link(1, 3)
	if up == nil {
		t.Fatal("no uplink")
	}
	up.Bps = 128_000
	up.MaxBacklog = 20 * time.Millisecond

	const legitN, floodN = 500, 8000
	window := time.Second
	legitDelivered := func() int {
		n := 0
		for _, d := range dn.Deliveries() {
			if d.Pkt.Src.String() == "10.4.0.10" {
				n++
			}
		}
		return n
	}

	// Phase A: peacetime. All legitimate traffic arrives.
	schedule(sys, dn, 4, "10.4.0.10", "10.3.0.1", legitN, 0, window)
	sys.Settle()
	if got := legitDelivered(); got != legitN {
		t.Fatalf("peacetime legit delivered = %d/%d", got, legitN)
	}

	// Phase B: flood from the botnet in A (spoofed sources), no
	// invocation. The uplink saturates; legitimate goodput collapses.
	dn.ResetCounters()
	schedule(sys, dn, 4, "10.4.0.10", "10.3.0.1", legitN, 0, window)
	schedule(sys, dn, 2, "198.51.100.7", "10.3.0.1", floodN, 0, window)
	sys.Settle()
	legitB := legitDelivered()
	bytesB := dn.LinkBytes(1, 3)
	if float64(legitB) > 0.7*legitN {
		t.Fatalf("flood did not bite: legit %d/%d", legitB, legitN)
	}
	if dn.DroppedNet() == 0 {
		t.Fatal("no congestion drops during flood")
	}

	// The victim invokes DP (the attack type is known d-DDoS from a
	// botnet inside a peer).
	victim := sys.Controllers[3]
	if _, err := victim.Invoke(core.Invocation{
		Prefixes: victim.OwnPrefixes(), Function: core.DP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	// Phase C: same offered load. The flood dies at A's egress.
	dn.ResetCounters()
	schedule(sys, dn, 4, "10.4.0.10", "10.3.0.1", legitN, 0, window)
	schedule(sys, dn, 2, "198.51.100.7", "10.3.0.1", floodN, 0, window)
	sys.Settle()
	legitC := legitDelivered()
	bytesC := dn.LinkBytes(1, 3)
	if legitC != legitN {
		t.Fatalf("post-invocation legit delivered = %d/%d", legitC, legitN)
	}
	if dn.DroppedDISCS() != floodN {
		t.Fatalf("DISCS dropped %d, want the whole flood %d", dn.DroppedDISCS(), floodN)
	}
	// Far-from-victim filtering: the flood never reached A's own uplink,
	// so the intermediate A→P link carried nothing from it.
	if dn.LinkBytes(2, 1) != 0 {
		t.Fatalf("A→P carried %d bytes; flood should die at A's egress", dn.LinkBytes(2, 1))
	}
	// And the victim's uplink load dropped by roughly the flood share.
	if bytesC >= bytesB/2 {
		t.Fatalf("uplink bytes %d (during flood %d): bandwidth not relieved", bytesC, bytesB)
	}
	t.Logf("legit goodput: peace=%d flood=%d defended=%d; uplink bytes flood=%d defended=%d",
		legitN, legitB, legitC, bytesB, bytesC)
}

// TestWireVerificationAtVictim: with CDP invoked, spoofed traffic from
// a legacy AS claiming the peer's sources dies at the victim's border
// after crossing the network (the residual case DP cannot reach).
func TestWireVerificationAtVictim(t *testing.T) {
	sys, dn := wireWorld(t)
	victim := sys.Controllers[3]
	if _, err := victim.Invoke(core.Invocation{
		Prefixes: victim.OwnPrefixes(), Function: core.CDP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()

	// Spoofed from legacy L claiming A's space: crosses to V, dies there.
	dn.Inject(4, mkPkt("10.2.0.66", "10.3.0.1"))
	sys.Settle()
	if dn.Delivered() != 0 || dn.DroppedDISCS() != 1 {
		t.Fatalf("delivered=%d droppedDISCS=%d", dn.Delivered(), dn.DroppedDISCS())
	}
	// Genuine traffic from the DAS peer A is stamped at A and verified
	// at V over the wire.
	dn.ResetCounters()
	dn.Inject(2, mkPkt("10.2.0.10", "10.3.0.1"))
	sys.Settle()
	if dn.Delivered() != 1 {
		t.Fatalf("genuine peer packet lost: %+v", dn)
	}
	if dn.Deliveries()[0].Pkt.Mark() == 0 {
		// The mark is erased to random bits after verification; zero is
		// possible but astronomically unlikely for this fixed seed.
		t.Log("note: scrubbed mark happened to be zero")
	}
	if got := sys.Routers[3].Stats().InVerified; got != 1 {
		t.Fatalf("victim verified %d", got)
	}
}

func TestWireLinkAccessor(t *testing.T) {
	_, dn := wireWorld(t)
	if dn.Link(1, 2) == nil || dn.Link(2, 1) == nil {
		t.Fatal("adjacent link not found")
	}
	if dn.Link(2, 3) != nil {
		t.Fatal("non-adjacent ASes have a link")
	}
	if dn.Link(1, 99) != nil || dn.Link(99, 1) != nil {
		t.Fatal("unknown AS has a link")
	}
}

func TestWireOnDeliverCallback(t *testing.T) {
	sys, dn := wireWorld(t)
	var got []Delivery
	dn.OnDeliver = func(d Delivery) { got = append(got, d) }
	dn.Inject(4, mkPkt("10.4.0.10", "10.3.0.1"))
	sys.Settle()
	if len(got) != 1 || got[0].Pkt.Src.String() != "10.4.0.10" {
		t.Fatalf("callback got %+v", got)
	}
}

func TestWirePeerLinksBuilt(t *testing.T) {
	// A topology with a peer link must get a data link too.
	tp := topology.New()
	tp.AddAS(1)
	tp.AddAS(2)
	if err := tp.Link(1, 2, topology.PeerToPeer); err != nil {
		t.Fatal(err)
	}
	tp.AddPrefix(1, netip.MustParsePrefix("10.1.0.0/16"))
	tp.AddPrefix(2, netip.MustParsePrefix("10.2.0.0/16"))
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	net.Converge()
	sys := core.NewSystem(net, core.DefaultConfig())
	dn, err := New(sys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dn.Link(1, 2) == nil {
		t.Fatal("peer data link missing")
	}
	dn.Inject(1, mkPkt("10.1.0.1", "10.2.0.1"))
	sys.Settle()
	if dn.Delivered() != 1 {
		t.Fatalf("delivered = %d over peer link", dn.Delivered())
	}
}

// wireMixFrom2 is a burst from deployed AS A exercising every
// InjectBurst path: genuine stamped traffic, a spoofed packet killed at
// the egress, an uncovered destination, an intra-AS delivery, an
// unroutable destination and a TTL casualty — with the two trains'
// destinations interleaved to exercise per-destination grouping.
func wireMixFrom2() []*packet.IPv4 {
	ttl1 := mkPkt("10.2.0.14", "10.3.0.1")
	ttl1.TTL = 1
	return []*packet.IPv4{
		mkPkt("10.2.0.10", "10.3.0.1"),     // genuine: stamped, verified, delivered
		mkPkt("198.51.100.7", "10.3.0.1"),  // spoofed: DP kills it at A's egress
		mkPkt("10.2.0.11", "10.4.0.1"),     // uncovered destination: delivered unstamped
		mkPkt("10.2.0.12", "10.2.0.99"),    // intra-AS: delivered locally
		mkPkt("10.2.0.13", "198.51.100.1"), // unroutable: droppedNet at injection
		ttl1,                               // stamped, then dies at the transit hop
		mkPkt("10.2.0.15", "10.3.0.1"),     // second genuine, after the 10.4 train member
	}
}

// wireMixFrom4 is a burst from the legacy AS: one legitimate packet and
// one spoofing A's space, which crosses the network and dies at the
// victim's inbound batch.
func wireMixFrom4() []*packet.IPv4 {
	return []*packet.IPv4{
		mkPkt("10.4.0.10", "10.3.0.1"),
		mkPkt("10.2.0.66", "10.3.0.1"),
	}
}

// runWireMix builds a world with DP+CDP invoked by the victim, injects
// the standard mix either per-packet or as bursts, and settles.
func runWireMix(t *testing.T, burst bool) (*core.System, *DataNet) {
	t.Helper()
	sys, dn := wireWorld(t)
	victim := sys.Controllers[3]
	for _, fn := range []core.Function{core.DP, core.CDP} {
		if _, err := victim.Invoke(core.Invocation{
			Prefixes: victim.OwnPrefixes(), Function: fn, Duration: 24 * time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()

	from2, from4 := wireMixFrom2(), wireMixFrom4()
	if burst {
		dn.InjectBurst(2, from2)
		dn.InjectBurst(4, from4)
	} else {
		for _, p := range from2 {
			dn.Inject(2, p)
		}
		for _, p := range from4 {
			dn.Inject(4, p)
		}
	}
	sys.Settle()
	return sys, dn
}

// TestWireBurstMatchesInject runs the same traffic mix through Inject
// and InjectBurst in two identically-seeded worlds: deliveries, drop
// counters, per-link byte counters and router statistics must agree,
// and the burst world must match the absolute expectations.
func TestWireBurstMatchesInject(t *testing.T) {
	sysS, dnS := runWireMix(t, false)
	sysB, dnB := runWireMix(t, true)

	if got, want := dnB.Delivered(), uint64(5); got != want {
		t.Fatalf("burst delivered = %d, want %d", got, want)
	}
	if got, want := dnB.DroppedDISCS(), uint64(2); got != want {
		t.Fatalf("burst droppedDISCS = %d, want %d", got, want)
	}
	if got, want := dnB.DroppedNet(), uint64(2); got != want {
		t.Fatalf("burst droppedNet = %d, want %d", got, want)
	}
	if dnS.Delivered() != dnB.Delivered() ||
		dnS.DroppedDISCS() != dnB.DroppedDISCS() ||
		dnS.DroppedNet() != dnB.DroppedNet() {
		t.Fatalf("counters diverge: serial %d/%d/%d, burst %d/%d/%d",
			dnS.Delivered(), dnS.DroppedDISCS(), dnS.DroppedNet(),
			dnB.Delivered(), dnB.DroppedDISCS(), dnB.DroppedNet())
	}
	for _, l := range [][2]topology.ASN{{2, 1}, {1, 2}, {4, 1}, {1, 4}, {1, 3}, {3, 1}} {
		if s, b := dnS.LinkBytes(l[0], l[1]), dnB.LinkBytes(l[0], l[1]); s != b {
			t.Fatalf("link %d→%d bytes: serial %d, burst %d", l[0], l[1], s, b)
		}
	}
	for _, asn := range []topology.ASN{2, 3} {
		if s, b := sysS.Routers[asn].Stats(), sysB.Routers[asn].Stats(); s != b {
			t.Fatalf("AS%d stats diverge:\nserial %+v\nburst  %+v", asn, s, b)
		}
	}
	ds, db := dnS.Deliveries(), dnB.Deliveries()
	if len(ds) != len(db) {
		t.Fatalf("delivery counts: serial %d, burst %d", len(ds), len(db))
	}
	for i := range ds {
		if ds[i].At != db[i].At || ds[i].Pkt.Src != db[i].Pkt.Src || ds[i].Pkt.Dst != db[i].Pkt.Dst {
			t.Fatalf("delivery %d diverges: serial %v %v→%v, burst %v %v→%v", i,
				ds[i].At, ds[i].Pkt.Src, ds[i].Pkt.Dst,
				db[i].At, db[i].Pkt.Src, db[i].Pkt.Dst)
		}
	}
}

// TestWireBurstTailDrop pins the documented link-level semantic: a
// train serializes as one message, so once the link's queue delay
// exceeds the buffer, a following train tail-drops as a unit instead
// of admitting a prefix.
func TestWireBurstTailDrop(t *testing.T) {
	sys, dn := wireWorld(t)
	up := dn.Link(4, 1)
	up.Bps = 128_000
	up.MaxBacklog = 20 * time.Millisecond // ≈2560 bytes of queue

	pkts := make([]*packet.IPv4, 100)
	for i := range pkts {
		pkts[i] = mkPkt("10.4.0.10", "10.3.0.1")
	}
	// First train: admitted whole (the queue was empty) and serializes
	// for 100·56 B / 128 kB/s ≈ 44 ms, well past the 20 ms buffer bound.
	dn.InjectBurst(4, pkts)
	// Second train while the first is still serializing: dropped whole.
	dn.InjectBurst(4, pkts[:50])
	sys.Settle()
	if dn.Delivered() != 100 {
		t.Fatalf("delivered %d, want the first train (100)", dn.Delivered())
	}
	if dn.DroppedNet() != 50 {
		t.Fatalf("droppedNet = %d, want the whole second train (50)", dn.DroppedNet())
	}

	// With the link drained, a train fits again.
	dn.ResetCounters()
	dn.InjectBurst(4, pkts[:20])
	sys.Settle()
	if dn.Delivered() != 20 {
		t.Fatalf("post-drain train delivered %d/20", dn.Delivered())
	}
}

// TestWireBurstMixedTrainFallback covers forwardBurst's per-member
// fallback for a train whose members disagree on the destination AS
// (not constructible via InjectBurst, which groups by destination).
func TestWireBurstMixedTrainFallback(t *testing.T) {
	sys, dn := wireWorld(t)
	msgs := []netsim.Message{
		&dataMsg{pkt: mkPkt("10.2.0.1", "10.3.0.1"), dstAS: 3},
		&dataMsg{pkt: mkPkt("10.2.0.2", "10.4.0.1"), dstAS: 4},
	}
	dn.forwardBurst(2, msgs)
	sys.Settle()
	if dn.Delivered() != 2 {
		t.Fatalf("mixed train delivered %d/2", dn.Delivered())
	}
}
