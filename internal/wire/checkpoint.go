// Checkpoint/restore seam. The data plane's durable state is its
// accounting — delivery/drop totals and directed per-link byte
// counters. The Deliveries list is a transient measurement buffer
// (per-packet pointers into live packet objects) and is not
// serialized: like the obs histograms, it is a diagnostic view that
// restarts empty. Restored totals land in shard slot 0; the accessors
// sum slots, so the counters continue exactly where the checkpointed
// run left off.
package wire

import (
	"sort"

	"discs/internal/snapcodec"
	"discs/internal/topology"
)

// Checkpoint serializes the aggregated data-plane counters.
func (dn *DataNet) Checkpoint(w *snapcodec.Writer) error {
	w.Uvarint(dn.Delivered())
	w.Uvarint(dn.DroppedDISCS())
	w.Uvarint(dn.DroppedNet())

	totals := make(map[[2]topology.ASN]uint64)
	for i := range dn.sc {
		for k, v := range dn.sc[i].linkBytes {
			totals[k] += v
		}
	}
	keys := make([][2]topology.ASN, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(uint64(k[0]))
		w.Uvarint(uint64(k[1]))
		w.Uvarint(totals[k])
	}
	return w.Err()
}

// RestoreCheckpoint loads counters written by Checkpoint into shard
// slot 0 of a freshly built data plane.
func (dn *DataNet) RestoreCheckpoint(r *snapcodec.Reader) error {
	s := &dn.sc[0]
	s.delivered = r.Uvarint()
	s.droppedDISCS = r.Uvarint()
	s.droppedNet = r.Uvarint()
	n := r.Count(3)
	for i := 0; i < n; i++ {
		a := topology.ASN(r.Uvarint())
		b := topology.ASN(r.Uvarint())
		s.linkBytes[[2]topology.ASN{a, b}] = r.Uvarint()
	}
	return r.Err()
}
