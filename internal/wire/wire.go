// Package wire overlays a packet-level data plane on the DISCS system:
// every AS gets a data-forwarding node in the discrete-event simulator,
// adjacent ASes are joined by links with configurable delay, bandwidth
// and buffer depth, and IPv4 packets ride those links hop by hop.
//
// This is the substrate for the paper's core motivation (§I): a
// brute-force DDoS "overwhelm[s] the uplink of victim networks", and
// inter-AS collaboration "enables spoofing traffic to be filtered far
// from the victim AS, which alleviates the victim AS's bandwidth
// pressure and saves intermediate network bandwidth". With wire mode,
// both effects are measured rather than asserted: the victim's uplink
// is a finite-capacity link that congests, and per-link byte counters
// show where attack traffic dies.
//
// DISCS processing happens where it does in reality: outbound at the
// source AS border (if it deployed), inbound at the destination AS
// border (if it deployed); transit ASes only forward.
package wire

import (
	"fmt"
	"time"

	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Config sets the default link parameters of the data plane.
type Config struct {
	// HopDelay is the per-link propagation delay.
	HopDelay time.Duration
	// LinkBps is the default link bandwidth in bytes/second (0 =
	// unlimited). Individual links can be retuned via Link.
	LinkBps float64
	// MaxBacklog is the default per-link buffer depth (0 = unbounded).
	MaxBacklog time.Duration
}

// DefaultConfig: 1 ms hops, unlimited core links.
func DefaultConfig() Config { return Config{HopDelay: time.Millisecond} }

// dataMsg carries one IPv4 packet across a link.
type dataMsg struct {
	pkt   *packet.IPv4
	dstAS topology.ASN
}

// Size implements netsim.Message with the packet's wire size.
func (m *dataMsg) Size() int { return m.pkt.TotalLen() }

// Delivery reports one packet reaching its destination AS.
type Delivery struct {
	Pkt *packet.IPv4
	At  time.Duration
}

// DataNet is the instantiated data plane.
type DataNet struct {
	sys   *core.System
	nodes map[topology.ASN]*netsim.Node

	// OnDeliver, when set, observes every delivered packet.
	OnDeliver func(Delivery)

	// Counters.
	Delivered     uint64
	DroppedDISCS  uint64 // dropped by DISCS processing
	DroppedNet    uint64 // tail-dropped by congested links / no route
	linkBytes     map[[2]topology.ASN]uint64
	deliveredPkts []Delivery
}

// New builds data nodes and links for every AS and adjacency of the
// system's topology.
func New(sys *core.System, cfg Config) (*DataNet, error) {
	dn := &DataNet{
		sys:       sys,
		nodes:     make(map[topology.ASN]*netsim.Node),
		linkBytes: make(map[[2]topology.ASN]uint64),
	}
	topo := sys.Net.Topo
	for _, asn := range topo.ASNs() {
		node, err := sys.Net.Sim.AddNode(fmt.Sprintf("data%d", asn))
		if err != nil {
			return nil, err
		}
		dn.nodes[asn] = node
		asn := asn
		node.SetHandler(netsim.HandlerFunc(func(_ *netsim.Node, _ *netsim.Link, msg netsim.Message) {
			dn.receive(asn, msg)
		}))
	}
	for _, asn := range topo.ASNs() {
		a := topo.AS(asn)
		for _, prov := range a.Providers {
			if _, err := dn.connect(asn, prov, cfg); err != nil {
				return nil, err
			}
		}
		for _, peer := range a.Peers {
			if peer < asn {
				continue
			}
			if _, err := dn.connect(asn, peer, cfg); err != nil {
				return nil, err
			}
		}
	}
	return dn, nil
}

func (dn *DataNet) connect(a, b topology.ASN, cfg Config) (*netsim.Link, error) {
	l, err := dn.sys.Net.Sim.Connect(dn.nodes[a], dn.nodes[b], cfg.HopDelay)
	if err != nil {
		return nil, err
	}
	l.Bps = cfg.LinkBps
	l.MaxBacklog = cfg.MaxBacklog
	return l, nil
}

// Link returns the data link between two adjacent ASes so tests and
// experiments can tune its bandwidth/buffer (e.g. the victim's uplink).
func (dn *DataNet) Link(a, b topology.ASN) *netsim.Link {
	na, nb := dn.nodes[a], dn.nodes[b]
	if na == nil || nb == nil {
		return nil
	}
	for _, l := range na.Links() {
		if l.Neighbor(na) == nb {
			return l
		}
	}
	return nil
}

// LinkBytes returns the bytes that crossed the directed link a→b.
func (dn *DataNet) LinkBytes(a, b topology.ASN) uint64 {
	return dn.linkBytes[[2]topology.ASN{a, b}]
}

// Inject enters a packet at fromAS. The source border applies DISCS
// outbound processing (if fromAS deployed), then the packet rides the
// data links hop by hop toward the owner of its destination address.
// Injection happens at the current simulated time; run the simulator
// to progress deliveries.
func (dn *DataNet) Inject(fromAS topology.ASN, p *packet.IPv4) {
	dstAS, ok := dn.sys.Net.Topo.OwnerOf(p.Dst)
	if !ok {
		dn.DroppedNet++
		return
	}
	if r := dn.sys.Routers[fromAS]; r != nil {
		if r.ProcessOutbound(core.V4{P: p}, dn.sys.Now()).Dropped() {
			dn.DroppedDISCS++
			return
		}
	}
	if fromAS == dstAS {
		dn.deliver(p)
		return
	}
	dn.forward(fromAS, &dataMsg{pkt: p, dstAS: dstAS})
}

// receive handles a packet arriving at an AS's data node.
func (dn *DataNet) receive(at topology.ASN, msg netsim.Message) {
	m, ok := msg.(*dataMsg)
	if !ok {
		return
	}
	if at == m.dstAS {
		// Destination border: inbound DISCS processing.
		if r := dn.sys.Routers[at]; r != nil {
			if r.ProcessInbound(core.V4{P: m.pkt}, dn.sys.Now()).Dropped() {
				dn.DroppedDISCS++
				return
			}
		}
		dn.deliver(m.pkt)
		return
	}
	if m.pkt.TTL <= 1 {
		dn.DroppedNet++
		return
	}
	m.pkt.TTL--
	dn.forward(at, m)
}

// forward sends the packet one hop along the valley-free path.
func (dn *DataNet) forward(at topology.ASN, m *dataMsg) {
	next, ok := dn.sys.Net.Topo.NextHop(at, m.dstAS)
	if !ok {
		dn.DroppedNet++
		return
	}
	dn.linkBytes[[2]topology.ASN{at, next}] += uint64(m.pkt.TotalLen())
	if !dn.nodes[at].SendTo(dn.nodes[next], m) {
		dn.DroppedNet++ // congested or down link
	}
}

func (dn *DataNet) deliver(p *packet.IPv4) {
	dn.Delivered++
	d := Delivery{Pkt: p, At: dn.sys.Net.Sim.Now()}
	dn.deliveredPkts = append(dn.deliveredPkts, d)
	if dn.OnDeliver != nil {
		dn.OnDeliver(d)
	}
}

// Deliveries returns all deliveries so far.
func (dn *DataNet) Deliveries() []Delivery { return dn.deliveredPkts }

// ResetCounters clears delivery/drop/byte counters (links keep their
// configuration) so experiments can measure phases independently.
func (dn *DataNet) ResetCounters() {
	dn.Delivered, dn.DroppedDISCS, dn.DroppedNet = 0, 0, 0
	dn.linkBytes = make(map[[2]topology.ASN]uint64)
	dn.deliveredPkts = nil
}
