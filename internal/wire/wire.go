// Package wire overlays a packet-level data plane on the DISCS system:
// every AS gets a data-forwarding node in the discrete-event simulator,
// adjacent ASes are joined by links with configurable delay, bandwidth
// and buffer depth, and IPv4 packets ride those links hop by hop.
//
// This is the substrate for the paper's core motivation (§I): a
// brute-force DDoS "overwhelm[s] the uplink of victim networks", and
// inter-AS collaboration "enables spoofing traffic to be filtered far
// from the victim AS, which alleviates the victim AS's bandwidth
// pressure and saves intermediate network bandwidth". With wire mode,
// both effects are measured rather than asserted: the victim's uplink
// is a finite-capacity link that congests, and per-link byte counters
// show where attack traffic dies.
//
// DISCS processing happens where it does in reality: outbound at the
// source AS border (if it deployed), inbound at the destination AS
// border (if it deployed); transit ASes only forward.
//
// Under the parallel engine (internal/parsim), packet handlers for
// nodes in different shards execute on different worker goroutines, so
// all counters here are sharded: each shard accumulates into its own
// slot (indexed by the executing node's shard, which is exactly the
// lane the handler runs on), and the accessors sum the slots. Data
// nodes inherit their AS's shard from the border node, keeping
// border<->data interactions shard-local.
package wire

import (
	"fmt"
	"sort"
	"time"

	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Config sets the default link parameters of the data plane.
type Config struct {
	// HopDelay is the per-link propagation delay.
	HopDelay time.Duration
	// LinkBps is the default link bandwidth in bytes/second (0 =
	// unlimited). Individual links can be retuned via Link.
	LinkBps float64
	// MaxBacklog is the default per-link buffer depth (0 = unbounded).
	MaxBacklog time.Duration
}

// DefaultConfig: 1 ms hops, unlimited core links.
func DefaultConfig() Config { return Config{HopDelay: time.Millisecond} }

// dataMsg carries one IPv4 packet across a link.
type dataMsg struct {
	pkt   *packet.IPv4
	dstAS topology.ASN
}

// Size implements netsim.Message with the packet's wire size.
func (m *dataMsg) Size() int { return m.pkt.TotalLen() }

// Delivery reports one packet reaching its destination AS.
type Delivery struct {
	Pkt *packet.IPv4
	At  time.Duration
}

// shardCounters is one shard's slice of the data-plane accounting.
// Only the lane that owns the shard writes it, so no locking is
// needed; accessors run from driver context, after the lanes have
// quiesced.
type shardCounters struct {
	delivered    uint64
	droppedDISCS uint64
	droppedNet   uint64
	linkBytes    map[[2]topology.ASN]uint64
	deliveries   []Delivery

	// Scratch for the burst paths, reused across bursts so the steady
	// state allocates only the messages that actually travel. Same
	// single-writer discipline as the counters.
	carriers []core.MarkCarrier
	verdicts []core.Verdict
	dsts     []topology.ASN
}

// DataNet is the instantiated data plane.
type DataNet struct {
	sys   *core.System
	nodes map[topology.ASN]*netsim.Node

	// OnDeliver, when set, observes every delivered packet. Under the
	// parallel engine it is invoked from worker goroutines (one per
	// shard at a time); set it only for serial runs unless the callback
	// is safe for concurrent use.
	OnDeliver func(Delivery)

	sc []shardCounters // indexed by node shard
}

// New builds data nodes and links for every AS and adjacency of the
// system's topology. Each data node joins its border node's shard.
func New(sys *core.System, cfg Config) (*DataNet, error) {
	dn := &DataNet{
		sys:   sys,
		nodes: make(map[topology.ASN]*netsim.Node),
	}
	topo := sys.Net.Topo
	maxShard := 0
	for _, asn := range topo.ASNs() {
		node, err := sys.Net.Sim.AddNode(fmt.Sprintf("data%d", asn))
		if err != nil {
			return nil, err
		}
		if sp := sys.Net.Speakers[asn]; sp != nil {
			node.SetShard(sp.Node().Shard())
		}
		if s := node.Shard(); s > maxShard {
			maxShard = s
		}
		dn.nodes[asn] = node
		asn := asn
		node.SetHandler(netsim.HandlerFunc(func(_ *netsim.Node, _ *netsim.Link, msg netsim.Message) {
			dn.receive(asn, msg)
		}))
	}
	dn.sc = newShardCounters(maxShard + 1)
	for _, asn := range topo.ASNs() {
		a := topo.AS(asn)
		for _, prov := range a.Providers {
			if _, err := dn.connect(asn, prov, cfg); err != nil {
				return nil, err
			}
		}
		for _, peer := range a.Peers {
			if peer < asn {
				continue
			}
			if _, err := dn.connect(asn, peer, cfg); err != nil {
				return nil, err
			}
		}
	}
	return dn, nil
}

func newShardCounters(n int) []shardCounters {
	sc := make([]shardCounters, n)
	for i := range sc {
		sc[i].linkBytes = make(map[[2]topology.ASN]uint64)
	}
	return sc
}

// slot returns the counter shard for the AS whose node's handler is
// executing.
func (dn *DataNet) slot(asn topology.ASN) *shardCounters {
	return &dn.sc[dn.nodes[asn].Shard()]
}

func (dn *DataNet) connect(a, b topology.ASN, cfg Config) (*netsim.Link, error) {
	l, err := dn.sys.Net.Sim.Connect(dn.nodes[a], dn.nodes[b], cfg.HopDelay)
	if err != nil {
		return nil, err
	}
	l.Bps = cfg.LinkBps
	l.MaxBacklog = cfg.MaxBacklog
	return l, nil
}

// Link returns the data link between two adjacent ASes so tests and
// experiments can tune its bandwidth/buffer (e.g. the victim's uplink).
func (dn *DataNet) Link(a, b topology.ASN) *netsim.Link {
	na, nb := dn.nodes[a], dn.nodes[b]
	if na == nil || nb == nil {
		return nil
	}
	for _, l := range na.Links() {
		if l.Neighbor(na) == nb {
			return l
		}
	}
	return nil
}

// Delivered returns the number of packets that reached their
// destination AS.
func (dn *DataNet) Delivered() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].delivered
	}
	return n
}

// DroppedDISCS returns the number of packets dropped by DISCS
// processing (outbound at the source border or inbound at the
// destination border).
func (dn *DataNet) DroppedDISCS() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].droppedDISCS
	}
	return n
}

// DroppedNet returns the number of packets tail-dropped by congested
// links, dead of TTL, or lacking a route.
func (dn *DataNet) DroppedNet() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].droppedNet
	}
	return n
}

// LinkBytes returns the bytes that crossed the directed link a→b.
func (dn *DataNet) LinkBytes(a, b topology.ASN) uint64 {
	key := [2]topology.ASN{a, b}
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].linkBytes[key]
	}
	return n
}

// nodeNow reads the data node's clock — exact in the executing lane
// under a sharded backend, the global clock otherwise — mapped to the
// wall-clock domain used by the DISCS tables.
func (dn *DataNet) nodeNow(asn topology.ASN) (netsim.Time, time.Time) {
	at := dn.nodes[asn].Now()
	return at, time.Unix(0, 0).UTC().Add(at)
}

// Inject enters a packet at fromAS. The source border applies DISCS
// outbound processing (if fromAS deployed), then the packet rides the
// data links hop by hop toward the owner of its destination address.
// Injection happens at the current simulated time; run the simulator
// to progress deliveries.
func (dn *DataNet) Inject(fromAS topology.ASN, p *packet.IPv4) {
	dstAS, ok := dn.sys.Net.Topo.OwnerOf(p.Dst)
	if !ok {
		dn.slot(fromAS).droppedNet++
		return
	}
	at, wall := dn.nodeNow(fromAS)
	if r := dn.sys.Routers[fromAS]; r != nil {
		if r.ProcessOutbound(core.V4{P: p}, wall).Dropped() {
			dn.slot(fromAS).droppedDISCS++
			return
		}
	}
	if fromAS == dstAS {
		dn.deliver(fromAS, p, at)
		return
	}
	dn.forward(fromAS, &dataMsg{pkt: p, dstAS: dstAS})
}

// InjectBurst enters a vector of packets at fromAS as one burst: the
// source border applies DISCS outbound processing in a single batch
// (one pooled pipeline pass instead of len(pkts) serial table walks),
// and the survivors ride the data links as netsim.Burst trains — one
// link event per hop per destination AS instead of one per packet.
// Verdicts, counters and deliveries match calling Inject for each
// packet in order; the only difference is link-level, where a train
// serializes back-to-back and tail-drops as a unit on a full buffer.
func (dn *DataNet) InjectBurst(fromAS topology.ASN, pkts []*packet.IPv4) {
	s := dn.slot(fromAS)
	carriers := s.carriers[:0]
	dsts := s.dsts[:0]
	for _, p := range pkts {
		dstAS, ok := dn.sys.Net.Topo.OwnerOf(p.Dst)
		if !ok {
			s.droppedNet++ // unroutable before any DISCS processing, as in Inject
			continue
		}
		carriers = append(carriers, core.V4{P: p})
		dsts = append(dsts, dstAS)
	}
	defer func() {
		s.carriers = carriers[:0]
		s.dsts = dsts[:0]
	}()
	if len(carriers) == 0 {
		return
	}
	at, wall := dn.nodeNow(fromAS)
	var verdicts []core.Verdict
	if r := dn.sys.Routers[fromAS]; r != nil {
		verdicts = r.ProcessOutboundBatch(carriers, wall, s.verdicts[:0])
		s.verdicts = verdicts
	}
	// Resolve drops and intra-AS deliveries in packet order; dsts[i] is
	// overwritten with fromAS to mark the slot consumed either way.
	for i := range carriers {
		if verdicts != nil && verdicts[i].Dropped() {
			s.droppedDISCS++
			dsts[i] = fromAS
			continue
		}
		if dsts[i] == fromAS {
			dn.deliver(fromAS, carriers[i].(core.V4).P, at)
		}
	}
	// Group the survivors into one train per destination AS, preserving
	// packet order within each train. The common shape — one burst, one
	// victim — yields a single train in one scan.
	for i := range carriers {
		if dsts[i] == fromAS {
			continue
		}
		d := dsts[i]
		var train []netsim.Message
		for j := i; j < len(carriers); j++ {
			if dsts[j] != d {
				continue
			}
			train = append(train, &dataMsg{pkt: carriers[j].(core.V4).P, dstAS: d})
			dsts[j] = fromAS
		}
		dn.forwardBurst(fromAS, train)
	}
}

// receive handles a packet arriving at an AS's data node.
func (dn *DataNet) receive(at topology.ASN, msg netsim.Message) {
	if b, ok := msg.(*netsim.Burst); ok {
		dn.receiveBurst(at, b)
		return
	}
	m, ok := msg.(*dataMsg)
	if !ok {
		return
	}
	if at == m.dstAS {
		// Destination border: inbound DISCS processing.
		now, wall := dn.nodeNow(at)
		if r := dn.sys.Routers[at]; r != nil {
			if r.ProcessInbound(core.V4{P: m.pkt}, wall).Dropped() {
				dn.slot(at).droppedDISCS++
				return
			}
		}
		dn.deliver(at, m.pkt, now)
		return
	}
	if m.pkt.TTL <= 1 {
		dn.slot(at).droppedNet++
		return
	}
	m.pkt.TTL--
	dn.forward(at, m)
}

// receiveBurst handles a packet train arriving at an AS's data node:
// members terminating here get one batched inbound pass, the rest are
// TTL-filtered in place and forwarded as a train.
func (dn *DataNet) receiveBurst(at topology.ASN, b *netsim.Burst) {
	s := dn.slot(at)
	local := s.carriers[:0]
	fwd := b.Msgs[:0]
	for _, msg := range b.Msgs {
		m, ok := msg.(*dataMsg)
		if !ok {
			continue
		}
		if at == m.dstAS {
			local = append(local, core.V4{P: m.pkt})
			continue
		}
		if m.pkt.TTL <= 1 {
			s.droppedNet++
			continue
		}
		m.pkt.TTL--
		fwd = append(fwd, m)
	}
	if len(local) > 0 {
		now, wall := dn.nodeNow(at)
		if r := dn.sys.Routers[at]; r != nil {
			verdicts := r.ProcessInboundBatch(local, wall, s.verdicts[:0])
			s.verdicts = verdicts
			for i, v := range verdicts {
				if v.Dropped() {
					s.droppedDISCS++
					continue
				}
				dn.deliver(at, local[i].(core.V4).P, now)
			}
		} else {
			for _, c := range local {
				dn.deliver(at, c.(core.V4).P, now)
			}
		}
	}
	s.carriers = local[:0]
	if len(fwd) > 0 {
		dn.forwardBurst(at, fwd)
	}
}

// forwardBurst sends a train one hop. Trains built by InjectBurst share
// a destination AS; a mixed train falls back to per-member forwarding.
func (dn *DataNet) forwardBurst(at topology.ASN, msgs []netsim.Message) {
	dst := msgs[0].(*dataMsg).dstAS
	for _, m := range msgs[1:] {
		if m.(*dataMsg).dstAS != dst {
			for _, m := range msgs {
				dn.forward(at, m.(*dataMsg))
			}
			return
		}
	}
	s := dn.slot(at)
	next, ok := dn.sys.Net.Topo.NextHop(at, dst)
	if !ok {
		s.droppedNet += uint64(len(msgs))
		return
	}
	b := netsim.NewBurst(msgs)
	s.linkBytes[[2]topology.ASN{at, next}] += uint64(b.Size())
	if !dn.nodes[at].SendTo(dn.nodes[next], b) {
		s.droppedNet += uint64(len(msgs)) // full buffer: the train tail-drops as a unit
	}
}

// forward sends the packet one hop along the valley-free path.
func (dn *DataNet) forward(at topology.ASN, m *dataMsg) {
	next, ok := dn.sys.Net.Topo.NextHop(at, m.dstAS)
	if !ok {
		dn.slot(at).droppedNet++
		return
	}
	dn.slot(at).linkBytes[[2]topology.ASN{at, next}] += uint64(m.pkt.TotalLen())
	if !dn.nodes[at].SendTo(dn.nodes[next], m) {
		dn.slot(at).droppedNet++ // congested or down link
	}
}

func (dn *DataNet) deliver(at topology.ASN, p *packet.IPv4, now netsim.Time) {
	s := dn.slot(at)
	s.delivered++
	d := Delivery{Pkt: p, At: now}
	s.deliveries = append(s.deliveries, d)
	if dn.OnDeliver != nil {
		dn.OnDeliver(d)
	}
}

// Deliveries returns all deliveries so far, ordered by delivery time
// (ties broken by destination then source address, so the order is
// stable across worker counts).
func (dn *DataNet) Deliveries() []Delivery {
	var out []Delivery
	for i := range dn.sc {
		out = append(out, dn.sc[i].deliveries...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if c := a.Pkt.Dst.Compare(b.Pkt.Dst); c != 0 {
			return c < 0
		}
		return a.Pkt.Src.Compare(b.Pkt.Src) < 0
	})
	return out
}

// ResetCounters clears delivery/drop/byte counters (links keep their
// configuration) so experiments can measure phases independently.
func (dn *DataNet) ResetCounters() {
	dn.sc = newShardCounters(len(dn.sc))
}
