// Package wire overlays a packet-level data plane on the DISCS system:
// every AS gets a data-forwarding node in the discrete-event simulator,
// adjacent ASes are joined by links with configurable delay, bandwidth
// and buffer depth, and IPv4 packets ride those links hop by hop.
//
// This is the substrate for the paper's core motivation (§I): a
// brute-force DDoS "overwhelm[s] the uplink of victim networks", and
// inter-AS collaboration "enables spoofing traffic to be filtered far
// from the victim AS, which alleviates the victim AS's bandwidth
// pressure and saves intermediate network bandwidth". With wire mode,
// both effects are measured rather than asserted: the victim's uplink
// is a finite-capacity link that congests, and per-link byte counters
// show where attack traffic dies.
//
// DISCS processing happens where it does in reality: outbound at the
// source AS border (if it deployed), inbound at the destination AS
// border (if it deployed); transit ASes only forward.
//
// Under the parallel engine (internal/parsim), packet handlers for
// nodes in different shards execute on different worker goroutines, so
// all counters here are sharded: each shard accumulates into its own
// slot (indexed by the executing node's shard, which is exactly the
// lane the handler runs on), and the accessors sum the slots. Data
// nodes inherit their AS's shard from the border node, keeping
// border<->data interactions shard-local.
package wire

import (
	"fmt"
	"sort"
	"time"

	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Config sets the default link parameters of the data plane.
type Config struct {
	// HopDelay is the per-link propagation delay.
	HopDelay time.Duration
	// LinkBps is the default link bandwidth in bytes/second (0 =
	// unlimited). Individual links can be retuned via Link.
	LinkBps float64
	// MaxBacklog is the default per-link buffer depth (0 = unbounded).
	MaxBacklog time.Duration
}

// DefaultConfig: 1 ms hops, unlimited core links.
func DefaultConfig() Config { return Config{HopDelay: time.Millisecond} }

// dataMsg carries one IPv4 packet across a link.
type dataMsg struct {
	pkt   *packet.IPv4
	dstAS topology.ASN
}

// Size implements netsim.Message with the packet's wire size.
func (m *dataMsg) Size() int { return m.pkt.TotalLen() }

// Delivery reports one packet reaching its destination AS.
type Delivery struct {
	Pkt *packet.IPv4
	At  time.Duration
}

// shardCounters is one shard's slice of the data-plane accounting.
// Only the lane that owns the shard writes it, so no locking is
// needed; accessors run from driver context, after the lanes have
// quiesced.
type shardCounters struct {
	delivered    uint64
	droppedDISCS uint64
	droppedNet   uint64
	linkBytes    map[[2]topology.ASN]uint64
	deliveries   []Delivery
}

// DataNet is the instantiated data plane.
type DataNet struct {
	sys   *core.System
	nodes map[topology.ASN]*netsim.Node

	// OnDeliver, when set, observes every delivered packet. Under the
	// parallel engine it is invoked from worker goroutines (one per
	// shard at a time); set it only for serial runs unless the callback
	// is safe for concurrent use.
	OnDeliver func(Delivery)

	sc []shardCounters // indexed by node shard
}

// New builds data nodes and links for every AS and adjacency of the
// system's topology. Each data node joins its border node's shard.
func New(sys *core.System, cfg Config) (*DataNet, error) {
	dn := &DataNet{
		sys:   sys,
		nodes: make(map[topology.ASN]*netsim.Node),
	}
	topo := sys.Net.Topo
	maxShard := 0
	for _, asn := range topo.ASNs() {
		node, err := sys.Net.Sim.AddNode(fmt.Sprintf("data%d", asn))
		if err != nil {
			return nil, err
		}
		if sp := sys.Net.Speakers[asn]; sp != nil {
			node.SetShard(sp.Node().Shard())
		}
		if s := node.Shard(); s > maxShard {
			maxShard = s
		}
		dn.nodes[asn] = node
		asn := asn
		node.SetHandler(netsim.HandlerFunc(func(_ *netsim.Node, _ *netsim.Link, msg netsim.Message) {
			dn.receive(asn, msg)
		}))
	}
	dn.sc = newShardCounters(maxShard + 1)
	for _, asn := range topo.ASNs() {
		a := topo.AS(asn)
		for _, prov := range a.Providers {
			if _, err := dn.connect(asn, prov, cfg); err != nil {
				return nil, err
			}
		}
		for _, peer := range a.Peers {
			if peer < asn {
				continue
			}
			if _, err := dn.connect(asn, peer, cfg); err != nil {
				return nil, err
			}
		}
	}
	return dn, nil
}

func newShardCounters(n int) []shardCounters {
	sc := make([]shardCounters, n)
	for i := range sc {
		sc[i].linkBytes = make(map[[2]topology.ASN]uint64)
	}
	return sc
}

// slot returns the counter shard for the AS whose node's handler is
// executing.
func (dn *DataNet) slot(asn topology.ASN) *shardCounters {
	return &dn.sc[dn.nodes[asn].Shard()]
}

func (dn *DataNet) connect(a, b topology.ASN, cfg Config) (*netsim.Link, error) {
	l, err := dn.sys.Net.Sim.Connect(dn.nodes[a], dn.nodes[b], cfg.HopDelay)
	if err != nil {
		return nil, err
	}
	l.Bps = cfg.LinkBps
	l.MaxBacklog = cfg.MaxBacklog
	return l, nil
}

// Link returns the data link between two adjacent ASes so tests and
// experiments can tune its bandwidth/buffer (e.g. the victim's uplink).
func (dn *DataNet) Link(a, b topology.ASN) *netsim.Link {
	na, nb := dn.nodes[a], dn.nodes[b]
	if na == nil || nb == nil {
		return nil
	}
	for _, l := range na.Links() {
		if l.Neighbor(na) == nb {
			return l
		}
	}
	return nil
}

// Delivered returns the number of packets that reached their
// destination AS.
func (dn *DataNet) Delivered() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].delivered
	}
	return n
}

// DroppedDISCS returns the number of packets dropped by DISCS
// processing (outbound at the source border or inbound at the
// destination border).
func (dn *DataNet) DroppedDISCS() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].droppedDISCS
	}
	return n
}

// DroppedNet returns the number of packets tail-dropped by congested
// links, dead of TTL, or lacking a route.
func (dn *DataNet) DroppedNet() uint64 {
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].droppedNet
	}
	return n
}

// LinkBytes returns the bytes that crossed the directed link a→b.
func (dn *DataNet) LinkBytes(a, b topology.ASN) uint64 {
	key := [2]topology.ASN{a, b}
	var n uint64
	for i := range dn.sc {
		n += dn.sc[i].linkBytes[key]
	}
	return n
}

// nodeNow reads the data node's clock — exact in the executing lane
// under a sharded backend, the global clock otherwise — mapped to the
// wall-clock domain used by the DISCS tables.
func (dn *DataNet) nodeNow(asn topology.ASN) (netsim.Time, time.Time) {
	at := dn.nodes[asn].Now()
	return at, time.Unix(0, 0).UTC().Add(at)
}

// Inject enters a packet at fromAS. The source border applies DISCS
// outbound processing (if fromAS deployed), then the packet rides the
// data links hop by hop toward the owner of its destination address.
// Injection happens at the current simulated time; run the simulator
// to progress deliveries.
func (dn *DataNet) Inject(fromAS topology.ASN, p *packet.IPv4) {
	dstAS, ok := dn.sys.Net.Topo.OwnerOf(p.Dst)
	if !ok {
		dn.slot(fromAS).droppedNet++
		return
	}
	at, wall := dn.nodeNow(fromAS)
	if r := dn.sys.Routers[fromAS]; r != nil {
		if r.ProcessOutbound(core.V4{P: p}, wall).Dropped() {
			dn.slot(fromAS).droppedDISCS++
			return
		}
	}
	if fromAS == dstAS {
		dn.deliver(fromAS, p, at)
		return
	}
	dn.forward(fromAS, &dataMsg{pkt: p, dstAS: dstAS})
}

// receive handles a packet arriving at an AS's data node.
func (dn *DataNet) receive(at topology.ASN, msg netsim.Message) {
	m, ok := msg.(*dataMsg)
	if !ok {
		return
	}
	if at == m.dstAS {
		// Destination border: inbound DISCS processing.
		now, wall := dn.nodeNow(at)
		if r := dn.sys.Routers[at]; r != nil {
			if r.ProcessInbound(core.V4{P: m.pkt}, wall).Dropped() {
				dn.slot(at).droppedDISCS++
				return
			}
		}
		dn.deliver(at, m.pkt, now)
		return
	}
	if m.pkt.TTL <= 1 {
		dn.slot(at).droppedNet++
		return
	}
	m.pkt.TTL--
	dn.forward(at, m)
}

// forward sends the packet one hop along the valley-free path.
func (dn *DataNet) forward(at topology.ASN, m *dataMsg) {
	next, ok := dn.sys.Net.Topo.NextHop(at, m.dstAS)
	if !ok {
		dn.slot(at).droppedNet++
		return
	}
	dn.slot(at).linkBytes[[2]topology.ASN{at, next}] += uint64(m.pkt.TotalLen())
	if !dn.nodes[at].SendTo(dn.nodes[next], m) {
		dn.slot(at).droppedNet++ // congested or down link
	}
}

func (dn *DataNet) deliver(at topology.ASN, p *packet.IPv4, now netsim.Time) {
	s := dn.slot(at)
	s.delivered++
	d := Delivery{Pkt: p, At: now}
	s.deliveries = append(s.deliveries, d)
	if dn.OnDeliver != nil {
		dn.OnDeliver(d)
	}
}

// Deliveries returns all deliveries so far, ordered by delivery time
// (ties broken by destination then source address, so the order is
// stable across worker counts).
func (dn *DataNet) Deliveries() []Delivery {
	var out []Delivery
	for i := range dn.sc {
		out = append(out, dn.sc[i].deliveries...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if c := a.Pkt.Dst.Compare(b.Pkt.Dst); c != 0 {
			return c < 0
		}
		return a.Pkt.Src.Compare(b.Pkt.Src) < 0
	})
	return out
}

// ResetCounters clears delivery/drop/byte counters (links keep their
// configuration) so experiments can measure phases independently.
func (dn *DataNet) ResetCounters() {
	dn.sc = newShardCounters(len(dn.sc))
}
