// Shard partitioning for the parallel simulation engine
// (internal/parsim). The engine advances shards in lock-step epochs
// bounded by the minimum cross-shard link latency, so a good partition
// (a) keeps chatty neighbors — an AS and its transit providers — in
// the same shard, and (b) balances expected event load across shards.
//
// PartitionCones does both with customer-cone locality: every AS is
// attached to its primary provider (the provider with the most address
// space, a proxy for customer-cone size), which induces a forest of
// primary-provider trees rooted at the provider-free core. Subtrees
// heavier than a load threshold are carved into their own groups (a
// single tier-1's cone can hold most of the Internet, so whole trees
// are too lumpy to balance), then groups are bin-packed onto shards
// largest-first by degree weight — event load is proportional to a
// node's BGP session count, not the node count alone.
package topology

import "sort"

// PartitionCones assigns every AS to one of k shards (0..k-1) with
// customer-cone locality. The result is deterministic for a given
// topology and k. k <= 1 yields the all-zero partition.
func (t *Topology) PartitionCones(k int) map[ASN]int {
	shard := make(map[ASN]int, len(t.order))
	if k <= 1 {
		for _, asn := range t.order {
			shard[asn] = 0
		}
		return shard
	}

	// Primary provider: the provider with the largest address space
	// (lowest ASN on ties). Provider-free ASes are forest roots.
	parent := make(map[ASN]ASN, len(t.order))
	children := make(map[ASN][]ASN, len(t.order))
	var roots []ASN
	total := 0
	for _, asn := range t.order {
		a := t.ases[asn]
		total += a.Degree() + 1
		if len(a.Providers) == 0 {
			roots = append(roots, asn)
			continue
		}
		best := a.Providers[0]
		for _, p := range a.Providers[1:] {
			sp, sb := t.ases[p].AddrSpace, t.ases[best].AddrSpace
			if sp > sb || (sp == sb && p < best) {
				best = p
			}
		}
		parent[asn] = best
		children[best] = append(children[best], asn)
	}

	// Post-order walk of each tree, carving any subtree whose degree
	// weight reaches the threshold into its own group. What remains of
	// a tree after carving is the root's group, so every group is a
	// connected piece of a primary-provider tree.
	threshold := total/(2*k) + 1
	group := make(map[ASN]ASN, len(t.order)) // AS -> its group root
	weight := make(map[ASN]int, 2*k)         // group root -> degree weight
	var carved []ASN
	type frame struct {
		asn  ASN
		next int // next child index to visit
	}
	sub := make(map[ASN]int, len(t.order)) // un-carved subtree weight
	for _, r := range roots {
		stack := []frame{{asn: r}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			kids := children[f.asn]
			if f.next < len(kids) {
				c := kids[f.next]
				f.next++
				stack = append(stack, frame{asn: c})
				continue
			}
			w := t.ases[f.asn].Degree() + 1
			for _, c := range kids {
				w += sub[c] // 0 if c was carved into its own group
			}
			if w >= threshold && f.asn != r {
				carved = append(carved, f.asn)
				weight[f.asn] = w
				sub[f.asn] = 0
			} else {
				sub[f.asn] = w
			}
			stack = stack[:len(stack)-1]
		}
		weight[r] = sub[r]
	}
	// Group membership: nearest carved ancestor (or the tree root).
	groupRoots := append(append([]ASN(nil), roots...), carved...)
	isRoot := make(map[ASN]bool, len(groupRoots))
	for _, g := range groupRoots {
		isRoot[g] = true
	}
	var chain []ASN
	for _, asn := range t.order {
		chain = chain[:0]
		cur := asn
		for !isRoot[cur] {
			if g, ok := group[cur]; ok {
				cur = g
				break
			}
			chain = append(chain, cur)
			cur = parent[cur]
		}
		group[asn] = cur
		for _, c := range chain {
			group[c] = cur
		}
	}

	// LPT bin packing: heaviest group first onto the lightest shard.
	// Ties broken by ASN / shard index for determinism.
	sort.Slice(groupRoots, func(i, j int) bool {
		wi, wj := weight[groupRoots[i]], weight[groupRoots[j]]
		if wi != wj {
			return wi > wj
		}
		return groupRoots[i] < groupRoots[j]
	})
	load := make([]int, k)
	rootShard := make(map[ASN]int, len(groupRoots))
	for _, g := range groupRoots {
		min := 0
		for s := 1; s < k; s++ {
			if load[s] < load[min] {
				min = s
			}
		}
		rootShard[g] = min
		load[min] += weight[g]
	}
	for _, asn := range t.order {
		shard[asn] = rootShard[group[asn]]
	}
	return shard
}
