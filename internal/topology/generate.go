package topology

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
)

// GenConfig parameterizes the synthetic Internet generator.
type GenConfig struct {
	// NumASes is the number of autonomous systems. The paper's CAIDA
	// snapshot has 44 036.
	NumASes int
	// NumPrefixes is the approximate number of routable IPv4 prefixes
	// to allocate (the paper reports ~442k).
	NumPrefixes int
	// ZipfExponent shapes the head of the address-space distribution
	// (ranks 1..HeadRanks when HeadRanks > 0, all ranks otherwise).
	ZipfExponent float64
	// HeadRanks, when positive, switches the distribution to a
	// piecewise Pareto: ranks beyond HeadRanks decay with TailExponent
	// (continuously joined). The real 2012 prefix-to-AS distribution
	// has a very heavy head — the paper's checkpoints imply the 50
	// largest ASes hold ~52% of routable space and the 629 largest
	// ~90% — which a single Zipf cannot reproduce; the defaults are
	// calibrated to those checkpoints (see EXPERIMENTS.md).
	HeadRanks    int
	TailExponent float64
	// TierOneCount is the number of fully-meshed tier-1 transit ASes.
	TierOneCount int
	// Seed makes generation reproducible.
	Seed int64
	// SkipLinks disables relationship-graph generation; the evaluation
	// math only needs address-space ratios, and skipping links makes
	// 44k-AS generation fast.
	SkipLinks bool
}

// DefaultGenConfig returns the paper-scale configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumASes:      44036,
		NumPrefixes:  442000,
		ZipfExponent: 0.95,
		HeadRanks:    629,
		TailExponent: 2.5,
		TierOneCount: 12,
		Seed:         1,
	}
}

// GenerateInternet builds a synthetic AS-level Internet:
//
//   - AS sizes follow a Zipf distribution over ranks: the k-th largest
//     AS gets address space proportional to 1/k^s. Sizes are assigned
//     to ASNs in a seeded random permutation so ASN order carries no
//     information.
//   - Each AS's space is carved into CIDR prefixes allocated
//     sequentially from 1.0.0.0 upward, so prefixes are disjoint and
//     the Pfx2AS table is exact.
//   - Unless SkipLinks is set, a preferential-attachment multi-tier
//     provider graph is generated: tier-1 ASes form a full peer mesh,
//     every other AS buys transit from 1-2 providers chosen with
//     probability proportional to current degree, and a sprinkling of
//     peering links is added between similar-degree ASes.
func GenerateInternet(cfg GenConfig) (*Topology, error) {
	if cfg.NumASes < 1 {
		return nil, fmt.Errorf("topology: NumASes %d < 1", cfg.NumASes)
	}
	if cfg.NumPrefixes < cfg.NumASes {
		cfg.NumPrefixes = cfg.NumASes
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 1.0
	}
	if cfg.TierOneCount < 1 {
		cfg.TierOneCount = 1
	}
	if cfg.TierOneCount > cfg.NumASes {
		cfg.TierOneCount = cfg.NumASes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := New()

	n := cfg.NumASes
	for i := 1; i <= n; i++ {
		if _, err := t.AddAS(ASN(i)); err != nil {
			return nil, err
		}
	}

	// --- Address space ---------------------------------------------------
	// Zipf weights over ranks. Scale so the total is a large fraction of
	// the routable IPv4 space (~2.8e9 addresses) while the largest AS
	// stays below a /6 (so it can be carved into a few prefixes).
	weights := make([]float64, n)
	var wsum float64
	tailC := 1.0
	if cfg.HeadRanks > 0 && cfg.TailExponent > 0 {
		// Continuity at the head/tail break: C·H^-α2 = H^-α1.
		tailC = math.Pow(float64(cfg.HeadRanks), cfg.TailExponent-cfg.ZipfExponent)
	}
	for k := 0; k < n; k++ {
		rank := float64(k + 1)
		var w float64
		if cfg.HeadRanks > 0 && cfg.TailExponent > 0 && k+1 > cfg.HeadRanks {
			w = tailC / math.Pow(rank, cfg.TailExponent)
		} else {
			w = 1 / math.Pow(rank, cfg.ZipfExponent)
		}
		weights[k] = w
		wsum += w
	}
	// 2012-era routable IPv4 space was ~2.6e9 addresses; use a slightly
	// smaller budget so carving round-up cannot run off the end of the
	// address space.
	const routable = 2_200_000_000
	// Random permutation: rank k's size goes to ASN perm[k]+1.
	perm := rng.Perm(n)

	sizes := make([]uint64, n) // per rank
	for k := 0; k < n; k++ {
		s := uint64(float64(routable) * weights[k] / wsum)
		if s < 1 {
			s = 1
		}
		sizes[k] = s
	}

	// Allocate prefixes sequentially from 1.0.0.0. A 64-bit cursor
	// detects (deterministically, given the seed) if round-up and
	// alignment waste ever exhaust the IPv4 space.
	next := uint64(1 << 24) // 1.0.0.0
	extra := cfg.NumPrefixes - n
	for k := 0; k < n; k++ {
		asn := ASN(perm[k] + 1)
		// Prefix budget: one guaranteed, half the extra budget spread
		// uniformly, half by weight (big ASes announce many prefixes).
		nPfx := 1 + extra/(2*n) + int(float64(extra)/2*weights[k]/wsum)
		if nPfx > 64 {
			nPfx = 64
		}
		chunks := carve(sizes[k], nPfx)
		for _, bits := range chunks {
			// Align the allocation cursor to the prefix size.
			blk := uint64(1) << (32 - bits)
			next = (next + blk - 1) &^ (blk - 1)
			if next+blk > 1<<32 {
				return nil, fmt.Errorf("topology: address space exhausted at AS rank %d", k)
			}
			addr := netip.AddrFrom4([4]byte{byte(next >> 24), byte(next >> 16), byte(next >> 8), byte(next)})
			if err := t.AddPrefix(asn, netip.PrefixFrom(addr, int(bits))); err != nil {
				return nil, err
			}
			next += blk
		}
	}

	if cfg.SkipLinks {
		return t, nil
	}

	// --- Relationship graph ----------------------------------------------
	// Tier-1 full mesh.
	for i := 1; i <= cfg.TierOneCount; i++ {
		for j := i + 1; j <= cfg.TierOneCount; j++ {
			if err := t.Link(ASN(i), ASN(j), PeerToPeer); err != nil {
				return nil, err
			}
		}
	}
	// Preferential attachment for transit.
	degree := make([]int, n+1)
	for i := 1; i <= cfg.TierOneCount; i++ {
		degree[i] = cfg.TierOneCount - 1
	}
	var pool []ASN // one entry per degree unit, for O(1) weighted pick
	for i := 1; i <= cfg.TierOneCount; i++ {
		for d := 0; d < degree[i]; d++ {
			pool = append(pool, ASN(i))
		}
	}
	for i := cfg.TierOneCount + 1; i <= n; i++ {
		nProv := 1 + rng.Intn(2)
		chosen := map[ASN]bool{}
		for len(chosen) < nProv {
			var p ASN
			if len(pool) == 0 {
				p = ASN(1 + rng.Intn(cfg.TierOneCount))
			} else {
				p = pool[rng.Intn(len(pool))]
			}
			if p == ASN(i) || chosen[p] {
				continue
			}
			chosen[p] = true
			if err := t.Link(ASN(i), p, CustomerToProvider); err != nil {
				return nil, err
			}
			degree[i]++
			degree[p]++
			pool = append(pool, ASN(i), p)
		}
	}
	// Sprinkle peering links: ~5% of ASes get one lateral peer.
	nPeerings := n / 20
	for k := 0; k < nPeerings; k++ {
		a := ASN(1 + rng.Intn(n))
		b := ASN(1 + rng.Intn(n))
		if a == b || t.Connected(a, b) {
			continue
		}
		if err := t.Link(a, b, PeerToPeer); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// carve splits `size` addresses into equal power-of-two CIDR blocks:
// the block is the smallest power of two that covers size within the
// nPfx budget, clamped to [/28, /8]. The result covers at least `size`
// addresses; the count stays within nPfx unless size alone exceeds
// nPfx /8-blocks (the budget then yields to coverage).
func carve(size uint64, nPfx int) []uint8 {
	if size == 0 {
		size = 1
	}
	if nPfx < 1 {
		nPfx = 1
	}
	per := (size + uint64(nPfx) - 1) / uint64(nPfx)
	block := pow2Ceil(per)
	if block < 1<<4 {
		block = 1 << 4 // /28 floor: keep prefixes realistic
	}
	if block > 1<<24 {
		block = 1 << 24 // /8 ceiling
	}
	count := int((size + block - 1) / block)
	if count < 1 {
		count = 1
	}
	bits := uint8(32)
	for b := block; b > 1; b >>= 1 {
		bits--
	}
	out := make([]uint8, count)
	for i := range out {
		out[i] = bits
	}
	return out
}

// pow2Ceil returns the smallest power of two ≥ v.
func pow2Ceil(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}
