package topology

import (
	"math"
	"net/netip"
	"testing"
)

func mustAS(t *testing.T, tp *Topology, asn ASN) *AS {
	t.Helper()
	a, err := tp.AddAS(asn)
	if err != nil {
		t.Fatalf("AddAS(%d): %v", asn, err)
	}
	return a
}

func mustLink(t *testing.T, tp *Topology, a, b ASN, rel Relationship) {
	t.Helper()
	if err := tp.Link(a, b, rel); err != nil {
		t.Fatalf("Link(%d,%d,%v): %v", a, b, rel, err)
	}
}

func mustPrefix(t *testing.T, tp *Topology, asn ASN, s string) {
	t.Helper()
	if err := tp.AddPrefix(asn, netip.MustParsePrefix(s)); err != nil {
		t.Fatalf("AddPrefix(%d,%s): %v", asn, s, err)
	}
}

func TestAddASValidation(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	if _, err := tp.AddAS(1); err == nil {
		t.Error("duplicate AS should fail")
	}
	if _, err := tp.AddAS(0); err == nil {
		t.Error("AS 0 should be rejected")
	}
	if tp.NumASes() != 1 {
		t.Errorf("NumASes = %d", tp.NumASes())
	}
}

func TestLinkRelationships(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	mustAS(t, tp, 2)
	mustAS(t, tp, 3)
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 1, 3, PeerToPeer)

	a1, a2, a3 := tp.AS(1), tp.AS(2), tp.AS(3)
	if len(a1.Providers) != 1 || a1.Providers[0] != 2 {
		t.Errorf("AS1 providers = %v", a1.Providers)
	}
	if len(a2.Customers) != 1 || a2.Customers[0] != 1 {
		t.Errorf("AS2 customers = %v", a2.Customers)
	}
	if len(a1.Peers) != 1 || len(a3.Peers) != 1 {
		t.Error("peer link not symmetric")
	}
	if !tp.Connected(1, 2) || !tp.Connected(2, 1) || tp.Connected(2, 3) {
		t.Error("Connected wrong")
	}
	if err := tp.Link(1, 1, PeerToPeer); err == nil {
		t.Error("self link should fail")
	}
	if err := tp.Link(1, 99, PeerToPeer); err == nil {
		t.Error("unknown AS should fail")
	}
}

func TestPrefixOwnership(t *testing.T) {
	tp := New()
	mustAS(t, tp, 10)
	mustAS(t, tp, 20)
	mustPrefix(t, tp, 10, "10.0.0.0/8")
	mustPrefix(t, tp, 20, "10.1.0.0/16") // more specific carve-out

	if asn, ok := tp.OwnerOf(netip.MustParseAddr("10.1.2.3")); !ok || asn != 20 {
		t.Errorf("OwnerOf(10.1.2.3) = %d %v, want 20 (longest match)", asn, ok)
	}
	if asn, ok := tp.OwnerOf(netip.MustParseAddr("10.2.0.1")); !ok || asn != 10 {
		t.Errorf("OwnerOf(10.2.0.1) = %d %v", asn, ok)
	}
	if _, ok := tp.OwnerOf(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("unowned address should miss")
	}
	if !tp.Owns(10, netip.MustParseAddr("10.9.9.9")) {
		t.Error("Owns(10, 10.9.9.9) = false")
	}
	if tp.Owns(10, netip.MustParseAddr("10.1.0.1")) {
		t.Error("Owns should respect longest match")
	}
}

func TestOwnerOfPrefix(t *testing.T) {
	tp := New()
	mustAS(t, tp, 10)
	mustPrefix(t, tp, 10, "10.0.0.0/8")
	if asn, ok := tp.OwnerOfPrefix(netip.MustParsePrefix("10.5.0.0/16")); !ok || asn != 10 {
		t.Errorf("sub-prefix owner = %d %v", asn, ok)
	}
	// A /4 covering more than the owner's /8 is not owned.
	if _, ok := tp.OwnerOfPrefix(netip.MustParsePrefix("0.0.0.0/4")); ok {
		t.Error("super-prefix should not be owned")
	}
}

func TestRatios(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	mustAS(t, tp, 2)
	mustAS(t, tp, 3)
	mustPrefix(t, tp, 1, "10.0.0.0/8")   // 2^24
	mustPrefix(t, tp, 2, "11.0.0.0/9")   // 2^23
	mustPrefix(t, tp, 2, "11.128.0.0/9") // 2^23 -> AS2 total 2^24

	if tp.TotalSpace() != 1<<25 {
		t.Fatalf("TotalSpace = %d", tp.TotalSpace())
	}
	if r := tp.Ratio(1); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("Ratio(1) = %v", r)
	}
	if r := tp.Ratio(2); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("Ratio(2) = %v", r)
	}
	// Zero-space AS is manipulated to one address (§VI-A2).
	if r := tp.Ratio(3); r <= 0 {
		t.Errorf("Ratio(3) = %v, want tiny positive", r)
	}
	rs := tp.Ratios()
	if len(rs) != 3 {
		t.Fatalf("Ratios len = %d", len(rs))
	}
}

func TestBySizeDesc(t *testing.T) {
	tp := New()
	mustAS(t, tp, 5)
	mustAS(t, tp, 6)
	mustAS(t, tp, 7)
	mustPrefix(t, tp, 6, "10.0.0.0/8")
	mustPrefix(t, tp, 5, "11.0.0.0/16")
	order := tp.BySizeDesc()
	if order[0] != 6 || order[1] != 5 || order[2] != 7 {
		t.Fatalf("BySizeDesc = %v", order)
	}
}

func TestPathDirectLink(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	mustAS(t, tp, 2)
	mustLink(t, tp, 1, 2, CustomerToProvider)
	p, ok := tp.Path(1, 2)
	if !ok || len(p) != 2 || p[0] != 1 || p[1] != 2 {
		t.Fatalf("Path = %v %v", p, ok)
	}
	p, ok = tp.Path(2, 1)
	if !ok || len(p) != 2 {
		t.Fatalf("reverse Path = %v %v", p, ok)
	}
	if p, ok := tp.Path(1, 1); !ok || len(p) != 1 {
		t.Fatalf("self Path = %v %v", p, ok)
	}
}

func TestPathThroughProvider(t *testing.T) {
	// 1 and 3 are customers of 2: path 1-2-3 (up then down).
	tp := New()
	for i := ASN(1); i <= 3; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 3, 2, CustomerToProvider)
	p, ok := tp.Path(1, 3)
	if !ok || len(p) != 3 || p[1] != 2 {
		t.Fatalf("Path = %v %v", p, ok)
	}
	if err := tp.ValidateValleyFree(p); err != nil {
		t.Fatal(err)
	}
}

func TestPathValleyForbidden(t *testing.T) {
	// 2 is a customer of both 1 and 3. Path from 1 to 3 via 2 would be
	// down-then-up (a valley): must not exist.
	tp := New()
	for i := ASN(1); i <= 3; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 2, 1, CustomerToProvider)
	mustLink(t, tp, 2, 3, CustomerToProvider)
	if p, ok := tp.Path(1, 3); ok {
		t.Fatalf("valley path %v should not exist", p)
	}
	if err := tp.ValidateValleyFree([]ASN{1, 2, 3}); err == nil {
		t.Fatal("ValidateValleyFree should reject a valley")
	}
}

func TestPathSinglePeerHop(t *testing.T) {
	// 1 -peer- 2 -peer- 3: two peer hops are not valley-free.
	tp := New()
	for i := ASN(1); i <= 3; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, PeerToPeer)
	mustLink(t, tp, 2, 3, PeerToPeer)
	if p, ok := tp.Path(1, 3); ok {
		t.Fatalf("double-peer path %v should not exist", p)
	}
	if err := tp.ValidateValleyFree([]ASN{1, 2, 3}); err == nil {
		t.Fatal("double peer hop should be invalid")
	}
}

func TestPathUpPeerDown(t *testing.T) {
	// Classic shape: 1 -> provider 2 -peer- 3 -> customer 4.
	tp := New()
	for i := ASN(1); i <= 4; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 2, 3, PeerToPeer)
	mustLink(t, tp, 4, 3, CustomerToProvider)
	p, ok := tp.Path(1, 4)
	if !ok || len(p) != 4 {
		t.Fatalf("Path = %v %v", p, ok)
	}
	if err := tp.ValidateValleyFree(p); err != nil {
		t.Fatal(err)
	}
}

func TestPathNoUphillAfterPeer(t *testing.T) {
	// 1 -peer- 2, 2 customer of 3: 1->2->3 would be peer-then-up.
	tp := New()
	for i := ASN(1); i <= 3; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, PeerToPeer)
	mustLink(t, tp, 2, 3, CustomerToProvider)
	if p, ok := tp.Path(1, 3); ok {
		t.Fatalf("peer-then-up path %v should not exist", p)
	}
}

func TestNextHop(t *testing.T) {
	tp := New()
	for i := ASN(1); i <= 3; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 3, 2, CustomerToProvider)
	nh, ok := tp.NextHop(1, 3)
	if !ok || nh != 2 {
		t.Fatalf("NextHop = %d %v", nh, ok)
	}
	if _, ok := tp.NextHop(1, 1); ok {
		t.Fatal("NextHop to self should fail")
	}
}

func TestPathUnknownAS(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	if _, ok := tp.Path(1, 99); ok {
		t.Fatal("path to unknown AS should fail")
	}
}
