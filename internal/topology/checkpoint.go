// Checkpoint/restore seam. The topology serializes its internals
// verbatim rather than replaying construction calls: per-AS neighbor
// lists keep their exact insertion order because adjacency order
// breaks BFS ties in the valley-free routing trees and fixes the link
// creation order in bgp.BuildNetwork — a restored world must reproduce
// both bit-for-bit. The prefix-to-AS table is serialized as its own
// entry list (not re-derived from per-AS prefix lists) so multi-origin
// corner cases survive a round trip. The route-tree cache itself is
// not serialized — only warmth markers, the FIFO-ordered list of
// destination ASNs whose trees were cached, which the restore path
// re-warms with WarmRoutes.
package topology

import (
	"fmt"
	"net/netip"

	"discs/internal/snapcodec"
)

func writeASNs(w *snapcodec.Writer, list []ASN) {
	w.Uvarint(uint64(len(list)))
	for _, a := range list {
		w.Uvarint(uint64(a))
	}
}

func readASNs(r *snapcodec.Reader) []ASN {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]ASN, n)
	for i := range out {
		out[i] = ASN(r.Uvarint())
	}
	return out
}

// WarmedDestinations returns the destination ASNs whose routing trees
// are currently cached, in cache insertion order (the FIFO eviction
// order, so re-warming in this order reproduces the cache exactly).
func (t *Topology) WarmedDestinations() []ASN {
	t.routeMu.RLock()
	defer t.routeMu.RUnlock()
	if t.routes == nil {
		return nil
	}
	out := make([]ASN, 0, len(t.routes.fifo))
	for _, root := range t.routes.fifo {
		out = append(out, t.routes.ix.asns[root])
	}
	return out
}

// Checkpoint serializes the full topology plus route-cache warmth
// markers.
func (t *Topology) Checkpoint(w *snapcodec.Writer) error {
	w.Uvarint(uint64(len(t.order)))
	for _, asn := range t.order {
		a := t.ases[asn]
		w.Uvarint(uint64(asn))
		w.Uvarint(a.AddrSpace)
		w.Uvarint(uint64(len(a.Prefixes)))
		for _, p := range a.Prefixes {
			w.Prefix(p)
		}
		writeASNs(w, a.Providers)
		writeASNs(w, a.Customers)
		writeASNs(w, a.Peers)
	}
	w.Uvarint(t.total)
	w.Uvarint(uint64(t.pfx2as.Len()))
	t.pfx2as.Walk(func(p netip.Prefix, v ASN) bool {
		w.Prefix(p)
		w.Uvarint(uint64(v))
		return true
	})
	w.Varint(int64(t.routeCap))
	t.routeMu.RLock()
	active := t.routes != nil
	t.routeMu.RUnlock()
	w.Bool(active)
	writeASNs(w, t.WarmedDestinations())
	return w.Err()
}

// RestoreTopology rebuilds a topology from a Checkpoint section and
// returns it together with the warmth markers (the caller re-warms
// them once metric publication is wired up, so cache hit/miss counters
// accrue in the right registry).
func RestoreTopology(r *snapcodec.Reader) (*Topology, []ASN, error) {
	t := New()
	n := r.Count(4)
	for i := 0; i < n; i++ {
		asn := ASN(r.Uvarint())
		a := &AS{ASN: asn, AddrSpace: r.Uvarint()}
		np := r.Count(6)
		for j := 0; j < np; j++ {
			a.Prefixes = append(a.Prefixes, r.Prefix())
		}
		a.Providers = readASNs(r)
		a.Customers = readASNs(r)
		a.Peers = readASNs(r)
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if asn == 0 || t.ases[asn] != nil {
			return nil, nil, fmt.Errorf("topology: restore: invalid or duplicate AS%d", asn)
		}
		t.ases[asn] = a
		t.order = append(t.order, asn)
	}
	t.total = r.Uvarint()
	npfx := r.Count(6)
	for i := 0; i < npfx; i++ {
		p := r.Prefix()
		asn := ASN(r.Uvarint())
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if err := t.pfx2as.Insert(p, asn); err != nil {
			return nil, nil, fmt.Errorf("topology: restore: %w", err)
		}
	}
	t.routeCap = int(r.Varint())
	// nil warm ⇔ the route cache did not exist at checkpoint time; an
	// empty non-nil slice means it existed but held no trees. The
	// caller mirrors that: WarmRoutes (which instantiates the cache)
	// only when warm is non-nil.
	active := r.Bool()
	warm := readASNs(r)
	if active && warm == nil {
		warm = []ASN{}
	} else if !active {
		warm = nil
	}
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	// Neighbor lists must be closed over the AS set, or BuildNetwork
	// on the restored topology would dereference a missing AS.
	for _, asn := range t.order {
		a := t.ases[asn]
		for _, lists := range [][]ASN{a.Providers, a.Customers, a.Peers} {
			for _, nb := range lists {
				if t.ases[nb] == nil {
					return nil, nil, fmt.Errorf("topology: restore: AS%d references missing AS%d", asn, nb)
				}
			}
		}
	}
	return t, warm, nil
}
