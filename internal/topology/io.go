package topology

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// This file reads and writes the CAIDA Routeviews "prefix2as" text
// format the paper's evaluation data comes from: one mapping per line,
//
//	<prefix-address> <TAB> <prefix-length> <TAB> <AS-list>
//
// where AS-list is an AS number, an AS set "1_2_3" (multi-origin), or
// comma-separated alternatives. Per §VI-A2, a prefix mapped to multiple
// ASes has its address space divided evenly among them; we keep the
// mapping table pointing at the first AS and split only the size
// accounting.

// LoadPrefix2AS parses a prefix2as stream into a topology containing
// only ASes and prefixes (no relationship links).
func LoadPrefix2AS(r io.Reader) (*Topology, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("topology: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil || bits < 0 || bits > addr.BitLen() {
			return nil, fmt.Errorf("topology: line %d: bad prefix length %q", lineNo, fields[1])
		}
		p := netip.PrefixFrom(addr, bits).Masked()
		asns, err := parseASList(fields[2])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
		}
		for _, asn := range asns {
			if t.AS(asn) == nil {
				if _, err := t.AddAS(asn); err != nil {
					return nil, err
				}
			}
		}
		// The mapping table points at the first origin; the address
		// space is split evenly across all origins.
		if err := t.pfx2as.Insert(p, asns[0]); err != nil {
			return nil, err
		}
		size := prefixSize(p)
		share := size / uint64(len(asns))
		if share == 0 {
			share = 1
		}
		for _, asn := range asns {
			a := t.ases[asn]
			a.Prefixes = append(a.Prefixes, p)
			a.AddrSpace += share
		}
		t.total += size
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseASList parses "701", "1_2_3" (AS set) or "12,34" (alternative
// origins) into a list of ASNs.
func parseASList(s string) ([]ASN, error) {
	var out []ASN
	for _, alt := range strings.Split(s, ",") {
		for _, part := range strings.Split(alt, "_") {
			v, err := strconv.ParseUint(part, 10, 32)
			if err != nil || v == 0 {
				return nil, fmt.Errorf("bad AS number %q", part)
			}
			out = append(out, ASN(v))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty AS list %q", s)
	}
	return out, nil
}

// WritePrefix2AS dumps the topology's prefix-to-AS mapping in the
// prefix2as text format, sorted for determinism.
func (t *Topology) WritePrefix2AS(w io.Writer) error {
	type row struct {
		p   netip.Prefix
		asn ASN
	}
	var rows []row
	t.pfx2as.Walk(func(p netip.Prefix, asn ASN) bool {
		rows = append(rows, row{p, asn})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].p.String() < rows[j].p.String() })
	bw := bufio.NewWriter(w)
	for _, r := range rows {
		fmt.Fprintf(bw, "%s\t%d\t%d\n", r.p.Addr(), r.p.Bits(), r.asn)
	}
	return bw.Flush()
}
