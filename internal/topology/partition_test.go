package topology

import "testing"

func TestPartitionConesSmall(t *testing.T) {
	tp := New()
	// Two tier-1s, each with a provider chain below.
	for _, asn := range []ASN{1, 2, 10, 11, 20, 21} {
		if _, err := tp.AddAS(asn); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(a, b ASN, r Relationship) {
		t.Helper()
		if err := tp.Link(a, b, r); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(10, 1, CustomerToProvider)
	mustLink(11, 10, CustomerToProvider)
	mustLink(20, 2, CustomerToProvider)
	mustLink(21, 20, CustomerToProvider)
	mustLink(1, 2, PeerToPeer)

	shard := tp.PartitionCones(2)
	if len(shard) != tp.NumASes() {
		t.Fatalf("partition covers %d ASes, want %d", len(shard), tp.NumASes())
	}
	for asn, s := range shard {
		if s < 0 || s >= 2 {
			t.Fatalf("AS%d assigned out-of-range shard %d", asn, s)
		}
	}
	// Cone locality: each chain stays whole.
	if shard[10] != shard[1] || shard[11] != shard[1] {
		t.Fatalf("cone of AS1 split: %v", shard)
	}
	if shard[20] != shard[2] || shard[21] != shard[2] {
		t.Fatalf("cone of AS2 split: %v", shard)
	}
	// Two equal-weight trees must land on different shards.
	if shard[1] == shard[2] {
		t.Fatalf("both trees on shard %d", shard[1])
	}
}

func TestPartitionConesDegenerate(t *testing.T) {
	tp := New()
	for asn := ASN(1); asn <= 5; asn++ {
		if _, err := tp.AddAS(asn); err != nil {
			t.Fatal(err)
		}
	}
	one := tp.PartitionCones(1)
	for asn, s := range one {
		if s != 0 {
			t.Fatalf("k=1: AS%d on shard %d", asn, s)
		}
	}
	// More shards than trees: still valid, just sparse.
	many := tp.PartitionCones(16)
	for asn, s := range many {
		if s < 0 || s >= 16 {
			t.Fatalf("AS%d on shard %d", asn, s)
		}
	}
}

func TestPartitionConesGeneratedBalanceAndDeterminism(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{NumASes: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	shard := tp.PartitionCones(k)
	again := tp.PartitionCones(k)
	if len(shard) != tp.NumASes() {
		t.Fatalf("partition covers %d, want %d", len(shard), tp.NumASes())
	}
	for asn, s := range shard {
		if again[asn] != s {
			t.Fatalf("nondeterministic: AS%d got %d then %d", asn, s, again[asn])
		}
	}
	// Locality: most ASes share a shard with their primary
	// (largest-address-space) provider; only carved-subtree roots may
	// be split from it.
	co, tot := 0, 0
	for _, asn := range tp.ASNs() {
		a := tp.AS(asn)
		if len(a.Providers) == 0 {
			continue
		}
		best := a.Providers[0]
		for _, p := range a.Providers[1:] {
			sp, sb := tp.AS(p).AddrSpace, tp.AS(best).AddrSpace
			if sp > sb || (sp == sb && p < best) {
				best = p
			}
		}
		tot++
		if shard[asn] == shard[best] {
			co++
		}
	}
	if frac := float64(co) / float64(tot); frac < 0.85 {
		t.Fatalf("only %.1f%% of ASes share a shard with their primary provider", 100*frac)
	}
	// Load balance by degree weight: no shard should be empty and the
	// heaviest shard should not exceed ~3x the mean (LPT bound is far
	// tighter, but tree granularity on a heavy-tailed topology is
	// lumpy — one tier-1 tree can dominate).
	load := make([]int, k)
	for _, asn := range tp.ASNs() {
		load[shard[asn]] += tp.AS(asn).Degree() + 1
	}
	total := 0
	for _, l := range load {
		total += l
	}
	mean := total / k
	for s, l := range load {
		if l == 0 {
			t.Fatalf("shard %d is empty: %v", s, load)
		}
		if l > 3*mean {
			t.Fatalf("shard %d load %d exceeds 3x mean %d: %v", s, l, mean, load)
		}
	}
}
