package topology

import (
	"math/rand"
	"testing"
)

// referenceBFS is the pre-SPF per-pair BFS, kept verbatim as the
// differential-test oracle. It explores the same two-phase state
// machine as the tree builder, one (src,dst) pair at a time.
func referenceBFS(t *Topology, src, dst ASN) ([]ASN, bool) {
	if t.ases[src] == nil || t.ases[dst] == nil {
		return nil, false
	}
	if src == dst {
		return []ASN{src}, true
	}
	type nodeState struct {
		asn ASN
		st  int
	}
	prev := make(map[nodeState]nodeState)
	seen := map[nodeState]bool{{src, stUp}: true}
	queue := []nodeState{{src, stUp}}
	var goal nodeState
	found := false

	push := func(cur, next nodeState) {
		if seen[next] {
			return
		}
		seen[next] = true
		prev[next] = cur
		queue = append(queue, next)
	}

	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		a := t.ases[cur.asn]
		var candidates []nodeState
		if cur.st == stUp {
			for _, p := range a.Providers {
				candidates = append(candidates, nodeState{p, stUp})
			}
			for _, p := range a.Peers {
				candidates = append(candidates, nodeState{p, stDown})
			}
		}
		for _, c := range a.Customers {
			candidates = append(candidates, nodeState{c, stDown})
		}
		for _, next := range candidates {
			if next.asn == dst {
				prev[next] = cur
				goal, found = next, true
				break
			}
			push(cur, next)
		}
	}
	if !found {
		return nil, false
	}
	var rev []ASN
	for cur := goal; ; {
		rev = append(rev, cur.asn)
		p, exists := prev[cur]
		if !exists {
			break
		}
		cur = p
	}
	path := make([]ASN, len(rev))
	for i, a := range rev {
		path[len(rev)-1-i] = a
	}
	return path, true
}

// randomTopology builds a small random AS graph with transit AND
// peering links. Higher ASNs act as providers of lower ones, so the
// provider hierarchy is acyclic like the real Internet's.
func randomTopology(t *testing.T, n int, pLink, pPeer float64, seed int64) *Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tp := New()
	for i := 1; i <= n; i++ {
		mustAS(t, tp, ASN(i))
	}
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			if rng.Float64() >= pLink {
				continue
			}
			if rng.Float64() < pPeer {
				mustLink(t, tp, ASN(a), ASN(b), PeerToPeer)
			} else {
				mustLink(t, tp, ASN(a), ASN(b), CustomerToProvider)
			}
		}
	}
	return tp
}

// TestPathDifferentialVsBFS: on randomized small topologies the SPF
// trees agree with the per-pair reference BFS — same reachability in
// BOTH directions, new paths valley-free and no longer than the
// reference's.
func TestPathDifferentialVsBFS(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := 12 + int(seed)*3
		tp := randomTopology(t, n, 0.18, 0.35, seed)
		for a := 1; a <= n; a++ {
			for b := 1; b <= n; b++ {
				src, dst := ASN(a), ASN(b)
				want, wok := referenceBFS(tp, src, dst)
				got, gok := tp.Path(src, dst)
				if wok != gok {
					t.Fatalf("seed %d: reachability mismatch %d→%d: bfs=%v spf=%v",
						seed, src, dst, wok, gok)
				}
				if !gok {
					continue
				}
				if len(got) > len(want) {
					t.Fatalf("seed %d: %d→%d: spf path %v longer than bfs %v",
						seed, src, dst, got, want)
				}
				if err := tp.ValidateValleyFree(got); err != nil {
					t.Fatalf("seed %d: %d→%d: spf path %v not valley-free: %v",
						seed, src, dst, got, err)
				}
				if got[0] != src || got[len(got)-1] != dst {
					t.Fatalf("seed %d: %d→%d: bad endpoints %v", seed, src, dst, got)
				}
			}
		}
	}
}

// TestPathDifferentialGenerated: same differential check over the
// synthetic-Internet generator (tier-1 clique + transit + peering).
func TestPathDifferentialGenerated(t *testing.T) {
	tp := smallGen(t, 60, 7)
	for a := 1; a <= 60; a++ {
		for b := 1; b <= 60; b++ {
			src, dst := ASN(a), ASN(b)
			want, wok := referenceBFS(tp, src, dst)
			got, gok := tp.Path(src, dst)
			if wok != gok {
				t.Fatalf("reachability mismatch %d→%d: bfs=%v spf=%v", src, dst, wok, gok)
			}
			if gok {
				if len(got) > len(want) {
					t.Fatalf("%d→%d: spf %v longer than bfs %v", src, dst, got, want)
				}
				if err := tp.ValidateValleyFree(got); err != nil {
					t.Fatalf("%d→%d: %v: %v", src, dst, got, err)
				}
			}
		}
	}
}

// TestPathShortestDirectHit pins exact shortest-path lengths on a
// topology shaped to trigger the old computePath direct-hit bug: dst
// is discoverable both through a long provider chain and a short peer
// detour; the reconstructed path must be the short one.
func TestPathShortestDirectHit(t *testing.T) {
	tp := New()
	for i := ASN(1); i <= 6; i++ {
		mustAS(t, tp, i)
	}
	// Long route: 1→2→3→4→6 (climb to 4, then down to 6).
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 2, 3, CustomerToProvider)
	mustLink(t, tp, 3, 4, CustomerToProvider)
	mustLink(t, tp, 6, 4, CustomerToProvider)
	// Short route: 1→5→6 (climb to 5, peer across... no: 5 peers 6).
	mustLink(t, tp, 1, 5, CustomerToProvider)
	mustLink(t, tp, 5, 6, PeerToPeer)

	p, ok := tp.Path(1, 6)
	if !ok {
		t.Fatal("no path 1→6")
	}
	if len(p) != 3 {
		t.Fatalf("path 1→6 = %v, want length 3 (1 5 6)", p)
	}
	if err := tp.ValidateValleyFree(p); err != nil {
		t.Fatal(err)
	}
	// The reverse direction is also length 3 (6 p2p 5 is forbidden
	// after a descent but legal as the single peer hop: 6→5→1 is
	// peer-then-down — valid and shortest).
	q, ok := tp.Path(6, 1)
	if !ok || len(q) != 3 {
		t.Fatalf("path 6→1 = %v %v, want length 3", q, ok)
	}
}

// TestNextHopMatchesPath: NextHop is exactly Path[1], including along
// intermediate hops of a longer path (the data plane walks NextHop
// hop by hop with a fixed destination).
func TestNextHopMatchesPath(t *testing.T) {
	tp := smallGen(t, 80, 11)
	for a := 1; a <= 80; a += 3 {
		for b := 2; b <= 80; b += 5 {
			src, dst := ASN(a), ASN(b)
			p, ok := tp.Path(src, dst)
			if !ok || len(p) < 2 {
				continue
			}
			for i := 0; i+1 < len(p); i++ {
				hop, ok := tp.NextHop(p[i], dst)
				if !ok {
					t.Fatalf("NextHop(%d,%d) lost the route, path %v", p[i], dst, p)
				}
				if hop != p[i+1] {
					t.Fatalf("NextHop(%d,%d) = %d, want %d (path %v)", p[i], dst, hop, p[i+1], p)
				}
			}
		}
	}
}

// TestGeneratePaperScaleRoutable: the full DefaultGenConfig topology —
// 44 036 ASes WITH links — is connected and valley-free-routable:
// every AS reaches a tier-1 root, and sampled paths validate.
func TestGeneratePaperScaleRoutable(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale topology (44k ASes with links) in -short mode")
	}
	cfg := DefaultGenConfig()
	cfg.SkipLinks = false
	tp, err := GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.NumASes(); got != cfg.NumASes {
		t.Fatalf("NumASes = %d, want %d", got, cfg.NumASes)
	}
	if tp.NumLinks() < cfg.NumASes-1 {
		t.Fatalf("only %d links for %d ASes — cannot be connected", tp.NumLinks(), cfg.NumASes)
	}
	// One tree rooted at tier-1 AS1 answers reachability for every
	// source: the graph is connected and valley-free-routable iff all
	// ASes have a next hop toward the root.
	root := ASN(1)
	for _, asn := range tp.ASNs() {
		if asn == root {
			continue
		}
		if _, ok := tp.NextHop(asn, root); !ok {
			t.Fatalf("AS%d has no valley-free route to tier-1 AS%d", asn, root)
		}
	}
	// Sampled full paths validate end to end.
	asns := tp.ASNs()
	for i := 0; i < len(asns); i += 997 {
		src := asns[i]
		p, ok := tp.Path(src, root)
		if !ok {
			t.Fatalf("no path %d→%d", src, root)
		}
		if err := tp.ValidateValleyFree(p); err != nil {
			t.Fatalf("path %v: %v", p, err)
		}
	}
}

// TestLinkDuplicateRejected: linking the same pair twice errors and
// leaves the adjacency lists unchanged.
func TestLinkDuplicateRejected(t *testing.T) {
	tp := New()
	mustAS(t, tp, 1)
	mustAS(t, tp, 2)
	mustLink(t, tp, 1, 2, CustomerToProvider)
	for _, rel := range []Relationship{CustomerToProvider, ProviderToCustomer, PeerToPeer} {
		if err := tp.Link(1, 2, rel); err == nil {
			t.Fatalf("duplicate Link(1,2,%v) accepted", rel)
		}
		if err := tp.Link(2, 1, rel); err == nil {
			t.Fatalf("duplicate Link(2,1,%v) accepted", rel)
		}
	}
	if d := tp.AS(1).Degree(); d != 1 {
		t.Fatalf("AS1 degree = %d after rejected duplicates, want 1", d)
	}
	if n := tp.NumLinks(); n != 1 {
		t.Fatalf("NumLinks = %d, want 1", n)
	}
}
