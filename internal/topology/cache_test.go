package topology

import (
	"testing"
)

// TestPathCacheCorrectness: cached results equal fresh computations,
// and graph changes invalidate the cache.
func TestPathCacheCorrectness(t *testing.T) {
	tp := New()
	for i := ASN(1); i <= 4; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 3, 2, CustomerToProvider)

	p1, ok := tp.Path(1, 3)
	if !ok || len(p1) != 3 {
		t.Fatalf("path = %v", p1)
	}
	// Second call: cached, identical.
	p2, ok := tp.Path(1, 3)
	if !ok || &p1[0] != &p2[0] {
		t.Fatal("second call should return the memoized slice")
	}
	// Negative results are cached too.
	if _, ok := tp.Path(1, 4); ok {
		t.Fatal("no path to isolated AS4 expected")
	}
	if _, ok := tp.Path(1, 4); ok {
		t.Fatal("cached negative result changed")
	}
	// Adding a link invalidates: AS4 becomes reachable.
	mustLink(t, tp, 4, 2, CustomerToProvider)
	p3, ok := tp.Path(1, 4)
	if !ok || len(p3) != 3 {
		t.Fatalf("post-invalidation path = %v %v", p3, ok)
	}
	// And the old cached path is recomputed consistently.
	p4, ok := tp.Path(1, 3)
	if !ok || len(p4) != len(p1) {
		t.Fatalf("recomputed path = %v", p4)
	}
}

// TestPathCacheConcurrentReaders: Path is safe for concurrent use on a
// static topology (the baselines' Monte-Carlo runs depend on this).
func TestPathCacheConcurrentReaders(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 150, NumPrefixes: 300, ZipfExponent: 1.0, TierOneCount: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			for i := 0; i < 300; i++ {
				src := ASN(1 + (i*7+w)%150)
				dst := ASN(1 + (i*13+w*3)%150)
				tp.Path(src, dst)
			}
			done <- true
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func BenchmarkPathCold(b *testing.B) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 500, NumPrefixes: 1000, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Different pair every time defeats the cache.
		src := ASN(1 + i%500)
		dst := ASN(1 + (i*271+13)%500)
		b.StopTimer()
		tp.pathMu.Lock()
		tp.pathCache = nil
		tp.pathMu.Unlock()
		b.StartTimer()
		tp.Path(src, dst)
	}
}

func BenchmarkPathCached(b *testing.B) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 500, NumPrefixes: 1000, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tp.Path(100, 400) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Path(100, 400)
	}
}
