package topology

import (
	"testing"
)

// TestRouteCacheCorrectness: repeated lookups are consistent, graph
// changes invalidate cached trees, and Path hands out fresh slices.
func TestRouteCacheCorrectness(t *testing.T) {
	tp := New()
	for i := ASN(1); i <= 4; i++ {
		mustAS(t, tp, i)
	}
	mustLink(t, tp, 1, 2, CustomerToProvider)
	mustLink(t, tp, 3, 2, CustomerToProvider)

	p1, ok := tp.Path(1, 3)
	if !ok || len(p1) != 3 {
		t.Fatalf("path = %v", p1)
	}
	// Second call hits the cached tree but returns a fresh slice the
	// caller owns.
	p2, ok := tp.Path(1, 3)
	if !ok || len(p2) != 3 {
		t.Fatalf("second path = %v", p2)
	}
	if &p1[0] == &p2[0] {
		t.Fatal("Path must return a freshly allocated slice per call")
	}
	if tp.CachedRouteTrees() != 1 {
		t.Fatalf("cached trees = %d, want 1", tp.CachedRouteTrees())
	}
	// Negative results come from the same cached tree.
	if _, ok := tp.Path(1, 4); ok {
		t.Fatal("no path to isolated AS4 expected")
	}
	if _, ok := tp.Path(1, 4); ok {
		t.Fatal("repeated negative lookup changed")
	}
	// Adding a link invalidates: AS4 becomes reachable.
	mustLink(t, tp, 4, 2, CustomerToProvider)
	if tp.CachedRouteTrees() != 0 {
		t.Fatalf("cache not invalidated: %d trees", tp.CachedRouteTrees())
	}
	p3, ok := tp.Path(1, 4)
	if !ok || len(p3) != 3 {
		t.Fatalf("post-invalidation path = %v %v", p3, ok)
	}
	// And the old path is recomputed consistently.
	p4, ok := tp.Path(1, 3)
	if !ok || len(p4) != len(p1) {
		t.Fatalf("recomputed path = %v", p4)
	}
}

// TestRouteCacheEviction: the FIFO cache never exceeds its capacity
// and evicts oldest-first.
func TestRouteCacheEviction(t *testing.T) {
	tp := New()
	// Star: hub AS1 provides transit to stubs 2..8.
	for i := ASN(1); i <= 8; i++ {
		mustAS(t, tp, i)
	}
	for i := ASN(2); i <= 8; i++ {
		mustLink(t, tp, i, 1, CustomerToProvider)
	}
	tp.SetRouteCacheCapacity(3)
	for dst := ASN(2); dst <= 8; dst++ {
		if _, ok := tp.Path(2%dst+1, dst); !ok && dst != 2 {
			t.Fatalf("no path to %d", dst)
		}
		if n := tp.CachedRouteTrees(); n > 3 {
			t.Fatalf("cache grew to %d trees, cap 3", n)
		}
	}
	if n := tp.CachedRouteTrees(); n != 3 {
		t.Fatalf("cached trees = %d, want 3", n)
	}
	// The oldest roots were evicted; looking one up again must still
	// give a correct path (rebuilt on miss).
	p, ok := tp.Path(3, 2)
	if !ok || len(p) != 3 {
		t.Fatalf("path after eviction = %v %v", p, ok)
	}
}

// TestWarmRoutes: the worker pool precomputes trees for the requested
// destinations and warm NextHop lookups agree with Path.
func TestWarmRoutes(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 150, NumPrefixes: 300, ZipfExponent: 1.0, TierOneCount: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dsts := []ASN{10, 20, 30, 40, 10, 9999} // dup and unknown are skipped
	if got := tp.WarmRoutes(dsts, 4); got != 4 {
		t.Fatalf("WarmRoutes cached %d trees, want 4", got)
	}
	for _, dst := range dsts[:4] {
		for src := ASN(1); src <= 150; src++ {
			p, ok := tp.Path(src, dst)
			hop, hok := tp.NextHop(src, dst)
			if ok != hok && src != dst {
				t.Fatalf("Path/NextHop disagree for %d→%d", src, dst)
			}
			if ok && src != dst && hop != p[1] {
				t.Fatalf("NextHop(%d,%d) = %d, path %v", src, dst, hop, p)
			}
		}
	}
}

// TestPathCacheConcurrentReaders: Path is safe for concurrent use on a
// static topology (the baselines' Monte-Carlo runs depend on this).
func TestPathCacheConcurrentReaders(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 150, NumPrefixes: 300, ZipfExponent: 1.0, TierOneCount: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			for i := 0; i < 300; i++ {
				src := ASN(1 + (i*7+w)%150)
				dst := ASN(1 + (i*13+w*3)%150)
				tp.Path(src, dst)
			}
			done <- true
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestWarmRoutesConcurrentWithReaders: warming and reading race-free.
func TestWarmRoutesConcurrentWithReaders(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 150, NumPrefixes: 300, ZipfExponent: 1.0, TierOneCount: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	go func() {
		dsts := make([]ASN, 0, 50)
		for d := ASN(1); d <= 50; d++ {
			dsts = append(dsts, d)
		}
		tp.WarmRoutes(dsts, 4)
		done <- true
	}()
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			for i := 0; i < 200; i++ {
				tp.NextHop(ASN(1+(i*7+w)%150), ASN(1+(i*13+w*3)%150))
			}
			done <- true
		}()
	}
	for w := 0; w < 5; w++ {
		<-done
	}
}

func BenchmarkPathCold(b *testing.B) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 500, NumPrefixes: 1000, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Different destination every time defeats the tree cache.
		src := ASN(1 + i%500)
		dst := ASN(1 + (i*271+13)%500)
		b.StopTimer()
		tp.invalidateRoutes()
		b.StartTimer()
		tp.Path(src, dst)
	}
}

func BenchmarkPathCached(b *testing.B) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 500, NumPrefixes: 1000, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tp.Path(100, 400) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Path(100, 400)
	}
}

func BenchmarkNextHopWarm(b *testing.B) {
	tp, err := GenerateInternet(GenConfig{
		NumASes: 500, NumPrefixes: 1000, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tp.NextHop(100, 400) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.NextHop(ASN(1+i%500), 400)
	}
}
