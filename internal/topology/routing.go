package topology

import "fmt"

// This file implements valley-free (Gao-Rexford) inter-AS routing:
// a legal AS path is a sequence of customer→provider hops, followed by
// at most one peer hop, followed by provider→customer hops. Path
// computes the shortest such path; it is used by the packet-level
// end-to-end simulations, by the uRPF/DPF baselines (which reason about
// forwarding paths) and by examples.

// pathState encodes the BFS phase: still climbing (may use c2p),
// or descending (only p2c allowed after a peer or downhill hop).
type pathState int

const (
	stateUp pathState = iota
	stateDown
)

// Path returns the shortest valley-free AS path from src to dst,
// inclusive of both endpoints. ok is false when no valley-free path
// exists. Results are memoized until the graph changes (Link
// invalidates the cache); callers must not modify the returned slice.
func (t *Topology) Path(src, dst ASN) (path []ASN, ok bool) {
	if t.ases[src] == nil || t.ases[dst] == nil {
		return nil, false
	}
	if src == dst {
		return []ASN{src}, true
	}
	ck := [2]ASN{src, dst}
	t.pathMu.RLock()
	if t.pathCache != nil {
		if cached, hit := t.pathCache[ck]; hit {
			t.pathMu.RUnlock()
			return cached, cached != nil
		}
	}
	t.pathMu.RUnlock()
	path, ok = t.computePath(src, dst)
	t.pathMu.Lock()
	if t.pathCache == nil {
		t.pathCache = make(map[[2]ASN][]ASN)
	}
	if ok {
		t.pathCache[ck] = path
	} else {
		t.pathCache[ck] = nil
	}
	t.pathMu.Unlock()
	return path, ok
}

// computePath runs the valley-free BFS.
func (t *Topology) computePath(src, dst ASN) (path []ASN, ok bool) {
	type nodeState struct {
		asn ASN
		st  pathState
	}
	prev := make(map[nodeState]nodeState)
	seen := map[nodeState]bool{{src, stateUp}: true}
	queue := []nodeState{{src, stateUp}}
	var goal nodeState
	found := false

	push := func(cur, next nodeState) {
		if seen[next] {
			return
		}
		seen[next] = true
		prev[next] = cur
		queue = append(queue, next)
	}

	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		a := t.ases[cur.asn]
		var candidates []nodeState
		if cur.st == stateUp {
			for _, p := range a.Providers {
				candidates = append(candidates, nodeState{p, stateUp})
			}
			for _, p := range a.Peers {
				candidates = append(candidates, nodeState{p, stateDown})
			}
		}
		for _, c := range a.Customers {
			candidates = append(candidates, nodeState{c, stateDown})
		}
		for _, next := range candidates {
			if next.asn == dst {
				prev[next] = cur
				goal, found = next, true
				break
			}
			push(cur, next)
		}
	}
	if !found {
		// dst may have been reached in the other state via the loop
		// above only on direct hit; do a final check over both states.
		for _, st := range []pathState{stateUp, stateDown} {
			if seen[nodeState{dst, st}] {
				goal, found = nodeState{dst, st}, true
				break
			}
		}
	}
	if !found {
		return nil, false
	}
	// Reconstruct: only the BFS start state has no predecessor.
	var rev []ASN
	for cur := goal; ; {
		rev = append(rev, cur.asn)
		p, exists := prev[cur]
		if !exists {
			break
		}
		cur = p
	}
	path = make([]ASN, len(rev))
	for i, a := range rev {
		path[len(rev)-1-i] = a
	}
	return path, true
}

// NextHop returns the next AS after `at` on the shortest valley-free
// path from `at` to dst.
func (t *Topology) NextHop(at, dst ASN) (ASN, bool) {
	p, ok := t.Path(at, dst)
	if !ok || len(p) < 2 {
		return 0, false
	}
	return p[1], true
}

// ValidateValleyFree checks that a path obeys the valley-free rule and
// uses only existing links; used by tests and by the DPF baseline.
func (t *Topology) ValidateValleyFree(path []ASN) error {
	if len(path) == 0 {
		return fmt.Errorf("topology: empty path")
	}
	descending := false
	peerUsed := false
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		rel, ok := t.relOf(a, b)
		if !ok {
			return fmt.Errorf("topology: no link %d-%d", a, b)
		}
		switch rel {
		case CustomerToProvider:
			if descending {
				return fmt.Errorf("topology: uphill hop %d→%d after descent", a, b)
			}
		case PeerToPeer:
			if descending || peerUsed {
				return fmt.Errorf("topology: peer hop %d→%d after descent/peer", a, b)
			}
			peerUsed = true
			descending = true
		case ProviderToCustomer:
			descending = true
		}
	}
	return nil
}

// relOf returns the relationship of the directed hop a→b.
func (t *Topology) relOf(a, b ASN) (Relationship, bool) {
	asA := t.ases[a]
	if asA == nil {
		return 0, false
	}
	for _, n := range asA.Providers {
		if n == b {
			return CustomerToProvider, true
		}
	}
	for _, n := range asA.Peers {
		if n == b {
			return PeerToPeer, true
		}
	}
	for _, n := range asA.Customers {
		if n == b {
			return ProviderToCustomer, true
		}
	}
	return 0, false
}
