package topology

import (
	"fmt"
	"runtime"
	"sync"

	"discs/internal/obs"
)

// This file implements valley-free (Gao-Rexford) inter-AS routing: a
// legal AS path is a sequence of customer→provider hops, followed by
// at most one peer hop, followed by provider→customer hops. Path
// computes the shortest such path; it is used by the packet-level
// end-to-end simulations, by the uRPF/DPF baselines (which reason
// about forwarding paths) and by examples.
//
// Representation. Routing no longer runs a per-(src,dst) BFS with an
// unbounded pair cache. Instead the graph is frozen into a dense
// index (ASN → contiguous int32, adjacency in CSR form) and routes
// are materialized as shortest-path trees rooted at the DESTINATION:
// one backward BFS over the two-phase state graph
//
//	(AS, up)   — the forward path may still climb (c2p hops legal)
//	(AS, down) — the forward path is descending (only p2c remains)
//
// labels every AS with its next hop toward the root, which makes a
// warm NextHop lookup O(1) and Path an O(len) pointer walk. A tree is
// the per-source SPF of the reversed graph — valley-free paths are
// reversal-symmetric — and rooting at the destination means one tree
// answers NextHop(at, dst) for EVERY at, which is exactly the access
// pattern of hop-by-hop forwarding. Trees are computed lazily per
// destination (or eagerly via WarmRoutes' worker pool), cached in a
// bounded FIFO, and dropped whenever the graph changes.

// Phases of a valley-free path, used as the second dimension of the
// routing-tree arrays.
const (
	stUp   = 0 // still climbing: customer→provider hops are legal
	stDown = 1 // descending: only provider→customer hops remain
)

// Metric names the routing cache publishes once PublishMetrics is
// called. Exported so consumers of snapshots do not hard-code strings.
const (
	MetricRouteTrees     = "topology.route_trees"
	MetricRouteCapacity  = "topology.route_tree_capacity"
	MetricRouteHits      = "topology.route_tree_hits"
	MetricRouteMisses    = "topology.route_tree_misses"
	MetricRouteEvictions = "topology.route_tree_evictions"
)

// defaultRouteEntryBudget bounds the default tree-cache size in state
// entries (two per AS per tree, 4 bytes each): ~33 MB at full budget,
// which at paper scale (44 036 ASes) holds ~47 trees.
const defaultRouteEntryBudget = 4 << 20

// routingIndex is an immutable dense view of the relationship graph:
// ASNs mapped to contiguous indices and adjacency lists in CSR form,
// so tree construction is an O(V+E) scan over flat arrays instead of
// map walks. It is rebuilt whenever the graph changes.
type routingIndex struct {
	asns []ASN         // dense index → ASN (t.order at freeze time)
	pos  map[ASN]int32 // ASN → dense index

	provOff, custOff, peerOff []int32 // CSR offsets, len n+1
	prov, cust, peer          []int32 // CSR neighbor indices
}

func (t *Topology) buildIndex() *routingIndex {
	n := len(t.order)
	ix := &routingIndex{
		asns:    append([]ASN(nil), t.order...),
		pos:     make(map[ASN]int32, n),
		provOff: make([]int32, n+1),
		custOff: make([]int32, n+1),
		peerOff: make([]int32, n+1),
	}
	for i, a := range ix.asns {
		ix.pos[a] = int32(i)
	}
	var nProv, nCust, nPeer int32
	for i, a := range ix.asns {
		as := t.ases[a]
		nProv += int32(len(as.Providers))
		nCust += int32(len(as.Customers))
		nPeer += int32(len(as.Peers))
		ix.provOff[i+1] = nProv
		ix.custOff[i+1] = nCust
		ix.peerOff[i+1] = nPeer
	}
	ix.prov = make([]int32, nProv)
	ix.cust = make([]int32, nCust)
	ix.peer = make([]int32, nPeer)
	for i, a := range ix.asns {
		as := t.ases[a]
		fill(ix.prov[ix.provOff[i]:], as.Providers, ix.pos)
		fill(ix.cust[ix.custOff[i]:], as.Customers, ix.pos)
		fill(ix.peer[ix.peerOff[i]:], as.Peers, ix.pos)
	}
	return ix
}

func fill(dst []int32, src []ASN, pos map[ASN]int32) {
	for i, a := range src {
		dst[i] = pos[a]
	}
}

// routeTree is the valley-free shortest-path tree rooted at one
// destination. next[phase][v] packs the next hop of the shortest
// valley-free path from v (entered in `phase`) toward the root as
// neighborIdx<<1 | nextPhase; -1 marks "no valley-free path", -2 the
// root itself.
type routeTree struct {
	root int32
	next [2][]int32
}

// buildTree runs one backward BFS from the root over the reversed
// two-phase state graph. All edges have unit weight, so a FIFO scan
// labels every state with its shortest completion; the first label
// wins, and adjacency order (deterministic, insertion-ordered) breaks
// ties.
func buildTree(ix *routingIndex, root int32) *routeTree {
	n := len(ix.asns)
	tr := &routeTree{root: root}
	for st := 0; st < 2; st++ {
		tr.next[st] = make([]int32, n)
		for i := range tr.next[st] {
			tr.next[st][i] = -1
		}
	}
	tr.next[stUp][root], tr.next[stDown][root] = -2, -2

	queue := make([]int32, 0, 2*n)
	queue = append(queue, root<<1|stUp, root<<1|stDown)
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		v, st := s>>1, s&1
		enc := v<<1 | st
		if st == stUp {
			// Reverse of a c2p hop: a customer of v, still climbing,
			// climbs into v.
			for _, u := range ix.cust[ix.custOff[v]:ix.custOff[v+1]] {
				if tr.next[stUp][u] == -1 {
					tr.next[stUp][u] = enc
					queue = append(queue, u<<1|stUp)
				}
			}
		} else {
			// Reverse of a p2c hop: a provider of v hands down into v,
			// from either phase.
			for _, u := range ix.prov[ix.provOff[v]:ix.provOff[v+1]] {
				if tr.next[stUp][u] == -1 {
					tr.next[stUp][u] = enc
					queue = append(queue, u<<1|stUp)
				}
				if tr.next[stDown][u] == -1 {
					tr.next[stDown][u] = enc
					queue = append(queue, u<<1|stDown)
				}
			}
			// Reverse of the single peer hop: a peer of v, still
			// climbing, crosses into v and starts descending.
			for _, u := range ix.peer[ix.peerOff[v]:ix.peerOff[v+1]] {
				if tr.next[stUp][u] == -1 {
					tr.next[stUp][u] = enc
					queue = append(queue, u<<1|stUp)
				}
			}
		}
	}
	return tr
}

// pathFrom reconstructs the full AS path from src to the tree root by
// walking the next-hop pointers. Returns nil when no valley-free path
// exists. BFS distance strictly decreases along the chain, so the
// walk terminates at the root.
func (tr *routeTree) pathFrom(ix *routingIndex, src int32) []ASN {
	if src == tr.root {
		return []ASN{ix.asns[src]}
	}
	if tr.next[stUp][src] < 0 {
		return nil
	}
	path := make([]ASN, 0, 8)
	v, st := src, int32(stUp)
	for {
		path = append(path, ix.asns[v])
		if v == tr.root {
			return path
		}
		p := tr.next[st][v]
		v, st = p>>1, p&1
	}
}

// routeCache holds the frozen index plus the bounded set of routing
// trees, evicted FIFO. Guarded by Topology.routeMu.
type routeCache struct {
	ix    *routingIndex
	trees map[int32]*routeTree
	fifo  []int32 // insertion order, for eviction
	cap   int
}

func (t *Topology) newRouteCache() *routeCache {
	n := len(t.order)
	c := t.routeCap
	if c <= 0 {
		c = defaultRouteEntryBudget / (2 * max(n, 1))
		if c < 4 {
			c = 4
		}
		if c > 4096 {
			c = 4096
		}
	}
	return &routeCache{
		ix:    t.buildIndex(),
		trees: make(map[int32]*routeTree, c),
		cap:   c,
	}
}

// insert adds a tree, evicting oldest-first past capacity, and
// reports how many trees were evicted.
func (rc *routeCache) insert(root int32, tr *routeTree) int {
	evicted := 0
	for len(rc.fifo) >= rc.cap {
		old := rc.fifo[0]
		rc.fifo = rc.fifo[1:]
		delete(rc.trees, old)
		evicted++
	}
	rc.trees[root] = tr
	rc.fifo = append(rc.fifo, root)
	return evicted
}

// routeMetrics holds optional obs handles for the routing cache; all
// methods are nil-safe so an unattached topology pays only a nil
// check.
type routeMetrics struct {
	trees, capacity       *obs.Gauge
	hits, misses, evicted *obs.Counter
}

func (m *routeMetrics) hit() {
	if m.hits != nil {
		m.hits.Inc()
	}
}

func (m *routeMetrics) miss() {
	if m.misses != nil {
		m.misses.Inc()
	}
}

func (m *routeMetrics) evict(n int) {
	if m.evicted != nil && n > 0 {
		m.evicted.Add(uint64(n))
	}
}

func (m *routeMetrics) size(trees, capacity int) {
	if m.trees != nil {
		m.trees.Set(int64(trees))
		m.capacity.Set(int64(capacity))
	}
}

// PublishMetrics registers the routing-cache gauges and counters
// (topology.route_*) in reg: cached-tree count and capacity, plus
// hit/miss/eviction counters from which a hit rate falls out.
// core.NewSystem wires the system registry through here.
func (t *Topology) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.routeMu.Lock()
	defer t.routeMu.Unlock()
	t.rm = routeMetrics{
		trees:    reg.Gauge(MetricRouteTrees),
		capacity: reg.Gauge(MetricRouteCapacity),
		hits:     reg.Counter(MetricRouteHits),
		misses:   reg.Counter(MetricRouteMisses),
		evicted:  reg.Counter(MetricRouteEvictions),
	}
	if t.routes != nil {
		t.rm.size(len(t.routes.trees), t.routes.cap)
	}
}

// SetRouteCacheCapacity overrides the number of routing trees kept
// in memory (default: a ~33 MB entry budget divided by topology
// size). Existing cached trees are dropped.
func (t *Topology) SetRouteCacheCapacity(trees int) {
	t.routeMu.Lock()
	defer t.routeMu.Unlock()
	t.routeCap = trees
	t.routes = nil
	t.rm.size(0, trees)
}

// CachedRouteTrees reports how many routing trees are currently
// cached (tests and capacity planning).
func (t *Topology) CachedRouteTrees() int {
	t.routeMu.RLock()
	defer t.routeMu.RUnlock()
	if t.routes == nil {
		return 0
	}
	return len(t.routes.trees)
}

// invalidateRoutes drops the frozen index and every cached tree; the
// graph changed. Caller must not hold routeMu.
func (t *Topology) invalidateRoutes() {
	t.routeMu.Lock()
	if t.routes != nil {
		t.routes = nil
		t.rm.size(0, 0)
	}
	t.routeMu.Unlock()
}

// treeFor returns the routing tree rooted at dst plus the index it
// was built against, computing and caching it on miss. A nil tree
// means dst is not part of the frozen graph (it was added after the
// last link change and has no links, hence no valley-free routes).
func (t *Topology) treeFor(dst ASN) (*routeTree, *routingIndex) {
	t.routeMu.RLock()
	if rc := t.routes; rc != nil {
		if root, ok := rc.ix.pos[dst]; ok {
			if tr := rc.trees[root]; tr != nil {
				ix := rc.ix
				t.routeMu.RUnlock()
				t.rm.hit()
				return tr, ix
			}
		}
	}
	t.routeMu.RUnlock()
	t.rm.miss()

	t.routeMu.Lock()
	if t.routes == nil {
		t.routes = t.newRouteCache()
	}
	rc := t.routes
	ix := rc.ix
	root, ok := ix.pos[dst]
	if !ok {
		t.routeMu.Unlock()
		return nil, ix
	}
	if tr := rc.trees[root]; tr != nil {
		t.routeMu.Unlock()
		return tr, ix
	}
	// Build outside the lock: tree construction is O(V+E) and other
	// readers (and Warm workers) must not stall behind it.
	t.routeMu.Unlock()
	tr := buildTree(ix, root)
	t.routeMu.Lock()
	if t.routes == rc { // not invalidated while building
		if cur := rc.trees[root]; cur != nil {
			tr = cur // another goroutine won the race
		} else {
			t.rm.evict(rc.insert(root, tr))
			t.rm.size(len(rc.trees), rc.cap)
		}
	}
	t.routeMu.Unlock()
	return tr, ix
}

// WarmRoutes precomputes routing trees for the given destinations
// with a pool of `workers` goroutines (≤0 means GOMAXPROCS) — the
// bulk path for paper-scale runs, where lazy per-miss computation
// would serialize. Destinations beyond the cache capacity are
// skipped. It returns the number of trees cached afterwards.
func (t *Topology) WarmRoutes(dsts []ASN, workers int) int {
	t.routeMu.Lock()
	if t.routes == nil {
		t.routes = t.newRouteCache()
	}
	rc := t.routes
	ix := rc.ix
	roots := make([]int32, 0, len(dsts))
	queued := make(map[int32]bool, len(dsts))
	for _, d := range dsts {
		if len(roots) >= rc.cap {
			break
		}
		root, ok := ix.pos[d]
		if !ok || queued[root] {
			continue
		}
		queued[root] = true
		if _, cached := rc.trees[root]; cached {
			continue
		}
		roots = append(roots, root)
	}
	t.routeMu.Unlock()

	if len(roots) > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(roots) {
			workers = len(roots)
		}
		built := make([]*routeTree, len(roots))
		jobs := make(chan int, len(roots))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					built[j] = buildTree(ix, roots[j])
				}
			}()
		}
		for j := range roots {
			jobs <- j
		}
		close(jobs)
		wg.Wait()

		t.routeMu.Lock()
		if t.routes == rc { // graph unchanged while building
			evicted := 0
			for j, root := range roots {
				if rc.trees[root] == nil {
					evicted += rc.insert(root, built[j])
				}
			}
			t.rm.evict(evicted)
			t.rm.size(len(rc.trees), rc.cap)
		}
		t.routeMu.Unlock()
	}
	return t.CachedRouteTrees()
}

// Path returns the shortest valley-free AS path from src to dst,
// inclusive of both endpoints. ok is false when no valley-free path
// exists. The slice is freshly allocated on every call; callers own
// it. Safe for concurrent use; the underlying tree is cached until
// the graph changes (Link invalidates).
func (t *Topology) Path(src, dst ASN) (path []ASN, ok bool) {
	if t.ases[src] == nil || t.ases[dst] == nil {
		return nil, false
	}
	if src == dst {
		return []ASN{src}, true
	}
	tr, ix := t.treeFor(dst)
	if tr == nil {
		return nil, false
	}
	si, ok := ix.pos[src]
	if !ok {
		return nil, false
	}
	p := tr.pathFrom(ix, si)
	return p, p != nil
}

// NextHop returns the next AS after `at` on the shortest valley-free
// path from `at` to dst. With the tree for dst cached (warm), this is
// an O(1) array read.
func (t *Topology) NextHop(at, dst ASN) (ASN, bool) {
	if at == dst || t.ases[at] == nil || t.ases[dst] == nil {
		return 0, false
	}
	tr, ix := t.treeFor(dst)
	if tr == nil {
		return 0, false
	}
	ai, ok := ix.pos[at]
	if !ok {
		return 0, false
	}
	p := tr.next[stUp][ai]
	if p < 0 {
		return 0, false
	}
	return ix.asns[p>>1], true
}

// ValidateValleyFree checks that a path obeys the valley-free rule and
// uses only existing links; used by tests and by the DPF baseline.
func (t *Topology) ValidateValleyFree(path []ASN) error {
	if len(path) == 0 {
		return fmt.Errorf("topology: empty path")
	}
	descending := false
	peerUsed := false
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		rel, ok := t.relOf(a, b)
		if !ok {
			return fmt.Errorf("topology: no link %d-%d", a, b)
		}
		switch rel {
		case CustomerToProvider:
			if descending {
				return fmt.Errorf("topology: uphill hop %d→%d after descent", a, b)
			}
		case PeerToPeer:
			if descending || peerUsed {
				return fmt.Errorf("topology: peer hop %d→%d after descent/peer", a, b)
			}
			peerUsed = true
			descending = true
		case ProviderToCustomer:
			descending = true
		}
	}
	return nil
}

// relOf returns the relationship of the directed hop a→b.
func (t *Topology) relOf(a, b ASN) (Relationship, bool) {
	asA := t.ases[a]
	if asA == nil {
		return 0, false
	}
	for _, n := range asA.Providers {
		if n == b {
			return CustomerToProvider, true
		}
	}
	for _, n := range asA.Peers {
		if n == b {
			return PeerToPeer, true
		}
	}
	for _, n := range asA.Customers {
		if n == b {
			return ProviderToCustomer, true
		}
	}
	return 0, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
