// Package topology models the AS-level Internet: autonomous systems,
// their business relationships (customer/provider/peer), their address
// space (prefixes and prefix-to-AS mapping), and valley-free inter-AS
// routing.
//
// The DISCS evaluation (§VI of the paper) runs against the real CAIDA
// Routeviews prefix-to-AS snapshot of 2012-10-11 (44 036 ASes, ~442k
// routable IPv4 prefixes). That dataset is proprietary-by-availability
// here, so this package also provides a synthetic generator
// (GenerateInternet) producing an Internet of the same scale with a
// heavy-tailed (Zipf) address-space distribution — the only property
// the paper's incentive/effectiveness math depends on is the per-AS
// routable-address ratio r_j.
package topology

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"discs/internal/lpm"
)

// ASN is an autonomous system number.
type ASN uint32

// Relationship describes the business relationship of a link from the
// perspective of the first AS.
type Relationship int

const (
	// CustomerToProvider: the first AS buys transit from the second.
	CustomerToProvider Relationship = iota
	// ProviderToCustomer: the first AS sells transit to the second.
	ProviderToCustomer
	// PeerToPeer: settlement-free peering.
	PeerToPeer
)

func (r Relationship) String() string {
	switch r {
	case CustomerToProvider:
		return "c2p"
	case ProviderToCustomer:
		return "p2c"
	case PeerToPeer:
		return "p2p"
	}
	return fmt.Sprintf("Relationship(%d)", int(r))
}

// AS is one autonomous system.
type AS struct {
	ASN       ASN
	Prefixes  []netip.Prefix
	AddrSpace uint64 // number of routable addresses (sum over Prefixes)

	Providers []ASN
	Customers []ASN
	Peers     []ASN
}

// Degree returns the total number of neighbors.
func (a *AS) Degree() int { return len(a.Providers) + len(a.Customers) + len(a.Peers) }

// Topology is an AS-level Internet.
type Topology struct {
	ases   map[ASN]*AS
	order  []ASN // insertion order, for deterministic iteration
	pfx2as *lpm.Table[ASN]
	total  uint64 // global routable address space

	// Routing state (see routing.go): a frozen dense index plus a
	// bounded cache of per-destination shortest-path trees, dropped
	// whenever the graph changes.
	routeMu  sync.RWMutex
	routes   *routeCache
	routeCap int // 0 = derive from topology size
	rm       routeMetrics
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{ases: make(map[ASN]*AS), pfx2as: lpm.New[ASN]()}
}

// AddAS registers a new AS.
func (t *Topology) AddAS(asn ASN) (*AS, error) {
	if asn == 0 {
		return nil, errors.New("topology: ASN 0 is reserved")
	}
	if _, dup := t.ases[asn]; dup {
		return nil, fmt.Errorf("topology: duplicate AS%d", asn)
	}
	a := &AS{ASN: asn}
	t.ases[asn] = a
	t.order = append(t.order, asn)
	return a, nil
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn ASN) *AS { return t.ases[asn] }

// NumASes returns the number of ASes.
func (t *Topology) NumASes() int { return len(t.ases) }

// ASNs returns all AS numbers in insertion order. The returned slice
// must not be modified.
func (t *Topology) ASNs() []ASN { return t.order }

// Link records a relationship between two ASes. rel is from a's
// perspective: Link(a, b, CustomerToProvider) makes b a provider of a.
func (t *Topology) Link(a, b ASN, rel Relationship) error {
	asA, asB := t.ases[a], t.ases[b]
	if asA == nil || asB == nil {
		return fmt.Errorf("topology: link %d-%d references unknown AS", a, b)
	}
	if a == b {
		return fmt.Errorf("topology: self link on AS%d", a)
	}
	if t.Connected(a, b) {
		// A second link between the same pair would double-count
		// Degree() and create duplicate BGP sessions in BuildNetwork.
		return fmt.Errorf("topology: duplicate link %d-%d", a, b)
	}
	switch rel {
	case CustomerToProvider:
		asA.Providers = append(asA.Providers, b)
		asB.Customers = append(asB.Customers, a)
	case ProviderToCustomer:
		asA.Customers = append(asA.Customers, b)
		asB.Providers = append(asB.Providers, a)
	case PeerToPeer:
		asA.Peers = append(asA.Peers, b)
		asB.Peers = append(asB.Peers, a)
	default:
		return fmt.Errorf("topology: unknown relationship %d", rel)
	}
	// The graph changed: cached routing trees are stale.
	t.invalidateRoutes()
	return nil
}

// Connected reports whether a and b share a link. It scans the
// adjacency lists of the lower-degree endpoint, so probing a tier-1's
// neighborhood from a stub costs the stub's degree, not the tier-1's.
func (t *Topology) Connected(a, b ASN) bool {
	asA, asB := t.ases[a], t.ases[b]
	if asA == nil || asB == nil {
		return false
	}
	if asB.Degree() < asA.Degree() {
		asA, b = asB, a
	}
	for _, n := range asA.Providers {
		if n == b {
			return true
		}
	}
	for _, n := range asA.Customers {
		if n == b {
			return true
		}
	}
	for _, n := range asA.Peers {
		if n == b {
			return true
		}
	}
	return false
}

// NumLinks returns the number of (undirected) links. Every transit
// link appears in exactly one Providers list and every peering in two
// Peers lists, so the count is exact given Link's duplicate guard.
func (t *Topology) NumLinks() int {
	transit, peer := 0, 0
	for _, asn := range t.order {
		a := t.ases[asn]
		transit += len(a.Providers)
		peer += len(a.Peers)
	}
	return transit + peer/2
}

// AddPrefix assigns a prefix to an AS and updates the prefix-to-AS
// table and address-space accounting. Prefixes must be disjoint across
// ASes for the accounting to be exact; overlapping announcements
// replace the longest-match owner the way a routing table would.
func (t *Topology) AddPrefix(asn ASN, p netip.Prefix) error {
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("topology: unknown AS%d", asn)
	}
	p = p.Masked()
	if err := t.pfx2as.Insert(p, asn); err != nil {
		return err
	}
	a.Prefixes = append(a.Prefixes, p)
	size := prefixSize(p)
	a.AddrSpace += size
	t.total += size
	return nil
}

// prefixSize returns the number of addresses covered by p, with IPv6
// prefixes counted in /64 subnets to keep magnitudes comparable.
func prefixSize(p netip.Prefix) uint64 {
	if p.Addr().Is4() {
		return 1 << (32 - p.Bits())
	}
	bits := p.Bits()
	if bits > 64 {
		bits = 64
	}
	return 1 << (64 - bits)
}

// OwnerOf returns the AS owning the longest matching prefix for addr.
// This doubles as the RPKI ownership oracle used by DISCS controllers
// to validate invocation requests (§IV-E3).
func (t *Topology) OwnerOf(addr netip.Addr) (ASN, bool) {
	asn, _, ok := t.pfx2as.Lookup(addr)
	return asn, ok
}

// OwnerOfPrefix returns the AS owning the prefix (by longest match on
// its base address) and whether the entire prefix lies inside the
// owner's matched prefix.
func (t *Topology) OwnerOfPrefix(p netip.Prefix) (ASN, bool) {
	asn, matched, ok := t.pfx2as.Lookup(p.Addr())
	if !ok || matched.Bits() > p.Bits() {
		return 0, false
	}
	return asn, true
}

// Owns reports whether the address belongs to the AS.
func (t *Topology) Owns(asn ASN, addr netip.Addr) bool {
	got, ok := t.OwnerOf(addr)
	return ok && got == asn
}

// TotalSpace returns the global routable address space size.
func (t *Topology) TotalSpace() uint64 { return t.total }

// Ratio returns r_j, the ratio of AS j's routable address space to the
// global routable space. Per §VI-A2, an AS with zero space is treated
// as owning one address to avoid division by zero.
func (t *Topology) Ratio(asn ASN) float64 {
	a := t.ases[asn]
	if a == nil || t.total == 0 {
		return 0
	}
	space := a.AddrSpace
	if space == 0 {
		space = 1
	}
	return float64(space) / float64(t.total)
}

// Ratios returns r_j for every AS, keyed by ASN.
func (t *Topology) Ratios() map[ASN]float64 {
	out := make(map[ASN]float64, len(t.ases))
	for _, asn := range t.order {
		out[asn] = t.Ratio(asn)
	}
	return out
}

// BySizeDesc returns all ASNs sorted by address space, largest first,
// with ASN as the tie-breaker for determinism. This is the paper's
// optimal deployment order (§VI-A3).
func (t *Topology) BySizeDesc() []ASN {
	out := append([]ASN(nil), t.order...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := t.ases[out[i]].AddrSpace, t.ases[out[j]].AddrSpace
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Pfx2AS exposes the prefix-to-AS mapping table (read-only use).
func (t *Topology) Pfx2AS() *lpm.Table[ASN] { return t.pfx2as }
