package topology

import (
	"bytes"
	"math"
	"net/netip"
	"sort"
	"strings"
	"testing"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func smallGen(t *testing.T, n int, seed int64) *Topology {
	t.Helper()
	tp, err := GenerateInternet(GenConfig{
		NumASes: n, NumPrefixes: n * 3, ZipfExponent: 1.0, TierOneCount: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestGenerateBasics(t *testing.T) {
	tp := smallGen(t, 500, 1)
	if tp.NumASes() != 500 {
		t.Fatalf("NumASes = %d", tp.NumASes())
	}
	// Every AS owns at least one prefix and positive space.
	for _, asn := range tp.ASNs() {
		a := tp.AS(asn)
		if len(a.Prefixes) == 0 || a.AddrSpace == 0 {
			t.Fatalf("AS%d has no space: %+v", asn, a)
		}
	}
	if tp.TotalSpace() == 0 {
		t.Fatal("zero total space")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallGen(t, 300, 7)
	b := smallGen(t, 300, 7)
	var bufA, bufB bytes.Buffer
	if err := a.WritePrefix2AS(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrefix2AS(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed produced different topologies")
	}
	c := smallGen(t, 300, 8)
	var bufC bytes.Buffer
	c.WritePrefix2AS(&bufC)
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestGeneratePrefixesDisjoint(t *testing.T) {
	tp := smallGen(t, 400, 3)
	// Since allocation is sequential, prefixes must not overlap: check
	// that every prefix's base address maps back to its owner.
	for _, asn := range tp.ASNs() {
		for _, p := range tp.AS(asn).Prefixes {
			got, ok := tp.OwnerOf(p.Addr())
			if !ok || got != asn {
				t.Fatalf("prefix %v of AS%d maps to AS%d (%v)", p, asn, got, ok)
			}
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	tp := smallGen(t, 2000, 1)
	order := tp.BySizeDesc()
	// Cumulative share of the top 5% must be well above 5% (heavy
	// tail); with Zipf α≈1 over 2000 ASes the top 100 hold >50%.
	var top float64
	for _, asn := range order[:100] {
		top += tp.Ratio(asn)
	}
	if top < 0.4 {
		t.Fatalf("top-5%% share = %.3f, distribution not heavy-tailed", top)
	}
	// And monotone: BySizeDesc must be sorted.
	for i := 1; i < len(order); i++ {
		if tp.AS(order[i-1]).AddrSpace < tp.AS(order[i]).AddrSpace {
			t.Fatal("BySizeDesc not sorted")
		}
	}
}

func TestGenerateSizesIndependentOfASN(t *testing.T) {
	// The permutation must decouple ASN from rank: the largest AS
	// should not always be AS1.
	hits := 0
	for seed := int64(0); seed < 5; seed++ {
		tp := smallGen(t, 200, seed)
		if tp.BySizeDesc()[0] == 1 {
			hits++
		}
	}
	if hits == 5 {
		t.Fatal("largest AS is always AS1; permutation broken")
	}
}

func TestGenerateGraphConnected(t *testing.T) {
	tp := smallGen(t, 300, 2)
	// Every non-tier-1 AS has at least one provider.
	noProv := 0
	for _, asn := range tp.ASNs() {
		if asn <= 5 {
			continue
		}
		if len(tp.AS(asn).Providers) == 0 {
			noProv++
		}
	}
	if noProv > 0 {
		t.Fatalf("%d ASes without providers", noProv)
	}
	// Valley-free paths exist between random stub pairs.
	miss := 0
	for i := ASN(100); i < 120; i++ {
		if _, ok := tp.Path(i, i+100); !ok {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("%d stub pairs unreachable", miss)
	}
}

func TestGenerateSkipLinks(t *testing.T) {
	tp, err := GenerateInternet(GenConfig{NumASes: 100, NumPrefixes: 200, Seed: 1, SkipLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range tp.ASNs() {
		if tp.AS(asn).Degree() != 0 {
			t.Fatal("SkipLinks should produce no links")
		}
	}
}

func TestGeneratePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	cfg := DefaultGenConfig()
	cfg.SkipLinks = true
	tp, err := GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumASes() != 44036 {
		t.Fatalf("NumASes = %d", tp.NumASes())
	}
	if tp.Pfx2AS().Len() < 100_000 {
		t.Fatalf("only %d prefixes", tp.Pfx2AS().Len())
	}
	// The head must be heavy: cumulative share of the 629 largest ASes
	// should be large (the paper's 90%-effectiveness point).
	order := tp.BySizeDesc()
	var cum float64
	for _, asn := range order[:629] {
		cum += tp.Ratio(asn)
	}
	if cum < 0.5 {
		t.Fatalf("top-629 share = %.3f; tail not heavy enough for Fig 7 shape", cum)
	}
}

func TestCarve(t *testing.T) {
	cases := []struct {
		size uint64
		n    int
	}{
		{1, 1}, {255, 1}, {256, 1}, {257, 2}, {65536, 4},
		{16777216, 1}, {50_000_000, 8}, {1, 8},
	}
	for _, c := range cases {
		chunks := carve(c.size, c.n)
		if len(chunks) == 0 || len(chunks) > c.n {
			t.Fatalf("carve(%d,%d) = %v", c.size, c.n, chunks)
		}
		var covered uint64
		for _, bits := range chunks {
			if bits > 32 || bits < 8 {
				t.Fatalf("carve(%d,%d) produced /%d", c.size, c.n, bits)
			}
			covered += 1 << (32 - bits)
		}
		// Must cover the requested size when expressible.
		max := uint64(c.n) << 24
		want := c.size
		if want > max {
			want = max
		}
		if covered < want {
			t.Fatalf("carve(%d,%d) covers %d < %d", c.size, c.n, covered, want)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	if _, err := GenerateInternet(GenConfig{NumASes: 0}); err == nil {
		t.Fatal("NumASes 0 should fail")
	}
	// Degenerate values are clamped, not fatal.
	tp, err := GenerateInternet(GenConfig{NumASes: 3, TierOneCount: 99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumASes() != 3 {
		t.Fatal("clamping broken")
	}
}

func TestLoadPrefix2AS(t *testing.T) {
	in := `# comment
1.0.0.0	24	13335
1.1.0.0	16	4134
2.0.0.0	8	3356
9.9.9.0	24	19281_19282
10.0.0.0	8	1,2
`
	tp, err := LoadPrefix2AS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if asn, _ := tp.OwnerOf(addr(t, "1.0.0.5")); asn != 13335 {
		t.Fatalf("owner = %d", asn)
	}
	if asn, _ := tp.OwnerOf(addr(t, "2.200.0.5")); asn != 3356 {
		t.Fatalf("owner = %d", asn)
	}
	// AS-set: space split evenly.
	a1, a2 := tp.AS(19281), tp.AS(19282)
	if a1 == nil || a2 == nil || a1.AddrSpace != 128 || a2.AddrSpace != 128 {
		t.Fatalf("AS-set split wrong: %+v %+v", a1, a2)
	}
	// Multi-origin via comma.
	if tp.AS(1).AddrSpace != 1<<23 || tp.AS(2).AddrSpace != 1<<23 {
		t.Fatal("comma multi-origin split wrong")
	}
	// Total counts each prefix once.
	want := uint64(1<<8 + 1<<16 + 1<<24 + 1<<8 + 1<<24)
	if tp.TotalSpace() != want {
		t.Fatalf("TotalSpace = %d, want %d", tp.TotalSpace(), want)
	}
}

func TestLoadPrefix2ASErrors(t *testing.T) {
	bad := []string{
		"1.0.0.0\t24",    // 2 fields
		"zz\t24\t1",      // bad addr
		"1.0.0.0\t99\t1", // bad bits
		"1.0.0.0\t24\tx", // bad ASN
		"1.0.0.0\t24\t0", // ASN 0
	}
	for _, line := range bad {
		if _, err := LoadPrefix2AS(strings.NewReader(line)); err == nil {
			t.Errorf("line %q should fail", line)
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	tp := smallGen(t, 100, 4)
	var buf bytes.Buffer
	if err := tp.WritePrefix2AS(&buf); err != nil {
		t.Fatal(err)
	}
	tp2, err := LoadPrefix2AS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.Pfx2AS().Len() != tp.Pfx2AS().Len() {
		t.Fatalf("prefix count %d != %d", tp2.Pfx2AS().Len(), tp.Pfx2AS().Len())
	}
	// Ratios must agree.
	for _, asn := range tp.ASNs() {
		r1, r2 := tp.Ratio(asn), tp2.Ratio(asn)
		if math.Abs(r1-r2) > 1e-9 {
			t.Fatalf("AS%d ratio %v != %v", asn, r1, r2)
		}
	}
}

func TestRatiosSumToOne(t *testing.T) {
	tp := smallGen(t, 500, 9)
	var sum float64
	for _, r := range tp.Ratios() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ratios sum to %v", sum)
	}
	// Sorted ratios should be heavy-tailed (max >> median).
	var rs []float64
	for _, r := range tp.Ratios() {
		rs = append(rs, r)
	}
	sort.Float64s(rs)
	if rs[len(rs)-1] < 10*rs[len(rs)/2] {
		t.Fatalf("max ratio %v not >> median %v", rs[len(rs)-1], rs[len(rs)/2])
	}
}
