// Package snapcodec is the little-endian binary codec shared by every
// layer's Checkpoint/Restore seam (netsim, parsim, topology, bgp, core,
// wire) and by the internal/snapshot container that frames their
// payloads into a versioned, checksummed image.
//
// Design rules, chosen for a crash-consistency format:
//
//   - Sticky errors. Both Writer and Reader latch the first error and
//     turn every later call into a no-op, so seam code reads as a
//     straight-line field list with a single Err() check at the end.
//   - Bounded reads. A Reader decodes from an in-memory section whose
//     checksum has already been verified; every length prefix is
//     checked against the bytes actually remaining before any
//     allocation, so a forged multi-gigabyte length fails with
//     ErrShortBuffer instead of an OOM.
//   - No reflection, no interfaces, stdlib only. The format is a flat
//     field list; versioning happens one level up, in the snapshot
//     container.
package snapcodec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/netip"
	"time"
)

// ErrShortBuffer is returned (via Reader.Err) when a decode runs past
// the end of the section, including a length prefix larger than the
// bytes remaining.
var ErrShortBuffer = errors.New("snapcodec: truncated section")

// ErrRange is returned when a decoded value is structurally impossible
// (e.g. a varint that does not terminate, or an invalid prefix).
var ErrRange = errors.New("snapcodec: value out of range")

// Writer encodes fields to an io.Writer with a sticky error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter wraps w. Call Flush before using the underlying writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush drains buffered bytes to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Uvarint writes v with variable-length encoding.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Varint writes v with zig-zag variable-length encoding.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U16 writes a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Duration writes a time.Duration (netsim.Time).
func (w *Writer) Duration(d time.Duration) { w.Varint(int64(d)) }

// Time writes an absolute wall-clock instant as UnixNano.
func (w *Writer) Time(t time.Time) { w.Varint(t.UnixNano()) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// Prefix writes a netip.Prefix as addr-length, addr bytes, mask bits.
func (w *Writer) Prefix(p netip.Prefix) {
	a := p.Addr().As16()
	if p.Addr().Is4() {
		b := p.Addr().As4()
		w.U8(4)
		w.write(b[:])
	} else {
		w.U8(16)
		w.write(a[:])
	}
	w.U8(uint8(p.Bits()))
}

// Reader decodes fields from an in-memory section with a sticky error.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a fully-buffered section payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error encountered.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Done returns r.Err(), or ErrRange if undecoded bytes remain — a
// section must be consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return ErrRange
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.err = ErrShortBuffer
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// Uvarint decodes a variable-length uint64.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.err = ErrShortBuffer
		} else {
			r.err = ErrRange
		}
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zig-zag variable-length int64.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.err = ErrShortBuffer
		} else {
			r.err = ErrRange
		}
		return 0
	}
	r.off += n
	return v
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a fixed-width little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 decodes a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 decodes a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bool decodes a boolean; any byte other than 0 or 1 is ErrRange.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = ErrRange
		}
		return false
	}
}

// F64 decodes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Duration decodes a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Varint()) }

// Time decodes an absolute wall-clock instant written by Writer.Time.
func (r *Reader) Time() time.Time {
	ns := r.Varint()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Len decodes a length prefix and validates it against the bytes
// remaining, so callers can pre-size slices without trusting input.
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.Remaining()) {
		r.err = ErrShortBuffer
		return 0
	}
	return int(v)
}

// Count decodes a count prefix for fixed-size records of at least
// perItem bytes each, bounding it by the bytes remaining.
func (r *Reader) Count(perItem int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if perItem < 1 {
		perItem = 1
	}
	if v > uint64(r.Remaining()/perItem) {
		r.err = ErrShortBuffer
		return 0
	}
	return int(v)
}

// Bytes decodes a length-prefixed byte slice (copied out).
func (r *Reader) Bytes() []byte {
	n := r.Len()
	b := r.take(n)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Prefix decodes a netip.Prefix written by Writer.Prefix.
func (r *Reader) Prefix() netip.Prefix {
	alen := r.U8()
	var addr netip.Addr
	switch alen {
	case 4:
		b := r.take(4)
		if b == nil {
			return netip.Prefix{}
		}
		addr = netip.AddrFrom4([4]byte(b))
	case 16:
		b := r.take(16)
		if b == nil {
			return netip.Prefix{}
		}
		addr = netip.AddrFrom16([16]byte(b))
	default:
		if r.err == nil {
			r.err = ErrRange
		}
		return netip.Prefix{}
	}
	bits := int(r.U8())
	if r.err != nil {
		return netip.Prefix{}
	}
	p := netip.PrefixFrom(addr, bits)
	if !p.IsValid() {
		r.err = ErrRange
		return netip.Prefix{}
	}
	return p
}
