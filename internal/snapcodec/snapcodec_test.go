package snapcodec

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(0)
	w.Uvarint(1 << 60)
	w.Varint(-42)
	w.U8(7)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1 << 63)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.25)
	w.Duration(-5 * time.Second)
	w.Time(time.Unix(123, 456).UTC())
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.String("world")
	w.Prefix(netip.MustParsePrefix("10.1.0.0/16"))
	w.Prefix(netip.MustParsePrefix("2001:db8::/32"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(buf.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<60 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -42 {
		t.Fatalf("varint = %d", got)
	}
	if got := r.U8(); got != 7 {
		t.Fatalf("u8 = %d", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Fatalf("u16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("u32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63 {
		t.Fatalf("u64 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools")
	}
	if got := r.F64(); got != 3.25 {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.Duration(); got != -5*time.Second {
		t.Fatalf("duration = %v", got)
	}
	if got := r.Time(); !got.Equal(time.Unix(123, 456)) {
		t.Fatalf("time = %v", got)
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil bytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Prefix(); got != netip.MustParsePrefix("10.1.0.0/16") {
		t.Fatalf("prefix = %v", got)
	}
	if got := r.Prefix(); got != netip.MustParsePrefix("2001:db8::/32") {
		t.Fatalf("prefix = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedLength is the OOM guard: a length prefix claiming more
// bytes than the section holds must fail before any allocation.
func TestOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 40) // forged length, only a few bytes follow
	w.U8(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(buf.Bytes())
	if got := r.Bytes(); got != nil {
		t.Fatalf("bytes = %v, want nil", got)
	}
	if r.Err() != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Sticky: everything after the failure is a zero-valued no-op.
	if got := r.U64(); got != 0 {
		t.Fatalf("post-error u64 = %d", got)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(12345)
	w.String("payload")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.U64()
		_ = r.String()
		if err := r.Done(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestLeftoverBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.U8()
	if err := r.Done(); err != ErrRange {
		t.Fatalf("err = %v, want ErrRange", err)
	}
}

func TestBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() != ErrRange {
		t.Fatalf("err = %v, want ErrRange", r.Err())
	}
}

func TestCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 50)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(buf.Bytes())
	if n := r.Count(8); n != 0 || r.Err() != ErrShortBuffer {
		t.Fatalf("count = %d err = %v", n, r.Err())
	}
}
