package baseline

import (
	"net/netip"
	"testing"

	"discs/internal/topology"
)

// asymTopo builds a dual-homed pair whose forward and reverse paths
// differ — the route asymmetry that, per §II, "impedes [uRPF's]
// universal deployment":
//
//	 P1 (1)    P2 (2)
//	 /   \     /  \
//	A(3)  ────┤    B(4)
//	 \________/
//
// A prefers P1 (providers listed [P1, P2]); B prefers P2 ([P2, P1]).
// Traffic A→B flows A-P1-B; traffic B→A flows B-P2-A.
func asymTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp := topology.New()
	for i := topology.ASN(1); i <= 4; i++ {
		if _, err := tp.AddAS(i); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b topology.ASN) {
		if err := tp.Link(a, b, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	// Order matters: the Path BFS visits providers in list order, so
	// the first provider wins equal-length ties.
	link(3, 1) // A prefers P1
	link(3, 2)
	link(4, 2) // B prefers P2
	link(4, 1)
	if err := tp.Link(1, 2, topology.PeerToPeer); err != nil {
		t.Fatal(err)
	}
	for i := topology.ASN(1); i <= 4; i++ {
		p := netip.MustParsePrefix("10." + string('0'+byte(i)) + ".0.0/16")
		if err := tp.AddPrefix(i, p); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

func TestAsymmetricRoutesExist(t *testing.T) {
	tp := asymTopo(t)
	fwd, ok1 := tp.Path(3, 4)
	rev, ok2 := tp.Path(4, 3)
	if !ok1 || !ok2 {
		t.Fatal("paths missing")
	}
	if len(fwd) != 3 || len(rev) != 3 {
		t.Fatalf("paths %v / %v", fwd, rev)
	}
	if fwd[1] == rev[1] {
		t.Fatalf("topology not asymmetric: both via AS%d", fwd[1])
	}
}

// TestURPFFalsePositiveUnderAsymmetry reproduces the §II claim: strict
// uRPF at the destination drops *genuine* traffic when the reverse
// path differs from the arrival path. DISCS on the same deployment has
// no false positives.
func TestURPFFalsePositiveUnderAsymmetry(t *testing.T) {
	tp := asymTopo(t)
	d := dep(4) // the destination deploys
	// Genuine flow A→B: arrives at B from P1, but B routes toward A
	// via P2 → strict uRPF drops it.
	if !(URPF{}).FalsePositive(tp, d, 3, 4) {
		t.Fatal("uRPF should false-positive under route asymmetry")
	}
	// Reverse direction is equally broken for A.
	if !(URPF{}).FalsePositive(tp, dep(3), 4, 3) {
		t.Fatal("uRPF should false-positive in the reverse direction too")
	}
	// DISCS: end/e2e based, IFP-free regardless of paths.
	if (DISCS{}).FalsePositive(tp, dep(3, 4), 3, 4) {
		t.Fatal("DISCS must not false-positive")
	}
	// Symmetric deployments elsewhere don't trip it: provider P1 sees
	// A's traffic arrive straight from A.
	if (URPF{}).FalsePositive(tp, dep(1), 3, 4) {
		t.Fatal("uRPF at the first hop should accept the customer's own traffic")
	}
}

// TestURPFFalsePositiveRate quantifies the §II trade-off on a random
// Internet: count genuine src/dst pairs dropped by destination-side
// strict uRPF. With realistic multi-homing the rate is materially
// non-zero, while DISCS stays at exactly zero.
func TestURPFFalsePositiveRate(t *testing.T) {
	tp, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 400, NumPrefixes: 800, ZipfExponent: 1.0, TierOneCount: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := make(Deployment)
	for _, asn := range tp.ASNs() {
		d[asn] = true // universal uRPF: worst case for asymmetry
	}
	fp, total, discsFP := 0, 0, 0
	asns := tp.ASNs()
	for i := 0; i < 200; i++ {
		src := asns[(i*7)%len(asns)]
		dst := asns[(i*13+5)%len(asns)]
		if src == dst {
			continue
		}
		total++
		if (URPF{}).FalsePositive(tp, d, src, dst) {
			fp++
		}
		if (DISCS{}).FalsePositive(tp, d, src, dst) {
			discsFP++
		}
	}
	if discsFP != 0 {
		t.Fatalf("DISCS produced %d false positives", discsFP)
	}
	if fp == 0 {
		t.Fatal("uRPF produced no false positives; topology lacks multi-homing asymmetry")
	}
	t.Logf("uRPF false positives: %d/%d genuine pairs (%.1f%%); DISCS: 0", fp, total, 100*float64(fp)/float64(total))
}
