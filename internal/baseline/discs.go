package baseline

import (
	"discs/internal/attack"
	"discs/internal/topology"
)

// DISCS is the analytic flow-filter model of DISCS itself with all
// four functions invoked (the regime of the §VI-B effectiveness
// simulation), expressed in the same framework as the baselines so the
// benches can compare them directly.
//
// A flow (a, i, v) is filtered iff the victim is a DAS and either
//   - the agent's AS is a DAS: DP (d-DDoS) or SP (s-DDoS) drops the
//     packets at the agent's egress, or
//   - the innocent's AS is a DAS: CDP verification at the victim
//     (d-DDoS, spoofed peer source lacks a valid mark) or CSP
//     verification at the reflector's AS (s-DDoS) drops them.
//
// This is exactly the integral filter behind the closed forms of
// §VI-A1 (see internal/eval).
type DISCS struct{}

// Name returns "DISCS".
func (DISCS) Name() string { return "DISCS" }

// Filters implements the integral filter described above.
func (DISCS) Filters(_ *topology.Topology, d Deployment, f attack.Flow) bool {
	if !d[f.Victim] {
		return false // on-demand: only DASes invoke protection
	}
	if d[f.Agent] && agentSpoofs(f) {
		return true // DP / SP at the agent's egress
	}
	if d[f.Innocent] && f.Agent != f.Innocent {
		return true // CDP / CSP verification
	}
	return false
}

// agentSpoofs reports whether the flow's packets carry a non-local
// source at the agent (always true for sampled flows, but kept
// explicit for directly constructed flows).
func agentSpoofs(f attack.Flow) bool {
	if f.Kind == attack.DDDoS {
		return f.Innocent != f.Agent
	}
	return f.Victim != f.Agent
}

// FalsePositive is always false: DISCS is IFP-free (§VI-D) — every
// function is end or e2e based.
func (DISCS) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}
