package baseline

import (
	"net/netip"
	"testing"

	"discs/internal/attack"
	"discs/internal/topology"
)

// chainTopo builds a line topology with a shared provider fan:
//
//	   P (1)
//	 / | \  \
//	A  B  C  V        A=2 B=3 C=4 V=5 (all customers of P)
//
// plus D=6, a customer of C (two hops from P).
func chainTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp := topology.New()
	for i := topology.ASN(1); i <= 6; i++ {
		if _, err := tp.AddAS(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4, 5} {
		if err := tp.Link(c, 1, topology.CustomerToProvider); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Link(6, 4, topology.CustomerToProvider); err != nil {
		t.Fatal(err)
	}
	for i := topology.ASN(1); i <= 6; i++ {
		p := netip.MustParsePrefix("10." + string('0'+byte(i)) + ".0.0/16")
		if err := tp.AddPrefix(i, p); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

func dep(asns ...topology.ASN) Deployment {
	d := make(Deployment)
	for _, a := range asns {
		d[a] = true
	}
	return d
}

var (
	// Agent 2 spoofs innocent 3 attacking victim 5.
	dFlow = attack.Flow{Kind: attack.DDDoS, Agent: 2, Innocent: 3, Victim: 5}
	// Agent 2 reflects off innocent 3 against victim 5.
	sFlow = attack.Flow{Kind: attack.SDDoS, Agent: 2, Innocent: 3, Victim: 5}
)

func TestIF(t *testing.T) {
	tp := chainTopo(t)
	f := IF{}
	if !f.Filters(tp, dep(2), dFlow) {
		t.Error("IF at agent must filter d-DDoS")
	}
	if !f.Filters(tp, dep(2), sFlow) {
		t.Error("IF at agent must filter s-DDoS")
	}
	if f.Filters(tp, dep(3, 5), dFlow) {
		t.Error("IF not at agent must not filter (no self-protection: weak incentive)")
	}
	if f.FalsePositive(tp, dep(2), 2, 5) {
		t.Error("IF has no false positives")
	}
}

func TestURPFFiltersSpoofing(t *testing.T) {
	tp := chainTopo(t)
	f := URPF{}
	// Path 2→5 is 2-1-5. At P(1), packet claims src AS3; P reaches AS3
	// directly (next hop 3), but the packet arrived from 2 → drop.
	if !f.Filters(tp, dep(1), dFlow) {
		t.Error("uRPF at provider must filter spoofed flow")
	}
	// Claiming the checker's own space.
	own := attack.Flow{Kind: attack.DDDoS, Agent: 2, Innocent: 1, Victim: 5}
	if !f.Filters(tp, dep(1), own) {
		t.Error("uRPF must drop packets claiming its own space from outside")
	}
	// Not deployed on path: no filtering.
	if f.Filters(tp, dep(4), dFlow) {
		t.Error("uRPF off-path must not filter")
	}
	// Spoofing a source behind the same previous hop evades uRPF:
	// agent 6 spoofs sources of 4 (its provider)... path 6→5 is
	// 6-4-1-5; at P(1) a claim of AS6's own customer-cone source
	// arriving from 4 looks valid.
	evade := attack.Flow{Kind: attack.DDDoS, Agent: 6, Innocent: 4, Victim: 5}
	if f.Filters(tp, dep(1), evade) {
		t.Error("uRPF should accept sources reachable via the arrival interface")
	}
}

func TestSPM(t *testing.T) {
	tp := chainTopo(t)
	f := SPM{}
	if !f.Filters(tp, dep(3, 5), dFlow) {
		t.Error("SPM must filter when victim and claimed source are members")
	}
	if f.Filters(tp, dep(5), dFlow) {
		t.Error("SPM needs the claimed source to be a member")
	}
	if f.Filters(tp, dep(3), dFlow) {
		t.Error("SPM needs the victim to be a member")
	}
	if f.Filters(tp, dep(3, 5), sFlow) {
		t.Error("SPM gives no s-DDoS protection (§II)")
	}
}

func TestPassport(t *testing.T) {
	tp := chainTopo(t)
	f := Passport{}
	// Victim not a member but transit P is: intermediate verification.
	if !f.Filters(tp, dep(3, 1), dFlow) {
		t.Error("Passport must filter at intermediate members")
	}
	if !f.Filters(tp, dep(3, 5), dFlow) {
		t.Error("Passport must filter at the destination member")
	}
	if f.Filters(tp, dep(1, 5), dFlow) {
		t.Error("Passport needs the claimed source to be a member")
	}
	if f.Filters(tp, dep(3, 1), sFlow) {
		t.Error("Passport gives no s-DDoS protection here (§II)")
	}
}

func TestMEF(t *testing.T) {
	tp := chainTopo(t)
	f := MEF{}
	if !f.Filters(tp, dep(2, 5), dFlow) {
		t.Error("MEF must filter when agent and victim are members")
	}
	if !f.Filters(tp, dep(2, 5), sFlow) {
		t.Error("MEF egress filtering covers s-DDoS too")
	}
	if f.Filters(tp, dep(3, 5), dFlow) {
		t.Error("MEF needs the agent AS to be a member")
	}
	if f.Filters(tp, dep(2, 3), dFlow) {
		t.Error("MEF needs the victim to be a member")
	}
}

func TestHCF(t *testing.T) {
	tp := chainTopo(t)
	f := HCF{}
	// Path 2→5 has length 3 (2,1,5); learned path 3→5 also 3 → evades.
	if f.Filters(tp, dep(5), dFlow) {
		t.Error("HCF must be evaded by equal hop counts")
	}
	// Agent 6 (path 6-4-1-5: length 4) spoofing 3 (learned length 3):
	// mismatch → filtered.
	far := attack.Flow{Kind: attack.DDDoS, Agent: 6, Innocent: 3, Victim: 5}
	if !f.Filters(tp, dep(5), far) {
		t.Error("HCF must filter mismatched hop counts")
	}
	if f.Filters(tp, dep(1), far) {
		t.Error("HCF is victim-deployed only")
	}
}

func TestDPF(t *testing.T) {
	tp := chainTopo(t)
	f := DPF{}
	// At P(1), the legitimate path 3→5 enters P from 3, but the attack
	// path enters from 2: filtered.
	if !f.Filters(tp, dep(1), dFlow) {
		t.Error("DPF at transit must filter")
	}
	// Agent 6 spoofing its provider 4: arrival neighbor at P is 4 for
	// both the attack (6-4-1-5) and legitimate (4-1-5) paths → evades.
	evade := attack.Flow{Kind: attack.DDDoS, Agent: 6, Innocent: 4, Victim: 5}
	if f.Filters(tp, dep(1), evade) {
		t.Error("DPF should be evaded when arrival neighbors coincide")
	}
}

func TestDISCSFilter(t *testing.T) {
	tp := chainTopo(t)
	f := DISCS{}
	// Victim not deployed: never filtered (on-demand, no protection for
	// legacy ASes — the incentive property).
	if f.Filters(tp, dep(2, 3), dFlow) {
		t.Error("DISCS must not protect a legacy victim")
	}
	// Victim + agent deployed: DP drops at egress.
	if !f.Filters(tp, dep(2, 5), dFlow) {
		t.Error("DISCS DP case")
	}
	// Victim + innocent deployed: CDP verification drops.
	if !f.Filters(tp, dep(3, 5), dFlow) {
		t.Error("DISCS CDP case")
	}
	// Victim alone: nothing filters this flow.
	if f.Filters(tp, dep(5), dFlow) {
		t.Error("DISCS victim alone cannot filter")
	}
	// s-DDoS symmetric cases (SP / CSP).
	if !f.Filters(tp, dep(2, 5), sFlow) || !f.Filters(tp, dep(3, 5), sFlow) {
		t.Error("DISCS SP/CSP cases")
	}
	if f.FalsePositive(tp, dep(2, 3, 5), 2, 5) {
		t.Error("DISCS is IFP-free")
	}
}

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if d.Name() == "" || seen[d.Name()] {
			t.Fatalf("bad or duplicate name %q", d.Name())
		}
		seen[d.Name()] = true
	}
	if len(seen) != 7 {
		t.Fatalf("expected 7 baselines, got %d", len(seen))
	}
}

// TestDISCSBeatsBaselinesAtVictim encodes the qualitative comparison
// of §II: with only {victim, one other AS} deployed, DISCS filters
// flows that IF (not at agent) and SPM/Passport (source not a member)
// miss.
func TestDISCSBeatsBaselinesAtVictim(t *testing.T) {
	tp := chainTopo(t)
	d := dep(2, 5) // agent + victim deployed
	if !(DISCS{}).Filters(tp, d, dFlow) {
		t.Fatal("DISCS should filter with agent+victim deployed")
	}
	if (SPM{}).Filters(tp, d, dFlow) {
		t.Fatal("SPM should miss (claimed source not a member)")
	}
	if (Passport{}).Filters(tp, d, dFlow) {
		t.Fatal("Passport should miss (claimed source not a member)")
	}
}
