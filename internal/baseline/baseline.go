// Package baseline implements the related-work spoofing defenses the
// paper compares DISCS against (§II): ingress filtering (IF), strict
// uRPF, SPM, Passport, MEF, hop-count filtering (HCF) and route-based
// distributed packet filtering (DPF).
//
// Each defense is an analytic flow filter in the framework of the
// comparative-evaluation methodology the paper cites ([23], Mirkovic &
// Kissel): given a deployment set D and a spoofing flow (a, i, v), it
// decides whether the flow is filtered. This level of abstraction is
// what the deployment-incentive and effectiveness measures are defined
// over, and lets the benches put DISCS and the baselines on one axis.
package baseline

import (
	"discs/internal/attack"
	"discs/internal/topology"
)

// Deployment is the set of ASes that deployed a defense.
type Deployment map[topology.ASN]bool

// Defense decides whether a deployment filters a spoofing flow.
type Defense interface {
	Name() string
	// Filters reports whether the flow is dropped somewhere before (or
	// at) its destination when D has deployed the defense.
	Filters(topo *topology.Topology, d Deployment, f attack.Flow) bool
	// FalsePositive reports whether a *genuine* flow from src to dst
	// would be dropped (inherent false positives, §III-A). Path-based
	// methods exhibit these under partial deployment and asymmetry.
	FalsePositive(topo *topology.Topology, d Deployment, src, dst topology.ASN) bool
}

// flowEndpoints returns the packet-level source-claim AS and the
// destination AS of a flow's packets.
func flowEndpoints(f attack.Flow) (srcClaim, dst topology.ASN) {
	if f.Kind == attack.DDDoS {
		return f.Innocent, f.Victim
	}
	return f.Victim, f.Innocent
}

// --- Ingress Filtering (RFC 2827) ---------------------------------------

// IF drops packets leaving an AS whose source address is not local
// (§II, end based). It has notoriously weak incentives: deploying it
// protects others, not yourself.
type IF struct{}

// Name returns "IF".
func (IF) Name() string { return "IF" }

// Filters reports true iff the agent AS deployed IF (the spoofed
// source is by construction not the agent's own).
func (IF) Filters(_ *topology.Topology, d Deployment, f attack.Flow) bool {
	srcClaim, _ := flowEndpoints(f)
	return d[f.Agent] && srcClaim != f.Agent
}

// FalsePositive is always false: genuine packets carry local sources.
func (IF) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// --- Strict uRPF (RFC 3704) ----------------------------------------------

// URPF accepts a packet only if it arrives over the interface the
// router would use to reach the packet's source — at AS granularity:
// the previous hop must equal the next hop toward the source.
type URPF struct{}

// Name returns "uRPF".
func (URPF) Name() string { return "uRPF" }

// Filters walks the attack path and applies the check at every
// deployed transit/destination AS.
func (URPF) Filters(topo *topology.Topology, d Deployment, f attack.Flow) bool {
	srcClaim, dst := flowEndpoints(f)
	return urpfDropsOnPath(topo, d, f.Agent, srcClaim, dst)
}

// FalsePositive: genuine traffic (src == its true origin) can still be
// dropped when the reverse path is asymmetric at a deployed AS.
func (URPF) FalsePositive(topo *topology.Topology, d Deployment, src, dst topology.ASN) bool {
	return urpfDropsOnPath(topo, d, src, src, dst)
}

func urpfDropsOnPath(topo *topology.Topology, d Deployment, from, srcClaim, dst topology.ASN) bool {
	path, ok := topo.Path(from, dst)
	if !ok {
		return false
	}
	for idx := 1; idx < len(path); idx++ {
		x := path[idx]
		if !d[x] {
			continue
		}
		prev := path[idx-1]
		if srcClaim == x {
			// Packets claiming the checking AS's own space arriving
			// from outside are trivially invalid.
			return true
		}
		rev, ok := topo.Path(x, srcClaim)
		if !ok || len(rev) < 2 {
			return true // no route back to the source: drop
		}
		if rev[1] != prev {
			return true
		}
	}
	return false
}

// --- SPM (Bremler-Barr & Levy) --------------------------------------------

// SPM members share deterministic e2e marks per (source, destination)
// member pair; the destination filters unmarked packets claiming a
// member source. Defense against d-DDoS only (§II: "weak incentives
// against s-DDoS").
type SPM struct{}

// Name returns "SPM".
func (SPM) Name() string { return "SPM" }

// Filters reports true when the destination and the claimed source are
// both members and the claim is false.
func (SPM) Filters(_ *topology.Topology, d Deployment, f attack.Flow) bool {
	if f.Kind != attack.DDDoS {
		return false
	}
	return d[f.Victim] && d[f.Innocent] && f.Agent != f.Innocent
}

// FalsePositive is false: e2e marks do not depend on paths.
func (SPM) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// --- Passport (Liu, Li, Yang, Wetherall) -----------------------------------

// Passport stamps keyed MACs for every AS on the forwarding path, so
// intermediate members can demote/drop invalidly marked packets too.
type Passport struct{}

// Name returns "Passport".
func (Passport) Name() string { return "Passport" }

// Filters reports true when the claimed source is a member and some
// member on the path to the destination (intermediate or final)
// verifies — spoofed packets lack valid MACs for that verifier.
func (Passport) Filters(topo *topology.Topology, d Deployment, f attack.Flow) bool {
	if f.Kind != attack.DDDoS {
		return false
	}
	if !d[f.Innocent] {
		return false
	}
	path, ok := topo.Path(f.Agent, f.Victim)
	if !ok {
		return false
	}
	for _, x := range path[1:] {
		if d[x] {
			return true
		}
	}
	return false
}

// FalsePositive is false for the destination check; Passport's
// intermediate checks demote rather than drop, so genuine traffic
// passes.
func (Passport) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// --- MEF (Liu, Bi, Vasilakos) ----------------------------------------------

// MEF members run on-demand *egress* filtering for each other: when a
// member is attacked, the other members drop outbound packets toward
// it whose sources are not local (d-DDoS) and outbound packets
// claiming the victim's sources (s-DDoS). Unlike DISCS it has no
// cryptographic functions, so the victim cannot classify inbound
// packets itself (§I).
type MEF struct{}

// Name returns "MEF".
func (MEF) Name() string { return "MEF" }

// Filters reports true when both the agent and victim are members.
func (MEF) Filters(_ *topology.Topology, d Deployment, f attack.Flow) bool {
	srcClaim, _ := flowEndpoints(f)
	return d[f.Agent] && d[f.Victim] && srcClaim != f.Agent
}

// FalsePositive is false: egress filtering is end based.
func (MEF) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// --- Hop-count filtering (Wang, Jin, Shin) -----------------------------------

// HCF is victim-deployed: it learns the hop count from each source and
// drops packets whose TTL-inferred hop count mismatches. At AS
// granularity we compare AS-path lengths; attackers whose path length
// coincides with the legitimate one evade it.
type HCF struct{}

// Name returns "HCF".
func (HCF) Name() string { return "HCF" }

// Filters compares the true path length (agent→victim) with the
// learned one (innocent→victim).
func (HCF) Filters(topo *topology.Topology, d Deployment, f attack.Flow) bool {
	if f.Kind != attack.DDDoS || !d[f.Victim] {
		return false
	}
	actual, ok1 := topo.Path(f.Agent, f.Victim)
	learned, ok2 := topo.Path(f.Innocent, f.Victim)
	if !ok1 || !ok2 {
		return false
	}
	return len(actual) != len(learned)
}

// FalsePositive: false at AS abstraction (stable paths); route changes
// would create IFP, which the paper charges against path-based methods.
func (HCF) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// --- DPF (Park & Lee) --------------------------------------------------------

// DPF deploys route-based filters at transit ASes: a packet claiming
// source i is dropped if it arrives from a neighbor that is not on a
// valid forwarding path from i.
type DPF struct{}

// Name returns "DPF".
func (DPF) Name() string { return "DPF" }

// Filters walks the attack path; a deployed AS whose incoming neighbor
// differs from the incoming neighbor of the legitimate path from the
// claimed source drops the packet.
func (DPF) Filters(topo *topology.Topology, d Deployment, f attack.Flow) bool {
	srcClaim, dst := flowEndpoints(f)
	path, ok := topo.Path(f.Agent, dst)
	if !ok {
		return false
	}
	for idx := 1; idx < len(path); idx++ {
		x := path[idx]
		if !d[x] {
			continue
		}
		if srcClaim == x {
			return true
		}
		legit, ok := topo.Path(srcClaim, dst)
		if !ok {
			return true
		}
		// Find x on the legitimate path and compare predecessors.
		onLegit := false
		for j := 1; j < len(legit); j++ {
			if legit[j] == x {
				onLegit = true
				if legit[j-1] != path[idx-1] {
					return true
				}
				break
			}
		}
		if !onLegit {
			return true
		}
	}
	return false
}

// FalsePositive is false with exact paths; real DPF uses feasible-path
// supersets to avoid FP under multipath, which our single-path
// topology does not model.
func (DPF) FalsePositive(*topology.Topology, Deployment, topology.ASN, topology.ASN) bool {
	return false
}

// All returns every baseline defense.
func All() []Defense {
	return []Defense{IF{}, URPF{}, SPM{}, Passport{}, MEF{}, HCF{}, DPF{}}
}
