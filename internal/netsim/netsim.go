// Package netsim implements a deterministic discrete-event network
// simulator. It is the substrate on which every protocol in this
// repository (BGP, the DISCS control plane, the secure controller
// channel and the packet-level data plane) runs.
//
// The simulator models a set of Nodes connected by point-to-point Links.
// A Link has a propagation delay and an optional bandwidth limit;
// messages sent over a link are delivered to the remote node's handler
// at the simulated time they would arrive. All state transitions happen
// inside event callbacks, executed in strict timestamp order, so a run
// is fully reproducible given the same inputs.
//
// The zero value of Simulator is not usable; create one with New.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"discs/internal/obs"
)

// Time is a simulated timestamp measured as a duration since the start
// of the simulation.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker for deterministic ordering
	fn   func()
	dead bool
	// background marks housekeeping events (heartbeats, periodic
	// purges) that keep a live system ticking but must not keep RunAll
	// from reaching quiescence. Events scheduled while a background
	// event executes inherit the flag, so a whole heartbeat-induced
	// cascade (send, delivery, ack) counts as background.
	background bool
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Metric names the simulator registers (see Stats). Exported so
// consumers of the snapshot do not hard-code strings.
const (
	MetricDelivered    = "netsim.delivered"
	MetricDropped      = "netsim.dropped"
	MetricEvents       = "netsim.events"
	MetricQueueDepth   = "netsim.queue_depth"
	MetricLost         = "netsim.faults.lost"
	MetricDuplicated   = "netsim.faults.duplicated"
	MetricCorrupted    = "netsim.faults.corrupted"
	MetricCrashDropped = "netsim.faults.crash_dropped"
)

// simMetrics holds the simulator's pre-resolved metric handles; all
// increments on the event path go through these, never through raw
// fields, so any registry sharing the simulator sees them.
type simMetrics struct {
	delivered, dropped, events             *obs.Counter
	lost, duplicated, corrupted, crashDrop *obs.Counter
	queueDepth                             *obs.Gauge
}

func newSimMetrics(reg *obs.Registry) simMetrics {
	return simMetrics{
		delivered:  reg.Counter(MetricDelivered),
		dropped:    reg.Counter(MetricDropped),
		events:     reg.Counter(MetricEvents),
		lost:       reg.Counter(MetricLost),
		duplicated: reg.Counter(MetricDuplicated),
		corrupted:  reg.Counter(MetricCorrupted),
		crashDrop:  reg.Counter(MetricCrashDropped),
		queueDepth: reg.Gauge(MetricQueueDepth),
	}
}

// Simulator owns the simulated clock and the event queue.
type Simulator struct {
	now   Time
	seq   uint64
	queue eventQueue
	nodes map[string]*Node
	links []*Link
	// fgPending counts queued foreground events; RunAll stops when it
	// reaches zero even if background events remain queued.
	fgPending int
	// inBG is true while a background event executes (see event).
	inBG bool
	// Fault injection (fault.go).
	frng      *rand.Rand
	defFaults *LinkFaults
	// Observability: all counters live in reg; m caches the handles.
	reg *obs.Registry
	m   simMetrics
}

// New creates an empty simulator at time zero with a private metrics
// registry; use NewWithRegistry (or MoveToRegistry) to share one.
func New() *Simulator { return NewWithRegistry(nil) }

// NewWithRegistry creates an empty simulator publishing its metrics
// into reg (nil creates a private registry). The registry clock is
// pointed at the simulated clock, so snapshots and trace events are
// stamped in simulated time.
func NewWithRegistry(reg *obs.Registry) *Simulator {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Simulator{nodes: make(map[string]*Node), reg: reg, m: newSimMetrics(reg)}
	reg.SetClock(func() int64 { return int64(s.now) })
	return s
}

// Registry returns the registry the simulator publishes into.
func (s *Simulator) Registry() *obs.Registry { return s.reg }

// MoveToRegistry re-homes the simulator's metrics into reg, carrying
// the counts accumulated so far. Layers that build a simulator first
// and an observability plan later (core.NewSystem adopting a BGP
// network's simulator) use this to unify on one registry.
func (s *Simulator) MoveToRegistry(reg *obs.Registry) {
	if reg == nil || reg == s.reg {
		return
	}
	old := s.m
	s.reg = reg
	s.m = newSimMetrics(reg)
	s.m.delivered.Add(old.delivered.Value())
	s.m.dropped.Add(old.dropped.Value())
	s.m.events.Add(old.events.Value())
	s.m.lost.Add(old.lost.Value())
	s.m.duplicated.Add(old.duplicated.Value())
	s.m.corrupted.Add(old.corrupted.Value())
	s.m.crashDrop.Add(old.crashDrop.Value())
	s.m.queueDepth.Set(old.queueDepth.Value())
	reg.SetClock(func() int64 { return int64(s.now) })
}

// Stats returns the simulator's unified metrics snapshot: message
// delivery, drop and injected-fault counters plus the live queue
// depth, stamped with the simulated time. It replaces the old
// Delivered/Dropped/FaultStats getters.
func (s *Simulator) Stats() obs.Snapshot {
	return s.reg.SnapshotPrefix("netsim.", "")
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Schedule runs fn at the given absolute simulated time. Scheduling in
// the past is an error. Events scheduled while a background event
// executes are background themselves (see ScheduleBackground).
func (s *Simulator) Schedule(at Time, fn func()) (*Timer, error) {
	return s.schedule(at, fn, s.inBG)
}

// ScheduleBackground schedules a housekeeping event: it runs in
// timestamp order like any other event, but pending background events
// do not keep RunAll alive. Use it for periodic liveness tasks
// (heartbeats, purge sweeps) that would otherwise make a
// run-to-quiescence loop spin forever.
func (s *Simulator) ScheduleBackground(at Time, fn func()) (*Timer, error) {
	return s.schedule(at, fn, true)
}

func (s *Simulator) schedule(at Time, fn func(), background bool) (*Timer, error) {
	if at < s.now {
		return nil, fmt.Errorf("netsim: schedule at %v before now %v", at, s.now)
	}
	e := &event{at: at, seq: s.seq, fn: fn, background: background}
	s.seq++
	heap.Push(&s.queue, e)
	if !background {
		s.fgPending++
	}
	s.m.queueDepth.Set(int64(s.queue.Len()))
	return &Timer{ev: e, sim: s}, nil
}

// After runs fn after delay d. It panics if d is negative, which always
// indicates a programming error in a protocol implementation.
func (s *Simulator) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	t, _ := s.Schedule(s.now+d, fn)
	return t
}

// AfterBackground is After for background events (see
// ScheduleBackground).
func (s *Simulator) AfterBackground(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	t, _ := s.ScheduleBackground(s.now+d, fn)
	return t
}

// EveryBackground arms a repeating background event: fn runs every d of
// simulated time starting at now+d, until the returned Ticker is
// stopped. Like all background events it never keeps RunAll alive, so
// it is the natural driver for interval metric sampling (an
// obs.Recorder fed from it produces a simulated-time series).
func (s *Simulator) EveryBackground(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic(fmt.Sprintf("netsim: non-positive tick interval %v", d))
	}
	t := &Ticker{}
	var arm func()
	arm = func() {
		t.timer = s.AfterBackground(d, func() {
			if t.stopped {
				return
			}
			fn()
			arm()
		})
	}
	arm()
	return t
}

// Ticker is a handle to a repeating background event armed with
// EveryBackground.
type Ticker struct {
	timer   *Timer
	stopped bool
}

// Stop cancels the ticker; no further ticks fire.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev  *event
	sim *Simulator
}

// Stop cancels the timer. It is safe to call Stop on an already-fired
// or already-stopped timer. It reports whether the call prevented the
// event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.fn == nil {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	if !t.ev.background {
		t.sim.fgPending--
	}
	return true
}

// Step executes the single earliest pending event. It reports false
// when the queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			continue
		}
		if !e.background {
			s.fgPending--
		}
		s.now = e.at
		s.inBG = e.background
		e.fn()
		s.inBG = false
		s.m.events.Inc()
		s.m.queueDepth.Set(int64(s.queue.Len()))
		return true
	}
	return false
}

// Run executes events (foreground and background) until the queue
// drains or the simulated clock would pass deadline. It returns the
// number of events executed.
func (s *Simulator) Run(deadline Time) int {
	n := 0
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		if s.Step() {
			n++
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// RunAll executes pending events in timestamp order until no
// foreground events remain, with a safety cap to convert accidental
// event storms into a detectable error. Background events run when
// they precede a pending foreground event but never keep RunAll alive
// on their own; they stay queued for a later Run. This is what lets a
// system with periodic heartbeats still "settle".
func (s *Simulator) RunAll() (int, error) {
	const cap = 50_000_000
	n := 0
	for s.fgPending > 0 {
		if !s.Step() {
			break
		}
		n++
		if n >= cap {
			return n, errors.New("netsim: event cap exceeded (livelock?)")
		}
	}
	return n, nil
}

// Handler processes a message arriving at a node over a link.
type Handler interface {
	Receive(from *Node, link *Link, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from *Node, link *Link, msg Message)

// Receive calls f.
func (f HandlerFunc) Receive(from *Node, link *Link, msg Message) { f(from, link, msg) }

// Message is an opaque payload carried over a link. Size is used for
// serialization-time accounting when the link has finite bandwidth.
type Message interface {
	// Size returns the wire size of the message in bytes.
	Size() int
}

// Bytes is a trivial Message wrapping a byte slice.
type Bytes []byte

// Size returns the byte length.
func (b Bytes) Size() int { return len(b) }

// Node is an endpoint in the simulated network.
type Node struct {
	Name    string
	sim     *Simulator
	links   []*Link
	// nbr indexes the first link per neighbor so SendTo is O(1) on the
	// common single-link case instead of scanning links (which is
	// O(degree) — ruinous for tier-1 nodes with thousands of links).
	nbr     map[*Node]*Link
	handler Handler
	crashed bool
	// epoch increments on every crash; node-scoped timers capture it so
	// a crash invalidates everything armed before it.
	epoch uint64
	// Meta lets protocol layers attach state without wrapper structs.
	Meta map[string]any
}

// AddNode registers a node with a unique name.
func (s *Simulator) AddNode(name string) (*Node, error) {
	if name == "" {
		return nil, errors.New("netsim: empty node name")
	}
	if _, dup := s.nodes[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate node %q", name)
	}
	n := &Node{Name: name, sim: s, Meta: make(map[string]any)}
	s.nodes[name] = n
	return n, nil
}

// Node returns the node with the given name, or nil.
func (s *Simulator) Node(name string) *Node { return s.nodes[name] }

// NumNodes returns the number of registered nodes.
func (s *Simulator) NumNodes() int { return len(s.nodes) }

// SetHandler installs the receive callback for the node.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Crash takes the node down, modelling a process or host crash: frames
// in flight toward it are discarded on arrival, new sends from it are
// rejected, and every node-scoped timer (After/AfterBackground on the
// node) armed before the crash is dead — exactly the state a real
// crash destroys. Link and handler wiring survives for Restart.
func (n *Node) Crash() {
	n.epoch++
	n.crashed = true
}

// Restart brings a crashed node back up with a clean timer slate: the
// epoch stays bumped, so timers armed before the crash never fire.
// The protocol layer re-arms whatever its recovery logic needs.
func (n *Node) Restart() { n.crashed = false }

// Crashed reports whether the node is down.
func (n *Node) Crashed() bool { return n.crashed }

// After arms a node-scoped timer: fn runs after d unless the node
// crashes first.
func (n *Node) After(d Time, fn func()) *Timer {
	epoch := n.epoch
	return n.sim.After(d, func() {
		if n.epoch == epoch && !n.crashed {
			fn()
		}
	})
}

// AfterBackground is the background-event variant of Node.After (see
// Simulator.ScheduleBackground).
func (n *Node) AfterBackground(d Time, fn func()) *Timer {
	epoch := n.epoch
	return n.sim.AfterBackground(d, func() {
		if n.epoch == epoch && !n.crashed {
			fn()
		}
	})
}

// Links returns the links attached to this node.
func (n *Node) Links() []*Link { return n.links }

// Sim returns the owning simulator.
func (n *Node) Sim() *Simulator { return n.sim }

// Neighbor returns the node on the other side of the link.
func (l *Link) Neighbor(n *Node) *Node {
	if l.a == n {
		return l.b
	}
	if l.b == n {
		return l.a
	}
	return nil
}

// Link is a bidirectional point-to-point channel between two nodes.
type Link struct {
	a, b  *Node
	Delay Time    // propagation delay, per direction
	Bps   float64 // bandwidth in bytes/second; 0 means infinite
	// MaxBacklog bounds the per-direction transmit queue as a time
	// depth: a send whose serialization would start more than
	// MaxBacklog after now is tail-dropped. 0 means unbounded (the
	// default); finite values model congested links with finite
	// buffers.
	MaxBacklog Time
	up         bool
	// faults, when non-nil, injects probabilistic loss, duplication,
	// corruption and jitter into every send (see fault.go).
	faults *LinkFaults
	// busyUntil tracks per-direction serialization backlog (a->b, b->a).
	busyUntil [2]Time
	sim       *Simulator
}

// Connect creates a link between two nodes with the given propagation
// delay and unlimited bandwidth.
func (s *Simulator) Connect(a, b *Node, delay Time) (*Link, error) {
	if a == nil || b == nil {
		return nil, errors.New("netsim: connect with nil node")
	}
	if a == b {
		return nil, fmt.Errorf("netsim: self-link on %q", a.Name)
	}
	if delay < 0 {
		return nil, fmt.Errorf("netsim: negative delay %v", delay)
	}
	l := &Link{a: a, b: b, Delay: delay, up: true, sim: s}
	if s.defFaults != nil {
		f := *s.defFaults
		l.faults = &f
	}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	a.addNbr(b, l)
	b.addNbr(a, l)
	s.links = append(s.links, l)
	return l, nil
}

// addNbr records the first link toward a neighbor (parallel links keep
// SendTo's "first up link" semantics via the slow-path scan).
func (n *Node) addNbr(peer *Node, l *Link) {
	if n.nbr == nil {
		n.nbr = make(map[*Node]*Link, 4)
	}
	if _, dup := n.nbr[peer]; !dup {
		n.nbr[peer] = l
	}
}

// Reserve sizes the node and link tables for a known topology so a
// paper-scale build (44k nodes, ~70k links) does not rehash and
// re-grow its way up. Safe to call on a fresh or partially built
// simulator; existing nodes and links are preserved.
func (s *Simulator) Reserve(nodes, links int) {
	if nodes > len(s.nodes) {
		m := make(map[string]*Node, nodes)
		for k, v := range s.nodes {
			m[k] = v
		}
		s.nodes = m
	}
	if links > cap(s.links) {
		grown := make([]*Link, len(s.links), links)
		copy(grown, s.links)
		s.links = grown
	}
}

// SetUp marks the link up or down. Messages in flight when a link goes
// down are still delivered (they already left the interface); new sends
// are dropped.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is up.
func (l *Link) Up() bool { return l.up }

// Endpoints returns the two nodes of the link.
func (l *Link) Endpoints() (*Node, *Node) { return l.a, l.b }

// Send transmits msg from node `from` over the link. The message is
// delivered to the peer's handler after serialization and propagation
// delay. Send reports whether the message was accepted (false if the
// link is down, either endpoint condition rejects it, or from is not
// an endpoint). Injected faults (loss, corruption) still report true:
// the sender cannot tell a frame lost in flight from a delivered one.
func (l *Link) Send(from *Node, msg Message) bool {
	var dir int
	var to *Node
	switch from {
	case l.a:
		dir, to = 0, l.b
	case l.b:
		dir, to = 1, l.a
	default:
		return false
	}
	if !l.up || from.crashed {
		l.sim.m.dropped.Inc()
		return false
	}
	now := l.sim.now
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	if l.MaxBacklog > 0 && start-now > l.MaxBacklog {
		// Finite buffer: the transmit queue is too deep; tail-drop.
		l.sim.m.dropped.Inc()
		return false
	}
	var ser Time
	if l.Bps > 0 {
		sec := float64(msg.Size()) / l.Bps
		if sec > math.MaxInt64/float64(time.Second) {
			sec = math.MaxInt64 / float64(time.Second)
		}
		ser = Time(sec * float64(time.Second))
	}
	l.busyUntil[dir] = start + ser
	arrive := start + ser + l.Delay

	// Fault injection: the draw order (loss, corruption, duplication,
	// jitter) is fixed and all draws come from the one seeded fault
	// RNG in event order, so a run is reproducible given the seed.
	copies := 1
	if f := l.faults; f != nil {
		rng := l.sim.faultRNG()
		if f.Loss > 0 && rng.Float64() < f.Loss {
			l.sim.m.dropped.Inc()
			l.sim.m.lost.Inc()
			return true
		}
		if f.Corrupt > 0 && rng.Float64() < f.Corrupt {
			l.sim.m.corrupted.Inc()
			if cm, ok := msg.(Corruptible); ok {
				msg = cm.Corrupt(rng.Uint64())
			} else {
				// A message that cannot model bit errors is dropped,
				// as a corrupted frame would fail its checksum anyway.
				l.sim.m.dropped.Inc()
				return true
			}
		}
		if f.Dup > 0 && rng.Float64() < f.Dup {
			copies = 2
			l.sim.m.duplicated.Inc()
		}
		if f.JitterMax > 0 {
			arrive += Time(rng.Int63n(int64(f.JitterMax) + 1))
		}
	}
	for i := 0; i < copies; i++ {
		at := arrive
		if i > 0 {
			// The duplicate takes its own jittered path.
			if f := l.faults; f.JitterMax > 0 {
				at += Time(l.sim.faultRNG().Int63n(int64(f.JitterMax) + 1))
			}
		}
		l.sim.Schedule(at, func() {
			if to.crashed {
				l.sim.m.dropped.Inc()
				l.sim.m.crashDrop.Inc()
				return
			}
			l.sim.m.delivered.Inc()
			if to.handler != nil {
				to.handler.Receive(from, l, msg)
			}
		})
	}
	return true
}

// SendTo is a convenience that finds the first up link from n to the
// named neighbor and sends msg over it. It reports whether a link was
// found and the send accepted. The common case — one link to the
// neighbor, link up — is an O(1) map lookup; only parallel links with
// the first one down fall back to scanning.
func (n *Node) SendTo(neighbor *Node, msg Message) bool {
	l, ok := n.nbr[neighbor]
	if !ok {
		return false
	}
	if l.up {
		return l.Send(n, msg)
	}
	for _, l := range n.links {
		if l.Neighbor(n) == neighbor && l.up {
			return l.Send(n, msg)
		}
	}
	return false
}
