// Package netsim implements a deterministic discrete-event network
// simulator. It is the substrate on which every protocol in this
// repository (BGP, the DISCS control plane, the secure controller
// channel and the packet-level data plane) runs.
//
// The simulator models a set of Nodes connected by point-to-point Links.
// A Link has a propagation delay and an optional bandwidth limit;
// messages sent over a link are delivered to the remote node's handler
// at the simulated time they would arrive. All state transitions happen
// inside event callbacks, executed in strict timestamp order, so a run
// is fully reproducible given the same inputs.
//
// Execution is pluggable: by default a Simulator runs every event on
// one goroutine through a single heap, but a Backend (see
// internal/parsim) can take over event storage and execution, sharding
// nodes across worker goroutines under conservative synchronization.
// All structural state (nodes, links, metrics) stays here; the Backend
// owns only time and the event queues. The Scheduler interface is the
// surface both engines satisfy.
//
// The zero value of Simulator is not usable; create one with New.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"discs/internal/obs"
)

// Time is a simulated timestamp measured as a duration since the start
// of the simulation.
type Time = time.Duration

// Scheduler is the event-scheduling surface shared by the serial
// Simulator and parallel engines driving one (internal/parsim.Engine).
// Protocol code that only needs to arm timers and advance time can
// accept a Scheduler instead of a concrete engine.
type Scheduler interface {
	Now() Time
	Schedule(at Time, fn func()) (Timer, error)
	ScheduleBackground(at Time, fn func()) (Timer, error)
	After(d Time, fn func()) Timer
	AfterBackground(d Time, fn func()) Timer
	EveryBackground(d Time, fn func()) *Ticker
	Step() bool
	Run(deadline Time) int
	RunAll() (int, error)
}

// Backend replaces the serial event core of a Simulator: it owns the
// clock(s) and the event queues while the Simulator keeps all
// structural state (nodes, links, fault configuration, metrics).
// Methods taking a *Node receive the execution context — the node on
// whose behalf the call is made — so a sharded backend can resolve the
// owning shard; ctx is nil for calls from the driver goroutine.
type Backend interface {
	// Now returns the simulated time visible to ctx (nil = driver).
	Now(ctx *Node) Time
	// Schedule arms fn at the absolute time at. src is the node from
	// whose execution context the call is made (nil = driver), dst the
	// node the event belongs to (nil = engine-global housekeeping).
	Schedule(src, dst *Node, at Time, fn func(), background bool) (Timer, error)
	// FaultRNG returns the fault-injection RNG stream for ctx.
	FaultRNG(ctx *Node) *rand.Rand
	// InBackground reports whether ctx is currently executing a
	// background event (background status is inherited by events
	// scheduled from one).
	InBackground(ctx *Node) bool
	// SeedFaults reseeds the backend's fault RNG streams.
	SeedFaults(seed int64)
	Step() bool
	Run(deadline Time) int
	RunAll() (int, error)
	// QueueLen returns the number of pending events across all queues.
	QueueLen() int
	// Reserved is a capacity hint mirroring Simulator.Reserve.
	Reserved(nodes, links int)
	// Connected notifies the backend of a new link so it can refresh
	// its cross-shard lookahead bound.
	Connected(l *Link)
}

// Event is a scheduled callback. Events are pooled: once executed or
// cancelled they return to the owning simulator's free list, so the
// steady-state event path does not allocate. gen guards pooled reuse —
// a Timer captured against an earlier generation can no longer cancel
// the event's successor.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic ordering
	gen uint64 // reuse generation, see Timer
	idx int32  // heap position, -1 when not queued
	fn  func()
	// background marks housekeeping events (heartbeats, periodic
	// purges) that keep a live system ticking but must not keep RunAll
	// from reaching quiescence. Events scheduled while a background
	// event executes inherit the flag, so a whole heartbeat-induced
	// cascade (send, delivery, ack) counts as background.
	background bool
}

// eventQueue is a min-heap of events ordered by (at, seq). It
// maintains each event's idx so cancellation can remove eagerly.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = int32(i)
	q[j].idx = int32(j)
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = int32(len(*q))
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Metric names the simulator registers (see Stats). Exported so
// consumers of the snapshot do not hard-code strings.
const (
	MetricDelivered    = "netsim.delivered"
	MetricDropped      = "netsim.dropped"
	MetricEvents       = "netsim.events"
	MetricQueueDepth   = "netsim.queue_depth"
	MetricLost         = "netsim.faults.lost"
	MetricDuplicated   = "netsim.faults.duplicated"
	MetricCorrupted    = "netsim.faults.corrupted"
	MetricCrashDropped = "netsim.faults.crash_dropped"
)

// TraceEventKind is the obs event kind emitted per executed event when
// execution tracing is enabled (SetExecTrace). The trace is the
// determinism oracle: two runs of the same scenario must produce
// byte-identical sequences of (At, Serial) pairs.
const TraceEventKind = "sim.event"

// simMetrics holds the simulator's pre-resolved metric handles; all
// increments on the event path go through these, never through raw
// fields, so any registry sharing the simulator sees them.
type simMetrics struct {
	delivered, dropped, events             *obs.Counter
	lost, duplicated, corrupted, crashDrop *obs.Counter
	queueDepth                             *obs.Gauge
}

func newSimMetrics(reg *obs.Registry) simMetrics {
	return simMetrics{
		delivered:  reg.Counter(MetricDelivered),
		dropped:    reg.Counter(MetricDropped),
		events:     reg.Counter(MetricEvents),
		lost:       reg.Counter(MetricLost),
		duplicated: reg.Counter(MetricDuplicated),
		corrupted:  reg.Counter(MetricCorrupted),
		crashDrop:  reg.Counter(MetricCrashDropped),
		queueDepth: reg.Gauge(MetricQueueDepth),
	}
}

// Simulator owns the simulated clock and the event queue.
type Simulator struct {
	now   Time
	seq   uint64
	queue eventQueue
	free  []*event // pooled events; see event.gen
	// dead counts lazily-cancelled events still sitting in the heap.
	// Step skips them; compact rebuilds the heap once they outnumber
	// the live half.
	dead  int
	nodes map[string]*Node
	links []*Link
	// fgPending counts queued foreground events; RunAll stops when it
	// reaches zero even if background events remain queued.
	fgPending int
	// inBG is true while a background event executes (see event).
	inBG bool
	// Fault injection (fault.go). frng draws from fsrc, a counting
	// source, so a checkpoint can record the exact stream position as
	// (seed, draws) — see checkpoint.go.
	frng      *rand.Rand
	fsrc      *CountingSource
	defFaults *LinkFaults
	// Observability: all counters live in reg; m caches the handles.
	reg *obs.Registry
	m   simMetrics
	// execTrace, when non-nil, receives one obs event per executed
	// simulator event (determinism oracle; see TraceEventKind).
	execTrace *obs.Tracer
	// backend, when non-nil, owns time and event execution.
	backend Backend
}

var _ Scheduler = (*Simulator)(nil)

// New creates an empty simulator at time zero with a private metrics
// registry; use NewWithRegistry (or MoveToRegistry) to share one.
func New() *Simulator { return NewWithRegistry(nil) }

// NewWithRegistry creates an empty simulator publishing its metrics
// into reg (nil creates a private registry). The registry clock is
// pointed at the simulated clock, so snapshots and trace events are
// stamped in simulated time.
func NewWithRegistry(reg *obs.Registry) *Simulator {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Simulator{nodes: make(map[string]*Node), reg: reg, m: newSimMetrics(reg)}
	reg.SetClock(func() int64 { return int64(s.Now()) })
	return s
}

// Registry returns the registry the simulator publishes into.
func (s *Simulator) Registry() *obs.Registry { return s.reg }

// SetBackend installs (or, with nil, removes) a replacement event
// core. Install while the simulator is parked — no events pending and
// no run in progress; pending serial events do not migrate.
func (s *Simulator) SetBackend(b Backend) {
	s.backend = b
}

// Backend returns the installed backend, or nil when the serial core
// is active.
func (s *Simulator) Backend() Backend { return s.backend }

// Sharded reports whether a parallel backend drives this simulator.
// Layers that must provision deterministically for sharded execution
// (e.g. eager controller-mesh links instead of on-demand Connect from
// inside events) branch on this.
func (s *Simulator) Sharded() bool { return s.backend != nil }

// SetExecTrace enables (non-nil) or disables per-event execution
// tracing into tr. Each executed event emits an obs.Event with kind
// TraceEventKind, At = its timestamp and Serial = its sequence number.
func (s *Simulator) SetExecTrace(tr *obs.Tracer) { s.execTrace = tr }

// ExecTrace returns the tracer installed with SetExecTrace, or nil.
func (s *Simulator) ExecTrace() *obs.Tracer { return s.execTrace }

// MoveToRegistry re-homes the simulator's metrics into reg, carrying
// the counts accumulated so far. Layers that build a simulator first
// and an observability plan later (core.NewSystem adopting a BGP
// network's simulator) use this to unify on one registry.
func (s *Simulator) MoveToRegistry(reg *obs.Registry) {
	if reg == nil || reg == s.reg {
		return
	}
	old := s.m
	s.reg = reg
	s.m = newSimMetrics(reg)
	s.m.delivered.Add(old.delivered.Value())
	s.m.dropped.Add(old.dropped.Value())
	s.m.events.Add(old.events.Value())
	s.m.lost.Add(old.lost.Value())
	s.m.duplicated.Add(old.duplicated.Value())
	s.m.corrupted.Add(old.corrupted.Value())
	s.m.crashDrop.Add(old.crashDrop.Value())
	s.m.queueDepth.Set(old.queueDepth.Value())
	reg.SetClock(func() int64 { return int64(s.Now()) })
}

// Stats returns the simulator's unified metrics snapshot: message
// delivery, drop and injected-fault counters plus the live queue
// depth, stamped with the simulated time. It replaces the old
// Delivered/Dropped/FaultStats getters.
func (s *Simulator) Stats() obs.Snapshot {
	return s.reg.SnapshotPrefix("netsim.", "")
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time {
	if s.backend != nil {
		return s.backend.Now(nil)
	}
	return s.now
}

// nowCtx returns the simulated time visible to node n — under a
// sharded backend, the clock of n's shard.
func (s *Simulator) nowCtx(n *Node) Time {
	if s.backend != nil {
		return s.backend.Now(n)
	}
	return s.now
}

// inBackground reports whether n's execution context is currently
// inside a background event (see ScheduleBackground).
func (s *Simulator) inBackground(n *Node) bool {
	if s.backend != nil {
		return s.backend.InBackground(n)
	}
	return s.inBG
}

// Schedule runs fn at the given absolute simulated time. Scheduling in
// the past is an error. Events scheduled while a background event
// executes are background themselves (see ScheduleBackground).
func (s *Simulator) Schedule(at Time, fn func()) (Timer, error) {
	return s.scheduleCtx(nil, nil, at, fn, s.inBackground(nil))
}

// ScheduleBackground schedules a housekeeping event: it runs in
// timestamp order like any other event, but pending background events
// do not keep RunAll alive. Use it for periodic liveness tasks
// (heartbeats, purge sweeps) that would otherwise make a
// run-to-quiescence loop spin forever.
func (s *Simulator) ScheduleBackground(at Time, fn func()) (Timer, error) {
	return s.scheduleCtx(nil, nil, at, fn, true)
}

// scheduleCtx is the single scheduling funnel: src is the node on
// whose execution context the call is made, dst the node the event
// belongs to (both nil for driver-level events).
func (s *Simulator) scheduleCtx(src, dst *Node, at Time, fn func(), background bool) (Timer, error) {
	if s.backend != nil {
		return s.backend.Schedule(src, dst, at, fn, background)
	}
	if at < s.now {
		return Timer{}, fmt.Errorf("netsim: schedule at %v before now %v", at, s.now)
	}
	e := s.newEvent(at, fn, background)
	heap.Push(&s.queue, e)
	if !background {
		s.fgPending++
	}
	s.m.queueDepth.Set(int64(s.queue.Len()))
	return Timer{sim: s, ev: e, gen: e.gen}, nil
}

// newEvent takes an event from the free list (or allocates one) and
// initializes it for scheduling.
func (s *Simulator) newEvent(at Time, fn func(), background bool) *event {
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	e.at, e.seq, e.fn, e.background, e.idx = at, s.seq, fn, background, -1
	s.seq++
	return e
}

// recycle returns an event to the free list. Bumping gen invalidates
// every Timer handed out for the event's previous life.
func (s *Simulator) recycle(e *event) {
	e.gen++
	e.fn = nil
	s.free = append(s.free, e)
}

// compact rebuilds the heap without the lazily-cancelled events once
// they outnumber the live ones — Stop is O(1), and the queue stays
// within 2× of its live size.
func (s *Simulator) compact() {
	if s.dead <= len(s.queue)/2 || len(s.queue) < 64 {
		return
	}
	live := s.queue[:0]
	for _, e := range s.queue {
		if e.fn == nil {
			s.recycle(e)
			continue
		}
		live = append(live, e)
	}
	// Zero the tail so the dropped slots do not pin recycled events.
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	s.dead = 0
	heap.Init(&s.queue)
	s.m.queueDepth.Set(int64(s.queue.Len()))
}

// After runs fn after delay d. It panics if d is negative, which always
// indicates a programming error in a protocol implementation.
func (s *Simulator) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	t, _ := s.scheduleCtx(nil, nil, s.Now()+d, fn, s.inBackground(nil))
	return t
}

// AfterBackground is After for background events (see
// ScheduleBackground).
func (s *Simulator) AfterBackground(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	t, _ := s.scheduleCtx(nil, nil, s.Now()+d, fn, true)
	return t
}

// EveryBackground arms a repeating background event: fn runs every d of
// simulated time starting at now+d, until the returned Ticker is
// stopped. Like all background events it never keeps RunAll alive, so
// it is the natural driver for interval metric sampling (an
// obs.Recorder fed from it produces a simulated-time series).
func (s *Simulator) EveryBackground(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic(fmt.Sprintf("netsim: non-positive tick interval %v", d))
	}
	t := &Ticker{}
	var arm func()
	arm = func() {
		t.timer = s.AfterBackground(d, func() {
			if t.stopped {
				return
			}
			fn()
			arm()
		})
	}
	arm()
	return t
}

// Ticker is a handle to a repeating background event armed with
// EveryBackground.
type Ticker struct {
	timer   Timer
	stopped bool
}

// Stop cancels the ticker; no further ticks fire. The pending tick
// event is removed from the heap eagerly — a stopped ticker leaves no
// residue in the queue (visible as an immediate MetricQueueDepth
// drop), unlike plain Timer.Stop which cancels lazily.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.stopEager()
}

// Timer is a handle to a scheduled event that can be cancelled. It is
// a value: copies share the underlying event. The zero Timer is inert
// (Stop reports false).
type Timer struct {
	sim *Simulator
	ev  *event
	gen uint64
	// c/h bind the handle to a Backend's own event storage instead;
	// h is a pointer-shaped handle so wrapping it allocates nothing.
	c Canceller
	h any
}

// Canceller is implemented by Backends to cancel events in their own
// storage. h is the handle the backend passed to NewBackendTimer, gen
// the generation the timer was armed against (pooled-reuse guard);
// eager requests immediate queue removal rather than lazy marking.
type Canceller interface {
	CancelEvent(h any, gen uint64, eager bool) bool
}

// NewBackendTimer builds a Timer over backend-owned event storage.
// Pass a pointer-shaped handle to keep the wrap allocation-free.
func NewBackendTimer(c Canceller, h any, gen uint64) Timer {
	return Timer{c: c, h: h, gen: gen}
}

// Stop cancels the timer. It is safe to call Stop on an already-fired
// or already-stopped timer. It reports whether the call prevented the
// event from firing. Cancellation is lazy — the dead event stays in
// the heap until it surfaces or a compaction sweep removes it — so
// Stop is O(1) even on deep queues (retry timers re-arm constantly).
// Under a sharded backend, stop a timer only from the execution
// context of the node it was armed on (or while the engine is
// parked): the handle mutates that node's shard-local queue.
func (t Timer) Stop() bool {
	if t.c != nil {
		return t.c.CancelEvent(t.h, t.gen, false)
	}
	e := t.ev
	if e == nil || t.sim == nil || e.gen != t.gen || e.fn == nil {
		return false
	}
	e.fn = nil
	if !e.background {
		t.sim.fgPending--
	}
	t.sim.dead++
	return true
}

// stopEager cancels like Stop but also removes the event from the
// heap immediately (O(log n)).
func (t Timer) stopEager() bool {
	if t.c != nil {
		return t.c.CancelEvent(t.h, t.gen, true)
	}
	e := t.ev
	if e == nil || t.sim == nil || e.gen != t.gen || e.fn == nil {
		return false
	}
	if !e.background {
		t.sim.fgPending--
	}
	if e.idx >= 0 {
		heap.Remove(&t.sim.queue, int(e.idx))
		t.sim.recycle(e)
		t.sim.m.queueDepth.Set(int64(t.sim.queue.Len()))
	} else {
		e.fn = nil
		t.sim.dead++
	}
	return true
}

// Step executes the single earliest pending event. It reports false
// when the queue is empty.
func (s *Simulator) Step() bool {
	if s.backend != nil {
		return s.backend.Step()
	}
	s.compact()
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		fn := e.fn
		if fn == nil {
			s.dead--
			s.recycle(e)
			continue
		}
		if !e.background {
			s.fgPending--
		}
		s.now = e.at
		bg := e.background
		if s.execTrace != nil {
			s.execTrace.Emit(obs.Event{Kind: TraceEventKind, At: int64(e.at), Serial: e.seq})
		}
		// Recycle before running: fn may schedule, reusing this slot
		// for a fresh event (its own Timer generation).
		s.recycle(e)
		s.inBG = bg
		fn()
		s.inBG = false
		s.m.events.Inc()
		s.m.queueDepth.Set(int64(s.queue.Len()))
		return true
	}
	return false
}

// Run executes events (foreground and background) until the queue
// drains or the simulated clock would pass deadline. It returns the
// number of events executed.
func (s *Simulator) Run(deadline Time) int {
	if s.backend != nil {
		return s.backend.Run(deadline)
	}
	n := 0
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.fn == nil {
			heap.Pop(&s.queue)
			s.dead--
			s.recycle(e)
			continue
		}
		if e.at > deadline {
			break
		}
		if s.Step() {
			n++
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// RunAll executes pending events in timestamp order until no
// foreground events remain, with a safety cap to convert accidental
// event storms into a detectable error. Background events run when
// they precede a pending foreground event but never keep RunAll alive
// on their own; they stay queued for a later Run. This is what lets a
// system with periodic heartbeats still "settle".
func (s *Simulator) RunAll() (int, error) {
	if s.backend != nil {
		return s.backend.RunAll()
	}
	const cap = 50_000_000
	n := 0
	for s.fgPending > 0 {
		if !s.Step() {
			break
		}
		n++
		if n >= cap {
			return n, errors.New("netsim: event cap exceeded (livelock?)")
		}
	}
	return n, nil
}

// QueueLen returns the number of pending events (including
// lazily-cancelled ones not yet compacted away).
func (s *Simulator) QueueLen() int {
	if s.backend != nil {
		return s.backend.QueueLen()
	}
	return s.queue.Len()
}

// Handler processes a message arriving at a node over a link.
type Handler interface {
	Receive(from *Node, link *Link, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from *Node, link *Link, msg Message)

// Receive calls f.
func (f HandlerFunc) Receive(from *Node, link *Link, msg Message) { f(from, link, msg) }

// Message is an opaque payload carried over a link. Size is used for
// serialization-time accounting when the link has finite bandwidth.
type Message interface {
	// Size returns the wire size of the message in bytes.
	Size() int
}

// Bytes is a trivial Message wrapping a byte slice.
type Bytes []byte

// Size returns the byte length.
func (b Bytes) Size() int { return len(b) }

// Burst is a Message carrying several messages that cross a link as
// one back-to-back train. Its wire size is the sum of its members', so
// bandwidth serialization and backlog accounting charge the same bytes
// as sending the members individually — in a single event. Receivers
// type-switch on *Burst and process the members in order. The member
// slice is owned by the current holder: a receiver may filter it in
// place before forwarding.
type Burst struct {
	Msgs []Message
	size int
}

// NewBurst wraps msgs (the slice is retained, not copied).
func NewBurst(msgs []Message) *Burst {
	b := &Burst{Msgs: msgs}
	for _, m := range msgs {
		b.size += m.Size()
	}
	return b
}

// Size returns the summed wire size of the member messages.
func (b *Burst) Size() int { return b.size }

// Node is an endpoint in the simulated network.
type Node struct {
	Name string
	sim  *Simulator
	// shard is the logical partition the node belongs to under a
	// sharded backend; 0 (the only shard) in serial execution.
	shard int32
	links []*Link
	// nbr indexes the first link per neighbor so SendTo is O(1) on the
	// common single-link case instead of scanning links (which is
	// O(degree) — ruinous for tier-1 nodes with thousands of links).
	nbr     map[*Node]*Link
	handler Handler
	crashed bool
	// epoch increments on every crash; node-scoped timers capture it so
	// a crash invalidates everything armed before it.
	epoch uint64
	// Meta lets protocol layers attach state without wrapper structs.
	Meta map[string]any
}

// AddNode registers a node with a unique name.
func (s *Simulator) AddNode(name string) (*Node, error) {
	if name == "" {
		return nil, errors.New("netsim: empty node name")
	}
	if _, dup := s.nodes[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate node %q", name)
	}
	n := &Node{Name: name, sim: s, Meta: make(map[string]any)}
	s.nodes[name] = n
	return n, nil
}

// Node returns the node with the given name, or nil.
func (s *Simulator) Node(name string) *Node { return s.nodes[name] }

// NumNodes returns the number of registered nodes.
func (s *Simulator) NumNodes() int { return len(s.nodes) }

// SetHandler installs the receive callback for the node.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetShard assigns the node to a logical shard. Shard assignment is
// structural: set it while the simulator is parked (between runs),
// before events for the node are scheduled. Handlers of nodes in the
// same shard may share state freely; handlers in different shards
// must communicate only through Link.Send.
func (n *Node) SetShard(shard int) { n.shard = int32(shard) }

// Shard returns the node's logical shard (0 in serial execution).
func (n *Node) Shard() int { return int(n.shard) }

// Now returns the simulated time from the node's execution context —
// inside an event handler under a sharded backend, this is the owning
// shard's clock, exact to the executing event's timestamp. Protocol
// code running on a node must use this (not Simulator.Now) for
// timestamps it stores or compares.
func (n *Node) Now() Time { return n.sim.nowCtx(n) }

// Crash takes the node down, modelling a process or host crash: frames
// in flight toward it are discarded on arrival, new sends from it are
// rejected, and every node-scoped timer (After/AfterBackground on the
// node) armed before the crash is dead — exactly the state a real
// crash destroys. Link and handler wiring survives for Restart.
func (n *Node) Crash() {
	n.epoch++
	n.crashed = true
}

// Restart brings a crashed node back up with a clean timer slate: the
// epoch stays bumped, so timers armed before the crash never fire.
// The protocol layer re-arms whatever its recovery logic needs.
func (n *Node) Restart() { n.crashed = false }

// Crashed reports whether the node is down.
func (n *Node) Crashed() bool { return n.crashed }

// After arms a node-scoped timer: fn runs after d unless the node
// crashes first.
func (n *Node) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	epoch := n.epoch
	t, _ := n.sim.scheduleCtx(n, n, n.Now()+d, func() {
		if n.epoch == epoch && !n.crashed {
			fn()
		}
	}, n.sim.inBackground(n))
	return t
}

// AfterBackground is the background-event variant of Node.After (see
// Simulator.ScheduleBackground).
func (n *Node) AfterBackground(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	epoch := n.epoch
	t, _ := n.sim.scheduleCtx(n, n, n.Now()+d, func() {
		if n.epoch == epoch && !n.crashed {
			fn()
		}
	}, true)
	return t
}

// Links returns the links attached to this node.
func (n *Node) Links() []*Link { return n.links }

// Sim returns the owning simulator.
func (n *Node) Sim() *Simulator { return n.sim }

// Neighbor returns the node on the other side of the link.
func (l *Link) Neighbor(n *Node) *Node {
	if l.a == n {
		return l.b
	}
	if l.b == n {
		return l.a
	}
	return nil
}

// Link is a bidirectional point-to-point channel between two nodes.
type Link struct {
	a, b  *Node
	Delay Time    // propagation delay, per direction
	Bps   float64 // bandwidth in bytes/second; 0 means infinite
	// MaxBacklog bounds the per-direction transmit queue as a time
	// depth: a send whose serialization would start more than
	// MaxBacklog after now is tail-dropped. 0 means unbounded (the
	// default); finite values model congested links with finite
	// buffers.
	MaxBacklog Time
	up         bool
	// faults, when non-nil, injects probabilistic loss, duplication,
	// corruption and jitter into every send (see fault.go).
	faults *LinkFaults
	// busyUntil tracks per-direction serialization backlog (a->b, b->a).
	// Under a sharded backend each direction is written only from its
	// sender's shard, so the two slots never race.
	busyUntil [2]Time
	sim       *Simulator
}

// Connect creates a link between two nodes with the given propagation
// delay and unlimited bandwidth. Under a sharded backend, creating a
// link whose endpoints live in different shards is a structural change
// — do it while the simulator is parked (the backend is notified so it
// can refresh its lookahead bound).
func (s *Simulator) Connect(a, b *Node, delay Time) (*Link, error) {
	if a == nil || b == nil {
		return nil, errors.New("netsim: connect with nil node")
	}
	if a == b {
		return nil, fmt.Errorf("netsim: self-link on %q", a.Name)
	}
	if delay < 0 {
		return nil, fmt.Errorf("netsim: negative delay %v", delay)
	}
	l := &Link{a: a, b: b, Delay: delay, up: true, sim: s}
	if s.defFaults != nil {
		f := *s.defFaults
		l.faults = &f
	}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	a.addNbr(b, l)
	b.addNbr(a, l)
	s.links = append(s.links, l)
	if s.backend != nil {
		s.backend.Connected(l)
	}
	return l, nil
}

// addNbr records the first link toward a neighbor (parallel links keep
// SendTo's "first up link" semantics via the slow-path scan).
func (n *Node) addNbr(peer *Node, l *Link) {
	if n.nbr == nil {
		n.nbr = make(map[*Node]*Link, 4)
	}
	if _, dup := n.nbr[peer]; !dup {
		n.nbr[peer] = l
	}
}

// Reserve sizes the node and link tables for a known topology so a
// paper-scale build (44k nodes, ~70k links) does not rehash and
// re-grow its way up. Safe to call on a fresh or partially built
// simulator; existing nodes and links are preserved. A sharded
// backend receives the same hint for its per-shard queues.
func (s *Simulator) Reserve(nodes, links int) {
	if nodes > len(s.nodes) {
		m := make(map[string]*Node, nodes)
		for k, v := range s.nodes {
			m[k] = v
		}
		s.nodes = m
	}
	if links > cap(s.links) {
		grown := make([]*Link, len(s.links), links)
		copy(grown, s.links)
		s.links = grown
	}
	if s.backend != nil {
		s.backend.Reserved(nodes, links)
	}
}

// Links returns all links in creation order. The slice must not be
// modified; backends use it to derive the cross-shard lookahead bound.
func (s *Simulator) Links() []*Link { return s.links }

// SetUp marks the link up or down. Messages in flight when a link goes
// down are still delivered (they already left the interface); new sends
// are dropped. Under a sharded backend, flip link state only from the
// driver goroutine or scheduled (driver-lane) events — both endpoints'
// shards read it.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is up.
func (l *Link) Up() bool { return l.up }

// Endpoints returns the two nodes of the link.
func (l *Link) Endpoints() (*Node, *Node) { return l.a, l.b }

// Send transmits msg from node `from` over the link. The message is
// delivered to the peer's handler after serialization and propagation
// delay. Send reports whether the message was accepted (false if the
// link is down, either endpoint condition rejects it, or from is not
// an endpoint). Injected faults (loss, corruption) still report true:
// the sender cannot tell a frame lost in flight from a delivered one.
func (l *Link) Send(from *Node, msg Message) bool {
	var dir int
	var to *Node
	switch from {
	case l.a:
		dir, to = 0, l.b
	case l.b:
		dir, to = 1, l.a
	default:
		return false
	}
	if !l.up || from.crashed {
		l.sim.m.dropped.Inc()
		return false
	}
	now := l.sim.nowCtx(from)
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	if l.MaxBacklog > 0 && start-now > l.MaxBacklog {
		// Finite buffer: the transmit queue is too deep; tail-drop.
		l.sim.m.dropped.Inc()
		return false
	}
	var ser Time
	if l.Bps > 0 {
		sec := float64(msg.Size()) / l.Bps
		if sec > math.MaxInt64/float64(time.Second) {
			sec = math.MaxInt64 / float64(time.Second)
		}
		ser = Time(sec * float64(time.Second))
	}
	l.busyUntil[dir] = start + ser
	arrive := start + ser + l.Delay

	// Fault injection: the draw order (loss, corruption, duplication,
	// jitter) is fixed and all draws come from the seeded fault RNG of
	// the sender's execution context, in event order — deterministic
	// given the seed (and, under a sharded backend, the partition).
	copies := 1
	if f := l.faults; f != nil {
		rng := l.sim.faultRNGCtx(from)
		if f.Loss > 0 && rng.Float64() < f.Loss {
			l.sim.m.dropped.Inc()
			l.sim.m.lost.Inc()
			return true
		}
		if f.Corrupt > 0 && rng.Float64() < f.Corrupt {
			l.sim.m.corrupted.Inc()
			if cm, ok := msg.(Corruptible); ok {
				msg = cm.Corrupt(rng.Uint64())
			} else {
				// A message that cannot model bit errors is dropped,
				// as a corrupted frame would fail its checksum anyway.
				l.sim.m.dropped.Inc()
				return true
			}
		}
		if f.Dup > 0 && rng.Float64() < f.Dup {
			copies = 2
			l.sim.m.duplicated.Inc()
		}
		if f.JitterMax > 0 {
			arrive += Time(rng.Int63n(int64(f.JitterMax) + 1))
		}
	}
	for i := 0; i < copies; i++ {
		at := arrive
		if i > 0 {
			// The duplicate takes its own jittered path.
			if f := l.faults; f.JitterMax > 0 {
				at += Time(l.sim.faultRNGCtx(from).Int63n(int64(f.JitterMax) + 1))
			}
		}
		l.sim.scheduleCtx(from, to, at, func() {
			if to.crashed {
				l.sim.m.dropped.Inc()
				l.sim.m.crashDrop.Inc()
				return
			}
			l.sim.m.delivered.Inc()
			if to.handler != nil {
				to.handler.Receive(from, l, msg)
			}
		}, l.sim.inBackground(from))
	}
	return true
}

// SendTo is a convenience that finds the first up link from n to the
// named neighbor and sends msg over it. It reports whether a link was
// found and the send accepted. The common case — one link to the
// neighbor, link up — is an O(1) map lookup; only parallel links with
// the first one down fall back to scanning.
func (n *Node) SendTo(neighbor *Node, msg Message) bool {
	l, ok := n.nbr[neighbor]
	if !ok {
		return false
	}
	if l.up {
		return l.Send(n, msg)
	}
	for _, l := range n.links {
		if l.Neighbor(n) == neighbor && l.up {
			return l.Send(n, msg)
		}
	}
	return false
}
