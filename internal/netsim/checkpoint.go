// Checkpoint/restore seam. The simulator serializes exactly the state
// a crash-consistent snapshot needs to resume bit-identically:
//
//   - the clock and the event sequence counter (seq is the trace
//     serial, so restored runs emit the same determinism-oracle trace
//     a straight-through run does),
//   - the fault RNG as (seed, draw count) — replayable because every
//     fault draw advances the underlying source exactly one step (see
//     CountingSource),
//   - per-link configuration, direction backlogs and up/down state,
//     and per-node crash state.
//
// Pending events are deliberately NOT serialized. A checkpoint
// requires foreground quiescence (ErrNotQuiescent otherwise), and
// queued background events — heartbeats, periodic purges, reconnect
// timers — are dropped with crash semantics: the layers that armed
// them re-arm on restart, exactly as they do after a node crash.
// Closures cannot be serialized; quiescence is the point at which the
// world is closure-free by construction.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"discs/internal/snapcodec"
)

// ErrNotQuiescent is returned by Checkpoint while foreground events
// are pending: the world still holds in-flight closures that cannot be
// serialized. Run the simulator to quiescence (RunAll) first.
var ErrNotQuiescent = errors.New("netsim: checkpoint requires foreground quiescence")

// ErrStateMismatch is returned by RestoreCheckpoint when the live
// world the image is being restored into does not structurally match
// the world that was checkpointed (node or link tables differ).
var ErrStateMismatch = errors.New("netsim: restore target does not match image")

// CountingSource is a rand.Source64 that counts how many times the
// underlying generator stepped. math/rand generator state is opaque,
// but every draw the simulator performs (Int63, Uint64, Float64,
// Int63n — never Read) advances the source exactly one step per
// source call, so (seed, draws) reconstructs the exact stream
// position: reseed and skip. All fault-injection RNGs in netsim and
// parsim are built over CountingSource for this reason.
type CountingSource struct {
	src  rand.Source64
	seed int64
	n    uint64
}

// NewCountingSource returns a counting source over the stdlib
// generator seeded with seed.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed, c.n = seed, 0
}

// SeedValue returns the seed the source was last (re)seeded with.
func (c *CountingSource) SeedValue() int64 { return c.seed }

// Draws returns the number of generator steps taken since seeding.
func (c *CountingSource) Draws() uint64 { return c.n }

// Skip advances the generator n steps (restore-side replay of a
// checkpointed draw count).
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n += n
}

// writeFaults serializes an optional LinkFaults configuration.
func writeFaults(w *snapcodec.Writer, f *LinkFaults) {
	if f == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.F64(f.Loss)
	w.F64(f.Dup)
	w.F64(f.Corrupt)
	w.Duration(f.JitterMax)
}

// readFaults decodes what writeFaults wrote.
func readFaults(r *snapcodec.Reader) *LinkFaults {
	if !r.Bool() {
		return nil
	}
	f := &LinkFaults{
		Loss:      r.F64(),
		Dup:       r.F64(),
		Corrupt:   r.F64(),
		JitterMax: r.Duration(),
	}
	return f
}

// Checkpoint serializes the simulator's resumable state. It is
// non-mutating: the live world keeps running afterwards, which is what
// makes the restore-vs-straight-through differential possible. Under a
// sharded backend the serial queue is unused; the engine checkpoints
// its lanes separately and performs its own quiescence check.
func (s *Simulator) Checkpoint(w *snapcodec.Writer) error {
	if s.fgPending > 0 {
		return ErrNotQuiescent
	}
	w.Duration(s.now)
	w.Uvarint(s.seq)
	if s.fsrc == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Varint(s.fsrc.SeedValue())
		w.Uvarint(s.fsrc.Draws())
	}
	writeFaults(w, s.defFaults)

	names := make([]string, 0, len(s.nodes))
	for name := range s.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		n := s.nodes[name]
		w.String(name)
		w.Bool(n.crashed)
		w.Uvarint(n.epoch)
		w.Uvarint(uint64(n.shard))
	}

	// Links are serialized positionally: creation order is
	// deterministic (BuildNetwork, then the deploy sequence), and the
	// endpoint names double as an integrity check on restore.
	w.Uvarint(uint64(len(s.links)))
	for _, l := range s.links {
		w.String(l.a.Name)
		w.String(l.b.Name)
		w.Duration(l.Delay)
		w.F64(l.Bps)
		w.Duration(l.MaxBacklog)
		w.Bool(l.up)
		writeFaults(w, l.faults)
		w.Duration(l.busyUntil[0])
		w.Duration(l.busyUntil[1])
	}
	return w.Err()
}

// RestoreCheckpoint loads state written by Checkpoint into a freshly
// rebuilt world whose node and link tables must already exist (the
// snapshot layer reconstructs them from the topology and deploy
// sections before calling this). The event queue starts empty:
// background housekeeping re-arms through the restart path.
func (s *Simulator) RestoreCheckpoint(r *snapcodec.Reader) error {
	s.now = r.Duration()
	s.seq = r.Uvarint()
	if r.Bool() {
		seed := r.Varint()
		draws := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		s.SeedFaults(seed)
		s.fsrc.Skip(draws)
	}
	s.defFaults = readFaults(r)

	nn := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if nn != len(s.nodes) {
		return fmt.Errorf("%w: image has %d nodes, world has %d", ErrStateMismatch, nn, len(s.nodes))
	}
	for i := 0; i < nn; i++ {
		name := r.String()
		crashed := r.Bool()
		epoch := r.Uvarint()
		shard := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		n := s.nodes[name]
		if n == nil {
			return fmt.Errorf("%w: image node %q absent from world", ErrStateMismatch, name)
		}
		if n.shard != int32(shard) {
			return fmt.Errorf("%w: node %q shard %d, image %d", ErrStateMismatch, name, n.shard, shard)
		}
		n.crashed = crashed
		n.epoch = epoch
	}

	nl := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if nl != len(s.links) {
		return fmt.Errorf("%w: image has %d links, world has %d", ErrStateMismatch, nl, len(s.links))
	}
	for i := 0; i < nl; i++ {
		a, b := r.String(), r.String()
		l := s.links[i]
		l.Delay = r.Duration()
		l.Bps = r.F64()
		l.MaxBacklog = r.Duration()
		l.up = r.Bool()
		l.faults = readFaults(r)
		l.busyUntil[0] = r.Duration()
		l.busyUntil[1] = r.Duration()
		if r.Err() != nil {
			return r.Err()
		}
		if l.a.Name != a || l.b.Name != b {
			return fmt.Errorf("%w: link %d is %s<->%s, image %s<->%s",
				ErrStateMismatch, i, l.a.Name, l.b.Name, a, b)
		}
	}
	return r.Err()
}
