package netsim

import (
	"testing"
	"time"

	"discs/internal/obs"
)

func mustNode(t *testing.T, s *Simulator, name string) *Node {
	t.Helper()
	n, err := s.AddNode(name)
	if err != nil {
		t.Fatalf("AddNode(%q): %v", name, err)
	}
	return n
}

func mustLink(t *testing.T, s *Simulator, a, b *Node, d Time) *Link {
	t.Helper()
	l, err := s.Connect(a, b, d)
	if err != nil {
		t.Fatalf("Connect(%q,%q): %v", a.Name, b.Name, err)
	}
	return l
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	s.After(time.Second, func() {})
	s.Run(time.Second)
	if _, err := s.Schedule(time.Millisecond, func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) should panic")
		}
	}()
	s.After(-1, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report true on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestClockAdvance(t *testing.T) {
	s := New()
	var at Time
	s.After(5*time.Millisecond, func() { at = s.Now() })
	s.RunAll()
	if at != 5*time.Millisecond {
		t.Fatalf("event ran at %v, want 5ms", at)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v after drain", s.Now())
	}
}

func TestRunDeadline(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(Time(i)*time.Millisecond, func() { count++ })
	}
	n := s.Run(5 * time.Millisecond)
	if n != 5 || count != 5 {
		t.Fatalf("Run executed %d (count %d), want 5", n, count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want deadline 5ms", s.Now())
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	s := New()
	mustNode(t, s, "a")
	if _, err := s.AddNode("a"); err == nil {
		t.Fatal("duplicate node name should fail")
	}
	if _, err := s.AddNode(""); err == nil {
		t.Fatal("empty node name should fail")
	}
}

func TestSelfLinkRejected(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	if _, err := s.Connect(a, a, 0); err == nil {
		t.Fatal("self link should fail")
	}
}

func TestLinkDelivery(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, 10*time.Millisecond)

	var gotMsg Message
	var gotAt Time
	b.SetHandler(HandlerFunc(func(from *Node, link *Link, msg Message) {
		if from != a || link != l {
			t.Errorf("delivery metadata wrong: from=%v", from.Name)
		}
		gotMsg, gotAt = msg, s.Now()
	}))
	if !l.Send(a, Bytes("hello")) {
		t.Fatal("send rejected")
	}
	s.RunAll()
	if gotMsg == nil || string(gotMsg.(Bytes)) != "hello" {
		t.Fatalf("message = %v", gotMsg)
	}
	if gotAt != 10*time.Millisecond {
		t.Fatalf("arrival at %v, want 10ms", gotAt)
	}
	if s.Stats().Get(MetricDelivered) != 1 {
		t.Fatalf("Delivered = %d", s.Stats().Get(MetricDelivered))
	}
}

func TestLinkBidirectional(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, time.Millisecond)
	var aGot, bGot bool
	a.SetHandler(HandlerFunc(func(_ *Node, _ *Link, _ Message) { aGot = true }))
	b.SetHandler(HandlerFunc(func(_ *Node, _ *Link, _ Message) { bGot = true }))
	l.Send(a, Bytes("x"))
	l.Send(b, Bytes("y"))
	s.RunAll()
	if !aGot || !bGot {
		t.Fatalf("bidirectional delivery failed: a=%v b=%v", aGot, bGot)
	}
}

func TestLinkDown(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, time.Millisecond)
	l.SetUp(false)
	if l.Send(a, Bytes("x")) {
		t.Fatal("send over down link should be rejected")
	}
	if s.Stats().Get(MetricDropped) != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Stats().Get(MetricDropped))
	}
	l.SetUp(true)
	if !l.Send(a, Bytes("x")) {
		t.Fatal("send over restored link should work")
	}
}

func TestSendFromNonEndpoint(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	c := mustNode(t, s, "c")
	l := mustLink(t, s, a, b, time.Millisecond)
	if l.Send(c, Bytes("x")) {
		t.Fatal("send from non-endpoint should be rejected")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, 0)
	l.Bps = 1000 // 1000 bytes/sec -> a 500-byte msg takes 500ms

	var arrivals []Time
	b.SetHandler(HandlerFunc(func(_ *Node, _ *Link, _ Message) {
		arrivals = append(arrivals, s.Now())
	}))
	l.Send(a, Bytes(make([]byte, 500)))
	l.Send(a, Bytes(make([]byte, 500)))
	s.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	if arrivals[0] != 500*time.Millisecond || arrivals[1] != time.Second {
		t.Fatalf("arrivals = %v, want [500ms 1s]", arrivals)
	}
}

func TestBandwidthIndependentDirections(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, 0)
	l.Bps = 1000
	var times []Time
	h := HandlerFunc(func(_ *Node, _ *Link, _ Message) { times = append(times, s.Now()) })
	a.SetHandler(h)
	b.SetHandler(h)
	l.Send(a, Bytes(make([]byte, 500)))
	l.Send(b, Bytes(make([]byte, 500)))
	s.RunAll()
	// Both directions serialize independently: both arrive at 500ms.
	if len(times) != 2 || times[0] != 500*time.Millisecond || times[1] != 500*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestSendTo(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	c := mustNode(t, s, "c")
	mustLink(t, s, a, b, time.Millisecond)
	got := ""
	b.SetHandler(HandlerFunc(func(_ *Node, _ *Link, m Message) { got = string(m.(Bytes)) }))
	if !a.SendTo(b, Bytes("direct")) {
		t.Fatal("SendTo over existing link failed")
	}
	if a.SendTo(c, Bytes("nope")) {
		t.Fatal("SendTo without a link should fail")
	}
	s.RunAll()
	if got != "direct" {
		t.Fatalf("got %q", got)
	}
}

func TestNeighbor(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	c := mustNode(t, s, "c")
	l := mustLink(t, s, a, b, 0)
	if l.Neighbor(a) != b || l.Neighbor(b) != a {
		t.Fatal("Neighbor wrong")
	}
	if l.Neighbor(c) != nil {
		t.Fatal("Neighbor of non-endpoint should be nil")
	}
}

func TestNodeLookup(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	if s.Node("a") != a || s.Node("zz") != nil || s.NumNodes() != 1 {
		t.Fatal("node lookup broken")
	}
}

func TestCascadedEvents(t *testing.T) {
	// Events scheduled from within events must run; models protocol
	// timers armed inside message handlers.
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Microsecond, recurse)
		}
	}
	s.After(0, recurse)
	n, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || depth != 100 {
		t.Fatalf("n=%d depth=%d", n, depth)
	}
}

func TestRelayChainTiming(t *testing.T) {
	// a -> b -> c relay: total delay should add up.
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	c := mustNode(t, s, "c")
	mustLink(t, s, a, b, 2*time.Millisecond)
	mustLink(t, s, b, c, 3*time.Millisecond)
	var at Time
	b.SetHandler(HandlerFunc(func(_ *Node, _ *Link, m Message) { b.SendTo(c, m) }))
	c.SetHandler(HandlerFunc(func(_ *Node, _ *Link, _ Message) { at = s.Now() }))
	a.SendTo(b, Bytes("relay"))
	s.RunAll()
	if at != 5*time.Millisecond {
		t.Fatalf("relay arrived at %v, want 5ms", at)
	}
}

func TestMaxBacklogTailDrop(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, 0)
	l.Bps = 1000                          // 1 ms per byte
	l.MaxBacklog = 200 * time.Millisecond // queue depth: 200 bytes

	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(a, Bytes(make([]byte, 100))) { // 100 ms serialization each
			accepted++
		}
	}
	// First send starts immediately; sends are accepted while the queue
	// is at most 200 ms deep: sends 1..3 queue at 0/100/200ms backlog,
	// the rest drop.
	if accepted != 3 {
		t.Fatalf("accepted %d sends, want 3", accepted)
	}
	if s.Stats().Get(MetricDropped) != 7 {
		t.Fatalf("dropped %d, want 7", s.Stats().Get(MetricDropped))
	}
	// Draining restores acceptance.
	s.RunAll()
	if !l.Send(a, Bytes(make([]byte, 100))) {
		t.Fatal("send after drain rejected")
	}
}

func TestMaxBacklogZeroUnbounded(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, 0)
	l.Bps = 1000
	for i := 0; i < 100; i++ {
		if !l.Send(a, Bytes(make([]byte, 100))) {
			t.Fatal("unbounded link dropped a send")
		}
	}
}

func TestEveryBackgroundTicker(t *testing.T) {
	s := New()
	var ticks []Time
	tk := s.EveryBackground(10*time.Millisecond, func() {
		ticks = append(ticks, s.Now())
	})
	s.Run(35 * time.Millisecond)
	if len(ticks) != 3 || ticks[0] != 10*time.Millisecond || ticks[2] != 30*time.Millisecond {
		t.Fatalf("ticks = %v, want 10/20/30ms", ticks)
	}
	// A ticker alone must not keep RunAll alive.
	if n, err := s.RunAll(); err != nil || n != 0 {
		t.Fatalf("RunAll with only a ticker ran %d events (err %v)", n, err)
	}
	tk.Stop()
	s.Run(100 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", len(ticks))
	}
}

func TestMoveToRegistryCarriesCounts(t *testing.T) {
	s := New()
	a := mustNode(t, s, "a")
	b := mustNode(t, s, "b")
	l := mustLink(t, s, a, b, time.Millisecond)
	l.Send(a, Bytes("x"))
	s.RunAll()
	before := s.Stats()
	if before.Get(MetricDelivered) != 1 {
		t.Fatalf("delivered = %d, want 1", before.Get(MetricDelivered))
	}

	reg := obs.NewRegistry()
	s.MoveToRegistry(reg)
	if s.Registry() != reg {
		t.Fatal("MoveToRegistry did not adopt the new registry")
	}
	after := s.Stats()
	if after.Get(MetricDelivered) != 1 || after.Get(MetricEvents) != before.Get(MetricEvents) {
		t.Fatalf("counts not carried: %v", after.Counters)
	}
	// New increments land in the adopted registry, and snapshots are
	// stamped with the simulated clock.
	l.Send(a, Bytes("y"))
	s.RunAll()
	st := reg.Snapshot()
	if st.Get(MetricDelivered) != 2 {
		t.Fatalf("delivered after move = %d, want 2", st.Get(MetricDelivered))
	}
	if st.AtNanos != int64(s.Now()) {
		t.Fatalf("snapshot stamped %d, sim now %d", st.AtNanos, int64(s.Now()))
	}
}
