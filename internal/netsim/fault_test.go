package netsim

import (
	"bytes"
	"testing"
	"time"
)

// faultPair builds a two-node sim with one link and a receive counter.
func faultPair(t *testing.T, f LinkFaults) (*Simulator, *Node, *Node, *Link, *[]Message) {
	t.Helper()
	s := New()
	a, err := s.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Connect(a, b, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l.SetFaults(f)
	var got []Message
	b.SetHandler(HandlerFunc(func(from *Node, link *Link, msg Message) {
		got = append(got, msg)
	}))
	return s, a, b, l, &got
}

func TestFaultLossDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		s, a, _, l, got := faultPair(t, LinkFaults{Loss: 0.5})
		s.SeedFaults(seed)
		for i := 0; i < 100; i++ {
			if !l.Send(a, Bytes{byte(i)}) {
				t.Fatal("lossy send must still be accepted")
			}
		}
		if _, err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		var idx []int
		for _, m := range *got {
			idx = append(idx, int(m.(Bytes)[0]))
		}
		return idx
	}
	first := run(7)
	if len(first) == 0 || len(first) == 100 {
		t.Fatalf("50%% loss delivered %d/100, want a strict subset", len(first))
	}
	second := run(7)
	if len(first) != len(second) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different delivery set at %d: %d vs %d", i, first[i], second[i])
		}
	}
	other := run(8)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss pattern (suspicious)")
	}
}

func TestFaultDuplication(t *testing.T) {
	s, a, _, l, got := faultPair(t, LinkFaults{Dup: 1.0})
	s.SeedFaults(1)
	l.Send(a, Bytes{42})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("Dup=1 delivered %d copies, want 2", len(*got))
	}
	if s.Stats().Get(MetricDuplicated) != 1 {
		t.Fatalf("Duplicated stat = %d, want 1", s.Stats().Get(MetricDuplicated))
	}
}

func TestFaultCorruption(t *testing.T) {
	s, a, _, l, got := faultPair(t, LinkFaults{Corrupt: 1.0})
	s.SeedFaults(3)
	orig := Bytes{1, 2, 3, 4}
	sent := append(Bytes(nil), orig...)
	l.Send(a, sent)
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("corrupted Corruptible delivered %d times, want 1", len(*got))
	}
	if bytes.Equal([]byte((*got)[0].(Bytes)), []byte(orig)) {
		t.Fatal("Corrupt=1 delivered the frame unmodified")
	}
	if !bytes.Equal([]byte(sent), []byte(orig)) {
		t.Fatal("corruption mutated the sender's copy")
	}
	if s.Stats().Get(MetricCorrupted) != 1 {
		t.Fatalf("Corrupted stat = %d, want 1", s.Stats().Get(MetricCorrupted))
	}

	// A non-Corruptible message is dropped instead.
	s2, a2, _, l2, got2 := faultPair(t, LinkFaults{Corrupt: 1.0})
	s2.SeedFaults(3)
	l2.Send(a2, opaqueMsg{})
	if _, err := s2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got2) != 0 {
		t.Fatal("corrupted non-Corruptible message must be dropped")
	}
}

type opaqueMsg struct{}

func (opaqueMsg) Size() int { return 8 }

func TestFaultJitterBounds(t *testing.T) {
	const jmax = 10 * time.Millisecond
	s, a, _, l, _ := faultPair(t, LinkFaults{JitterMax: jmax})
	s.SeedFaults(5)
	var arrivals []Time
	bn := s.Node("b")
	bn.SetHandler(HandlerFunc(func(from *Node, link *Link, msg Message) {
		arrivals = append(arrivals, s.Now())
	}))
	for i := 0; i < 50; i++ {
		l.Send(a, Bytes{byte(i)})
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 50 {
		t.Fatalf("jitter lost frames: %d/50 delivered", len(arrivals))
	}
	varied := false
	for _, at := range arrivals {
		if at < l.Delay || at > l.Delay+jmax {
			t.Fatalf("arrival %v outside [delay, delay+jitter] = [%v, %v]", at, l.Delay, l.Delay+jmax)
		}
		if at != l.Delay {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved an arrival")
	}
}

func TestCrashDropsDeliveriesAndTimers(t *testing.T) {
	s, a, b, l, got := faultPair(t, LinkFaults{})
	fired := false
	b.After(5*time.Millisecond, func() { fired = true })
	l.Send(a, Bytes{1}) // in flight toward b
	b.Crash()
	if l.Send(b, Bytes{2}) {
		t.Fatal("send from a crashed node must be rejected")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatal("frame in flight toward a crashed node must be discarded on arrival")
	}
	if s.Stats().Get(MetricCrashDropped) != 1 {
		t.Fatalf("CrashDropped = %d, want 1", s.Stats().Get(MetricCrashDropped))
	}
	if fired {
		t.Fatal("node-scoped timer survived the crash")
	}

	// Restart: sends work again, and timers armed pre-crash stay dead
	// even when the node is back up (epoch guard).
	b.Restart()
	b.After(time.Millisecond, func() { fired = true })
	if !l.Send(a, Bytes{3}) {
		t.Fatal("send to a restarted node rejected")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("restarted node received %d frames, want 1", len(*got))
	}
	if !fired {
		t.Fatal("timer armed after restart did not fire")
	}
}

func TestScheduleFlap(t *testing.T) {
	s, a, _, l, got := faultPair(t, LinkFaults{})
	if err := s.ScheduleFlap(l, 10*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	send := func(at Time, v byte) {
		s.Schedule(at, func() { l.Send(a, Bytes{v}) })
	}
	send(5*time.Millisecond, 1)  // before the flap: delivered
	send(15*time.Millisecond, 2) // during: dropped
	send(35*time.Millisecond, 3) // after heal: delivered
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("flap: delivered %d frames, want 2", len(*got))
	}
	if (*got)[0].(Bytes)[0] != 1 || (*got)[1].(Bytes)[0] != 3 {
		t.Fatalf("flap: wrong frames delivered: %v", *got)
	}
}

func TestSchedulePartition(t *testing.T) {
	s := New()
	a, _ := s.AddNode("a")
	b, _ := s.AddNode("b")
	c, _ := s.AddNode("c")
	lab, _ := s.Connect(a, b, time.Millisecond)
	lbc, _ := s.Connect(b, c, time.Millisecond)
	var toB, toC int
	b.SetHandler(HandlerFunc(func(*Node, *Link, Message) { toB++ }))
	c.SetHandler(HandlerFunc(func(*Node, *Link, Message) { toC++ }))
	// Partition {a} away from {b, c}: a-b is cut, b-c survives.
	if err := s.SchedulePartition(10*time.Millisecond, 20*time.Millisecond, a); err != nil {
		t.Fatal(err)
	}
	s.Schedule(15*time.Millisecond, func() {
		if lab.Send(a, Bytes{1}) {
			t.Error("send across the partition accepted")
		}
		if !lbc.Send(b, Bytes{2}) {
			t.Error("send inside the majority side rejected")
		}
	})
	s.Schedule(35*time.Millisecond, func() {
		if !lab.Send(a, Bytes{3}) {
			t.Error("send after heal rejected")
		}
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if toC != 1 || toB != 1 {
		t.Fatalf("partition deliveries: toB=%d toC=%d, want 1 and 1", toB, toC)
	}
}

// Background events must not keep RunAll alive, but must still run when
// the clock passes them on the way to a foreground event — and work
// scheduled from inside a background callback stays background.
func TestBackgroundEventsDoNotBlockRunAll(t *testing.T) {
	s := New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.AfterBackground(time.Second, tick) // re-arming forever
	}
	s.AfterBackground(time.Second, tick)
	fg := false
	s.After(2500*time.Millisecond, func() { fg = true })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fg {
		t.Fatal("foreground event did not run")
	}
	// Ticks at 1s and 2s precede the fg event at 2.5s; the re-armed
	// tick at 3s must remain queued without spinning RunAll.
	if ticks != 2 {
		t.Fatalf("background ticks during RunAll = %d, want 2", ticks)
	}
	if s.Now() != 2500*time.Millisecond {
		t.Fatalf("RunAll advanced clock to %v, want 2.5s (stopped at last fg event)", s.Now())
	}
	// Run picks the queued background work back up.
	s.Run(5 * time.Second)
	if ticks != 5 {
		t.Fatalf("background ticks after Run(5s) = %d, want 5", ticks)
	}
}

// An event scheduled with plain Schedule from inside a background
// callback inherits background-ness, so heartbeat send/deliver cascades
// cannot wedge RunAll.
func TestBackgroundInheritance(t *testing.T) {
	s := New()
	a, _ := s.AddNode("a")
	b, _ := s.AddNode("b")
	l, _ := s.Connect(a, b, time.Millisecond)
	echoes := 0
	b.SetHandler(HandlerFunc(func(from *Node, link *Link, msg Message) {
		echoes++
		link.Send(b, msg) // reply — also background, transitively
	}))
	a.SetHandler(HandlerFunc(func(*Node, *Link, Message) {}))
	var beat func()
	beat = func() {
		l.Send(a, Bytes{0}) // delivery event inherits background
		s.AfterBackground(time.Second, beat)
	}
	s.AfterBackground(time.Second, beat)
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if echoes != 0 {
		t.Fatal("pure-background system must settle immediately under RunAll")
	}
	s.Run(3500 * time.Millisecond)
	if echoes != 3 {
		t.Fatalf("echoes after Run(3.5s) = %d, want 3", echoes)
	}
}

func TestCorruptBytesFlipsBits(t *testing.T) {
	for r := uint64(0); r < 200; r++ {
		b := []byte{0, 0, 0, 0}
		CorruptBytes(b, r)
		flipped := 0
		for _, x := range b {
			for ; x != 0; x &= x - 1 {
				flipped++
			}
		}
		if flipped < 1 || flipped > 3 {
			t.Fatalf("r=%d flipped %d bits, want 1..3", r, flipped)
		}
	}
	if got := CorruptBytes(nil, 9); got != nil {
		t.Fatal("CorruptBytes(nil) must be a no-op")
	}
}

func TestDefaultLinkFaultsAppliedToNewLinks(t *testing.T) {
	s := New()
	a, _ := s.AddNode("a")
	b, _ := s.AddNode("b")
	pre, _ := s.Connect(a, b, time.Millisecond)
	s.SetDefaultLinkFaults(LinkFaults{Loss: 0.25})
	post, _ := s.Connect(a, b, time.Millisecond)
	if f := pre.Faults(); f.Loss != 0 {
		t.Fatal("default faults leaked onto a pre-existing link")
	}
	if f := post.Faults(); f.Loss != 0.25 {
		t.Fatalf("new link faults = %+v, want Loss 0.25", f)
	}
	s.SetDefaultLinkFaults(LinkFaults{})
	clean, _ := s.Connect(a, b, time.Millisecond)
	if f := clean.Faults(); f.enabled() {
		t.Fatal("clearing default faults did not stick")
	}
}
