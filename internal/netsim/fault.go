// Fault injection. DISCS is an on-demand defense: the control plane
// runs exactly when a DAS is under attack, which is when links are
// congested, frames are lost and controllers crash. This file gives
// the simulator a seeded, deterministic failure model so every
// protocol in the repository can be exercised under those conditions:
//
//   - per-link probabilistic loss, duplication, corruption and jitter
//     (LinkFaults, Link.SetFaults, Simulator.SetDefaultLinkFaults),
//   - scheduled outages: link flaps and network partitions
//     (ScheduleFlap, SchedulePartition),
//   - node crash and restart with timer invalidation (Node.Crash,
//     Node.Restart in netsim.go).
//
// Determinism contract: all randomness comes from one RNG seeded via
// SeedFaults, drawn in event-execution order, which is itself fully
// deterministic. Two runs with the same inputs and the same fault
// seed execute the same failures at the same simulated times.
package netsim

import "math/rand"

// LinkFaults configures probabilistic per-send fault injection on one
// link. Probabilities are in [0, 1] and evaluated independently per
// send, in the fixed order loss, corruption, duplication, jitter.
type LinkFaults struct {
	// Loss is the probability a frame vanishes in flight. Unlike a
	// down link, the sender still sees the send accepted.
	Loss float64
	// Dup is the probability a frame is delivered twice (each copy
	// with its own jitter draw).
	Dup float64
	// Corrupt is the probability a frame suffers bit errors. Messages
	// implementing Corruptible are delivered mutated; others are
	// dropped, as a corrupted frame would fail its checksum anyway.
	Corrupt float64
	// JitterMax adds a uniform random extra delay in [0, JitterMax]
	// to each delivery. Jitter can reorder frames, so channels that
	// require ordering (securechan records) must tolerate gaps.
	JitterMax Time
}

// enabled reports whether any fault is configured.
func (f LinkFaults) enabled() bool {
	return f.Loss > 0 || f.Dup > 0 || f.Corrupt > 0 || f.JitterMax > 0
}

// SetFaults installs (or, with a zero LinkFaults, clears) fault
// injection on the link.
func (l *Link) SetFaults(f LinkFaults) {
	if !f.enabled() {
		l.faults = nil
		return
	}
	l.faults = &f
}

// Faults returns the link's current fault configuration (zero when
// fault injection is off).
func (l *Link) Faults() LinkFaults {
	if l.faults == nil {
		return LinkFaults{}
	}
	return *l.faults
}

// SetDefaultLinkFaults sets the fault configuration applied to every
// link created by Connect from now on. Existing links are untouched,
// which lets a test fault only the on-demand controller links created
// after a BGP network was built fault-free.
func (s *Simulator) SetDefaultLinkFaults(f LinkFaults) {
	if !f.enabled() {
		s.defFaults = nil
		return
	}
	s.defFaults = &f
}

// SeedFaults seeds the fault RNG. Call it before the first faulted
// send for a reproducible failure schedule; without it the RNG uses a
// fixed default seed (still deterministic, just not chosen). Under a
// sharded backend each shard owns an independent stream derived from
// this seed, drawn in that shard's event order — deterministic given
// the seed and the partition (but a different schedule than serial).
func (s *Simulator) SeedFaults(seed int64) {
	s.fsrc = NewCountingSource(seed)
	s.frng = rand.New(s.fsrc)
	if s.backend != nil {
		s.backend.SeedFaults(seed)
	}
}

// faultRNGCtx returns the fault RNG stream for node n's execution
// context (the serial stream when no backend is installed).
func (s *Simulator) faultRNGCtx(n *Node) *rand.Rand {
	if s.backend != nil {
		return s.backend.FaultRNG(n)
	}
	if s.frng == nil {
		s.fsrc = NewCountingSource(1)
		s.frng = rand.New(s.fsrc)
	}
	return s.frng
}

// Corruptible is implemented by messages that can model in-flight bit
// errors. Corrupt must return a mutated copy and leave the receiver
// intact (the sender may hold a reference for retransmission); r is a
// random draw from the seeded fault RNG.
type Corruptible interface {
	Message
	Corrupt(r uint64) Message
}

// CorruptBytes flips one to three bits of b in place, chosen from the
// random word r, and returns b. It is the corruption primitive used
// by the injector; parsers' fuzz corpora seed from it so the fuzzer
// starts exactly where the simulator's corrupted frames live.
func CorruptBytes(b []byte, r uint64) []byte {
	if len(b) == 0 {
		return b
	}
	flips := 1 + int(r%3)
	x := r
	seen := make(map[uint64]bool, flips)
	for i := 0; i < flips; i++ {
		// splitmix64 step per draw; redraw on collision so two flips
		// never cancel on the same bit.
		var bit uint64
		for {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			bit = z % uint64(len(b)*8)
			if !seen[bit] {
				break
			}
		}
		seen[bit] = true
		b[bit/8] ^= 1 << (bit % 8)
	}
	return b
}

// Corrupt implements Corruptible for Bytes.
func (b Bytes) Corrupt(r uint64) Message {
	c := append(Bytes(nil), b...)
	CorruptBytes(c, r)
	return c
}

// ScheduleFlap takes the link down at time `at` and restores it after
// `down`. Frames already in flight are still delivered (they left the
// interface); sends during the outage are rejected.
func (s *Simulator) ScheduleFlap(l *Link, at, down Time) error {
	if _, err := s.Schedule(at, func() { l.SetUp(false) }); err != nil {
		return err
	}
	_, err := s.Schedule(at+down, func() { l.SetUp(true) })
	return err
}

// SchedulePartition cuts the network at time `at` and heals it after
// `dur`: every link with exactly one endpoint in group goes down, so
// group and its complement cannot exchange new frames until the heal.
func (s *Simulator) SchedulePartition(at, dur Time, group ...*Node) error {
	inGroup := make(map[*Node]bool, len(group))
	for _, n := range group {
		inGroup[n] = true
	}
	var cut []*Link
	for _, l := range s.links {
		if inGroup[l.a] != inGroup[l.b] {
			cut = append(cut, l)
		}
	}
	if _, err := s.Schedule(at, func() {
		for _, l := range cut {
			l.SetUp(false)
		}
	}); err != nil {
		return err
	}
	_, err := s.Schedule(at+dur, func() {
		for _, l := range cut {
			l.SetUp(true)
		}
	})
	return err
}
