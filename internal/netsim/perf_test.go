// Event-path performance and determinism regression tests: the event
// free-list must keep the schedule→execute cycle allocation-free at
// steady state, a stopped ticker must leave no residue in the queue,
// and serial execution must be a reproducible total order (the oracle
// the parsim differential tests build on).
package netsim

import (
	"fmt"
	"testing"
	"time"

	"discs/internal/obs"
)

// TestEventPathZeroAlloc pins the free-list: after warm-up, scheduling
// and executing an event reuses pooled event structs and the heap's
// backing array — zero allocations per cycle.
func TestEventPathZeroAlloc(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		if _, err := s.Schedule(s.Now()+1, fn); err != nil {
			t.Fatal(err)
		}
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.Schedule(s.Now()+1, fn); err != nil {
			t.Fatal(err)
		}
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+execute allocates %.1f/op at steady state, want 0", allocs)
	}
}

// TestTimerStopRecycleZeroAlloc covers the arm→stop cycle (retry
// timers re-arm constantly): lazily-cancelled events must be recycled
// through the pool, not leaked to the allocator.
func TestTimerStopRecycleZeroAlloc(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		tm, err := s.Schedule(s.Now()+1, fn)
		if err != nil {
			t.Fatal(err)
		}
		tm.Stop()
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm, _ := s.Schedule(s.Now()+1, fn)
		tm.Stop()
		tm, _ = s.Schedule(s.Now()+1, fn)
		_ = tm
		s.Step() // pops the dead event, executes the live one
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("arm+stop+execute allocates %.1f/op at steady state, want 0", allocs)
	}
}

// BenchmarkEventPath reports the steady-state cost of one
// schedule→execute cycle (run with -benchmem to see 0 allocs/op).
func BenchmarkEventPath(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(s.Now()+1, fn)
	}
	for s.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.Now()+1, fn)
		s.Step()
	}
}

// TestTickerStopQueueDepthEager: stopping a ticker must remove its
// pending event from the heap immediately — visible as MetricQueueDepth
// dropping to zero at the Stop call, not at the event's would-be fire
// time.
func TestTickerStopQueueDepthEager(t *testing.T) {
	s := New()
	ticks := 0
	tk := s.EveryBackground(time.Millisecond, func() { ticks++ })
	s.Run(2500 * time.Microsecond)
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
	if got := s.Stats().GetGauge(MetricQueueDepth); got != 1 {
		t.Fatalf("queue depth before Stop = %d, want 1 (the armed tick)", got)
	}
	tk.Stop()
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after Stop = %d, want 0", got)
	}
	if got := s.Stats().GetGauge(MetricQueueDepth); got != 0 {
		t.Fatalf("queue depth after Stop = %d, want 0 (eager cancel)", got)
	}
}

// buildDeterminismRun drives one serial simulation mixing everything
// that could perturb ordering — duplicate timestamps across nodes,
// background cascades, fault-injected links (loss, dup, jitter), a
// link flap — and returns the execution trace.
func buildDeterminismRun(t *testing.T) []obs.Event {
	t.Helper()
	s := New()
	s.Registry().SetTraceCapacity(1 << 15)
	tr := s.Registry().Tracer()
	s.SetExecTrace(tr)

	const n = 8
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := s.AddNode(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	var links []*Link
	for i := range nodes {
		for j := i + 1; j < n; j += 2 {
			l, err := s.Connect(nodes[i], nodes[j], time.Millisecond*Time(1+(i+j)%3))
			if err != nil {
				t.Fatal(err)
			}
			l.SetFaults(LinkFaults{Loss: 0.1, Dup: 0.1, JitterMax: 200 * time.Microsecond})
			links = append(links, l)
		}
	}
	s.SeedFaults(11)
	for i := range nodes {
		nd := nodes[i]
		nd.SetHandler(HandlerFunc(func(from *Node, l *Link, msg Message) {
			if msg.Size() > 1 {
				for _, nl := range nd.Links() {
					nl.Send(nd, Bytes(make([]byte, msg.Size()-1)))
				}
			}
		}))
		// Duplicate-timestamp timers on every node.
		for k := 0; k < 2; k++ {
			nd.After(2*time.Millisecond, func() {})
		}
		// Background cascade.
		nd.AfterBackground(4*time.Millisecond, func() {
			for _, nl := range nd.Links() {
				nl.Send(nd, Bytes{7})
			}
		})
	}
	if err := s.ScheduleFlap(links[0], 3*time.Millisecond, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		nodes[i].SendTo(nodes[(i+1)%n], Bytes(make([]byte, 3)))
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	s.Run(s.Now() + 10*time.Millisecond)
	return append([]obs.Event(nil), tr.Events()...)
}

// TestSerialDeterminismTrace is the determinism property test: two
// identical serial runs execute the exact same event sequence. This is
// the oracle the parsim differential tests
// (internal/parsim.TestDeterminismAcrossWorkers) reuse.
func TestSerialDeterminismTrace(t *testing.T) {
	a := buildDeterminismRun(t)
	b := buildDeterminismRun(t)
	if len(a) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
