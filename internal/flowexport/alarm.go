package flowexport

import (
	"discs/internal/core"
)

// Tap adapts a Collector to the border router's alarm-sample callback
// (§IV-F): install the returned function as BorderRouter.OnAlarm and
// the collector aggregates identified spoofing packets into flow
// records. proto is recorded on every flow key; the data-plane verdict
// path does not surface the transport protocol, and the controller's
// analysis groups by source AS anyway.
func Tap(c *Collector, proto uint8, sampleBytes int) func(core.AlarmSample) {
	return func(s core.AlarmSample) {
		c.Observe(Key{Src: s.Src, Dst: s.Dst, Proto: proto, SrcAS: s.SrcAS}, sampleBytes, s.When)
	}
}
