// Package flowexport implements the sampled flow reporting that alarm
// mode rides on (§IV-F of the paper: identified spoofing packets "are
// not dropped immediately, but sampled and sent to the controller
// using NetFlow or sFlow for further analysis").
//
// It provides a deterministic 1-in-N packet sampler, a flow cache
// keyed by the usual 5-tuple-at-AS-granularity (src, dst, protocol,
// source AS), export with configurable active/inactive timeouts, and a
// compact binary wire format for the router→controller export path.
package flowexport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"discs/internal/topology"
)

// Key identifies a flow in the cache.
type Key struct {
	Src, Dst netip.Addr
	Proto    uint8
	// SrcAS is the AS the (possibly spoofed) source address maps to —
	// the dimension the controller's attack analysis groups by.
	SrcAS topology.ASN
}

// Record is one exported flow.
type Record struct {
	Key
	Packets uint64
	Bytes   uint64
	First   time.Time
	Last    time.Time
}

// Collector samples packets and aggregates them into flow records.
// It is deterministic: the n-th observed packet is sampled iff
// n ≡ 0 (mod SampleRate), which keeps simulations reproducible and
// matches systematic count-based sampling (sFlow's default mode is
// random; NetFlow's sampled mode is systematic).
type Collector struct {
	// SampleRate is the 1-in-N sampling ratio; 1 samples everything.
	SampleRate int
	// ActiveTimeout bounds how long a busy flow stays unexported.
	ActiveTimeout time.Duration
	// InactiveTimeout expires idle flows.
	InactiveTimeout time.Duration
	// MaxFlows bounds cache memory; when full, new flows are dropped
	// and counted in EvictedNew (routers shed load, not crash).
	MaxFlows int

	flows      map[Key]*Record
	seen       uint64
	Sampled    uint64
	EvictedNew uint64
}

// NewCollector builds a collector with the given sampling ratio and
// NetFlow-ish default timeouts (30s active / 15s inactive).
func NewCollector(sampleRate int) (*Collector, error) {
	if sampleRate < 1 {
		return nil, fmt.Errorf("flowexport: sample rate %d < 1", sampleRate)
	}
	return &Collector{
		SampleRate:      sampleRate,
		ActiveTimeout:   30 * time.Second,
		InactiveTimeout: 15 * time.Second,
		MaxFlows:        65536,
		flows:           make(map[Key]*Record),
	}, nil
}

// Observe offers one packet to the sampler; it reports whether the
// packet was sampled into the cache.
func (c *Collector) Observe(k Key, size int, now time.Time) bool {
	c.seen++
	if c.seen%uint64(c.SampleRate) != 0 {
		return false
	}
	c.Sampled++
	r, ok := c.flows[k]
	if !ok {
		if len(c.flows) >= c.MaxFlows {
			c.EvictedNew++
			return false
		}
		r = &Record{Key: k, First: now}
		c.flows[k] = r
	}
	r.Packets++
	r.Bytes += uint64(size)
	r.Last = now
	return true
}

// Export drains flows that hit a timeout (or all flows when force is
// set), sorted deterministically.
func (c *Collector) Export(now time.Time, force bool) []Record {
	var out []Record
	for k, r := range c.flows {
		if force ||
			now.Sub(r.First) >= c.ActiveTimeout ||
			now.Sub(r.Last) >= c.InactiveTimeout {
			out = append(out, *r)
			delete(c.flows, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src.Less(out[j].Src)
		}
		if out[i].Dst != out[j].Dst {
			return out[i].Dst.Less(out[j].Dst)
		}
		return out[i].Proto < out[j].Proto
	})
	return out
}

// Pending returns the number of flows in the cache.
func (c *Collector) Pending() int { return len(c.flows) }

// --- wire format -----------------------------------------------------------

// The export datagram is a fixed header plus fixed-size records:
//
//	header:  magic "DFX1" | uint16 count
//	record:  16B src | 16B dst | 1B proto | 1B addr-family bits |
//	         4B srcAS | 8B packets | 8B bytes | 8B first(ns) | 8B last(ns)

var magic = [4]byte{'D', 'F', 'X', '1'}

const recordLen = 16 + 16 + 1 + 1 + 4 + 8 + 8 + 8 + 8

// Marshal encodes records into one export datagram.
func Marshal(records []Record) ([]byte, error) {
	if len(records) > 0xffff {
		return nil, fmt.Errorf("flowexport: %d records exceed datagram capacity", len(records))
	}
	buf := bytes.NewBuffer(make([]byte, 0, 6+len(records)*recordLen))
	buf.Write(magic[:])
	binary.Write(buf, binary.BigEndian, uint16(len(records)))
	for _, r := range records {
		if !r.Src.IsValid() || !r.Dst.IsValid() {
			return nil, errors.New("flowexport: invalid address in record")
		}
		src16 := r.Src.As16()
		dst16 := r.Dst.As16()
		buf.Write(src16[:])
		buf.Write(dst16[:])
		buf.WriteByte(r.Proto)
		var fam byte
		if r.Src.Is4() {
			fam |= 1
		}
		if r.Dst.Is4() {
			fam |= 2
		}
		buf.WriteByte(fam)
		binary.Write(buf, binary.BigEndian, uint32(r.SrcAS))
		binary.Write(buf, binary.BigEndian, r.Packets)
		binary.Write(buf, binary.BigEndian, r.Bytes)
		binary.Write(buf, binary.BigEndian, uint64(r.First.UnixNano()))
		binary.Write(buf, binary.BigEndian, uint64(r.Last.UnixNano()))
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes an export datagram.
func Unmarshal(b []byte) ([]Record, error) {
	if len(b) < 6 || !bytes.Equal(b[:4], magic[:]) {
		return nil, errors.New("flowexport: bad magic")
	}
	count := int(binary.BigEndian.Uint16(b[4:6]))
	if len(b) != 6+count*recordLen {
		return nil, fmt.Errorf("flowexport: length %d does not match %d records", len(b), count)
	}
	out := make([]Record, count)
	off := 6
	for i := range out {
		rec := b[off : off+recordLen]
		var src16, dst16 [16]byte
		copy(src16[:], rec[0:16])
		copy(dst16[:], rec[16:32])
		proto := rec[32]
		fam := rec[33]
		srcAS := binary.BigEndian.Uint32(rec[34:38])
		src := netip.AddrFrom16(src16)
		if fam&1 != 0 {
			src = src.Unmap()
			var a4 [4]byte
			copy(a4[:], src16[12:16])
			src = netip.AddrFrom4(a4)
		}
		dst := netip.AddrFrom16(dst16)
		if fam&2 != 0 {
			var a4 [4]byte
			copy(a4[:], dst16[12:16])
			dst = netip.AddrFrom4(a4)
		}
		out[i] = Record{
			Key:     Key{Src: src, Dst: dst, Proto: proto, SrcAS: topology.ASN(srcAS)},
			Packets: binary.BigEndian.Uint64(rec[38:46]),
			Bytes:   binary.BigEndian.Uint64(rec[46:54]),
			First:   time.Unix(0, int64(binary.BigEndian.Uint64(rec[54:62]))).UTC(),
			Last:    time.Unix(0, int64(binary.BigEndian.Uint64(rec[62:70]))).UTC(),
		}
		off += recordLen
	}
	return out, nil
}

// TopTalkers aggregates records by source AS and returns the heaviest
// senders — the controller's attack analysis primitive.
func TopTalkers(records []Record, n int) []struct {
	AS      topology.ASN
	Packets uint64
} {
	agg := map[topology.ASN]uint64{}
	for _, r := range records {
		agg[r.SrcAS] += r.Packets
	}
	type row struct {
		AS      topology.ASN
		Packets uint64
	}
	rows := make([]row, 0, len(agg))
	for as, p := range agg {
		rows = append(rows, row{as, p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Packets != rows[j].Packets {
			return rows[i].Packets > rows[j].Packets
		}
		return rows[i].AS < rows[j].AS
	})
	if n < len(rows) {
		rows = rows[:n]
	}
	out := make([]struct {
		AS      topology.ASN
		Packets uint64
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			AS      topology.ASN
			Packets uint64
		}{r.AS, r.Packets}
	}
	return out
}
