package flowexport

import (
	"strings"
	"testing"
	"time"
)

func labeledFixture() []LabeledRecord {
	return []LabeledRecord{
		{
			Record: Record{
				Key:     key("10.4.0.9", "10.3.1.1", 17, 4),
				Packets: 8, Bytes: 512,
				First: time.Unix(10, 0).UTC(), Last: time.Unix(12, 0).UTC(),
			},
			Scenario: "pulsewave", Phase: "pre", PhaseIdx: 0,
			Label: LabelDDoS, Delivered: 8, Dropped: 0,
		},
		{
			Record: Record{
				Key:     key("10.3.0.2", "10.6.9.9", 17, 3),
				Packets: 3, Bytes: 210,
				First: time.Unix(40, 0).UTC(), Last: time.Unix(41, 0).UTC(),
			},
			Scenario: "pulsewave", Phase: "post, \"quoted\"", PhaseIdx: 2,
			Label: LabelSDDoS, Delivered: 1, Dropped: 2,
		},
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	recs := labeledFixture()
	b, err := MarshalLabeled("pulsewave", recs)
	if err != nil {
		t.Fatal(err)
	}
	name, got, err := UnmarshalLabeled(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "pulsewave" || len(got) != 2 {
		t.Fatalf("decoded %q, %d records", name, len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestLabeledErrors(t *testing.T) {
	recs := labeledFixture()
	b, err := MarshalLabeled("s", recs)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point must fail cleanly, not panic.
	for n := 0; n < len(b); n++ {
		if _, _, err := UnmarshalLabeled(b[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	if _, _, err := UnmarshalLabeled(append(b, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, _, err := UnmarshalLabeled([]byte("DFX1")); err == nil {
		t.Error("v1 magic accepted")
	}
	if _, err := MarshalLabeled(strings.Repeat("x", 256), nil); err == nil {
		t.Error("oversized scenario name accepted")
	}
	long := recs[:1]
	long[0].Phase = strings.Repeat("p", 256)
	if _, err := MarshalLabeled("s", long); err == nil {
		t.Error("oversized phase name accepted")
	}
}

func TestWriteLabeledCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteLabeledCSV(&sb, labeledFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %d\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,phase_idx,phase,label,") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",ddos,") || !strings.Contains(lines[2], ",sddos,") {
		t.Errorf("labels missing:\n%s", sb.String())
	}
	// The phase name with a comma and quotes must arrive CSV-escaped.
	if !strings.Contains(lines[2], `"post, ""quoted"""`) {
		t.Errorf("quoting: %s", lines[2])
	}
}

func TestLabelString(t *testing.T) {
	for l, want := range map[Label]string{
		LabelBenign: "benign", LabelDDoS: "ddos", LabelSDDoS: "sddos",
		LabelProbe: "probe", Label(9): "Label(9)",
	} {
		if l.String() != want {
			t.Errorf("%d: %q", l, l.String())
		}
	}
}

// FuzzUnmarshalLabeled: arbitrary labeled datagrams must never panic,
// and accepted ones must survive a marshal/unmarshal round trip.
func FuzzUnmarshalLabeled(f *testing.F) {
	b, _ := MarshalLabeled("pulsewave", labeledFixture())
	f.Add(b)
	f.Add([]byte("DFX2\x00\x00\x00"))
	f.Add([]byte("DFX1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, recs, err := UnmarshalLabeled(data)
		if err != nil {
			return
		}
		out, err := MarshalLabeled(name, recs)
		if err != nil {
			t.Fatalf("decoded records fail to marshal: %v", err)
		}
		name2, recs2, err := UnmarshalLabeled(out)
		if err != nil {
			t.Fatalf("re-marshal fails to unmarshal: %v", err)
		}
		if name2 != name || len(recs2) != len(recs) {
			t.Fatal("round trip changed the dataset")
		}
	})
}
