package flowexport

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"discs/internal/topology"
)

var tbase = time.Unix(1000, 0).UTC()

func key(src, dst string, proto uint8, as topology.ASN) Key {
	return Key{
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		Proto: proto, SrcAS: as,
	}
}

func TestCollectorSampling(t *testing.T) {
	c, err := NewCollector(4)
	if err != nil {
		t.Fatal(err)
	}
	k := key("10.0.0.1", "10.1.0.1", 17, 100)
	sampled := 0
	for i := 0; i < 100; i++ {
		if c.Observe(k, 100, tbase) {
			sampled++
		}
	}
	if sampled != 25 || c.Sampled != 25 {
		t.Fatalf("sampled %d (counter %d), want 25", sampled, c.Sampled)
	}
	recs := c.Export(tbase, true)
	if len(recs) != 1 || recs[0].Packets != 25 || recs[0].Bytes != 2500 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestCollectorSampleEverything(t *testing.T) {
	c, _ := NewCollector(1)
	k := key("10.0.0.1", "10.1.0.1", 6, 1)
	for i := 0; i < 10; i++ {
		if !c.Observe(k, 1, tbase) {
			t.Fatal("rate-1 sampler skipped a packet")
		}
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestCollectorTimeouts(t *testing.T) {
	c, _ := NewCollector(1)
	c.ActiveTimeout = 10 * time.Second
	c.InactiveTimeout = 5 * time.Second

	busy := key("10.0.0.1", "10.1.0.1", 17, 1)
	idle := key("10.0.0.2", "10.1.0.1", 17, 2)
	c.Observe(idle, 1, tbase)
	for i := 0; i < 8; i++ {
		c.Observe(busy, 1, tbase.Add(time.Duration(i)*time.Second))
	}
	// At +8s: idle flow idle for 8s (> 5s) → exported; busy flow is 8s
	// old (< 10s active) and fresh → kept.
	recs := c.Export(tbase.Add(8*time.Second), false)
	if len(recs) != 1 || recs[0].SrcAS != 2 {
		t.Fatalf("export = %+v", recs)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	// At +11s: busy flow crosses the active timeout.
	recs = c.Export(tbase.Add(11*time.Second), false)
	if len(recs) != 1 || recs[0].SrcAS != 1 || recs[0].Packets != 8 {
		t.Fatalf("export = %+v", recs)
	}
}

func TestCollectorCacheBound(t *testing.T) {
	c, _ := NewCollector(1)
	c.MaxFlows = 3
	for i := 0; i < 10; i++ {
		k := key("10.0.0.1", "10.1.0.1", uint8(i), topology.ASN(i+1))
		c.Observe(k, 1, tbase)
	}
	if c.Pending() != 3 {
		t.Fatalf("pending = %d, want cap 3", c.Pending())
	}
	if c.EvictedNew != 7 {
		t.Fatalf("evicted = %d", c.EvictedNew)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	recs := []Record{
		{
			Key:     key("10.0.0.1", "192.0.2.9", 17, 64500),
			Packets: 123, Bytes: 45678,
			First: tbase, Last: tbase.Add(7 * time.Second),
		},
		{
			Key:     key("2001:db8::1", "2001:db8::2", 6, 1),
			Packets: 1, Bytes: 40,
			First: tbase, Last: tbase,
		},
		{
			// Mixed families.
			Key:     key("10.0.0.1", "2001:db8::2", 58, 7),
			Packets: 9, Bytes: 900,
			First: tbase, Last: tbase.Add(time.Millisecond),
		},
	}
	b, err := Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("xx")); err == nil {
		t.Fatal("short datagram accepted")
	}
	if _, err := Unmarshal([]byte("XXXX\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	b, _ := Marshal([]Record{{
		Key: key("10.0.0.1", "10.0.0.2", 1, 1), First: tbase, Last: tbase,
	}})
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("truncated datagram accepted")
	}
}

func TestMarshalInvalid(t *testing.T) {
	if _, err := Marshal([]Record{{}}); err == nil {
		t.Fatal("record with zero addresses accepted")
	}
}

func TestTopTalkers(t *testing.T) {
	recs := []Record{
		{Key: key("10.0.0.1", "10.9.0.1", 17, 100), Packets: 10},
		{Key: key("10.0.0.2", "10.9.0.1", 17, 100), Packets: 15},
		{Key: key("10.1.0.1", "10.9.0.1", 17, 200), Packets: 20},
		{Key: key("10.2.0.1", "10.9.0.1", 17, 300), Packets: 1},
	}
	top := TopTalkers(recs, 2)
	if len(top) != 2 || top[0].AS != 100 || top[0].Packets != 25 || top[1].AS != 200 {
		t.Fatalf("top = %+v", top)
	}
	// n larger than distinct ASes.
	if got := TopTalkers(recs, 10); len(got) != 3 {
		t.Fatalf("top-10 = %+v", got)
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary v4 records.
func TestPropertyWireRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, proto uint8, as uint32, pkts, bytesN uint64, firstSec, durSec uint16) bool {
		r := Record{
			Key: Key{
				Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst),
				Proto: proto, SrcAS: topology.ASN(as),
			},
			Packets: pkts, Bytes: bytesN,
			First: time.Unix(int64(firstSec), 0).UTC(),
			Last:  time.Unix(int64(firstSec)+int64(durSec), 0).UTC(),
		}
		b, err := Marshal([]Record{r})
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		return err == nil && len(got) == 1 && got[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExportDeterministicOrder(t *testing.T) {
	c, _ := NewCollector(1)
	keys := []Key{
		key("10.0.0.3", "10.9.0.1", 17, 3),
		key("10.0.0.1", "10.9.0.1", 17, 1),
		key("10.0.0.2", "10.9.0.1", 17, 2),
	}
	for _, k := range keys {
		c.Observe(k, 1, tbase)
	}
	recs := c.Export(tbase, true)
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Src.Less(recs[i].Src) {
			t.Fatalf("export not sorted: %+v", recs)
		}
	}
}
