package flowexport

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/core"
	"discs/internal/lpm"
	"discs/internal/packet"
	"discs/internal/topology"
)

// TestAlarmExportPipeline runs the full §IV-F reporting path: a victim
// border router in alarm mode samples identified spoofing packets into
// the collector, the export datagram crosses the wire, and the
// controller-side analysis pins the attack on the right source AS.
func TestAlarmExportPipeline(t *testing.T) {
	pfx := lpm.New[topology.ASN]()
	pfx.Insert(netip.MustParsePrefix("10.1.0.0/16"), 1) // peer
	pfx.Insert(netip.MustParsePrefix("10.2.0.0/16"), 2) // second peer
	pfx.Insert(netip.MustParsePrefix("10.3.0.0/16"), 3) // victim
	t0 := time.Unix(0, 0).UTC()
	v := netip.MustParsePrefix("10.3.0.0/16")

	tab := core.NewTables(3, pfx)
	tab.In[core.TableInDst].Install(v, core.OpCDPVerify, t0, time.Hour, 0)
	tab.Keys.SetVerifyKey(1, make([]byte, 16))
	tab.Keys.SetVerifyKey(2, make([]byte, 16))
	router, err := core.NewBorderRouterWithOptions(core.RouterOptions{Tables: tab, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	router.SetAlarmMode(true)

	coll, err := NewCollector(1)
	if err != nil {
		t.Fatal(err)
	}
	router.OnAlarm = Tap(coll, packet.ProtoUDP, 64)

	now := t0.Add(time.Minute)
	send := func(src string, n int) {
		for i := 0; i < n; i++ {
			p := &packet.IPv4{
				TTL: 64, Protocol: packet.ProtoUDP,
				Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr("10.3.0.1"),
				Payload: []byte{byte(i)},
			}
			if verdict := router.ProcessInbound(core.V4{P: p}, now); verdict != core.VerdictPassAlarm {
				t.Fatalf("verdict = %v", verdict)
			}
		}
	}
	send("10.1.0.66", 50) // heavy spoofing of peer AS1's space
	send("10.2.0.66", 5)  // light spoofing of peer AS2's space

	// Router exports; datagram crosses to the controller.
	wire, err := Marshal(coll.Export(now, true))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %+v", recs)
	}
	top := TopTalkers(recs, 1)
	if len(top) != 1 || top[0].AS != 1 || top[0].Packets != 50 {
		t.Fatalf("top talker = %+v, want AS1 with 50 packets", top)
	}
}

// TestAlarmSamplingReducesLoad: with 1-in-8 sampling the collector
// sees ~1/8 of the packets — the resource argument for sampled export.
func TestAlarmSamplingReducesLoad(t *testing.T) {
	coll, _ := NewCollector(8)
	tap := Tap(coll, packet.ProtoUDP, 64)
	s := core.AlarmSample{
		Src: netip.MustParseAddr("10.1.0.66"), Dst: netip.MustParseAddr("10.3.0.1"),
		SrcAS: 1, When: time.Unix(60, 0).UTC(),
	}
	for i := 0; i < 800; i++ {
		tap(s)
	}
	if coll.Sampled != 100 {
		t.Fatalf("sampled = %d, want 100", coll.Sampled)
	}
	recs := coll.Export(s.When, true)
	if len(recs) != 1 || recs[0].Packets != 100 {
		t.Fatalf("records = %+v", recs)
	}
}
