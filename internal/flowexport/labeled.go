package flowexport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Label is the ground-truth class of a flow record in a scenario
// dataset export. Unlike the live NetFlow-style path (which only sees
// packets), the scenario engine knows what every flow *was*, so
// exported datasets carry supervised labels for offline analysis and
// detector training.
type Label uint8

const (
	LabelBenign Label = iota // legitimate traffic
	LabelDDoS                // direct spoofing (d-DDoS)
	LabelSDDoS               // reflective spoofing (s-DDoS requests)
	LabelProbe               // adaptive-attacker path probes
)

func (l Label) String() string {
	switch l {
	case LabelBenign:
		return "benign"
	case LabelDDoS:
		return "ddos"
	case LabelSDDoS:
		return "sddos"
	case LabelProbe:
		return "probe"
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// LabeledRecord is a flow record annotated with its scenario
// provenance and ground truth: which scenario and phase generated it,
// what it really was, and what the defense did to it.
type LabeledRecord struct {
	Record
	// Scenario and Phase name the generating campaign step.
	Scenario string
	Phase    string
	PhaseIdx uint16
	Label    Label
	// Delivered and Dropped are the ground-truth packet fates across
	// the whole flow (unsampled — the engine sees every packet).
	Delivered uint64
	Dropped   uint64
}

// --- wire format v2 --------------------------------------------------------

// The labeled export datagram extends DFX1 with a scenario header and
// per-record label/fate fields:
//
//	header:  magic "DFX2" | u8 scenario-len | scenario bytes | u16 count
//	record:  DFX1 record | u16 phase-idx | u8 label |
//	         u8 phase-len | phase bytes | u64 delivered | u64 dropped

var magic2 = [4]byte{'D', 'F', 'X', '2'}

const labeledFixedLen = recordLen + 2 + 1 + 1 + 8 + 8

// MarshalLabeled encodes labeled records (all from one scenario) into
// one export datagram.
func MarshalLabeled(scenario string, records []LabeledRecord) ([]byte, error) {
	if len(scenario) > 0xff {
		return nil, fmt.Errorf("flowexport: scenario name %d bytes exceeds 255", len(scenario))
	}
	if len(records) > 0xffff {
		return nil, fmt.Errorf("flowexport: %d records exceed datagram capacity", len(records))
	}
	buf := bytes.NewBuffer(make([]byte, 0, 7+len(scenario)+len(records)*(labeledFixedLen+16)))
	buf.Write(magic2[:])
	buf.WriteByte(byte(len(scenario)))
	buf.WriteString(scenario)
	binary.Write(buf, binary.BigEndian, uint16(len(records)))
	for _, r := range records {
		base, err := Marshal([]Record{r.Record})
		if err != nil {
			return nil, err
		}
		buf.Write(base[6:]) // strip the DFX1 header, keep the record
		if len(r.Phase) > 0xff {
			return nil, fmt.Errorf("flowexport: phase name %d bytes exceeds 255", len(r.Phase))
		}
		binary.Write(buf, binary.BigEndian, r.PhaseIdx)
		buf.WriteByte(byte(r.Label))
		buf.WriteByte(byte(len(r.Phase)))
		buf.WriteString(r.Phase)
		binary.Write(buf, binary.BigEndian, r.Delivered)
		binary.Write(buf, binary.BigEndian, r.Dropped)
	}
	return buf.Bytes(), nil
}

// UnmarshalLabeled decodes a labeled export datagram.
func UnmarshalLabeled(b []byte) (scenario string, records []LabeledRecord, err error) {
	if len(b) < 5 || !bytes.Equal(b[:4], magic2[:]) {
		return "", nil, errors.New("flowexport: bad labeled magic")
	}
	off := 4
	nameLen := int(b[off])
	off++
	if len(b) < off+nameLen+2 {
		return "", nil, errors.New("flowexport: truncated labeled header")
	}
	scenario = string(b[off : off+nameLen])
	off += nameLen
	count := int(binary.BigEndian.Uint16(b[off : off+2]))
	off += 2
	records = make([]LabeledRecord, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < off+recordLen {
			return "", nil, fmt.Errorf("flowexport: record %d truncated", i)
		}
		// Reuse the DFX1 record decoder by prepending a 1-record header.
		hdr := append(append([]byte{}, magic[:]...), 0, 1)
		base, err := Unmarshal(append(hdr, b[off:off+recordLen]...))
		if err != nil {
			return "", nil, err
		}
		off += recordLen
		if len(b) < off+2+1+1 {
			return "", nil, fmt.Errorf("flowexport: record %d label truncated", i)
		}
		var r LabeledRecord
		r.Record = base[0]
		r.Scenario = scenario
		r.PhaseIdx = binary.BigEndian.Uint16(b[off : off+2])
		off += 2
		r.Label = Label(b[off])
		off++
		phaseLen := int(b[off])
		off++
		if len(b) < off+phaseLen+16 {
			return "", nil, fmt.Errorf("flowexport: record %d phase truncated", i)
		}
		r.Phase = string(b[off : off+phaseLen])
		off += phaseLen
		r.Delivered = binary.BigEndian.Uint64(b[off : off+8])
		r.Dropped = binary.BigEndian.Uint64(b[off+8 : off+16])
		off += 16
		records = append(records, r)
	}
	if off != len(b) {
		return "", nil, fmt.Errorf("flowexport: %d trailing bytes", len(b)-off)
	}
	return scenario, records, nil
}

// WriteLabeledCSV writes records as a CSV with a header row — the
// offline-analysis form of the dataset (one row per labeled flow).
// Times are nanoseconds of simulated time.
func WriteLabeledCSV(w io.Writer, records []LabeledRecord) error {
	if _, err := io.WriteString(w,
		"scenario,phase_idx,phase,label,src,dst,proto,src_as,packets,bytes,first_ns,last_ns,delivered,dropped\n"); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, r := range records {
		buf.Reset()
		buf.WriteString(csvQuote(r.Scenario))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(uint64(r.PhaseIdx), 10))
		buf.WriteByte(',')
		buf.WriteString(csvQuote(r.Phase))
		buf.WriteByte(',')
		buf.WriteString(r.Label.String())
		buf.WriteByte(',')
		buf.WriteString(r.Src.String())
		buf.WriteByte(',')
		buf.WriteString(r.Dst.String())
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(uint64(r.Proto), 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(uint64(r.SrcAS), 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(r.Packets, 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(r.Bytes, 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatInt(r.First.UnixNano(), 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatInt(r.Last.UnixNano(), 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(r.Delivered, 10))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatUint(r.Dropped, 10))
		buf.WriteByte('\n')
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// csvQuote quotes a field when it contains CSV metacharacters.
func csvQuote(s string) string {
	if !bytes.ContainsAny([]byte(s), ",\"\n\r") {
		return s
	}
	return `"` + string(bytes.ReplaceAll([]byte(s), []byte(`"`), []byte(`""`))) + `"`
}

// SimTime converts a simulated-clock offset to the dataset's absolute
// time base (the same Unix-epoch mapping core.System.Now uses), for
// dataset builders that stamp records from a simulated clock.
func SimTime(at time.Duration) time.Time { return time.Unix(0, 0).UTC().Add(at) }
