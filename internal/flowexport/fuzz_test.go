package flowexport

import (
	"testing"
	"time"
)

// FuzzUnmarshal: arbitrary export datagrams must never panic, and
// accepted ones must re-marshal byte-identically.
func FuzzUnmarshal(f *testing.F) {
	recs := []Record{{
		Key:     key("10.0.0.1", "192.0.2.9", 17, 64500),
		Packets: 12, Bytes: 3400,
		First: time.Unix(100, 0).UTC(), Last: time.Unix(107, 0).UTC(),
	}}
	b, _ := Marshal(recs)
	f.Add(b)
	f.Add([]byte("DFX1\x00\x00"))
	f.Add([]byte("nope"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(got)
		if err != nil {
			t.Fatalf("decoded records fail to marshal: %v", err)
		}
		again, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshal fails to unmarshal: %v", err)
		}
		if len(again) != len(got) {
			t.Fatal("record count changed across round trip")
		}
	})
}
