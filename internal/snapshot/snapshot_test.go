package snapshot

import (
	"bytes"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/parsim"
	"discs/internal/topology"
)

// buildWorld constructs a small converged network: a 3-tier chain with
// a peering edge, every AS originating its prefixes.
//
//	1 (tier-1) ─ customers 2, 3; 2 ─ customer 4; 2 ~ 3 peers
func buildWorld(t testing.TB, shards, workers int) *World {
	t.Helper()
	topo := topology.New()
	prefixes := map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	}
	for _, asn := range []topology.ASN{1, 2, 3, 4} {
		if _, err := topo.AddAS(asn); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(prefixes[asn])); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b topology.ASN, rel topology.Relationship) {
		t.Helper()
		if err := topo.Link(a, b, rel); err != nil {
			t.Fatal(err)
		}
	}
	link(2, 1, topology.CustomerToProvider)
	link(3, 1, topology.CustomerToProvider)
	link(4, 2, topology.CustomerToProvider)
	link(2, 3, topology.PeerToPeer)

	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	world := &World{Net: net}
	if shards > 0 {
		net.AssignShards(shards)
		eng, err := parsim.New(net.Sim, parsim.Options{Shards: shards, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		world.Eng = eng
	}
	net.Sim.SeedFaults(7)
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return world
}

func encode(t testing.TB, world *World) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, world); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestNetworkRoundTrip(t *testing.T) {
	world := buildWorld(t, 0, 0)
	img, err := Read(bytes.NewReader(encode(t, world)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(img, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Structural identity.
	if got.Net.Sim.NumNodes() != world.Net.Sim.NumNodes() {
		t.Fatalf("nodes %d, want %d", got.Net.Sim.NumNodes(), world.Net.Sim.NumNodes())
	}
	if got.Net.Sim.Now() != world.Net.Sim.Now() {
		t.Fatalf("clock %v, want %v", got.Net.Sim.Now(), world.Net.Sim.Now())
	}
	// Routing state: every speaker's KnownAds and Loc-RIB agree.
	for _, asn := range world.Net.Topo.ASNs() {
		a, b := world.Net.Speakers[asn], got.Net.Speakers[asn]
		for _, p := range world.Net.Topo.AS(asn).Prefixes {
			ra, rb := a.LocRib(p), b.LocRib(p)
			if (ra == nil) != (rb == nil) {
				t.Fatalf("AS%d LocRib(%v) presence differs", asn, p)
			}
		}
		if len(a.KnownAds()) != len(b.KnownAds()) {
			t.Fatalf("AS%d KnownAds %d, want %d", asn, len(b.KnownAds()), len(a.KnownAds()))
		}
	}
	// NextHop works on the restored topology.
	if _, ok := got.Net.Topo.NextHop(4, 3); !ok {
		t.Fatal("restored topology has no route 4->3")
	}
	// Counters carried over.
	a, b := world.Net.Sim.Stats(), got.Net.Sim.Stats()
	if a.Get("delivered") != b.Get("delivered") {
		t.Fatalf("delivered %d, want %d", b.Get("delivered"), a.Get("delivered"))
	}
}

func TestSystemRoundTrip(t *testing.T) {
	world := buildWorld(t, 2, 2)
	cfg := core.DefaultConfig()
	sys := core.NewSystem(world.Net, cfg)
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	vc := sys.Controllers[3]
	if _, err := vc.Invoke(core.Invocation{
		Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	world.Sys = sys

	img, err := Read(bytes.NewReader(encode(t, world)))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Has(SecCore) || !img.Has(SecParsim) {
		t.Fatal("system image missing core/parsim sections")
	}
	got, err := Restore(img, Options{Workers: 2, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got.Eng != nil {
		defer got.Eng.Close()
	}
	if len(got.Sys.Controllers) != 2 {
		t.Fatalf("restored %d controllers, want 2", len(got.Sys.Controllers))
	}
	// The invoked DP window survived in the member router's Out-Dst
	// table (DP schedules destination-side stamping at the members).
	rt := got.Sys.Routers[2]
	if rt == nil || rt.Tables.In[core.TableOutDst].Len() == 0 {
		t.Fatal("restored member router lost its Out-Dst window")
	}
	// Recovery composes: restart + settle runs the journal replay.
	if err := got.Sys.RestartAll(); err != nil {
		t.Fatal(err)
	}
	if err := got.Sys.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := got.Sys.Stats().GetGauge("as3." + core.MetricCtrlPeersEstablished); got == 0 {
		t.Fatalf("victim controller re-established no peers after restore")
	}
}

func TestNotQuiescent(t *testing.T) {
	world := buildWorld(t, 0, 0)
	world.Net.Sim.After(time.Second, func() {})
	var buf bytes.Buffer
	if err := Write(&buf, world); !errors.Is(err, netsim.ErrNotQuiescent) {
		t.Fatalf("err = %v, want ErrNotQuiescent", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("refused checkpoint still wrote %d bytes", buf.Len())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	world := buildWorld(t, 0, 0)
	path := filepath.Join(t.TempDir(), "world.snap")
	if err := WriteFile(path, world); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A crash between write and rename must leave the old image whole.
	boom := errors.New("injected crash")
	writeFailpoint = func() error { return boom }
	defer func() { writeFailpoint = nil }()
	if err := WriteFile(path, world); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prev, after) {
		t.Fatal("crashed checkpoint clobbered the previous image")
	}
	// No temp litter.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after crashed write, want 1", len(ents))
	}
}

func TestCorruptionRejected(t *testing.T) {
	world := buildWorld(t, 0, 0)
	good := encode(t, world)

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 0xff
		var ve *VersionError
		if _, err := Read(bytes.NewReader(bad)); !errors.As(err, &ve) {
			t.Fatalf("err = %v, want VersionError", err)
		} else if ve.Got != 0xff {
			t.Fatalf("VersionError.Got = %d", ve.Got)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{5, 11, 13, len(good) / 2, len(good) - 1} {
			if _, err := Read(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// Flip a byte inside a section payload: checksum must catch it.
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x10
		var ce *ChecksumError
		if _, err := Read(bytes.NewReader(bad)); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want ChecksumError", err)
		}
	})
	t.Run("oversized-length", func(t *testing.T) {
		// Forge the first section's length to a huge value: must fail
		// as truncated/format error without a giant allocation.
		bad := append([]byte(nil), good...)
		for i := 0; i < 8; i++ {
			bad[14+i] = 0xff
		}
		_, err := Read(bytes.NewReader(bad))
		var fe *FormatError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
			t.Fatalf("err = %v, want ErrTruncated or FormatError", err)
		}
	})
}
