// Package snapshot is the crash-consistent checkpoint/restore layer:
// it frames every subsystem's Checkpoint seam (topology, bgp, netsim,
// parsim, core, wire, obs) into one versioned, length-prefixed,
// checksummed binary image, and restores an image into a runnable
// world.
//
// # Format
//
//	magic    [8]byte  "DISCSNAP"
//	version  uint16   little-endian (currently 1)
//	flags    uint16   reserved, must be zero
//	sections, repeated until EOF:
//	  kind    uint16   little-endian (Sec* constants)
//	  length  uint64   little-endian payload length
//	  payload [length]byte
//	  crc     uint32   CRC-32C (Castagnoli) over kind, length, payload
//
// Every structural defect maps to a typed error — ErrBadMagic,
// *VersionError, ErrTruncated, *ChecksumError, *FormatError — and the
// decoder never allocates ahead of the bytes it has actually read, so
// a forged multi-gigabyte length prefix fails with ErrTruncated
// instead of an OOM. WriteFile is atomic: the image is written to a
// temp file, synced, and renamed over the target, so a crash
// mid-checkpoint leaves the previous image intact.
//
// # Checkpoint points
//
// Two world shapes serialize, distinguished by which sections exist:
//
//   - Converged network (no SecCore): topology + RIBs + clocks. This
//     is the bit-identity restore point — the event queue is empty, so
//     restore reproduces the exact pre-deploy state and any program
//     run afterwards (deploy, attack, crash campaigns) is
//     bit-identical to a straight-through run.
//
//   - Deployed system (SecCore present): additionally the deploy
//     ledger, campaign journals, resumption secrets and router
//     function tables. Restore rebuilds controllers from durable state
//     only and composes with the existing crash-recovery machinery:
//     call System.RestartAll + Settle to re-drive journal replay, then
//     run scenario cells from the warm image.
//
// Checkpoints require foreground quiescence (netsim.ErrNotQuiescent
// otherwise) and drop pending background events with crash semantics;
// the restart path re-arms heartbeats and purge timers.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/parsim"
	"discs/internal/snapcodec"
	"discs/internal/topology"
	"discs/internal/wire"
)

// Version is the current image format version.
const Version = 1

var magic = [8]byte{'D', 'I', 'S', 'C', 'S', 'N', 'A', 'P'}

// Section kinds.
const (
	SecMeta   uint16 = 1
	SecTopo   uint16 = 2
	SecBGP    uint16 = 3
	SecNetsim uint16 = 4
	SecParsim uint16 = 5
	SecObs    uint16 = 6
	SecCore   uint16 = 7
	SecWire   uint16 = 8
)

// maxSectionLen rejects absurd length prefixes outright; anything
// below it is still read incrementally, so memory is bounded by the
// actual input size either way.
const maxSectionLen = 1 << 34

// Typed decode errors. Every way an image can be bad maps to one of
// these — a corrupt or truncated image is always a clean error, never
// a panic or a silently diverging world.
var (
	// ErrBadMagic: the input is not a DISCS snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrTruncated: the input ends mid-header or mid-section.
	ErrTruncated = errors.New("snapshot: truncated image")
)

// VersionError reports an image written by an incompatible format
// version.
type VersionError struct{ Got uint16 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d, this build reads %d", e.Got, Version)
}

// ChecksumError reports a section whose CRC-32C does not match — a
// bit-flipped or otherwise corrupted image.
type ChecksumError struct{ Kind uint16 }

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot: section %d checksum mismatch", e.Kind)
}

// FormatError reports a structurally malformed image or section.
type FormatError struct {
	Section string
	Err     error
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: malformed %s section: %v", e.Section, e.Err)
}
func (e *FormatError) Unwrap() error { return e.Err }

func secName(kind uint16) string {
	switch kind {
	case SecMeta:
		return "meta"
	case SecTopo:
		return "topology"
	case SecBGP:
		return "bgp"
	case SecNetsim:
		return "netsim"
	case SecParsim:
		return "parsim"
	case SecObs:
		return "obs"
	case SecCore:
		return "core"
	case SecWire:
		return "wire"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// World is the set of live objects a checkpoint covers. Net is
// required; Eng, Sys and Data are optional and control which sections
// the image carries.
type World struct {
	Net  *bgp.Network
	Eng  *parsim.Engine // parallel engine, nil for serial runs
	Sys  *core.System   // deployed system, nil for network-only images
	Data *wire.DataNet  // packet data plane, nil when absent
}

// Image is a decoded container: version plus verified raw sections.
type Image struct {
	Version  uint16
	sections map[uint16][]byte
}

// Section returns the raw payload of a section kind, or nil.
func (img *Image) Section(kind uint16) []byte { return img.sections[kind] }

// Has reports whether the image carries a section.
func (img *Image) Has(kind uint16) bool { return img.sections[kind] != nil }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section serializes one layer seam into an in-memory payload.
func section(fill func(*snapcodec.Writer) error) ([]byte, error) {
	var buf bytes.Buffer
	w := snapcodec.NewWriter(&buf)
	if err := fill(w); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeSection(w io.Writer, kind uint16, payload []byte) error {
	var hdr [10]byte
	hdr[0], hdr[1] = byte(kind), byte(kind>>8)
	for i := 0; i < 8; i++ {
		hdr[2+i] = byte(uint64(len(payload)) >> (8 * i))
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	for i := 0; i < 4; i++ {
		tail[i] = byte(crc >> (8 * i))
	}
	_, err := w.Write(tail[:])
	return err
}

// linkDelayOf picks a representative link delay for rebuilding the
// network skeleton; per-link delays are restored exactly by the netsim
// section afterwards.
func linkDelayOf(net *bgp.Network) time.Duration {
	if links := net.Sim.Links(); len(links) > 0 {
		return links[0].Delay
	}
	return time.Millisecond
}

// Write serializes the world into w. The world must be foreground-
// quiescent (run Settle/RunAll first); netsim.ErrNotQuiescent
// otherwise. Write does not mutate the world — the live run can simply
// continue afterwards.
func Write(w io.Writer, world *World) error {
	if world == nil || world.Net == nil {
		return errors.New("snapshot: nil world or network")
	}
	type sec struct {
		kind uint16
		fill func(*snapcodec.Writer) error
	}
	secs := []sec{
		{SecMeta, func(sw *snapcodec.Writer) error {
			sw.Duration(linkDelayOf(world.Net))
			sw.Bool(world.Eng != nil)
			sw.Bool(world.Sys != nil)
			sw.Bool(world.Data != nil)
			return sw.Err()
		}},
		{SecTopo, world.Net.Topo.Checkpoint},
		{SecBGP, world.Net.Checkpoint},
	}
	if world.Sys != nil {
		secs = append(secs, sec{SecCore, world.Sys.Checkpoint})
	}
	if world.Data != nil {
		secs = append(secs, sec{SecWire, world.Data.Checkpoint})
	}
	secs = append(secs, sec{SecNetsim, world.Net.Sim.Checkpoint})
	if world.Eng != nil {
		secs = append(secs, sec{SecParsim, world.Eng.Checkpoint})
	}
	reg := world.Net.Sim.Registry()
	if world.Sys != nil {
		reg = world.Sys.Registry()
	}
	secs = append(secs, sec{SecObs, func(sw *snapcodec.Writer) error {
		writeObs(sw, reg.Snapshot())
		return sw.Err()
	}})

	// Quiescence is checked by the netsim/parsim seams; build every
	// payload before emitting the first byte so a refused checkpoint
	// writes nothing.
	payloads := make([][]byte, len(secs))
	for i, s := range secs {
		p, err := section(s.fill)
		if err != nil {
			return err
		}
		payloads[i] = p
	}

	var hdr [12]byte
	copy(hdr[:8], magic[:])
	hdr[8], hdr[9] = byte(Version), byte(Version>>8)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, s := range secs {
		if err := writeSection(w, s.kind, payloads[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeFailpoint, when non-nil, injects a failure between writing the
// temp file and renaming it into place — the white-box hook the
// crash-mid-checkpoint test uses to prove the previous image survives.
var writeFailpoint func() error

// WriteFile writes the image atomically: temp file in the same
// directory, fsync, rename. A crash (or injected failure) at any point
// leaves any previous image at path untouched.
func WriteFile(path string, world *World) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, world); err != nil {
		tmp.Close()
		return err
	}
	if writeFailpoint != nil {
		if err := writeFailpoint(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Read decodes and verifies a container: magic, version, and every
// section's length and checksum. It does not touch any live state;
// pass the result to Restore.
func Read(r io.Reader) (*Image, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrTruncated
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	version := uint16(hdr[8]) | uint16(hdr[9])<<8
	if version != Version {
		return nil, &VersionError{Got: version}
	}
	if hdr[10] != 0 || hdr[11] != 0 {
		return nil, &FormatError{Section: "header", Err: errors.New("nonzero reserved flags")}
	}

	img := &Image{Version: version, sections: make(map[uint16][]byte)}
	for {
		var shdr [10]byte
		if _, err := io.ReadFull(r, shdr[:]); err != nil {
			if err == io.EOF {
				return img, nil
			}
			return nil, ErrTruncated
		}
		kind := uint16(shdr[0]) | uint16(shdr[1])<<8
		var length uint64
		for i := 0; i < 8; i++ {
			length |= uint64(shdr[2+i]) << (8 * i)
		}
		if length > maxSectionLen {
			return nil, &FormatError{Section: secName(kind), Err: fmt.Errorf("length %d exceeds limit", length)}
		}
		if img.sections[kind] != nil {
			return nil, &FormatError{Section: secName(kind), Err: errors.New("duplicate section")}
		}
		// Incremental copy: allocation grows with bytes actually read,
		// so a forged length on a short input fails as ErrTruncated
		// without a large up-front allocation.
		var buf bytes.Buffer
		if n, err := io.CopyN(&buf, r, int64(length)); err != nil || uint64(n) != length {
			return nil, ErrTruncated
		}
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return nil, ErrTruncated
		}
		want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
		crc := crc32.Checksum(shdr[:], castagnoli)
		crc = crc32.Update(crc, castagnoli, buf.Bytes())
		if crc != want {
			return nil, &ChecksumError{Kind: kind}
		}
		img.sections[kind] = buf.Bytes()
	}
}

// ReadFile reads and verifies an image from disk.
func ReadFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Options parameterizes Restore with the state that is scenario code,
// not world state: worker count, and — for system images — the same
// core.Config the original run used (configs carry callbacks and
// registries, so they do not serialize; bit-identity requires passing
// the same one).
type Options struct {
	// Workers drives the restored parallel engine when the image
	// carries a parsim section (shard count comes from the image;
	// determinism is worker-count independent). Ignored for serial
	// images.
	Workers int
	// Config is the system configuration for images carrying a core
	// section. Zero value = core.DefaultConfig().
	Config *core.Config
	// Wire is the data-plane configuration for images carrying a wire
	// section. Zero value = wire.DefaultConfig().
	Wire *wire.Config
}

// Restore rebuilds a runnable world from a verified image. For system
// images, complete recovery with world.Sys.RestartAll() followed by
// Settle — the same journal-replay path a crashed controller takes.
func Restore(img *Image, opt Options) (*World, error) {
	need := func(kind uint16) (*snapcodec.Reader, error) {
		b := img.Section(kind)
		if b == nil {
			return nil, &FormatError{Section: secName(kind), Err: errors.New("section missing")}
		}
		return snapcodec.NewReader(b), nil
	}

	mr, err := need(SecMeta)
	if err != nil {
		return nil, err
	}
	linkDelay := mr.Duration()
	hasEng := mr.Bool()
	hasSys := mr.Bool()
	hasData := mr.Bool()
	if err := mr.Done(); err != nil {
		return nil, &FormatError{Section: "meta", Err: err}
	}
	if linkDelay < 0 {
		return nil, &FormatError{Section: "meta", Err: errors.New("negative link delay")}
	}

	tr, err := need(SecTopo)
	if err != nil {
		return nil, err
	}
	topo, warm, err := topology.RestoreTopology(tr)
	if err != nil {
		return nil, &FormatError{Section: "topology", Err: err}
	}
	if err := tr.Done(); err != nil {
		return nil, &FormatError{Section: "topology", Err: err}
	}
	// Re-warm the route-tree cache before any metrics are published,
	// so warming does not perturb restored hit/miss counters. A nil
	// warm list means the cache did not exist at checkpoint time, and
	// WarmRoutes would instantiate it — skip, so the capacity gauge
	// stays identical to a run that never touched the cache.
	if warm != nil {
		topo.WarmRoutes(warm, 0)
	}

	net, err := bgp.BuildNetwork(topo, linkDelay)
	if err != nil {
		return nil, err
	}

	world := &World{Net: net}
	if hasEng {
		// Peek the shard count now — the engine must exist (and shard
		// assignment be final) before the deploy replay creates nodes —
		// but consume the full section later, once the world is built.
		pr, err := need(SecParsim)
		if err != nil {
			return nil, err
		}
		shards := int(pr.Uvarint())
		if pr.Err() != nil || shards <= 0 {
			return nil, &FormatError{Section: "parsim", Err: errors.New("invalid shard count")}
		}
		net.AssignShards(shards)
		eng, err := parsim.New(net.Sim, parsim.Options{Shards: shards, Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
		world.Eng = eng
	}

	br, err := need(SecBGP)
	if err != nil {
		return nil, err
	}
	if err := net.RestoreCheckpoint(br); err != nil {
		return nil, &FormatError{Section: "bgp", Err: err}
	}
	if err := br.Done(); err != nil {
		return nil, &FormatError{Section: "bgp", Err: err}
	}

	if hasSys {
		cfg := core.DefaultConfig()
		if opt.Config != nil {
			cfg = *opt.Config
		}
		sys := core.NewSystem(net, cfg)
		cr, err := need(SecCore)
		if err != nil {
			return nil, err
		}
		if err := sys.RestoreCheckpoint(cr); err != nil {
			return nil, &FormatError{Section: "core", Err: err}
		}
		if err := cr.Done(); err != nil {
			return nil, &FormatError{Section: "core", Err: err}
		}
		world.Sys = sys
	}

	if hasData {
		if world.Sys == nil {
			return nil, &FormatError{Section: "wire", Err: errors.New("wire section without core section")}
		}
		wcfg := wire.DefaultConfig()
		if opt.Wire != nil {
			wcfg = *opt.Wire
		}
		dn, err := wire.New(world.Sys, wcfg)
		if err != nil {
			return nil, err
		}
		wr, err := need(SecWire)
		if err != nil {
			return nil, err
		}
		if err := dn.RestoreCheckpoint(wr); err != nil {
			return nil, &FormatError{Section: "wire", Err: err}
		}
		if err := wr.Done(); err != nil {
			return nil, &FormatError{Section: "wire", Err: err}
		}
		world.Data = dn
	}

	// Node and link tables are complete now; restore clocks, RNG
	// positions and per-link state.
	nr, err := need(SecNetsim)
	if err != nil {
		return nil, err
	}
	if err := net.Sim.RestoreCheckpoint(nr); err != nil {
		return nil, &FormatError{Section: "netsim", Err: err}
	}
	if err := nr.Done(); err != nil {
		return nil, &FormatError{Section: "netsim", Err: err}
	}
	if world.Eng != nil {
		pr := snapcodec.NewReader(img.Section(SecParsim))
		if err := world.Eng.RestoreCheckpoint(pr); err != nil {
			return nil, &FormatError{Section: "parsim", Err: err}
		}
		if err := pr.Done(); err != nil {
			return nil, &FormatError{Section: "parsim", Err: err}
		}
	}

	or, err := need(SecObs)
	if err != nil {
		return nil, err
	}
	snap, err := readObs(or)
	if err != nil {
		return nil, &FormatError{Section: "obs", Err: err}
	}
	reg := net.Sim.Registry()
	if world.Sys != nil {
		reg = world.Sys.Registry()
	}
	reg.Absorb(snap)
	return world, nil
}

// writeObs serializes a metrics snapshot (counters and gauges, sorted;
// histograms are diagnostic-only and restart empty).
func writeObs(w *snapcodec.Writer, s obs.Snapshot) {
	cnames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		cnames = append(cnames, name)
	}
	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(cnames)
	sort.Strings(gnames)
	w.Uvarint(uint64(len(cnames)))
	for _, name := range cnames {
		w.String(name)
		w.Uvarint(s.Counters[name])
	}
	w.Uvarint(uint64(len(gnames)))
	for _, name := range gnames {
		w.String(name)
		w.Varint(s.Gauges[name])
	}
}

func readObs(r *snapcodec.Reader) (obs.Snapshot, error) {
	s := obs.Snapshot{Counters: make(map[string]uint64)}
	nc := r.Count(2)
	for i := 0; i < nc; i++ {
		name := r.String()
		s.Counters[name] = r.Uvarint()
	}
	ng := r.Count(2)
	if ng > 0 {
		s.Gauges = make(map[string]int64, ng)
	}
	for i := 0; i < ng; i++ {
		name := r.String()
		s.Gauges[name] = r.Varint()
	}
	if err := r.Done(); err != nil {
		return obs.Snapshot{}, err
	}
	return s, nil
}
