package snapshot

import (
	"bytes"
	"testing"
)

// FuzzRead: arbitrary bytes through the image decoder must never
// panic or allocate unboundedly — corruption surfaces as a typed
// error. Valid images must decode and restore cleanly. Seeded like
// the core ctrl-frame corpus: one valid image plus the classic
// corruptions (truncation, bit flip, forged giant length prefix).
func FuzzRead(f *testing.F) {
	good := encode(f, buildWorld(f, 0, 0))
	f.Add(good)
	f.Add(good[:len(good)/3])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	forged := append([]byte(nil), good...)
	for i := 0; i < 8; i++ {
		forged[14+i] = 0xff // first section's length prefix → ~2^64
	}
	f.Add(forged)
	f.Add([]byte("DISCSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A structurally valid image must restore or fail cleanly —
		// Restore validates cross-section invariants with typed
		// errors, never a panic.
		world, err := Restore(img, Options{})
		if err != nil {
			return
		}
		if world.Eng != nil {
			world.Eng.Close()
		}
	})
}
