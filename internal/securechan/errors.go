package securechan

import "errors"

// Sentinel errors for the failure classes transport code needs to
// distinguish. Every error returned by the handshake, resumption and
// record paths wraps one of these (or is an I/O error from the entropy
// source), so callers classify with errors.Is instead of string
// matching:
//
//   - ErrBadFrame: a frame whose shape is wrong — truncated record,
//     hello/reply of the wrong length. The peer implementation is
//     broken or the bytes were mangled in transit; retrying the same
//     frame is pointless but re-driving the exchange is fine.
//   - ErrAuth: a frame that is well-formed but fails cryptographic
//     authentication — forged, corrupted, or keyed differently (e.g. a
//     resumption against a stale secret). The session or handshake it
//     belongs to cannot proceed.
//   - ErrReplay: a record at or behind the receive window. One
//     authentic record is delivered at most once; duplicates and
//     reordered stragglers surface here.
var (
	ErrBadFrame = errors.New("securechan: malformed frame")
	ErrAuth     = errors.New("securechan: authentication failed")
	ErrReplay   = errors.New("securechan: replay")
)
