package securechan

import "testing"

// FuzzOpen: arbitrary records against an established session must
// never panic and never be accepted (the only valid records come from
// the peer's Seal, which the fuzzer cannot forge without the key).
func FuzzOpen(f *testing.F) {
	client, server := handshakePair(f)
	valid := client.Seal([]byte("seed"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, Overhead))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Fresh receiving state per input so sequence numbers do not
		// couple inputs: re-handshake cheaply via resumption.
		r, err := NewResumer(server.ResumptionSecret(), detRand(1))
		if err != nil {
			t.Fatal(err)
		}
		reply, srv, err := ResumeRespond(server.ResumptionSecret(), r.Hello(), detRand(2))
		if err != nil {
			t.Fatal(err)
		}
		cli, err := r.Finish(reply)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Open(data); err == nil {
			// Only a record sealed by cli can open; the fuzzer would
			// need the session key to construct one.
			if plain, err2 := srv.Open(cli.Seal([]byte("x"))); err2 != nil || string(plain) != "x" {
				t.Fatal("session broken after accepting forged record")
			}
			t.Fatalf("forged record accepted: %x", data)
		}
	})
}

// FuzzHandshakeFrames: junk hello/reply frames must never panic the
// handshake functions.
func FuzzHandshakeFrames(f *testing.F) {
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	ini, _ := NewInitiator(alice, bob.Public(), detRand(3))
	f.Add(ini.Hello())
	reply, _, _ := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	f.Add(reply)
	f.Fuzz(func(t *testing.T, data []byte) {
		Respond(bob, alice.Public(), data, detRand(5))
		ini2, _ := NewInitiator(alice, bob.Public(), detRand(6))
		ini2.Finish(data)
	})
}

// handshakePair is a fuzz-friendly variant of the test helper.
func handshakePair(f *testing.F) (*Session, *Session) {
	alice, err := NewIdentity("a", detRand(1))
	if err != nil {
		f.Fatal(err)
	}
	bob, err := NewIdentity("b", detRand(2))
	if err != nil {
		f.Fatal(err)
	}
	ini, err := NewInitiator(alice, bob.Public(), detRand(3))
	if err != nil {
		f.Fatal(err)
	}
	reply, srv, err := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		f.Fatal(err)
	}
	cli, err := ini.Finish(reply)
	if err != nil {
		f.Fatal(err)
	}
	return cli, srv
}
