package securechan

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// detRand returns a deterministic entropy source for tests.
func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func handshake(t *testing.T) (*Session, *Session) {
	t.Helper()
	alice, err := NewIdentity("ctrl.as1", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewIdentity("ctrl.as2", detRand(2))
	if err != nil {
		t.Fatal(err)
	}
	ini, err := NewInitiator(alice, bob.Public(), detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	reply, serverSess, err := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	clientSess, err := ini.Finish(reply)
	if err != nil {
		t.Fatal(err)
	}
	return clientSess, serverSess
}

func TestHandshakeAndRecords(t *testing.T) {
	client, server := handshake(t)
	msg := []byte("invoke (v=10.0.0.0/24, f=DP, duration=24h)")
	rec := client.Seal(msg)
	if len(rec) != len(msg)+Overhead {
		t.Fatalf("record len = %d, want %d", len(rec), len(msg)+Overhead)
	}
	got, err := server.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// Reverse direction.
	rec2 := server.Seal([]byte("accepted"))
	got2, err := client.Open(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "accepted" {
		t.Fatalf("got %q", got2)
	}
}

func TestRecordConfidentiality(t *testing.T) {
	client, _ := handshake(t)
	msg := []byte("secret key material 0123456789abcdef")
	rec := client.Seal(msg)
	if bytes.Contains(rec, msg[:16]) {
		t.Fatal("plaintext visible in record")
	}
}

func TestRecordTamperDetected(t *testing.T) {
	client, server := handshake(t)
	rec := client.Seal([]byte("hello"))
	rec[9] ^= 1
	if _, err := server.Open(rec); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestReplayRejected(t *testing.T) {
	client, server := handshake(t)
	rec := client.Seal([]byte("one"))
	if _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestGapSkippedAndStaleRejected(t *testing.T) {
	// Loss tolerance: a record arriving after a gap (its predecessor
	// lost in the network) must open, and the predecessor — now behind
	// the receive window — must be rejected as a replay.
	client, server := handshake(t)
	r1 := client.Seal([]byte("one"))
	r2 := client.Seal([]byte("two"))
	got, err := server.Open(r2)
	if err != nil || string(got) != "two" {
		t.Fatalf("record after a gap rejected: %v", err)
	}
	if _, err := server.Open(r1); err == nil {
		t.Fatal("stale record accepted after the window advanced")
	}
	// The channel keeps working past the gap.
	r3 := client.Seal([]byte("three"))
	if got, err := server.Open(r3); err != nil || string(got) != "three" {
		t.Fatalf("channel dead after gap: %v", err)
	}
}

func TestShortRecordRejected(t *testing.T) {
	_, server := handshake(t)
	if _, err := server.Open(make([]byte, 5)); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestWrongStaticKeyFailsAuth(t *testing.T) {
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	mallory, _ := NewIdentity("m", detRand(66))
	// Mallory initiates pretending to be Alice (sends Alice's expected
	// identity to Bob but uses her own static key).
	ini, err := NewInitiator(mallory, bob.Public(), detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	// Bob believes he is talking to Alice.
	reply, _, err := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		t.Fatal(err) // Respond cannot detect this yet
	}
	// Mallory cannot finish: the static-static DH mismatches so the
	// transcript MAC fails.
	if _, err := ini.Finish(reply); err == nil {
		t.Fatal("impersonation succeeded")
	}
}

func TestWrongResponderDetected(t *testing.T) {
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	eve, _ := NewIdentity("e", detRand(99))
	// Alice initiates to Bob; Eve intercepts and answers.
	ini, _ := NewInitiator(alice, bob.Public(), detRand(3))
	reply, _, err := Respond(eve, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ini.Finish(reply); err == nil {
		t.Fatal("MITM responder accepted")
	}
}

func TestHandshakeFrameLengths(t *testing.T) {
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	ini, _ := NewInitiator(alice, bob.Public(), detRand(3))
	if len(ini.Hello()) != HelloLen {
		t.Fatalf("hello len = %d", len(ini.Hello()))
	}
	reply, _, err := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != ReplyLen {
		t.Fatalf("reply len = %d", len(reply))
	}
	// Bad frame lengths rejected.
	if _, _, err := Respond(bob, alice.Public(), reply, detRand(5)); err == nil {
		t.Fatal("Respond accepted wrong-length hello")
	}
	if _, err := ini.Finish(ini.Hello()); err == nil {
		t.Fatal("Finish accepted wrong-length reply")
	}
}

func TestSessionsDiffer(t *testing.T) {
	// Two handshakes between the same identities with different
	// ephemerals must produce different record keys (forward secrecy).
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	mk := func(seedI, seedR int64) *Session {
		ini, _ := NewInitiator(alice, bob.Public(), detRand(seedI))
		reply, _, err := Respond(bob, alice.Public(), ini.Hello(), detRand(seedR))
		if err != nil {
			t.Fatal(err)
		}
		s, err := ini.Finish(reply)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk(10, 11)
	s2 := mk(20, 21)
	r1 := s1.Seal([]byte("same message"))
	r2 := s2.Seal([]byte("same message"))
	if bytes.Equal(r1[8:], r2[8:]) {
		t.Fatal("two sessions produced identical ciphertexts")
	}
}

func TestByteCounters(t *testing.T) {
	client, server := handshake(t)
	rec := client.Seal(make([]byte, 100))
	server.Open(rec)
	if client.BytesSealed != uint64(len(rec)) || server.BytesOpened != uint64(len(rec)) {
		t.Fatalf("counters: sealed %d opened %d", client.BytesSealed, server.BytesOpened)
	}
}

// Property: Seal/Open round-trips arbitrary payloads in order.
func TestPropertySealOpen(t *testing.T) {
	client, server := handshake(t)
	f := func(msgs [][]byte) bool {
		if len(msgs) > 20 {
			msgs = msgs[:20]
		}
		for _, m := range msgs {
			got, err := server.Open(client.Seal(m))
			if err != nil || !bytes.Equal(got, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal1KB(b *testing.B) {
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	ini, _ := NewInitiator(alice, bob.Public(), detRand(3))
	reply, _, _ := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	sess, _ := ini.Finish(reply)
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		sess.Seal(msg)
	}
}

func BenchmarkHandshake(b *testing.B) {
	// Connection-setup rate underpins the §VI-C "147 SSL connections
	// per second" controller sizing.
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	rnd := detRand(3)
	for i := 0; i < b.N; i++ {
		ini, err := NewInitiator(alice, bob.Public(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		reply, _, err := Respond(bob, alice.Public(), ini.Hello(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ini.Finish(reply); err != nil {
			b.Fatal(err)
		}
	}
}

// errReader fails after n bytes, driving the entropy-error paths.
type errReader struct{ n int }

func (r *errReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errEntropy
	}
	take := len(p)
	if take > r.n {
		take = r.n
	}
	r.n -= take
	return take, nil
}

var errEntropy = &entropyErr{}

type entropyErr struct{}

func (*entropyErr) Error() string { return "entropy exhausted" }

func TestEntropyFailurePaths(t *testing.T) {
	if _, err := NewIdentity("x", &errReader{}); err == nil {
		t.Fatal("NewIdentity with dead entropy should fail")
	}
	alice, _ := NewIdentity("a", detRand(1))
	bob, _ := NewIdentity("b", detRand(2))
	if _, err := NewInitiator(alice, bob.Public(), &errReader{}); err == nil {
		t.Fatal("NewInitiator with dead entropy should fail")
	}
	// Enough entropy for the ephemeral key but not the nonce.
	if _, err := NewInitiator(alice, bob.Public(), &errReader{n: 32}); err == nil {
		t.Fatal("NewInitiator with partial entropy should fail")
	}
	ini, _ := NewInitiator(alice, bob.Public(), detRand(3))
	if _, _, err := Respond(bob, alice.Public(), ini.Hello(), &errReader{}); err == nil {
		t.Fatal("Respond with dead entropy should fail")
	}
	if _, err := NewResumer([16]byte{}, &errReader{}); err == nil {
		t.Fatal("NewResumer with dead entropy should fail")
	}
	if _, _, err := ResumeRespond([16]byte{}, make([]byte, ResumeHelloLen), &errReader{}); err == nil {
		t.Fatal("ResumeRespond with dead entropy should fail")
	}
}

func TestBadPeerKeys(t *testing.T) {
	alice, _ := NewIdentity("a", detRand(1))
	if _, err := NewInitiator(alice, []byte("short"), detRand(2)); err == nil {
		t.Fatal("bad peer static key accepted")
	}
	bob, _ := NewIdentity("b", detRand(3))
	ini, _ := NewInitiator(alice, bob.Public(), detRand(4))
	if _, _, err := Respond(bob, []byte("short"), ini.Hello(), detRand(5)); err == nil {
		t.Fatal("bad initiator static key accepted")
	}
	// Corrupted ephemeral key in the hello (wrong length).
	if _, _, err := Respond(bob, alice.Public(), make([]byte, HelloLen-1), detRand(6)); err == nil {
		t.Fatal("short hello accepted")
	}
}
