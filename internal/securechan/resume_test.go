package securechan

import (
	"bytes"
	"testing"
)

// fullHandshake establishes a full session pair for resumption tests.
func fullHandshake(t testing.TB) (client, server *Session) {
	alice, err := NewIdentity("a", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewIdentity("b", detRand(2))
	if err != nil {
		t.Fatal(err)
	}
	ini, err := NewInitiator(alice, bob.Public(), detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	reply, srv, err := Respond(bob, alice.Public(), ini.Hello(), detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := ini.Finish(reply)
	if err != nil {
		t.Fatal(err)
	}
	return cli, srv
}

func TestResumptionSecretShared(t *testing.T) {
	cli, srv := fullHandshake(t)
	if cli.ResumptionSecret() != srv.ResumptionSecret() {
		t.Fatal("ends derived different resumption secrets")
	}
	if cli.ResumptionSecret() == ([16]byte{}) {
		t.Fatal("resumption secret is zero")
	}
}

func TestResumeRoundTrip(t *testing.T) {
	cli, _ := fullHandshake(t)
	secret := cli.ResumptionSecret()

	r, err := NewResumer(secret, detRand(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hello()) != ResumeHelloLen {
		t.Fatalf("hello len = %d", len(r.Hello()))
	}
	reply, srv2, err := ResumeRespond(secret, r.Hello(), detRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != ResumeReplyLen {
		t.Fatalf("reply len = %d", len(reply))
	}
	cli2, err := r.Finish(reply)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("resumed record")
	got, err := srv2.Open(cli2.Seal(msg))
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("resumed session broken: %q %v", got, err)
	}
	back, err := cli2.Open(srv2.Seal([]byte("reply")))
	if err != nil || string(back) != "reply" {
		t.Fatalf("reverse direction broken: %q %v", back, err)
	}
}

func TestResumeWrongSecretFails(t *testing.T) {
	cli, _ := fullHandshake(t)
	secret := cli.ResumptionSecret()
	var wrong [16]byte
	wrong[0] = ^secret[0]

	r, _ := NewResumer(secret, detRand(10))
	reply, _, err := ResumeRespond(wrong, r.Hello(), detRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(reply); err == nil {
		t.Fatal("resumption with wrong responder secret accepted")
	}
}

func TestResumeFrameLengthValidation(t *testing.T) {
	cli, _ := fullHandshake(t)
	secret := cli.ResumptionSecret()
	if _, _, err := ResumeRespond(secret, make([]byte, 5), detRand(1)); err == nil {
		t.Fatal("short hello accepted")
	}
	r, _ := NewResumer(secret, detRand(2))
	if _, err := r.Finish(make([]byte, 3)); err == nil {
		t.Fatal("short reply accepted")
	}
}

func TestResumedSessionsAreFresh(t *testing.T) {
	cli, _ := fullHandshake(t)
	secret := cli.ResumptionSecret()
	mk := func(seedA, seedB int64) (*Session, *Session) {
		r, _ := NewResumer(secret, detRand(seedA))
		reply, srv, err := ResumeRespond(secret, r.Hello(), detRand(seedB))
		if err != nil {
			t.Fatal(err)
		}
		c, err := r.Finish(reply)
		if err != nil {
			t.Fatal(err)
		}
		return c, srv
	}
	c1, _ := mk(20, 21)
	c2, s2 := mk(30, 31)
	// Different nonces → different record keys: a record from session 1
	// must not open in session 2 (cross-session replay protection).
	rec := c1.Seal([]byte("same plaintext"))
	if _, err := s2.Open(rec); err == nil {
		t.Fatal("cross-session record accepted")
	}
	rec2 := c2.Seal([]byte("same plaintext"))
	if bytes.Equal(rec[8:], rec2[8:]) {
		t.Fatal("two resumed sessions produced identical ciphertext")
	}
	// Chained resumption: a resumed session yields its own secret.
	if c2.ResumptionSecret() == secret {
		t.Fatal("resumed session reuses the old secret")
	}
}

// BenchmarkResume vs BenchmarkHandshake quantifies the §VI-C session
// cache: resumption skips all ECDH operations.
func BenchmarkResume(b *testing.B) {
	cli, _ := fullHandshake(b)
	secret := cli.ResumptionSecret()
	rnd := detRand(5)
	for i := 0; i < b.N; i++ {
		r, err := NewResumer(secret, rnd)
		if err != nil {
			b.Fatal(err)
		}
		reply, _, err := ResumeRespond(secret, r.Hello(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Finish(reply); err != nil {
			b.Fatal(err)
		}
	}
}
