package securechan

import (
	"errors"
	"testing"
)

// TestErrorChains pins the sentinel wrapped by every error path of the
// handshake, resumption and record layers, so transport code can rely
// on errors.Is across refactors.
func TestErrorChains(t *testing.T) {
	alice, err := NewIdentity("ctrl.as1", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewIdentity("ctrl.as2", detRand(2))
	if err != nil {
		t.Fatal(err)
	}

	// Handshake frame-length errors.
	if _, _, err := Respond(bob, alice.Public(), make([]byte, HelloLen-1), detRand(3)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short hello: err = %v, want ErrBadFrame", err)
	}
	ini, err := NewInitiator(alice, bob.Public(), detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ini.Finish(make([]byte, ReplyLen+1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("long reply: err = %v, want ErrBadFrame", err)
	}

	// Handshake authentication: a reply MACed by the wrong responder
	// identity fails with ErrAuth.
	mallory, err := NewIdentity("ctrl.evil", detRand(5))
	if err != nil {
		t.Fatal(err)
	}
	forged, _, err := Respond(mallory, alice.Public(), ini.Hello(), detRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ini.Finish(forged); !errors.Is(err, ErrAuth) {
		t.Fatalf("forged reply: err = %v, want ErrAuth", err)
	}

	// Record layer: truncated, replayed, and corrupted records.
	client, server := handshake(t)
	if _, err := server.Open(make([]byte, Overhead-1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short record: err = %v, want ErrBadFrame", err)
	}
	rec := client.Seal([]byte("campaign"))
	if _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed record: err = %v, want ErrReplay", err)
	}
	bad := append([]byte(nil), client.Seal([]byte("campaign 2"))...)
	bad[len(bad)-1] ^= 0x80
	if _, err := server.Open(bad); !errors.Is(err, ErrAuth) {
		t.Fatalf("corrupted record: err = %v, want ErrAuth", err)
	}

	// Resumption: frame lengths and a responder without the secret.
	secret := client.ResumptionSecret()
	if _, _, err := ResumeRespond(secret, make([]byte, ResumeHelloLen+3), detRand(7)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad resume hello: err = %v, want ErrBadFrame", err)
	}
	res, err := NewResumer(secret, detRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Finish(make([]byte, ResumeReplyLen-2)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad resume reply: err = %v, want ErrBadFrame", err)
	}
	var stale [16]byte
	stale[0] = 0xff
	reply, _, err := ResumeRespond(stale, res.Hello(), detRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Finish(reply); !errors.Is(err, ErrAuth) {
		t.Fatalf("stale-secret resumption: err = %v, want ErrAuth", err)
	}

	// The sentinels are distinct classes: no accidental wrapping of one
	// in another.
	for _, e := range []error{ErrBadFrame, ErrAuth, ErrReplay} {
		n := 0
		for _, other := range []error{ErrBadFrame, ErrAuth, ErrReplay} {
			if errors.Is(e, other) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("sentinel %v matches %d sentinels, want 1", e, n)
		}
	}
}
