// Package securechan implements the secure controller-to-controller
// channel of DISCS (the "con-con channel", §IV-B of the paper).
//
// The paper secures this channel with SSL. Running a full TLS stack
// over the in-memory network simulator is out of scope, so this package
// provides a small authenticated-encryption channel with the same
// round-trip profile (one request/response handshake, then protected
// records) built from stdlib crypto:
//
//   - X25519 (crypto/ecdh) for key agreement: each controller holds a
//     static identity key (vouched for out of band, e.g. by RPKI), and
//     both sides contribute ephemeral keys for forward secrecy.
//   - SHA-256 for key derivation over the handshake transcript.
//   - AES-128-CTR for record encryption and AES-CMAC for record
//     authentication, with strictly increasing sequence numbers for
//     replay protection.
//
// The handshake is expressed as a synchronous state machine producing
// and consuming byte frames, so it can run over any transport
// (netsim links in this repository).
package securechan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"discs/internal/obs"
	"io"

	"discs/internal/cmac"
)

// Identity is a controller's static key pair plus a display name.
type Identity struct {
	Name string
	priv *ecdh.PrivateKey
}

// NewIdentity generates a static identity key from the given entropy
// source (crypto/rand.Reader in production; a seeded reader in tests).
func NewIdentity(name string, rand io.Reader) (*Identity, error) {
	priv, err := genKey(rand)
	if err != nil {
		return nil, err
	}
	return &Identity{Name: name, priv: priv}, nil
}

// Public returns the identity's public key bytes (32 bytes).
func (id *Identity) Public() []byte { return id.priv.PublicKey().Bytes() }

// genKey reads a 32-byte X25519 scalar from rand and builds the key
// pair. It deliberately avoids ecdh's GenerateKey: that calls
// randutil.MaybeReadByte, which consumes 0 or 1 bytes from rand
// NON-deterministically — poison for the simulator's seeded RNG
// streams and the repo-wide reproducibility contract.
func genKey(rand io.Reader) (*ecdh.PrivateKey, error) {
	var seed [32]byte
	if _, err := io.ReadFull(rand, seed[:]); err != nil {
		return nil, err
	}
	return ecdh.X25519().NewPrivateKey(seed[:])
}

const (
	pubLen   = 32
	nonceLen = 16
	macLen   = 16
)

// HelloLen is the wire size of a handshake hello frame.
const HelloLen = pubLen + nonceLen

// ReplyLen is the wire size of a handshake reply frame.
const ReplyLen = pubLen + nonceLen + macLen

// Initiator is the client side of a handshake in progress.
type Initiator struct {
	id        *Identity
	peerPub   *ecdh.PublicKey
	eph       *ecdh.PrivateKey
	nonce     [nonceLen]byte
	helloSent []byte
}

// NewInitiator starts a handshake toward a peer whose static public
// key is known (learned from the DISCS-Ad / RPKI layer).
func NewInitiator(id *Identity, peerStaticPub []byte, rand io.Reader) (*Initiator, error) {
	pp, err := ecdh.X25519().NewPublicKey(peerStaticPub)
	if err != nil {
		return nil, fmt.Errorf("securechan: bad peer key: %w", err)
	}
	eph, err := genKey(rand)
	if err != nil {
		return nil, err
	}
	ini := &Initiator{id: id, peerPub: pp, eph: eph}
	if _, err := io.ReadFull(rand, ini.nonce[:]); err != nil {
		return nil, err
	}
	return ini, nil
}

// Hello produces the client hello frame: ephemeral public key + nonce.
func (ini *Initiator) Hello() []byte {
	if ini.helloSent == nil {
		b := make([]byte, 0, HelloLen)
		b = append(b, ini.eph.PublicKey().Bytes()...)
		b = append(b, ini.nonce[:]...)
		ini.helloSent = b
	}
	return ini.helloSent
}

// Respond processes a client hello on the server side and produces the
// reply frame plus the established session. initiatorStaticPub must be
// the expected static key of the initiator.
func Respond(id *Identity, initiatorStaticPub, hello []byte, rand io.Reader) (reply []byte, sess *Session, err error) {
	if len(hello) != HelloLen {
		return nil, nil, fmt.Errorf("hello length %d, want %d: %w", len(hello), HelloLen, ErrBadFrame)
	}
	clientEphPub, err := ecdh.X25519().NewPublicKey(hello[:pubLen])
	if err != nil {
		return nil, nil, err
	}
	clientStatic, err := ecdh.X25519().NewPublicKey(initiatorStaticPub)
	if err != nil {
		return nil, nil, err
	}
	eph, err := genKey(rand)
	if err != nil {
		return nil, nil, err
	}
	var nonce [nonceLen]byte
	if _, err := io.ReadFull(rand, nonce[:]); err != nil {
		return nil, nil, err
	}
	ee, err := id.priv.ECDH(clientEphPub) // server static × client eph
	if err != nil {
		return nil, nil, err
	}
	eph2, err := eph.ECDH(clientEphPub) // server eph × client eph
	if err != nil {
		return nil, nil, err
	}
	ss, err := id.priv.ECDH(clientStatic) // static × static (mutual auth)
	if err != nil {
		return nil, nil, err
	}
	keys := deriveKeys(eph2, ee, ss, hello, eph.PublicKey().Bytes(), nonce[:])
	// Server proves key possession with a MAC over the transcript.
	mac, err := transcriptMAC(keys.macKey[:], hello, eph.PublicKey().Bytes(), nonce[:])
	if err != nil {
		return nil, nil, err
	}
	reply = make([]byte, 0, ReplyLen)
	reply = append(reply, eph.PublicKey().Bytes()...)
	reply = append(reply, nonce[:]...)
	reply = append(reply, mac...)
	sess, err = newSession(keys, false)
	if err != nil {
		return nil, nil, err
	}
	return reply, sess, nil
}

// Finish processes the server reply on the client side and returns the
// established session.
func (ini *Initiator) Finish(reply []byte) (*Session, error) {
	if len(reply) != ReplyLen {
		return nil, fmt.Errorf("reply length %d, want %d: %w", len(reply), ReplyLen, ErrBadFrame)
	}
	serverEphPub, err := ecdh.X25519().NewPublicKey(reply[:pubLen])
	if err != nil {
		return nil, err
	}
	serverNonce := reply[pubLen : pubLen+nonceLen]
	mac := reply[pubLen+nonceLen:]

	ee, err := ini.eph.ECDH(ini.peerPub) // client eph × server static
	if err != nil {
		return nil, err
	}
	eph2, err := ini.eph.ECDH(serverEphPub)
	if err != nil {
		return nil, err
	}
	ss, err := ini.id.priv.ECDH(ini.peerPub)
	if err != nil {
		return nil, err
	}
	hello := ini.Hello()
	keys := deriveKeys(eph2, ee, ss, hello, reply[:pubLen], serverNonce)
	want, err := transcriptMAC(keys.macKey[:], hello, reply[:pubLen], serverNonce)
	if err != nil {
		return nil, err
	}
	if subtleCompare(mac, want) == 0 {
		return nil, fmt.Errorf("handshake: %w", ErrAuth)
	}
	return newSession(keys, true)
}

func subtleCompare(a, b []byte) int {
	if len(a) != len(b) {
		return 0
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	if v == 0 {
		return 1
	}
	return 0
}

type sessionKeys struct {
	encKeyAB, encKeyBA [16]byte // initiator→responder, responder→initiator
	macKey             [16]byte
	resume             [16]byte // session-cache secret (see resume.go)
}

// deriveKeys hashes the three DH secrets and the transcript into
// directional record keys plus a handshake MAC key.
func deriveKeys(ephEph, ephStatic, staticStatic, hello, serverEph, serverNonce []byte) sessionKeys {
	h := sha256.New()
	h.Write([]byte("discs-securechan-v1"))
	h.Write(ephEph)
	h.Write(ephStatic)
	h.Write(staticStatic)
	h.Write(hello)
	h.Write(serverEph)
	h.Write(serverNonce)
	master := h.Sum(nil)
	expand := func(label byte) [16]byte {
		hh := sha256.Sum256(append(append([]byte{}, master...), label))
		var k [16]byte
		copy(k[:], hh[:16])
		return k
	}
	return sessionKeys{
		encKeyAB: expand(1),
		encKeyBA: expand(2),
		macKey:   expand(3),
		resume:   expand(4),
	}
}

func transcriptMAC(key []byte, parts ...[]byte) ([]byte, error) {
	c, err := cmac.New(key)
	if err != nil {
		return nil, err
	}
	var msg []byte
	for _, p := range parts {
		msg = append(msg, p...)
	}
	m := c.Sum(msg)
	return m[:], nil
}

// Session is an established record channel. Each direction has its own
// key and sequence counter; frames are AES-128-CTR encrypted and
// CMAC-authenticated. Delivery may be lossy — see Open for the
// forward-window semantics.
type Session struct {
	sendBlock, recvBlock cipher.Block
	mac                  *cmac.CMAC
	sendSeq, recvSeq     uint64
	resume               [16]byte
	// Overhead counters for the §VI-C cost model.
	BytesSealed, BytesOpened uint64
	// Optional registry mirrors of the byte counters (see SetMeter).
	sealedMeter, openedMeter *obs.Counter
}

// SetMeter mirrors the session's byte counters into registry counters
// (both nil-safe), so a controller can aggregate con-con channel
// overhead across sessions. Bytes already accumulated are carried into
// the counters at attach time.
func (s *Session) SetMeter(sealed, opened *obs.Counter) {
	s.sealedMeter, s.openedMeter = sealed, opened
	if sealed != nil {
		sealed.Add(s.BytesSealed)
	}
	if opened != nil {
		opened.Add(s.BytesOpened)
	}
}

func newSession(keys sessionKeys, initiator bool) (*Session, error) {
	sendKey, recvKey := keys.encKeyAB, keys.encKeyBA
	if !initiator {
		sendKey, recvKey = keys.encKeyBA, keys.encKeyAB
	}
	sb, err := aes.NewCipher(sendKey[:])
	if err != nil {
		return nil, err
	}
	rb, err := aes.NewCipher(recvKey[:])
	if err != nil {
		return nil, err
	}
	m, err := cmac.New(keys.macKey[:])
	if err != nil {
		return nil, err
	}
	return &Session{sendBlock: sb, recvBlock: rb, mac: m, resume: keys.resume}, nil
}

// Overhead is the per-record byte overhead: 8-byte sequence + 16-byte
// MAC.
const Overhead = 8 + macLen

// Seal encrypts and authenticates a plaintext record.
func (s *Session) Seal(plaintext []byte) []byte {
	out := make([]byte, 8+len(plaintext)+macLen)
	binary.BigEndian.PutUint64(out[:8], s.sendSeq)
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[8:], s.sendSeq)
	cipher.NewCTR(s.sendBlock, iv[:]).XORKeyStream(out[8:8+len(plaintext)], plaintext)
	tag := s.mac.Sum(out[:8+len(plaintext)])
	copy(out[8+len(plaintext):], tag[:])
	s.sendSeq++
	s.BytesSealed += uint64(len(out))
	if s.sealedMeter != nil {
		s.sealedMeter.Add(uint64(len(out)))
	}
	return out
}

// Open verifies and decrypts a record. The sequence number may jump
// forward — records lost by the network are skipped, DTLS-style, so
// one lost frame does not deafen the rest of the session — but a
// record at or behind the receive window is rejected as a replay.
// (Reordered records therefore count as lost; the control plane's
// retry machinery re-drives them.)
func (s *Session) Open(record []byte) ([]byte, error) {
	if len(record) < Overhead {
		return nil, fmt.Errorf("record length %d, want >= %d: %w", len(record), Overhead, ErrBadFrame)
	}
	seq := binary.BigEndian.Uint64(record[:8])
	if seq < s.recvSeq {
		return nil, fmt.Errorf("record sequence %d, want >= %d: %w", seq, s.recvSeq, ErrReplay)
	}
	body := record[:len(record)-macLen]
	tag := record[len(record)-macLen:]
	if !s.mac.Verify(body, tag) {
		return nil, fmt.Errorf("record: %w", ErrAuth)
	}
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[8:], seq)
	plaintext := make([]byte, len(body)-8)
	cipher.NewCTR(s.recvBlock, iv[:]).XORKeyStream(plaintext, body[8:])
	s.recvSeq = seq + 1
	s.BytesOpened += uint64(len(record))
	if s.openedMeter != nil {
		s.openedMeter.Add(uint64(len(record)))
	}
	return plaintext, nil
}
