package securechan

import (
	"crypto/sha256"
	"fmt"
	"io"
)

// Session resumption. The §VI-C cost model assumes the con-con channel
// uses a session cache ("each connection consumes 1.5kB data with SSL
// session cache"): a controller re-contacting a peer skips the
// asymmetric key agreement and derives fresh record keys from a cached
// resumption secret plus fresh nonces. Both sides obtain the secret
// from the full handshake (ResumptionSecret); either may initiate the
// abbreviated two-frame exchange.

// ResumeHelloLen is the wire size of a resumption hello.
const ResumeHelloLen = nonceLen

// ResumeReplyLen is the wire size of a resumption reply.
const ResumeReplyLen = nonceLen + macLen

// ResumptionSecret returns the cached secret shared by the two ends of
// an established session. It is directionless: both ends of one full
// handshake return the same value.
func (s *Session) ResumptionSecret() [16]byte { return s.resume }

// Resumer is the initiator side of an abbreviated handshake.
type Resumer struct {
	secret [16]byte
	nonce  [nonceLen]byte
}

// NewResumer starts an abbreviated handshake from a cached secret.
func NewResumer(secret [16]byte, rand io.Reader) (*Resumer, error) {
	r := &Resumer{secret: secret}
	if _, err := io.ReadFull(rand, r.nonce[:]); err != nil {
		return nil, err
	}
	return r, nil
}

// Hello returns the resumption hello frame (the client nonce).
func (r *Resumer) Hello() []byte { return r.nonce[:] }

// ResumeRespond processes a resumption hello with the cached secret
// and returns the reply frame plus the responder's session.
func ResumeRespond(secret [16]byte, hello []byte, rand io.Reader) (reply []byte, sess *Session, err error) {
	if len(hello) != ResumeHelloLen {
		return nil, nil, fmt.Errorf("resume hello length %d, want %d: %w", len(hello), ResumeHelloLen, ErrBadFrame)
	}
	var nonce [nonceLen]byte
	if _, err := io.ReadFull(rand, nonce[:]); err != nil {
		return nil, nil, err
	}
	keys := deriveResumedKeys(secret, hello, nonce[:])
	mac, err := transcriptMAC(keys.macKey[:], hello, nonce[:])
	if err != nil {
		return nil, nil, err
	}
	reply = append(append([]byte{}, nonce[:]...), mac...)
	sess, err = newSession(keys, false)
	if err != nil {
		return nil, nil, err
	}
	return reply, sess, nil
}

// Finish processes the resumption reply and returns the initiator's
// session. A responder that does not hold the secret cannot produce a
// valid transcript MAC.
func (r *Resumer) Finish(reply []byte) (*Session, error) {
	if len(reply) != ResumeReplyLen {
		return nil, fmt.Errorf("resume reply length %d, want %d: %w", len(reply), ResumeReplyLen, ErrBadFrame)
	}
	serverNonce := reply[:nonceLen]
	mac := reply[nonceLen:]
	keys := deriveResumedKeys(r.secret, r.nonce[:], serverNonce)
	want, err := transcriptMAC(keys.macKey[:], r.nonce[:], serverNonce)
	if err != nil {
		return nil, err
	}
	if subtleCompare(mac, want) == 0 {
		return nil, fmt.Errorf("resumption: %w", ErrAuth)
	}
	return newSession(keys, true)
}

// deriveResumedKeys expands (secret, cnonce, snonce) into fresh
// directional keys. Fresh nonces give each resumed session unique
// record keys, so replaying old records across sessions fails.
func deriveResumedKeys(secret [16]byte, clientNonce, serverNonce []byte) sessionKeys {
	h := sha256.New()
	h.Write([]byte("discs-securechan-resume-v1"))
	h.Write(secret[:])
	h.Write(clientNonce)
	h.Write(serverNonce)
	master := h.Sum(nil)
	expand := func(label byte) [16]byte {
		hh := sha256.Sum256(append(append([]byte{}, master...), label))
		var k [16]byte
		copy(k[:], hh[:16])
		return k
	}
	return sessionKeys{
		encKeyAB: expand(1),
		encKeyBA: expand(2),
		macKey:   expand(3),
		resume:   expand(4),
	}
}
