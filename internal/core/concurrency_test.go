package core

import (
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentForwarding hammers one border router from many
// goroutines (line cards) while the control plane concurrently
// installs/expires windows, rekeys, and toggles alarm mode. Run with
// -race; correctness assertions check counter conservation.
func TestConcurrentForwarding(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const perWorker = 500

	var wg sync.WaitGroup
	// Forwarding goroutines: a mix of genuine and spoofed traffic.
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := samplePacketV4()
				if w%2 == 0 {
					p.Src = netip.MustParseAddr("10.1.0.10") // genuine peer source
					if peer.ProcessOutbound(V4{p}, now) == VerdictPassStamped {
						victim.ProcessInbound(V4{p}, now)
					}
				} else {
					// Spoofed at the peer: dropped by DP.
					peer.ProcessOutbound(V4{p}, now)
				}
			}
		}()
	}
	// Control-plane goroutine: concurrent installs, purges, rekeys and
	// alarm toggles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v2 := netip.MustParsePrefix("10.4.0.0/16")
		for i := 0; i < 200; i++ {
			victim.Tables.In[TableInDst].Install(v2, OpCDPVerify, t0, time.Hour, 0)
			victim.Tables.In[TableInDst].Remove(v2, OpCDPVerify)
			victim.Tables.In[TableInDst].Purge(now)
			victim.Tables.Keys.SetVerifyKey(9, make([]byte, 16))
			victim.SetAlarmMode(i%2 == 0)
		}
		victim.SetAlarmMode(false)
	}()
	wg.Wait()

	ps, vs := peer.Stats(), victim.Stats()
	half := uint64(workers/2) * perWorker
	if ps.OutProcessed != uint64(workers)*perWorker {
		t.Fatalf("peer processed %d, want %d", ps.OutProcessed, uint64(workers)*perWorker)
	}
	if ps.OutDropped != half {
		t.Fatalf("peer dropped %d, want %d", ps.OutDropped, half)
	}
	if ps.OutStamped != half {
		t.Fatalf("peer stamped %d, want %d", ps.OutStamped, half)
	}
	// Every stamped packet reached the victim; with alarm flapping the
	// outcome is verified either way (marks are valid), so all must be
	// verified.
	if vs.InVerified != half {
		t.Fatalf("victim verified %d, want %d", vs.InVerified, half)
	}
}

// TestConcurrentBurstForwarding is TestConcurrentForwarding through
// the burst entry points: many line cards each pushing bursts through
// ProcessOutboundBatch/ProcessInboundBatch (pooled pipelines) while
// the control plane churns snapshots, rekeys and flips alarm mode.
// Run with -race; assertions check counter conservation across bursts.
func TestConcurrentBurstForwarding(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const bursts = 30
	const burstLen = 32

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkts := make([]MarkCarrier, burstLen)
			verdicts := make([]Verdict, 0, burstLen)
			in := make([]MarkCarrier, 0, burstLen)
			for b := 0; b < bursts; b++ {
				for i := range pkts {
					p := samplePacketV4()
					if w%2 == 0 {
						p.Src = netip.MustParseAddr("10.1.0.10") // genuine
					}
					pkts[i] = V4{p}
				}
				verdicts = peer.ProcessOutboundBatch(pkts, now, verdicts[:0])
				in = in[:0]
				for i, v := range verdicts {
					if v == VerdictPassStamped {
						in = append(in, pkts[i])
					}
				}
				victim.ProcessInboundBatch(in, now, nil)
			}
		}()
	}
	// Control-plane churn: table snapshot swaps, rekeys, alarm flaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v2 := netip.MustParsePrefix("10.4.0.0/16")
		for i := 0; i < 200; i++ {
			victim.Tables.In[TableInDst].Install(v2, OpCDPVerify, t0, time.Hour, 0)
			victim.Tables.In[TableInDst].Remove(v2, OpCDPVerify)
			victim.Tables.In[TableInDst].Purge(now)
			victim.Tables.Keys.SetVerifyKey(9, make([]byte, 16))
			victim.SetAlarmMode(i%2 == 0)
		}
		victim.SetAlarmMode(false)
	}()
	wg.Wait()

	ps, vs := peer.Stats(), victim.Stats()
	total := uint64(workers) * bursts * burstLen
	half := total / 2
	if ps.OutProcessed != total {
		t.Fatalf("peer processed %d, want %d", ps.OutProcessed, total)
	}
	if ps.OutDropped != half || ps.OutStamped != half {
		t.Fatalf("peer dropped/stamped %d/%d, want %d/%d", ps.OutDropped, ps.OutStamped, half, half)
	}
	// Marks are always valid, so every stamped packet verifies whether
	// or not alarm mode was on at the instant it arrived.
	if vs.InVerified != half {
		t.Fatalf("victim verified %d, want %d", vs.InVerified, half)
	}
	if vs.MACsComputed != half {
		t.Fatalf("victim MACs %d, want %d", vs.MACsComputed, half)
	}
}

// TestConcurrentBurstKeyRotation is TestConcurrentKeyRotation through
// the burst entry points: a rotating two-key window must never fail a
// verification, including through the burst path's previous-key retry.
func TestConcurrentBurstKeyRotation(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	oldKey := make([]byte, 16)
	oldKey[3] = 0x42
	newKey := make([]byte, 16)
	newKey[3] = 0x43

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim.Tables.Keys.SetVerifyKey(1, newKey)
			victim.Tables.Keys.SetVerifyKey(1, oldKey)
		}
	}()

	const bursts = 150
	const burstLen = 32
	pkts := make([]MarkCarrier, burstLen)
	failures := 0
	for b := 0; b < bursts; b++ {
		for i := range pkts {
			p := samplePacketV4()
			p.Src = netip.MustParseAddr("10.1.0.10")
			pkts[i] = V4{p}
		}
		for _, v := range peer.ProcessOutboundBatch(pkts, now, nil) {
			if v != VerdictPassStamped {
				t.Fatal("stamping failed")
			}
		}
		for _, v := range victim.ProcessInboundBatch(pkts, now, nil) {
			if v == VerdictDrop {
				failures++
			}
		}
	}
	close(stop)
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d verification failures during rotation", failures)
	}
}

// TestConcurrentKeyRotation rotates verification keys while verifiers
// run; every packet must verify against old or new key (the §IV-D
// two-key window) with no torn reads.
func TestConcurrentKeyRotation(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	oldKey := make([]byte, 16)
	oldKey[3] = 0x42 // key installed by peerVictimSetup
	newKey := make([]byte, 16)
	newKey[3] = 0x43

	stop := make(chan struct{})
	var rotations int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim.Tables.Keys.SetVerifyKey(1, newKey)
			victim.Tables.Keys.SetVerifyKey(1, oldKey)
			rotations++
		}
	}()

	failures := 0
	for i := 0; i < 5000; i++ {
		p := samplePacketV4()
		p.Src = netip.MustParseAddr("10.1.0.10")
		if peer.ProcessOutbound(V4{p}, now) != VerdictPassStamped {
			t.Fatal("stamping failed")
		}
		if victim.ProcessInbound(V4{p}, now) == VerdictDrop {
			failures++
		}
	}
	close(stop)
	wg.Wait()
	// The rotation always keeps oldKey as either current or previous,
	// so marks stamped with oldKey never fail.
	if failures != 0 {
		t.Fatalf("%d verification failures during rotation (%d rotations)", failures, rotations)
	}
}
