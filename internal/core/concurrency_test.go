package core

import (
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentForwarding hammers one border router from many
// goroutines (line cards) while the control plane concurrently
// installs/expires windows, rekeys, and toggles alarm mode. Run with
// -race; correctness assertions check counter conservation.
func TestConcurrentForwarding(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const perWorker = 500

	var wg sync.WaitGroup
	// Forwarding goroutines: a mix of genuine and spoofed traffic.
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := samplePacketV4()
				if w%2 == 0 {
					p.Src = netip.MustParseAddr("10.1.0.10") // genuine peer source
					if peer.ProcessOutbound(V4{p}, now) == VerdictPassStamped {
						victim.ProcessInbound(V4{p}, now)
					}
				} else {
					// Spoofed at the peer: dropped by DP.
					peer.ProcessOutbound(V4{p}, now)
				}
			}
		}()
	}
	// Control-plane goroutine: concurrent installs, purges, rekeys and
	// alarm toggles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v2 := netip.MustParsePrefix("10.4.0.0/16")
		for i := 0; i < 200; i++ {
			victim.Tables.In[TableInDst].Install(v2, OpCDPVerify, t0, time.Hour, 0)
			victim.Tables.In[TableInDst].Remove(v2, OpCDPVerify)
			victim.Tables.In[TableInDst].Purge(now)
			victim.Tables.Keys.SetVerifyKey(9, make([]byte, 16))
			victim.SetAlarmMode(i%2 == 0)
		}
		victim.SetAlarmMode(false)
	}()
	wg.Wait()

	ps, vs := peer.Stats(), victim.Stats()
	half := uint64(workers/2) * perWorker
	if ps.OutProcessed != uint64(workers)*perWorker {
		t.Fatalf("peer processed %d, want %d", ps.OutProcessed, uint64(workers)*perWorker)
	}
	if ps.OutDropped != half {
		t.Fatalf("peer dropped %d, want %d", ps.OutDropped, half)
	}
	if ps.OutStamped != half {
		t.Fatalf("peer stamped %d, want %d", ps.OutStamped, half)
	}
	// Every stamped packet reached the victim; with alarm flapping the
	// outcome is verified either way (marks are valid), so all must be
	// verified.
	if vs.InVerified != half {
		t.Fatalf("victim verified %d, want %d", vs.InVerified, half)
	}
}

// TestConcurrentKeyRotation rotates verification keys while verifiers
// run; every packet must verify against old or new key (the §IV-D
// two-key window) with no torn reads.
func TestConcurrentKeyRotation(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	oldKey := make([]byte, 16)
	oldKey[3] = 0x42 // key installed by peerVictimSetup
	newKey := make([]byte, 16)
	newKey[3] = 0x43

	stop := make(chan struct{})
	var rotations int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim.Tables.Keys.SetVerifyKey(1, newKey)
			victim.Tables.Keys.SetVerifyKey(1, oldKey)
			rotations++
		}
	}()

	failures := 0
	for i := 0; i < 5000; i++ {
		p := samplePacketV4()
		p.Src = netip.MustParseAddr("10.1.0.10")
		if peer.ProcessOutbound(V4{p}, now) != VerdictPassStamped {
			t.Fatal("stamping failed")
		}
		if victim.ProcessInbound(V4{p}, now) == VerdictDrop {
			failures++
		}
	}
	close(stop)
	wg.Wait()
	// The rotation always keeps oldKey as either current or previous,
	// so marks stamped with oldKey never fail.
	if failures != 0 {
		t.Fatalf("%d verification failures during rotation (%d rotations)", failures, rotations)
	}
}
