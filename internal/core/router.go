package core

import (
	"net/netip"
	"sync/atomic"
	"time"

	"discs/internal/cmac"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Verdict is the outcome of processing one packet through the DISCS
// data plane (Figure 3).
type Verdict int

const (
	// VerdictPass: the packet proceeds to the forwarding engine.
	VerdictPass Verdict = iota
	// VerdictPassStamped: outbound packet passed and a mark was stamped.
	VerdictPassStamped
	// VerdictPassVerified: inbound packet passed with a valid mark,
	// which was erased.
	VerdictPassVerified
	// VerdictPassAlarm: the packet was identified as spoofed but passed
	// because the router is in alarm mode; a sample was reported.
	VerdictPassAlarm
	// VerdictDrop: the packet was identified as spoofed and dropped.
	VerdictDrop
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictPassStamped:
		return "pass+stamped"
	case VerdictPassVerified:
		return "pass+verified"
	case VerdictPassAlarm:
		return "pass+alarm"
	case VerdictDrop:
		return "drop"
	}
	return "verdict?"
}

// Dropped reports whether the verdict removes the packet.
func (v Verdict) Dropped() bool { return v == VerdictDrop }

// Metric names (relative to the router's scope) under which the
// data-plane counters are registered; a router scoped "as7." publishes
// e.g. "as7.router.out_processed". Exported so consumers of registry
// snapshots do not hard-code strings.
const (
	MetricRouterOutProcessed = "router.out_processed"
	MetricRouterOutDropped   = "router.out_dropped"
	MetricRouterOutStamped   = "router.out_stamped"
	MetricRouterInProcessed  = "router.in_processed"
	MetricRouterInVerified   = "router.in_verified"
	MetricRouterInVerifyFail = "router.in_verify_fail"
	MetricRouterInDropped    = "router.in_dropped"
	MetricRouterInErasedOnly = "router.in_erased_only"
	MetricRouterInAlarmed    = "router.in_alarmed"
	MetricRouterOutTooBig    = "router.out_too_big"
	MetricRouterMACsComputed = "router.macs_computed"
	MetricRouterICMPScrubbed = "router.icmp_scrubbed"
)

// RouterStats is the typed view of one router's data-plane counters;
// the fields mirror the resource discussion of §VI-C2. The backing
// counters live in an obs.Registry and are updated via sharded
// atomics, so the router's processing methods may run concurrently
// from many forwarding goroutines (a line card per goroutine); read a
// consistent view with BorderRouter.Stats. MACsComputed counts actual
// CMAC computations: a rekey-window verification that tries both keys
// counts 2, a failed IPv6 stamp still counts its computed MAC.
type RouterStats struct {
	OutProcessed uint64
	OutDropped   uint64 // DP/SP filter drops
	OutStamped   uint64
	InProcessed  uint64
	InVerified   uint64 // valid mark, erased
	InVerifyFail uint64 // invalid mark
	InDropped    uint64
	InErasedOnly uint64 // grace-interval erasures
	InAlarmed    uint64 // spoofed but passed in alarm mode
	OutTooBig    uint64 // IPv6 packets refused because stamping exceeds the MTU
	MACsComputed uint64 // crypto operations (stamp + verify attempts)
	ICMPScrubbed uint64
}

// Add returns the field-wise sum of two stats snapshots.
func (s RouterStats) Add(o RouterStats) RouterStats {
	return RouterStats{
		OutProcessed: s.OutProcessed + o.OutProcessed,
		OutDropped:   s.OutDropped + o.OutDropped,
		OutStamped:   s.OutStamped + o.OutStamped,
		InProcessed:  s.InProcessed + o.InProcessed,
		InVerified:   s.InVerified + o.InVerified,
		InVerifyFail: s.InVerifyFail + o.InVerifyFail,
		InDropped:    s.InDropped + o.InDropped,
		InErasedOnly: s.InErasedOnly + o.InErasedOnly,
		InAlarmed:    s.InAlarmed + o.InAlarmed,
		OutTooBig:    s.OutTooBig + o.OutTooBig,
		MACsComputed: s.MACsComputed + o.MACsComputed,
		ICMPScrubbed: s.ICMPScrubbed + o.ICMPScrubbed,
	}
}

// routerMetrics holds the router's pre-resolved registry handles; they
// are resolved once at construction so the forwarding path never walks
// the registry maps.
type routerMetrics struct {
	outProcessed *obs.Counter
	outDropped   *obs.Counter
	outStamped   *obs.Counter
	inProcessed  *obs.Counter
	inVerified   *obs.Counter
	inVerifyFail *obs.Counter
	inDropped    *obs.Counter
	inErasedOnly *obs.Counter
	inAlarmed    *obs.Counter
	outTooBig    *obs.Counter
	macsComputed *obs.Counter
	icmpScrubbed *obs.Counter
}

func newRouterMetrics(sc obs.Scope) routerMetrics {
	return routerMetrics{
		outProcessed: sc.Counter(MetricRouterOutProcessed),
		outDropped:   sc.Counter(MetricRouterOutDropped),
		outStamped:   sc.Counter(MetricRouterOutStamped),
		inProcessed:  sc.Counter(MetricRouterInProcessed),
		inVerified:   sc.Counter(MetricRouterInVerified),
		inVerifyFail: sc.Counter(MetricRouterInVerifyFail),
		inDropped:    sc.Counter(MetricRouterInDropped),
		inErasedOnly: sc.Counter(MetricRouterInErasedOnly),
		inAlarmed:    sc.Counter(MetricRouterInAlarmed),
		outTooBig:    sc.Counter(MetricRouterOutTooBig),
		macsComputed: sc.Counter(MetricRouterMACsComputed),
		icmpScrubbed: sc.Counter(MetricRouterICMPScrubbed),
	}
}

func (m *routerMetrics) view() RouterStats {
	return RouterStats{
		OutProcessed: m.outProcessed.Value(),
		OutDropped:   m.outDropped.Value(),
		OutStamped:   m.outStamped.Value(),
		InProcessed:  m.inProcessed.Value(),
		InVerified:   m.inVerified.Value(),
		InVerifyFail: m.inVerifyFail.Value(),
		InDropped:    m.inDropped.Value(),
		InErasedOnly: m.inErasedOnly.Value(),
		InAlarmed:    m.inAlarmed.Value(),
		OutTooBig:    m.outTooBig.Value(),
		MACsComputed: m.macsComputed.Value(),
		ICMPScrubbed: m.icmpScrubbed.Value(),
	}
}

// routerDeltas accumulates counter increments locally during a packet
// or burst, then flushes only the non-zero fields to the shared atomic
// counters — per-packet atomic traffic drops from up to five RMW ops
// to the handful that actually changed.
type routerDeltas struct {
	outProcessed uint64
	outDropped   uint64
	outStamped   uint64
	inProcessed  uint64
	inVerified   uint64
	inVerifyFail uint64
	inDropped    uint64
	inErasedOnly uint64
	inAlarmed    uint64
	outTooBig    uint64
	macsComputed uint64
}

func (d *routerDeltas) flush(m *routerMetrics) {
	if d.outProcessed != 0 {
		m.outProcessed.Add(d.outProcessed)
	}
	if d.outDropped != 0 {
		m.outDropped.Add(d.outDropped)
	}
	if d.outStamped != 0 {
		m.outStamped.Add(d.outStamped)
	}
	if d.inProcessed != 0 {
		m.inProcessed.Add(d.inProcessed)
	}
	if d.inVerified != 0 {
		m.inVerified.Add(d.inVerified)
	}
	if d.inVerifyFail != 0 {
		m.inVerifyFail.Add(d.inVerifyFail)
	}
	if d.inDropped != 0 {
		m.inDropped.Add(d.inDropped)
	}
	if d.inErasedOnly != 0 {
		m.inErasedOnly.Add(d.inErasedOnly)
	}
	if d.inAlarmed != 0 {
		m.inAlarmed.Add(d.inAlarmed)
	}
	if d.outTooBig != 0 {
		m.outTooBig.Add(d.outTooBig)
	}
	if d.macsComputed != 0 {
		m.macsComputed.Add(d.macsComputed)
	}
}

// AlarmSample is a report of an identified spoofing packet sent to the
// controller in alarm mode (§IV-F); internal/flowexport aggregates
// these into NetFlow/sFlow-style records for the export path.
type AlarmSample struct {
	Src, Dst netip.Addr
	SrcAS    topology.ASN
	When     time.Time
}

// BorderRouter is the data plane of one DAS border router.
type BorderRouter struct {
	Tables *Tables
	// OnAlarm receives samples of identified spoofing packets.
	OnAlarm func(AlarmSample)
	// ExternalMTU, when positive, is the MTU of the external link. An
	// IPv6 packet whose stamping would exceed it is not forwarded;
	// instead a "packet too big" ICMPv6 announcing ExternalMTU−8 goes
	// back to the source (§V-F). IPv4 stamping never grows packets.
	ExternalMTU int
	// RouterAddr is the source address for ICMPv6 errors this router
	// originates.
	RouterAddr netip.Addr
	// OnPacketTooBig receives the generated ICMPv6 error (nil-safe).
	OnPacketTooBig func(*packet.IPv6)

	m         routerMetrics
	rngState  atomic.Uint64
	alarmMode atomic.Bool

	// Sampled data-plane tracing (nil/0 when tracing is off): every
	// (sampleMask+1)-th processed packet emits an obs.EvPacketSample
	// event with its verdict. One atomic tick per packet when enabled
	// (the period is a power of two so the decision is a mask, not a
	// division), zero cost when trace is nil.
	trace      *obs.Tracer
	sampleMask uint64
	sampleTick atomic.Uint64
	traceAS    uint32
}

// SetAlarmMode toggles alarm mode (§IV-F): verification failures pass
// with a sample report instead of dropping. Safe to call while
// forwarding goroutines are processing packets.
func (r *BorderRouter) SetAlarmMode(on bool) { r.alarmMode.Store(on) }

// AlarmModeOn reports whether alarm mode is active.
func (r *BorderRouter) AlarmModeOn() bool { return r.alarmMode.Load() }

// Stats returns the typed view of the processing counters. The same
// numbers are visible under the router's scope ("<scope>router.*") in
// any snapshot of the registry it was constructed with.
func (r *BorderRouter) Stats() RouterStats { return r.m.view() }

// randomBits returns scrub bits from a lock-free splitmix64 stream, so
// concurrent forwarding goroutines never contend on a shared RNG.
func (r *BorderRouter) randomBits() uint32 {
	x := r.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// RouterOptions configures a BorderRouter. The zero value of every
// field is usable; only Tables is required.
type RouterOptions struct {
	// Tables is the CDP/DP/SP table set the router consults (required).
	Tables *Tables
	// Seed feeds the random bits used to scrub IPv4 marks after
	// verification.
	Seed int64
	// Registry receives the router's data-plane counters; nil creates a
	// private registry.
	Registry *obs.Registry
	// Scope prefixes the router's metric names (e.g. "as7." publishes
	// "as7.router.out_processed"). Empty publishes bare "router.*".
	Scope string
	// AS tags sampled packet events with the router's AS number.
	AS topology.ASN
	// ExternalMTU and RouterAddr mirror the public fields of the same
	// names (see BorderRouter).
	ExternalMTU int
	RouterAddr  netip.Addr
	// TraceSampleEvery enables sampled data-plane tracing: every N-th
	// processed packet emits an obs.EvPacketSample event with its
	// verdict into the registry's tracer. The period is rounded up to a
	// power of two so the per-packet decision is a mask instead of a
	// division. 0 disables tracing (the default), keeping the hot path
	// free of even the sampling tick.
	TraceSampleEvery int
}

// nextPow2 rounds n up to the next power of two (minimum 1). Inputs
// above 1<<63 — the largest uint64 power of two — clamp to 1<<63: the
// doubling would otherwise overflow p to zero and never terminate.
func nextPow2(n uint64) uint64 {
	if n > 1<<63 {
		return 1 << 63
	}
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// NewBorderRouterWithOptions creates a router from an options struct.
// Validation failures are *OptionError.
func NewBorderRouterWithOptions(o RouterOptions) (*BorderRouter, error) {
	if o.Tables == nil {
		return nil, optErr("RouterOptions", "Tables", "required")
	}
	if o.ExternalMTU < 0 {
		return nil, optErr("RouterOptions", "ExternalMTU", "must be >= 0")
	}
	if o.TraceSampleEvery < 0 {
		return nil, optErr("RouterOptions", "TraceSampleEvery", "must be >= 0")
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &BorderRouter{
		Tables:      o.Tables,
		ExternalMTU: o.ExternalMTU,
		RouterAddr:  o.RouterAddr,
		m:           newRouterMetrics(reg.Scope(o.Scope)),
		traceAS:     uint32(o.AS),
	}
	r.rngState.Store(uint64(o.Seed))
	if o.TraceSampleEvery > 0 {
		r.trace = reg.Tracer()
		r.sampleMask = nextPow2(uint64(o.TraceSampleEvery)) - 1
	}
	return r, nil
}

// maybeSample emits a sampled packet-decision trace event. The nil
// check is the only cost when tracing is off; when on, one atomic tick
// per packet plus an allocation-free Emit on the sampled ones.
func (r *BorderRouter) maybeSample(p MarkCarrier, v Verdict) {
	if r.trace == nil {
		return
	}
	if r.sampleTick.Add(1)&r.sampleMask != 0 {
		return
	}
	r.trace.Emit(obs.Event{
		Kind:    obs.EvPacketSample,
		AS:      r.traceAS,
		Verdict: v.String(),
		Src:     p.SrcAddr(),
		Dst:     p.DstAddr(),
	})
}

// ProcessOutbound runs the outbound half of the Figure-3 flow on a
// packet leaving the AS.
func (r *BorderRouter) ProcessOutbound(p MarkCarrier, now time.Time) Verdict {
	st := r.Tables.loadOut()
	var d routerDeltas
	v := r.processOutbound(&st, p, now.UnixNano(), &d, nil)
	d.flush(&r.m)
	r.maybeSample(p, v)
	return v
}

// ProcessOutboundBatch processes a burst of outbound packets against a
// single coherent snapshot of the tables through the fused
// BurstPipeline: one snapshot load and counter flush per burst,
// memoized LPM/key lookups, and interleaved CMAC scheduling. Verdicts
// are appended to dst (pass a reused buffer to keep the call
// allocation-free) and returned. Every packet in the burst sees the
// same table/key state; a concurrent controller mutation applies to
// the next burst. Results are bit-identical to per-packet processing.
func (r *BorderRouter) ProcessOutboundBatch(pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	bp := pipelinePool.Get().(*BurstPipeline)
	dst = bp.Outbound(r, pkts, now, dst)
	pipelinePool.Put(bp)
	return dst
}

// processOutbound is the snapshot-level outbound path shared by the
// single-packet and batch entry points.
func (r *BorderRouter) processOutbound(st *outState, p MarkCarrier, nowN int64, d *routerDeltas, s *cmac.Scratch) Verdict {
	d.outProcessed++
	tup := r.Tables.genOutTuple(st, p.SrcAddr(), p.DstAddr(), nowN)
	if tup.Drop {
		d.outDropped++
		return VerdictDrop
	}
	if !tup.Stamp {
		return VerdictPass
	}
	if tup.Key == nil {
		// CDP-stamp scheduled but the destination is not a peer (e.g.
		// key torn down mid-invocation): pass unstamped rather than
		// break connectivity.
		return VerdictPass
	}
	// §V-F: stamping may grow an IPv6 packet by up to 8 bytes; if that
	// exceeds the external link MTU, return "packet too big"
	// announcing an MTU 8 bytes below the link's.
	if r.ExternalMTU > 0 {
		if v6, ok := p.(V6); ok {
			if v6.P.WireLen()+v6.P.StampOverheadV6() > r.ExternalMTU {
				d.outTooBig++
				if r.OnPacketTooBig != nil {
					if icmp, err := packet.NewICMPv6PacketTooBig(r.RouterAddr, v6.P, uint32(r.ExternalMTU-8)); err == nil {
						r.OnPacketTooBig(icmp)
					}
				}
				return VerdictDrop
			}
		}
	}
	var macs int
	var err error
	if s != nil {
		if sc, ok := p.(scratchCarrier); ok {
			macs, err = sc.stampWith(tup.Key, s)
		} else {
			macs, err = p.Stamp(tup.Key)
		}
	} else {
		macs, err = p.Stamp(tup.Key)
	}
	d.macsComputed += uint64(macs)
	if err != nil {
		// Packet cannot carry a mark (e.g. duplicate option): pass; the
		// verification end will treat it as unmarked.
		return VerdictPass
	}
	d.outStamped++
	return VerdictPassStamped
}

// ProcessInbound runs the inbound half of the Figure-3 flow on a
// packet entering the AS.
func (r *BorderRouter) ProcessInbound(p MarkCarrier, now time.Time) Verdict {
	st := r.Tables.loadIn()
	var d routerDeltas
	v := r.processInbound(&st, p, now.UnixNano(), &d, nil)
	d.flush(&r.m)
	r.maybeSample(p, v)
	return v
}

// ProcessInboundBatch is the inbound counterpart of
// ProcessOutboundBatch.
func (r *BorderRouter) ProcessInboundBatch(pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	bp := pipelinePool.Get().(*BurstPipeline)
	dst = bp.Inbound(r, pkts, now, dst)
	pipelinePool.Put(bp)
	return dst
}

// processInbound is the snapshot-level inbound path shared by the
// single-packet and batch entry points.
func (r *BorderRouter) processInbound(st *inState, p MarkCarrier, nowN int64, d *routerDeltas, s *cmac.Scratch) Verdict {
	d.inProcessed++
	tup := r.Tables.genInTuple(st, p.SrcAddr(), p.DstAddr(), nowN)
	if !tup.Verify {
		return VerdictPass
	}
	if tup.EraseOnly {
		// Grace interval: erase without enforcement (§IV-E1).
		p.Erase(r.randomBits())
		d.inErasedOnly++
		return VerdictPass
	}
	valid, keyKnown, macs := false, false, 0
	if tup.SrcKnown {
		valid, keyKnown, macs = st.keys.verifyMark(tup.SrcAS, p, s)
	}
	d.macsComputed += uint64(macs)
	if !keyKnown {
		// CDP-verify is conditional on src ∈ peer (Table I): traffic
		// from non-peer sources cannot be verified and passes; it is
		// the peers' DP filters that handle it.
		return VerdictPass
	}
	if valid {
		p.Erase(r.randomBits())
		d.inVerified++
		return VerdictPassVerified
	}
	d.inVerifyFail++
	if r.alarmMode.Load() {
		d.inAlarmed++
		if r.OnAlarm != nil {
			r.OnAlarm(AlarmSample{
				Src:   p.SrcAddr(),
				Dst:   p.DstAddr(),
				SrcAS: tup.SrcAS,
				When:  time.Unix(0, nowN).UTC(),
			})
		}
		p.Erase(r.randomBits())
		return VerdictPassAlarm
	}
	d.inDropped++
	return VerdictDrop
}

// ScrubInboundICMP inspects an inbound ICMP(v4) error message and
// erases any DISCS mark from the embedded packet (§VI-E2): without
// this, a host inside the DAS could learn valid marks by triggering
// TTL-exceeded errors just outside the border. It reports whether a
// scrub happened.
func (r *BorderRouter) ScrubInboundICMP(p *packet.IPv4) bool {
	if packet.ScrubICMPv4EmbeddedMark(p, r.randomBits()) {
		r.m.icmpScrubbed.Inc()
		return true
	}
	return false
}

// ScrubInboundICMPv6 is the IPv6 counterpart of ScrubInboundICMP.
func (r *BorderRouter) ScrubInboundICMPv6(p *packet.IPv6) bool {
	if packet.ScrubICMPv6EmbeddedMark(p, r.randomBits()) {
		r.m.icmpScrubbed.Inc()
		return true
	}
	return false
}
