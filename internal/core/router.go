package core

import (
	"net/netip"
	"sync/atomic"
	"time"

	"discs/internal/cmac"
	"discs/internal/packet"
	"discs/internal/topology"
)

// Verdict is the outcome of processing one packet through the DISCS
// data plane (Figure 3).
type Verdict int

const (
	// VerdictPass: the packet proceeds to the forwarding engine.
	VerdictPass Verdict = iota
	// VerdictPassStamped: outbound packet passed and a mark was stamped.
	VerdictPassStamped
	// VerdictPassVerified: inbound packet passed with a valid mark,
	// which was erased.
	VerdictPassVerified
	// VerdictPassAlarm: the packet was identified as spoofed but passed
	// because the router is in alarm mode; a sample was reported.
	VerdictPassAlarm
	// VerdictDrop: the packet was identified as spoofed and dropped.
	VerdictDrop
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictPassStamped:
		return "pass+stamped"
	case VerdictPassVerified:
		return "pass+verified"
	case VerdictPassAlarm:
		return "pass+alarm"
	case VerdictDrop:
		return "drop"
	}
	return "verdict?"
}

// Dropped reports whether the verdict removes the packet.
func (v Verdict) Dropped() bool { return v == VerdictDrop }

// RouterStats counts data-plane events; the fields mirror the resource
// discussion of §VI-C2. The counters are updated atomically, so the
// router's processing methods may run concurrently from many
// forwarding goroutines (a line card per goroutine); read a consistent
// snapshot with BorderRouter.Stats. MACsComputed counts actual CMAC
// computations: a rekey-window verification that tries both keys
// counts 2, a failed IPv6 stamp still counts its computed MAC.
type RouterStats struct {
	OutProcessed uint64
	OutDropped   uint64 // DP/SP filter drops
	OutStamped   uint64
	InProcessed  uint64
	InVerified   uint64 // valid mark, erased
	InVerifyFail uint64 // invalid mark
	InDropped    uint64
	InErasedOnly uint64 // grace-interval erasures
	InAlarmed    uint64 // spoofed but passed in alarm mode
	OutTooBig    uint64 // IPv6 packets refused because stamping exceeds the MTU
	MACsComputed uint64 // crypto operations (stamp + verify attempts)
	ICMPScrubbed uint64
}

// Add returns the field-wise sum of two stats snapshots.
func (s RouterStats) Add(o RouterStats) RouterStats {
	return RouterStats{
		OutProcessed: s.OutProcessed + o.OutProcessed,
		OutDropped:   s.OutDropped + o.OutDropped,
		OutStamped:   s.OutStamped + o.OutStamped,
		InProcessed:  s.InProcessed + o.InProcessed,
		InVerified:   s.InVerified + o.InVerified,
		InVerifyFail: s.InVerifyFail + o.InVerifyFail,
		InDropped:    s.InDropped + o.InDropped,
		InErasedOnly: s.InErasedOnly + o.InErasedOnly,
		InAlarmed:    s.InAlarmed + o.InAlarmed,
		OutTooBig:    s.OutTooBig + o.OutTooBig,
		MACsComputed: s.MACsComputed + o.MACsComputed,
		ICMPScrubbed: s.ICMPScrubbed + o.ICMPScrubbed,
	}
}

// routerCounters is the internal atomic mirror of RouterStats.
type routerCounters struct {
	outProcessed atomic.Uint64
	outDropped   atomic.Uint64
	outStamped   atomic.Uint64
	inProcessed  atomic.Uint64
	inVerified   atomic.Uint64
	inVerifyFail atomic.Uint64
	inDropped    atomic.Uint64
	inErasedOnly atomic.Uint64
	inAlarmed    atomic.Uint64
	outTooBig    atomic.Uint64
	macsComputed atomic.Uint64
	icmpScrubbed atomic.Uint64
}

func (c *routerCounters) snapshot() RouterStats {
	return RouterStats{
		OutProcessed: c.outProcessed.Load(),
		OutDropped:   c.outDropped.Load(),
		OutStamped:   c.outStamped.Load(),
		InProcessed:  c.inProcessed.Load(),
		InVerified:   c.inVerified.Load(),
		InVerifyFail: c.inVerifyFail.Load(),
		InDropped:    c.inDropped.Load(),
		InErasedOnly: c.inErasedOnly.Load(),
		InAlarmed:    c.inAlarmed.Load(),
		OutTooBig:    c.outTooBig.Load(),
		MACsComputed: c.macsComputed.Load(),
		ICMPScrubbed: c.icmpScrubbed.Load(),
	}
}

// routerDeltas accumulates counter increments locally during a packet
// or burst, then flushes only the non-zero fields to the shared atomic
// counters — per-packet atomic traffic drops from up to five RMW ops
// to the handful that actually changed.
type routerDeltas struct {
	outProcessed uint64
	outDropped   uint64
	outStamped   uint64
	inProcessed  uint64
	inVerified   uint64
	inVerifyFail uint64
	inDropped    uint64
	inErasedOnly uint64
	inAlarmed    uint64
	outTooBig    uint64
	macsComputed uint64
}

func (d *routerDeltas) flush(c *routerCounters) {
	if d.outProcessed != 0 {
		c.outProcessed.Add(d.outProcessed)
	}
	if d.outDropped != 0 {
		c.outDropped.Add(d.outDropped)
	}
	if d.outStamped != 0 {
		c.outStamped.Add(d.outStamped)
	}
	if d.inProcessed != 0 {
		c.inProcessed.Add(d.inProcessed)
	}
	if d.inVerified != 0 {
		c.inVerified.Add(d.inVerified)
	}
	if d.inVerifyFail != 0 {
		c.inVerifyFail.Add(d.inVerifyFail)
	}
	if d.inDropped != 0 {
		c.inDropped.Add(d.inDropped)
	}
	if d.inErasedOnly != 0 {
		c.inErasedOnly.Add(d.inErasedOnly)
	}
	if d.inAlarmed != 0 {
		c.inAlarmed.Add(d.inAlarmed)
	}
	if d.outTooBig != 0 {
		c.outTooBig.Add(d.outTooBig)
	}
	if d.macsComputed != 0 {
		c.macsComputed.Add(d.macsComputed)
	}
}

// AlarmSample is a report of an identified spoofing packet sent to the
// controller in alarm mode (§IV-F); internal/flowexport aggregates
// these into NetFlow/sFlow-style records for the export path.
type AlarmSample struct {
	Src, Dst netip.Addr
	SrcAS    topology.ASN
	When     time.Time
}

// BorderRouter is the data plane of one DAS border router.
type BorderRouter struct {
	Tables *Tables
	// OnAlarm receives samples of identified spoofing packets.
	OnAlarm func(AlarmSample)
	// ExternalMTU, when positive, is the MTU of the external link. An
	// IPv6 packet whose stamping would exceed it is not forwarded;
	// instead a "packet too big" ICMPv6 announcing ExternalMTU−8 goes
	// back to the source (§V-F). IPv4 stamping never grows packets.
	ExternalMTU int
	// RouterAddr is the source address for ICMPv6 errors this router
	// originates.
	RouterAddr netip.Addr
	// OnPacketTooBig receives the generated ICMPv6 error (nil-safe).
	OnPacketTooBig func(*packet.IPv6)

	ctr       routerCounters
	rngState  atomic.Uint64
	alarmMode atomic.Bool
}

// SetAlarmMode toggles alarm mode (§IV-F): verification failures pass
// with a sample report instead of dropping. Safe to call while
// forwarding goroutines are processing packets.
func (r *BorderRouter) SetAlarmMode(on bool) { r.alarmMode.Store(on) }

// AlarmModeOn reports whether alarm mode is active.
func (r *BorderRouter) AlarmModeOn() bool { return r.alarmMode.Load() }

// Stats returns a snapshot of the processing counters.
func (r *BorderRouter) Stats() RouterStats { return r.ctr.snapshot() }

// randomBits returns scrub bits from a lock-free splitmix64 stream, so
// concurrent forwarding goroutines never contend on a shared RNG.
func (r *BorderRouter) randomBits() uint32 {
	x := r.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// NewBorderRouter creates a router around the given tables. seed feeds
// the random bits used to scrub IPv4 marks after verification.
func NewBorderRouter(tables *Tables, seed int64) *BorderRouter {
	r := &BorderRouter{Tables: tables}
	r.rngState.Store(uint64(seed))
	return r
}

// ProcessOutbound runs the outbound half of the Figure-3 flow on a
// packet leaving the AS.
func (r *BorderRouter) ProcessOutbound(p MarkCarrier, now time.Time) Verdict {
	st := r.Tables.loadOut()
	var d routerDeltas
	v := r.processOutbound(&st, p, now.UnixNano(), &d, nil)
	d.flush(&r.ctr)
	return v
}

// ProcessOutboundBatch processes a burst of outbound packets against a
// single coherent snapshot of the tables, amortizing snapshot loads,
// CMAC scratch buffers and counter flushes across the burst. Verdicts
// are appended to dst (pass a reused buffer to keep the call
// allocation-free) and returned. Every packet in the burst sees the
// same table/key state; a concurrent controller mutation applies to
// the next burst.
func (r *BorderRouter) ProcessOutboundBatch(pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	st := r.Tables.loadOut()
	nowN := now.UnixNano()
	var d routerDeltas
	var s cmac.Scratch
	for _, p := range pkts {
		dst = append(dst, r.processOutbound(&st, p, nowN, &d, &s))
	}
	d.flush(&r.ctr)
	return dst
}

// processOutbound is the snapshot-level outbound path shared by the
// single-packet and batch entry points.
func (r *BorderRouter) processOutbound(st *outState, p MarkCarrier, nowN int64, d *routerDeltas, s *cmac.Scratch) Verdict {
	d.outProcessed++
	tup := r.Tables.genOutTuple(st, p.SrcAddr(), p.DstAddr(), nowN)
	if tup.Drop {
		d.outDropped++
		return VerdictDrop
	}
	if !tup.Stamp {
		return VerdictPass
	}
	if tup.Key == nil {
		// CDP-stamp scheduled but the destination is not a peer (e.g.
		// key torn down mid-invocation): pass unstamped rather than
		// break connectivity.
		return VerdictPass
	}
	// §V-F: stamping may grow an IPv6 packet by up to 8 bytes; if that
	// exceeds the external link MTU, return "packet too big"
	// announcing an MTU 8 bytes below the link's.
	if r.ExternalMTU > 0 {
		if v6, ok := p.(V6); ok {
			if v6.P.WireLen()+v6.P.StampOverheadV6() > r.ExternalMTU {
				d.outTooBig++
				if r.OnPacketTooBig != nil {
					if icmp, err := packet.NewICMPv6PacketTooBig(r.RouterAddr, v6.P, uint32(r.ExternalMTU-8)); err == nil {
						r.OnPacketTooBig(icmp)
					}
				}
				return VerdictDrop
			}
		}
	}
	var macs int
	var err error
	if s != nil {
		if sc, ok := p.(scratchCarrier); ok {
			macs, err = sc.stampWith(tup.Key, s)
		} else {
			macs, err = p.Stamp(tup.Key)
		}
	} else {
		macs, err = p.Stamp(tup.Key)
	}
	d.macsComputed += uint64(macs)
	if err != nil {
		// Packet cannot carry a mark (e.g. duplicate option): pass; the
		// verification end will treat it as unmarked.
		return VerdictPass
	}
	d.outStamped++
	return VerdictPassStamped
}

// ProcessInbound runs the inbound half of the Figure-3 flow on a
// packet entering the AS.
func (r *BorderRouter) ProcessInbound(p MarkCarrier, now time.Time) Verdict {
	st := r.Tables.loadIn()
	var d routerDeltas
	v := r.processInbound(&st, p, now.UnixNano(), &d, nil)
	d.flush(&r.ctr)
	return v
}

// ProcessInboundBatch is the inbound counterpart of
// ProcessOutboundBatch.
func (r *BorderRouter) ProcessInboundBatch(pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	st := r.Tables.loadIn()
	nowN := now.UnixNano()
	var d routerDeltas
	var s cmac.Scratch
	for _, p := range pkts {
		dst = append(dst, r.processInbound(&st, p, nowN, &d, &s))
	}
	d.flush(&r.ctr)
	return dst
}

// processInbound is the snapshot-level inbound path shared by the
// single-packet and batch entry points.
func (r *BorderRouter) processInbound(st *inState, p MarkCarrier, nowN int64, d *routerDeltas, s *cmac.Scratch) Verdict {
	d.inProcessed++
	tup := r.Tables.genInTuple(st, p.SrcAddr(), p.DstAddr(), nowN)
	if !tup.Verify {
		return VerdictPass
	}
	if tup.EraseOnly {
		// Grace interval: erase without enforcement (§IV-E1).
		p.Erase(r.randomBits())
		d.inErasedOnly++
		return VerdictPass
	}
	valid, keyKnown, macs := false, false, 0
	if tup.SrcKnown {
		valid, keyKnown, macs = st.keys.verifyMark(tup.SrcAS, p, s)
	}
	d.macsComputed += uint64(macs)
	if !keyKnown {
		// CDP-verify is conditional on src ∈ peer (Table I): traffic
		// from non-peer sources cannot be verified and passes; it is
		// the peers' DP filters that handle it.
		return VerdictPass
	}
	if valid {
		p.Erase(r.randomBits())
		d.inVerified++
		return VerdictPassVerified
	}
	d.inVerifyFail++
	if r.alarmMode.Load() {
		d.inAlarmed++
		if r.OnAlarm != nil {
			r.OnAlarm(AlarmSample{
				Src:   p.SrcAddr(),
				Dst:   p.DstAddr(),
				SrcAS: tup.SrcAS,
				When:  time.Unix(0, nowN).UTC(),
			})
		}
		p.Erase(r.randomBits())
		return VerdictPassAlarm
	}
	d.inDropped++
	return VerdictDrop
}

// ScrubInboundICMP inspects an inbound ICMP(v4) error message and
// erases any DISCS mark from the embedded packet (§VI-E2): without
// this, a host inside the DAS could learn valid marks by triggering
// TTL-exceeded errors just outside the border. It reports whether a
// scrub happened.
func (r *BorderRouter) ScrubInboundICMP(p *packet.IPv4) bool {
	if packet.ScrubICMPv4EmbeddedMark(p, r.randomBits()) {
		r.ctr.icmpScrubbed.Add(1)
		return true
	}
	return false
}

// ScrubInboundICMPv6 is the IPv6 counterpart of ScrubInboundICMP.
func (r *BorderRouter) ScrubInboundICMPv6(p *packet.IPv6) bool {
	if packet.ScrubICMPv6EmbeddedMark(p, r.randomBits()) {
		r.ctr.icmpScrubbed.Add(1)
		return true
	}
	return false
}
