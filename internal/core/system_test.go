package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/topology"
)

func TestSendV4UnroutableDestination(t *testing.T) {
	s := testInternet(t)
	res := s.SendV4(1001, mkV4("172.16.1.10", "203.0.113.9"))
	if res.Delivered {
		t.Fatal("unroutable destination delivered")
	}
	if res.DroppedAt != 1001 {
		t.Fatalf("dropped at %d", res.DroppedAt)
	}
}

func TestSendV4IntraAS(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001)
	// Same-AS traffic never crosses the border: no inbound processing.
	res := s.SendV4(1001, mkV4("172.16.1.10", "172.16.1.20"))
	if !res.Delivered {
		t.Fatalf("intra-AS traffic dropped: %+v", res)
	}
}

func TestSendV4TTLBoundaries(t *testing.T) {
	s := testInternet(t)
	// Path 1001→1004 is 6 ASes; every border beyond the source
	// decrements, so TTL=6 is the minimum that reaches the destination.
	p := mkV4("172.16.1.10", "172.16.4.10")
	p.TTL = 6
	if res := s.SendV4(1001, p); !res.Delivered {
		t.Fatalf("TTL=6 should just reach: %+v", res)
	}
	q := mkV4("172.16.1.10", "172.16.4.10")
	q.TTL = 5
	res := s.SendV4(1001, q)
	if res.Delivered || !res.TTLExpired {
		t.Fatalf("TTL=5 should expire: %+v", res)
	}
	if res.DroppedAt != 1004 {
		t.Fatalf("TTL=5 should die at the last border, got AS%d", res.DroppedAt)
	}
	if res.ICMPReturned == nil {
		t.Fatal("no ICMP time-exceeded returned")
	}
	if res.ICMPReturned.Dst != q.Src {
		t.Fatalf("ICMP went to %v", res.ICMPReturned.Dst)
	}
}

func TestSendV6UnroutableAndHopLimit(t *testing.T) {
	s := testInternet(t)
	if err := s.Net.Topo.AddPrefix(1001, netip.MustParsePrefix("2001:db8:1::/48")); err != nil {
		t.Fatal(err)
	}
	if err := s.Net.Topo.AddPrefix(1004, netip.MustParsePrefix("2001:db8:4::/48")); err != nil {
		t.Fatal(err)
	}
	p := samplePacketV6()
	p.Src = netip.MustParseAddr("2001:db8:1::1")
	p.Dst = netip.MustParseAddr("2001:db8:ffff::1") // unrouted
	if res := s.SendV6(1001, p); res.Delivered {
		t.Fatal("unroutable v6 delivered")
	}
	q := samplePacketV6()
	q.Src = netip.MustParseAddr("2001:db8:1::1")
	q.Dst = netip.MustParseAddr("2001:db8:4::1")
	q.HopLimit = 2
	res := s.SendV6(1001, q)
	if res.Delivered || !res.TTLExpired {
		t.Fatalf("hop limit 2 should expire: %+v", res)
	}
}

// TestControlPlaneScale deploys many DASes on a generated Internet and
// checks that the full peering mesh, key exchange, and a broadcast
// invocation all complete.
func TestControlPlaneScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test in -short mode")
	}
	tp, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 250, NumPrefixes: 600, ZipfExponent: 1.0, TierOneCount: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	s := NewSystem(net, DefaultConfig())
	const nDAS = 16
	deployers := tp.BySizeDesc()[:nDAS]
	for i, asn := range deployers {
		if _, err := s.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Full mesh: every DAS peers with every other.
	for _, asn := range deployers {
		c := s.Controllers[asn]
		if got := len(c.Peers()); got != nDAS-1 {
			t.Fatalf("AS%d has %d peers, want %d", asn, got, nDAS-1)
		}
		for _, peer := range c.Peers() {
			if !c.KeysReadyWith(peer) {
				t.Fatalf("AS%d keys not ready with AS%d", asn, peer)
			}
		}
	}
	// Broadcast invocation from the smallest deployer.
	victim := s.Controllers[deployers[nDAS-1]]
	n, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: DP, Duration: time.Hour,
	})
	if err != nil || n != nDAS-1 {
		t.Fatalf("Invoke → %d peers, %v", n, err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if victim.Stats().Get(MetricCtrlInvokesAccepted) != uint64(nDAS-1) {
		t.Fatalf("accepted %d/%d invocations", victim.Stats().Get(MetricCtrlInvokesAccepted), nDAS-1)
	}
}
