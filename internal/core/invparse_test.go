package core

import (
	"testing"
	"time"
)

func TestParseInvocationBasic(t *testing.T) {
	inv, err := ParseInvocation("10.0.0.0/24:DP")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != DP || inv.Duration != DefaultDuration || inv.Alarm {
		t.Fatalf("inv = %+v", inv)
	}
	if len(inv.Prefixes) != 1 || inv.Prefixes[0].String() != "10.0.0.0/24" {
		t.Fatalf("prefixes = %v", inv.Prefixes)
	}
}

func TestParseInvocationFull(t *testing.T) {
	inv, err := ParseInvocation("10.0.0.0/24+10.1.0.0/24:cdp:90m:alarm")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != CDP || inv.Duration != 90*time.Minute || !inv.Alarm {
		t.Fatalf("inv = %+v", inv)
	}
	if len(inv.Prefixes) != 2 {
		t.Fatalf("prefixes = %v", inv.Prefixes)
	}
}

func TestParseInvocationIPv6(t *testing.T) {
	inv, err := ParseInvocation("2001:db8::/48:CSP:30m")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != CSP || inv.Duration != 30*time.Minute {
		t.Fatalf("inv = %+v", inv)
	}
	if inv.Prefixes[0].String() != "2001:db8::/48" {
		t.Fatalf("prefix = %v", inv.Prefixes[0])
	}
}

func TestParseInvocationMasksHostBits(t *testing.T) {
	inv, err := ParseInvocation("10.0.0.7/24:SP")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Prefixes[0].String() != "10.0.0.0/24" {
		t.Fatalf("prefix = %v", inv.Prefixes[0])
	}
}

func TestParseInvocationErrors(t *testing.T) {
	bad := []string{
		"",                      // empty
		"DP",                    // no prefix
		"10.0.0.0/24",           // no function
		"10.0.0.0/24:XX",        // unknown function
		"zz/24:DP",              // bad prefix
		"10.0.0.0/24:DP:xyz",    // bad duration
		"10.0.0.0/24:DP:-5m",    // negative duration (Validate)
		"10.0.0.0/24+zz/8:CDP",  // bad second prefix
		"10.0.0.0/24:DP:1h:wat", // trailing junk
	}
	for _, s := range bad {
		if _, err := ParseInvocation(s); err == nil {
			t.Errorf("ParseInvocation(%q) should fail", s)
		}
	}
}

func TestParseInvocations(t *testing.T) {
	invs, err := ParseInvocations("10.0.0.0/24:DP, 10.0.0.0/24:CDP:2h")
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 || invs[0].Function != DP || invs[1].Duration != 2*time.Hour {
		t.Fatalf("invs = %+v", invs)
	}
	if _, err := ParseInvocations(" , "); err == nil {
		t.Fatal("empty list should fail")
	}
	if _, err := ParseInvocations("10.0.0.0/24:DP,bad"); err == nil {
		t.Fatal("bad element should fail")
	}
}

func TestInvocationStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"10.0.0.0/24:DP:24h0m0s",
		"10.0.0.0/24+10.1.0.0/24:CDP:1h30m0s:alarm",
		"2001:db8::/48:CSP:30m0s",
	} {
		inv, err := ParseInvocation(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		again, err := ParseInvocation(inv.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", inv.String(), err)
		}
		if again.Function != inv.Function || again.Duration != inv.Duration ||
			again.Alarm != inv.Alarm || len(again.Prefixes) != len(inv.Prefixes) {
			t.Fatalf("round trip %q -> %q -> %+v", s, inv.String(), again)
		}
	}
}
