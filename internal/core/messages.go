package core

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"discs/internal/netsim"
	"discs/internal/topology"
)

// MsgType enumerates controller-to-controller messages.
type MsgType string

// Control-plane message types (§IV). Peering setup, key negotiation,
// function invocation and alarm control.
const (
	MsgPeeringRequest MsgType = "peering-request"
	MsgPeeringAccept  MsgType = "peering-accept"
	MsgPeeringReject  MsgType = "peering-reject"
	MsgKeyDeploy      MsgType = "key-deploy"
	MsgKeyAck         MsgType = "key-ack"
	MsgInvoke         MsgType = "invoke"
	MsgInvokeAck      MsgType = "invoke-ack"
	MsgInvokeReject   MsgType = "invoke-reject"
	MsgQuitAlarm      MsgType = "quit-alarm"
	// Liveness keepalives on established peerings: any authenticated
	// traffic proves the peer alive, the heartbeat just guarantees a
	// floor on how often such traffic exists.
	MsgHeartbeat    MsgType = "heartbeat"
	MsgHeartbeatAck MsgType = "heartbeat-ack"
)

// Invocation is one (v, f, duration) triple of §IV-E: the prefixes to
// protect, the function to execute on them, and how long.
type Invocation struct {
	Prefixes []netip.Prefix `json:"prefixes"`
	Function Function       `json:"function"`
	Duration time.Duration  `json:"duration"`
	// Alarm requests the peers execute the function in alarm mode
	// (§IV-F): identified packets are sampled, not dropped.
	Alarm bool `json:"alarm,omitempty"`
}

// Validate checks structural sanity.
func (inv Invocation) Validate() error {
	if len(inv.Prefixes) == 0 {
		return fmt.Errorf("core: invocation without prefixes")
	}
	for _, p := range inv.Prefixes {
		if !p.IsValid() {
			return fmt.Errorf("core: invalid prefix in invocation")
		}
	}
	if inv.Function >= numFunctions {
		return fmt.Errorf("core: invalid function %d", inv.Function)
	}
	if inv.Duration <= 0 {
		return fmt.Errorf("core: non-positive duration %v", inv.Duration)
	}
	return nil
}

// ControlMsg is the JSON payload of a protected con-con record.
type ControlMsg struct {
	Type MsgType      `json:"type"`
	From topology.ASN `json:"from"`

	// MsgPeeringReject / MsgInvokeReject
	Reason string `json:"reason,omitempty"`

	// MsgKeyDeploy: Key is key_{from,to}; Serial orders rekeys.
	Key    []byte `json:"key,omitempty"`
	Serial uint64 `json:"serial,omitempty"`

	// MsgKeyAck echoes Serial.

	// MsgInvoke
	Invocations []Invocation `json:"invocations,omitempty"`
}

// Encode serializes the message.
func (m *ControlMsg) Encode() ([]byte, error) { return json.Marshal(m) }

// DecodeControlMsg parses a message.
func DecodeControlMsg(b []byte) (*ControlMsg, error) {
	var m ControlMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("core: bad control message: %w", err)
	}
	return &m, nil
}

// frameKind distinguishes transport frames on the controller channel.
type frameKind uint8

const (
	frameHello frameKind = iota
	frameReply
	frameRecord
	// Abbreviated resumption handshake (§VI-C session cache): hello
	// carries the client nonce, reply the server nonce + transcript
	// MAC. A responder without the cached secret answers reject, which
	// makes the initiator fall back to the full handshake.
	frameResumeHello
	frameResumeReply
	frameResumeReject

	numFrameKinds
)

// ctrlFrame is the netsim message exchanged between controller nodes:
// either a handshake frame or a protected record.
type ctrlFrame struct {
	Kind frameKind
	From string // sender controller name (directory key)
	Data []byte
}

// Size implements netsim.Message.
func (f *ctrlFrame) Size() int { return 1 + len(f.From) + len(f.Data) }

// Corrupt implements netsim.Corruptible: the fault injector models bit
// errors in the frame payload (handshake material or sealed record),
// which the crypto layer must reject without panicking. The sender's
// frame is left intact.
func (f *ctrlFrame) Corrupt(r uint64) netsim.Message {
	c := &ctrlFrame{Kind: f.Kind, From: f.From, Data: append([]byte(nil), f.Data...)}
	if len(c.Data) > 0 {
		netsim.CorruptBytes(c.Data, r)
	} else {
		c.Kind = frameKind(r % uint64(numFrameKinds))
	}
	return c
}
