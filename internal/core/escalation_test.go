package core

import (
	"testing"
	"time"
)

// driveAttackUntilDetection pushes spoofed packets (claiming the peer
// AS1001's space from legacy AS1002) until the victim's alarm
// threshold trips.
func driveAttackUntilDetection(s *System, n int) {
	for i := 0; i < n; i++ {
		s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	}
}

// TestEscalationDoublesDuration exercises the §IV-E1 re-invocation
// loop: detection → enforce for d → windows expire while the attack
// persists → re-armed alarm detects again → re-invoke for 2d.
func TestEscalationDoublesDuration(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	victim.cfg.AlarmThreshold = 10
	victim.cfg.Grace = time.Second // keep the grace window small
	pol := &AutoDefendPolicy{
		Functions: []Function{CDP},
		Duration:  10 * time.Minute,
		Escalate:  true,
	}
	victim.AutoDefend = pol

	// Standing alarm-mode CDP (the detection net, long duration).
	if _, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP,
		Duration: 30 * 24 * time.Hour, Alarm: true,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	victim.SetAlarmMode(true)
	// Time-bounded runs (not Settle) so the escalation re-arm timer
	// fires at its scheduled time instead of being fast-forwarded.
	runFor := func(d time.Duration) { s.Net.Sim.Run(s.Net.Sim.Now() + d) }
	runFor(2 * time.Second)

	// First detection.
	driveAttackUntilDetection(s, 15)
	runFor(time.Second) // control plane delivers the auto invocation
	if pol.lastDuration != 10*time.Minute {
		t.Fatalf("first invocation duration = %v", pol.lastDuration)
	}
	// Enforcement active (past the 1s grace): spoofed drops.
	runFor(2 * time.Second)
	if res := s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10")); res.Delivered {
		t.Fatal("enforcement not active after first detection")
	}

	// Let the 10-minute enforcement lapse; the standing alarm
	// invocation (30 days) keeps CDP verification scheduled... note the
	// auto invocation replaced the In-Dst window, so after expiry the
	// re-armed alarm path needs fresh samples to re-trigger.
	runFor(11 * time.Minute)
	if !s.Routers[1004].AlarmModeOn() {
		t.Fatal("alarm mode not re-armed after enforcement expiry")
	}
	// The enforcement window expired: spoofed traffic passes again.
	if res := s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10")); !res.Delivered {
		t.Fatalf("expected pass after expiry, got %+v", res)
	}
	// Re-invoke the standing detection net (expired with the window
	// replacement), then the persisting attack triggers escalation.
	if _, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP,
		Duration: 30 * 24 * time.Hour, Alarm: true,
	}); err != nil {
		t.Fatal(err)
	}
	runFor(2 * time.Second)
	driveAttackUntilDetection(s, 15)
	runFor(time.Second)
	if pol.lastDuration != 20*time.Minute {
		t.Fatalf("escalated duration = %v, want 20m", pol.lastDuration)
	}
	runFor(2 * time.Second)
	if res := s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10")); res.Delivered {
		t.Fatal("enforcement not active after escalation")
	}
}

// TestEscalationCapped: the doubling stops at MaxDuration.
func TestEscalationCapped(t *testing.T) {
	pol := &AutoDefendPolicy{
		Functions:   []Function{DP},
		Duration:    10 * time.Minute,
		Escalate:    true,
		MaxDuration: 25 * time.Minute,
	}
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	victim.cfg.AlarmThreshold = 5
	victim.AutoDefend = pol
	victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP,
		Duration: 30 * 24 * time.Hour, Alarm: true,
	})
	s.Settle()

	for round := 0; round < 4; round++ {
		victim.SetAlarmMode(true)
		s.Net.Sim.After(2*time.Second, func() {})
		s.Settle()
		driveAttackUntilDetection(s, 10)
		s.Settle()
	}
	if pol.lastDuration > 25*time.Minute {
		t.Fatalf("duration %v exceeds cap", pol.lastDuration)
	}
}

// TestPurgeExpired: expired windows are reclaimed by the periodic
// purge sweep the controller arms on invocation — no manual
// PurgeExpired call needed.
func TestPurgeExpired(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1004)
	victim := s.Controllers[1004]
	if _, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP, Duration: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	if s.Routers[1004].Tables.In[TableInDst].Len() != 1 {
		t.Fatal("window not installed")
	}
	s.Net.Sim.After(2*time.Minute+time.Second, func() {})
	s.Settle()
	// The periodic sweep (background events) ran while the clock
	// advanced past the window end and reclaimed the slot.
	if s.Routers[1004].Tables.In[TableInDst].Len() != 0 {
		t.Fatal("expired window still present after periodic purge")
	}
	if victim.Stats().Get(MetricCtrlPurged) != 1 {
		t.Fatalf("Purged stat = %d, want 1", victim.Stats().Get(MetricCtrlPurged))
	}
	if n := victim.PurgeExpired(); n != 0 {
		t.Fatalf("manual purge after the sweep removed %d", n)
	}
}
