package core

import (
	"errors"
	"testing"
	"time"

	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/topology"
	"discs/internal/transport"
)

// fakeSender/fakeRuntime stand in for a real transport in service-mode
// construction tests.
type fakeSender struct{ sent []transport.Frame }

func (f *fakeSender) Send(peer string, fr transport.Frame) bool {
	f.sent = append(f.sent, fr)
	return true
}

type fakeRuntime struct{ now time.Duration }

func (r *fakeRuntime) Now() time.Duration                         { return r.now }
func (r *fakeRuntime) After(d time.Duration, fn func())           {}
func (r *fakeRuntime) AfterBackground(d time.Duration, fn func()) {}

// wantOptErr asserts err unwraps to an *OptionError naming the given
// struct and field.
func wantOptErr(t *testing.T, err error, strct, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want *OptionError for %s.%s, got nil", strct, field)
	}
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OptionError, got %T: %v", err, err)
	}
	if oe.Struct != strct || oe.Field != field {
		t.Fatalf("OptionError = %s.%s (%q), want %s.%s", oe.Struct, oe.Field, oe.Reason, strct, field)
	}
}

func TestControllerOptionsValidation(t *testing.T) {
	sim := netsim.New()
	node, err := sim.AddNode("ctrl.x")
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory()
	topo := topology.New()
	base := ControllerOptions{
		AS: 1, Name: "ctrl.x", Sim: sim, Node: node, Dir: dir, Topo: topo,
		Config: DefaultConfig(), Seed: 1,
	}

	cases := []struct {
		name         string
		mutate       func(*ControllerOptions)
		strct, field string
	}{
		{"missing name", func(o *ControllerOptions) { o.Name = "" }, "ControllerOptions", "Name"},
		{"missing dir", func(o *ControllerOptions) { o.Dir = nil }, "ControllerOptions", "Dir"},
		{"missing topo", func(o *ControllerOptions) { o.Topo = nil }, "ControllerOptions", "Topo"},
		{"missing sim", func(o *ControllerOptions) { o.Sim = nil }, "ControllerOptions", "Sim"},
		{"missing node", func(o *ControllerOptions) { o.Node = nil }, "ControllerOptions", "Node"},
		{"runtime without conn", func(o *ControllerOptions) { o.Runtime = &fakeRuntime{} }, "ControllerOptions", "Runtime"},
		{"conn without runtime", func(o *ControllerOptions) {
			o.Sim, o.Node = nil, nil
			o.Conn = &fakeSender{}
		}, "ControllerOptions", "Runtime"},
		{"service mode without registry", func(o *ControllerOptions) {
			o.Sim, o.Node = nil, nil
			o.Conn, o.Runtime = &fakeSender{}, &fakeRuntime{}
		}, "ControllerOptions", "Registry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base
			c.mutate(&o)
			_, err := NewControllerWithOptions(o)
			wantOptErr(t, err, c.strct, c.field)
		})
	}

	if _, err := NewControllerWithOptions(base); err != nil {
		t.Fatalf("valid sim-mode options rejected: %v", err)
	}
}

// TestControllerServiceMode pins the service-mode construction path: a
// controller bound to a FrameSender + Runtime instead of a simulator
// builds, registers a node-less directory entry, and pushes its frames
// through the seam.
func TestControllerServiceMode(t *testing.T) {
	conn := &fakeSender{}
	rt := &fakeRuntime{}
	dir := NewDirectory()
	c, err := NewControllerWithOptions(ControllerOptions{
		AS: 7, Name: "ctrl.as7", Conn: conn, Runtime: rt,
		Dir: dir, Topo: topology.New(), Config: DefaultConfig(), Seed: 7,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ent := dir.Lookup("ctrl.as7")
	if ent == nil || ent.Node != nil {
		t.Fatalf("directory entry = %+v, want registered with nil node", ent)
	}
	// Seeing an Ad schedules a peering request through rt.After; with
	// the no-op fake runtime nothing must reach conn yet.
	if len(conn.sent) != 0 {
		t.Fatalf("unexpected frames sent: %d", len(conn.sent))
	}
	// Crash/Restart must not dereference the absent netsim node.
	c.Crash()
	c.Restart()
}

func TestRouterOptionsValidation(t *testing.T) {
	tab := NewTables(1, testPfx2AS(t))
	if _, err := NewBorderRouterWithOptions(RouterOptions{}); err == nil {
		t.Fatal("nil Tables accepted")
	} else {
		wantOptErr(t, err, "RouterOptions", "Tables")
	}
	_, err := NewBorderRouterWithOptions(RouterOptions{Tables: tab, ExternalMTU: -1})
	wantOptErr(t, err, "RouterOptions", "ExternalMTU")
	_, err = NewBorderRouterWithOptions(RouterOptions{Tables: tab, TraceSampleEvery: -8})
	wantOptErr(t, err, "RouterOptions", "TraceSampleEvery")
	if _, err := NewBorderRouterWithOptions(RouterOptions{Tables: tab}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestSystemOptionsValidation(t *testing.T) {
	_, err := NewSystemWithOptions(SystemOptions{})
	wantOptErr(t, err, "SystemOptions", "Net")
}

// TestOptionErrorMessage pins the rendered form operators see in logs.
func TestOptionErrorMessage(t *testing.T) {
	err := optErr("RouterOptions", "Tables", "required")
	if got, want := err.Error(), "core: RouterOptions.Tables: required"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}
