package core

import (
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// ParseInvocation parses the operator syntax for one invocation triple
// (§IV-E: "the complete formation of an invocation is a triple
// (v, f, duration)"):
//
//	<prefix>[+<prefix>...]:<function>[:<duration>][:alarm]
//
// Examples:
//
//	10.0.0.0/24:DP
//	10.0.0.0/24+10.1.0.0/24:CDP:1h
//	2001:db8::/48:CSP:30m:alarm
//
// The duration defaults to DefaultDuration (24h). The function name is
// case-insensitive. Because IPv6 prefixes contain colons, the prefix
// list is scanned from the right: the last one-to-three segments are
// interpreted as function[, duration][, alarm].
func ParseInvocation(s string) (Invocation, error) {
	parts := strings.Split(s, ":")
	// Find the function segment from the right.
	fnIdx := -1
	var fn Function
	for i := len(parts) - 1; i >= 0; i-- {
		if f, err := ParseFunction(parts[i]); err == nil {
			fnIdx, fn = i, f
			break
		}
	}
	if fnIdx <= 0 {
		return Invocation{}, fmt.Errorf("core: %q: no function (DP|CDP|SP|CSP) found", s)
	}
	inv := Invocation{Function: fn, Duration: DefaultDuration}

	// Everything left of the function is the prefix list.
	prefixPart := strings.Join(parts[:fnIdx], ":")
	for _, ps := range strings.Split(prefixPart, "+") {
		p, err := netip.ParsePrefix(strings.TrimSpace(ps))
		if err != nil {
			return Invocation{}, fmt.Errorf("core: %q: bad prefix %q: %v", s, ps, err)
		}
		inv.Prefixes = append(inv.Prefixes, p.Masked())
	}

	// Optional trailing segments: duration and/or "alarm".
	for _, seg := range parts[fnIdx+1:] {
		seg = strings.TrimSpace(seg)
		if strings.EqualFold(seg, "alarm") {
			inv.Alarm = true
			continue
		}
		d, err := time.ParseDuration(seg)
		if err != nil {
			return Invocation{}, fmt.Errorf("core: %q: bad duration %q", s, seg)
		}
		inv.Duration = d
	}
	if err := inv.Validate(); err != nil {
		return Invocation{}, err
	}
	return inv, nil
}

// ParseInvocations parses a comma-separated list of invocation triples.
func ParseInvocations(s string) ([]Invocation, error) {
	var out []Invocation
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		inv, err := ParseInvocation(part)
		if err != nil {
			return nil, err
		}
		out = append(out, inv)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: empty invocation list")
	}
	return out, nil
}

// String renders the invocation back in the operator syntax.
func (inv Invocation) String() string {
	ps := make([]string, len(inv.Prefixes))
	for i, p := range inv.Prefixes {
		ps[i] = p.String()
	}
	s := fmt.Sprintf("%s:%v:%v", strings.Join(ps, "+"), inv.Function, inv.Duration)
	if inv.Alarm {
		s += ":alarm"
	}
	return s
}
