package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/cmac"
	"discs/internal/packet"
)

// Regression tests for the per-packet verify/stamp semantics fixed in
// the lock-free data-plane rework. Each test fails against the previous
// implementation.

// §IV-E1: erase-only applies only when *every* operation demanding
// verification is inside its tolerance interval. The old predicate
// erased (and skipped enforcement) as soon as *any* demanding op was in
// grace, so an overlapping CDP invocation in its head tolerance could
// disable a CSP invocation that was in strict enforcement.
func TestEraseOnlyRequiresAllOpsInGrace(t *testing.T) {
	victim := netip.MustParsePrefix("10.3.0.0/16")
	local := netip.MustParsePrefix("10.2.0.0/16")
	src := netip.MustParseAddr("10.3.0.10")
	dst := netip.MustParseAddr("10.2.0.5")

	mk := func(cspGrace, cdpGrace time.Duration) *Tables {
		tb := NewTables(2, testPfx2AS(t))
		tb.In[TableInSrc].Install(victim, OpCSPVerify, t0, time.Hour, cspGrace)
		tb.In[TableInDst].Install(local, OpCDPVerify, t0, time.Hour, cdpGrace)
		return tb
	}
	// 5s into both windows.
	now := t0.Add(5 * time.Second)

	// CSP strict (no grace), CDP inside its 30s head tolerance:
	// enforcement must stay on.
	tup := mk(0, 30*time.Second).GenInTuple(src, dst, now)
	if !tup.Verify {
		t.Fatal("verify not demanded")
	}
	if tup.EraseOnly {
		t.Fatal("EraseOnly set while CSP-verify is in strict enforcement")
	}

	// Mirror image: CDP strict, CSP in grace.
	tup = mk(30*time.Second, 0).GenInTuple(src, dst, now)
	if tup.EraseOnly {
		t.Fatal("EraseOnly set while CDP-verify is in strict enforcement")
	}

	// Both in tolerance: erase-only applies.
	tup = mk(30*time.Second, 30*time.Second).GenInTuple(src, dst, now)
	if !tup.Verify || !tup.EraseOnly {
		t.Fatalf("tuple = %+v, want verify+erase-only", tup)
	}
}

// §VI-C2: a rekey-window verification that tries both keys costs two
// CMAC computations; the old counter always added one.
func TestRekeyWindowCountsBothMACs(t *testing.T) {
	keyA := make([]byte, 16)
	keyA[0] = 1
	keyB := make([]byte, 16)
	keyB[0] = 2
	ca, err := cmac.New(keyA)
	if err != nil {
		t.Fatal(err)
	}

	kt := NewKeyTable()
	kt.SetVerifyKey(1, keyA)

	stampA := func() *packet.IPv4 {
		p := samplePacketV4()
		if _, err := (V4{p}).Stamp(ca); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Single live key: one computation.
	if valid, known, macs := kt.VerifyMark(1, V4{stampA()}); !valid || !known || macs != 1 {
		t.Fatalf("pre-rekey: valid=%v known=%v macs=%d, want true/true/1", valid, known, macs)
	}

	// Rekey window: current=B, previous=A. A mark stamped with the old
	// key fails against B first, then matches A — two computations.
	kt.SetVerifyKey(1, keyB)
	if valid, known, macs := kt.VerifyMark(1, V4{stampA()}); !valid || !known || macs != 2 {
		t.Fatalf("rekey window: valid=%v known=%v macs=%d, want true/true/2", valid, known, macs)
	}
	// An invalid mark tries (and charges) both keys too.
	if valid, _, macs := kt.VerifyMark(1, V4{samplePacketV4()}); valid || macs != 2 {
		t.Fatalf("rekey window invalid mark: valid=%v macs=%d, want false/2", valid, macs)
	}

	// Window closed: back to one computation, old-key marks now fail.
	kt.DropPreviousVerifyKey(1)
	if valid, _, macs := kt.VerifyMark(1, V4{stampA()}); valid || macs != 1 {
		t.Fatalf("post-rekey: valid=%v macs=%d, want false/1", valid, macs)
	}
}

// Router-level view of the same bug: MACsComputed must reflect the two
// computations a rekey-window verification performs.
func TestRouterStatsDuringRekeyWindow(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)

	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10")
	if v := peer.ProcessOutbound(V4{p}, now); v != VerdictPassStamped {
		t.Fatalf("outbound = %v", v)
	}

	// Open a rekey window at the victim: new current key, shared key
	// retained as previous. The in-flight packet carries an old-key mark.
	newKey := make([]byte, 16)
	newKey[9] = 0x77
	victim.Tables.Keys.SetVerifyKey(1, newKey)

	if v := victim.ProcessInbound(V4{p}, now); v != VerdictPassVerified {
		t.Fatalf("inbound = %v", v)
	}
	if s := victim.Stats(); s.MACsComputed != 2 || s.InVerified != 1 {
		t.Fatalf("stats = %+v, want MACsComputed=2 InVerified=1", s)
	}
}

// §VI-C2: an IPv6 stamp that fails after computing its CMAC (duplicate
// DISCS option) still costs one computation; the old router charged
// nothing on the error path.
func TestFailedV6StampCountsMAC(t *testing.T) {
	key := make([]byte, 16)
	c, err := cmac.New(key)
	if err != nil {
		t.Fatal(err)
	}
	p := samplePacketV6()
	if err := p.StampV6(0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if macs, err := (V6{p}).Stamp(c); err == nil || macs != 1 {
		t.Fatalf("Stamp on pre-stamped v6: macs=%d err=%v, want 1/duplicate", macs, err)
	}

	// And through the router: the packet passes unstamped, with the
	// wasted computation accounted.
	pfx := testPfx2AS(t)
	pfx.Insert(netip.MustParsePrefix("2001:db8:1::/48"), 1)
	pfx.Insert(netip.MustParsePrefix("2001:db8:3::/48"), 3)
	tables := NewTables(1, pfx)
	tables.In[TableOutDst].Install(netip.MustParsePrefix("2001:db8:3::/48"), OpCDPStamp, t0, time.Hour, 0)
	tables.Keys.SetStampKey(3, key)
	r := testRouter(tables, 1)

	q := samplePacketV6()
	q.Src = netip.MustParseAddr("2001:db8:1::10")
	if err := q.StampV6(0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v := r.ProcessOutbound(V6{q}, t0.Add(time.Minute)); v != VerdictPass {
		t.Fatalf("verdict = %v, want pass", v)
	}
	if s := r.Stats(); s.MACsComputed != 1 || s.OutStamped != 0 {
		t.Fatalf("stats = %+v, want MACsComputed=1 OutStamped=0", s)
	}
}

// The batch entry points must be observationally identical to the
// per-packet ones: same verdicts, same packet mutations, same counters.
func TestBatchMatchesSerial(t *testing.T) {
	mkPkts := func() []MarkCarrier {
		genuine := samplePacketV4()
		genuine.Src = netip.MustParseAddr("10.1.0.10")
		spoofed := samplePacketV4() // AS2 source, dropped by DP at the peer
		nonTarget := samplePacketV4()
		nonTarget.Src = netip.MustParseAddr("10.1.0.11")
		nonTarget.Dst = netip.MustParseAddr("10.4.0.9") // no ops scheduled
		genuine2 := samplePacketV4()
		genuine2.Src = netip.MustParseAddr("10.1.0.12")
		return []MarkCarrier{V4{genuine}, V4{spoofed}, V4{nonTarget}, V4{genuine2}}
	}

	serialPeer, serialVictim := peerVictimSetup(t)
	batchPeer, batchVictim := peerVictimSetup(t)
	now := t0.Add(time.Minute)

	serialOut := mkPkts()
	batchOut := mkPkts()
	var serialVerdicts []Verdict
	for _, p := range serialOut {
		serialVerdicts = append(serialVerdicts, serialPeer.ProcessOutbound(p, now))
	}
	batchVerdicts := batchPeer.ProcessOutboundBatch(batchOut, now, nil)
	if len(batchVerdicts) != len(serialVerdicts) {
		t.Fatalf("batch returned %d verdicts, want %d", len(batchVerdicts), len(serialVerdicts))
	}
	for i := range serialVerdicts {
		if serialVerdicts[i] != batchVerdicts[i] {
			t.Errorf("outbound pkt %d: serial=%v batch=%v", i, serialVerdicts[i], batchVerdicts[i])
		}
	}
	// Identical stamping: the marks written by both paths must agree.
	for i := range serialOut {
		sm := serialOut[i].(V4).P.Mark()
		bm := batchOut[i].(V4).P.Mark()
		if sm != bm {
			t.Errorf("outbound pkt %d: serial mark %08x, batch mark %08x", i, sm, bm)
		}
	}
	if s, b := serialPeer.Stats(), batchPeer.Stats(); s != b {
		t.Errorf("outbound stats diverge: serial %+v, batch %+v", s, b)
	}

	// Inbound: feed the surviving packets to the victims.
	var serialIn, batchIn []MarkCarrier
	for i := range serialVerdicts {
		if serialVerdicts[i] != VerdictDrop {
			serialIn = append(serialIn, serialOut[i])
			batchIn = append(batchIn, batchOut[i])
		}
	}
	serialVerdicts = serialVerdicts[:0]
	for _, p := range serialIn {
		serialVerdicts = append(serialVerdicts, serialVictim.ProcessInbound(p, now))
	}
	batchVerdicts = batchVictim.ProcessInboundBatch(batchIn, now, nil)
	for i := range serialVerdicts {
		if serialVerdicts[i] != batchVerdicts[i] {
			t.Errorf("inbound pkt %d: serial=%v batch=%v", i, serialVerdicts[i], batchVerdicts[i])
		}
	}
	if s, b := serialVictim.Stats(), batchVictim.Stats(); s != b {
		t.Errorf("inbound stats diverge: serial %+v, batch %+v", s, b)
	}
}
