package core

import (
	"fmt"
	"testing"
	"time"

	"discs/internal/netsim"
)

// TestCrashMidCampaignRecovery is the end-to-end failure campaign: the
// victim's controller crashes mid-defense, the peer detects the death
// via missed heartbeats and degrades gracefully (keys purged, the
// campaign's table entries withdrawn), and after a restart the session
// resumes over the abbreviated handshake and the campaign re-drives to
// full enforcement — all under seeded frame loss, so two runs of the
// whole scenario are identical.
func TestCrashMidCampaignRecovery(t *testing.T) {
	first := crashCampaignScenario(t)
	second := crashCampaignScenario(t)
	if first != second {
		t.Fatalf("scenario not deterministic:\nrun1: %s\nrun2: %s", first, second)
	}
}

// crashCampaignScenario runs the full scenario and returns a summary
// string of everything observable, for cross-run comparison.
func crashCampaignScenario(t *testing.T) string {
	t.Helper()
	s := testInternet(t)
	sim := s.Net.Sim
	fastLiveness(&s.cfg)
	sim.SeedFaults(7)
	// Fault the con-con links (created on demand, after BGP converged):
	// the recovery machinery must work through ambient loss too.
	sim.SetDefaultLinkFaults(netsim.LinkFaults{Loss: 0.05})
	deploy(t, s, 1001, 1004)
	victim, peer := s.Controllers[1004], s.Controllers[1001]

	// The campaign: DP + CDP protection for the victim's prefixes.
	if _, err := victim.Invoke(
		Invocation{Prefixes: victim.OwnPrefixes(), Function: DP, Duration: 24 * time.Hour},
		Invocation{Prefixes: victim.OwnPrefixes(), Function: CDP, Duration: 24 * time.Hour},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	sim.After(DefaultGrace+time.Second, func() {})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}

	legit := func() bool {
		return s.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10")).Delivered
	}
	spoof := func() bool {
		// AS1002 (legacy) spoofing the peer's prefix toward the victim.
		return s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10")).Delivered
	}
	if !legit() {
		t.Fatal("phase 1: legitimate peer traffic dropped")
	}
	if spoof() {
		t.Fatal("phase 1: spoofed traffic delivered — campaign not enforcing")
	}

	// Mid-campaign crash of the victim's controller. Its border routers
	// stay up and keep enforcing; its control plane goes silent.
	fullHandshakes := victim.Stats().Get(MetricCtrlHandshakesInitiated) + peer.Stats().Get(MetricCtrlHandshakesInitiated)
	if err := s.Crash(1004); err != nil {
		t.Fatal(err)
	}
	sim.Run(sim.Now() + 30*time.Second)

	if peer.Stats().Get(MetricCtrlPeersDeclaredDead) != 1 {
		t.Fatalf("peer never declared the victim dead (stat %d)", peer.Stats().Get(MetricCtrlPeersDeclaredDead))
	}
	if s.Routers[1001].Tables.Keys.StampKey(1004) != nil {
		t.Fatal("peer still stamping toward the dead victim")
	}
	withdrawn := 0
	for _, ft := range s.Routers[1001].Tables.In {
		withdrawn += ft.Len()
	}
	if withdrawn != 0 {
		t.Fatalf("campaign table entries not withdrawn at the peer: %d left", withdrawn)
	}
	// Degradation semantics: the victim's routers still enforce their
	// windows, so spoofing stays dead; the peer's unstamped (formerly
	// stamped) traffic is collateral damage until recovery.
	if spoof() {
		t.Fatal("outage: victim routers stopped enforcing")
	}
	if legit() {
		t.Fatal("outage: unstamped peer traffic passed CDP verification")
	}

	// Restart: Ads replay, the session resumes via the abbreviated
	// handshake, keys re-deploy, and the journaled campaign re-drives.
	if err := s.Restart(1004); err != nil {
		t.Fatal(err)
	}
	sim.Run(sim.Now() + 60*time.Second)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	sim.After(DefaultGrace+time.Second, func() {})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}

	if st, _ := peer.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("recovery: peer→victim status %v", st)
	}
	if st, _ := victim.PeerStatusOf(1001); st != PeerEstablished {
		t.Fatalf("recovery: victim→peer status %v", st)
	}
	if !victim.KeysReadyWith(1001) || !peer.KeysReadyWith(1004) {
		t.Fatal("recovery: keys not re-deployed")
	}
	if victim.Stats().Get(MetricCtrlCampaignResyncs) == 0 {
		t.Fatal("recovery: campaign never re-driven from the journal")
	}
	if victim.Stats().Get(MetricCtrlResumesInitiated)+peer.Stats().Get(MetricCtrlResumesInitiated) == 0 {
		t.Fatal("recovery: no abbreviated handshake was attempted")
	}
	if got := victim.Stats().Get(MetricCtrlHandshakesInitiated) + peer.Stats().Get(MetricCtrlHandshakesInitiated); got != fullHandshakes {
		t.Fatalf("recovery ran %d full handshakes; resumption should need none", got-fullHandshakes)
	}
	if !legit() {
		t.Fatal("recovery: legitimate peer traffic still dropped")
	}
	if spoof() {
		t.Fatal("recovery: campaign not enforcing after resync")
	}

	fs := sim.Stats()
	return fmt.Sprintf(
		"now=%v lost=%d crashdropped=%d peerRetries=%d victimRetries=%d dead=%d resyncs=%d resumesI=%d resumesR=%d fallbacks=%d hb=%d msgs=%d/%d",
		sim.Now(), fs.Get(netsim.MetricLost), fs.Get(netsim.MetricCrashDropped), peer.Stats().Get(MetricCtrlRetries), victim.Stats().Get(MetricCtrlRetries),
		peer.Stats().Get(MetricCtrlPeersDeclaredDead), victim.Stats().Get(MetricCtrlCampaignResyncs),
		victim.Stats().Get(MetricCtrlResumesInitiated)+peer.Stats().Get(MetricCtrlResumesInitiated),
		victim.Stats().Get(MetricCtrlResumesResponded)+peer.Stats().Get(MetricCtrlResumesResponded),
		victim.Stats().Get(MetricCtrlResumeFallbacks)+peer.Stats().Get(MetricCtrlResumeFallbacks),
		victim.Stats().Get(MetricCtrlHeartbeatsSent)+peer.Stats().Get(MetricCtrlHeartbeatsSent),
		victim.Stats().Get(MetricCtrlMsgsSent)+peer.Stats().Get(MetricCtrlMsgsSent), victim.Stats().Get(MetricCtrlMsgsRecv)+peer.Stats().Get(MetricCtrlMsgsRecv),
	)
}
