package core

import (
	"testing"

	"discs/internal/bgp"
)

// §IV-B notes that DAS discovery rides BGP and inherits its (in)security
// until RPKI/S-BGP close it. These tests show what a forged DISCS-Ad
// can and cannot achieve against the authenticated controller channel:
// the directory (the RPKI/DNS trust anchor) pins controller names to
// static keys, and every control message carries the sender's
// authenticated identity.

// TestSpoofedAdUnknownController: an attacker injects an Ad pointing
// victims at a controller name that is not registered. Peering simply
// never establishes — no crash, no half-open state beyond
// "discovered".
func TestSpoofedAdUnknownController(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001)
	c := s.Controllers[1001]
	c.HandleAd(bgp.DISCSAd{Origin: 300, Controller: "ctrl.evil.example"})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	st, ok := c.PeerStatusOf(300)
	if !ok {
		t.Fatal("Ad ignored entirely; expected discovered state")
	}
	if st == PeerEstablished {
		t.Fatal("peering established with an unregistered controller")
	}
}

// TestSpoofedAdControllerConfusion: the attacker advertises AS300 but
// points at AS1004's legitimate controller. The handshake succeeds
// (the controller is real), but every message it sends carries
// From=1004, which does not match the peer record for AS300 — so no
// state transition can be attributed to AS300.
func TestSpoofedAdControllerConfusion(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	c := s.Controllers[1001]
	legit := s.Controllers[1004]

	// Inject the confusion Ad: AS300 claims 1004's controller.
	c.HandleAd(bgp.DISCSAd{Origin: 300, Controller: legit.Name})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.PeerStatusOf(300); st == PeerEstablished {
		t.Fatal("AS300 became a peer through a borrowed controller")
	}
	// The legitimate peering with AS1004 is unharmed.
	if st, _ := c.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("legitimate peering damaged: %v", st)
	}
	if !c.KeysReadyWith(1004) {
		t.Fatal("legitimate keys damaged")
	}
	// And no key state was created for AS300.
	if s.Routers[1001].Tables.Keys.HasVerifyKey(300) {
		t.Fatal("verify key installed for the spoofed AS")
	}
}

// TestAdRenameTracksController: a DAS legitimately changing its
// controller name (new Ad) keeps working — the rename path must not be
// confusable with the attacks above.
func TestAdRenameTracksController(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	c1 := s.Controllers[1001]
	// 1004 re-advertises with the same name (steady state).
	c1.HandleAd(s.Controllers[1004].Ad())
	s.Settle()
	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("status after refresh = %v", st)
	}
}
