package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/topology"
)

// testInternet builds a 9-AS topology with tier-1s T1,T2 (10, 20),
// mids M1..M3 (100,200,300) and stubs S1..S4 (1001..1004), plus a
// converged BGP network and a DISCS system.
func testInternet(t *testing.T) *System {
	t.Helper()
	tp := topology.New()
	asns := []topology.ASN{10, 20, 100, 200, 300, 1001, 1002, 1003, 1004}
	for _, a := range asns {
		if _, err := tp.AddAS(a); err != nil {
			t.Fatal(err)
		}
	}
	links := []struct {
		a, b topology.ASN
		rel  topology.Relationship
	}{
		{10, 20, topology.PeerToPeer},
		{100, 10, topology.CustomerToProvider},
		{200, 10, topology.CustomerToProvider},
		{300, 20, topology.CustomerToProvider},
		{1001, 100, topology.CustomerToProvider},
		{1002, 100, topology.CustomerToProvider},
		{1003, 200, topology.CustomerToProvider},
		{1004, 300, topology.CustomerToProvider},
	}
	for _, l := range links {
		if err := tp.Link(l.a, l.b, l.rel); err != nil {
			t.Fatal(err)
		}
	}
	pfx := map[topology.ASN]string{
		10: "10.0.0.0/12", 20: "20.0.0.0/12", 100: "100.0.0.0/16",
		200: "100.1.0.0/16", 300: "100.2.0.0/16",
		1001: "172.16.1.0/24", 1002: "172.16.2.0/24", 1003: "172.16.3.0/24", 1004: "172.16.4.0/24",
	}
	for asn, p := range pfx {
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return NewSystem(net, DefaultConfig())
}

// deploy installs DISCS on the given ASes and settles the simulator.
func deploy(t *testing.T, s *System, asns ...topology.ASN) {
	t.Helper()
	for i, asn := range asns {
		if _, err := s.Deploy(asn, int64(i+1)); err != nil {
			t.Fatalf("Deploy(AS%d): %v", asn, err)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryAndPeering(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004, 300)
	for _, asn := range []topology.ASN{1001, 1004, 300} {
		c := s.Controllers[asn]
		peers := c.Peers()
		if len(peers) != 2 {
			t.Fatalf("AS%d peers = %v, want 2", asn, peers)
		}
		for _, p := range peers {
			if st, _ := c.PeerStatusOf(p); st != PeerEstablished {
				t.Fatalf("AS%d→AS%d status %v", asn, p, st)
			}
		}
	}
}

func TestKeyNegotiationCompletes(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	c1, c4 := s.Controllers[1001], s.Controllers[1004]
	if !c1.KeysReadyWith(1004) || !c4.KeysReadyWith(1001) {
		t.Fatal("stamping keys not active after settle")
	}
	// Both routers must hold verify keys for the peer.
	if !s.Routers[1001].Tables.Keys.HasVerifyKey(1004) {
		t.Fatal("AS1001 missing verify key for AS1004")
	}
	if !s.Routers[1004].Tables.Keys.HasVerifyKey(1001) {
		t.Fatal("AS1004 missing verify key for AS1001")
	}
	// And the stamping/verification keys must be consistent: a packet
	// stamped by 1001 toward 1004 verifies at 1004.
	pkt := samplePacketV4()
	pkt.Src = netip.MustParseAddr("172.16.1.10")
	pkt.Dst = netip.MustParseAddr("172.16.4.10")
	key := s.Routers[1001].Tables.Keys.StampKey(1004)
	if key == nil {
		t.Fatal("no stamp key")
	}
	V4{pkt}.Stamp(key)
	if valid, known, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{pkt}); !valid || !known {
		t.Fatalf("cross-verify failed: valid=%v known=%v", valid, known)
	}
}

func TestBlacklistBlocksPeering(t *testing.T) {
	s := testInternet(t)
	// Deploy 1001 first so its controller exists before 1004's Ad.
	if _, err := s.Deploy(1001, 1); err != nil {
		t.Fatal(err)
	}
	s.Controllers[1001].Blacklist[1004] = true
	if _, err := s.Deploy(1004, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// 1001 never requests peering with 1004; 1004's request to 1001 is
	// rejected... 1001 ignores the Ad entirely, but 1004 sends a
	// request which 1001 must reject by blacklist.
	if st, ok := s.Controllers[1001].PeerStatusOf(1004); ok && st == PeerEstablished {
		t.Fatal("blacklisted AS became a peer")
	}
	if st, _ := s.Controllers[1004].PeerStatusOf(1001); st == PeerEstablished {
		t.Fatal("peering established despite remote blacklist")
	}
}

func TestInvokeDPCDP(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	n, err := victim.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.4.0/24")},
		Function: DP, Duration: time.Hour,
	}, Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.4.0/24")},
		Function: CDP, Duration: time.Hour,
	})
	if err != nil || n != 1 {
		t.Fatalf("Invoke = %d, %v", n, err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if victim.Stats().Get(MetricCtrlInvokesAccepted) != 1 {
		t.Fatalf("acks = %d", victim.Stats().Get(MetricCtrlInvokesAccepted))
	}
	now := s.Now().Add(time.Second)
	// Peer's Out-Dst table has DP-filter and CDP-stamp for the victim.
	active, _ := s.Routers[1001].Tables.In[TableOutDst].ActiveOps(netip.MustParseAddr("172.16.4.10"), now)
	if !active.Has(OpDPFilter) || !active.Has(OpCDPStamp) {
		t.Fatalf("peer Out-Dst ops = %v", active)
	}
	// Victim's In-Dst has CDP-verify.
	active, _ = s.Routers[1004].Tables.In[TableInDst].ActiveOps(netip.MustParseAddr("172.16.4.10"), now)
	if !active.Has(OpCDPVerify) {
		t.Fatalf("victim In-Dst ops = %v", active)
	}
}

func TestInvokeRejectedForForeignPrefix(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	// Claiming someone else's prefix is rejected locally.
	_, err := victim.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.1.0/24")},
		Function: DP, Duration: time.Hour,
	})
	if err == nil {
		t.Fatal("invoking for a foreign prefix should fail")
	}
	// And a malicious controller bypassing its own check is rejected by
	// the peer's RPKI validation: craft the message directly.
	evil := &ControlMsg{Type: MsgInvoke, From: 1004, Invocations: []Invocation{{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.1.0/24")},
		Function: DP, Duration: time.Hour,
	}}}
	for _, p := range victim.peers {
		if p.status == PeerEstablished {
			victim.sendMsg(p, evil)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if victim.Stats().Get(MetricCtrlInvokesRejected) == 0 {
		t.Fatal("peer accepted an invocation for a prefix the victim does not own")
	}
	now := s.Now().Add(time.Second)
	active, _ := s.Routers[1001].Tables.In[TableOutDst].ActiveOps(netip.MustParseAddr("172.16.1.10"), now)
	if active != 0 {
		t.Fatal("peer installed ops for an unauthorized prefix")
	}
}

func TestInvokeValidation(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1004)
	victim := s.Controllers[1004]
	if _, err := victim.Invoke(Invocation{Function: DP, Duration: time.Hour}); err == nil {
		t.Fatal("empty prefixes should fail")
	}
	if _, err := victim.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.4.0/24")},
		Function: DP, Duration: -time.Hour,
	}); err == nil {
		t.Fatal("negative duration should fail")
	}
	if _, err := victim.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.4.0/24")},
		Function: Function(99), Duration: time.Hour,
	}); err == nil {
		t.Fatal("bogus function should fail")
	}
}

func TestRekeyKeepsTrafficFlowing(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	if _, err := victim.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("172.16.4.0/24")},
		Function: CDP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()

	send := func() Verdict {
		pkt := samplePacketV4()
		pkt.Src = netip.MustParseAddr("172.16.1.10")
		pkt.Dst = netip.MustParseAddr("172.16.4.10")
		now := s.Now().Add(time.Minute) // clear of the grace interval
		if v := s.Routers[1001].ProcessOutbound(V4{pkt}, now); v != VerdictPassStamped {
			return v
		}
		return s.Routers[1004].ProcessInbound(V4{pkt}, now)
	}
	if v := send(); v != VerdictPassVerified {
		t.Fatalf("pre-rekey verdict = %v", v)
	}
	// AS1001 rekeys toward 1004. Until the ack arrives, stamping uses
	// the old key; the victim accepts both during the overlap.
	if err := s.Controllers[1001].Rekey(1004); err != nil {
		t.Fatal(err)
	}
	// Before settle: old key still stamps.
	if v := send(); v != VerdictPassVerified {
		t.Fatalf("mid-rekey verdict = %v", v)
	}
	s.Settle()
	// After settle: new key stamps, old dropped after overlap (overlap
	// expiry ran inside Settle as a timer).
	if v := send(); v != VerdictPassVerified {
		t.Fatalf("post-rekey verdict = %v", v)
	}
}

func TestRekeyAll(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1003, 1004)
	c := s.Controllers[1001]
	c.RekeyAll()
	s.Settle()
	if !c.KeysReadyWith(1003) || !c.KeysReadyWith(1004) {
		t.Fatal("RekeyAll left stamping inactive")
	}
}

func TestLateDeployerDiscoversEarlierOnes(t *testing.T) {
	// Incremental deployment (§VI-A): a DAS joining later must learn
	// existing DASes from the retained Ads and peer with them without
	// any change to the existing peerings.
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	before1, before4 := s.Controllers[1001].Peers(), s.Controllers[1004].Peers()
	deploy(t, s, 300) // late deployer
	c := s.Controllers[300]
	if len(c.Peers()) != 2 {
		t.Fatalf("late deployer peers = %v", c.Peers())
	}
	// Existing peers gained the newcomer without losing each other.
	after1, after4 := s.Controllers[1001].Peers(), s.Controllers[1004].Peers()
	if len(after1) != len(before1)+1 || len(after4) != len(before4)+1 {
		t.Fatalf("existing peerings disturbed: %v -> %v, %v -> %v", before1, after1, before4, after4)
	}
}

func TestDeployErrors(t *testing.T) {
	s := testInternet(t)
	if _, err := s.Deploy(9999, 1); err == nil {
		t.Fatal("deploying unknown AS should fail")
	}
	deploy(t, s, 1001)
	if _, err := s.Deploy(1001, 2); err == nil {
		t.Fatal("double deploy should fail")
	}
}

func TestControlMsgRoundTrip(t *testing.T) {
	m := &ControlMsg{
		Type: MsgInvoke, From: 42,
		Invocations: []Invocation{{
			Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
			Function: CSP, Duration: time.Hour, Alarm: true,
		}},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeControlMsg(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.From != m.From || len(got.Invocations) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	inv := got.Invocations[0]
	if inv.Function != CSP || inv.Duration != time.Hour || !inv.Alarm || inv.Prefixes[0].String() != "10.0.0.0/8" {
		t.Fatalf("invocation = %+v", inv)
	}
	if _, err := DecodeControlMsg([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
