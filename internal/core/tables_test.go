package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/lpm"
	"discs/internal/topology"
)

var t0 = time.Unix(0, 0).UTC()

func testPfx2AS(t *testing.T) *lpm.Table[topology.ASN] {
	t.Helper()
	tbl := lpm.New[topology.ASN]()
	// AS1: 10.1.0.0/16 (the local AS in these tests)
	// AS2: 10.2.0.0/16 (a peer)
	// AS3: 10.3.0.0/16 (the victim)
	// AS4: 10.4.0.0/16 (a legacy AS)
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := tbl.Insert(netip.MustParsePrefix(p), asn); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestFuncTableInstallAndExpiry(t *testing.T) {
	ft := NewFuncTable(TableOutDst)
	v := netip.MustParsePrefix("10.3.0.0/16")
	if err := ft.Install(v, OpDPFilter, t0, time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	active, _ := ft.ActiveOps(ip("10.3.1.1"), t0.Add(time.Minute))
	if !active.Has(OpDPFilter) {
		t.Fatal("op not active inside window")
	}
	active, _ = ft.ActiveOps(ip("10.3.1.1"), t0.Add(2*time.Hour))
	if active != 0 {
		t.Fatal("op active after expiry")
	}
	active, _ = ft.ActiveOps(ip("10.4.1.1"), t0.Add(time.Minute))
	if active != 0 {
		t.Fatal("op active for non-matching address")
	}
	// Exactly at end: exclusive.
	active, _ = ft.ActiveOps(ip("10.3.1.1"), t0.Add(time.Hour))
	if active != 0 {
		t.Fatal("window end must be exclusive")
	}
}

func TestFuncTableGrace(t *testing.T) {
	ft := NewFuncTable(TableInDst)
	v := netip.MustParsePrefix("10.3.0.0/16")
	ft.Install(v, OpCDPVerify, t0, time.Hour, 30*time.Second)
	// Head grace.
	_, grace := ft.ActiveOps(ip("10.3.0.1"), t0.Add(10*time.Second))
	if !grace.Has(OpCDPVerify) {
		t.Fatal("head grace not reported")
	}
	// Middle: no grace.
	_, grace = ft.ActiveOps(ip("10.3.0.1"), t0.Add(30*time.Minute))
	if grace != 0 {
		t.Fatal("grace in the middle of the window")
	}
	// Tail grace.
	_, grace = ft.ActiveOps(ip("10.3.0.1"), t0.Add(time.Hour-10*time.Second))
	if !grace.Has(OpCDPVerify) {
		t.Fatal("tail grace not reported")
	}
}

func TestFuncTableReinvokeExtends(t *testing.T) {
	ft := NewFuncTable(TableOutDst)
	v := netip.MustParsePrefix("10.3.0.0/16")
	ft.Install(v, OpDPFilter, t0, time.Hour, 0)
	// Re-invoke at 30 min with a longer duration (§IV-E1).
	ft.Install(v, OpDPFilter, t0.Add(30*time.Minute), 24*time.Hour, 0)
	active, _ := ft.ActiveOps(ip("10.3.0.1"), t0.Add(20*time.Hour))
	if !active.Has(OpDPFilter) {
		t.Fatal("re-invocation did not extend the window")
	}
}

func TestFuncTableRemoveAndPurge(t *testing.T) {
	ft := NewFuncTable(TableOutSrc)
	v := netip.MustParsePrefix("10.3.0.0/16")
	ft.Install(v, OpSPFilter, t0, time.Hour, 0)
	ft.Install(v, OpCSPStamp, t0, 2*time.Hour, 0)
	if ft.Len() != 1 {
		t.Fatalf("Len = %d", ft.Len())
	}
	ft.Remove(v, OpSPFilter)
	active, _ := ft.ActiveOps(ip("10.3.0.1"), t0.Add(time.Minute))
	if active.Has(OpSPFilter) || !active.Has(OpCSPStamp) {
		t.Fatalf("after Remove: %v", active)
	}
	// Purge removes fully expired prefixes only.
	if n := ft.Purge(t0.Add(90 * time.Minute)); n != 0 {
		t.Fatalf("Purge removed %d, want 0 (CSP window still open)", n)
	}
	if n := ft.Purge(t0.Add(3 * time.Hour)); n != 1 {
		t.Fatalf("Purge removed %d, want 1", n)
	}
	if ft.Len() != 0 {
		t.Fatalf("Len = %d after purge", ft.Len())
	}
}

func TestFuncTableBadDuration(t *testing.T) {
	ft := NewFuncTable(TableOutDst)
	if err := ft.Install(netip.MustParsePrefix("10.0.0.0/8"), OpDPFilter, t0, 0, 0); err == nil {
		t.Fatal("zero duration should fail")
	}
}

// TestGenOutTupleDP checks the drop? rule for DP: outbound packets
// targeting the victim are dropped iff their source is not local.
func TestGenOutTupleDP(t *testing.T) {
	tb := NewTables(1, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableOutDst].Install(v, OpDPFilter, t0, time.Hour, 0)
	now := t0.Add(time.Minute)

	// Spoofed source (another AS's space) targeting the victim: drop.
	tup := tb.GenOutTuple(ip("10.2.9.9"), ip("10.3.0.1"), now)
	if !tup.Drop {
		t.Fatal("spoofed packet to victim not dropped")
	}
	// Unroutable source: also not local, drop.
	tup = tb.GenOutTuple(ip("99.9.9.9"), ip("10.3.0.1"), now)
	if !tup.Drop {
		t.Fatal("unroutable-source packet to victim not dropped")
	}
	// Genuine local source: pass.
	tup = tb.GenOutTuple(ip("10.1.5.5"), ip("10.3.0.1"), now)
	if tup.Drop {
		t.Fatal("genuine local packet dropped (inherent false positive!)")
	}
	// Traffic to a non-victim destination: untouched even if spoofed.
	tup = tb.GenOutTuple(ip("10.2.9.9"), ip("10.4.0.1"), now)
	if tup.Drop {
		t.Fatal("DP filtered traffic not targeting the victim")
	}
}

// TestGenOutTupleSP checks SP: outbound packets whose source lies in
// the victim prefix are dropped (reflection prevention).
func TestGenOutTupleSP(t *testing.T) {
	tb := NewTables(1, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableOutSrc].Install(v, OpSPFilter, t0, time.Hour, 0)
	now := t0.Add(time.Minute)

	tup := tb.GenOutTuple(ip("10.3.7.7"), ip("10.4.0.1"), now)
	if !tup.Drop {
		t.Fatal("packet spoofing the victim's source not dropped")
	}
	// Local traffic unaffected.
	tup = tb.GenOutTuple(ip("10.1.7.7"), ip("10.4.0.1"), now)
	if tup.Drop {
		t.Fatal("local packet dropped by SP")
	}
}

// TestGenOutTupleCDPStamp checks stamp?: CDP ∈ Out-Dst(d) triggers
// stamping with Key-S(Pfx2AS(d)).
func TestGenOutTupleCDPStamp(t *testing.T) {
	tb := NewTables(1, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableOutDst].Install(v, OpCDPStamp, t0, time.Hour, 0)
	tb.Keys.SetStampKey(3, make([]byte, 16))
	now := t0.Add(time.Minute)

	tup := tb.GenOutTuple(ip("10.1.5.5"), ip("10.3.0.1"), now)
	if !tup.Stamp || tup.DstAS != 3 {
		t.Fatalf("tuple = %+v, want stamp toward AS3", tup)
	}
	tup = tb.GenOutTuple(ip("10.1.5.5"), ip("10.4.0.1"), now)
	if tup.Stamp {
		t.Fatal("stamped packet not targeting the victim")
	}
}

// TestGenOutTupleCSPStamp checks the CSP condition: stamp only when
// the destination is a peer (Key-S(Pfx2AS(d)) ≠ Null).
func TestGenOutTupleCSPStamp(t *testing.T) {
	// This table belongs to the victim AS3 itself.
	tb := NewTables(3, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableOutSrc].Install(v, OpCSPStamp, t0, time.Hour, 0)
	tb.Keys.SetStampKey(2, make([]byte, 16)) // AS2 is a peer
	now := t0.Add(time.Minute)

	// Own traffic to the peer: stamp.
	tup := tb.GenOutTuple(ip("10.3.1.1"), ip("10.2.0.1"), now)
	if !tup.Stamp || tup.DstAS != 2 {
		t.Fatalf("tuple = %+v", tup)
	}
	// Own traffic to a legacy AS: no key, no stamp.
	tup = tb.GenOutTuple(ip("10.3.1.1"), ip("10.4.0.1"), now)
	if tup.Stamp {
		t.Fatal("CSP stamped toward a non-peer")
	}
}

// TestGenInTuple checks verify?: set iff CSP-verify ∈ In-Src(s) or
// CDP-verify ∈ In-Dst(d), with the key chosen by the source AS.
func TestGenInTuple(t *testing.T) {
	tb := NewTables(3, testPfx2AS(t)) // victim AS3 verifying CDP
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableInDst].Install(v, OpCDPVerify, t0, time.Hour, 30*time.Second)
	now := t0.Add(10 * time.Minute)

	tup := tb.GenInTuple(ip("10.2.1.1"), ip("10.3.0.1"), now)
	if !tup.Verify || tup.SrcAS != 2 || !tup.SrcKnown || tup.EraseOnly {
		t.Fatalf("in-tuple = %+v", tup)
	}
	// Traffic to other destinations: not verified.
	tup = tb.GenInTuple(ip("10.2.1.1"), ip("10.1.0.1"), now)
	if tup.Verify {
		t.Fatal("verify set for non-victim destination")
	}
	// Grace interval: erase-only.
	tup = tb.GenInTuple(ip("10.2.1.1"), ip("10.3.0.1"), t0.Add(5*time.Second))
	if !tup.Verify || !tup.EraseOnly {
		t.Fatalf("grace in-tuple = %+v", tup)
	}
	// Unroutable source: SrcKnown false.
	tup = tb.GenInTuple(ip("99.1.1.1"), ip("10.3.0.1"), now)
	if !tup.Verify || tup.SrcKnown {
		t.Fatalf("unroutable-src in-tuple = %+v", tup)
	}
}

func TestGenInTupleCSPVerify(t *testing.T) {
	tb := NewTables(2, testPfx2AS(t)) // peer AS2 verifying CSP for victim AS3
	v := netip.MustParsePrefix("10.3.0.0/16")
	tb.In[TableInSrc].Install(v, OpCSPVerify, t0, time.Hour, 0)
	now := t0.Add(time.Minute)

	tup := tb.GenInTuple(ip("10.3.1.1"), ip("10.2.0.1"), now)
	if !tup.Verify || tup.SrcAS != 3 {
		t.Fatalf("in-tuple = %+v", tup)
	}
	// Inbound traffic from elsewhere: untouched.
	tup = tb.GenInTuple(ip("10.4.1.1"), ip("10.2.0.1"), now)
	if tup.Verify {
		t.Fatal("CSP-verify matched non-victim source")
	}
}

func TestKeyTableRekeyWindow(t *testing.T) {
	kt := NewKeyTable()
	k1 := make([]byte, 16)
	k2 := make([]byte, 16)
	k2[0] = 0xff
	if err := kt.SetVerifyKey(2, k1); err != nil {
		t.Fatal(err)
	}
	// Build a packet stamped with k1.
	tbl := lpm.New[topology.ASN]()
	_ = tbl
	p := samplePacketV4()
	kt2 := NewKeyTable()
	kt2.SetStampKey(9, k1)
	V4{p}.Stamp(kt2.StampKey(9))

	if valid, known, _ := kt.VerifyMark(2, V4{p}); !valid || !known {
		t.Fatal("mark with current key rejected")
	}
	// Rekey: k2 becomes current, k1 previous.
	kt.SetVerifyKey(2, k2)
	if valid, _, _ := kt.VerifyMark(2, V4{p}); !valid {
		t.Fatal("mark with previous key rejected during rekey window")
	}
	// End of window.
	kt.DropPreviousVerifyKey(2)
	if valid, _, _ := kt.VerifyMark(2, V4{p}); valid {
		t.Fatal("mark with dropped key still accepted")
	}
	// New-key marks verify.
	kt2.SetStampKey(9, k2)
	V4{p}.Stamp(kt2.StampKey(9))
	if valid, _, _ := kt.VerifyMark(2, V4{p}); !valid {
		t.Fatal("mark with new key rejected")
	}
}

func TestKeyTableUnknownPeer(t *testing.T) {
	kt := NewKeyTable()
	p := samplePacketV4()
	if _, known, _ := kt.VerifyMark(7, V4{p}); known {
		t.Fatal("unknown peer reported as known")
	}
	if kt.StampKey(7) != nil {
		t.Fatal("unknown peer has a stamp key")
	}
	if kt.HasVerifyKey(7) {
		t.Fatal("unknown peer has a verify key")
	}
}

func TestKeyTableRemovePeerAndCount(t *testing.T) {
	kt := NewKeyTable()
	kt.SetStampKey(2, make([]byte, 16))
	kt.SetVerifyKey(2, make([]byte, 16))
	kt.SetVerifyKey(3, make([]byte, 16))
	if kt.NumPeers() != 2 {
		t.Fatalf("NumPeers = %d", kt.NumPeers())
	}
	kt.RemovePeer(2)
	if kt.NumPeers() != 1 || kt.StampKey(2) != nil || kt.HasVerifyKey(2) {
		t.Fatal("RemovePeer incomplete")
	}
}

func TestKeyTableBadKeyLength(t *testing.T) {
	kt := NewKeyTable()
	if err := kt.SetStampKey(2, make([]byte, 8)); err == nil {
		t.Fatal("short stamp key accepted")
	}
	if err := kt.SetVerifyKey(2, make([]byte, 8)); err == nil {
		t.Fatal("short verify key accepted")
	}
}
