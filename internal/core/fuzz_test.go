package core

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"discs/internal/netsim"
	"discs/internal/securechan"
	"discs/internal/topology"
)

// FuzzDecodeControlMsg: arbitrary bytes through the controller message
// decoder must never panic, and valid messages must round-trip.
func FuzzDecodeControlMsg(f *testing.F) {
	seed, _ := (&ControlMsg{Type: MsgPeeringRequest, From: 42}).Encode()
	f.Add(seed)
	inv, _ := (&ControlMsg{
		Type: MsgInvoke, From: 7,
		Invocations: []Invocation{{Function: CDP, Duration: time.Hour}},
	}).Encode()
	f.Add(inv)
	f.Add([]byte(`{"type":"key-deploy","from":1,"key":"AAAA","serial":3}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeControlMsg(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message fails to encode: %v", err)
		}
		if _, err := DecodeControlMsg(out); err != nil {
			t.Fatalf("re-encode fails to decode: %v", err)
		}
		// Validation must be total on decoded invocations.
		for _, inv := range m.Invocations {
			_ = inv.Validate()
		}
	})
}

// FuzzParseInvocation: the operator syntax parser must never panic and
// accepted invocations must re-parse from their String form.
func FuzzParseInvocation(f *testing.F) {
	f.Add("10.0.0.0/24:DP")
	f.Add("10.0.0.0/24+10.1.0.0/24:CDP:1h:alarm")
	f.Add("2001:db8::/48:CSP:30m")
	f.Add(":::::")
	f.Fuzz(func(t *testing.T, s string) {
		inv, err := ParseInvocation(s)
		if err != nil {
			return
		}
		again, err := ParseInvocation(inv.String())
		if err != nil {
			t.Fatalf("String() form %q does not re-parse: %v", inv.String(), err)
		}
		if again.Function != inv.Function || again.Duration != inv.Duration {
			t.Fatalf("round trip changed invocation: %v vs %v", again, inv)
		}
	})
}

// fuzzEnv is a minimal controller with an established inbound session
// from a fake peer, for injecting hand-crafted transport frames. The
// whole setup is deterministic, so the session keys are identical
// across the seed builder and every fuzz iteration — a record sealed
// while building the corpus decrypts inside the fuzz body and reaches
// the control-plane dispatcher.
type fuzzEnv struct {
	c     *Controller
	sim   *netsim.Simulator
	sess  *securechan.Session // peer→controller sealing side
	hello []byte              // a well-formed handshake hello
}

func newFuzzEnv(tb testing.TB) *fuzzEnv {
	tb.Helper()
	sim := netsim.New()
	na, err := sim.AddNode("ctrl.a")
	if err != nil {
		tb.Fatal(err)
	}
	nb, err := sim.AddNode("ctrl.b")
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := sim.Connect(na, nb, time.Millisecond); err != nil {
		tb.Fatal(err)
	}
	dir := NewDirectory()
	c, err := NewControllerWithOptions(ControllerOptions{
		AS: 1, Name: "ctrl.a", Sim: sim, Node: na, Dir: dir,
		Topo: topology.New(), Config: DefaultConfig(), Seed: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	prng := rand.New(rand.NewSource(2))
	peerID, err := securechan.NewIdentity("ctrl.b", prng)
	if err != nil {
		tb.Fatal(err)
	}
	if err := dir.Register(&DirEntry{Name: "ctrl.b", ASN: 2, Pub: peerID.Public(), Node: nb}); err != nil {
		tb.Fatal(err)
	}
	// Run a real handshake from the fake peer: inject its hello, catch
	// the controller's reply at the peer node, finish the session.
	var reply []byte
	nb.SetHandler(netsim.HandlerFunc(func(_ *netsim.Node, _ *netsim.Link, m netsim.Message) {
		if f, ok := m.(*ctrlFrame); ok && f.Kind == frameReply {
			reply = f.Data
		}
	}))
	ini, err := securechan.NewInitiator(peerID, c.id.Public(), prng)
	if err != nil {
		tb.Fatal(err)
	}
	c.receive(nil, nil, &ctrlFrame{Kind: frameHello, From: "ctrl.b", Data: ini.Hello()})
	if _, err := sim.RunAll(); err != nil {
		tb.Fatal(err)
	}
	if reply == nil {
		tb.Fatal("controller never replied to the handshake hello")
	}
	sess, err := ini.Finish(reply)
	if err != nil {
		tb.Fatal(err)
	}
	return &fuzzEnv{c: c, sim: sim, sess: sess, hello: ini.Hello()}
}

// FuzzCtrlFrame: arbitrary transport frames — any kind, any payload —
// injected into a live controller must never panic it. The corpus
// seeds the shapes the fault injector produces in practice: truncated
// frames and netsim.CorruptBytes bit-flips, for every frame kind.
func FuzzCtrlFrame(f *testing.F) {
	env := newFuzzEnv(f)
	rec := env.sess.Seal(mustEncode(&ControlMsg{
		Type: MsgInvoke, From: 2, Serial: 1,
		Invocations: []Invocation{{
			Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
			Function: DP, Duration: time.Hour,
		}},
	}))
	f.Add(uint8(frameRecord), append([]byte(nil), rec...)) // decrypts, reaches handleMsg
	f.Add(uint8(frameRecord), rec[:len(rec)/2])            // truncated mid-record
	f.Add(uint8(frameRecord), netsim.CorruptBytes(append([]byte(nil), rec...), 0xdecafbad))
	f.Add(uint8(frameHello), append([]byte(nil), env.hello...))
	f.Add(uint8(frameHello), env.hello[:len(env.hello)-1]) // truncated hello
	f.Add(uint8(frameHello), netsim.CorruptBytes(append([]byte(nil), env.hello...), 7))
	f.Add(uint8(frameReply), make([]byte, securechan.ReplyLen)) // forged reply
	f.Add(uint8(frameResumeHello), make([]byte, securechan.ResumeHelloLen))
	f.Add(uint8(frameResumeReply), []byte{})
	f.Add(uint8(frameResumeReject), []byte("junk"))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		env := newFuzzEnv(t)
		frame := &ctrlFrame{Kind: frameKind(kind % uint8(numFrameKinds)), From: "ctrl.b", Data: data}
		env.c.receive(nil, nil, frame)
		// Frames from unknown senders must be equally inert.
		env.c.receive(nil, nil, &ctrlFrame{Kind: frame.Kind, From: "nobody", Data: data})
		if _, err := env.sim.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
}
