package core

import (
	"testing"
	"time"
)

// FuzzDecodeControlMsg: arbitrary bytes through the controller message
// decoder must never panic, and valid messages must round-trip.
func FuzzDecodeControlMsg(f *testing.F) {
	seed, _ := (&ControlMsg{Type: MsgPeeringRequest, From: 42}).Encode()
	f.Add(seed)
	inv, _ := (&ControlMsg{
		Type: MsgInvoke, From: 7,
		Invocations: []Invocation{{Function: CDP, Duration: time.Hour}},
	}).Encode()
	f.Add(inv)
	f.Add([]byte(`{"type":"key-deploy","from":1,"key":"AAAA","serial":3}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeControlMsg(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message fails to encode: %v", err)
		}
		if _, err := DecodeControlMsg(out); err != nil {
			t.Fatalf("re-encode fails to decode: %v", err)
		}
		// Validation must be total on decoded invocations.
		for _, inv := range m.Invocations {
			_ = inv.Validate()
		}
	})
}

// FuzzParseInvocation: the operator syntax parser must never panic and
// accepted invocations must re-parse from their String form.
func FuzzParseInvocation(f *testing.F) {
	f.Add("10.0.0.0/24:DP")
	f.Add("10.0.0.0/24+10.1.0.0/24:CDP:1h:alarm")
	f.Add("2001:db8::/48:CSP:30m")
	f.Add(":::::")
	f.Fuzz(func(t *testing.T, s string) {
		inv, err := ParseInvocation(s)
		if err != nil {
			return
		}
		again, err := ParseInvocation(inv.String())
		if err != nil {
			t.Fatalf("String() form %q does not re-parse: %v", inv.String(), err)
		}
		if again.Function != inv.Function || again.Duration != inv.Duration {
			t.Fatalf("round trip changed invocation: %v vs %v", again, inv)
		}
	})
}
