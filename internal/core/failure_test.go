package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"discs/internal/netsim"
)

// prepareOutage deploys two DASes with the controller-controller link
// pre-created and DOWN, so every frame of the initial peering exchange
// is lost until the test restores it.
func prepareOutage(t *testing.T, s *System) *netsim.Link {
	t.Helper()
	if _, err := s.Deploy(1001, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(1004, 2); err != nil {
		t.Fatal(err)
	}
	nodeA := s.Net.Sim.Node(s.Controllers[1001].Name)
	nodeB := s.Net.Sim.Node(s.Controllers[1004].Name)
	l, err := s.Net.Sim.Connect(nodeA, nodeB, s.Controllers[1001].cfg.CtrlLinkDelay)
	if err != nil {
		t.Fatal(err)
	}
	l.SetUp(false)
	return l
}

// TestLossyHandshakeRecovers injects frame loss into the con-con
// channel during the initial peering exchange: the link is down from
// the start (swallowing handshake frames) and comes back later. The
// retry machinery must still converge to established peering with
// active keys.
func TestLossyHandshakeRecovers(t *testing.T) {
	s := testInternet(t)
	l := prepareOutage(t, s)
	// Outage window: requests and early retries are all lost.
	s.Net.Sim.Run(12 * time.Second)
	l.SetUp(true)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	c1, c4 := s.Controllers[1001], s.Controllers[1004]
	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("AS1001→AS1004 status %v after recovery", st)
	}
	if st, _ := c4.PeerStatusOf(1001); st != PeerEstablished {
		t.Fatalf("AS1004→AS1001 status %v after recovery", st)
	}
	if !c1.KeysReadyWith(1004) || !c4.KeysReadyWith(1001) {
		t.Fatalf("keys not active after recovery (retries: %d/%d)", c1.Stats().Get(MetricCtrlRetries), c4.Stats().Get(MetricCtrlRetries))
	}
	if c1.Stats().Get(MetricCtrlRetries)+c4.Stats().Get(MetricCtrlRetries) == 0 {
		t.Fatal("recovery happened without any retry — outage did not bite")
	}
	// And the keys actually work.
	pkt := samplePacketV4()
	pkt.Src = netip.MustParseAddr("172.16.1.10")
	pkt.Dst = netip.MustParseAddr("172.16.4.10")
	(V4{pkt}).Stamp(s.Routers[1001].Tables.Keys.StampKey(1004))
	if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{pkt}); !ok {
		t.Fatal("recovered keys are inconsistent")
	}
}

// TestPermanentOutageGivesUp: with the peer controller unreachable
// forever, retries must stop at MaxRetries so the simulator drains —
// but a fresh DISCS-Ad from the peer must refresh the retry budget so
// a recovered peer can still join.
func TestPermanentOutageGivesUp(t *testing.T) {
	s := testInternet(t)
	l := prepareOutage(t, s)
	// RunAll must terminate (bounded retries) — this is the regression
	// guard against infinite retry loops.
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	c1, c4 := s.Controllers[1001], s.Controllers[1004]
	if c1.Stats().Get(MetricCtrlRetries) == 0 {
		t.Fatal("no retries recorded")
	}
	if int(c1.Stats().Get(MetricCtrlRetries)) > c1.cfg.MaxRetries {
		t.Fatalf("retries %d exceed cap %d", c1.Stats().Get(MetricCtrlRetries), c1.cfg.MaxRetries)
	}

	// The comeback: the link heals and each side sees the other's Ad
	// again (BGP refresh). That must reset the exhausted retry budget
	// and let the peering complete — give-up is per-outage, not
	// forever.
	l.SetUp(true)
	c1.HandleAd(c4.Ad())
	c4.HandleAd(c1.Ad())
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("AS1001→AS1004 status %v after comeback", st)
	}
	if st, _ := c4.PeerStatusOf(1001); st != PeerEstablished {
		t.Fatalf("AS1004→AS1001 status %v after comeback", st)
	}
	if !c1.KeysReadyWith(1004) || !c4.KeysReadyWith(1001) {
		t.Fatal("keys not active after comeback")
	}
}

// TestLossSweepConverges: the peering + key-deployment exchange must
// converge under up to 30% per-link frame loss within the configured
// retry budget. The fault schedule is seeded, so a failure here is
// reproducible bit-for-bit.
func TestLossSweepConverges(t *testing.T) {
	for _, loss := range []float64{0.1, 0.2, 0.3} {
		ok := t.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(t *testing.T) {
			s := testInternet(t)
			sim := s.Net.Sim
			sim.SeedFaults(42)
			// Fault only the links created from here on: the BGP mesh is
			// converged, so the new links are exactly the on-demand
			// con-con channels.
			sim.SetDefaultLinkFaults(netsim.LinkFaults{Loss: loss})
			cfg := &s.cfg
			cfg.RetryInterval = 2 * time.Second
			cfg.RetryJitter = time.Second
			cfg.MaxRetries = 60
			// Liveness off: this test measures the retry machinery alone.
			cfg.HeartbeatInterval = 0
			if _, err := s.Deploy(1001, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Deploy(1004, 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			c1, c4 := s.Controllers[1001], s.Controllers[1004]
			if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
				t.Fatalf("AS1001→AS1004 status %v under %.0f%% loss (lost %d frames, %d retries)",
					st, loss*100, sim.Stats().Get(netsim.MetricLost), c1.Stats().Get(MetricCtrlRetries))
			}
			if st, _ := c4.PeerStatusOf(1001); st != PeerEstablished {
				t.Fatalf("AS1004→AS1001 status %v under %.0f%% loss", st, loss*100)
			}
			if !c1.KeysReadyWith(1004) || !c4.KeysReadyWith(1001) {
				t.Fatalf("keys not active under %.0f%% loss (retries %d+%d)",
					loss*100, c1.Stats().Get(MetricCtrlRetries), c4.Stats().Get(MetricCtrlRetries))
			}
			if int(c1.Stats().Get(MetricCtrlRetries)) > cfg.MaxRetries || int(c4.Stats().Get(MetricCtrlRetries)) > cfg.MaxRetries {
				t.Fatalf("retry budget blown: %d and %d > %d", c1.Stats().Get(MetricCtrlRetries), c4.Stats().Get(MetricCtrlRetries), cfg.MaxRetries)
			}
			if sim.Stats().Get(netsim.MetricLost) == 0 {
				t.Fatal("no frames lost — the sweep did not exercise the injector")
			}
			// The keys that survived the lossy exchange must be
			// consistent.
			pkt := samplePacketV4()
			pkt.Src = netip.MustParseAddr("172.16.1.10")
			pkt.Dst = netip.MustParseAddr("172.16.4.10")
			(V4{pkt}).Stamp(s.Routers[1001].Tables.Keys.StampKey(1004))
			if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{pkt}); !ok {
				t.Fatalf("keys inconsistent under %.0f%% loss", loss*100)
			}
		})
		if !ok {
			break
		}
	}
}

// TestRetryIdempotentUnderDuplicates: retransmitted peering requests
// and key deploys must not corrupt state (duplicate Accepts, double
// key installs). We simulate by forcing extra retries on a healthy
// link.
func TestRetryIdempotentUnderDuplicates(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	c1 := s.Controllers[1001]
	p := c1.peers[1004]
	// Force replays of the full exchange.
	for i := 0; i < 3; i++ {
		c1.sendEncoded(p, mustEncode(&ControlMsg{Type: MsgPeeringRequest, From: c1.AS}))
		c1.sendEncoded(p, mustEncode(&ControlMsg{
			Type: MsgKeyDeploy, From: c1.AS, Key: p.stampKey, Serial: p.stampSerial,
		}))
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("status %v after duplicates", st)
	}
	if !c1.KeysReadyWith(1004) {
		t.Fatal("keys lost after duplicates")
	}
	// Cross-verification still consistent.
	pkt := samplePacketV4()
	pkt.Src = netip.MustParseAddr("172.16.1.10")
	pkt.Dst = netip.MustParseAddr("172.16.4.10")
	(V4{pkt}).Stamp(s.Routers[1001].Tables.Keys.StampKey(1004))
	if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{pkt}); !ok {
		t.Fatal("keys inconsistent after duplicates")
	}
}

// TestAutoDefendClosesTheLoop: alarm mode + AutoDefend escalates from
// sampling to full enforcement without operator action.
func TestAutoDefendClosesTheLoop(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	victim.cfg.AlarmThreshold = 10
	victim.AutoDefend = &AutoDefendPolicy{
		Functions: []Function{DP, CDP},
		Duration:  24 * time.Hour,
	}
	// Proactive alarm-mode CDP invocation (the detection net).
	if _, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP,
		Duration: 24 * time.Hour, Alarm: true,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	victim.SetAlarmMode(true)
	s.Net.Sim.After(DefaultGrace+time.Second, func() {})
	s.Settle()

	spoof := func() DeliveryResult {
		return s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	}
	// Alarm phase: spoofed traffic passes but is sampled.
	if res := spoof(); !res.Delivered {
		t.Fatalf("pre-detection drop: %+v", res)
	}
	for i := 0; i < 15; i++ {
		spoof()
	}
	// Detection fired inside the data-plane callback; the auto
	// invocation now needs the control plane to run, and the fresh
	// windows start with a grace interval.
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	s.Net.Sim.After(DefaultGrace+time.Second, func() {})
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Enforcement: spoofed traffic from the peer dies at the peer (DP
	// was auto-invoked there), and peer-spoofing from legacy ASes dies
	// at the victim.
	res := s.SendV4(1001, mkV4("203.0.113.7", "172.16.4.10"))
	if res.Delivered || res.DroppedAt != 1001 {
		t.Fatalf("DP not auto-invoked at peer: %+v", res)
	}
	if res := spoof(); res.Delivered {
		t.Fatalf("CDP enforcement not active: %+v", res)
	}
	// Genuine traffic still flows.
	if res := s.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10")); !res.Delivered {
		t.Fatalf("genuine traffic dropped after auto-defense: %+v", res)
	}
}
