// Package core implements DISCS itself: the four spoofing defense
// functions (DP, CDP, SP, CSP), the border-router data plane
// (§V of the paper) and the distributed control plane (§IV) —
// controller, DAS discovery, peering, key negotiation with a two-key
// rekey window, on-demand function invocation and alarm mode.
package core

import (
	"fmt"
	"strings"
	"time"
)

// Function identifies one of the four DISCS spoofing defense functions
// (§III-B). DP and SP are end based; CDP and CSP are end-to-end based.
type Function uint8

const (
	// DP (destination protection) makes peer DASes drop outbound
	// packets targeting the victim prefix whose source address is not
	// local to the peer.
	DP Function = iota
	// CDP (cryptographic destination protection) makes peer DASes stamp
	// outbound packets targeting the victim prefix; the victim verifies
	// inbound packets whose source belongs to a peer.
	CDP
	// SP (source protection) makes peer DASes drop outbound packets
	// whose source address belongs to the victim prefix.
	SP
	// CSP (cryptographic source protection) makes the victim stamp its
	// outbound packets destined to peers; peers verify inbound packets
	// whose source belongs to the victim prefix.
	CSP
	numFunctions
)

func (f Function) String() string {
	switch f {
	case DP:
		return "DP"
	case CDP:
		return "CDP"
	case SP:
		return "SP"
	case CSP:
		return "CSP"
	}
	return fmt.Sprintf("Function(%d)", uint8(f))
}

// ParseFunction parses "DP", "CDP", "SP" or "CSP" (case-insensitive).
func ParseFunction(s string) (Function, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "DP":
		return DP, nil
	case "CDP":
		return CDP, nil
	case "SP":
		return SP, nil
	case "CSP":
		return CSP, nil
	}
	return 0, fmt.Errorf("core: unknown function %q", s)
}

// Op is one primitive operation in a function table (Table I). Each
// DISCS function decomposes into the operations executed by the peer
// DASes (bold rows of Table I) and by the victim DAS.
type Op uint8

const (
	// OpDPFilter — Out-Dst table, executed by peers: if src ∉ local, drop.
	OpDPFilter Op = 1 << iota
	// OpCDPStamp — Out-Dst table, executed by peers: stamp.
	OpCDPStamp
	// OpCDPVerify — In-Dst table, executed by the victim: if src ∈ peer, verify.
	OpCDPVerify
	// OpSPFilter — Out-Src table, executed by peers: drop.
	OpSPFilter
	// OpCSPStamp — Out-Src table, executed by the victim: if dst ∈ peer, stamp.
	OpCSPStamp
	// OpCSPVerify — In-Src table, executed by peers: verify.
	OpCSPVerify
)

// OpSet is a bitmask of operations attached to a prefix in one of the
// four function tables. The paper stores it in 6 bits (§VI-C2).
type OpSet uint8

// Has reports whether the set contains op.
func (s OpSet) Has(op Op) bool { return s&OpSet(op) != 0 }

// Add returns the set with op added.
func (s OpSet) Add(op Op) OpSet { return s | OpSet(op) }

func (s OpSet) String() string {
	if s == 0 {
		return "∅"
	}
	names := []struct {
		op   Op
		name string
	}{
		{OpDPFilter, "DP-filter"}, {OpCDPStamp, "CDP-stamp"}, {OpCDPVerify, "CDP-verify"},
		{OpSPFilter, "SP-filter"}, {OpCSPStamp, "CSP-stamp"}, {OpCSPVerify, "CSP-verify"},
	}
	var out []string
	for _, n := range names {
		if s.Has(n.op) {
			out = append(out, n.name)
		}
	}
	return strings.Join(out, "+")
}

// TableKind identifies one of the four data-plane function tables
// (§V-A): they match the source/destination addresses of
// inbound/outbound packets.
type TableKind int

const (
	TableInSrc TableKind = iota
	TableInDst
	TableOutSrc
	TableOutDst
	numTables
)

func (k TableKind) String() string {
	switch k {
	case TableInSrc:
		return "In-Src"
	case TableInDst:
		return "In-Dst"
	case TableOutSrc:
		return "Out-Src"
	case TableOutDst:
		return "Out-Dst"
	}
	return fmt.Sprintf("TableKind(%d)", int(k))
}

// anatomyRow describes where one primitive operation of a function is
// installed and by whom, mirroring Table I.
type anatomyRow struct {
	Op    Op
	Table TableKind
	// AtPeer is true for the operations executed by peer DASes (the
	// bold rows of Table I); false for the victim DAS's own operations.
	AtPeer bool
}

// anatomy maps each function to its primitive operations (Table I).
var anatomy = map[Function][]anatomyRow{
	DP:  {{OpDPFilter, TableOutDst, true}},
	CDP: {{OpCDPStamp, TableOutDst, true}, {OpCDPVerify, TableInDst, false}},
	SP:  {{OpSPFilter, TableOutSrc, true}},
	CSP: {{OpCSPStamp, TableOutSrc, false}, {OpCSPVerify, TableInSrc, true}},
}

// PeerOps returns the operations peer DASes install for function f,
// keyed by table.
func PeerOps(f Function) map[TableKind]OpSet {
	out := make(map[TableKind]OpSet)
	for _, row := range anatomy[f] {
		if row.AtPeer {
			out[row.Table] = out[row.Table].Add(row.Op)
		}
	}
	return out
}

// VictimOps returns the operations the victim DAS installs locally for
// function f, keyed by table.
func VictimOps(f Function) map[TableKind]OpSet {
	out := make(map[TableKind]OpSet)
	for _, row := range anatomy[f] {
		if !row.AtPeer {
			out[row.Table] = out[row.Table].Add(row.Op)
		}
	}
	return out
}

// DefaultDuration is the suggested invocation duration; §IV-E1 notes
// that more than 93% of DDoS attacks last under 24 hours.
const DefaultDuration = 24 * time.Hour

// DefaultGrace is the tolerance interval at the start and end of a
// cryptographic invocation during which the verification end only
// erases marks without enforcing them (§IV-E1).
const DefaultGrace = 30 * time.Second
