package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/lpm"
	"discs/internal/packet"
	"discs/internal/topology"
)

// mtuRouter builds a stamping border router with a constrained
// external-link MTU.
func mtuRouter(t *testing.T, mtu int) *BorderRouter {
	t.Helper()
	pfx := lpm.New[topology.ASN]()
	pfx.Insert(netip.MustParsePrefix("2001:db8:1::/48"), 1)
	pfx.Insert(netip.MustParsePrefix("2001:db8:3::/48"), 3)
	tab := NewTables(1, pfx)
	tab.In[TableOutDst].Install(netip.MustParsePrefix("2001:db8:3::/48"),
		OpCDPStamp, t0, time.Hour, 0)
	tab.Keys.SetStampKey(3, make([]byte, 16))
	r := testRouter(tab, 1)
	r.ExternalMTU = mtu
	r.RouterAddr = netip.MustParseAddr("2001:db8:1::1")
	return r
}

func v6Sized(payload int) *packet.IPv6 {
	return &packet.IPv6{
		HopLimit: 64, Proto: packet.ProtoUDP,
		Src:     netip.MustParseAddr("2001:db8:1::10"),
		Dst:     netip.MustParseAddr("2001:db8:3::10"),
		Payload: make([]byte, payload),
	}
}

// TestMTUPacketTooBig verifies §V-F: when stamping would exceed the
// external MTU, the packet is refused and an ICMPv6 "packet too big"
// announcing MTU−8 goes back to the source.
func TestMTUPacketTooBig(t *testing.T) {
	r := mtuRouter(t, 1500)
	var tooBig *packet.IPv6
	r.OnPacketTooBig = func(p *packet.IPv6) { tooBig = p }
	now := t0.Add(time.Minute)

	// 1456-byte payload → 1496 on the wire; +8 stamp = 1504 > 1500.
	p := v6Sized(1456)
	if p.WireLen() != 1496 {
		t.Fatalf("setup: wire len = %d", p.WireLen())
	}
	if v := r.ProcessOutbound(V6{p}, now); v != VerdictDrop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if r.Stats().OutTooBig != 1 || r.Stats().OutStamped != 0 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	if tooBig == nil {
		t.Fatal("no ICMPv6 generated")
	}
	if tooBig.Dst != p.Src {
		t.Fatalf("ICMP dst = %v", tooBig.Dst)
	}
	if tooBig.Payload[0] != packet.ICMPv6PacketTooBigType {
		t.Fatalf("ICMP type = %d", tooBig.Payload[0])
	}
	mtu := uint32(tooBig.Payload[4])<<24 | uint32(tooBig.Payload[5])<<16 |
		uint32(tooBig.Payload[6])<<8 | uint32(tooBig.Payload[7])
	if mtu != 1492 {
		t.Fatalf("announced MTU = %d, want 1500-8", mtu)
	}
}

// TestMTUSmallPacketStamps: packets that still fit after stamping flow
// normally.
func TestMTUSmallPacketStamps(t *testing.T) {
	r := mtuRouter(t, 1500)
	now := t0.Add(time.Minute)
	p := v6Sized(1400) // 1440 wire + 8 = 1448 ≤ 1500
	if v := r.ProcessOutbound(V6{p}, now); v != VerdictPassStamped {
		t.Fatalf("verdict = %v", v)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 1500 {
		t.Fatalf("stamped packet %d bytes exceeds MTU", len(b))
	}
}

// TestMTUExactFit: a packet that lands exactly on the MTU after
// stamping is forwarded.
func TestMTUExactFit(t *testing.T) {
	r := mtuRouter(t, 1500)
	now := t0.Add(time.Minute)
	p := v6Sized(1452) // 1492 wire + 8 = 1500 exactly
	if v := r.ProcessOutbound(V6{p}, now); v != VerdictPassStamped {
		t.Fatalf("verdict = %v", v)
	}
}

// TestMTUDisabledByDefault: MTU 0 disables the check entirely.
func TestMTUDisabledByDefault(t *testing.T) {
	r := mtuRouter(t, 0)
	now := t0.Add(time.Minute)
	p := v6Sized(9000)
	if v := r.ProcessOutbound(V6{p}, now); v != VerdictPassStamped {
		t.Fatalf("verdict = %v", v)
	}
}

// TestMTUIgnoresIPv4: IPv4 stamping reuses existing header fields and
// never grows the packet, so the MTU check must not fire.
func TestMTUIgnoresIPv4(t *testing.T) {
	pfx := lpm.New[topology.ASN]()
	pfx.Insert(netip.MustParsePrefix("10.1.0.0/16"), 1)
	pfx.Insert(netip.MustParsePrefix("10.3.0.0/16"), 3)
	tab := NewTables(1, pfx)
	tab.In[TableOutDst].Install(netip.MustParsePrefix("10.3.0.0/16"),
		OpCDPStamp, t0, time.Hour, 0)
	tab.Keys.SetStampKey(3, make([]byte, 16))
	r := testRouter(tab, 1)
	r.ExternalMTU = 100 // absurdly small
	now := t0.Add(time.Minute)

	p := &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: make([]byte, 1400),
	}
	before := p.TotalLen()
	if v := r.ProcessOutbound(V4{p}, now); v != VerdictPassStamped {
		t.Fatalf("verdict = %v", v)
	}
	if p.TotalLen() != before {
		t.Fatal("IPv4 stamping changed the packet size")
	}
}

// TestMTUScrubTooBigEmbedded: the returning packet-too-big message
// embeds the unstamped original, so there is no mark to scrub — but a
// TTL-exceeded for an already-stamped packet must still be scrubbed
// (cross-check with the v6 scrubber).
func TestMTUWireLenMatchesMarshal(t *testing.T) {
	p := v6Sized(777)
	p.StampV6(42)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if p.WireLen() != len(b) {
		t.Fatalf("WireLen %d != marshal %d", p.WireLen(), len(b))
	}
}
